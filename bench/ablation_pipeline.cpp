// Ablation: pipeline design choices of §III-F.
//
//  1. Worker/core count sweep: the paper bound itself to the four A53
//     cores; the sweep shows where the frame rate saturates (stage count
//     and bottleneck stage both cap it).
//  2. Stage granularity: "the competition over locks can be reduced
//     beneficially by a more fine-grained division into pipeline stages.
//     In particular, the image acquisition was split into the camera
//     access and the internal scaling" — merged vs split acquisition.
//  3. Synchronization-overhead sensitivity: how the modeled fps degrades
//     as the per-stage overhead grows (the dilution of the ideal 4x).

#include <cstdio>

#include "nn/zoo.hpp"
#include "perf/ladder.hpp"
#include "pipeline/virtual_time.hpp"

using namespace tincy;

int main() {
  const perf::ZynqPlatform platform;
  const auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      nn::zoo::TinyVariant::kTincy, nn::zoo::QuantMode::kFloat, 416,
      nn::zoo::CpuProfile::kReference));
  const perf::StageTimes times = perf::model_stage_times(
      *net, platform, perf::FirstLayerImpl::kSpecAcc16,
      perf::HiddenImpl::kFabric);
  const auto stages = perf::pipelined_stages(platform, times);

  std::printf("ABLATION — PIPELINE DESIGN (modeled ZU3EG stage times)\n\n");

  std::printf("1) worker cores (7 stages, one exclusive PL stage):\n");
  std::printf("%7s %8s %12s\n", "cores", "fps", "utilization");
  for (int cores = 1; cores <= 8; ++cores) {
    const auto r = pipeline::simulate(stages, cores, 64);
    std::printf("%7d %8.2f %11.0f%%%s\n", cores, r.fps,
                100.0 * r.utilization(),
                cores == platform.cores ? "   <- the platform's 4 x A53" : "");
  }

  std::printf("\n2) stage granularity (split vs merged acquisition):\n");
  // Merged acquisition: one stage carrying the full 40 ms (+1 overhead
  // quantum instead of 2). Splitting pays an extra overhead quantum but
  // halves the largest stage — it wins wherever the pipeline is
  // bottleneck-bound (stage-serial cap) rather than work-bound.
  std::vector<pipeline::TimedStage> merged;
  merged.push_back({"acquisition(merged)",
                    times.acquisition_ms + platform.pipeline_sync_overhead_ms,
                    ""});
  for (size_t i = 2; i < stages.size(); ++i) merged.push_back(stages[i]);
  std::printf("%7s %12s %12s\n", "cores", "split fps", "merged fps");
  for (int cores = 2; cores <= 8; cores += 2) {
    const auto split_r = pipeline::simulate(stages, cores, 64);
    const auto merged_r = pipeline::simulate(merged, cores, 64);
    std::printf("%7d %12.2f %12.2f\n", cores, split_r.fps, merged_r.fps);
  }
  std::printf(
      "   At 4 cores both configurations are work-bound and merging even\n"
      "   saves one overhead quantum; with more cores the merged %.1f ms\n"
      "   stage becomes the serial bottleneck and the split pulls ahead —\n"
      "   the paper's fine-grained split buys headroom exactly where the\n"
      "   stage-serial cap (not total work) limits the frame rate.\n",
      merged.front().duration_ms);

  std::printf("\n3) per-stage synchronization overhead (4 cores):\n");
  std::printf("%14s %8s %10s\n", "overhead ms", "fps", "vs ideal");
  double ideal_fps = 0.0;
  for (const double o : {0.0, 4.0, 8.0, 12.8, 20.0, 30.0}) {
    perf::ZynqPlatform p = platform;
    p.pipeline_sync_overhead_ms = o;
    const auto s = perf::pipelined_stages(p, times);
    const auto r = pipeline::simulate(s, p.cores, 64);
    if (o == 0.0) ideal_fps = r.fps;
    std::printf("%14.1f %8.2f %9.0f%%%s\n", o, r.fps, 100.0 * r.fps / ideal_fps,
                o == 12.8 ? "   <- calibrated to the paper's 16 fps" : "");
  }
  std::printf(
      "\nThe paper's measured 16 fps against the ~23 fps ideal corresponds\n"
      "to ~13 ms of per-stage scheduling/lock/cache interference — the\n"
      "'parallelization and synchronization overhead' dilution of SIII-F.\n");
  return 0;
}
