// Multi-stream serving throughput AND production soak over the shared
// fabric engine.
//
// Default mode sweeps 1..8 concurrent streams through a StreamServer
// whose sessions model the paper's deployment timing: two CPU-bound
// stages around one engine-bound stage. Stage "work" is a timed sleep,
// so the sweep measures the *scheduler* — single-slot stage serialization
// within a stream, engine exclusivity across streams — independently of
// host core count (the CI host may have a single core). The acceptance
// gate (tier2-serve) is aggregate throughput at 4 streams >= 2x the
// single-stream throughput.
//
// --soak mode is the production-hardening harness: ~1k short-lived
// sessions churn through the server (join/leave mid-stream, bursty
// submission, random stalls, a handful of poisoned sessions whose stages
// throw), while the harness asserts
//   * strictly in-order delivery per session,
//   * exact frame accounting (delivered + shed + dropped == accepted),
//   * fault isolation (exactly the poisoned sessions quarantine,
//     everything else keeps flowing),
//   * submit-after-close answers kClosed, submit-after-fault answers
//     kQuarantined,
//   * bounded tail latency (p99 of every session under --p99-ms).
// The schedule is fully deterministic from --seed. On an SLO violation
// the offending session's telemetry summary is printed.
//
//   multistream --soak [--sessions N] [--concurrent N] [--seed S]
//               [--faults N] [--p99-ms X] [--metrics-json PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "serve/server.hpp"
#include "telemetry/export.hpp"
#include "video/frame.hpp"

using namespace tincy;

namespace {

serve::ServeStage sleep_stage(const std::string& name, double ms,
                              bool engine) {
  const auto dur = std::chrono::duration<double, std::milli>(ms);
  return {name, [dur](video::Frame&) { std::this_thread::sleep_for(dur); },
          engine};
}

// ---------------------------------------------------------------------------
// Sweep mode (the original tier2-serve throughput gate).
// ---------------------------------------------------------------------------

constexpr double kCpuStageMs = 4.0;
constexpr double kEngineStageMs = 1.0;
constexpr int64_t kFramesPerStream = 48;

int run_sweep() {
  std::printf("multi-stream serving sweep (%.0f ms CPU stages, %.0f ms "
              "engine stage, %lld frames/stream)\n",
              kCpuStageMs, kEngineStageMs,
              static_cast<long long>(kFramesPerStream));
  std::printf("%8s %12s %14s %10s %14s\n", "streams", "agg fps",
              "fps/stream", "speedup", "engine grants");

  double single_fps = 0.0;
  double four_fps = 0.0;
  for (const int streams : {1, 2, 4, 8}) {
    telemetry::MetricsRegistry registry;
    serve::ServerOptions opts;
    opts.num_workers = 3 * streams;
    opts.metrics = &registry;
    serve::StreamServer server(opts);
    for (int i = 0; i < streams; ++i) {
      serve::SessionConfig sc;
      sc.stages = {sleep_stage("pre", kCpuStageMs, false),
                   sleep_stage("engine", kEngineStageMs, true),
                   sleep_stage("post", kCpuStageMs, false)};
      sc.queue_capacity = 4;
      server.open_session(std::move(sc));
    }
    server.start();
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<int64_t> sent(static_cast<size_t>(streams), 0);
    int64_t remaining = static_cast<int64_t>(streams) * kFramesPerStream;
    int64_t seq = 0;
    while (remaining > 0) {
      bool progressed = false;
      for (int i = 0; i < streams; ++i) {
        const auto ui = static_cast<size_t>(i);
        if (sent[ui] == kFramesPerStream) continue;
        video::Frame f;
        f.sequence = seq;
        if (server.submit(i, std::move(f)) ==
            serve::ServeResult::kAccepted) {
          ++seq;
          ++sent[ui];
          --remaining;
          progressed = true;
        }
      }
      if (!progressed)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    server.drain();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.stop();

    const double total =
        static_cast<double>(streams) * static_cast<double>(kFramesPerStream);
    const double fps = elapsed_s > 0.0 ? total / elapsed_s : 0.0;
    if (streams == 1) single_fps = fps;
    if (streams == 4) four_fps = fps;
    std::printf("%8d %12.1f %14.1f %9.2fx %14lld\n", streams, fps,
                fps / streams, single_fps > 0.0 ? fps / single_fps : 0.0,
                static_cast<long long>(server.arbiter().grants()));
  }

  const double scaling = single_fps > 0.0 ? four_fps / single_fps : 0.0;
  std::printf("4-stream aggregate speedup: %.2fx (gate: >= 2x)\n", scaling);
  if (scaling < 2.0) {
    std::fprintf(stderr,
                 "FAILED: 4-stream aggregate %.1f fps < 2x single-stream "
                 "%.1f fps\n",
                 four_fps, single_fps);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Soak mode.
// ---------------------------------------------------------------------------

struct SoakConfig {
  int64_t sessions = 1000;   ///< total sessions churned through the run
  int64_t concurrent = 12;   ///< live sessions at any instant
  uint64_t seed = 2018;      ///< schedule seed (fully deterministic)
  int64_t faults = 20;       ///< poisoned sessions (stage throws)
  double p99_ms = 150.0;     ///< per-session p99 latency SLO
  std::string metrics_json;  ///< optional snapshot dump for check_metrics
};

/// Shared with the server's worker threads through the deliver hook;
/// deliveries of one session never run concurrently, the harness thread
/// reads only after drain, so relaxed atomics suffice.
struct DeliveryProbe {
  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> last_seq{-1};
  std::atomic<int64_t> order_violations{0};
};

struct StreamRecord {
  int64_t id = -1;
  std::string name;
  int64_t budget = 0;  ///< frames to submit before closing mid-stream
  int64_t accepted = 0;
  int64_t next_seq = 0;
  bool poisoned = false;
  bool finished = false;
  std::shared_ptr<DeliveryProbe> probe;
};

/// Stage sleep with deterministic per-frame jitter plus a rare long stall
/// — both derived from the frame sequence, so the schedule replays from
/// the seed without any shared mutable state in the stage closure.
serve::ServeStage jitter_stage(const std::string& name, int64_t base_us,
                               int64_t jitter_us, bool engine) {
  return {name,
          [base_us, jitter_us](video::Frame& f) {
            const uint64_t h =
                static_cast<uint64_t>(f.sequence) * 0x9E3779B97F4A7C15ull;
            int64_t us = base_us + static_cast<int64_t>(
                                       h % static_cast<uint64_t>(jitter_us));
            if (f.sequence % 89 == 13) us += 1000;  // random-ish stall
            std::this_thread::sleep_for(std::chrono::microseconds(us));
          },
          engine};
}

/// Poisoned final stage: the n-th execution throws, which must quarantine
/// this session only.
serve::ServeStage poison_stage(const std::string& session_name,
                               int64_t fault_at) {
  auto execs = std::make_shared<std::atomic<int64_t>>(0);
  return {"post",
          [execs, session_name, fault_at](video::Frame&) {
            if (execs->fetch_add(1) + 1 == fault_at)
              throw std::runtime_error("injected fault in session " +
                                       session_name);
            std::this_thread::sleep_for(std::chrono::microseconds(120));
          },
          false};
}

int run_soak(const SoakConfig& cfg) {
  std::printf("soak: %" PRId64 " sessions (%" PRId64 " concurrent, %" PRId64
              " poisoned), seed %llu, p99 SLO %.1f ms\n",
              cfg.sessions, cfg.concurrent, cfg.faults,
              static_cast<unsigned long long>(cfg.seed), cfg.p99_ms);

  Rng rng(cfg.seed);
  telemetry::MetricsRegistry registry;
  serve::ServerOptions opts;
  opts.num_workers = 4;
  opts.overload_policy = serve::OverloadPolicy::kShedOldest;
  opts.metrics = &registry;
  serve::StreamServer server(opts);

  // Spread the poisoned sessions evenly across the run.
  const int64_t stride =
      cfg.faults > 0 ? std::max<int64_t>(1, cfg.sessions / cfg.faults) : 0;
  auto is_poisoned = [&](int64_t i) {
    return cfg.faults > 0 && i % stride == stride / 2 &&
           i / stride < cfg.faults;
  };

  std::vector<StreamRecord> records(static_cast<size_t>(cfg.sessions));
  int64_t violations = 0;
  auto violation = [&](const std::string& what) {
    ++violations;
    std::fprintf(stderr, "soak violation: %s\n", what.c_str());
  };

  auto open_stream = [&](int64_t i) {
    StreamRecord& r = records[static_cast<size_t>(i)];
    r.name = "soak" + std::to_string(i);
    r.poisoned = is_poisoned(i);
    // Poisoned streams never reach their budget: they run until the
    // injected fault quarantines them.
    r.budget = r.poisoned ? INT64_MAX / 2 : rng.uniform_int(6, 24);
    r.probe = std::make_shared<DeliveryProbe>();
    auto probe = r.probe;
    serve::SessionConfig sc;
    sc.name = r.name;
    sc.weight = static_cast<int>(rng.uniform_int(1, 3));
    sc.priority = rng.bernoulli(0.1) ? 1 : 0;  // a high-priority tier mix
    sc.queue_capacity = 4;
    sc.stages.push_back(jitter_stage("pre", 80, 120, false));
    sc.stages.push_back(jitter_stage("engine", 60, 40, true));
    if (r.poisoned)
      sc.stages.push_back(poison_stage(r.name, /*fault_at=*/2));
    else if (rng.bernoulli(0.8))
      sc.stages.push_back(jitter_stage("post", 80, 120, false));
    sc.deliver = [probe](video::Frame&& f) {
      const int64_t prev = probe->last_seq.exchange(f.sequence);
      if (f.sequence <= prev) probe->order_violations.fetch_add(1);
      probe->delivered.fetch_add(1);
    };
    r.id = server.open_session(std::move(sc));
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::deque<int64_t> alive;
  int64_t opened = 0;
  int64_t finished = 0;
  const int64_t initial = std::min(cfg.concurrent, cfg.sessions);
  for (; opened < initial; ++opened) {
    open_stream(opened);
    alive.push_back(opened);
  }
  server.start();

  while (finished < cfg.sessions) {
    // Churn: keep the live set topped up — open_session on a running
    // server is the join-mid-serve path.
    while (static_cast<int64_t>(alive.size()) < cfg.concurrent &&
           opened < cfg.sessions) {
      open_stream(opened);
      alive.push_back(opened);
      ++opened;
    }

    for (auto it = alive.begin(); it != alive.end();) {
      StreamRecord& r = records[static_cast<size_t>(*it)];

      if (server.quarantined(r.id)) {
        // Fault isolation probe: a poisoned session must answer
        // kQuarantined from now on.
        video::Frame f;
        f.sequence = r.next_seq;
        if (server.submit(r.id, std::move(f)) !=
            serve::ServeResult::kQuarantined)
          violation(r.name + ": submit after quarantine not kQuarantined");
        if (!r.poisoned)
          violation(r.name + ": healthy session got quarantined");
        r.finished = true;
        ++finished;
        it = alive.erase(it);
        continue;
      }

      if (r.accepted >= r.budget) {
        // Leave mid-stream: frames may still be queued/in flight; the
        // queued ones are dropped, in-flight ones deliver, and a
        // further submit must answer kClosed.
        server.close_session(r.id);
        video::Frame f;
        f.sequence = r.next_seq;
        if (server.submit(r.id, std::move(f)) != serve::ServeResult::kClosed)
          violation(r.name + ": submit after close not kClosed");
        r.finished = true;
        ++finished;
        it = alive.erase(it);
        continue;
      }

      // Bursty submission: mostly paced against the admission queue so
      // frames actually flow, with occasional deliberate over-bursts
      // that exercise the shed-oldest path.
      const int64_t depth = server.queue_depth(r.id);
      int64_t burst = rng.uniform_int(1, 4);
      if (!rng.bernoulli(0.08))
        burst = std::min(burst, std::max<int64_t>(0, 4 - depth));
      for (int64_t b = 0; b < burst && r.accepted < r.budget; ++b) {
        video::Frame f;
        f.sequence = r.next_seq;
        const auto res = server.submit(r.id, std::move(f));
        if (res == serve::ServeResult::kAccepted) {
          ++r.accepted;
          ++r.next_seq;
        } else if (res == serve::ServeResult::kQuarantined) {
          break;  // handled at the top of the next sweep
        } else {
          // kShedOldest admits whenever the queue is non-empty, so
          // neither kOverloaded nor kClosed is expected here.
          violation(r.name + ": unexpected submit result " +
                    std::to_string(static_cast<int>(res)));
          break;
        }
      }
      ++it;
    }

    // Random producer stalls let queues drain unevenly.
    if (rng.bernoulli(0.2))
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.uniform_int(100, 600)));
    else
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  server.drain();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  // ---- Post-run assertions over the telemetry snapshot. -----------------
  const auto snap = registry.snapshot();
  int64_t total_delivered = 0, total_shed = 0, total_dropped = 0,
          total_faults = 0, quarantined_count = 0;
  double worst_p99 = 0.0;
  for (const StreamRecord& r : records) {
    const std::string prefix = "serve.session." + r.name + ".";
    const int64_t frames = snap.counter_value(prefix + "frames");
    const int64_t shed = snap.counter_value(prefix + "shed");
    const int64_t dropped = snap.counter_value(prefix + "dropped");
    const int64_t faults = snap.counter_value(prefix + "faults");
    total_delivered += frames;
    total_shed += shed;
    total_dropped += dropped;
    total_faults += faults;

    if (r.probe->order_violations.load() != 0)
      violation(r.name + ": " +
                std::to_string(r.probe->order_violations.load()) +
                " out-of-order deliveries");
    if (r.probe->delivered.load() != frames)
      violation(r.name + ": probe saw " +
                std::to_string(r.probe->delivered.load()) +
                " deliveries but frames counter says " +
                std::to_string(frames));
    if (frames + shed + dropped != r.accepted)
      violation(r.name + ": accounting " + std::to_string(frames) + "+" +
                std::to_string(shed) + "+" + std::to_string(dropped) +
                " != accepted " + std::to_string(r.accepted));
    const bool quarantined = server.quarantined(r.id);
    if (quarantined) ++quarantined_count;
    if (quarantined != r.poisoned)
      violation(r.name + (r.poisoned ? ": poisoned but never quarantined"
                                     : ": quarantined without poison"));
    if (r.poisoned && faults < 1)
      violation(r.name + ": poisoned but faults counter is 0");

    const auto* h = snap.find_histogram(prefix + "latency_ms");
    if (h != nullptr && h->stats.count > 0) {
      worst_p99 = std::max(worst_p99, h->stats.p99);
      if (h->stats.p99 > cfg.p99_ms) {
        violation(r.name + ": p99 " + std::to_string(h->stats.p99) +
                  " ms exceeds SLO " + std::to_string(cfg.p99_ms) + " ms");
        std::fprintf(stderr,
                     "  %s: count=%" PRId64
                     " mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f ms\n",
                     r.name.c_str(), h->stats.count, h->stats.mean(),
                     h->stats.p50, h->stats.p95, h->stats.p99, h->stats.max);
      }
    }
  }

  if (!cfg.metrics_json.empty())
    telemetry::write_json(snap, cfg.metrics_json);

  std::printf("soak: %" PRId64 " sessions in %.2f s — delivered %" PRId64
              ", shed %" PRId64 ", dropped %" PRId64 ", faults %" PRId64
              ", quarantined %" PRId64 "\n",
              cfg.sessions, elapsed_s, total_delivered, total_shed,
              total_dropped, total_faults, quarantined_count);
  std::printf("soak: worst session p99 %.2f ms (SLO %.1f ms), engine grants "
              "%lld\n",
              worst_p99, cfg.p99_ms,
              static_cast<long long>(server.arbiter().grants()));
  if (violations != 0) {
    std::fprintf(stderr, "FAILED: %" PRId64 " soak violations\n", violations);
    return 1;
  }
  std::printf("soak: PASS — in-order delivery, exact accounting, fault "
              "isolation, p99 within SLO\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool soak = false;
  SoakConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      cfg.sessions = std::atoll(need("--sessions"));
    } else if (std::strcmp(argv[i], "--concurrent") == 0) {
      cfg.concurrent = std::atoll(need("--concurrent"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = static_cast<uint64_t>(std::atoll(need("--seed")));
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      cfg.faults = std::atoll(need("--faults"));
    } else if (std::strcmp(argv[i], "--p99-ms") == 0) {
      cfg.p99_ms = std::atof(need("--p99-ms"));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      cfg.metrics_json = need("--metrics-json");
    } else {
      std::fprintf(stderr,
                   "usage: multistream [--soak [--sessions N] "
                   "[--concurrent N] [--seed S] [--faults N] [--p99-ms X] "
                   "[--metrics-json PATH]]\n");
      return 2;
    }
  }
  if (!soak) return run_sweep();
  if (cfg.sessions < 1 || cfg.concurrent < 1 || cfg.faults < 0 ||
      cfg.faults > cfg.sessions || cfg.p99_ms <= 0.0) {
    std::fprintf(stderr, "error: invalid soak configuration\n");
    return 2;
  }
  return run_soak(cfg);
}
