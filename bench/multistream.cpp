// Multi-stream serving throughput over the shared fabric engine.
//
// Sweeps 1..8 concurrent streams through a StreamServer whose sessions
// model the paper's deployment timing: two CPU-bound stages around one
// engine-bound stage. Stage "work" is a timed sleep, so the sweep
// measures the *scheduler* — single-slot stage serialization within a
// stream, engine exclusivity across streams — independently of host core
// count (the CI host may have a single core).
//
// Expectation: a single stream is gated by its slowest stage (the
// single-slot buffers forbid two frames inside one stage), so N streams
// scale aggregate throughput nearly linearly while the arbiter keeps the
// engine granted to one session at a time — until the engine itself
// saturates. The acceptance gate (tier2-serve) is aggregate throughput
// at 4 streams >= 2x the single-stream throughput.

#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "video/frame.hpp"

using namespace tincy;

namespace {

constexpr double kCpuStageMs = 4.0;
constexpr double kEngineStageMs = 1.0;
constexpr int64_t kFramesPerStream = 48;

serve::ServeStage sleep_stage(const std::string& name, double ms,
                              bool engine) {
  const auto dur = std::chrono::duration<double, std::milli>(ms);
  return {name, [dur](video::Frame&) { std::this_thread::sleep_for(dur); },
          engine};
}

}  // namespace

int main() {
  std::printf("multi-stream serving sweep (%.0f ms CPU stages, %.0f ms "
              "engine stage, %lld frames/stream)\n",
              kCpuStageMs, kEngineStageMs,
              static_cast<long long>(kFramesPerStream));
  std::printf("%8s %12s %14s %10s %14s\n", "streams", "agg fps",
              "fps/stream", "speedup", "engine grants");

  double single_fps = 0.0;
  double four_fps = 0.0;
  for (const int streams : {1, 2, 4, 8}) {
    telemetry::MetricsRegistry registry;
    serve::ServerOptions opts;
    opts.num_workers = 3 * streams;
    opts.metrics = &registry;
    serve::StreamServer server(opts);
    for (int i = 0; i < streams; ++i) {
      serve::SessionConfig sc;
      sc.stages = {sleep_stage("pre", kCpuStageMs, false),
                   sleep_stage("engine", kEngineStageMs, true),
                   sleep_stage("post", kCpuStageMs, false)};
      sc.queue_capacity = 4;
      server.open_session(std::move(sc));
    }
    server.start();
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<int64_t> sent(static_cast<size_t>(streams), 0);
    int64_t remaining = static_cast<int64_t>(streams) * kFramesPerStream;
    int64_t seq = 0;
    while (remaining > 0) {
      bool progressed = false;
      for (int i = 0; i < streams; ++i) {
        const auto ui = static_cast<size_t>(i);
        if (sent[ui] == kFramesPerStream) continue;
        video::Frame f;
        f.sequence = seq;
        if (server.submit(i, std::move(f)) ==
            serve::ServeResult::kAccepted) {
          ++seq;
          ++sent[ui];
          --remaining;
          progressed = true;
        }
      }
      if (!progressed)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    server.drain();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.stop();

    const double total =
        static_cast<double>(streams) * static_cast<double>(kFramesPerStream);
    const double fps = elapsed_s > 0.0 ? total / elapsed_s : 0.0;
    if (streams == 1) single_fps = fps;
    if (streams == 4) four_fps = fps;
    std::printf("%8d %12.1f %14.1f %9.2fx %14lld\n", streams, fps,
                fps / streams, single_fps > 0.0 ? fps / single_fps : 0.0,
                static_cast<long long>(server.arbiter().grants()));
  }

  const double scaling = single_fps > 0.0 ? four_fps / single_fps : 0.0;
  std::printf("4-stream aggregate speedup: %.2fx (gate: >= 2x)\n", scaling);
  if (scaling < 2.0) {
    std::fprintf(stderr,
                 "FAILED: 4-stream aggregate %.1f fps < 2x single-stream "
                 "%.1f fps\n",
                 four_fps, single_fps);
    return 1;
  }
  return 0;
}
