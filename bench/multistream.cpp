// Multi-stream serving throughput AND production soak over the shared
// fabric engine.
//
// Default mode sweeps 1..8 concurrent streams through a StreamServer
// whose sessions model the paper's deployment timing: two CPU-bound
// stages around one engine-bound stage. Stage "work" is a timed sleep,
// so the sweep measures the *scheduler* — single-slot stage serialization
// within a stream, engine exclusivity across streams — independently of
// host core count (the CI host may have a single core). The acceptance
// gate (tier2-serve) is aggregate throughput at 4 streams >= 2x the
// single-stream throughput.
//
// --soak mode is the production-hardening harness: ~1k short-lived
// sessions churn through the server (join/leave mid-stream, bursty
// submission, random stalls, a handful of poisoned sessions whose stages
// throw), while the harness asserts
//   * strictly in-order delivery per session,
//   * exact frame accounting (delivered + shed + dropped == accepted),
//   * fault isolation (exactly the poisoned sessions quarantine,
//     everything else keeps flowing),
//   * submit-after-close answers kClosed, submit-after-fault answers
//     kQuarantined,
//   * bounded tail latency (p99 of every session under --p99-ms).
// The schedule is fully deterministic from --seed. On an SLO violation
// the offending session's telemetry summary is printed.
//
// With --flight-dir the soak also arms the fault flight recorder and
// asserts post-run that every quarantined session produced a post-mortem
// dump naming it and the injected fault; --trace writes the whole soak's
// Chrome trace.
//
// --batched additionally gates tracing overhead: the 8-stream batched
// arm is re-run with a trace collector attached but disabled, and must
// stay within 2% of the sweep's throughput (the disabled fast path is
// one relaxed atomic load per emission site).
//
//   multistream --soak [--sessions N] [--concurrent N] [--seed S]
//               [--faults N] [--p99-ms X] [--metrics-json PATH]
//               [--trace PATH] [--flight-dir DIR]

// ServeStage carries optional batched fields (batch_work, engine_layer)
// with safe defaults; the three-field {name, work, uses_engine} literal
// stays the canonical spelling for plain CPU stages.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/errors.hpp"
#include "core/rng.hpp"
#include "fabric/accelerator.hpp"
#include "quant/binary.hpp"
#include "serve/server.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"
#include "video/frame.hpp"

using namespace tincy;

namespace {

serve::ServeStage sleep_stage(const std::string& name, double ms,
                              bool engine) {
  const auto dur = std::chrono::duration<double, std::milli>(ms);
  return {name, [dur](video::Frame&) { std::this_thread::sleep_for(dur); },
          engine};
}

// ---------------------------------------------------------------------------
// Sweep mode (the original tier2-serve throughput gate).
// ---------------------------------------------------------------------------

constexpr double kCpuStageMs = 4.0;
constexpr double kEngineStageMs = 1.0;
constexpr int64_t kFramesPerStream = 48;

int run_sweep() {
  std::printf("multi-stream serving sweep (%.0f ms CPU stages, %.0f ms "
              "engine stage, %lld frames/stream)\n",
              kCpuStageMs, kEngineStageMs,
              static_cast<long long>(kFramesPerStream));
  std::printf("%8s %12s %14s %10s %14s\n", "streams", "agg fps",
              "fps/stream", "speedup", "engine grants");

  double single_fps = 0.0;
  double four_fps = 0.0;
  for (const int streams : {1, 2, 4, 8}) {
    telemetry::MetricsRegistry registry;
    serve::ServerOptions opts;
    opts.num_workers = 3 * streams;
    opts.metrics = &registry;
    serve::StreamServer server(opts);
    for (int i = 0; i < streams; ++i) {
      serve::SessionConfig sc;
      sc.stages = {sleep_stage("pre", kCpuStageMs, false),
                   sleep_stage("engine", kEngineStageMs, true),
                   sleep_stage("post", kCpuStageMs, false)};
      sc.queue_capacity = 4;
      server.open_session(std::move(sc));
    }
    server.start();
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<int64_t> sent(static_cast<size_t>(streams), 0);
    int64_t remaining = static_cast<int64_t>(streams) * kFramesPerStream;
    int64_t seq = 0;
    while (remaining > 0) {
      bool progressed = false;
      for (int i = 0; i < streams; ++i) {
        const auto ui = static_cast<size_t>(i);
        if (sent[ui] == kFramesPerStream) continue;
        video::Frame f;
        f.sequence = seq;
        if (server.submit(i, std::move(f)) ==
            serve::ServeResult::kAccepted) {
          ++seq;
          ++sent[ui];
          --remaining;
          progressed = true;
        }
      }
      if (!progressed)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    server.drain();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.stop();

    const double total =
        static_cast<double>(streams) * static_cast<double>(kFramesPerStream);
    const double fps = elapsed_s > 0.0 ? total / elapsed_s : 0.0;
    if (streams == 1) single_fps = fps;
    if (streams == 4) four_fps = fps;
    std::printf("%8d %12.1f %14.1f %9.2fx %14lld\n", streams, fps,
                fps / streams, single_fps > 0.0 ? fps / single_fps : 0.0,
                static_cast<long long>(server.arbiter().grants()));
  }

  const double scaling = single_fps > 0.0 ? four_fps / single_fps : 0.0;
  std::printf("4-stream aggregate speedup: %.2fx (gate: >= 2x)\n", scaling);
  if (scaling < 2.0) {
    std::fprintf(stderr,
                 "FAILED: 4-stream aggregate %.1f fps < 2x single-stream "
                 "%.1f fps\n",
                 four_fps, single_fps);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Batched mode (tier2-batch): gang-scheduled cross-stream batching over a
// real fabric layer, against the sequential per-frame-grant baseline.
//
// Every stream runs pre (CPU sleep) -> engine -> post (CPU sleep); the
// engine stage executes one offloaded FC-style layer bit-exactly through
// QnnAccelerator::run_layer_batched and sleeps the modeled pass time, so
// the measured throughput reflects the cycle model's weight-DMA
// amortization. Gates: modeled weight-DMA cycles per frame strictly
// decreasing with stream count, >= 1.5x aggregate throughput over the
// unbatched baseline at 8 streams, and bit-identical outputs (every
// delivered frame is checked against the sequential forward_codes path).
// ---------------------------------------------------------------------------

constexpr int64_t kBatchFilters = 256;
constexpr int64_t kBatchInputs = 2304;  // 1x1 "FC" conv: 256 x 2304 weights
constexpr int64_t kBatchFramesPerStream = 48;
constexpr double kBatchTimeScale = 3.0;  // modeled cycles -> wall-clock sleep
constexpr int64_t kBatchMax = 8;
constexpr int64_t kBatchLingerUs = 300;

fabric::QnnAccelerator build_batch_accelerator() {
  fabric::QnnLayerSpec spec;
  spec.in_channels = kBatchInputs;
  spec.in_height = 1;
  spec.in_width = 1;
  spec.filters = kBatchFilters;
  spec.kernel = 1;
  spec.stride = 1;
  spec.pad = 0;
  spec.act_bits_in = 3;
  spec.act_bits_out = 3;
  spec.in_scale = 0.25f;
  spec.out_scale = 0.5f;
  Rng rng(2018);
  Tensor w(Shape{kBatchFilters, kBatchInputs});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  // Thresholds spread over the accumulator range (~N(0, sqrt(K)*std of a
  // code)) so the 3-bit outputs actually vary instead of saturating.
  std::vector<fabric::ThresholdChannel> th(
      static_cast<size_t>(kBatchFilters));
  for (auto& ch : th)
    for (int k = -3; k <= 3; ++k) ch.thresholds.push_back(k * 30);
  fabric::QnnAccelerator accel;
  accel.add_layer(spec, quant::binarize(w), std::move(th));
  return accel;
}

/// Deterministic per-frame activation codes: both the serving path and
/// the sequential reference derive a frame's input from its sequence.
uint8_t batch_input_code(int64_t seq, int64_t i) {
  uint64_t h = static_cast<uint64_t>(seq) * 0x9E3779B97F4A7C15ull +
               static_cast<uint64_t>(i) * 0xBF58476D1CE4E5B9ull;
  h ^= h >> 31;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 29;
  return static_cast<uint8_t>(h & 7);
}

struct BatchArm {
  double fps = 0.0;
  int64_t frames = 0;        ///< frames through the engine stage
  int64_t passes = 0;        ///< engine grants (gangs count once)
  int64_t max_batch = 0;     ///< largest gang observed
  double dma_per_frame = 0;  ///< modeled weight-DMA cycles per frame
  int64_t dma_amortized = 0;
  int64_t dma_saved = 0;
  int64_t mismatches = 0;
  bool consistent = true;    ///< fabric.dma_* vs batch_size histogram
};

BatchArm run_batch_arm(fabric::QnnAccelerator& accel, int streams,
                       bool batched, const std::string& metrics_json,
                       telemetry::TraceCollector* trace = nullptr) {
  telemetry::MetricsRegistry registry;
  accel.set_metrics(&registry);

  const int64_t in_n = accel.input_shape().numel();
  const int64_t out_n = accel.output_shape().numel();
  const int64_t total =
      static_cast<int64_t>(streams) * kBatchFramesPerStream;
  const int64_t wdma = accel.layer_perf(0).weight_dma_cycles;

  // Sequential per-frame reference (the existing forward_codes path).
  std::vector<std::vector<uint8_t>> expected(static_cast<size_t>(total));
  {
    std::vector<uint8_t> input(static_cast<size_t>(in_n));
    for (int64_t seq = 0; seq < total; ++seq) {
      for (int64_t i = 0; i < in_n; ++i)
        input[static_cast<size_t>(i)] = batch_input_code(seq, i);
      expected[static_cast<size_t>(seq)] = accel.forward_codes(input);
    }
  }

  std::atomic<int64_t> mismatches{0};
  serve::ServerOptions opts;
  opts.num_workers = 3 * streams;
  opts.metrics = &registry;
  opts.arbiter.max_batch = batched ? kBatchMax : 1;
  opts.arbiter.batch_linger_us = batched ? kBatchLingerUs : 0;
  if (trace != nullptr) opts.trace = trace;
  serve::StreamServer server(opts);

  auto engine_stage = [&]() {
    serve::ServeStage st;
    st.name = "engine";
    st.uses_engine = true;
    st.engine_layer = batched ? 0 : -1;
    st.batch_work = [&accel, in_n, out_n](
                        std::span<video::Frame* const> frames) {
      const int64_t batch = static_cast<int64_t>(frames.size());
      std::vector<uint8_t> in(static_cast<size_t>(batch * in_n));
      std::vector<uint8_t> out(static_cast<size_t>(batch * out_n));
      for (int64_t b = 0; b < batch; ++b)
        for (int64_t i = 0; i < in_n; ++i)
          in[static_cast<size_t>(b * in_n + i)] =
              batch_input_code(frames[static_cast<size_t>(b)]->sequence, i);
      accel.run_layer_batched(0, in, batch, out);
      for (int64_t b = 0; b < batch; ++b) {
        Tensor& feat = frames[static_cast<size_t>(b)]->features;
        feat = Tensor(Shape{out_n});
        for (int64_t i = 0; i < out_n; ++i)
          feat[i] = static_cast<float>(out[static_cast<size_t>(b * out_n + i)]);
      }
      // One engine hold models one pass: weights stream once, compute
      // and feature-map DMA scale with the batch.
      const auto perf = accel.layer_perf_batched(0, batch);
      const double ms = static_cast<double>(perf.total_cycles()) /
                        (accel.cycle_model().clock_mhz * 1e3) *
                        kBatchTimeScale;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    };
    return st;
  };

  for (int i = 0; i < streams; ++i) {
    serve::SessionConfig sc;
    sc.stages.push_back(sleep_stage("pre", 2.0, false));
    sc.stages.push_back(engine_stage());
    sc.stages.push_back(sleep_stage("post", 2.0, false));
    sc.queue_capacity = 4;
    sc.deliver = [&expected, &mismatches, out_n](video::Frame&& f) {
      const auto& exp = expected[static_cast<size_t>(f.sequence)];
      if (f.features.numel() != out_n) {
        mismatches.fetch_add(1);
        return;
      }
      for (int64_t i = 0; i < out_n; ++i)
        if (f.features[i] != static_cast<float>(exp[static_cast<size_t>(i)])) {
          mismatches.fetch_add(1);
          return;
        }
    };
    server.open_session(std::move(sc));
  }
  server.start();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<int64_t> sent(static_cast<size_t>(streams), 0);
  int64_t remaining = total;
  int64_t seq = 0;
  while (remaining > 0) {
    bool progressed = false;
    for (int i = 0; i < streams; ++i) {
      const auto ui = static_cast<size_t>(i);
      if (sent[ui] == kBatchFramesPerStream) continue;
      video::Frame f;
      f.sequence = seq;
      if (server.submit(i, std::move(f)) == serve::ServeResult::kAccepted) {
        ++seq;
        ++sent[ui];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  server.drain();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  const auto snap = registry.snapshot();
  BatchArm arm;
  arm.fps = elapsed_s > 0.0 ? static_cast<double>(total) / elapsed_s : 0.0;
  const auto* bs = snap.find_histogram("serve.arbiter.batch_size");
  if (bs != nullptr && bs->stats.count > 0) {
    arm.passes = bs->stats.count;
    arm.frames = static_cast<int64_t>(bs->stats.sum + 0.5);
    arm.max_batch = static_cast<int64_t>(bs->stats.max + 0.5);
    arm.dma_per_frame = static_cast<double>(arm.passes * wdma) /
                        static_cast<double>(arm.frames);
  }
  arm.dma_amortized = snap.counter_value("fabric.dma_amortized");
  arm.dma_saved = snap.counter_value("fabric.dma_saved_cycles");
  arm.mismatches = mismatches.load();
  // Internal consistency: every coalesced frame beyond the first of its
  // pass is one amortized weight stream, worth exactly wdma saved cycles.
  arm.consistent = arm.frames == total &&
                   arm.dma_amortized == arm.frames - arm.passes &&
                   arm.dma_saved == arm.dma_amortized * wdma;
  if (!metrics_json.empty()) telemetry::write_json(snap, metrics_json);
  accel.set_metrics(nullptr);
  return arm;
}

int run_batched(const std::string& json_path,
                const std::string& metrics_json) {
  fabric::QnnAccelerator accel = build_batch_accelerator();
  const int64_t wdma = accel.layer_perf(0).weight_dma_cycles;
  std::printf("cross-stream batched serving sweep (%" PRId64 "x%" PRId64
              " layer, weight DMA %" PRId64 " cycles, max_batch %" PRId64
              ", linger %" PRId64 " us)\n",
              kBatchFilters, kBatchInputs, wdma, kBatchMax, kBatchLingerUs);
  std::printf("%8s %14s %12s %9s %12s %10s %10s\n", "streams", "unbatched",
              "batched fps", "speedup", "dma/frame", "passes", "max gang");

  const int stream_counts[] = {1, 2, 4, 8};
  BatchArm unbatched[4], batched[4];
  bool pass = true;
  for (int k = 0; k < 4; ++k) {
    const int streams = stream_counts[k];
    unbatched[k] = run_batch_arm(accel, streams, false, "");
    batched[k] = run_batch_arm(accel, streams, true,
                               streams == 8 ? metrics_json : "");
    std::printf("%8d %11.1f fps %8.1f fps %8.2fx %12.1f %10" PRId64
                " %10" PRId64 "\n",
                streams, unbatched[k].fps, batched[k].fps,
                unbatched[k].fps > 0.0 ? batched[k].fps / unbatched[k].fps
                                       : 0.0,
                batched[k].dma_per_frame, batched[k].passes,
                batched[k].max_batch);
    for (const BatchArm* arm : {&unbatched[k], &batched[k]}) {
      if (arm->mismatches != 0) {
        std::fprintf(stderr,
                     "FAILED: %" PRId64 " output mismatches vs the "
                     "sequential per-frame path at %d streams\n",
                     arm->mismatches, streams);
        pass = false;
      }
      if (!arm->consistent) {
        std::fprintf(stderr,
                     "FAILED: fabric.dma_* inconsistent with the "
                     "batch_size histogram at %d streams (frames %" PRId64
                     ", passes %" PRId64 ", amortized %" PRId64
                     ", saved %" PRId64 ")\n",
                     streams, arm->frames, arm->passes, arm->dma_amortized,
                     arm->dma_saved);
        pass = false;
      }
    }
  }

  // Gate 1: modeled weight-DMA cycles per frame strictly decreasing with
  // the stream count (more same-layer peers -> bigger gangs).
  for (int k = 1; k < 4; ++k) {
    if (!(batched[k].dma_per_frame < batched[k - 1].dma_per_frame)) {
      std::fprintf(stderr,
                   "FAILED: weight-DMA/frame not strictly decreasing: "
                   "%.1f @ %d streams vs %.1f @ %d streams\n",
                   batched[k].dma_per_frame, stream_counts[k],
                   batched[k - 1].dma_per_frame, stream_counts[k - 1]);
      pass = false;
    }
  }
  // Gate 2: batching buys >= 1.5x aggregate throughput at 8 streams.
  const double speedup8 =
      unbatched[3].fps > 0.0 ? batched[3].fps / unbatched[3].fps : 0.0;
  std::printf("8-stream batched speedup: %.2fx (gate: >= 1.5x), weight-DMA "
              "per frame %.1f -> %.1f cycles\n",
              speedup8, batched[0].dma_per_frame, batched[3].dma_per_frame);
  if (speedup8 < 1.5) {
    std::fprintf(stderr,
                 "FAILED: 8-stream batched %.1f fps < 1.5x unbatched "
                 "%.1f fps\n",
                 batched[3].fps, unbatched[3].fps);
    pass = false;
  }

  // Gate 3: the trace instrumentation, compiled in but *disabled*, must
  // be throughput-neutral — re-run the 8-stream batched arm with an
  // explicit (disabled) collector attached and compare against the
  // sweep's measurement of the identical configuration. Retries absorb
  // scheduler noise on loaded CI hosts.
  // Individual ~0.2 s arms jitter well beyond 2%, so the comparison is
  // sampled in alternating-order pairs (clock drift would otherwise
  // consistently favor whichever side runs first) until it converges:
  // the true cost of the disabled path is ~zero, so the sides must meet.
  // Two estimators, either may pass the gate: best-of-N on both sides
  // (accrued only from these pairs — seeding the baseline from the
  // sweep's earlier measurement would pit the disabled arm against a
  // different machine state), and the best *within-pair* ratio, which a
  // one-off lucky spike on the plain side cannot poison.
  telemetry::TraceCollector probe;  // starts disabled
  double best_plain = 0.0, best_disabled = 0.0;
  double overhead_pct = 100.0;
  for (int attempt = 0; attempt < 8 && overhead_pct >= 2.0; ++attempt) {
    telemetry::TraceCollector* order[2] = {nullptr, &probe};
    if (attempt % 2 != 0) std::swap(order[0], order[1]);
    double pair_plain = 0.0, pair_disabled = 0.0;
    for (telemetry::TraceCollector* t : order) {
      const double fps = run_batch_arm(accel, 8, true, "", t).fps;
      (t == nullptr ? pair_plain : pair_disabled) = fps;
    }
    best_plain = std::max(best_plain, pair_plain);
    best_disabled = std::max(best_disabled, pair_disabled);
    const double of_best =
        best_plain > 0.0
            ? std::max(0.0, (1.0 - best_disabled / best_plain) * 100.0)
            : 0.0;
    const double of_pair =
        pair_plain > 0.0
            ? std::max(0.0, (1.0 - pair_disabled / pair_plain) * 100.0)
            : 0.0;
    overhead_pct = std::min({overhead_pct, of_best, of_pair});
  }
  std::printf("tracing disabled: %.1f fps vs baseline %.1f fps — %.2f%% "
              "overhead (gate: < 2%%)\n",
              best_disabled, best_plain, overhead_pct);
  if (overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAILED: disabled tracing costs %.2f%% throughput "
                 "(%.1f fps vs %.1f fps)\n",
                 overhead_pct, best_disabled, best_plain);
    pass = false;
  }
  // Informational: the same arm with tracing live, plus its event count.
  probe.set_enabled(true);
  const double enabled_fps = run_batch_arm(accel, 8, true, "", &probe).fps;
  probe.set_enabled(false);
  const size_t trace_events = probe.snapshot().size();
  std::printf("tracing enabled: %.1f fps, %zu events retained\n",
              enabled_fps, trace_events);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"schema\": \"tincy-bench-multistream-v1\",\n"
        << "  \"weight_dma_cycles\": " << wdma
        << ",\n  \"max_batch\": " << kBatchMax
        << ",\n  \"batch_linger_us\": " << kBatchLingerUs
        << ",\n  \"frames_per_stream\": " << kBatchFramesPerStream
        << ",\n  \"sweep\": [";
    for (int k = 0; k < 4; ++k) {
      out << (k == 0 ? "" : ",") << "\n    {\"streams\": "
          << stream_counts[k]
          << ", \"unbatched_fps\": " << unbatched[k].fps
          << ", \"batched_fps\": " << batched[k].fps
          << ",\n     \"dma_per_frame_unbatched\": "
          << unbatched[k].dma_per_frame
          << ", \"dma_per_frame_batched\": " << batched[k].dma_per_frame
          << ",\n     \"passes\": " << batched[k].passes
          << ", \"max_batch_seen\": " << batched[k].max_batch
          << ", \"dma_saved_cycles\": " << batched[k].dma_saved << "}";
    }
    out << "\n  ],\n  \"speedup_8_streams\": " << speedup8
        << ",\n  \"trace_overhead\": {\"baseline_fps\": " << best_plain
        << ", \"disabled_fps\": " << best_disabled
        << ", \"overhead_pct\": " << overhead_pct
        << ",\n                     \"enabled_fps\": " << enabled_fps
        << ", \"enabled_events\": " << trace_events << "}"
        << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "batched: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!pass) return 1;
  std::printf("batched: PASS — DMA/frame strictly decreasing, >= 1.5x at 8 "
              "streams, bit-identical outputs\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Soak mode.
// ---------------------------------------------------------------------------

struct SoakConfig {
  int64_t sessions = 1000;   ///< total sessions churned through the run
  int64_t concurrent = 12;   ///< live sessions at any instant
  uint64_t seed = 2018;      ///< schedule seed (fully deterministic)
  int64_t faults = 20;       ///< poisoned sessions (stage throws)
  double p99_ms = 150.0;     ///< per-session p99 latency SLO
  std::string metrics_json;  ///< optional snapshot dump for check_metrics
  std::string trace_json;    ///< optional Chrome trace of the whole soak
  std::string flight_dir;    ///< arms the fault flight recorder
};

/// Shared with the server's worker threads through the deliver hook;
/// deliveries of one session never run concurrently, the harness thread
/// reads only after drain, so relaxed atomics suffice.
struct DeliveryProbe {
  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> last_seq{-1};
  std::atomic<int64_t> order_violations{0};
};

struct StreamRecord {
  int64_t id = -1;
  std::string name;
  int64_t budget = 0;  ///< frames to submit before closing mid-stream
  int64_t accepted = 0;
  int64_t next_seq = 0;
  bool poisoned = false;
  bool finished = false;
  std::shared_ptr<DeliveryProbe> probe;
};

/// Stage sleep with deterministic per-frame jitter plus a rare long stall
/// — both derived from the frame sequence, so the schedule replays from
/// the seed without any shared mutable state in the stage closure.
serve::ServeStage jitter_stage(const std::string& name, int64_t base_us,
                               int64_t jitter_us, bool engine) {
  return {name,
          [base_us, jitter_us](video::Frame& f) {
            const uint64_t h =
                static_cast<uint64_t>(f.sequence) * 0x9E3779B97F4A7C15ull;
            int64_t us = base_us + static_cast<int64_t>(
                                       h % static_cast<uint64_t>(jitter_us));
            if (f.sequence % 89 == 13) us += 1000;  // random-ish stall
            std::this_thread::sleep_for(std::chrono::microseconds(us));
          },
          engine};
}

/// Gang-schedulable engine stage for the soak: all sessions run "the same
/// offloaded layer" (engine_layer 0), so frames of different sessions
/// coalesce into one grant under churn. The sleep models one pass: the
/// base cost paid once per gang plus deterministic per-frame jitter, and
/// every frame of the gang is tallied so the post-run assertions can
/// balance the batch_size histogram against actual executions.
serve::ServeStage gang_stage(int64_t base_us, int64_t jitter_us,
                             std::shared_ptr<std::atomic<int64_t>> ganged) {
  serve::ServeStage st;
  st.name = "engine";
  st.uses_engine = true;
  st.engine_layer = 0;
  st.batch_work = [base_us, jitter_us,
                   ganged](std::span<video::Frame* const> frames) {
    int64_t us = base_us;
    for (const video::Frame* f : frames) {
      const uint64_t h =
          static_cast<uint64_t>(f->sequence) * 0x9E3779B97F4A7C15ull;
      us += static_cast<int64_t>(h % static_cast<uint64_t>(jitter_us)) /
            static_cast<int64_t>(frames.size());
    }
    ganged->fetch_add(static_cast<int64_t>(frames.size()));
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  };
  return st;
}

/// Poisoned final stage: the n-th execution throws, which must quarantine
/// this session only.
serve::ServeStage poison_stage(const std::string& session_name,
                               int64_t fault_at) {
  auto execs = std::make_shared<std::atomic<int64_t>>(0);
  return {"post",
          [execs, session_name, fault_at](video::Frame&) {
            if (execs->fetch_add(1) + 1 == fault_at)
              throw std::runtime_error("injected fault in session " +
                                       session_name);
            std::this_thread::sleep_for(std::chrono::microseconds(120));
          },
          false};
}

int run_soak(const SoakConfig& cfg) {
  std::printf("soak: %" PRId64 " sessions (%" PRId64 " concurrent, %" PRId64
              " poisoned), seed %llu, p99 SLO %.1f ms\n",
              cfg.sessions, cfg.concurrent, cfg.faults,
              static_cast<unsigned long long>(cfg.seed), cfg.p99_ms);

  Rng rng(cfg.seed);
  telemetry::MetricsRegistry registry;
  serve::ServerOptions opts;
  opts.num_workers = 4;
  opts.overload_policy = serve::OverloadPolicy::kShedOldest;
  // Gang scheduling under churn: every session's engine stage names the
  // same offloaded layer, so batches form whenever several streams have a
  // frame waiting there.
  opts.arbiter.max_batch = 4;
  opts.arbiter.batch_linger_us = 150;
  opts.metrics = &registry;
  // Tracing/flight recording: the flight recorder needs a live collector
  // to have a tail to dump, so --flight-dir implies tracing too.
  telemetry::TraceCollector collector;
  if (!cfg.trace_json.empty() || !cfg.flight_dir.empty()) {
    collector.set_enabled(true);
    opts.trace = &collector;
    opts.flight_recorder_dir = cfg.flight_dir;
  }
  serve::StreamServer server(opts);
  auto ganged_frames = std::make_shared<std::atomic<int64_t>>(0);

  // Spread the poisoned sessions evenly across the run.
  const int64_t stride =
      cfg.faults > 0 ? std::max<int64_t>(1, cfg.sessions / cfg.faults) : 0;
  auto is_poisoned = [&](int64_t i) {
    return cfg.faults > 0 && i % stride == stride / 2 &&
           i / stride < cfg.faults;
  };

  std::vector<StreamRecord> records(static_cast<size_t>(cfg.sessions));
  int64_t violations = 0;
  auto violation = [&](const std::string& what) {
    ++violations;
    std::fprintf(stderr, "soak violation: %s\n", what.c_str());
  };

  auto open_stream = [&](int64_t i) {
    StreamRecord& r = records[static_cast<size_t>(i)];
    r.name = "soak" + std::to_string(i);
    r.poisoned = is_poisoned(i);
    // Poisoned streams never reach their budget: they run until the
    // injected fault quarantines them.
    r.budget = r.poisoned ? INT64_MAX / 2 : rng.uniform_int(6, 24);
    r.probe = std::make_shared<DeliveryProbe>();
    auto probe = r.probe;
    serve::SessionConfig sc;
    sc.name = r.name;
    sc.weight = static_cast<int>(rng.uniform_int(1, 3));
    sc.priority = rng.bernoulli(0.1) ? 1 : 0;  // a high-priority tier mix
    sc.queue_capacity = 4;
    sc.stages.push_back(jitter_stage("pre", 80, 120, false));
    sc.stages.push_back(gang_stage(60, 40, ganged_frames));
    if (r.poisoned)
      sc.stages.push_back(poison_stage(r.name, /*fault_at=*/2));
    else if (rng.bernoulli(0.8))
      sc.stages.push_back(jitter_stage("post", 80, 120, false));
    sc.deliver = [probe](video::Frame&& f) {
      const int64_t prev = probe->last_seq.exchange(f.sequence);
      if (f.sequence <= prev) probe->order_violations.fetch_add(1);
      probe->delivered.fetch_add(1);
    };
    r.id = server.open_session(std::move(sc));
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::deque<int64_t> alive;
  int64_t opened = 0;
  int64_t finished = 0;
  const int64_t initial = std::min(cfg.concurrent, cfg.sessions);
  for (; opened < initial; ++opened) {
    open_stream(opened);
    alive.push_back(opened);
  }
  server.start();

  while (finished < cfg.sessions) {
    // Churn: keep the live set topped up — open_session on a running
    // server is the join-mid-serve path.
    while (static_cast<int64_t>(alive.size()) < cfg.concurrent &&
           opened < cfg.sessions) {
      open_stream(opened);
      alive.push_back(opened);
      ++opened;
    }

    for (auto it = alive.begin(); it != alive.end();) {
      StreamRecord& r = records[static_cast<size_t>(*it)];

      if (server.quarantined(r.id)) {
        // Fault isolation probe: a poisoned session must answer
        // kQuarantined from now on.
        video::Frame f;
        f.sequence = r.next_seq;
        if (server.submit(r.id, std::move(f)) !=
            serve::ServeResult::kQuarantined)
          violation(r.name + ": submit after quarantine not kQuarantined");
        if (!r.poisoned)
          violation(r.name + ": healthy session got quarantined");
        r.finished = true;
        ++finished;
        it = alive.erase(it);
        continue;
      }

      if (r.accepted >= r.budget) {
        // Leave mid-stream: frames may still be queued/in flight; the
        // queued ones are dropped, in-flight ones deliver, and a
        // further submit must answer kClosed.
        server.close_session(r.id);
        video::Frame f;
        f.sequence = r.next_seq;
        if (server.submit(r.id, std::move(f)) != serve::ServeResult::kClosed)
          violation(r.name + ": submit after close not kClosed");
        r.finished = true;
        ++finished;
        it = alive.erase(it);
        continue;
      }

      // Bursty submission: mostly paced against the admission queue so
      // frames actually flow, with occasional deliberate over-bursts
      // that exercise the shed-oldest path.
      const int64_t depth = server.queue_depth(r.id);
      int64_t burst = rng.uniform_int(1, 4);
      if (!rng.bernoulli(0.08))
        burst = std::min(burst, std::max<int64_t>(0, 4 - depth));
      for (int64_t b = 0; b < burst && r.accepted < r.budget; ++b) {
        video::Frame f;
        f.sequence = r.next_seq;
        const auto res = server.submit(r.id, std::move(f));
        if (res == serve::ServeResult::kAccepted) {
          ++r.accepted;
          ++r.next_seq;
        } else if (res == serve::ServeResult::kQuarantined) {
          break;  // handled at the top of the next sweep
        } else {
          // kShedOldest admits whenever the queue is non-empty, so
          // neither kOverloaded nor kClosed is expected here.
          violation(r.name + ": unexpected submit result " +
                    std::to_string(static_cast<int>(res)));
          break;
        }
      }
      ++it;
    }

    // Random producer stalls let queues drain unevenly.
    if (rng.bernoulli(0.2))
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.uniform_int(100, 600)));
    else
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  server.drain();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  // ---- Post-run assertions over the telemetry snapshot. -----------------
  const auto snap = registry.snapshot();
  int64_t total_delivered = 0, total_shed = 0, total_dropped = 0,
          total_faults = 0, quarantined_count = 0;
  double worst_p99 = 0.0;
  for (const StreamRecord& r : records) {
    const std::string prefix = "serve.session." + r.name + ".";
    const int64_t frames = snap.counter_value(prefix + "frames");
    const int64_t shed = snap.counter_value(prefix + "shed");
    const int64_t dropped = snap.counter_value(prefix + "dropped");
    const int64_t faults = snap.counter_value(prefix + "faults");
    total_delivered += frames;
    total_shed += shed;
    total_dropped += dropped;
    total_faults += faults;

    if (r.probe->order_violations.load() != 0)
      violation(r.name + ": " +
                std::to_string(r.probe->order_violations.load()) +
                " out-of-order deliveries");
    if (r.probe->delivered.load() != frames)
      violation(r.name + ": probe saw " +
                std::to_string(r.probe->delivered.load()) +
                " deliveries but frames counter says " +
                std::to_string(frames));
    if (frames + shed + dropped != r.accepted)
      violation(r.name + ": accounting " + std::to_string(frames) + "+" +
                std::to_string(shed) + "+" + std::to_string(dropped) +
                " != accepted " + std::to_string(r.accepted));
    const bool quarantined = server.quarantined(r.id);
    if (quarantined) ++quarantined_count;
    if (quarantined != r.poisoned)
      violation(r.name + (r.poisoned ? ": poisoned but never quarantined"
                                     : ": quarantined without poison"));
    if (r.poisoned && faults < 1)
      violation(r.name + ": poisoned but faults counter is 0");

    const auto* h = snap.find_histogram(prefix + "latency_ms");
    if (h != nullptr && h->stats.count > 0) {
      worst_p99 = std::max(worst_p99, h->stats.p99);
      if (h->stats.p99 > cfg.p99_ms) {
        violation(r.name + ": p99 " + std::to_string(h->stats.p99) +
                  " ms exceeds SLO " + std::to_string(cfg.p99_ms) + " ms");
        std::fprintf(stderr,
                     "  %s: count=%" PRId64
                     " mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f ms\n",
                     r.name.c_str(), h->stats.count, h->stats.mean(),
                     h->stats.p50, h->stats.p95, h->stats.p99, h->stats.max);
      }
    }
  }

  // Gang-scheduling probes: batches must actually have formed under
  // churn, and the batch_size histogram must balance frame-for-frame with
  // the engine executions the stages counted.
  int64_t gang_passes = 0, gang_frames = 0, gang_max = 0;
  if (const auto* bs = snap.find_histogram("serve.arbiter.batch_size");
      bs != nullptr && bs->stats.count > 0) {
    gang_passes = bs->stats.count;
    gang_frames = static_cast<int64_t>(bs->stats.sum + 0.5);
    gang_max = static_cast<int64_t>(bs->stats.max + 0.5);
  }
  if (gang_max <= 1)
    violation("no gang larger than one frame formed during the soak");
  if (gang_frames != ganged_frames->load())
    violation("batch_size histogram covers " + std::to_string(gang_frames) +
              " frames but engine stages ran " +
              std::to_string(ganged_frames->load()));

  // Flight-recorder probe: every quarantined session must have left a
  // post-mortem naming it and the injected fault, and the dump must
  // still be a loadable Chrome trace.
  if (!cfg.flight_dir.empty()) {
    int64_t dumps = 0;
    for (const StreamRecord& r : records) {
      if (!r.poisoned || !server.quarantined(r.id)) continue;
      const std::string path = cfg.flight_dir + "/flight_" + r.name + ".json";
      std::ifstream file(path);
      if (!file.good()) {
        violation(r.name + ": no flight dump at " + path);
        continue;
      }
      std::ostringstream buf;
      buf << file.rdbuf();
      const std::string body = buf.str();
      if (body.find("\"sessionName\":\"" + r.name + "\"") ==
          std::string::npos)
        violation(r.name + ": flight dump does not name the session");
      if (body.find("injected fault in session " + r.name) ==
          std::string::npos)
        violation(r.name + ": flight dump does not carry the fault message");
      try {
        if (telemetry::parse_chrome_trace(body).empty())
          violation(r.name + ": flight dump has no trace events");
      } catch (const Error& e) {
        violation(r.name + ": flight dump unparseable: " + e.what());
      }
      ++dumps;
    }
    std::printf("soak: %" PRId64 " flight dump(s) verified in %s\n", dumps,
                cfg.flight_dir.c_str());
    if (dumps == 0) violation("flight recorder armed but no dumps written");
  }

  if (!cfg.trace_json.empty())
    telemetry::write_chrome_trace(collector.snapshot(), cfg.trace_json);
  if (!cfg.metrics_json.empty())
    telemetry::write_json(snap, cfg.metrics_json);

  std::printf("soak: %" PRId64 " sessions in %.2f s — delivered %" PRId64
              ", shed %" PRId64 ", dropped %" PRId64 ", faults %" PRId64
              ", quarantined %" PRId64 "\n",
              cfg.sessions, elapsed_s, total_delivered, total_shed,
              total_dropped, total_faults, quarantined_count);
  std::printf("soak: worst session p99 %.2f ms (SLO %.1f ms), engine grants "
              "%lld\n",
              worst_p99, cfg.p99_ms,
              static_cast<long long>(server.arbiter().grants()));
  std::printf("soak: %" PRId64 " engine passes over %" PRId64
              " frames (largest gang %" PRId64 ")\n",
              gang_passes, gang_frames, gang_max);
  if (violations != 0) {
    std::fprintf(stderr, "FAILED: %" PRId64 " soak violations\n", violations);
    return 1;
  }
  std::printf("soak: PASS — in-order delivery, exact accounting, fault "
              "isolation, p99 within SLO\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool soak = false;
  bool batched = false;
  std::string batched_json = "BENCH_multistream.json";
  SoakConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--batched") == 0) {
      batched = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      batched_json = need("--json");
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      cfg.sessions = std::atoll(need("--sessions"));
    } else if (std::strcmp(argv[i], "--concurrent") == 0) {
      cfg.concurrent = std::atoll(need("--concurrent"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = static_cast<uint64_t>(std::atoll(need("--seed")));
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      cfg.faults = std::atoll(need("--faults"));
    } else if (std::strcmp(argv[i], "--p99-ms") == 0) {
      cfg.p99_ms = std::atof(need("--p99-ms"));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      cfg.metrics_json = need("--metrics-json");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      cfg.trace_json = need("--trace");
    } else if (std::strcmp(argv[i], "--flight-dir") == 0) {
      cfg.flight_dir = need("--flight-dir");
    } else {
      std::fprintf(stderr,
                   "usage: multistream [--soak [--sessions N] "
                   "[--concurrent N] [--seed S] [--faults N] [--p99-ms X] "
                   "[--metrics-json PATH] [--trace PATH] "
                   "[--flight-dir DIR]] | [--batched [--json PATH] "
                   "[--metrics-json PATH]]\n");
      return 2;
    }
  }
  if (batched) return run_batched(batched_json, cfg.metrics_json);
  if (!soak) return run_sweep();
  if (cfg.sessions < 1 || cfg.concurrent < 1 || cfg.faults < 0 ||
      cfg.faults > cfg.sessions || cfg.p99_ms <= 0.0) {
    std::fprintf(stderr, "error: invalid soak configuration\n");
    return 2;
  }
  return run_soak(cfg);
}
