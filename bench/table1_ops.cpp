// Reproduces Table I: "The challenge posed by Tiny YOLO versus Tincy
// YOLO" — operations per frame, layer by layer, for both topologies.

#include <cstdio>
#include <string>

#include "core/string_utils.hpp"
#include "nn/ops.hpp"
#include "nn/zoo.hpp"

using namespace tincy;
using nn::zoo::QuantMode;
using nn::zoo::TinyVariant;

int main() {
  const auto tiny = nn::zoo::build(
      nn::zoo::tiny_yolo_cfg(TinyVariant::kTiny, QuantMode::kFloat));
  const auto tincy_net = nn::zoo::build(
      nn::zoo::tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kFloat));

  const auto tiny_rows = nn::ops_rows(*tiny);
  const auto tincy_rows = nn::ops_rows(*tincy_net);

  std::printf("TABLE I — THE CHALLENGE POSED BY TINY YOLO VERSUS TINCY YOLO\n");
  std::printf("%5s  %-6s  %18s  %18s\n", "Layer", "Type", "Tiny YOLO ops",
              "Tincy YOLO ops");
  std::printf("%s\n", std::string(54, '-').c_str());

  // Tincy drops the first maxpool (modification (d)); keep the paper's row
  // alignment by printing "-" there.
  size_t ti = 0;
  for (size_t i = 0; i < tiny_rows.size(); ++i) {
    const auto& row = tiny_rows[i];
    if (row.type == "region") break;
    std::string tincy_ops = "-";
    if (!(i == 1 && row.type == "pool")) {  // the dropped pool row
      if (tincy_rows[ti].type == "region") break;
      tincy_ops = with_commas(tincy_rows[ti].ops);
      ++ti;
    }
    std::printf("%5zu  %-6s  %18s  %18s\n", i + 1, row.type.c_str(),
                with_commas(row.ops).c_str(), tincy_ops.c_str());
  }
  std::printf("%s\n", std::string(54, '-').c_str());
  std::printf("%5s  %-6s  %18s  %18s\n", "", "Sigma",
              with_commas(nn::total_ops(*tiny)).c_str(),
              with_commas(nn::total_ops(*tincy_net)).c_str());
  std::printf("\nPaper:    Tiny YOLO = 6,971,272,984   Tincy YOLO = 4,445,001,496\n");
  std::printf("Measured: Tiny YOLO = %s   Tincy YOLO = %s\n",
              with_commas(nn::total_ops(*tiny)).c_str(),
              with_commas(nn::total_ops(*tincy_net)).c_str());

  // Paper: ">97% of Compute" is in the hidden layers addressable by the
  // offloaded HW QNN accelerator.
  int64_t hidden = 0;
  for (size_t i = 2; i + 2 < tiny_rows.size(); ++i) hidden += tiny_rows[i].ops;
  std::printf("Hidden-layer share (Tiny): %.2f %% (paper: > 97 %%)\n",
              100.0 * static_cast<double>(hidden) /
                  static_cast<double>(nn::total_ops(*tiny)));
  return 0;
}
