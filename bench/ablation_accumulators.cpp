// Ablation: accumulator management in the specialized first-layer kernel.
//
// The paper's fastest first-layer variant accumulates 16-bit products in
// 16-bit lanes, which "requires a careful management of the accumulator
// scale so as to avoid destructive numeric overflow in adding up the 27
// products. Therefore, a rounding right shift by 4 bit positions must be
// performed before accumulation. This, in fact, introduces some small loss
// of detection accuracy." This bench quantifies that trade-off: for each
// pre-accumulation shift amount, the numeric error against the float
// kernel and the rate of saturating (overflow-avoided) accumulations, on
// real SynthVOC image content.

#include <cstdio>
#include <vector>

#include "core/fixed_point.hpp"
#include "core/rng.hpp"
#include "data/synthvoc.hpp"
#include "gemm/first_layer.hpp"
#include "gemm/gemm_simd.hpp"
#include "quant/affine.hpp"

using namespace tincy;

namespace {

/// acc16 kernel semantics with a configurable pre-accumulation shift,
/// instrumented to count saturation events.
void acc16_variable_shift(const Tensor& image, const gemm::ConvGeometry& g,
                          const quant::AffineParams& ip,
                          const gemm::SymmetricWeights& sw, int shift,
                          Tensor& out, int64_t& saturations) {
  const int64_t n = g.num_patches(), out_w = g.out_width();
  std::vector<uint8_t> qimage(static_cast<size_t>(image.numel()));
  for (int64_t i = 0; i < image.numel(); ++i)
    qimage[static_cast<size_t>(i)] = ip.quantize(image[i]);
  const float real_scale =
      ip.scale * sw.scale * static_cast<float>(1 << shift);

  for (int64_t j = 0; j < n; ++j) {
    const int64_t oh = j / out_w, ow = j % out_w;
    uint8_t taps[27];
    int64_t k = 0;
    for (int64_t c = 0; c < 3; ++c)
      for (int64_t kh = 0; kh < 3; ++kh)
        for (int64_t kw = 0; kw < 3; ++kw, ++k) {
          const int64_t ih = oh * g.stride - g.pad + kh;
          const int64_t iw = ow * g.stride - g.pad + kw;
          taps[k] = (ih < 0 || ih >= g.in_height || iw < 0 ||
                     iw >= g.in_width)
                        ? static_cast<uint8_t>(ip.zero_point)
                        : qimage[static_cast<size_t>(
                              (c * g.in_height + ih) * g.in_width + iw)];
        }
    for (int64_t m = 0; m < 16; ++m) {
      int16_t acc = 0;
      for (int64_t t = 0; t < 27; ++t) {
        const auto a = static_cast<int16_t>(
            static_cast<int32_t>(taps[t]) - ip.zero_point);
        const auto prod = static_cast<int16_t>(
            static_cast<int32_t>(a) *
            sw.codes[static_cast<size_t>(m * 27 + t)]);
        const int16_t shifted = rounding_right_shift(prod, shift);
        const int32_t wide = static_cast<int32_t>(acc) + shifted;
        const int16_t sat = saturate_cast<int16_t>(wide);
        if (sat != wide) ++saturations;
        acc = sat;
      }
      out[m * n + j] = real_scale * static_cast<float>(acc);
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "ABLATION — 16-BIT ACCUMULATOR MANAGEMENT (first layer, 27 taps)\n\n");
  const gemm::ConvGeometry g{3, 96, 96, 3, 2, 1};
  const data::SynthVoc dataset({.image_size = 96}, 31);
  Rng rng(32);
  Tensor weights(Shape{16, 27});
  for (int64_t i = 0; i < weights.numel(); ++i)
    weights[i] = rng.normal(0.0f, 0.3f);
  const gemm::SymmetricWeights sw = gemm::quantize_symmetric(weights);
  const auto ip = quant::choose_affine_params(0.0f, 1.0f);

  std::printf("%6s %14s %14s %14s\n", "shift", "mean |err|", "max |err|",
              "saturations/M");
  for (int shift = 0; shift <= 6; ++shift) {
    double mean_err = 0.0, max_err = 0.0;
    int64_t saturations = 0, total = 0;
    for (int64_t img = 0; img < 4; ++img) {
      const Tensor image = dataset.sample(img).image;
      Tensor golden(Shape{16, g.num_patches()});
      gemm::conv_via_im2col_f32(image.data(), g, weights.data(), 16, nullptr,
                                golden.data());
      Tensor out(golden.shape());
      acc16_variable_shift(image, g, ip, sw, shift, out, saturations);
      for (int64_t i = 0; i < out.numel(); ++i) {
        const double err = std::abs(out[i] - golden[i]);
        mean_err += err;
        max_err = std::max(max_err, err);
      }
      total += out.numel() * 27;
    }
    mean_err /= static_cast<double>(4 * 16 * g.num_patches());
    std::printf("%6d %14.4f %14.4f %14.1f%s\n", shift, mean_err, max_err,
                1e6 * static_cast<double>(saturations) /
                    static_cast<double>(total),
                shift == 4 ? "   <- paper's choice" : "");
  }

  std::printf(
      "\nsmall shifts overflow (saturations -> gross errors); large shifts\n"
      "discard precision (rounding error grows 2x per step). The paper's\n"
      "shift of 4 sits at the balance point, and its residual error is the\n"
      "documented 'small loss of detection accuracy' — which is why the\n"
      "float kernel remains available as a drop-in reference.\n");

  // Cross-check: the production acc16 kernel equals the instrumented model
  // at shift 4.
  const Tensor image = dataset.sample(0).image;
  Tensor a(Shape{16, g.num_patches()}), b(a.shape());
  int64_t sat = 0;
  acc16_variable_shift(image, g, ip, sw, 4, a, sat);
  gemm::first_layer_lowp_acc16(image.data(), g, ip, sw, nullptr, b.data());
  double max_delta = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i)
    max_delta = std::max(max_delta, static_cast<double>(std::abs(a[i] - b[i])));
  std::printf("\nproduction acc16 kernel vs instrumented model @shift 4: "
              "max |delta| = %.2e\n", max_delta);
  return 0;
}
