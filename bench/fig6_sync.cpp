// Reproduces Fig. 6: the producer/consumer free/avail synchronization of
// pipelined frame processing — stressing the single-slot handshake with
// many frames, jittered stage durations and varying worker counts, and
// verifying the ordering guarantee ("prevents that one frame overtakes
// another") plus the job-selection policy's consequences.

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/rng.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/virtual_time.hpp"
#include "video/sink.hpp"

using namespace tincy;

int main() {
  std::printf("FIG. 6 — SYNCHRONIZATION OF PIPELINED FRAME PROCESSING\n\n");

  std::printf("%7s %7s %8s %9s %s\n", "workers", "stages", "frames",
              "host fps", "ordering");
  bool all_ordered = true;
  for (const int workers : {1, 2, 4, 8}) {
    for (const int num_stages : {3, 6}) {
      std::atomic<int64_t> next{0};
      Rng jitter(static_cast<uint64_t>(workers * 100 + num_stages));
      std::vector<pipeline::Stage> stages;
      for (int s = 0; s < num_stages; ++s) {
        // Jittered busy-wait stages exercise out-of-order completions.
        const int base_us = 100 + static_cast<int>(jitter.uniform_int(0, 400));
        stages.push_back({"s" + std::to_string(s),
                          [base_us](video::Frame&) {
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(base_us));
                          }});
      }
      video::OrderCheckingSink sink;
      pipeline::Pipeline p(
          stages,
          [&next] {
            video::Frame f;
            f.sequence = next++;
            return f;
          },
          [&sink](const video::Frame& f) { sink.push(f); }, workers);
      p.run(200);
      all_ordered = all_ordered && sink.in_order();
      std::printf("%7d %7d %8lld %9.0f %s\n", workers, num_stages,
                  static_cast<long long>(sink.frames_received()), p.fps(),
                  sink.in_order() ? "preserved" : "VIOLATED");
    }
  }

  // The free/avail handshake in virtual time: a single-slot buffer means a
  // fast producer is throttled by its consumer (back-pressure).
  std::printf("\nback-pressure (virtual time): producer 5 ms, consumer 20 ms\n");
  const std::vector<pipeline::TimedStage> stages{{"producer", 5.0, ""},
                                                 {"consumer", 20.0, ""}};
  const auto sim = pipeline::simulate(stages, 4, 100);
  std::printf("throughput %.1f fps — gated by the consumer (50.0 expected)\n",
              sim.fps);

  std::printf("\nall orderings preserved: %s\n", all_ordered ? "yes" : "NO");
  return all_ordered ? 0 : 1;
}
