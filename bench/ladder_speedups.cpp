// Reproduces the Sec. III optimization ladder: every bottleneck
// elimination of the paper with its modeled frame time and rate, from
// 0.1 fps generic inference to the 16 fps pipelined demo (160x overall).

#include <cstdio>

#include "perf/ladder.hpp"

using namespace tincy;

int main() {
  const perf::ZynqPlatform platform;
  const auto ladder = perf::optimization_ladder(platform);

  std::printf("SEC. III — OPTIMIZATION LADDER (modeled ZU3EG)\n\n");
  std::printf("%-48s %9s %7s %8s %8s\n", "step", "frame ms", "fps", "step x",
              "total x");
  for (const auto& step : ladder) {
    const double frame_ms =
        step.pipelined ? 1000.0 / step.fps : step.times.total_ms();
    std::printf("%-48s %9.0f %7.2f %8.2f %8.1f\n", step.name.c_str(), frame_ms,
                step.fps, step.speedup_previous, step.speedup_total);
  }

  std::printf("\npaper checkpoints:\n");
  std::printf("  generic inference        : 0.1 fps   (model %.2f)\n",
              ladder[0].fps);
  std::printf("  + fabric offload         : ~1.1 fps, hidden 9160 -> 30 ms,\n"
              "                             stage speedup >300x, net 11x "
              "(model stage %.0fx, net %.1fx)\n",
              ladder[0].times.hidden_layers_ms /
                  ladder[1].times.hidden_layers_ms,
              ladder[1].speedup_total);
  std::printf("  first layer 620->120 ms  : model %.0f -> %.0f ms\n",
              ladder[0].times.input_layer_ms, ladder[6].times.input_layer_ms);
  std::printf("  after acc16              : 400 ms -> 2.5 fps (model %.0f ms, %.2f fps)\n",
              ladder[6].times.total_ms(), ladder[6].fps);
  std::printf("  + Tincy YOLO (mod (d))   : lean conv 35 ms, >5 fps "
              "(model %.0f ms, %.2f fps)\n",
              ladder[7].times.input_layer_ms, ladder[7].fps);
  std::printf("  + pipelined demo mode    : 16 fps, ~3x (model %.1f fps, %.2fx)\n",
              ladder[8].fps, ladder[8].speedup_previous);
  std::printf("  overall speedup          : 160x (model %.0fx)\n",
              ladder[8].speedup_total);
  return 0;
}
