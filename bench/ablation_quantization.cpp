// Ablation: hidden-layer activation precision.
//
// The paper: "we were not able to produce sensible results with a complete
// binarization of Tincy YOLO. While the network weights are, indeed,
// binarized, we maintain a quantization of 3 bits for all feature map
// values." This bench sweeps the activation bit-width A of the hidden
// layers and reports (a) the output deviation from the float network
// (untrained, same weights — the signal retraining must recover), and
// (b) what A costs on the fabric: MVTU cycles scale linearly with A
// (bit-serial planes) and the threshold units grow as 2^A − 1.

#include <cstdio>

#include "core/rng.hpp"
#include "data/synthvoc.hpp"
#include "fabric/resource_model.hpp"
#include "nn/builder.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/zoo.hpp"
#include "perf/stage_times.hpp"

using namespace tincy;

namespace {

}  // namespace

int main() {
  std::printf("ABLATION — HIDDEN-LAYER ACTIVATION PRECISION (W1A<A>)\n\n");

  // Isolate the *activation* quantization error: one hidden conv with
  // binary weights in both arms; the reference arm keeps float ReLU
  // activations, the test arm snaps them to the A-bit grid over the same
  // fixed [0, 2] range. Inputs are realistic feature maps produced by a
  // float stem over SynthVOC images.
  Rng rng(21);
  auto stem = nn::build_network_from_string(
      "[net]\nwidth=64\nheight=64\nchannels=3\n"
      "[convolutional]\nbatch_normalize=1\nfilters=16\nsize=3\nstride=2\n"
      "pad=1\nactivation=relu\nkernel=fused\n");
  nn::zoo::randomize(*stem, rng);
  const data::SynthVoc dataset({.image_size = 64}, 22);

  const auto make_layer = [&](int abits) {
    nn::ConvConfig cfg;
    cfg.filters = 32;
    cfg.size = 3;
    cfg.pad = true;
    cfg.activation = nn::Activation::kRelu;
    cfg.batch_normalize = true;
    cfg.binary_weights = true;
    cfg.kernel = nn::ConvKernel::kReference;
    if (abits < 32) {
      cfg.act_bits = abits;
      cfg.in_scale = 2.0f / static_cast<float>((1 << abits) - 1);
      cfg.out_scale = cfg.in_scale;
      // Full fabric semantics: input snapped to the A-bit grid too.
      cfg.kernel = nn::ConvKernel::kQuantReference;
    }
    return std::make_unique<nn::ConvLayer>(cfg, Shape{16, 32, 32});
  };
  auto reference = make_layer(32);
  Rng wrng(23);
  nn::Network holder(Shape{16, 32, 32});  // reuse zoo randomize on one layer
  {
    auto tmp = make_layer(32);
    holder.add(std::move(tmp));
    nn::zoo::randomize(holder, wrng);
    auto& src = dynamic_cast<nn::ConvLayer&>(holder.layer(0));
    reference->weights() = src.weights();
    reference->biases() = src.biases();
    reference->bn_scales() = src.bn_scales();
    reference->bn_mean() = src.bn_mean();
    reference->bn_var() = src.bn_var();
    reference->invalidate_cached_quantization();
  }

  const perf::ZynqPlatform platform;
  std::printf("%4s %16s %16s %12s %12s\n", "A", "rel-L1 deviation",
              "MVTU cyc/col*", "thresh LUTs", "fits ZU3EG");
  for (const int abits : {1, 2, 3, 4, 5}) {
    auto qlayer = make_layer(abits);
    qlayer->weights() = reference->weights();
    qlayer->biases() = reference->biases();
    qlayer->bn_scales() = reference->bn_scales();
    qlayer->bn_mean() = reference->bn_mean();
    qlayer->bn_var() = reference->bn_var();
    qlayer->invalidate_cached_quantization();

    double err = 0.0, mag = 0.0;
    for (int64_t img = 0; img < 4; ++img) {
      const Tensor& fmap = stem->forward(dataset.sample(img).image);
      Tensor a(reference->output_shape()), b(qlayer->output_shape());
      reference->forward(fmap, a);
      qlayer->forward(fmap, b);
      for (int64_t i = 0; i < a.numel(); ++i) {
        err += std::abs(a[i] - b[i]);
        mag += std::abs(a[i]);
      }
    }

    // Fabric cost: one representative large layer (512x4608 at Tincy scale).
    const int64_t cycles = fabric::fold_cycles_per_vector(
        {512, 4608}, platform.fabric_model.folding, abits);
    fabric::EngineSpec spec;
    spec.folding = platform.fabric_model.folding;
    spec.act_bits = abits;
    spec.max_rows = 512;
    spec.max_depth = 4608;
    spec.weight_bits_on_chip = 512 * 4608;
    const fabric::Resources r = fabric::estimate_engine(spec);
    std::printf("%4d %16.3f %16lld %12lld %12s%s\n", abits, err / mag,
                static_cast<long long>(cycles),
                static_cast<long long>(spec.folding.pe *
                                       (((1 << abits) - 1) * 16 + 48)),
                fabric::fits(r, fabric::Device{}) ? "yes" : "NO",
                abits == 3 ? "   <- paper's choice" : "");
  }

  std::printf(
      "\n(*) per output column of the largest Tincy layer, PE=32 SIMD=36.\n"
      "Deviation shrinks with every added bit while fabric time grows\n"
      "linearly and threshold hardware doubles per bit: A=3 is the knee —\n"
      "A=1 'failed to maintain the desired degree of accuracy' (paper) and\n"
      "A>=4 pays cycles/LUTs for deviation retraining can already absorb.\n");
  return 0;
}
