// Reproduces Fig. 5: the pipeline stages of the new demo mode — the
// network-length+4 stage list, running live on the synthetic camera with
// the threaded scheduler, plus the virtual-time model of the 4-core
// ZU3EG reaching ~16 fps.

#include <cstdio>

#include "core/rng.hpp"
#include "nn/zoo.hpp"
#include "perf/ladder.hpp"
#include "pipeline/demo.hpp"
#include "pipeline/virtual_time.hpp"

using namespace tincy;
using nn::zoo::CpuProfile;
using nn::zoo::QuantMode;
using nn::zoo::TinyVariant;

int main() {
  std::printf("FIG. 5 — PIPELINE STAGES OF THE NEW demo MODE\n\n");

  // Small-input Tincy YOLO so the host demo runs in seconds.
  auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kFloat, 64, CpuProfile::kFused));
  Rng rng(3);
  nn::zoo::randomize(*net, rng);

  pipeline::DemoConfig cfg;
  cfg.num_workers = 4;
  const auto stages = pipeline::make_demo_stages(*net, cfg);
  std::printf("stage list (N+4 = %zu stages for the N=%lld-layer network):\n",
              stages.size(), static_cast<long long>(net->num_layers()));
  for (size_t i = 0; i < stages.size(); ++i)
    std::printf("  #%-2zu %s\n", i, stages[i].name.c_str());

  video::SyntheticCamera camera({.width = 96, .height = 72, .seed = 5});
  video::OrderCheckingSink sink;
  const auto result = pipeline::run_demo(camera, *net, sink, 48, cfg);
  std::printf("\nhost run: %lld frames, %.1f fps (host-relative), order %s\n",
              static_cast<long long>(sink.frames_received()), result.fps,
              sink.in_order() ? "preserved" : "VIOLATED");
  std::printf("%-22s %8s %6s\n", "stage", "busy ms", "jobs");
  for (const auto& s : result.stats)
    std::printf("%-22s %8.1f %6lld\n", s.name.c_str(), s.busy_ms,
                static_cast<long long>(s.jobs));

  // Modeled ZU3EG pipeline (the paper's stage times).
  const perf::ZynqPlatform platform;
  const auto ladder = perf::optimization_ladder(platform);
  const auto& final_times = ladder.back().times;
  const auto timed = perf::pipelined_stages(platform, final_times);
  std::printf("\nmodeled ZU3EG stages (incl. %.1f ms sync overhead each):\n",
              platform.pipeline_sync_overhead_ms);
  for (const auto& s : timed)
    std::printf("  %-18s %6.1f ms%s\n", s.name.c_str(), s.duration_ms,
                s.exclusive_resource.empty() ? "" : "  [exclusive PL]");
  const auto sim = pipeline::simulate(timed, platform.cores, 64);
  std::printf("\nsequential: %.1f fps;  pipelined on %d cores: %.1f fps "
              "(paper: ~5.x -> 16 fps);  core utilization %.0f %%;  "
              "frame latency %.0f ms\n\n",
              pipeline::sequential_fps(timed), platform.cores, sim.fps,
              100.0 * sim.utilization(), sim.latency_ms);
  std::fputs(
      pipeline::render_schedule(sim, timed, platform.cores, 480.0, 6.0)
          .c_str(),
      stdout);
  return sink.in_order() ? 0 : 1;
}
