// Reproduces Table III: "Inference processing time of video frames broken
// into stages" — the generic Darknet float path on the modeled 4xA53
// platform (one core active), totalling ~10s per frame (0.1 fps).

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/rng.hpp"
#include "gemm/gemm_lowp.hpp"
#include "gemm/gemm_packed.hpp"
#include "nn/zoo.hpp"
#include "perf/stage_times.hpp"

using namespace tincy;
using nn::zoo::CpuProfile;
using nn::zoo::QuantMode;
using nn::zoo::TinyVariant;

namespace {

template <typename F>
double best_of_ms(int trials, F&& fn) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

// Host-measured complement to the modeled table: the CPU-resident
// input/output layer GEMMs, naive lowp vs the packed/tiled engine
// (gemm_packed.hpp), with the one-time weight pack reported separately.
void report_packed_engine() {
  const struct {
    const char* name;
    int64_t M, N, K;
  } shapes[] = {
      {"Input Layer GEMM", 16, 104 * 104, 27},
      {"Output Layer GEMM", 125, 13 * 13, 1024},
  };
  std::printf(
      "\nHOST-MEASURED CPU GEMM (naive lowp vs packed engine, best of 5)\n");
  std::printf("%-20s %10s %10s %9s %9s\n", "Stage", "Naive ms", "Packed ms",
              "Pack ms", "Speedup");
  for (const auto& s : shapes) {
    Rng rng(7);
    std::vector<uint8_t> a(s.M * s.K), b(s.K * s.N);
    for (auto& v : a) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
    for (auto& v : b) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
    std::vector<int32_t> c(s.M * s.N);
    const int32_t za = 7, zb = 131;
    const double naive_ms = best_of_ms(5, [&] {
      gemm::gemm_lowp_i32(s.M, s.N, s.K, a.data(), za, b.data(), zb, c.data());
    });
    const double pack_ms = best_of_ms(
        5, [&] { (void)gemm::pack_lhs(a.data(), s.M, s.K, za); });
    const gemm::PackedLhs lhs = gemm::pack_lhs(a.data(), s.M, s.K, za);
    const double packed_ms = best_of_ms(5, [&] {
      gemm::gemm_lowp_packed(lhs, b.data(), zb, s.N, c.data(), {});
    });
    std::printf("%-20s %10.3f %10.3f %9.3f %8.2fx\n", s.name, naive_ms,
                packed_ms, pack_ms, naive_ms / packed_ms);
  }
}

}  // namespace

int main() {
  const perf::ZynqPlatform platform;
  const auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTiny, QuantMode::kFloat, 416, CpuProfile::kReference));
  const perf::StageTimes t = perf::model_stage_times(
      *net, platform, perf::FirstLayerImpl::kGeneric,
      perf::HiddenImpl::kGeneric);

  std::printf(
      "TABLE III — INFERENCE PROCESSING TIME OF VIDEO FRAMES BY STAGE\n");
  std::printf("%-20s %10s %10s\n", "Stage", "Paper ms", "Model ms");
  const struct {
    const char* name;
    double paper;
    double model;
  } rows[] = {
      {"Image Acquisition", 40, t.acquisition_ms},
      {"Input Layer", 620, t.input_layer_ms},
      {"Max Pool", 140, t.first_pool_ms},
      {"Hidden Layers", 9160, t.hidden_layers_ms},
      {"Output Layer", 30, t.output_layer_ms},
      {"Box Drawing", 15, t.box_drawing_ms},
      {"Image Output", 25, t.image_output_ms},
  };
  for (const auto& r : rows)
    std::printf("%-20s %10.0f %10.1f\n", r.name, r.paper, r.model);
  std::printf("%-20s %10.0f %10.1f\n", "Total", 10030.0, t.total_ms());
  std::printf("\nFrame rate: paper 0.1 fps, model %.3f fps\n", t.fps());
  std::printf(
      "(The scalar-GEMM/im2col/pool rates are calibrated against this very\n"
      "table — see perf/platform.hpp and EXPERIMENTS.md; every other\n"
      "configuration in the ladder is then *predicted* from those rates.)\n");
  report_packed_engine();
  return 0;
}
