// Reproduces Table III: "Inference processing time of video frames broken
// into stages" — the generic Darknet float path on the modeled 4xA53
// platform (one core active), totalling ~10s per frame (0.1 fps).

#include <cstdio>

#include "nn/zoo.hpp"
#include "perf/stage_times.hpp"

using namespace tincy;
using nn::zoo::CpuProfile;
using nn::zoo::QuantMode;
using nn::zoo::TinyVariant;

int main() {
  const perf::ZynqPlatform platform;
  const auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTiny, QuantMode::kFloat, 416, CpuProfile::kReference));
  const perf::StageTimes t = perf::model_stage_times(
      *net, platform, perf::FirstLayerImpl::kGeneric,
      perf::HiddenImpl::kGeneric);

  std::printf(
      "TABLE III — INFERENCE PROCESSING TIME OF VIDEO FRAMES BY STAGE\n");
  std::printf("%-20s %10s %10s\n", "Stage", "Paper ms", "Model ms");
  const struct {
    const char* name;
    double paper;
    double model;
  } rows[] = {
      {"Image Acquisition", 40, t.acquisition_ms},
      {"Input Layer", 620, t.input_layer_ms},
      {"Max Pool", 140, t.first_pool_ms},
      {"Hidden Layers", 9160, t.hidden_layers_ms},
      {"Output Layer", 30, t.output_layer_ms},
      {"Box Drawing", 15, t.box_drawing_ms},
      {"Image Output", 25, t.image_output_ms},
  };
  for (const auto& r : rows)
    std::printf("%-20s %10.0f %10.1f\n", r.name, r.paper, r.model);
  std::printf("%-20s %10.0f %10.1f\n", "Total", 10030.0, t.total_ms());
  std::printf("\nFrame rate: paper 0.1 fps, model %.3f fps\n", t.fps());
  std::printf(
      "(The scalar-GEMM/im2col/pool rates are calibrated against this very\n"
      "table — see perf/platform.hpp and EXPERIMENTS.md; every other\n"
      "configuration in the ladder is then *predicted* from those rates.)\n");
  return 0;
}
