// Reproduces the §III-A architectural argument quantitatively: the earlier
// FINN show cases (MLP-4, CNV-6) fit the XCZU3EG as *dataflow pipelines*
// (every layer its own engine, weights resident, initiation interval = the
// slowest stage), while Tincy YOLO's hidden layers overflow the device in
// that style and must time-share ONE generalized engine, layer at a time —
// "this precludes concurrency across layers and implies a higher latency
// compared to a pipeline".

#include <cstdio>

#include "fabric/dataflow.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/connected_layer.hpp"
#include "nn/builder.hpp"
#include "nn/zoo.hpp"
#include "perf/stage_times.hpp"

using namespace tincy;

namespace {

/// Extracts QnnLayerSpec geometry (no weights needed) from a zoo network's
/// quantizable layers: conv layers (pools fused), connected layers as
/// 1x1-conv stages. The float first/last layers are excluded — they run on
/// the CPU in every configuration.
std::vector<fabric::QnnLayerSpec> hidden_specs(const nn::Network& net,
                                               int act_bits,
                                               bool skip_first_and_last) {
  std::vector<fabric::QnnLayerSpec> specs;
  int64_t first_conv = -1, last_dot = -1;
  for (int64_t i = 0; i < net.num_layers(); ++i) {
    const auto& layer = net.layer(i);
    if (layer.type_name() == "convolutional" ||
        layer.type_name() == "connected") {
      if (first_conv < 0) first_conv = i;
      last_dot = i;
    }
  }
  for (int64_t i = 0; i < net.num_layers(); ++i) {
    if (skip_first_and_last && (i == first_conv || i == last_dot)) continue;
    fabric::QnnLayerSpec s;
    if (const auto* conv = dynamic_cast<const nn::ConvLayer*>(&net.layer(i))) {
      const auto& g = conv->geometry();
      s.in_channels = g.in_channels;
      s.in_height = g.in_height;
      s.in_width = g.in_width;
      s.filters = conv->config().filters;
      s.kernel = g.kernel;
      s.stride = g.stride;
      s.pad = g.pad;
    } else if (const auto* fc =
                   dynamic_cast<const nn::ConnectedLayer*>(&net.layer(i))) {
      s.in_channels = fc->inputs();
      s.in_height = 1;
      s.in_width = 1;
      s.filters = fc->config().outputs;
      s.kernel = 1;
      s.pad = 0;
    } else {
      continue;  // pools fuse into the preceding conv stage
    }
    // A following maxpool fuses into this stage's pool unit.
    if (i + 1 < net.num_layers()) {
      if (const auto* pool =
              dynamic_cast<const nn::MaxPoolLayer*>(&net.layer(i + 1))) {
        s.pool_after = true;
        s.pool_size = pool->config().size;
        s.pool_stride = pool->config().stride;
      }
    }
    s.act_bits_in = act_bits;
    s.act_bits_out = act_bits;
    specs.push_back(s);
  }
  return specs;
}

void report(const char* name, const std::vector<fabric::QnnLayerSpec>& specs,
            int64_t lane_budget, double sequential_ms) {
  const fabric::Device device;
  const double clock = 300.0;
  const auto plan = fabric::balanced_plan(specs, lane_budget);
  const auto r = fabric::evaluate_dataflow(plan, device, clock);
  std::printf("%-12s %7zu %10.1f %12.2f %10lld %8lld %7s",
              name, specs.size(), 1000.0 / r.throughput_fps, r.latency_ms,
              static_cast<long long>(r.total_resources.luts),
              static_cast<long long>(r.total_resources.bram36),
              r.fits_device ? "yes" : "NO");
  if (sequential_ms > 0.0)
    std::printf("   (layer-at-a-time: %.1f ms)", sequential_ms);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace nn::zoo;
  std::printf(
      "DATAFLOW PIPELINE vs LAYER-AT-A-TIME ON THE XCZU3EG (300 MHz)\n\n");
  std::printf("%-12s %7s %10s %12s %10s %8s %7s\n", "network", "stages",
              "frame ms", "latency ms", "LUTs", "BRAM36", "fits");

  // MLP-4 and CNV-6: the paper's earlier show cases, W1A1, with modest
  // lane budgets (they only need hundreds of frames per second).
  const auto mlp4 = build(mlp4_cfg());
  report("MLP-4", hidden_specs(*mlp4, 1, /*skip=*/false), 128, 0.0);

  const auto cnv6 = build(cnv6_cfg());
  report("CNV-6", hidden_specs(*cnv6, 1, /*skip=*/false), 512, 0.0);

  // Tincy YOLO hidden layers, W1A3: the dataflow build overflows BRAM.
  const auto tincy_net = build(tiny_yolo_cfg(TinyVariant::kTincy,
                                             QuantMode::kFloat, 416,
                                             CpuProfile::kReference));
  const perf::ZynqPlatform platform;
  const double seq_ms = perf::fabric_hidden_ms(*tincy_net, platform);
  report("Tincy YOLO", hidden_specs(*tincy_net, 3, /*skip=*/true),
         7 * 32 * 36, seq_ms);

  std::printf(
      "\nMLP-4 / CNV-6 fit comfortably as dataflow pipelines (the earlier\n"
      "FINN show cases). Tincy YOLO's seven hidden engines with resident\n"
      "weights overflow the XCZU3EG's 216 BRAM36 — exactly the paper's\n"
      "reason for the single time-shared engine, which fits but serializes\n"
      "the layers and buffers full feature maps between them.\n");
  return 0;
}
