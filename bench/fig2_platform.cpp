// Reproduces Fig. 2's content: the compute opportunities of the Zynq
// UltraScale+ platform — 4 A53 cores, NEON lane counts per data type, and
// the programmable-logic QNN engine with its resource budget.

#include <cstdio>

#include "fabric/resource_model.hpp"
#include "perf/platform.hpp"
#include "simd/vec.hpp"

using namespace tincy;

int main() {
  const perf::ZynqPlatform p;
  std::printf("FIG. 2 — COMPUTE OPPORTUNITIES OF THE ZYNQ ULTRASCALE+ PLATFORM\n\n");
  std::printf("Processing system: %d x ARM Cortex-A53 @ %.1f GHz\n", p.cores,
              p.a53_clock_ghz);
  std::printf("NEON 128-bit SIMD lanes per register:\n");
  std::printf("  f32 : %d lanes (single-precision)\n", simd::F32x4::kLanes);
  std::printf("  i16 : %d lanes\n", simd::I16x8::kLanes);
  std::printf("  i8  : %d lanes\n", simd::I8x16::kLanes);

  const fabric::Device d;
  std::printf("\nProgrammable logic (%s): %lld LUTs, %lld FFs, %lld BRAM36, %lld DSPs\n",
              d.name.c_str(), static_cast<long long>(d.luts),
              static_cast<long long>(d.ffs), static_cast<long long>(d.bram36),
              static_cast<long long>(d.dsp));

  fabric::EngineSpec engine;
  engine.folding = p.fabric_model.folding;
  engine.act_bits = 3;
  engine.max_rows = 512;
  engine.max_depth = 4608;
  engine.weight_bits_on_chip = 512 * 4608;
  const fabric::Resources r = fabric::estimate_engine(engine);
  std::printf("\nGeneralized conv+pool QNN engine (PE=%lld, SIMD=%lld, W1A3):\n",
              static_cast<long long>(engine.folding.pe),
              static_cast<long long>(engine.folding.simd));
  std::printf("  estimate: %lld LUTs, %lld BRAM36\n",
              static_cast<long long>(r.luts), static_cast<long long>(r.bram36));
  std::printf("  engines fitting the device: %lld\n",
              static_cast<long long>(fabric::max_engines(engine, d)));
  std::printf(
      "  => the layers must time-share ONE engine (no dataflow pipeline),\n"
      "     exactly the paper's architectural constraint (Sec. III-A).\n");

  std::printf("\n(Mali GPU present on the SoC but unexplored, as in the paper.)\n");
  return 0;
}
