// Accelerator timing study: per-layer cycle breakdown for the Tincy YOLO
// hidden layers under the default folding (the paper's "30 ms for all
// hidden layers"), a PE/SIMD folding sweep with the resource model, and
// host microbenchmarks of the MVTU datapath emulation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/rng.hpp"
#include "fabric/folding.hpp"
#include "fabric/mvtu.hpp"
#include "fabric/resource_model.hpp"
#include "nn/zoo.hpp"
#include "perf/stage_times.hpp"

using namespace tincy;

namespace {

void print_cycle_tables() {
  const perf::ZynqPlatform platform;
  const auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      nn::zoo::TinyVariant::kTincy, nn::zoo::QuantMode::kFloat, 416,
      nn::zoo::CpuProfile::kReference));

  std::printf("FABRIC — TINCY YOLO HIDDEN LAYERS ON THE QNN ACCELERATOR\n\n");
  std::printf("default folding PE=%lld SIMD=%lld @ %.0f MHz\n",
              static_cast<long long>(platform.fabric_model.folding.pe),
              static_cast<long long>(platform.fabric_model.folding.simd),
              platform.fabric_model.clock_mhz);
  std::printf("modeled time for all hidden layers: %.1f ms  (paper: 30 ms)\n\n",
              perf::fabric_hidden_ms(*net, platform));

  std::printf("folding sweep (hidden-layer ms vs engine LUTs/BRAM, XCZU3EG):\n");
  std::printf("%6s %6s %10s %10s %8s %8s\n", "PE", "SIMD", "hidden ms",
              "LUTs", "BRAM36", "fits");
  const fabric::Device device;
  for (const auto& [pe, simd] :
       {std::pair<int64_t, int64_t>{8, 9}, {16, 18}, {32, 36}, {64, 36},
        {64, 72}}) {
    perf::ZynqPlatform p = platform;
    p.fabric_model.folding = {pe, simd};
    fabric::EngineSpec spec;
    spec.folding = p.fabric_model.folding;
    spec.act_bits = 3;
    spec.max_rows = 512;
    spec.max_depth = 4608;
    spec.weight_bits_on_chip = 512 * 4608;
    const fabric::Resources r = fabric::estimate_engine(spec);
    std::printf("%6lld %6lld %10.1f %10lld %8lld %8s\n",
                static_cast<long long>(pe), static_cast<long long>(simd),
                perf::fabric_hidden_ms(*net, p), static_cast<long long>(r.luts),
                static_cast<long long>(r.bram36),
                fabric::fits(r, device) ? "yes" : "NO");
  }
  std::printf("\n");
}

fabric::Mvtu make_mvtu(int64_t rows, int64_t cols) {
  Rng rng(5);
  Tensor w(Shape{rows, cols});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  std::vector<fabric::ThresholdChannel> th(static_cast<size_t>(rows));
  for (auto& ch : th)
    for (int k = 1; k <= 7; ++k) ch.thresholds.push_back(k * 3);
  return fabric::Mvtu(quant::binarize(w), std::move(th), 3);
}

void BM_MvtuColumn(benchmark::State& state) {
  const int64_t rows = state.range(0), cols = state.range(1);
  const fabric::Mvtu mvtu = make_mvtu(rows, cols);
  Rng rng(6);
  std::vector<uint8_t> column(static_cast<size_t>(cols));
  for (auto& c : column) c = static_cast<uint8_t>(rng.uniform_int(0, 7));
  std::vector<uint8_t> out(static_cast<size_t>(rows));
  for (auto _ : state) {
    mvtu.compute(column, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["modeled_cycles"] = static_cast<double>(
      mvtu.cycles_per_column({32, 36}));
}
BENCHMARK(BM_MvtuColumn)->Args({64, 144})->Args({256, 1152})->Args({512, 4608});

}  // namespace

int main(int argc, char** argv) {
  print_cycle_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
