// Reproduces Figs. 3 and 4: the generic Darknet offload mechanism — a cfg
// file with an [offload] section whose hooks are pulled from a named
// "shared library", its life cycle (init / load_weights / forward /
// destroy), and the equivalence of the fabric backend with the software
// reference.

#include <cstdio>
#include <filesystem>

#include "core/rng.hpp"
#include "nn/builder.hpp"
#include "nn/offload_layer.hpp"
#include "nn/zoo.hpp"
#include "offload/fabric_backend.hpp"
#include "offload/import.hpp"
#include "offload/registration.hpp"

using namespace tincy;

namespace {

const char* kSubnetCfg =
    "[net]\nwidth=16\nheight=16\nchannels=8\n"
    "[convolutional]\nbatch_normalize=1\nfilters=16\nsize=3\nstride=1\n"
    "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n"
    "in_scale=0.25\nout_scale=0.5\n"
    "[maxpool]\nsize=2\nstride=2\n"
    "[convolutional]\nbatch_normalize=1\nfilters=32\nsize=3\nstride=1\n"
    "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n"
    "in_scale=0.5\nout_scale=0.5\n";

}  // namespace

int main() {
  std::printf("FIGS. 3/4 — GENERIC OFFLOAD MECHANISM BUILT FOR DARKNET\n\n");
  offload::register_standard_backends();
  offload::register_inline_network("tincy-yolo-offload", kSubnetCfg);

  // Prepare trained parameters in a binparam directory (Fig. 4's
  // `weights=binparam-tincy-yolo/`).
  const auto dir =
      (std::filesystem::temp_directory_path() / "binparam-tincy-demo").string();
  std::filesystem::remove_all(dir);
  auto subnet = nn::build_network_from_string(kSubnetCfg);
  Rng rng(7);
  nn::zoo::randomize(*subnet, rng);
  offload::export_binparams(*subnet, dir);
  std::printf("exported binparam dir: %s\n\n", dir.c_str());

  const std::string cfg =
      "[net]\nwidth=16\nheight=16\nchannels=8\n"
      "[offload]\n"
      "# HW Interface Library\n"
      "library=fabric.so\n"
      "# Subtopology & Trained Weights\n"
      "network=inline:tincy-yolo-offload\n"
      "weights=" + dir + "\n"
      "# Output Geometry\n"
      "height=8\nwidth=8\nchannel=32\n";
  std::printf("enclosing network cfg (Fig. 4 form):\n%s\n", cfg.c_str());

  const auto net = nn::build_network_from_string(cfg);  // init() hook ran
  auto& layer = dynamic_cast<nn::OffloadLayer&>(net->layer(0));
  layer.backend().load_weights();  // load_weights() hook
  std::printf("life cycle: init -> load_weights -> forward -> destroy\n");

  Tensor in(Shape{8, 16, 16});
  for (int64_t i = 0; i < in.numel(); ++i)
    in[i] = 0.25f * static_cast<float>(rng.uniform_int(0, 7));
  const Tensor& out = net->forward(in);  // forward() hook

  // Drop-in software reference: the same subtopology on the CPU.
  const Tensor& expected = subnet->forward(in);
  int64_t mismatches = 0;
  for (int64_t i = 0; i < out.numel(); ++i)
    mismatches += out[i] != expected[i];
  std::printf("fabric.so output vs CPU QNN reference: %lld / %lld mismatches "
              "(bit-exact expected)\n",
              static_cast<long long>(mismatches),
              static_cast<long long>(out.numel()));

  const auto& backend =
      dynamic_cast<offload::FabricBackend&>(layer.backend());
  std::printf("modeled PL time for the offloaded layers: %.2f ms/frame\n",
              backend.modeled_ms());
  std::filesystem::remove_all(dir);
  return mismatches == 0 ? 0 : 1;
}
