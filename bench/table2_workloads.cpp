// Reproduces Table II: "Dot-product workloads of QNN applications" —
// reduced-precision vs 8-bit operation counts for MLP-4, CNV-6 and
// Tincy YOLO.

#include <cstdio>

#include "nn/ops.hpp"
#include "nn/zoo.hpp"

using namespace tincy;
using nn::zoo::CpuProfile;
using nn::zoo::QuantMode;
using nn::zoo::TinyVariant;

namespace {

void print_row(const char* name, const nn::WorkloadSummary& w,
               const char* target) {
  const double m = 1e6;
  std::printf("%-12s %9.1f M [%s]  %7.1f M  %9.1f M   %s\n", name,
              static_cast<double>(w.reduced_ops) / m,
              w.reduced_precision.name().c_str(),
              static_cast<double>(w.eight_bit_ops) / m,
              static_cast<double>(w.total()) / m, target);
}

}  // namespace

int main() {
  std::printf("TABLE II — DOT-PRODUCT WORKLOADS OF QNN APPLICATIONS\n");
  std::printf("%-12s %16s  %9s  %11s   %s\n", "", "Reduced", "8-Bit", "Total",
              "Primary Target Application");
  const auto mlp4 = nn::zoo::build(nn::zoo::mlp4_cfg());
  const auto cnv6 = nn::zoo::build(nn::zoo::cnv6_cfg());
  const auto tincy_net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kW1A3, 416, CpuProfile::kOptimized));

  print_row("MLP-4", nn::dot_product_workload(*mlp4), "MNIST, NIST");
  print_row("CNV-6", nn::dot_product_workload(*cnv6),
            "CIFAR-10, Road Signs, ...");
  print_row("Tincy YOLO", nn::dot_product_workload(*tincy_net),
            "Object Detection");

  std::printf(
      "\nPaper:    MLP-4 6.0 M [W1A1];  CNV-6 115.8 M [W1A1] + 3.1 M;\n"
      "          Tincy YOLO 4385.9 M [W1A3] + 59.0 M = 4444.9 M\n"
      "Note: MLP-4 measures 5.8 M for the exact 784-1024^3-10 ladder; the\n"
      "paper rounds to 6.0 M (see EXPERIMENTS.md).\n");
  return 0;
}
