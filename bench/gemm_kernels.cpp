// Host microbenchmarks of the §III-D kernel progression for the first
// convolutional layer. Absolute times are host times, not A53 times; the
// *relative* ordering (generic < fused < specialized; quantized variants
// improving data locality) is the property being validated against the
// paper's 620 → 295 → 160 → 140 → 120 ms ladder.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "gemm/first_layer.hpp"
#include "gemm/gemm_lowp.hpp"
#include "gemm/gemm_packed.hpp"
#include "gemm/gemm_ref.hpp"
#include "gemm/gemm_simd.hpp"
#include "quant/affine.hpp"

using namespace tincy;

namespace {

struct Fixture {
  // First-layer geometry at reduced resolution (3 channels, K=3) so a
  // full google-benchmark run stays quick on any host.
  gemm::ConvGeometry g{3, 104, 104, 3, 1, 1};
  Tensor image{Shape{3, 104, 104}};
  Tensor weights{Shape{16, 27}};
  Tensor bias{Shape{16}};
  Tensor out;
  quant::AffineParams in_params;
  gemm::SymmetricWeights sym;

  Fixture() {
    Rng rng(1);
    for (int64_t i = 0; i < image.numel(); ++i)
      image[i] = rng.uniform(0.0f, 1.0f);
    for (int64_t i = 0; i < weights.numel(); ++i) weights[i] = rng.normal();
    for (int64_t i = 0; i < bias.numel(); ++i) bias[i] = rng.normal();
    out = Tensor(Shape{16, g.num_patches()});
    in_params = quant::choose_affine_params(0.0f, 1.0f);
    sym = gemm::quantize_symmetric(weights);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Conv_GenericIm2colGemm(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::conv_via_im2col_f32(f.image.data(), f.g, f.weights.data(), 16,
                              f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_GenericIm2colGemm);

void BM_Conv_FusedSlicedF32(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::fused_conv_f32(f.image.data(), f.g, f.weights.data(), 16,
                         f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_FusedSlicedF32);

void BM_Conv_LowpGemm(benchmark::State& state) {
  auto& f = fixture();
  const auto wp = quant::choose_affine_params(-2.0f, 2.0f);
  const TensorU8 wq = quant::quantize(f.weights, wp);
  for (auto _ : state) {
    gemm::conv_lowp_f32out(f.image.data(), f.g, f.in_params, wq.data(), wp,
                           16, f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_LowpGemm);

void BM_Conv_FusedLowp(benchmark::State& state) {
  auto& f = fixture();
  const auto wp = quant::choose_affine_params(-2.0f, 2.0f);
  const TensorU8 wq = quant::quantize(f.weights, wp);
  for (auto _ : state) {
    gemm::fused_conv_lowp_f32out(f.image.data(), f.g, f.in_params, wq.data(),
                                 wp, 16, f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_FusedLowp);

void BM_FirstLayer_SpecF32(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::first_layer_f32(f.image.data(), f.g, f.weights.data(),
                          f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecF32);

void BM_FirstLayer_SpecAcc32(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::first_layer_lowp_acc32(f.image.data(), f.g, f.in_params, f.sym,
                                 f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecAcc32);

void BM_FirstLayer_SpecAcc16(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::first_layer_lowp_acc16(f.image.data(), f.g, f.in_params, f.sym,
                                 f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecAcc16);

// The algorithmic simplification (d): stride 2 quarters the applications.
void BM_FirstLayer_SpecAcc16_Stride2(benchmark::State& state) {
  auto& f = fixture();
  gemm::ConvGeometry g2 = f.g;
  g2.stride = 2;
  Tensor out(Shape{16, g2.num_patches()});
  for (auto _ : state) {
    gemm::first_layer_lowp_acc16(f.image.data(), g2, f.in_params, f.sym,
                                 f.bias.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecAcc16_Stride2);

// --- Raw GEMM variants at a hidden-layer-like size (128 × 2704 × 576) ---

struct GemmFixture {
  static constexpr int64_t M = 128, N = 2704, K = 576;
  Tensor a{Shape{M, K}}, b{Shape{K, N}}, c{Shape{M, N}};
  GemmFixture() {
    Rng rng(2);
    for (int64_t i = 0; i < a.numel(); ++i) a[i] = rng.normal();
    for (int64_t i = 0; i < b.numel(); ++i) b[i] = rng.normal();
  }
};

GemmFixture& gemm_fixture() {
  static GemmFixture f;
  return f;
}

void BM_Gemm_Reference(benchmark::State& state) {
  auto& f = gemm_fixture();
  for (auto _ : state) {
    gemm::gemm_ref(f.M, f.N, f.K, f.a.data(), f.b.data(), f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_Gemm_Reference);

void BM_Gemm_Lanes(benchmark::State& state) {
  auto& f = gemm_fixture();
  for (auto _ : state) {
    gemm::gemm_f32_lanes(f.M, f.N, f.K, f.a.data(), f.b.data(), f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_Gemm_Lanes);

void BM_Gemm_Blocked(benchmark::State& state) {
  auto& f = gemm_fixture();
  for (auto _ : state) {
    gemm::gemm_f32_blocked(f.M, f.N, f.K, f.a.data(), f.b.data(), f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_Gemm_Blocked);

// --- Quantized GEMM engine (packed/tiled/threaded, gemm_packed.hpp) ---

struct LowpGemmFixture {
  static constexpr int64_t M = 128, N = 2704, K = 576;
  std::vector<uint8_t> a, b;
  std::vector<int32_t> c;
  int32_t za = 7, zb = 131;
  gemm::PackedLhs lhs;
  LowpGemmFixture() : a(M * K), b(K * N), c(M * N) {
    Rng rng(3);
    for (auto& v : a) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
    for (auto& v : b) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
    lhs = gemm::pack_lhs(a.data(), M, K, za);
  }
};

LowpGemmFixture& lowp_fixture() {
  static LowpGemmFixture f;
  return f;
}

void BM_GemmLowp_Naive(benchmark::State& state) {
  auto& f = lowp_fixture();
  for (auto _ : state) {
    gemm::gemm_lowp_i32(f.M, f.N, f.K, f.a.data(), f.za, f.b.data(), f.zb,
                        f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_GemmLowp_Naive);

void BM_GemmLowp_Packed(benchmark::State& state) {
  auto& f = lowp_fixture();
  gemm::GemmOptions opts;
  opts.allow_threads = false;
  for (auto _ : state) {
    gemm::gemm_lowp_packed(f.lhs, f.b.data(), f.zb, f.N, f.c.data(), opts);
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_GemmLowp_Packed);

void BM_GemmLowp_PackedThreaded(benchmark::State& state) {
  auto& f = lowp_fixture();
  for (auto _ : state) {
    gemm::gemm_lowp_packed(f.lhs, f.b.data(), f.zb, f.N, f.c.data(), {});
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_GemmLowp_PackedThreaded);

// --- Self-checking performance gate (tier2-gemm) ----------------------
//
// `gemm_kernels --gate [out.json]` times the packed engine against the
// naive gemm_lowp_i32 oracle on the Tincy YOLO first/last CPU-layer
// shapes, asserts bit-exact parity, enforces the speedup floors from
// the issue (packed+threaded >= 3x, single-threaded pack+tile >= 1.5x),
// and writes a baseline-vs-packed-vs-threaded report to BENCH_gemm.json.

struct GateShape {
  const char* name;
  int64_t M, N, K;
};

template <typename F>
double best_of_ms(int trials, F&& fn) {
  // One untimed warmup run: the first packed call per shape faults in the
  // panel scratch arenas and the LHS panel cache, a one-off cost that
  // used to land on whichever variant happened to be timed first and
  // skew the cross-variant comparison.
  fn();
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

int run_gate(const char* json_path) {
  // Layer 0 runs at the reduced 104x104 benchmark resolution (same
  // geometry ratio as 416x416, 16x faster to time); layer 15 is the
  // exact Tincy YOLO output conv (125 filters over 13x13 at K=1024).
  const GateShape shapes[] = {
      {"layer0", 16, 104 * 104, 27},
      {"layerlast", 125, 13 * 13, 1024},
  };
  const int kTrials = 5;
  const double kMinThreadedSpeedup = 3.0;
  const double kMinSingleThreadSpeedup = 1.5;
  // Micro-kernel floor: the kAuto-dispatched SIMD variant must beat the
  // scalar packed path (same packing, same tiling, vectorization off) by
  // this much on every gate shape — and kAuto must actually have picked
  // a SIMD variant.
  const double kMinKernelSpeedup = 1.5;
  const int threads = core::ThreadPool::shared().threads();
  const gemm::Kernel dispatched = gemm::resolve_kernel(gemm::Kernel::kAuto);

  bool pass = true;
  std::ostringstream js;
  js << "{\n  \"schema\": \"tincy-bench-gemm-v2\",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"dispatched_kernel\": \"" << gemm::kernel_name(dispatched)
     << "\",\n"
     << "  \"min_speedup_threaded\": " << kMinThreadedSpeedup << ",\n"
     << "  \"min_speedup_single_thread\": " << kMinSingleThreadSpeedup
     << ",\n  \"min_speedup_kernel\": " << kMinKernelSpeedup
     << ",\n  \"shapes\": [";

  bool first_shape = true;
  for (const auto& s : shapes) {
    Rng rng(42);
    const int32_t za = 7, zb = 131;
    std::vector<uint8_t> A(s.M * s.K), B(s.K * s.N);
    for (auto& v : A) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
    for (auto& v : B) v = static_cast<uint8_t>(rng.uniform_int(0, 255));
    std::vector<int32_t> ref(s.M * s.N), got(s.M * s.N);

    // Bit-exact parity: packed engine vs the naive i32 oracle, and the
    // 16-bit shift-4 fast path vs its scalar oracle (both wrap/saturate
    // identically, so parity holds for any zero points).
    gemm::gemm_lowp_i32(s.M, s.N, s.K, A.data(), za, B.data(), zb, ref.data());
    gemm::gemm_lowp_packed(s.M, s.N, s.K, A.data(), za, B.data(), zb,
                           got.data(), {});
    const bool parity_i32 = ref == got;

    gemm::gemm_lowp_i32_shift4(s.M, s.N, s.K, A.data(), za, B.data(), zb,
                               ref.data());
    gemm::GemmOptions shift4_opts;
    shift4_opts.acc = gemm::Accumulator::kI16Shift4;
    gemm::gemm_lowp_packed(s.M, s.N, s.K, A.data(), za, B.data(), zb,
                           got.data(), shift4_opts);
    const bool parity_shift4 = ref == got;

    const double naive_ms = best_of_ms(kTrials, [&] {
      gemm::gemm_lowp_i32(s.M, s.N, s.K, A.data(), za, B.data(), zb,
                          got.data());
    });
    // Single-threaded, per-call pack: isolates the pack+tile win.
    gemm::GemmOptions st;
    st.allow_threads = false;
    const double packed_st_ms = best_of_ms(kTrials, [&] {
      gemm::gemm_lowp_packed(s.M, s.N, s.K, A.data(), za, B.data(), zb,
                             got.data(), st);
    });
    // Full engine: weights packed once (as the layer caches do), threads on.
    const gemm::PackedLhs lhs = gemm::pack_lhs(A.data(), s.M, s.K, za);
    const double threaded_ms = best_of_ms(kTrials, [&] {
      gemm::gemm_lowp_packed(lhs, B.data(), zb, s.N, got.data(), {});
    });

    // Per-micro-kernel-variant rows: cached LHS, threads off, identical
    // packing — the only difference between rows is the micro-kernel, so
    // scalar vs kAuto isolates the SIMD win the tentpole claims.
    struct KernelRow {
      gemm::Kernel k;
      double ms = 0.0;
      bool parity = false;
    };
    gemm::gemm_lowp_i32(s.M, s.N, s.K, A.data(), za, B.data(), zb, ref.data());
    std::vector<KernelRow> krows;
    double scalar_ms = 0.0, auto_ms = 0.0;
    bool kernel_parity = true;
    for (const gemm::Kernel k : gemm::dispatchable_kernels()) {
      gemm::GemmOptions ko;
      ko.allow_threads = false;
      ko.kernel = k;
      std::fill(got.begin(), got.end(), 0);
      gemm::gemm_lowp_packed(lhs, B.data(), zb, s.N, got.data(), ko);
      const bool kp = ref == got;
      kernel_parity = kernel_parity && kp;
      const double ms = best_of_ms(kTrials, [&] {
        gemm::gemm_lowp_packed(lhs, B.data(), zb, s.N, got.data(), ko);
      });
      if (k == gemm::Kernel::kScalar) scalar_ms = ms;
      if (k == dispatched) auto_ms = ms;
      krows.push_back({k, ms, kp});
    }
    const double speedup_kernel = auto_ms > 0.0 ? scalar_ms / auto_ms : 0.0;
    const bool kernels_ok = kernel_parity &&
                            dispatched != gemm::Kernel::kScalar &&
                            speedup_kernel >= kMinKernelSpeedup;

    const double mflop = 2.0 * s.M * s.N * s.K / 1e6;
    const double speedup_st = naive_ms / packed_st_ms;
    const double speedup_threaded = naive_ms / threaded_ms;
    const bool shape_ok = parity_i32 && parity_shift4 && kernels_ok &&
                          speedup_st >= kMinSingleThreadSpeedup &&
                          speedup_threaded >= kMinThreadedSpeedup;
    pass = pass && shape_ok;

    std::printf(
        "%-9s M=%-4lld N=%-6lld K=%-5lld parity(i32)=%s parity(shift4)=%s\n"
        "          naive %8.3f ms (%7.0f MFLOP/s)\n"
        "          packed-1t %8.3f ms (%7.0f MFLOP/s)  %.2fx  [floor %.1fx]\n"
        "          threaded  %8.3f ms (%7.0f MFLOP/s)  %.2fx  [floor %.1fx]"
        "  -> %s\n",
        s.name, static_cast<long long>(s.M), static_cast<long long>(s.N),
        static_cast<long long>(s.K), parity_i32 ? "ok" : "FAIL",
        parity_shift4 ? "ok" : "FAIL", naive_ms, mflop / naive_ms * 1e3,
        packed_st_ms, mflop / packed_st_ms * 1e3, speedup_st,
        kMinSingleThreadSpeedup, threaded_ms, mflop / threaded_ms * 1e3,
        speedup_threaded, kMinThreadedSpeedup, shape_ok ? "PASS" : "FAIL");
    for (const KernelRow& r : krows) {
      std::printf(
          "          kernel %-7s %8.3f ms (%7.0f MFLOP/s)  %.2fx vs scalar"
          "  parity=%s%s\n",
          gemm::kernel_name(r.k), r.ms, mflop / r.ms * 1e3, scalar_ms / r.ms,
          r.parity ? "ok" : "FAIL",
          r.k == dispatched ? "  <- kAuto" : "");
    }
    std::printf("          kernel gate %.2fx (floor %.1fx, dispatched=%s)\n",
                speedup_kernel, kMinKernelSpeedup,
                gemm::kernel_name(dispatched));

    js << (first_shape ? "" : ",") << "\n    {\"name\": \"" << s.name
       << "\", \"M\": " << s.M << ", \"N\": " << s.N << ", \"K\": " << s.K
       << ",\n     \"naive_ms\": " << naive_ms
       << ", \"packed_single_thread_ms\": " << packed_st_ms
       << ", \"packed_threaded_ms\": " << threaded_ms
       << ",\n     \"naive_mflops\": " << mflop / naive_ms * 1e3
       << ", \"packed_single_thread_mflops\": " << mflop / packed_st_ms * 1e3
       << ", \"packed_threaded_mflops\": " << mflop / threaded_ms * 1e3
       << ",\n     \"speedup_single_thread\": " << speedup_st
       << ", \"speedup_threaded\": " << speedup_threaded
       << ", \"parity_i32\": " << (parity_i32 ? "true" : "false")
       << ", \"parity_shift4\": " << (parity_shift4 ? "true" : "false")
       << ",\n     \"dispatched_kernel\": \"" << gemm::kernel_name(dispatched)
       << "\", \"speedup_kernel\": " << speedup_kernel
       << ",\n     \"kernels\": [";
    for (size_t i = 0; i < krows.size(); ++i) {
      js << (i ? ", " : "") << "{\"name\": \"" << gemm::kernel_name(krows[i].k)
         << "\", \"ms\": " << krows[i].ms
         << ", \"mflops\": " << mflop / krows[i].ms * 1e3
         << ", \"parity\": " << (krows[i].parity ? "true" : "false") << "}";
    }
    js << "],\n     \"pass\": " << (shape_ok ? "true" : "false") << "}";
    first_shape = false;
  }
  js << "\n  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";

  if (json_path) {
    std::ofstream out(json_path);
    out << js.str();
    if (!out.good()) {
      std::fprintf(stderr, "gemm gate: cannot write %s\n", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  std::printf("gemm gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gate") == 0)
    return run_gate(argc > 2 ? argv[2] : "BENCH_gemm.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
