// Host microbenchmarks of the §III-D kernel progression for the first
// convolutional layer. Absolute times are host times, not A53 times; the
// *relative* ordering (generic < fused < specialized; quantized variants
// improving data locality) is the property being validated against the
// paper's 620 → 295 → 160 → 140 → 120 ms ladder.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/rng.hpp"
#include "gemm/first_layer.hpp"
#include "gemm/gemm_lowp.hpp"
#include "gemm/gemm_ref.hpp"
#include "gemm/gemm_simd.hpp"
#include "quant/affine.hpp"

using namespace tincy;

namespace {

struct Fixture {
  // First-layer geometry at reduced resolution (3 channels, K=3) so a
  // full google-benchmark run stays quick on any host.
  gemm::ConvGeometry g{3, 104, 104, 3, 1, 1};
  Tensor image{Shape{3, 104, 104}};
  Tensor weights{Shape{16, 27}};
  Tensor bias{Shape{16}};
  Tensor out;
  quant::AffineParams in_params;
  gemm::SymmetricWeights sym;

  Fixture() {
    Rng rng(1);
    for (int64_t i = 0; i < image.numel(); ++i)
      image[i] = rng.uniform(0.0f, 1.0f);
    for (int64_t i = 0; i < weights.numel(); ++i) weights[i] = rng.normal();
    for (int64_t i = 0; i < bias.numel(); ++i) bias[i] = rng.normal();
    out = Tensor(Shape{16, g.num_patches()});
    in_params = quant::choose_affine_params(0.0f, 1.0f);
    sym = gemm::quantize_symmetric(weights);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Conv_GenericIm2colGemm(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::conv_via_im2col_f32(f.image.data(), f.g, f.weights.data(), 16,
                              f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_GenericIm2colGemm);

void BM_Conv_FusedSlicedF32(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::fused_conv_f32(f.image.data(), f.g, f.weights.data(), 16,
                         f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_FusedSlicedF32);

void BM_Conv_LowpGemm(benchmark::State& state) {
  auto& f = fixture();
  const auto wp = quant::choose_affine_params(-2.0f, 2.0f);
  const TensorU8 wq = quant::quantize(f.weights, wp);
  for (auto _ : state) {
    gemm::conv_lowp_f32out(f.image.data(), f.g, f.in_params, wq.data(), wp,
                           16, f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_LowpGemm);

void BM_Conv_FusedLowp(benchmark::State& state) {
  auto& f = fixture();
  const auto wp = quant::choose_affine_params(-2.0f, 2.0f);
  const TensorU8 wq = quant::quantize(f.weights, wp);
  for (auto _ : state) {
    gemm::fused_conv_lowp_f32out(f.image.data(), f.g, f.in_params, wq.data(),
                                 wp, 16, f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_Conv_FusedLowp);

void BM_FirstLayer_SpecF32(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::first_layer_f32(f.image.data(), f.g, f.weights.data(),
                          f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecF32);

void BM_FirstLayer_SpecAcc32(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::first_layer_lowp_acc32(f.image.data(), f.g, f.in_params, f.sym,
                                 f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecAcc32);

void BM_FirstLayer_SpecAcc16(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    gemm::first_layer_lowp_acc16(f.image.data(), f.g, f.in_params, f.sym,
                                 f.bias.data(), f.out.data());
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecAcc16);

// The algorithmic simplification (d): stride 2 quarters the applications.
void BM_FirstLayer_SpecAcc16_Stride2(benchmark::State& state) {
  auto& f = fixture();
  gemm::ConvGeometry g2 = f.g;
  g2.stride = 2;
  Tensor out(Shape{16, g2.num_patches()});
  for (auto _ : state) {
    gemm::first_layer_lowp_acc16(f.image.data(), g2, f.in_params, f.sym,
                                 f.bias.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FirstLayer_SpecAcc16_Stride2);

// --- Raw GEMM variants at a hidden-layer-like size (128 × 2704 × 576) ---

struct GemmFixture {
  static constexpr int64_t M = 128, N = 2704, K = 576;
  Tensor a{Shape{M, K}}, b{Shape{K, N}}, c{Shape{M, N}};
  GemmFixture() {
    Rng rng(2);
    for (int64_t i = 0; i < a.numel(); ++i) a[i] = rng.normal();
    for (int64_t i = 0; i < b.numel(); ++i) b[i] = rng.normal();
  }
};

GemmFixture& gemm_fixture() {
  static GemmFixture f;
  return f;
}

void BM_Gemm_Reference(benchmark::State& state) {
  auto& f = gemm_fixture();
  for (auto _ : state) {
    gemm::gemm_ref(f.M, f.N, f.K, f.a.data(), f.b.data(), f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_Gemm_Reference);

void BM_Gemm_Lanes(benchmark::State& state) {
  auto& f = gemm_fixture();
  for (auto _ : state) {
    gemm::gemm_f32_lanes(f.M, f.N, f.K, f.a.data(), f.b.data(), f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_Gemm_Lanes);

void BM_Gemm_Blocked(benchmark::State& state) {
  auto& f = gemm_fixture();
  for (auto _ : state) {
    gemm::gemm_f32_blocked(f.M, f.N, f.K, f.a.data(), f.b.data(), f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_Gemm_Blocked);

}  // namespace

BENCHMARK_MAIN();
