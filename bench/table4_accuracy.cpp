// Reproduces the *shape* of Table IV: "Accuracy of Tiny YOLO variants".
//
// The paper trains on Pascal VOC with GPUs; this reproduction trains
// scaled-down variants on the SynthVOC substitution dataset (CPU, QAT with
// straight-through estimators) and evaluates VOC-2007 mAP. Absolute mAP is
// not comparable (different data/scale); the reproduced shape is:
//   * float Tiny YOLO scores highest,
//   * W1A3 quantization costs several points of mAP,
//   * the quantized variants cluster together — the algorithmic
//     simplifications (b), (c), (d) are nearly free after retraining.
//
// Budget: pass a smaller step count as argv[1] for a quick run
// (default 400 steps per variant; the paper's numbers are cited inline).

#include <cstdio>
#include <cstdlib>

#include "train/trainer.hpp"

using namespace tincy;
using train::DetectorVariant;

int main(int argc, char** argv) {
  const int64_t steps = argc > 1 ? std::atoll(argv[1]) : 800;

  const data::SynthVocConfig dcfg{
      .image_size = 48, .num_classes = 3, .max_objects = 2};
  const data::SynthVoc dataset(dcfg, /*seed=*/2018);

  const struct {
    DetectorVariant variant;
    const char* precision;
    double paper_map;
  } rows[] = {
      {DetectorVariant::kTinyS, "Float", 57.1},
      {DetectorVariant::kA, "[W1A3]", 47.8},
      {DetectorVariant::kABC, "[W1A3]", 47.2},
      {DetectorVariant::kTincyS, "[W1A3]", 48.5},
  };

  std::printf("TABLE IV — ACCURACY OF TINY YOLO VARIANTS (SynthVOC scale)\n");
  std::printf("%-22s %-8s %12s %14s\n", "Variant", "Prec.", "Paper mAP(%)",
              "Measured mAP(%)");
  double float_map = 0.0, quant_sum = 0.0;
  int quant_n = 0;
  // Paper methodology: the quantized variants are *retrained from* the
  // trained float network, not from scratch; keep the float model around
  // to warm-start shape-matching layers.
  std::unique_ptr<train::Model> float_model;
  for (const auto& row : rows) {
    Rng rng(42);  // same init across variants where shapes allow
    train::DetectorSpec spec;
    spec.input_size = dcfg.image_size;
    spec.num_classes = dcfg.num_classes;
    train::Model model = train::make_detector(row.variant, spec, rng);
    if (float_model && train::detector_variant_quantized(row.variant)) {
      // Warm start only when the whole conv stack matches (variant (a));
      // a partial copy (topology-changing variants) leaves the network in
      // a worse basin than a fresh QAT run, so those start from scratch.
      int64_t convs = 0;
      for (int64_t l = 0; l < model.num_layers(); ++l)
        convs += dynamic_cast<const train::TrainConvLayer*>(&model.layer(l)) !=
                 nullptr;
      train::Model candidate = train::make_detector(row.variant, spec, rng);
      if (candidate.warm_start_from(*float_model) == convs) {
        model = std::move(candidate);
        std::fprintf(stderr, "  (all %lld conv layers warm-started)\n",
                     static_cast<long long>(convs));
      }
    }

    const train::TrainConfig tcfg =
        train::default_train_config(row.variant, steps);
    train::train_detector(model, spec, dataset, tcfg);
    const double map =
        100.0 * train::evaluate_map(model, spec, dataset, /*num_images=*/48);
    if (row.variant == train::DetectorVariant::kTinyS)
      float_model = std::make_unique<train::Model>(std::move(model));
    std::printf("%-22s %-8s %12.1f %14.1f\n",
                train::detector_variant_name(row.variant).c_str(),
                row.precision, row.paper_map, map);
    std::fflush(stdout);
    if (row.variant == DetectorVariant::kTinyS)
      float_map = map;
    else {
      quant_sum += map;
      ++quant_n;
    }
  }
  const double quant_mean = quant_sum / quant_n;
  std::printf(
      "\nShape check: float %.1f vs quantized mean %.1f "
      "(paper: 57.1 vs ~47.8; float should lead)\n",
      float_map, quant_mean);
  return 0;
}
