// Reproduces Fig. 1's content computationally: feature-map convolution as
// K²·C-deep dot products, its reduction to matrix multiplication via
// im2col, and the data inflation the paper discusses (~K² for stride-1
// "same" convolutions, none for kernel == feature-map size).

#include <cstdio>

#include "core/rng.hpp"
#include "gemm/gemm_ref.hpp"
#include "gemm/gemm_simd.hpp"
#include "gemm/im2col.hpp"

using namespace tincy;

int main() {
  std::printf("FIG. 1 — FEATURE MAP CONVOLUTION AS im2col + GEMM\n\n");

  // Direct conv vs im2col+GEMM equivalence on a Tiny-YOLO-like layer.
  const gemm::ConvGeometry g{16, 26, 26, 3, 1, 1};
  Rng rng(1);
  Tensor img(Shape{16, 26, 26});
  for (int64_t i = 0; i < img.numel(); ++i) img[i] = rng.uniform(-1.f, 1.f);
  const int64_t out_c = 32;
  Tensor w(Shape{out_c, g.patch_size()});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();

  // Direct definition: out[m, p] = Σ_k w[m, k] · patch_p[k].
  const Tensor cols = gemm::im2col(img, g);
  const Tensor via_gemm = gemm::gemm_ref(w, cols);
  Tensor direct(Shape{out_c, g.num_patches()});
  gemm::conv_via_im2col_f32(img.data(), g, w.data(), out_c, nullptr,
                            direct.data());
  double max_err = 0.0;
  for (int64_t i = 0; i < direct.numel(); ++i)
    max_err = std::max(max_err,
                       static_cast<double>(std::abs(direct[i] - via_gemm[i])));
  std::printf("conv == weights x im2col(image): max |delta| = %.2e\n", max_err);

  // Dot products per kernel application: K^2 * C.
  std::printf("dot-product depth K^2*C = %lld (K=3, C=16)\n",
              static_cast<long long>(g.patch_size()));

  // Inflation: stride-1 same conv vs whole-map kernel.
  const int64_t image_elems = img.numel();
  std::printf("im2col inflation (stride 1, K=3): %lld -> %lld elements (%.1fx; paper: ~K^2 = 9x)\n",
              static_cast<long long>(image_elems),
              static_cast<long long>(cols.numel()),
              static_cast<double>(cols.numel()) /
                  static_cast<double>(image_elems));

  const gemm::ConvGeometry fc{16, 26, 26, 26, 1, 0};
  std::printf("kernel == map size: %lld patches, inflation %.2fx "
              "(degenerates into a fully connected layer)\n",
              static_cast<long long>(fc.num_patches()),
              static_cast<double>(fc.patch_size() * fc.num_patches()) /
                  static_cast<double>(image_elems));

  // Per-output-channel duplication (C' kernels over the same columns).
  std::printf("ops for C'=%lld output channels: 2*%lld*%lld*%lld = %lld\n",
              static_cast<long long>(out_c),
              static_cast<long long>(g.patch_size()),
              static_cast<long long>(out_c),
              static_cast<long long>(g.num_patches()),
              static_cast<long long>(2 * g.patch_size() * out_c *
                                     g.num_patches()));
  return 0;
}
