// The `tincy` command-line tool — the Darknet-style front end of the
// reproduction. Subcommands:
//
//   tincy summary <cfg>                         layer table + op counts
//   tincy ops <cfg>                             Table-I/II style accounting
//   tincy detect <cfg> <weights|-> <in.ppm> [thresh] [out.ppm]
//                                               single-image detection
//   tincy demo [frames] [workers]               pipelined live demo (Fig. 5)
//   tincy serve-sim [streams] [frames] [workers]
//                                               multi-stream serving over the
//                                               shared fabric engine
//   tincy export-binparam <cfg> <weights|-> <dir>
//                                               fabric parameter export
//   tincy ladder                                the Sec. III speedup ladder
//   tincy kernels                               GEMM micro-kernel dispatch
//                                               table on this machine
//
// Global flags (any subcommand):
//   --metrics-json <path>   write the telemetry snapshot as JSON on exit
//   --metrics-summary       print the telemetry summary table to stderr
//   --trace <path>          enable tracing and write a Chrome trace-event
//                           JSON on exit (load in Perfetto / chrome://tracing)
//
// cfg arguments accept either a file path or one of the zoo shorthands
// `zoo:tiny`, `zoo:tincy`, `zoo:tincy-w1a3`, `zoo:mlp4`, `zoo:cnv6`.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#include "core/rng.hpp"
#include "core/string_utils.hpp"
#include "data/image.hpp"
#include "detect/decode.hpp"
#include "detect/nms.hpp"
#include "gemm/kernels.hpp"
#include "nn/builder.hpp"
#include "nn/describe.hpp"
#include "nn/ops.hpp"
#include "nn/region_layer.hpp"
#include "nn/weights_io.hpp"
#include "nn/zoo.hpp"
#include "offload/import.hpp"
#include "offload/registration.hpp"
#include "perf/ladder.hpp"
#include "pipeline/demo.hpp"
#include "serve/demo.hpp"
#include "serve/server.hpp"
#include "video/draw.hpp"
#include "video/ppm.hpp"

using namespace tincy;

namespace {

std::unique_ptr<nn::Network> open_network(const std::string& spec) {
  using namespace nn::zoo;
  offload::register_standard_backends();
  if (spec == "zoo:tiny")
    return build(tiny_yolo_cfg(TinyVariant::kTiny, QuantMode::kFloat));
  if (spec == "zoo:tincy")
    return build(tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kFloat));
  if (spec == "zoo:tincy-w1a3")
    return build(tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kW1A3, 416,
                               CpuProfile::kOptimized));
  if (spec == "zoo:mlp4") return build(mlp4_cfg());
  if (spec == "zoo:cnv6") return build(cnv6_cfg());
  return nn::build_network_from_file(spec);
}

void maybe_load_weights(nn::Network& net, const std::string& weights) {
  if (weights == "-") {
    Rng rng(1);
    nn::zoo::randomize(net, rng);
    std::fprintf(stderr, "(using random weights)\n");
  } else {
    nn::load_weights(net, weights);
  }
}

int cmd_summary(const std::string& cfg) {
  const auto net = open_network(cfg);
  std::fputs(nn::summary(*net).c_str(), stdout);
  return 0;
}

int cmd_ops(const std::string& cfg) {
  const auto net = open_network(cfg);
  std::fputs(nn::summary(*net).c_str(), stdout);
  const auto w = nn::dot_product_workload(*net);
  std::printf(
      "\ndot-product workload: reduced %s [%s], 8-bit %s, float %s\n",
      with_commas(w.reduced_ops).c_str(), w.reduced_precision.name().c_str(),
      with_commas(w.eight_bit_ops).c_str(), with_commas(w.float_ops).c_str());
  return 0;
}

int cmd_detect(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: tincy detect <cfg> <weights|-> <in.ppm> "
                 "[thresh] [out.ppm]\n");
    return 2;
  }
  const auto net = open_network(argv[0]);
  maybe_load_weights(*net, argv[1]);
  const Tensor image = video::read_ppm(argv[2]);
  const float thresh = argc > 3 ? std::strtof(argv[3], nullptr) : 0.3f;

  const auto* region = dynamic_cast<const nn::RegionLayer*>(
      &net->layer(net->num_layers() - 1));
  if (!region) {
    std::fprintf(stderr, "network does not end in a [region] layer\n");
    return 1;
  }
  const int64_t input_size = net->input_shape().height();
  const Tensor boxed = data::letterbox(image, input_size);
  const Tensor& features = net->forward(boxed);
  auto dets = detect::nms(
      detect::decode_region(features, region->config(), thresh));
  const int64_t w = image.shape().width(), h = image.shape().height();
  for (auto& d : dets)
    data::unletterbox_box(d.box.x, d.box.y, d.box.w, d.box.h, w, h,
                          input_size);

  std::printf("%zu detections:\n", dets.size());
  for (const auto& d : dets)
    std::printf("  class %2d  score %.2f  box (%.3f, %.3f, %.3f, %.3f)\n",
                d.class_id, d.score(), d.box.x, d.box.y, d.box.w, d.box.h);
  if (argc > 4) {
    Tensor annotated = image;
    video::draw_detections(annotated, dets);
    video::write_ppm(argv[4], annotated);
    std::printf("wrote %s\n", argv[4]);
  }
  return 0;
}

int cmd_demo(int argc, char** argv) {
  const int64_t frames = argc > 0 ? std::atoll(argv[0]) : 64;
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  // kOptimized exercises the paper's full CPU story — acc16 first layer
  // plus the packed lowp GEMM engine on the output layer — so the demo's
  // --metrics-json carries the gemm.* observability surface.
  auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      nn::zoo::TinyVariant::kTincy, nn::zoo::QuantMode::kFloat, 64,
      nn::zoo::CpuProfile::kOptimized));
  Rng rng(3);
  nn::zoo::randomize(*net, rng);
  video::SyntheticCamera camera({.width = 128, .height = 96, .seed = 17});
  video::OrderCheckingSink sink;
  pipeline::DemoConfig cfg;
  cfg.num_workers = workers;
  const auto result = pipeline::run_demo(camera, *net, sink, frames, cfg);
  std::printf("%lld frames, %.1f fps, order %s\n",
              static_cast<long long>(sink.frames_received()), result.fps,
              sink.in_order() ? "preserved" : "VIOLATED");
  return sink.in_order() ? 0 : 1;
}

int cmd_serve_sim(int argc, char** argv) {
  const int streams = argc > 0 ? std::atoi(argv[0]) : 4;
  const int64_t frames = argc > 1 ? std::atoll(argv[1]) : 32;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;
  if (streams < 1 || frames < 1 || workers < 1) {
    std::fprintf(stderr,
                 "usage: tincy serve-sim [streams>=1] [frames>=1] "
                 "[workers>=1]\n");
    return 2;
  }

  serve::ServerOptions opts;
  opts.num_workers = workers;
  serve::StreamServer server(opts);

  // Every stream is an independent client: its own network instance (no
  // shared activation storage), its own camera, its own ordered sink.
  // Only the fabric engine is shared, through the arbiter.
  std::vector<std::unique_ptr<nn::Network>> nets;
  std::vector<std::unique_ptr<video::SyntheticCamera>> cameras;
  std::vector<video::OrderCheckingSink> sinks(static_cast<size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
        nn::zoo::TinyVariant::kTincy, nn::zoo::QuantMode::kFloat, 64,
        nn::zoo::CpuProfile::kFused));
    Rng rng(3 + static_cast<uint64_t>(i));
    nn::zoo::randomize(*net, rng);
    cameras.push_back(std::make_unique<video::SyntheticCamera>(
        video::CameraConfig{.width = 128,
                            .height = 96,
                            .seed = 17 + static_cast<uint64_t>(i)}));
    serve::SessionConfig sc;
    sc.stages = serve::demo_session_stages(
        *net, pipeline::DemoConfig{}, serve::EnginePolicy::kHiddenLayers);
    auto* sink = &sinks[static_cast<size_t>(i)];
    sc.deliver = [sink](video::Frame&& f) { sink->push(f); };
    sc.queue_capacity = 4;
    server.open_session(std::move(sc));
    nets.push_back(std::move(net));
  }

  server.start();
  const auto t0 = std::chrono::steady_clock::now();
  // Round-robin submission; a full queue answers kOverloaded and the
  // frame is retried — the per-stream backpressure path.
  std::vector<int64_t> sent(static_cast<size_t>(streams), 0);
  std::vector<std::optional<video::Frame>> held(
      static_cast<size_t>(streams));
  int64_t remaining = static_cast<int64_t>(streams) * frames;
  while (remaining > 0) {
    bool progressed = false;
    for (int i = 0; i < streams; ++i) {
      const auto ui = static_cast<size_t>(i);
      if (sent[ui] == frames) continue;
      if (!held[ui]) held[ui] = cameras[ui]->read_frame();
      if (server.submit(i, *held[ui]) == serve::ServeResult::kAccepted) {
        held[ui].reset();
        ++sent[ui];
        --remaining;
        progressed = true;
      }
    }
    if (!progressed)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  server.drain();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  bool ok = true;
  const auto snapshot = server.snapshot();
  std::printf("stream  frames  rejected  mean_lat_ms  order\n");
  for (int i = 0; i < streams; ++i) {
    const auto& sink = sinks[static_cast<size_t>(i)];
    const auto* lat = snapshot.find_histogram(
        "serve.session.s" + std::to_string(i) + ".latency_ms");
    std::printf("s%-5d  %6lld  %8lld  %11.2f  %s\n", i,
                static_cast<long long>(sink.frames_received()),
                static_cast<long long>(server.rejected(i)),
                lat ? lat->stats.mean() : 0.0,
                sink.in_order() ? "ok" : "VIOLATED");
    ok = ok && sink.in_order() && sink.frames_received() == frames;
  }
  const auto total = static_cast<long long>(streams) * frames;
  std::printf(
      "%d stream(s), %lld frames total, %.2f s, %.1f fps aggregate, "
      "%lld engine grants\n",
      streams, static_cast<long long>(total), elapsed_s,
      elapsed_s > 0.0 ? static_cast<double>(total) / elapsed_s : 0.0,
      static_cast<long long>(server.arbiter().grants()));
  return ok ? 0 : 1;
}

int cmd_export_binparam(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: tincy export-binparam <cfg> <weights|-> <dir>\n");
    return 2;
  }
  const auto net = open_network(argv[0]);
  maybe_load_weights(*net, argv[1]);
  offload::export_binparams(*net, argv[2]);
  std::printf("exported %lld stage(s) to %s\n",
              static_cast<long long>(fabric::load_binparams(argv[2]).size()),
              argv[2]);
  return 0;
}

int cmd_ladder() {
  const perf::ZynqPlatform platform;
  for (const auto& step : perf::optimization_ladder(platform))
    std::printf("%-48s %7.2f fps  (%.1fx total)\n", step.name.c_str(),
                step.fps, step.speedup_total);
  return 0;
}

int cmd_kernels() {
  // Reports the packed-GEMM micro-kernel dispatch table on this machine:
  // which variants are runnable, which one kAuto resolves to, and
  // whether a TINCY_GEMM_KERNEL override is steering the choice.
  const char* env = std::getenv("TINCY_GEMM_KERNEL");
  const gemm::Kernel resolved = gemm::resolve_kernel(gemm::Kernel::kAuto);
  std::printf("packed-GEMM micro-kernel variants (gemm/kernels.hpp):\n");
  for (const gemm::Kernel k :
       {gemm::Kernel::kScalar, gemm::Kernel::kLanes, gemm::Kernel::kAvx2}) {
    std::printf("  %-7s %-11s%s\n", gemm::kernel_name(k),
                gemm::kernel_supported(k) ? "supported" : "unavailable",
                k == resolved ? "  <- dispatched by kAuto" : "");
  }
  std::printf("widest supported: %s\n",
              gemm::kernel_name(gemm::widest_supported_kernel()));
  if (env)
    std::printf("TINCY_GEMM_KERNEL=%s (%s)\n", env,
                gemm::parse_kernel_name(env) == gemm::Kernel::kAuto
                    ? "unrecognized -> auto selection"
                    : "honoured by kAuto dispatch");
  else
    std::printf("TINCY_GEMM_KERNEL unset (set to scalar|lanes|avx2 to "
                "override kAuto)\n");
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "tincy — Tincy YOLO reproduction CLI\n"
      "  tincy summary <cfg|zoo:...>\n"
      "  tincy ops <cfg|zoo:...>\n"
      "  tincy detect <cfg|zoo:...> <weights|-> <in.ppm> [thresh] [out.ppm]\n"
      "  tincy demo [frames] [workers]\n"
      "  tincy serve-sim [streams] [frames] [workers]\n"
      "  tincy export-binparam <cfg|zoo:...> <weights|-> <dir>\n"
      "  tincy ladder\n"
      "  tincy kernels\n"
      "global flags: --metrics-json <path>  --metrics-summary  "
      "--trace <path>\n"
      "zoo shorthands: zoo:tiny zoo:tincy zoo:tincy-w1a3 zoo:mlp4 zoo:cnv6\n");
  return 2;
}

/// Emits the collected trace as requested by --trace; runs after the
/// subcommand so every recorded span is included.
int emit_trace(const std::string& trace_path, int rc) {
  if (trace_path.empty()) return rc;
  try {
    const auto events = telemetry::TraceCollector::global().snapshot();
    telemetry::write_chrome_trace(events, trace_path);
    std::fprintf(stderr, "wrote %zu trace events to %s\n", events.size(),
                 trace_path.c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return rc == 0 ? 1 : rc;
  }
  return rc;
}

/// Emits the collected telemetry as requested by the global flags; runs
/// after the subcommand so every recorded span is included.
int emit_metrics(const std::string& json_path, bool print_summary, int rc) {
  if (json_path.empty() && !print_summary) return rc;
  const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
  if (print_summary)
    std::fputs(telemetry::summary_table(snapshot).c_str(), stderr);
  if (!json_path.empty()) {
    try {
      telemetry::write_json(snapshot, json_path);
      std::fprintf(stderr, "wrote metrics to %s\n", json_path.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return rc == 0 ? 1 : rc;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global telemetry flags so subcommands see only their own
  // positional arguments.
  std::string metrics_json;
  std::string trace_json;
  bool metrics_summary = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --metrics-json requires a <path>\n");
        return 2;
      }
      metrics_json = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace requires a <path>\n");
        return 2;
      }
      trace_json = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-summary") == 0) {
      metrics_summary = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const int nargs = static_cast<int>(args.size());
  if (!trace_json.empty())
    telemetry::TraceCollector::global().set_enabled(true);

  if (nargs < 2) return usage();
  const std::string cmd = args[1];
  try {
    int rc = -1;
    if (cmd == "summary" && nargs >= 3) rc = cmd_summary(args[2]);
    else if (cmd == "ops" && nargs >= 3) rc = cmd_ops(args[2]);
    else if (cmd == "detect") rc = cmd_detect(nargs - 2, args.data() + 2);
    else if (cmd == "demo") rc = cmd_demo(nargs - 2, args.data() + 2);
    else if (cmd == "serve-sim")
      rc = cmd_serve_sim(nargs - 2, args.data() + 2);
    else if (cmd == "export-binparam")
      rc = cmd_export_binparam(nargs - 2, args.data() + 2);
    else if (cmd == "ladder") rc = cmd_ladder();
    else if (cmd == "kernels") rc = cmd_kernels();
    if (rc >= 0) {
      rc = emit_trace(trace_json, rc);
      return emit_metrics(metrics_json, metrics_summary, rc);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
