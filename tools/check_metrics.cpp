// Schema checker for `tincy --metrics-json` output (the tier2-metrics
// and tier2-serve CTest labels). Validates that the document parses as
// telemetry schema v1 and contains the observability surface the demo
// pipeline promises: per-layer latency histograms, per-stage busy/wait
// metrics, and — with --frames N — stage span counts equal to the frames
// processed. With --serve-frames N it instead validates the serving
// surface of `tincy serve-sim`: serve.session.<id>.frames counters
// summing to N, a matching latency histogram per session, and the
// serve.arbiter.* metrics.
//
// With --slo it gates a soak run (`multistream --soak --metrics-json`):
// every session latency histogram must carry a p99 estimate within the
// bound (default 150 ms, override with --p99-ms X) — both the
// cumulative histogram and, when it holds samples, the sliding-window
// one (`.latency_ms.window`, the live tail) — and the quarantine
// surface must be consistent — a session is quarantined iff it recorded
// faults. The offending session's telemetry summary is printed on a
// violation.
//
// With --batching it validates the gang-scheduling surface of a batched
// run (`multistream --batched --metrics-json`): the
// serve.arbiter.batch_size histogram and the fabric.dma_* counters must
// be present and internally consistent — every frame coalesced beyond
// the first of its pass is one amortized weight stream (amortized ==
// histogram sum − histogram count), and the saved cycles are
// (batch_size − 1) × weight_dma per coalesced pass, so saved is a
// positive multiple of amortized exactly when any batching happened.
//
// With --trace <file> it additionally validates a Chrome trace written
// by `tincy --trace` (or the flight recorder): complete spans on one
// track must nest, async frame/queue begin/end events must pair up, the
// layer spans attributed to a frame must fit inside that frame's
// submit→delivery span, and the gang instants must be internally
// consistent (one leader per grant, leader batch == seats) and agree
// with the serve.arbiter.* metrics in the metrics document.
//
// Usage: tincy_check_metrics <metrics.json> [--trace <trace.json>]
//          [--frames N | --serve-frames N | --slo [--p99-ms X] |
//           --batching] [--gemm]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/errors.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"

using namespace tincy;

namespace {

int fail(const std::string& what) {
  std::fprintf(stderr, "metrics check FAILED: %s\n", what.c_str());
  return 1;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: tincy_check_metrics <metrics.json> "
                 "[--trace <trace.json>] [--frames N | --serve-frames N | "
                 "--slo [--p99-ms X] | --batching] [--gemm]\n");
    return 2;
  }
  int64_t expect_frames = -1;
  int64_t expect_serve_frames = -1;
  bool expect_gemm = false;
  bool check_slo = false;
  bool check_batching = false;
  double slo_p99_ms = 150.0;
  std::string trace_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc)
      expect_frames = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--serve-frames") == 0 && i + 1 < argc)
      expect_serve_frames = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--gemm") == 0) expect_gemm = true;
    if (std::strcmp(argv[i], "--slo") == 0) check_slo = true;
    if (std::strcmp(argv[i], "--batching") == 0) check_batching = true;
    if (std::strcmp(argv[i], "--p99-ms") == 0 && i + 1 < argc)
      slo_p99_ms = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[i + 1];
  }

  std::ifstream f(argv[1]);
  if (!f.good()) return fail(std::string("cannot open ") + argv[1]);
  std::ostringstream buf;
  buf << f.rdbuf();

  telemetry::Snapshot snapshot;
  try {
    snapshot = telemetry::parse_snapshot(buf.str());
  } catch (const Error& e) {
    return fail(e.what());
  }

  // Internal consistency of every histogram.
  for (const auto& h : snapshot.histograms) {
    const auto& s = h.stats;
    if (s.count < 0) return fail(h.name + ": negative count");
    if (s.count > 0) {
      if (s.min > s.max) return fail(h.name + ": min > max");
      if (s.p50 < s.min || s.p50 > s.max)
        return fail(h.name + ": p50 outside [min, max]");
      if (s.p95 < s.p50 - 1e-9) return fail(h.name + ": p95 < p50");
      if (s.p95 > s.max + 1e-9) return fail(h.name + ": p95 > max");
      // p99 == 0 means a pre-p99 document; ordering applies when present.
      if (s.p99 > 0.0 && s.p99 < s.p95 - 1e-9)
        return fail(h.name + ": p99 < p95");
      if (s.p99 > s.max + 1e-9) return fail(h.name + ": p99 > max");
      if (s.sum + 1e-9 < s.max) return fail(h.name + ": sum < max");
    }
  }

  // Trace mode: structural validation of a Chrome trace-event document,
  // cross-checked against the metrics snapshot from the same run.
  if (!trace_path.empty()) {
    std::ifstream tf(trace_path);
    if (!tf.good()) return fail("cannot open " + trace_path);
    std::ostringstream tbuf;
    tbuf << tf.rdbuf();
    std::vector<telemetry::TraceEvent> events;
    try {
      events = telemetry::parse_chrome_trace(tbuf.str());
    } catch (const Error& e) {
      return fail(e.what());
    }
    if (events.empty()) return fail("trace has no events");
    std::stable_sort(events.begin(), events.end(),
                     [](const telemetry::TraceEvent& a,
                        const telemetry::TraceEvent& b) {
                       return a.ts_ms != b.ts_ms ? a.ts_ms < b.ts_ms
                                                 : a.dur_ms > b.dur_ms;
                     });
    // Export rounds timestamps to 1e-6 ms; containment below is checked
    // against a slightly coarser epsilon.
    constexpr double kEps = 1e-3;

    // Complete spans on one track come from one thread, so they must
    // obey stack discipline: a span overlapping an open span must end
    // within it.
    std::map<int32_t, std::vector<double>> open_ends;
    int64_t x_spans = 0;
    for (const auto& e : events) {
      if (e.phase != telemetry::TracePhase::kComplete) continue;
      ++x_spans;
      if (e.dur_ms < -kEps)
        return fail(std::string(e.name_view()) + ": negative span duration");
      auto& stack = open_ends[e.tid];
      while (!stack.empty() && stack.back() <= e.ts_ms + kEps)
        stack.pop_back();
      const double end = e.ts_ms + e.dur_ms;
      if (!stack.empty() && end > stack.back() + kEps)
        return fail(std::string(e.name_view()) + " @" +
                    std::to_string(e.ts_ms) +
                    " ms: overlaps the enclosing span without nesting");
      stack.push_back(end);
    }

    // Async begin/end events pair up per (name, session, frame); the
    // layer spans each frame will be checked against are summed on the
    // side.
    struct AsyncSpan {
      int begins = 0, ends = 0;
      double begin = 0.0, end = 0.0;
      std::string outcome;
    };
    std::map<std::tuple<std::string, int64_t, int64_t>, AsyncSpan> asyncs;
    std::map<std::pair<int64_t, int64_t>, double> frame_layer_ms;
    for (const auto& e : events) {
      if (e.phase == telemetry::TracePhase::kComplete) {
        const auto name = e.name_view();
        if (name.rfind("net.layer.", 0) == 0 ||
            name.rfind("fabric.layer", 0) == 0)
          frame_layer_ms[{e.session, e.frame}] += e.dur_ms;
        continue;
      }
      if (e.phase == telemetry::TracePhase::kInstant) continue;
      auto& a = asyncs[{std::string(e.name_view()), e.session, e.frame}];
      if (e.phase == telemetry::TracePhase::kAsyncBegin) {
        ++a.begins;
        a.begin = e.ts_ms;
      } else {
        ++a.ends;
        a.end = e.ts_ms;
        a.outcome = telemetry::trace_arg_str(e, "outcome");
      }
    }
    int64_t frames_traced = 0, frames_delivered = 0;
    for (const auto& [key, a] : asyncs) {
      const auto& [name, session, frame] = key;
      const std::string where = name + " s" + std::to_string(session) +
                                ".f" + std::to_string(frame);
      if (a.begins != 1 || a.ends != 1)
        return fail(where + ": " + std::to_string(a.begins) + " begin(s), " +
                    std::to_string(a.ends) + " end(s)");
      if (a.end + kEps < a.begin) return fail(where + ": ends before begin");
      if (name != "frame") continue;
      ++frames_traced;
      if (a.outcome.empty())
        return fail(where + ": frame end carries no outcome");
      if (a.outcome == "delivered") ++frames_delivered;
      // The layer work attributed to a frame must fit inside its
      // submit -> delivery window (gang ride-alongs simply have none).
      const auto it = frame_layer_ms.find({session, frame});
      if (it != frame_layer_ms.end() &&
          it->second > (a.end - a.begin) + 0.01 + kEps)
        return fail(where + ": layer spans sum to " +
                    std::to_string(it->second) + " ms, frame span is " +
                    std::to_string(a.end - a.begin) + " ms");
    }
    if (frames_traced == 0) return fail("trace has no frame async spans");

    // Gang instants: every grant has exactly one leader whose batch size
    // counts all seats, and the grant population agrees with the
    // serve.arbiter.* metrics of the same run.
    struct Gang {
      int leaders = 0, members = 0;
      int64_t batch = -1;
    };
    std::map<int64_t, Gang> gangs;
    for (const auto& e : events) {
      if (e.phase != telemetry::TracePhase::kInstant ||
          e.name_view() != "gang")
        continue;
      const int64_t grant = telemetry::trace_arg_int(e, "grant");
      if (grant < 0) return fail("gang instant without a grant id");
      auto& g = gangs[grant];
      if (telemetry::trace_arg_str(e, "role") == "leader") {
        ++g.leaders;
        g.batch = telemetry::trace_arg_int(e, "batch");
      } else {
        ++g.members;
      }
    }
    int64_t batch_sum = 0;
    for (const auto& [grant, g] : gangs) {
      const std::string where = "gang grant " + std::to_string(grant);
      if (g.leaders != 1)
        return fail(where + ": " + std::to_string(g.leaders) + " leader(s)");
      if (g.batch != 1 + g.members)
        return fail(where + ": leader batch " + std::to_string(g.batch) +
                    " != " + std::to_string(1 + g.members) + " seats");
      batch_sum += g.batch;
    }
    const auto num_grants = static_cast<int64_t>(gangs.size());
    if (snapshot.find_counter("serve.arbiter.grants")) {
      const int64_t grants = snapshot.counter_value("serve.arbiter.grants");
      if (grants != num_grants)
        return fail("trace has " + std::to_string(num_grants) +
                    " gang grants, serve.arbiter.grants is " +
                    std::to_string(grants));
      const auto* bs = snapshot.find_histogram("serve.arbiter.batch_size");
      if (bs && static_cast<int64_t>(bs->stats.sum + 0.5) != batch_sum)
        return fail("trace gang seats sum to " + std::to_string(batch_sum) +
                    ", serve.arbiter.batch_size sums to " +
                    std::to_string(
                        static_cast<int64_t>(bs->stats.sum + 0.5)));
    }

    std::printf("trace OK: %zu events, %lld complete spans, %lld frames "
                "(%lld delivered), %lld gang grants\n",
                events.size(), static_cast<long long>(x_spans),
                static_cast<long long>(frames_traced),
                static_cast<long long>(frames_delivered),
                static_cast<long long>(num_grants));
    // --trace composes with the other modes; alone, it is the check.
    if (expect_frames < 0 && expect_serve_frames < 0 && !check_slo &&
        !check_batching && !expect_gemm)
      return 0;
  }

  // Batching mode: validate the gang-scheduling telemetry surface.
  if (check_batching) {
    const auto* bs = snapshot.find_histogram("serve.arbiter.batch_size");
    if (!bs) return fail("serve.arbiter.batch_size missing");
    const auto& s = bs->stats;
    if (s.count < 1) return fail("serve.arbiter.batch_size: no grants");
    if (s.min < 1.0) return fail("serve.arbiter.batch_size: min < 1");
    const int64_t passes = s.count;
    const int64_t frames = static_cast<int64_t>(s.sum + 0.5);
    if (frames < passes)
      return fail("serve.arbiter.batch_size: sum " + std::to_string(frames) +
                  " < count " + std::to_string(passes));
    const int64_t grants = snapshot.counter_value("serve.arbiter.grants");
    if (grants != passes)
      return fail("serve.arbiter.grants " + std::to_string(grants) +
                  " != batch_size histogram count " + std::to_string(passes));
    if (!snapshot.find_counter("fabric.dma_amortized"))
      return fail("fabric.dma_amortized missing");
    const int64_t amortized = snapshot.counter_value("fabric.dma_amortized");
    // Every frame beyond the first of its pass is one amortized weight
    // stream: amortized == sum(batch − 1) == histogram sum − count.
    if (amortized != frames - passes)
      return fail("fabric.dma_amortized " + std::to_string(amortized) +
                  " != coalesced frames " + std::to_string(frames - passes));
    if (!snapshot.find_counter("fabric.dma_saved_cycles"))
      return fail("fabric.dma_saved_cycles missing");
    const int64_t saved = snapshot.counter_value("fabric.dma_saved_cycles");
    // Saved cycles are (batch − 1) × weight_dma per coalesced pass, so
    // they vanish exactly when nothing was amortized and otherwise carry
    // at least one modeled DMA cycle per amortized stream.
    if ((saved == 0) != (amortized == 0))
      return fail("fabric.dma_saved_cycles " + std::to_string(saved) +
                  " inconsistent with fabric.dma_amortized " +
                  std::to_string(amortized));
    if (saved < amortized)
      return fail("fabric.dma_saved_cycles " + std::to_string(saved) +
                  " < fabric.dma_amortized " + std::to_string(amortized));
    const int64_t bpasses = snapshot.counter_value("fabric.batched_passes");
    const int64_t bframes = snapshot.counter_value("fabric.batched_frames");
    if (bframes - bpasses != amortized)
      return fail("fabric.batched_frames - fabric.batched_passes " +
                  std::to_string(bframes - bpasses) +
                  " != fabric.dma_amortized " + std::to_string(amortized));
    std::printf("metrics OK: %lld engine grants over %lld frames, %lld "
                "weight streams amortized (%lld modeled cycles saved)\n",
                static_cast<long long>(passes),
                static_cast<long long>(frames),
                static_cast<long long>(amortized),
                static_cast<long long>(saved));
    return 0;
  }

  // SLO mode: gate a soak run's tail latency and quarantine accounting.
  if (check_slo) {
    int64_t sessions = 0, gated = 0, quarantined = 0;
    double worst_p99 = 0.0;
    for (const auto& c : snapshot.counters) {
      const bool is_frames = c.name.rfind("serve.session.", 0) == 0 &&
                             ends_with(c.name, ".frames");
      if (!is_frames) continue;
      ++sessions;
      const std::string base = c.name.substr(0, c.name.size() - 7);
      const auto* lat = snapshot.find_histogram(base + ".latency_ms");
      if (!lat) return fail(base + ".latency_ms missing");
      const auto& s = lat->stats;
      if (s.count > 0) {
        ++gated;
        if (s.p99 <= 0.0)
          return fail(base + ".latency_ms: no p99 estimate in document");
        worst_p99 = s.p99 > worst_p99 ? s.p99 : worst_p99;
        if (s.p99 > slo_p99_ms) {
          std::fprintf(stderr,
                       "  %s: count=%lld mean=%.3f p50=%.3f p95=%.3f "
                       "p99=%.3f max=%.3f ms\n",
                       base.c_str(), static_cast<long long>(s.count),
                       s.mean(), s.p50, s.p95, s.p99, s.max);
          return fail(base + ".latency_ms: p99 " + std::to_string(s.p99) +
                      " ms exceeds SLO " + std::to_string(slo_p99_ms) +
                      " ms");
        }
      }
      // The sliding-window histogram gates *live* tail latency: a soak
      // whose cumulative p99 is healthy can still be violating the SLO
      // right now. Gated only when the window saw samples (it decays to
      // empty on an idle session).
      const auto* win = snapshot.find_histogram(base + ".latency_ms.window");
      if (!win) return fail(base + ".latency_ms.window missing");
      if (win->stats.count > 0) {
        if (win->stats.p99 > slo_p99_ms)
          return fail(base + ".latency_ms.window: live p99 " +
                      std::to_string(win->stats.p99) + " ms exceeds SLO " +
                      std::to_string(slo_p99_ms) + " ms");
        worst_p99 = win->stats.p99 > worst_p99 ? win->stats.p99 : worst_p99;
      }
      // A session is quarantined iff it recorded faults; shed/dropped
      // counters must exist so the accounting surface is complete.
      const auto* q = snapshot.find_gauge(base + ".quarantined");
      if (!q) return fail(base + ".quarantined missing");
      const int64_t faults = snapshot.counter_value(base + ".faults");
      if ((q->value != 0.0) != (faults > 0))
        return fail(base + ": quarantined gauge " +
                    std::to_string(q->value) + " inconsistent with faults " +
                    std::to_string(faults));
      if (q->value != 0.0) ++quarantined;
      if (!snapshot.find_counter(base + ".shed"))
        return fail(base + ".shed missing");
      if (!snapshot.find_counter(base + ".dropped"))
        return fail(base + ".dropped missing");
    }
    if (sessions == 0) return fail("no serve.session.*.frames counters");
    std::printf("metrics OK: %lld session(s), %lld with latency gated, "
                "worst p99 %.2f ms <= SLO %.1f ms, %lld quarantined\n",
                static_cast<long long>(sessions),
                static_cast<long long>(gated), worst_p99, slo_p99_ms,
                static_cast<long long>(quarantined));
    return 0;
  }

  // Serving-surface mode: validate the serve.* namespace and stop.
  if (expect_serve_frames >= 0) {
    int64_t sessions = 0, frames_sum = 0;
    for (const auto& c : snapshot.counters) {
      const bool is_frames = c.name.rfind("serve.session.", 0) == 0 &&
                             ends_with(c.name, ".frames");
      if (!is_frames) continue;
      ++sessions;
      frames_sum += c.value;
      // Each session's latency histogram must span exactly its frames.
      const std::string base = c.name.substr(0, c.name.size() - 7);
      const auto* lat = snapshot.find_histogram(base + ".latency_ms");
      if (!lat) return fail(base + ".latency_ms missing");
      if (lat->stats.count != c.value)
        return fail(base + ".latency_ms: " +
                    std::to_string(lat->stats.count) + " spans, counter " +
                    std::to_string(c.value));
      if (!snapshot.find_counter(base + ".rejected"))
        return fail(base + ".rejected missing");
      // Little's-law mean admission-queue depth (gauge, may be 0).
      if (!snapshot.find_gauge(base + ".queue_depth"))
        return fail(base + ".queue_depth missing");
    }
    if (sessions == 0) return fail("no serve.session.*.frames counters");
    if (frames_sum != expect_serve_frames)
      return fail("serve.session.*.frames sum to " +
                  std::to_string(frames_sum) + ", expected " +
                  std::to_string(expect_serve_frames));
    if (!snapshot.find_counter("serve.arbiter.grants"))
      return fail("serve.arbiter.grants missing");
    if (!snapshot.find_gauge("serve.arbiter.queue_depth"))
      return fail("serve.arbiter.queue_depth missing");
    std::printf("metrics OK: %lld serving session(s), %lld frames\n",
                static_cast<long long>(sessions),
                static_cast<long long>(frames_sum));
    return 0;
  }

  // GEMM-engine surface: the packed lowp path must have reported its
  // pack/compute split and parallelism (see docs/observability.md).
  if (expect_gemm) {
    const auto* pack = snapshot.find_histogram("gemm.pack_ms");
    if (!pack) return fail("gemm.pack_ms missing");
    if (pack->stats.count < 1) return fail("gemm.pack_ms: no pack spans");
    const auto* packed = snapshot.find_histogram("gemm.packed_ms");
    if (!packed) return fail("gemm.packed_ms missing");
    if (packed->stats.count < 1) return fail("gemm.packed_ms: no spans");
    if (!snapshot.find_gauge("gemm.threads"))
      return fail("gemm.threads missing");
    if (snapshot.gauge_value("gemm.threads") < 1.0)
      return fail("gemm.threads < 1");
  }

  // Per-layer latency histograms from the disintegrated forward pass.
  int64_t layers = 0;
  for (const auto* h : snapshot.histograms_with_prefix("net.layer.")) {
    if (h->stats.count <= 0) return fail(h->name + ": empty layer histogram");
    ++layers;
  }
  if (layers == 0) return fail("no net.layer.* histograms");

  // Per-stage pipeline busy/wait spans.
  int64_t busy = 0, wait = 0;
  for (const auto* h : snapshot.histograms_with_prefix("pipeline.stage.")) {
    if (ends_with(h->name, ".busy_ms")) ++busy;
    if (ends_with(h->name, ".wait_ms")) ++wait;
    if (expect_frames >= 0 && h->stats.count != expect_frames)
      return fail(h->name + ": " + std::to_string(h->stats.count) +
                  " spans, expected " + std::to_string(expect_frames));
  }
  if (busy == 0) return fail("no pipeline.stage.*.busy_ms histograms");
  if (wait == 0) return fail("no pipeline.stage.*.wait_ms histograms");
  if (busy != wait)
    return fail("busy_ms / wait_ms stage counts differ");

  // Stage job counters must equal the frames processed.
  int64_t job_counters = 0;
  for (const auto& c : snapshot.counters) {
    const bool is_jobs =
        c.name.rfind("pipeline.stage.", 0) == 0 && ends_with(c.name, ".jobs");
    if (!is_jobs) continue;
    ++job_counters;
    if (expect_frames >= 0 && c.value != expect_frames)
      return fail(c.name + ": " + std::to_string(c.value) +
                  " jobs, expected " + std::to_string(expect_frames));
  }
  if (job_counters != busy)
    return fail("jobs counters do not match stage histograms");
  if (expect_frames >= 0 &&
      snapshot.counter_value("pipeline.frames") != expect_frames)
    return fail("pipeline.frames != expected frame count");

  std::printf(
      "metrics OK: %lld layer histogram(s), %lld pipeline stage(s)%s\n",
      static_cast<long long>(layers), static_cast<long long>(busy),
      expect_frames >= 0 ? (", " + std::to_string(expect_frames) +
                            " spans per stage")
                               .c_str()
                         : "");
  return 0;
}
