// Demonstrates the generic offload mechanism (Figs. 3/4) with a *custom*
// backend: exactly what the paper did when it wrapped the NEON-optimized
// first layer as an offload library. Registers "blur.so" — a backend that
// computes a 3x3 box blur — then runs a network whose cfg names it.

#include <cstdio>

#include "data/synthvoc.hpp"
#include "nn/builder.hpp"
#include "nn/offload_layer.hpp"
#include "offload/registration.hpp"

using namespace tincy;

namespace {

/// A user-defined offload backend: output(c,y,x) = mean of the 3x3
/// neighborhood. Implements the Fig. 3 hook life cycle.
class BoxBlurBackend final : public nn::OffloadBackend {
 public:
  void init(const nn::OffloadConfig& cfg, Shape input_shape) override {
    TINCY_CHECK_MSG(cfg.output_shape == input_shape,
                    "blur.so preserves the feature-map geometry");
    shape_ = input_shape;
    std::printf("[blur.so] init: %s\n", input_shape.to_string().c_str());
  }
  void load_weights() override {
    std::printf("[blur.so] load_weights: parameter-free\n");
  }
  void forward(const Tensor& in, Tensor& out) override {
    const int64_t C = shape_.channels(), H = shape_.height(),
                  W = shape_.width();
    for (int64_t c = 0; c < C; ++c)
      for (int64_t y = 0; y < H; ++y)
        for (int64_t x = 0; x < W; ++x) {
          float sum = 0.0f;
          int taps = 0;
          for (int64_t dy = -1; dy <= 1; ++dy)
            for (int64_t dx = -1; dx <= 1; ++dx) {
              const int64_t yy = y + dy, xx = x + dx;
              if (yy < 0 || yy >= H || xx < 0 || xx >= W) continue;
              sum += in.at(c, yy, xx);
              ++taps;
            }
          out.at(c, y, x) = sum / static_cast<float>(taps);
        }
  }
  void destroy() override { std::printf("[blur.so] destroy\n"); }

 private:
  Shape shape_;
};

}  // namespace

int main() {
  // Register the custom "shared library" next to the standard ones.
  offload::register_standard_backends();
  nn::OffloadRegistry::instance().register_library(
      "blur.so", [] { return std::make_unique<BoxBlurBackend>(); });

  const auto net = nn::build_network_from_string(
      "[net]\nwidth=32\nheight=32\nchannels=3\n"
      "[offload]\n"
      "library=blur.so\n"          // Fig. 4: HW interface library
      "network=builtin\n"
      "weights=none\n"
      "height=32\nwidth=32\nchannel=3\n");
  dynamic_cast<nn::OffloadLayer&>(net->layer(0)).backend().load_weights();

  const data::SynthVoc dataset({.image_size = 32}, 3);
  const Tensor image = dataset.sample(0).image;
  const Tensor& blurred = net->forward(image);

  // Blurring reduces total variation; show it.
  const auto tv = [](const Tensor& t) {
    double v = 0.0;
    const int64_t W = t.shape().width();
    for (int64_t i = 1; i < t.numel(); ++i)
      if (i % W != 0) v += std::abs(t[i] - t[i - 1]);
    return v;
  };
  std::printf("total variation: input %.1f -> blurred %.1f\n", tv(image),
              tv(blurred));
  std::printf("offload mechanism: any user backend slots into the cfg.\n");
  return 0;
}
