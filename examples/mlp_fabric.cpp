// The MLP-4 workload of Table II, end to end at W1A1: train a fully
// binarized multilayer perceptron on SynthDigits (the MNIST stand-in),
// deploy its hidden layers onto the QNN accelerator — fully connected
// layers become 1x1 convolutions over a 1x1 feature map — and verify the
// fabric executes bit-exactly against the CPU reference while keeping the
// trained classification accuracy.
//
// Usage: mlp_fabric [steps]   (default 4000; ~80 % accuracy at 6000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/synthdigits.hpp"
#include "nn/builder.hpp"
#include "nn/conv_layer.hpp"
#include "offload/import.hpp"
#include "train/loss.hpp"
#include "train/model.hpp"
#include "train/optimizer.hpp"

using namespace tincy;

namespace {

constexpr int64_t kInputs = 28 * 28;
constexpr int64_t kHidden = 128;  // the paper's MLP-4 uses 1024; scaled for CPU
constexpr int kHiddenLayers = 3;

/// ±1-binarized digit image as a (784, 1, 1) tensor (FINN binarizes the
/// MNIST input for the fully binarized MLP).
Tensor binarize_input(const Tensor& image) {
  Tensor flat(Shape{kInputs, 1, 1});
  for (int64_t i = 0; i < kInputs; ++i)
    flat[i] = image[i] > 0.5f ? 1.0f : -1.0f;
  return flat;
}

train::Model make_mlp(Rng& rng) {
  train::Model model(Shape{kInputs, 1, 1});
  Shape shape = model.input_shape();
  for (int l = 0; l < kHiddenLayers; ++l) {
    train::TrainConvConfig cfg;
    cfg.filters = kHidden;
    cfg.size = 1;
    cfg.activation = nn::Activation::kLinear;
    cfg.binary_weights = true;
    cfg.act_bits = 1;
    cfg.bipolar = true;
    cfg.out_scale = 1.0f;
    auto layer = std::make_unique<train::TrainConvLayer>(cfg, shape, rng);
    shape = layer->output_shape();
    model.add(std::move(layer));
  }
  train::TrainConvConfig out;
  out.filters = 10;
  out.size = 1;
  out.activation = nn::Activation::kLinear;
  model.add(std::make_unique<train::TrainConvLayer>(out, shape, rng));
  return model;
}

/// Inference twin as 1x1-conv cfg text (hidden layers quantized W1A1).
std::string mlp_cfg() {
  std::string cfg = "[net]\nwidth=1\nheight=1\nchannels=" +
                    std::to_string(kInputs) + "\n";
  for (int l = 0; l < kHiddenLayers; ++l)
    cfg += "[convolutional]\nbatch_normalize=1\nfilters=" +
           std::to_string(kHidden) +
           "\nsize=1\nstride=1\npad=0\nactivation=linear\nbinary=1\n"
           "abits=1\nbipolar=1\nkernel=quant_reference\n"
           "in_scale=1\nout_scale=1\n";
  cfg += "[convolutional]\nfilters=10\nsize=1\nstride=1\npad=0\n"
         "activation=linear\n";
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t steps = argc > 1 ? std::atoll(argv[1]) : 4000;
  const data::SynthDigits digits(2024);
  Rng rng(1);
  train::Model model = make_mlp(rng);

  // --- Train (softmax cross-entropy, hard-tanh STE, clamped masters) ---
  std::printf("training W1A1 MLP (%lldx%lld hidden) for %lld steps...\n",
              static_cast<long long>(kHiddenLayers),
              static_cast<long long>(kHidden), static_cast<long long>(steps));
  train::Sgd sgd({.learning_rate = 0.002f, .momentum = 0.9f,
                  .weight_decay = 0.0f, .grad_clip = 1.0f});
  int64_t idx = 0;
  for (int64_t step = 0; step < steps; ++step) {
    model.zero_grad();
    double loss = 0.0;
    constexpr int kBatch = 4;
    for (int b = 0; b < kBatch; ++b) {
      const auto s = digits.sample(idx++);
      const Tensor& logits = model.forward(binarize_input(s.image), true);
      auto res = train::softmax_cross_entropy(logits, s.label);
      loss += res.loss;
      for (int64_t i = 0; i < res.grad.numel(); ++i)
        res.grad[i] /= static_cast<float>(kBatch);
      model.backward(res.grad);
    }
    sgd.step(model.params());
    if (step % 250 == 0)
      std::printf("  step %5lld  loss %.3f\n", static_cast<long long>(step),
                  loss / kBatch);
  }

  // --- Deploy: export into the inference twin, offload hidden layers ---
  auto net = nn::build_network_from_string(mlp_cfg());
  model.export_to(*net);

  // Hidden sublayers as a standalone subnet feeding the accelerator.
  auto hidden = nn::build_network_from_string([&] {
    std::string cfg = "[net]\nwidth=1\nheight=1\nchannels=" +
                      std::to_string(kInputs) + "\n";
    for (int l = 0; l < kHiddenLayers; ++l)
      cfg += "[convolutional]\nbatch_normalize=1\nfilters=" +
             std::to_string(kHidden) +
             "\nsize=1\nstride=1\npad=0\nactivation=linear\nbinary=1\n"
             "abits=1\nbipolar=1\nkernel=quant_reference\n"
             "in_scale=1\nout_scale=1\n";
    return cfg;
  }());
  for (int l = 0; l < kHiddenLayers; ++l) {
    auto& dst = dynamic_cast<nn::ConvLayer&>(hidden->layer(l));
    const auto& src = dynamic_cast<const nn::ConvLayer&>(net->layer(l));
    dst.weights() = src.weights();
    dst.biases() = src.biases();
    dst.bn_scales() = src.bn_scales();
    dst.bn_mean() = src.bn_mean();
    dst.bn_var() = src.bn_var();
    dst.invalidate_cached_quantization();
  }
  const fabric::QnnAccelerator acc = offload::import_accelerator(*hidden);

  // --- Evaluate: CPU reference vs fabric, plus accuracy ---
  const int64_t eval_n = 200;
  const int64_t eval_offset = 1'000'000;
  int correct_cpu = 0, correct_fabric = 0;
  int64_t fabric_mismatches = 0;
  nn::ConvLayer& out_layer =
      dynamic_cast<nn::ConvLayer&>(net->layer(kHiddenLayers));
  for (int64_t i = 0; i < eval_n; ++i) {
    const auto s = digits.sample(eval_offset + i);
    const Tensor input = binarize_input(s.image);

    const Tensor& cpu_logits = net->forward(input);
    const Tensor& cpu_hidden = net->layer_output(kHiddenLayers - 1);

    Tensor fab_hidden = acc.forward(input);
    for (int64_t j = 0; j < fab_hidden.numel(); ++j)
      fabric_mismatches += fab_hidden[j] != cpu_hidden[j];
    Tensor fab_logits(out_layer.output_shape());
    out_layer.forward(fab_hidden, fab_logits);

    const auto argmax = [](const Tensor& t) {
      int best = 0;
      for (int64_t j = 1; j < t.numel(); ++j)
        if (t[j] > t[best]) best = static_cast<int>(j);
      return best;
    };
    correct_cpu += argmax(cpu_logits) == s.label;
    correct_fabric += argmax(fab_logits) == s.label;
  }
  std::printf("\nclassification accuracy over %lld digits:\n",
              static_cast<long long>(eval_n));
  std::printf("  CPU QNN reference : %.1f %%\n", 100.0 * correct_cpu / eval_n);
  std::printf("  fabric-offloaded  : %.1f %%\n",
              100.0 * correct_fabric / eval_n);
  std::printf("fabric vs CPU hidden activations: %lld mismatches "
              "(bit-exact expected)\n",
              static_cast<long long>(fabric_mismatches));
  std::printf("modeled PL time per digit: %.3f ms\n", acc.total_ms());
  return fabric_mismatches == 0 ? 0 : 1;
}
