// The paper's end product, reproduced: live object detection on a video
// stream through the pipelined demo mode (Fig. 5). A synthetic camera
// plays the video source, an order-checking sink plays the X11 output.
// Prints the host-relative throughput of the threaded pipeline and the
// modeled throughput on the 4-core ZU3EG (the paper's 16 fps).
//
// Usage: live_video_demo [frames] [workers]

#include <cstdio>
#include <cstdlib>

#include "core/rng.hpp"
#include "nn/zoo.hpp"
#include "perf/ladder.hpp"
#include "pipeline/demo.hpp"
#include "video/draw.hpp"
#include "video/ppm.hpp"

using namespace tincy;

int main(int argc, char** argv) {
  const int64_t frames = argc > 1 ? std::atoll(argv[1]) : 64;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  auto net = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      nn::zoo::TinyVariant::kTincy, nn::zoo::QuantMode::kFloat, 64,
      nn::zoo::CpuProfile::kFused));
  Rng rng(3);
  nn::zoo::randomize(*net, rng);

  video::SyntheticCamera camera(
      {.width = 128, .height = 96, .num_objects = 2, .seed = 11});
  video::OrderCheckingSink sink;

  pipeline::DemoConfig cfg;
  cfg.num_workers = workers;
  std::printf("running %lld frames through the demo pipeline (%d workers)...\n",
              static_cast<long long>(frames), workers);
  const auto result = pipeline::run_demo(camera, *net, sink, frames, cfg);

  std::printf("done: %.1f fps on this host, frame order %s\n", result.fps,
              sink.in_order() ? "preserved" : "VIOLATED");

  // Save one annotated frame so the output is inspectable.
  video::Frame frame = camera.read_frame();
  video::write_ppm("live_demo_frame.ppm", frame.image);
  std::printf("wrote live_demo_frame.ppm (%lldx%lld)\n",
              static_cast<long long>(frame.image.shape().width()),
              static_cast<long long>(frame.image.shape().height()));

  // The modeled embedded platform.
  const perf::ZynqPlatform platform;
  const auto ladder = perf::optimization_ladder(platform);
  std::printf("modeled ZU3EG (Tincy YOLO, all optimizations): %.1f fps "
              "(paper: 16 fps)\n",
              ladder.back().fps);
  return sink.in_order() ? 0 : 1;
}
