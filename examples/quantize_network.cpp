// Float -> W1A3 conversion walk-through: builds the float and quantized
// Tincy YOLO twins with identical parameters, compares their outputs layer
// by layer, and exports the quantized hidden layers as a fabric binparam
// directory — the post-training half of the paper's quantization story
// (the accuracy-recovering retraining half lives in train_synthvoc).

#include <cstdio>
#include <filesystem>

#include "core/rng.hpp"
#include "data/synthvoc.hpp"
#include "nn/builder.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/zoo.hpp"
#include "offload/import.hpp"

using namespace tincy;
using nn::zoo::CpuProfile;
using nn::zoo::QuantMode;
using nn::zoo::TinyVariant;

namespace {

double relative_l1(const Tensor& a, const Tensor& b) {
  double err = 0.0, mag = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    err += std::abs(a[i] - b[i]);
    mag += std::abs(a[i]);
  }
  return mag > 0.0 ? err / mag : 0.0;
}

}  // namespace

int main() {
  const int input_size = 64;
  const auto float_cfg = nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kFloat, input_size, CpuProfile::kFused);
  const auto quant_cfg = nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kW1A3, input_size, CpuProfile::kFused);

  auto float_net = nn::zoo::build(float_cfg);
  auto quant_net = nn::zoo::build(quant_cfg);
  // Identical parameters in both twins.
  Rng rng(9);
  nn::zoo::randomize(*float_net, rng);
  Rng rng2(9);
  nn::zoo::randomize(*quant_net, rng2);

  const data::SynthVoc dataset({.image_size = input_size}, 5);
  const Tensor image = dataset.sample(0).image;

  float_net->forward(image);
  quant_net->forward(image);

  std::printf("layer-by-layer float vs W1A3 relative L1 deviation:\n");
  for (int64_t i = 0; i < float_net->num_layers(); ++i) {
    const auto& fo = float_net->layer_output(i);
    const auto& qo = quant_net->layer_output(i);
    const auto* conv = dynamic_cast<const nn::ConvLayer*>(&quant_net->layer(i));
    std::printf("  L%-2lld %-14s %-6s  %.3f\n", static_cast<long long>(i),
                quant_net->layer(i).type_name().c_str(),
                conv ? conv->precision().name().c_str() : "-",
                relative_l1(fo, qo));
  }
  std::printf(
      "\nWithout retraining the deviation snowballs through the hidden\n"
      "layers — exactly why the paper retrains after quantization\n"
      "(train_synthvoc demonstrates the recovery).\n\n");

  // Deploy: export the quantized hidden layers for the fabric.
  // (Build them as a standalone subnetwork so shapes chain from layer 1.)
  auto quant_hidden = nn::build_network_from_string([&] {
    // Reuse the zoo cfg but strip to the hidden portion: easiest is to
    // emit a dedicated subnet cfg at the first hidden layer's geometry.
    const Shape in = quant_net->layer_input_shape(1);
    std::string cfg = "[net]\nwidth=" + std::to_string(in.width()) +
                      "\nheight=" + std::to_string(in.height()) +
                      "\nchannels=" + std::to_string(in.channels()) + "\n";
    // Hidden section of the Tincy topology (layers 1..N-3).
    for (int64_t i = 1; i + 2 < quant_net->num_layers(); ++i) {
      if (const auto* conv =
              dynamic_cast<const nn::ConvLayer*>(&quant_net->layer(i))) {
        cfg += "[convolutional]\nbatch_normalize=1\nfilters=" +
               std::to_string(conv->config().filters) +
               "\nsize=3\nstride=1\npad=1\nactivation=relu\nbinary=1\n"
               "abits=3\nkernel=quant_reference\n";
      } else if (const auto* pool = dynamic_cast<const nn::MaxPoolLayer*>(
                     &quant_net->layer(i))) {
        cfg += "[maxpool]\nsize=" + std::to_string(pool->config().size) +
               "\nstride=" + std::to_string(pool->config().stride) + "\n";
      }
    }
    return cfg;
  }());
  // Copy the quantized twin's hidden parameters across.
  int64_t src = 1;
  for (int64_t i = 0; i < quant_hidden->num_layers(); ++i, ++src) {
    auto* dst = dynamic_cast<nn::ConvLayer*>(&quant_hidden->layer(i));
    if (!dst) continue;
    const auto* from =
        dynamic_cast<const nn::ConvLayer*>(&quant_net->layer(src));
    dst->weights() = from->weights();
    dst->biases() = from->biases();
    dst->bn_scales() = from->bn_scales();
    dst->bn_mean() = from->bn_mean();
    dst->bn_var() = from->bn_var();
    dst->invalidate_cached_quantization();
  }
  const std::string dir = "binparam-tincy-quantized";
  offload::export_binparams(*quant_hidden, dir);
  std::printf("exported fabric parameters to %s/ (%lld stages)\n",
              dir.c_str(),
              static_cast<long long>(
                  fabric::load_binparams(dir).size()));
  std::filesystem::remove_all(dir);
  return 0;
}
