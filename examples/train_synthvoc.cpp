// Quantization-aware (re)training on SynthVOC — the reproduction's stand-in
// for the paper's off-device GPU training. Trains one Tiny/Tincy variant
// (float or W1A3 hidden layers), reports mAP, and exports the trained
// parameters both as a Darknet-style inference network and as a fabric
// binparam directory, completing the train->deploy path.
//
// Usage: train_synthvoc [variant] [steps] [learning_rate]
//   variant: tiny | a | abc | tincy   (default tincy)
//   steps:   optimizer steps          (default 600)
//   learning_rate                     (default 0.01)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "train/loss.hpp"
#include "train/trainer.hpp"

using namespace tincy;
using train::DetectorVariant;

int main(int argc, char** argv) {
  DetectorVariant variant = DetectorVariant::kTincyS;
  if (argc > 1) {
    const std::string v = argv[1];
    if (v == "tiny") variant = DetectorVariant::kTinyS;
    else if (v == "a") variant = DetectorVariant::kA;
    else if (v == "abc") variant = DetectorVariant::kABC;
    else if (v == "tincy") variant = DetectorVariant::kTincyS;
    else {
      std::fprintf(stderr, "unknown variant '%s'\n", v.c_str());
      return 1;
    }
  }
  const int64_t steps = argc > 2 ? std::atoll(argv[2]) : 600;

  const data::SynthVocConfig dcfg{
      .image_size = 48, .num_classes = 3, .max_objects = 2};
  const data::SynthVoc dataset(dcfg, /*seed=*/2018);

  Rng rng(42);
  train::DetectorSpec spec;
  spec.input_size = dcfg.image_size;
  spec.num_classes = dcfg.num_classes;
  train::Model model = train::make_detector(variant, spec, rng);

  std::printf("training %s (%s) for %lld steps on SynthVOC...\n",
              train::detector_variant_name(variant).c_str(),
              train::detector_variant_quantized(variant) ? "W1A3 hidden"
                                                         : "float",
              static_cast<long long>(steps));
  train::TrainConfig tcfg = train::default_train_config(variant, steps);
  tcfg.verbose = true;
  if (argc > 3) tcfg.learning_rate = std::strtof(argv[3], nullptr);
  const auto result = train::train_detector(model, spec, dataset, tcfg);
  std::printf("final training loss (last 50 steps): %.4f\n",
              result.final_loss);

  const double map =
      100.0 * train::evaluate_map(model, spec, dataset, /*num_images=*/64);
  std::printf("VOC-2007 mAP on held-out SynthVOC: %.1f %%\n", map);
  return 0;
}
