// Quickstart: build Tincy YOLO from its cfg, randomize weights, run one
// synthetic frame end to end (letterbox -> inference -> region decode ->
// NMS) and print the detections. With random weights the detections are
// arbitrary — the point is the 10-line end-to-end API. See train_synthvoc
// for trained weights and live_video_demo for the full pipeline.

#include <cstdio>

#include "core/rng.hpp"
#include "data/image.hpp"
#include "data/synthvoc.hpp"
#include "detect/decode.hpp"
#include "detect/nms.hpp"
#include "nn/region_layer.hpp"
#include "nn/zoo.hpp"

using namespace tincy;

int main() {
  // 1. Build the network from its Darknet-style cfg (64x64 input for a
  //    quick run; the paper uses 416).
  const std::string cfg = nn::zoo::tiny_yolo_cfg(
      nn::zoo::TinyVariant::kTincy, nn::zoo::QuantMode::kFloat, 64,
      nn::zoo::CpuProfile::kFused);
  auto net = nn::zoo::build(cfg);
  Rng rng(1);
  nn::zoo::randomize(*net, rng);
  std::printf("Tincy YOLO: %lld layers, input %s, output %s\n",
              static_cast<long long>(net->num_layers()),
              net->input_shape().to_string().c_str(),
              net->output_shape().to_string().c_str());

  // 2. Grab a synthetic image and letterbox it to the network input.
  const data::SynthVoc dataset({.image_size = 96}, 7);
  const data::SynthSample sample = dataset.sample(0);
  const Tensor input = data::letterbox(sample.image, 64);

  // 3. Inference.
  const Tensor& features = net->forward(input);

  // 4. Decode the region output and suppress duplicates.
  const auto* region =
      dynamic_cast<const nn::RegionLayer*>(&net->layer(net->num_layers() - 1));
  auto dets = detect::decode_region(features, region->config(), 0.2f);
  dets = detect::nms(std::move(dets), 0.45f);

  std::printf("%zu detections above threshold (random weights!):\n",
              dets.size());
  for (const auto& d : dets)
    std::printf("  class %2d  score %.2f  box (%.2f, %.2f, %.2f, %.2f)\n",
                d.class_id, d.score(), d.box.x, d.box.y, d.box.w, d.box.h);
  std::printf("ground truth had %zu objects\n", sample.objects.size());
  return 0;
}
