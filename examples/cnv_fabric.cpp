// The CNV-6 workload of Table II, end to end at W1A1: a fully binarized
// convolutional network (valid convolutions, max pools, an FC head) is
// trained on SynthDigits, its quantization-sensitive first and last layers
// stay float on the CPU, and everything in between — convs, pools and the
// first FC (a K=map-size convolution, i.e. one kernel application) — runs
// on the QNN accelerator, bit-exactly.
//
// Usage: cnv_fabric [steps]   (default 3000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/synthdigits.hpp"
#include "nn/builder.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "train/loss.hpp"
#include "train/model.hpp"
#include "train/optimizer.hpp"
#include "offload/import.hpp"

using namespace tincy;

namespace {

/// Topology (28x28x1 input, all convs valid/pad-free as in FINN's CNV):
///   conv1 16@3x3, float weights, BN+sign output -> 26x26 of ±1
///         (the quantization-sensitive layer keeps full-precision weights
///          but, as in FINN, still emits binarized activations)
///   conv2 16@3x3 W1A1                   -> 24x24, pool -> 12x12
///   conv3 32@3x3 W1A1                   -> 10x10, pool -> 5x5
///   conv4 32@3x3 W1A1                   -> 3x3
///   fc1   64 W1A1 (conv K=3 over 3x3)   -> 1x1
///   fc2   10 linear float (conv K=1)
struct Topo {
  struct ConvSpec {
    int64_t filters;
    int64_t size;
    bool quant;
    bool pool_after;
  };
  static constexpr ConvSpec specs[] = {
      {16, 3, false, false}, {16, 3, true, true}, {32, 3, true, true},
      {32, 3, true, false},  {64, 3, true, false}, {10, 1, false, false}};
};

train::Model make_cnv(Rng& rng) {
  train::Model model(Shape{1, 28, 28});
  Shape shape = model.input_shape();
  for (const auto& s : Topo::specs) {
    train::TrainConvConfig cfg;
    cfg.filters = s.filters;
    cfg.size = s.size;
    cfg.pad = false;
    cfg.activation = nn::Activation::kLinear;
    if (s.quant) {
      cfg.binary_weights = true;
      cfg.act_bits = 1;
      cfg.bipolar = true;
      cfg.out_scale = 1.0f;
    } else if (&s == &Topo::specs[0]) {
      // First layer: float weights, but BN+sign output feeding the
      // binarized middle (FINN-style).
      cfg.act_bits = 1;
      cfg.bipolar = true;
      cfg.channel_scale = true;
      cfg.out_scale = 1.0f;
    }
    auto layer = std::make_unique<train::TrainConvLayer>(cfg, shape, rng);
    shape = layer->output_shape();
    model.add(std::move(layer));
    if (s.pool_after) {
      auto pool = std::make_unique<train::TrainMaxPoolLayer>(2, 2, shape);
      shape = pool->output_shape();
      model.add(std::move(pool));
    }
  }
  return model;
}

std::string cnv_cfg() {
  std::string cfg = "[net]\nwidth=28\nheight=28\nchannels=1\n";
  for (const auto& s : Topo::specs) {
    cfg += "[convolutional]\n";
    if (s.quant)
      cfg += "batch_normalize=1\nbinary=1\nabits=1\nbipolar=1\n"
             "kernel=quant_reference\nin_scale=1\nout_scale=1\n"
             "activation=linear\n";
    else if (&s == &Topo::specs[0])
      cfg += "batch_normalize=1\nabits=1\nbipolar=1\nin_scale=1\n"
             "out_scale=1\nactivation=linear\n";
    else
      cfg += "activation=linear\n";
    cfg += "filters=" + std::to_string(s.filters) +
           "\nsize=" + std::to_string(s.size) + "\nstride=1\npad=0\n";
    if (s.pool_after) cfg += "[maxpool]\nsize=2\nstride=2\n";
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t steps = argc > 1 ? std::atoll(argv[1]) : 3000;
  const data::SynthDigits digits(77);
  Rng rng(2);
  train::Model model = make_cnv(rng);

  std::printf("training W1A1 CNV (4 binarized hidden stages) for %lld "
              "steps...\n",
              static_cast<long long>(steps));
  train::Sgd sgd({.learning_rate = 0.002f, .momentum = 0.9f,
                  .weight_decay = 0.0f, .grad_clip = 1.0f});
  int64_t idx = 0;
  for (int64_t step = 0; step < steps; ++step) {
    model.zero_grad();
    double loss = 0.0;
    constexpr int kBatch = 4;
    for (int b = 0; b < kBatch; ++b) {
      const auto s = digits.sample(idx++);
      const Tensor& logits = model.forward(s.image, true);
      auto res = train::softmax_cross_entropy(logits, s.label);
      loss += res.loss;
      for (int64_t i = 0; i < res.grad.numel(); ++i)
        res.grad[i] /= static_cast<float>(kBatch);
      model.backward(res.grad);
    }
    sgd.step(model.params());
    if (step % 500 == 0)
      std::printf("  step %5lld  loss %.3f\n", static_cast<long long>(step),
                  loss / kBatch);
  }

  // Deploy: export to the inference twin, offload the binarized middle.
  auto net = nn::build_network_from_string(cnv_cfg());
  model.export_to(*net);

  // Hidden portion: layers 1..6 of the inference net (conv2..fc1 + pools).
  auto hidden = nn::build_network_from_string([&] {
    std::string cfg = "[net]\nwidth=26\nheight=26\nchannels=16\n";
    const int64_t hidden_specs[][3] = {  // filters, size, pool_after
        {16, 3, 1}, {32, 3, 1}, {32, 3, 0}, {64, 3, 0}};
    for (const auto& h : hidden_specs) {
      cfg += "[convolutional]\nbatch_normalize=1\nbinary=1\nabits=1\n"
             "bipolar=1\nkernel=quant_reference\nin_scale=1\nout_scale=1\n"
             "activation=linear\nfilters=" + std::to_string(h[0]) +
             "\nsize=" + std::to_string(h[1]) + "\nstride=1\npad=0\n";
      if (h[2]) cfg += "[maxpool]\nsize=2\nstride=2\n";
    }
    return cfg;
  }());
  // Copy parameters of the quantized convs across (net layers 1,3,5,6).
  const int64_t src_indices[] = {1, 3, 5, 6};
  int64_t dst_conv = 0;
  for (int64_t i = 0; i < hidden->num_layers(); ++i) {
    auto* dst = dynamic_cast<nn::ConvLayer*>(&hidden->layer(i));
    if (!dst) continue;
    const auto& src = dynamic_cast<const nn::ConvLayer&>(
        net->layer(src_indices[dst_conv++]));
    dst->weights() = src.weights();
    dst->biases() = src.biases();
    dst->bn_scales() = src.bn_scales();
    dst->bn_mean() = src.bn_mean();
    dst->bn_var() = src.bn_var();
    dst->invalidate_cached_quantization();
  }
  const fabric::QnnAccelerator acc = offload::import_accelerator(*hidden);
  std::printf("offloaded %lld fabric stages; modeled PL time %.3f ms/image\n",
              static_cast<long long>(acc.num_layers()), acc.total_ms());

  // Evaluate: full CPU net vs CPU-first-layer + fabric middle + CPU head.
  const int64_t eval_n = 200, eval_offset = 1'000'000;
  int correct_cpu = 0, correct_fabric = 0;
  int64_t mismatches = 0;
  auto& first = dynamic_cast<nn::ConvLayer&>(net->layer(0));
  auto& head = dynamic_cast<nn::ConvLayer&>(net->layer(7));
  for (int64_t i = 0; i < eval_n; ++i) {
    const auto s = digits.sample(eval_offset + i);
    const Tensor& cpu_logits = net->forward(s.image);
    const Tensor& cpu_mid = net->layer_output(6);

    Tensor stem(first.output_shape());
    first.forward(s.image, stem);
    Tensor fab_mid = acc.forward(stem);
    for (int64_t j = 0; j < fab_mid.numel(); ++j)
      mismatches += fab_mid[j] != cpu_mid[j];
    Tensor logits(head.output_shape());
    fab_mid.reshape(net->layer_input_shape(7));
    head.forward(fab_mid, logits);

    const auto argmax = [](const Tensor& t) {
      int best = 0;
      for (int64_t j = 1; j < t.numel(); ++j)
        if (t[j] > t[best]) best = static_cast<int>(j);
      return best;
    };
    correct_cpu += argmax(cpu_logits) == s.label;
    correct_fabric += argmax(logits) == s.label;
  }
  std::printf("\naccuracy over %lld digits: CPU %.1f %%, fabric %.1f %%\n",
              static_cast<long long>(eval_n), 100.0 * correct_cpu / eval_n,
              100.0 * correct_fabric / eval_n);
  std::printf("fabric vs CPU middle activations: %lld mismatches "
              "(bit-exact expected)\n",
              static_cast<long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}
