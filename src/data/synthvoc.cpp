#include "data/synthvoc.hpp"

#include <algorithm>
#include <cmath>

#include "core/errors.hpp"

namespace tincy::data {
namespace {

struct Rgb {
  float r, g, b;
};

// 7-color palette; class = shape (3) × color index.
constexpr Rgb kPalette[] = {
    {0.9f, 0.15f, 0.15f},  // red
    {0.15f, 0.75f, 0.2f},  // green
    {0.2f, 0.3f, 0.95f},   // blue
    {0.95f, 0.85f, 0.1f},  // yellow
    {0.85f, 0.2f, 0.85f},  // magenta
    {0.1f, 0.85f, 0.85f},  // cyan
    {0.95f, 0.55f, 0.1f},  // orange
};
constexpr const char* kPaletteNames[] = {"red",     "green", "blue",  "yellow",
                                         "magenta", "cyan",  "orange"};
constexpr const char* kShapeNames[] = {"circle", "square", "triangle"};

/// Coverage test of shape `shape_id` centered at (cx, cy) with half-extent
/// (hw, hh), for pixel center (px, py); all in pixels.
bool covers(int shape_id, float cx, float cy, float hw, float hh, float px,
            float py) {
  const float dx = (px - cx) / hw, dy = (py - cy) / hh;
  switch (shape_id) {
    case 0:  // circle (ellipse in the box)
      return dx * dx + dy * dy <= 1.0f;
    case 1:  // square (the full box)
      return std::fabs(dx) <= 1.0f && std::fabs(dy) <= 1.0f;
    default:  // triangle: apex up, base at the bottom of the box
      if (dy < -1.0f || dy > 1.0f) return false;
      return std::fabs(dx) <= (dy + 1.0f) / 2.0f;
  }
}

}  // namespace

void render_object(Tensor& image, const detect::GroundTruth& obj) {
  TINCY_CHECK(image.shape().rank() == 3 && image.shape().channels() == 3);
  TINCY_CHECK_MSG(obj.class_id >= 0 && obj.class_id < 21,
                  "class " << obj.class_id);
  const int64_t H = image.shape().height(), W = image.shape().width();
  const int shape = obj.class_id % 3, color = obj.class_id / 3;
  const Rgb rgb = kPalette[color];
  const float fill[3] = {rgb.r, rgb.g, rgb.b};

  const float pcx = obj.box.x * static_cast<float>(W);
  const float pcy = obj.box.y * static_cast<float>(H);
  const float phw = obj.box.w * static_cast<float>(W) / 2;
  const float phh = obj.box.h * static_cast<float>(H) / 2;
  for (int64_t y = std::max<int64_t>(0, static_cast<int64_t>(pcy - phh));
       y <= std::min<int64_t>(H - 1, static_cast<int64_t>(pcy + phh)); ++y) {
    for (int64_t x = std::max<int64_t>(0, static_cast<int64_t>(pcx - phw));
         x <= std::min<int64_t>(W - 1, static_cast<int64_t>(pcx + phw)); ++x) {
      if (!covers(shape, pcx, pcy, phw, phh, static_cast<float>(x) + 0.5f,
                  static_cast<float>(y) + 0.5f))
        continue;
      for (int c = 0; c < 3; ++c) image.at(c, y, x) = fill[c];
    }
  }
}

SynthVoc::SynthVoc(SynthVocConfig cfg, uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  TINCY_CHECK_MSG(cfg.num_classes >= 1 && cfg.num_classes <= 20,
                  "num_classes " << cfg.num_classes);
  TINCY_CHECK(cfg.image_size >= 16);
  TINCY_CHECK(cfg.max_objects >= 1);
}

std::string SynthVoc::class_name(int class_id) const {
  TINCY_CHECK_MSG(class_id >= 0 && class_id < cfg_.num_classes,
                  "class " << class_id);
  const int shape = class_id % 3, color = class_id / 3;
  return std::string(kPaletteNames[color]) + "-" + kShapeNames[shape];
}

SynthSample SynthVoc::sample(int64_t index) const {
  // Index-keyed seeding keeps samples independent of generation order.
  Rng rng(seed_ * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(index) + 1);
  const int64_t S = cfg_.image_size;

  SynthSample out;
  out.image = Tensor(Shape{3, S, S});
  // Low-contrast noisy background.
  const float base = rng.uniform(0.25f, 0.55f);
  for (int64_t i = 0; i < out.image.numel(); ++i)
    out.image[i] =
        std::clamp(base + rng.normal(0.0f, cfg_.background_noise), 0.0f, 1.0f);

  const int64_t count = rng.uniform_int(1, cfg_.max_objects);
  for (int64_t n = 0; n < count; ++n) {
    detect::GroundTruth gt;
    gt.class_id = static_cast<int>(rng.uniform_int(0, cfg_.num_classes - 1));
    // Extents and placement keeping the object fully inside the image.
    gt.box.w = rng.uniform(cfg_.min_extent, cfg_.max_extent);
    gt.box.h = rng.uniform(cfg_.min_extent, cfg_.max_extent);
    gt.box.x = rng.uniform(gt.box.w / 2, 1.0f - gt.box.w / 2);
    gt.box.y = rng.uniform(gt.box.h / 2, 1.0f - gt.box.h / 2);
    render_object(out.image, gt);
    out.objects.push_back(gt);
  }
  return out;
}

}  // namespace tincy::data
