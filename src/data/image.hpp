#pragma once

/// \file image.hpp
/// Image utilities on CHW float tensors (RGB, values in [0, 1]), including
/// the letterboxing step of the paper's pipeline (Fig. 5, stage #1:
/// "Letter Boxing" — scale preserving aspect ratio, pad with gray).

#include "core/tensor.hpp"

namespace tincy::data {

/// Bilinear resize of a (C, H, W) image to (C, out_h, out_w).
Tensor resize_bilinear(const Tensor& image, int64_t out_h, int64_t out_w);

/// Letterboxes `image` into a (C, size, size) square: scales so the larger
/// side fits, centers, and pads with 0.5 — Darknet's letterbox_image.
Tensor letterbox(const Tensor& image, int64_t size);

/// Maps a box from letterboxed coordinates back to original-image
/// normalized coordinates (inverse of letterbox for annotation overlay).
/// `bx..bh` are normalized in the letterboxed frame.
void unletterbox_box(float& bx, float& by, float& bw, float& bh,
                     int64_t orig_w, int64_t orig_h, int64_t boxed_size);

}  // namespace tincy::data
