#include "data/synthdigits.hpp"

#include <algorithm>

namespace tincy::data {
namespace {

// Classic 5×7 digit font, one row per scanline, LSB = leftmost pixel.
constexpr uint8_t kFont[10][7] = {
    {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},  // 0
    {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},  // 1
    {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},  // 2
    {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},  // 3
    {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},  // 4
    {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},  // 5
    {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},  // 6
    {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},  // 7
    {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},  // 8
    {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},  // 9
};

bool font_bit(int digit, float gx, float gy) {
  const int col = static_cast<int>(gx);
  const int row = static_cast<int>(gy);
  if (col < 0 || col >= 5 || row < 0 || row >= 7) return false;
  // MSB of the 5-bit row is the leftmost pixel.
  return (kFont[digit][row] >> (4 - col)) & 1;
}

}  // namespace

DigitSample SynthDigits::sample(int64_t index) const {
  Rng rng(seed_ * 0xD1910F0A7ull + static_cast<uint64_t>(index) + 1);
  DigitSample s;
  s.label = static_cast<int>(rng.uniform_int(0, 9));
  s.image = Tensor(Shape{1, kSize, kSize});

  const float background = rng.uniform(0.05f, 0.15f);
  const float foreground = rng.uniform(0.8f, 1.0f);
  const float noise = 0.05f;

  // Glyph placement: scale ~3x (glyph ≈ 15×21 px), jittered offset.
  const float scale = rng.uniform(2.4f, 3.2f);
  const float glyph_w = 5.0f * scale, glyph_h = 7.0f * scale;
  const float off_x = rng.uniform(1.0f, static_cast<float>(kSize) - glyph_w - 1.0f);
  const float off_y = rng.uniform(1.0f, static_cast<float>(kSize) - glyph_h - 1.0f);

  for (int64_t y = 0; y < kSize; ++y) {
    for (int64_t x = 0; x < kSize; ++x) {
      const float gx = (static_cast<float>(x) + 0.5f - off_x) / scale;
      const float gy = (static_cast<float>(y) + 0.5f - off_y) / scale;
      const float value =
          font_bit(s.label, gx, gy) ? foreground : background;
      s.image.at(0, y, x) =
          std::clamp(value + rng.normal(0.0f, noise), 0.0f, 1.0f);
    }
  }
  return s;
}

}  // namespace tincy::data
