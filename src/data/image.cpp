#include "data/image.hpp"

#include <algorithm>
#include <cmath>

namespace tincy::data {

Tensor resize_bilinear(const Tensor& image, int64_t out_h, int64_t out_w) {
  TINCY_CHECK(image.shape().rank() == 3);
  const int64_t C = image.shape().channels(), H = image.shape().height(),
                W = image.shape().width();
  TINCY_CHECK(out_h > 0 && out_w > 0);
  Tensor out(Shape{C, out_h, out_w});
  const float sy = out_h > 1 ? static_cast<float>(H - 1) / static_cast<float>(out_h - 1)
                             : 0.0f;
  const float sx = out_w > 1 ? static_cast<float>(W - 1) / static_cast<float>(out_w - 1)
                             : 0.0f;
  for (int64_t c = 0; c < C; ++c) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      const float fy = static_cast<float>(oy) * sy;
      const int64_t y0 = static_cast<int64_t>(fy);
      const int64_t y1 = std::min(y0 + 1, H - 1);
      const float wy = fy - static_cast<float>(y0);
      for (int64_t ox = 0; ox < out_w; ++ox) {
        const float fx = static_cast<float>(ox) * sx;
        const int64_t x0 = static_cast<int64_t>(fx);
        const int64_t x1 = std::min(x0 + 1, W - 1);
        const float wx = fx - static_cast<float>(x0);
        const float v00 = image.at(c, y0, x0), v01 = image.at(c, y0, x1);
        const float v10 = image.at(c, y1, x0), v11 = image.at(c, y1, x1);
        out.at(c, oy, ox) = (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                            wy * ((1 - wx) * v10 + wx * v11);
      }
    }
  }
  return out;
}

Tensor letterbox(const Tensor& image, int64_t size) {
  TINCY_CHECK(image.shape().rank() == 3);
  const int64_t C = image.shape().channels(), H = image.shape().height(),
                W = image.shape().width();
  int64_t new_w, new_h;
  if (W >= H) {
    new_w = size;
    new_h = std::max<int64_t>(1, H * size / W);
  } else {
    new_h = size;
    new_w = std::max<int64_t>(1, W * size / H);
  }
  const Tensor resized = resize_bilinear(image, new_h, new_w);
  Tensor boxed(Shape{C, size, size}, 0.5f);
  const int64_t off_y = (size - new_h) / 2, off_x = (size - new_w) / 2;
  for (int64_t c = 0; c < C; ++c)
    for (int64_t y = 0; y < new_h; ++y)
      for (int64_t x = 0; x < new_w; ++x)
        boxed.at(c, y + off_y, x + off_x) = resized.at(c, y, x);
  return boxed;
}

void unletterbox_box(float& bx, float& by, float& bw, float& bh,
                     int64_t orig_w, int64_t orig_h, int64_t boxed_size) {
  int64_t new_w, new_h;
  if (orig_w >= orig_h) {
    new_w = boxed_size;
    new_h = std::max<int64_t>(1, orig_h * boxed_size / orig_w);
  } else {
    new_h = boxed_size;
    new_w = std::max<int64_t>(1, orig_w * boxed_size / orig_h);
  }
  const float fx = static_cast<float>(new_w) / static_cast<float>(boxed_size);
  const float fy = static_cast<float>(new_h) / static_cast<float>(boxed_size);
  const float off_x = (1.0f - fx) / 2.0f;
  const float off_y = (1.0f - fy) / 2.0f;
  bx = (bx - off_x) / fx;
  by = (by - off_y) / fy;
  bw = bw / fx;
  bh = bh / fy;
}

}  // namespace tincy::data
