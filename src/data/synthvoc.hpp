#pragma once

/// \file synthvoc.hpp
/// SynthVOC: a procedural stand-in for the Pascal VOC detection data the
/// paper trains and evaluates on. Images contain 1..max_objects geometric
/// shapes (circle / square / triangle, cycled through a color palette to
/// span up to 20 classes) over a noisy background, with exact normalized
/// ground-truth boxes. It exercises the identical code paths — training,
/// letterboxing, inference, region decoding, NMS, mAP — with controlled
/// ground truth; see DESIGN.md's substitution table.

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "detect/box.hpp"

namespace tincy::data {

struct SynthVocConfig {
  int64_t image_size = 64;
  int num_classes = 3;    ///< up to 20 (= 3 shapes × 7 palette colors − 1)
  int max_objects = 3;
  float background_noise = 0.08f;  ///< stddev of the background texture
  float min_extent = 0.25f;        ///< object size range, fraction of image
  float max_extent = 0.5f;
};

/// One generated image with its annotations.
struct SynthSample {
  Tensor image;  ///< (3, S, S) RGB in [0, 1]
  std::vector<detect::GroundTruth> objects;
};

/// Rasterizes one class's shape into `image` at the ground-truth box
/// (normalized center/extent). Shared by the dataset generator and the
/// synthetic camera so both draw identical objects.
void render_object(Tensor& image, const detect::GroundTruth& obj);

/// Deterministic dataset: sample(i) always returns the same image for a
/// given (config, seed) pair.
class SynthVoc {
 public:
  explicit SynthVoc(SynthVocConfig cfg, uint64_t seed = 1);

  const SynthVocConfig& config() const { return cfg_; }

  /// Generates sample `index` (index-keyed, order-independent).
  SynthSample sample(int64_t index) const;

  /// Human-readable class name, e.g. "red-circle".
  std::string class_name(int class_id) const;

 private:
  SynthVocConfig cfg_;
  uint64_t seed_;
};

}  // namespace tincy::data
