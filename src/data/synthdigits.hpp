#pragma once

/// \file synthdigits.hpp
/// SynthDigits: a procedural MNIST stand-in for the MLP-4 / CNV-6
/// workloads of Table II. 28×28 single-channel images of the digits 0-9
/// rendered from a 5×7 bitmap font with random placement, scale jitter and
/// noise — enough variation to make classification non-trivial while
/// remaining exactly reproducible from a seed.

#include <cstdint>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace tincy::data {

struct DigitSample {
  Tensor image;  ///< (1, 28, 28) in [0, 1]
  int label = 0; ///< 0..9
};

class SynthDigits {
 public:
  explicit SynthDigits(uint64_t seed = 1) : seed_(seed) {}

  static constexpr int64_t kSize = 28;

  /// Deterministic sample `index` (index-keyed).
  DigitSample sample(int64_t index) const;

 private:
  uint64_t seed_;
};

}  // namespace tincy::data
