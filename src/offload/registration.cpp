#include "offload/registration.hpp"

#include "nn/offload_layer.hpp"
#include "offload/cpu_backend.hpp"
#include "offload/fabric_backend.hpp"

namespace tincy::offload {

void register_standard_backends() {
  auto& registry = nn::OffloadRegistry::instance();
  registry.register_library("fabric.so", [] {
    return std::make_unique<FabricBackend>();
  });
  registry.register_library("cpu_qnn.so", [] {
    return std::make_unique<CpuBackend>();
  });
}

}  // namespace tincy::offload
