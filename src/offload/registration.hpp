#pragma once

/// \file registration.hpp
/// Registers the standard offload "shared libraries" with the process-wide
/// registry: "fabric.so" (QNN accelerator) and "cpu_qnn.so" (software
/// reference). Idempotent; call once before building networks whose cfg
/// contains [offload] sections.

namespace tincy::offload {

void register_standard_backends();

}  // namespace tincy::offload
