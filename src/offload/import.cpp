#include "offload/import.hpp"

#include <cmath>
#include <limits>

#include "core/errors.hpp"
#include "nn/connected_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"

namespace tincy::offload {
namespace {

/// Threshold fold for a connected layer (bias only, no batch norm):
/// z = in_scale · acc + bias_c, compared against the activation targets.
fabric::ThresholdChannel fold_connected_channel(const nn::ConnectedConfig& cfg,
                                                float bias) {
  fabric::ThresholdChannel ch;
  const int levels = cfg.bipolar ? 1 : (1 << cfg.act_bits) - 1;
  for (int k = 1; k <= levels; ++k) {
    const double target =
        cfg.bipolar ? 0.0 : static_cast<double>(cfg.out_scale) * (k - 0.5);
    ch.thresholds.push_back(static_cast<int32_t>(
        std::ceil((target - bias) / cfg.in_scale - 1e-9)));
  }
  return ch;
}

/// Maps a quantized connected layer onto the accelerator: an FC layer is a
/// 1×1 convolution over a 1×1 feature map whose channel count is the
/// flattened input size.
fabric::BinparamLayer fc_stage(const nn::ConnectedLayer& fc) {
  const auto& cfg = fc.config();
  TINCY_CHECK_MSG(cfg.binary_weights && cfg.act_bits < 8,
                  "offloaded connected layers must be quantized");
  fabric::BinparamLayer stage;
  stage.spec.in_channels = fc.inputs();
  stage.spec.in_height = 1;
  stage.spec.in_width = 1;
  stage.spec.filters = cfg.outputs;
  stage.spec.kernel = 1;
  stage.spec.stride = 1;
  stage.spec.pad = 0;
  stage.spec.act_bits_in = cfg.act_bits;
  stage.spec.act_bits_out = cfg.act_bits;
  stage.spec.in_scale = cfg.in_scale;
  stage.spec.out_scale = cfg.out_scale;
  stage.spec.bipolar = cfg.bipolar;
  stage.weights = quant::binarize(fc.weights());
  for (int64_t c = 0; c < cfg.outputs; ++c)
    stage.thresholds.push_back(fold_connected_channel(cfg, fc.biases()[c]));
  return stage;
}

}  // namespace

std::vector<fabric::BinparamLayer> extract_stages(const nn::Network& subnet) {
  std::vector<fabric::BinparamLayer> stages;
  for (int64_t i = 0; i < subnet.num_layers(); ++i) {
    if (const auto* fc =
            dynamic_cast<const nn::ConnectedLayer*>(&subnet.layer(i))) {
      stages.push_back(fc_stage(*fc));
      continue;
    }
    const auto* conv = dynamic_cast<const nn::ConvLayer*>(&subnet.layer(i));
    TINCY_CHECK_MSG(conv != nullptr, "offload subtopology layer "
                                         << i
                                         << " must be convolutional or "
                                            "connected");
    const auto& cfg = conv->config();
    TINCY_CHECK_MSG(cfg.binary_weights && cfg.act_bits < 8,
                    "offload subtopology layer "
                        << i << " must be quantized (binary=1, abits<8)");

    fabric::BinparamLayer stage;
    const auto& g = conv->geometry();
    stage.spec.in_channels = g.in_channels;
    stage.spec.in_height = g.in_height;
    stage.spec.in_width = g.in_width;
    stage.spec.filters = cfg.filters;
    stage.spec.kernel = g.kernel;
    stage.spec.stride = g.stride;
    stage.spec.pad = g.pad;
    stage.spec.act_bits_in = cfg.act_bits;
    stage.spec.act_bits_out = cfg.act_bits;
    stage.spec.in_scale = cfg.in_scale;
    stage.spec.out_scale = cfg.out_scale;
    stage.spec.bipolar = cfg.bipolar;

    // A following maxpool fuses into this stage's pool unit.
    if (i + 1 < subnet.num_layers()) {
      if (const auto* pool =
              dynamic_cast<const nn::MaxPoolLayer*>(&subnet.layer(i + 1))) {
        stage.spec.pool_after = true;
        stage.spec.pool_size = pool->config().size;
        stage.spec.pool_stride = pool->config().stride;
        ++i;
      }
    }

    stage.weights = conv->binary_weights();
    for (const auto& ch : conv->quant_thresholds()) {
      fabric::ThresholdChannel fch;
      fch.thresholds = ch.set.thresholds;
      fch.ascending = ch.ascending;
      stage.thresholds.push_back(std::move(fch));
    }
    stages.push_back(std::move(stage));
  }
  TINCY_CHECK_MSG(!stages.empty(), "offload subtopology is empty");
  return stages;
}

fabric::QnnAccelerator import_accelerator(const nn::Network& subnet,
                                          fabric::CycleModel model,
                                          fabric::Device device) {
  fabric::QnnAccelerator acc(model, device);
  for (auto& stage : extract_stages(subnet))
    acc.add_layer(stage.spec, std::move(stage.weights),
                  std::move(stage.thresholds));
  return acc;
}

void export_binparams(const nn::Network& subnet, const std::string& dir) {
  fabric::save_binparams(dir, extract_stages(subnet));
}

}  // namespace tincy::offload
