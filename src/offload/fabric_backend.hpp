#pragma once

/// \file fabric_backend.hpp
/// The "fabric.so" of Fig. 4: an OffloadBackend that runs the hidden
/// layers on the QNN accelerator. The backend resolves the subtopology
/// from the cfg's `network=` value (a cfg file path or a name registered
/// via register_inline_network) and its parameters from the `weights=`
/// binparam directory.

#include <memory>
#include <optional>
#include <string>

#include "fabric/accelerator.hpp"
#include "nn/offload_layer.hpp"

namespace tincy::offload {

/// Registers cfg text under a name so `[offload] network=inline:<name>`
/// works without touching the filesystem (tests, examples).
void register_inline_network(const std::string& name,
                             const std::string& cfg_text);

/// Fetches inline cfg text; throws for unknown names.
const std::string& inline_network(const std::string& name);

class FabricBackend final : public nn::OffloadBackend {
 public:
  /// Cycle model / device are injectable for experiments; the defaults are
  /// the paper's platform (XCZU3EG, single folded engine).
  explicit FabricBackend(fabric::CycleModel model = {},
                         fabric::Device device = {});

  void init(const nn::OffloadConfig& cfg, Shape input_shape) override;
  void load_weights() override;
  void forward(const Tensor& in, Tensor& out) override;
  void destroy() override;
  nn::OpsCount ops() const override;
  nn::Precision precision() const override;

  /// The live accelerator (valid after load_weights, or after init when
  /// the subtopology carries weights in memory).
  const fabric::QnnAccelerator& accelerator() const;

  /// Modeled PL time per frame for the offloaded layers (the paper's
  /// "reduces the processing time of all hidden layers together to 30 ms").
  double modeled_ms() const;

 private:
  fabric::CycleModel model_;
  fabric::Device device_;
  nn::OffloadConfig cfg_;
  Shape input_shape_;
  std::optional<fabric::QnnAccelerator> accelerator_;
};

}  // namespace tincy::offload
