#include "offload/fabric_backend.hpp"

#include <map>

#include "core/errors.hpp"
#include "core/string_utils.hpp"
#include "fabric/binparam.hpp"
#include "nn/builder.hpp"
#include "offload/import.hpp"

namespace tincy::offload {
namespace {

std::map<std::string, std::string>& inline_registry() {
  static std::map<std::string, std::string> registry;
  return registry;
}

}  // namespace

void register_inline_network(const std::string& name,
                             const std::string& cfg_text) {
  inline_registry()[name] = cfg_text;
}

const std::string& inline_network(const std::string& name) {
  const auto it = inline_registry().find(name);
  TINCY_CHECK_MSG(it != inline_registry().end(),
                  "inline network not registered: '" << name << "'");
  return it->second;
}

FabricBackend::FabricBackend(fabric::CycleModel model, fabric::Device device)
    : model_(model), device_(device) {}

void FabricBackend::init(const nn::OffloadConfig& cfg, Shape input_shape) {
  cfg_ = cfg;
  input_shape_ = input_shape;
  TINCY_CHECK_MSG(!cfg.network.empty(),
                  "[offload] fabric backend needs network=");
}

void FabricBackend::load_weights() {
  // Parameters live in the binparam directory; the subtopology cfg (file
  // or inline) defines the expected structure, which we validate against.
  std::unique_ptr<nn::Network> subnet;
  if (starts_with(cfg_.network, "inline:")) {
    subnet = nn::build_network_from_string(
        inline_network(cfg_.network.substr(7)));
  } else {
    subnet = nn::build_network_from_file(cfg_.network);
  }
  TINCY_CHECK_MSG(subnet->input_shape() == input_shape_,
                  "offload subtopology expects input "
                      << subnet->input_shape().to_string() << " but gets "
                      << input_shape_.to_string());
  TINCY_CHECK_MSG(subnet->output_shape() == cfg_.output_shape,
                  "offload subtopology produces "
                      << subnet->output_shape().to_string()
                      << " but the [offload] section declares "
                      << cfg_.output_shape.to_string());

  TINCY_CHECK_MSG(!cfg_.weights.empty(),
                  "[offload] fabric backend needs weights=binparam dir");
  accelerator_ = fabric::load_accelerator(cfg_.weights, model_, device_);
  // Element-count comparison: FC front stages view the incoming CHW map
  // as a flat channel vector.
  TINCY_CHECK_MSG(accelerator_->input_shape().numel() == input_shape_.numel(),
                  "binparam stages expect input "
                      << accelerator_->input_shape().to_string());
  TINCY_CHECK_MSG(
      accelerator_->output_shape().numel() == cfg_.output_shape.numel(),
      "binparam stages produce "
          << accelerator_->output_shape().to_string());
}

void FabricBackend::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK_MSG(accelerator_.has_value(),
                  "fabric backend forward before load_weights");
  Tensor result = accelerator_->forward(in);
  result.reshape(cfg_.output_shape);  // same elements, declared geometry
  out = std::move(result);
}

void FabricBackend::destroy() { accelerator_.reset(); }

const fabric::QnnAccelerator& FabricBackend::accelerator() const {
  TINCY_CHECK_MSG(accelerator_.has_value(), "accelerator not loaded");
  return *accelerator_;
}

double FabricBackend::modeled_ms() const { return accelerator().total_ms(); }

nn::OpsCount FabricBackend::ops() const {
  nn::OpsCount oc;
  if (!accelerator_) return oc;
  for (int64_t i = 0; i < accelerator_->num_layers(); ++i) {
    const auto& s = accelerator_->spec(i);
    const auto g = s.conv_geometry();
    oc.ops += 2 * g.patch_size() * s.filters * g.num_patches();
  }
  oc.precision = precision();
  return oc;
}

nn::Precision FabricBackend::precision() const {
  int act_bits = 3;
  if (accelerator_ && accelerator_->num_layers() > 0)
    act_bits = accelerator_->spec(0).act_bits_in;
  return {1, act_bits};
}

}  // namespace tincy::offload
