#pragma once

/// \file cpu_backend.hpp
/// A CPU OffloadBackend ("cpu_qnn.so"): runs the offloaded subtopology
/// with the framework's own quantized reference layers. It serves as the
/// drop-in software reference for the fabric backend (the paper keeps a
/// float reference "available as drop in ... for case-to-case evaluation")
/// and demonstrates that the offload mechanism is backend-agnostic.

#include <memory>

#include "nn/network.hpp"
#include "nn/offload_layer.hpp"

namespace tincy::offload {

class CpuBackend final : public nn::OffloadBackend {
 public:
  void init(const nn::OffloadConfig& cfg, Shape input_shape) override;
  void load_weights() override;
  void forward(const Tensor& in, Tensor& out) override;
  void destroy() override;
  nn::OpsCount ops() const override;
  nn::Precision precision() const override;

  nn::Network& subnet();

 private:
  nn::OffloadConfig cfg_;
  Shape input_shape_;
  /// Private registry: the subnet's internal `net.layer.*` spans must not
  /// merge into the host network's namespace in the global registry.
  telemetry::MetricsRegistry subnet_metrics_;
  std::unique_ptr<nn::Network> subnet_;
};

}  // namespace tincy::offload
