#pragma once

/// \file import.hpp
/// Conversion between the Darknet-side view of the offloaded subtopology
/// (a Network of quantized ConvLayers and MaxPoolLayers) and the fabric
/// accelerator's stage list. This is where the software stack's trained
/// parameters (float weights, bias, batch-norm) become the hardware form
/// (bit-packed ±1 matrices and integer threshold tables).

#include <string>
#include <vector>

#include "fabric/accelerator.hpp"
#include "fabric/binparam.hpp"
#include "nn/network.hpp"

namespace tincy::offload {

/// Extracts accelerator stages from a subnetwork consisting of quantized
/// convolutional layers (binary=1, abits<8), each optionally followed by a
/// maxpool layer. Throws if the subnetwork contains anything else.
std::vector<fabric::BinparamLayer> extract_stages(const nn::Network& subnet);

/// Builds an in-memory accelerator directly from the subnetwork.
fabric::QnnAccelerator import_accelerator(const nn::Network& subnet,
                                          fabric::CycleModel model = {},
                                          fabric::Device device = {});

/// Writes the subnetwork's stages as a binparam directory (Fig. 4's
/// `weights=binparam-…/`).
void export_binparams(const nn::Network& subnet, const std::string& dir);

}  // namespace tincy::offload
