#include "offload/cpu_backend.hpp"

#include "core/errors.hpp"
#include "core/string_utils.hpp"
#include "nn/builder.hpp"
#include "nn/ops.hpp"
#include "nn/weights_io.hpp"
#include "offload/fabric_backend.hpp"

namespace tincy::offload {

void CpuBackend::init(const nn::OffloadConfig& cfg, Shape input_shape) {
  cfg_ = cfg;
  input_shape_ = input_shape;
  if (starts_with(cfg.network, "inline:")) {
    subnet_ = nn::build_network_from_string(
        inline_network(cfg.network.substr(7)), &subnet_metrics_);
  } else {
    subnet_ = nn::build_network_from_file(cfg.network, &subnet_metrics_);
  }
  TINCY_CHECK_MSG(subnet_->input_shape() == input_shape,
                  "cpu offload expects input "
                      << subnet_->input_shape().to_string() << " but gets "
                      << input_shape.to_string());
  TINCY_CHECK_MSG(subnet_->output_shape() == cfg.output_shape,
                  "cpu offload produces "
                      << subnet_->output_shape().to_string()
                      << " but the [offload] section declares "
                      << cfg.output_shape.to_string());
}

void CpuBackend::load_weights() {
  // The weights value points at a Darknet weight file for the subtopology;
  // an empty value keeps the in-memory parameters (e.g. after randomize).
  if (!cfg_.weights.empty()) nn::load_weights(*subnet_, cfg_.weights);
}

void CpuBackend::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK_MSG(subnet_ != nullptr, "cpu offload forward before init");
  out = subnet_->forward(in);
}

void CpuBackend::destroy() { subnet_.reset(); }

nn::Network& CpuBackend::subnet() {
  TINCY_CHECK_MSG(subnet_ != nullptr, "cpu offload not initialized");
  return *subnet_;
}

nn::OpsCount CpuBackend::ops() const {
  nn::OpsCount oc;
  if (!subnet_) return oc;
  const auto summary = nn::dot_product_workload(*subnet_);
  oc.ops = summary.total();
  oc.precision = summary.reduced_precision;
  return oc;
}

nn::Precision CpuBackend::precision() const {
  if (!subnet_) return nn::kFloat;
  return nn::dot_product_workload(*subnet_).reduced_precision;
}

}  // namespace tincy::offload
