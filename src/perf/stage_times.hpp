#pragma once

/// \file stage_times.hpp
/// Predicts the per-stage frame processing times of Table III for any
/// network variant and implementation choice.

#include <string>
#include <vector>

#include "nn/network.hpp"
#include "perf/platform.hpp"

namespace tincy::perf {

/// The stage decomposition of Table III.
struct StageTimes {
  double acquisition_ms = 0.0;
  double input_layer_ms = 0.0;
  double first_pool_ms = 0.0;  ///< 0 when the variant dropped it (mod (d))
  double hidden_layers_ms = 0.0;
  double output_layer_ms = 0.0;
  double box_drawing_ms = 0.0;
  double image_output_ms = 0.0;

  double total_ms() const {
    return acquisition_ms + input_layer_ms + first_pool_ms +
           hidden_layers_ms + output_layer_ms + box_drawing_ms +
           image_output_ms;
  }
  double fps() const { return total_ms() > 0.0 ? 1000.0 / total_ms() : 0.0; }
};

/// Modeled time of one convolutional layer on the generic CPU path
/// (GEMM ops at the scalar rate + im2col materialization; 1×1 kernels
/// skip im2col as Darknet does).
double generic_conv_ms(const nn::Network& net, int64_t layer_index,
                       const ZynqPlatform& p);

/// Modeled time of one maxpool layer on the CPU (all channels).
double pool_ms(const nn::Network& net, int64_t layer_index,
               const ZynqPlatform& p);

/// Modeled PL time for the network's hidden layers on the accelerator
/// (binary weights, 3-bit activations; the paper's "30 ms" stage).
double fabric_hidden_ms(const nn::Network& net, const ZynqPlatform& p);

/// Full Table-III-style stage decomposition for the given network.
/// The network must be a Tiny/Tincy-YOLO-shaped topology: input conv,
/// optional pool, hidden conv/pool ladder, 1×1 output conv, region.
StageTimes model_stage_times(const nn::Network& net, const ZynqPlatform& p,
                             FirstLayerImpl first, HiddenImpl hidden);

}  // namespace tincy::perf
