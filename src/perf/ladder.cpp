#include "perf/ladder.hpp"

#include "nn/zoo.hpp"

namespace tincy::perf {

std::vector<pipeline::TimedStage> pipelined_stages(
    const ZynqPlatform& platform, const StageTimes& times) {
  // §III-F: "the biggest chunks of the overall computation were further
  // split into smaller pieces" — image acquisition becomes camera access
  // plus letterboxing; the offload wrapper is stripped to a tight PL call.
  const double o = platform.pipeline_sync_overhead_ms;
  std::vector<pipeline::TimedStage> stages;
  stages.push_back({"camera_access", times.acquisition_ms / 2 + o, ""});
  stages.push_back({"letterboxing", times.acquisition_ms / 2 + o, ""});
  stages.push_back(
      {"input_layer", times.input_layer_ms + times.first_pool_ms + o, ""});
  stages.push_back({"hidden_layers[PL]", times.hidden_layers_ms + o, "PL"});
  stages.push_back({"output_layer", times.output_layer_ms + o, ""});
  stages.push_back({"object_boxing", times.box_drawing_ms + o, ""});
  stages.push_back({"image_output", times.image_output_ms + o, ""});
  return stages;
}

std::vector<LadderStep> optimization_ladder(const ZynqPlatform& platform) {
  using nn::zoo::CpuProfile;
  using nn::zoo::QuantMode;
  using nn::zoo::TinyVariant;

  const auto tiny = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTiny, QuantMode::kFloat, 416, CpuProfile::kReference));
  const auto tincy = nn::zoo::build(nn::zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kFloat, 416, CpuProfile::kReference));

  struct Config {
    std::string name;
    const nn::Network* net;
    FirstLayerImpl first;
    HiddenImpl hidden;
  };
  const Config configs[] = {
      {"generic Darknet inference (Tiny YOLO, float)", tiny.get(),
       FirstLayerImpl::kGeneric, HiddenImpl::kGeneric},
      {"+ FINN fabric offload of hidden layers (W1A3)", tiny.get(),
       FirstLayerImpl::kGeneric, HiddenImpl::kFabric},
      {"+ gemmlowp 8-bit input layer", tiny.get(), FirstLayerImpl::kLowpGemm,
       HiddenImpl::kFabric},
      {"+ fused NEON im2col+GEMM (float)", tiny.get(),
       FirstLayerImpl::kFusedF32, HiddenImpl::kFabric},
      {"+ specialized 16x27 kernel (float)", tiny.get(),
       FirstLayerImpl::kSpecF32, HiddenImpl::kFabric},
      {"+ 16x27 kernel, 8-bit, 32-bit accumulators", tiny.get(),
       FirstLayerImpl::kSpecAcc32, HiddenImpl::kFabric},
      {"+ 16x27 kernel, 8-bit, 16-bit accumulators", tiny.get(),
       FirstLayerImpl::kSpecAcc16, HiddenImpl::kFabric},
      {"+ algorithmic simplification (Tincy YOLO)", tincy.get(),
       FirstLayerImpl::kSpecAcc16, HiddenImpl::kFabric},
  };

  std::vector<LadderStep> ladder;
  for (const auto& c : configs) {
    LadderStep step;
    step.name = c.name;
    step.times = model_stage_times(*c.net, platform, c.first, c.hidden);
    step.fps = step.times.fps();
    ladder.push_back(std::move(step));
  }

  // Step 9: the pipelined demo mode over the final sequential times.
  {
    LadderStep step;
    step.name = "+ pipelined demo mode (4 cores)";
    step.times = ladder.back().times;
    step.pipelined = true;
    const auto stages = pipelined_stages(platform, step.times);
    const auto sim =
        pipeline::simulate(stages, platform.cores, /*num_frames=*/64);
    step.fps = sim.fps;
    ladder.push_back(std::move(step));
  }

  for (size_t i = 0; i < ladder.size(); ++i) {
    ladder[i].speedup_total = ladder[i].fps / ladder.front().fps;
    ladder[i].speedup_previous =
        i == 0 ? 1.0 : ladder[i].fps / ladder[i - 1].fps;
  }
  return ladder;
}

}  // namespace tincy::perf
