#pragma once

/// \file platform.hpp
/// Timing model of the Zynq UltraScale+ (XCZU3EG) platform.
///
/// The reproduction host is not a 4×Cortex-A53 SoC, so absolute stage
/// times come from an analytic model with a small set of *calibration
/// constants*. The effective-rate constants are fitted once against the
/// paper's own measurements (Table III: generic inference = 10,030 ms) and
/// then *predict* every other configuration; the per-kernel speedup
/// factors are the paper's §III-D measurements, cross-checked on the host
/// by bench/gemm_kernels. EXPERIMENTS.md discusses the calibration.

#include "fabric/accelerator.hpp"

namespace tincy::perf {

/// Implementation choices for the first (input) convolutional layer —
/// the §III-D progression.
enum class FirstLayerImpl {
  kGeneric,    ///< Darknet generic im2col + float GEMM
  kLowpGemm,   ///< gemmlowp-style 8-bit GEMM         (2.2× vs generic)
  kFusedF32,   ///< fused sliced im2col+GEMM, float   (2.1×)
  kSpecF32,    ///< specialized 16×27 float kernel    (620 → 160 ms)
  kSpecAcc32,  ///< specialized, 8-bit, 32-bit accum  (→ 140 ms)
  kSpecAcc16,  ///< specialized, 8-bit, 16-bit accum  (→ 120 ms)
};

/// Implementation choices for the hidden layers.
enum class HiddenImpl {
  kGeneric,  ///< CPU float (the 9,160 ms of Table III)
  kFabric,   ///< FINN-style W1A3 accelerator in the PL
};

struct ZynqPlatform {
  // --- Hardware facts ---
  int cores = 4;                ///< Cortex-A53 cores
  double a53_clock_ghz = 1.2;

  // --- Effective rates of the generic CPU paths (calibrated, §III-C) ---
  /// Sustained ops/s of Darknet's generic float GEMM on one A53.
  double scalar_gemm_ops_per_sec = 870e6;
  /// im2col elements materialized per second (cache-hostile on 416² maps).
  double im2col_elems_per_sec = 10.4e6;
  /// Max-pool comparisons per second (all channels).
  double pool_cmps_per_sec = 19.8e6;

  // --- First-layer kernel speedups over the generic path (§III-D) ---
  double first_layer_speedup(FirstLayerImpl impl) const;

  // --- Fixed frame-processing costs (Table III) ---
  double acquisition_ms = 40.0;
  double box_drawing_ms = 15.0;
  double image_output_ms = 25.0;

  // --- Pipeline dilution (§III-F) ---
  /// Per-stage, per-job synchronization + cache-interference overhead when
  /// all four cores run concurrently; calibrated so the modeled pipeline
  /// reproduces the measured 16 fps against the ~23 fps ideal.
  double pipeline_sync_overhead_ms = 12.8;

  // --- Programmable logic ---
  fabric::CycleModel fabric_model{};
};

}  // namespace tincy::perf
