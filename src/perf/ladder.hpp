#pragma once

/// \file ladder.hpp
/// The §III optimization ladder: every bottleneck-elimination step of the
/// paper with its modeled frame time and frame rate, from generic Darknet
/// inference (0.1 fps) to the pipelined demo mode (16 fps).

#include <string>
#include <vector>

#include "perf/stage_times.hpp"
#include "pipeline/virtual_time.hpp"

namespace tincy::perf {

struct LadderStep {
  std::string name;
  StageTimes times;          ///< sequential per-frame stage decomposition
  double fps = 0.0;          ///< achieved frame rate after this step
  double speedup_total = 1.0;    ///< vs. the generic baseline
  double speedup_previous = 1.0; ///< vs. the preceding step
  bool pipelined = false;    ///< true for the final multi-threaded step
};

/// Computes the full ladder on the given platform model. Steps:
///   1. generic Darknet, Tiny YOLO, float (Table III);
///   2. + FINN fabric offload of the hidden layers (W1A3);
///   3. + gemmlowp 8-bit input layer;
///   4. + fused NEON im2col+GEMM input layer (float);
///   5. + specialized 16×27 float kernel;
///   6. + 16×27 kernel, 8-bit, 32-bit accumulators;
///   7. + 16×27 kernel, 8-bit, 16-bit accumulators;
///   8. + algorithmic simplification (Tincy YOLO topology);
///   9. + pipelined demo mode on all four cores.
std::vector<LadderStep> optimization_ladder(const ZynqPlatform& platform);

/// The Fig. 5 stage list (virtual-time form) of the final configuration,
/// including the per-stage synchronization overhead; used for step 9 and
/// by the Fig. 5/6 benches.
std::vector<pipeline::TimedStage> pipelined_stages(
    const ZynqPlatform& platform, const StageTimes& times);

}  // namespace tincy::perf
