#include "perf/platform.hpp"

namespace tincy::perf {

double ZynqPlatform::first_layer_speedup(FirstLayerImpl impl) const {
  // §III-D measurements: 620 ms generic → 280 ms (gemmlowp, 2.2×) →
  // fused float 2.1× → specialized 160 / 140 / 120 ms.
  switch (impl) {
    case FirstLayerImpl::kGeneric:
      return 1.0;
    case FirstLayerImpl::kLowpGemm:
      return 2.2;
    case FirstLayerImpl::kFusedF32:
      return 2.1;
    case FirstLayerImpl::kSpecF32:
      return 620.0 / 160.0;
    case FirstLayerImpl::kSpecAcc32:
      return 620.0 / 140.0;
    case FirstLayerImpl::kSpecAcc16:
      return 620.0 / 120.0;
  }
  return 1.0;
}

}  // namespace tincy::perf
