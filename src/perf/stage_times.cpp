#include "perf/stage_times.hpp"

#include <cmath>

#include "core/errors.hpp"
#include "fabric/folding.hpp"
#include "fabric/pool_unit.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"

namespace tincy::perf {
namespace {

/// Index of the final convolutional layer (the 1×1 output conv).
int64_t output_conv_index(const nn::Network& net) {
  for (int64_t i = net.num_layers() - 1; i >= 0; --i)
    if (dynamic_cast<const nn::ConvLayer*>(&net.layer(i))) return i;
  throw Error("network has no convolutional layer");
}

}  // namespace

double generic_conv_ms(const nn::Network& net, int64_t layer_index,
                       const ZynqPlatform& p) {
  const auto* conv =
      dynamic_cast<const nn::ConvLayer*>(&net.layer(layer_index));
  TINCY_CHECK_MSG(conv != nullptr, "layer " << layer_index << " is not conv");
  const auto& g = conv->geometry();
  const double gemm_ops =
      2.0 * static_cast<double>(g.patch_size()) *
      static_cast<double>(conv->config().filters) *
      static_cast<double>(g.num_patches());
  double seconds = gemm_ops / p.scalar_gemm_ops_per_sec;
  if (g.kernel > 1) {
    // Explicit im2col materializes patch_size × num_patches elements.
    const double elems = static_cast<double>(g.patch_size()) *
                         static_cast<double>(g.num_patches());
    seconds += elems / p.im2col_elems_per_sec;
  }
  return seconds * 1000.0;
}

double pool_ms(const nn::Network& net, int64_t layer_index,
               const ZynqPlatform& p) {
  const auto* pool =
      dynamic_cast<const nn::MaxPoolLayer*>(&net.layer(layer_index));
  TINCY_CHECK_MSG(pool != nullptr, "layer " << layer_index << " is not pool");
  const Shape out = pool->output_shape();
  const double cmps = static_cast<double>(pool->config().size) *
                      static_cast<double>(pool->config().size) *
                      static_cast<double>(out.numel());
  return cmps / p.pool_cmps_per_sec * 1000.0;
}

double fabric_hidden_ms(const nn::Network& net, const ZynqPlatform& p) {
  const int64_t out_conv = output_conv_index(net);
  const auto& model = p.fabric_model;
  // Hidden region: everything after the input conv (and its optional
  // pool) up to the output conv. Convs run on the MVTU; each pool fuses
  // into the preceding conv's stage (no extra invocation).
  int64_t begin = 1;
  if (begin < net.num_layers() &&
      dynamic_cast<const nn::MaxPoolLayer*>(&net.layer(begin)))
    ++begin;

  double cycles = 0.0;
  for (int64_t i = begin; i < out_conv; ++i) {
    if (const auto* conv =
            dynamic_cast<const nn::ConvLayer*>(&net.layer(i))) {
      const auto& g = conv->geometry();
      const fabric::MatrixShape m{conv->config().filters, g.patch_size()};
      cycles += static_cast<double>(fabric::fold_cycles_per_layer(
          m, model.folding, /*act_bits=*/3, g.num_patches()));
      // Weight streaming (layer-at-a-time) and feature-map DMA.
      const double weight_bits = static_cast<double>(m.rows * m.cols);
      const double in_bits =
          static_cast<double>(g.in_channels * g.in_height * g.in_width) * 3;
      const double out_bits =
          static_cast<double>(conv->output_shape().numel()) * 3;
      cycles += (weight_bits + in_bits + out_bits) / model.ddr_bits_per_cycle;
      cycles += static_cast<double>(model.invocation_overhead_cycles);
    } else if (const auto* pool = dynamic_cast<const nn::MaxPoolLayer*>(
                   &net.layer(i))) {
      const Shape in = net.layer_input_shape(i);
      const fabric::PoolSpec ps{in.channels(), in.height(), in.width(),
                                pool->config().size, pool->config().stride};
      cycles += static_cast<double>(
          fabric::pool_cycles(ps, model.folding.pe));
    }
  }
  return cycles / (model.clock_mhz * 1e3);
}

StageTimes model_stage_times(const nn::Network& net, const ZynqPlatform& p,
                             FirstLayerImpl first, HiddenImpl hidden) {
  const int64_t out_conv = output_conv_index(net);
  TINCY_CHECK_MSG(out_conv >= 1, "degenerate topology");

  StageTimes t;
  t.acquisition_ms = p.acquisition_ms;
  t.box_drawing_ms = p.box_drawing_ms;
  t.image_output_ms = p.image_output_ms;

  t.input_layer_ms =
      generic_conv_ms(net, 0, p) / p.first_layer_speedup(first);

  int64_t hidden_begin = 1;
  if (dynamic_cast<const nn::MaxPoolLayer*>(&net.layer(1))) {
    t.first_pool_ms = pool_ms(net, 1, p);
    hidden_begin = 2;
  }

  if (hidden == HiddenImpl::kFabric) {
    t.hidden_layers_ms = fabric_hidden_ms(net, p);
  } else {
    for (int64_t i = hidden_begin; i < out_conv; ++i) {
      if (dynamic_cast<const nn::ConvLayer*>(&net.layer(i)))
        t.hidden_layers_ms += generic_conv_ms(net, i, p);
      else if (dynamic_cast<const nn::MaxPoolLayer*>(&net.layer(i)))
        t.hidden_layers_ms += pool_ms(net, i, p);
    }
  }

  t.output_layer_ms = generic_conv_ms(net, out_conv, p);
  return t;
}

}  // namespace tincy::perf
