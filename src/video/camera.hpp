#pragma once

/// \file camera.hpp
/// Synthetic camera: the video source of the reproduction. Renders a scene
/// of moving SynthVOC-style objects, so every captured frame comes with
/// exact ground truth. The "video source is always available" property the
/// paper's scheduler relies on holds: read_frame() never blocks on data.

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "detect/box.hpp"
#include "video/frame.hpp"

namespace tincy::video {

struct CameraConfig {
  int64_t width = 128;
  int64_t height = 96;
  int num_objects = 2;
  int num_classes = 3;
  float speed = 0.01f;  ///< per-frame motion, fraction of image
  uint64_t seed = 7;
};

class SyntheticCamera {
 public:
  explicit SyntheticCamera(CameraConfig cfg);

  /// Captures the next frame (advances the scene). Stage #0 of Fig. 5.
  Frame read_frame();

  int64_t frames_captured() const { return next_sequence_; }
  const CameraConfig& config() const { return cfg_; }

 private:
  struct Object {
    float cx, cy, w, h;
    float vx, vy;
    int class_id;
  };

  CameraConfig cfg_;
  Rng rng_;
  std::vector<Object> objects_;
  int64_t next_sequence_ = 0;
};

}  // namespace tincy::video
