#pragma once

/// \file frame.hpp
/// A video frame moving through the processing pipeline, carrying its
/// capture sequence number (the pipeline must keep frames in order) and
/// the annotations attached along the way.

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"
#include "detect/box.hpp"

namespace tincy::video {

struct Frame {
  int64_t sequence = -1;           ///< capture order, 0-based
  Tensor image;                    ///< (3, H, W) RGB in [0, 1]
  Tensor boxed;                    ///< letterboxed network input (stage #1)
  Tensor features;                 ///< network output feature map
  std::vector<detect::Detection> detections;  ///< after object boxing
  std::vector<detect::GroundTruth> truth;     ///< synthetic camera's GT
};

}  // namespace tincy::video
