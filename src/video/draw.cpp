#include "video/draw.hpp"

#include <algorithm>

#include "core/errors.hpp"

namespace tincy::video {
namespace {

// 8 distinguishable outline colors, indexed by class id modulo 8.
constexpr float kColors[8][3] = {
    {1.0f, 0.2f, 0.2f}, {0.2f, 1.0f, 0.2f}, {0.3f, 0.4f, 1.0f},
    {1.0f, 1.0f, 0.2f}, {1.0f, 0.3f, 1.0f}, {0.2f, 1.0f, 1.0f},
    {1.0f, 0.6f, 0.2f}, {0.9f, 0.9f, 0.9f}};

void fill_rect(Tensor& image, int64_t x0, int64_t y0, int64_t x1, int64_t y1,
               const float* rgb) {
  const int64_t H = image.shape().height(), W = image.shape().width();
  x0 = std::clamp<int64_t>(x0, 0, W - 1);
  x1 = std::clamp<int64_t>(x1, 0, W - 1);
  y0 = std::clamp<int64_t>(y0, 0, H - 1);
  y1 = std::clamp<int64_t>(y1, 0, H - 1);
  for (int64_t y = y0; y <= y1; ++y)
    for (int64_t x = x0; x <= x1; ++x)
      for (int c = 0; c < 3; ++c) image.at(c, y, x) = rgb[c];
}

}  // namespace

void draw_detections(Tensor& image,
                     const std::vector<detect::Detection>& detections,
                     int thickness) {
  TINCY_CHECK(image.shape().rank() == 3 && image.shape().channels() == 3);
  TINCY_CHECK(thickness >= 1);
  const int64_t H = image.shape().height(), W = image.shape().width();
  const int64_t t = thickness;
  for (const auto& d : detections) {
    const float* rgb = kColors[(d.class_id >= 0 ? d.class_id : 0) % 8];
    const auto x0 = static_cast<int64_t>(d.box.left() * static_cast<float>(W));
    const auto x1 = static_cast<int64_t>(d.box.right() * static_cast<float>(W));
    const auto y0 = static_cast<int64_t>(d.box.top() * static_cast<float>(H));
    const auto y1 =
        static_cast<int64_t>(d.box.bottom() * static_cast<float>(H));
    fill_rect(image, x0, y0, x1, y0 + t - 1, rgb);      // top edge
    fill_rect(image, x0, y1 - t + 1, x1, y1, rgb);      // bottom edge
    fill_rect(image, x0, y0, x0 + t - 1, y1, rgb);      // left edge
    fill_rect(image, x1 - t + 1, y0, x1, y1, rgb);      // right edge
  }
}

}  // namespace tincy::video
