#pragma once

/// \file draw.hpp
/// Box drawing — the annotation overlay stage (Fig. 5 stage N+3, "Frame
/// Drawing"; Table III "Box Drawing").

#include <vector>

#include "core/tensor.hpp"
#include "detect/box.hpp"

namespace tincy::video {

/// Draws a rectangle outline for each detection into `image` (3, H, W),
/// color-coded by class, `thickness` pixels wide. Boxes are normalized;
/// out-of-image portions are clipped.
void draw_detections(Tensor& image,
                     const std::vector<detect::Detection>& detections,
                     int thickness = 2);

}  // namespace tincy::video
