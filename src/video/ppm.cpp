#include "video/ppm.hpp"

#include <algorithm>
#include <fstream>

#include "core/errors.hpp"

namespace tincy::video {

void write_ppm(const std::string& path, const Tensor& image) {
  TINCY_CHECK(image.shape().rank() == 3 && image.shape().channels() == 3);
  const int64_t H = image.shape().height(), W = image.shape().width();
  std::ofstream out(path, std::ios::binary);
  TINCY_CHECK_MSG(out.is_open(), "cannot open " << path);
  out << "P6\n" << W << ' ' << H << "\n255\n";
  std::vector<unsigned char> row(static_cast<size_t>(W) * 3);
  for (int64_t y = 0; y < H; ++y) {
    for (int64_t x = 0; x < W; ++x)
      for (int c = 0; c < 3; ++c)
        row[static_cast<size_t>(x * 3 + c)] = static_cast<unsigned char>(
            std::clamp(image.at(c, y, x), 0.0f, 1.0f) * 255.0f + 0.5f);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  TINCY_CHECK_MSG(static_cast<bool>(out), "short write to " << path);
}

Tensor read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TINCY_CHECK_MSG(in.is_open(), "cannot open " << path);
  std::string magic;
  int64_t w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  TINCY_CHECK_MSG(magic == "P6" && w > 0 && h > 0 && maxval == 255,
                  "unsupported PPM header in " << path);
  in.get();  // single whitespace after maxval
  Tensor image(Shape{3, h, w});
  std::vector<unsigned char> row(static_cast<size_t>(w) * 3);
  for (int64_t y = 0; y < h; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    TINCY_CHECK_MSG(static_cast<bool>(in), "truncated PPM " << path);
    for (int64_t x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        image.at(c, y, x) =
            static_cast<float>(row[static_cast<size_t>(x * 3 + c)]) / 255.0f;
  }
  return image;
}

}  // namespace tincy::video
