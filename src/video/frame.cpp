// frame.hpp is data-only; this translation unit anchors the target.
#include "video/frame.hpp"
