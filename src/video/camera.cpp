#include "video/camera.hpp"

#include <algorithm>
#include <cmath>

#include "data/synthvoc.hpp"

namespace tincy::video {

SyntheticCamera::SyntheticCamera(CameraConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  TINCY_CHECK(cfg.width >= 16 && cfg.height >= 16);
  TINCY_CHECK(cfg.num_objects >= 1 && cfg.num_classes >= 1);
  for (int i = 0; i < cfg.num_objects; ++i) {
    Object o;
    o.w = rng_.uniform(0.2f, 0.4f);
    o.h = rng_.uniform(0.2f, 0.4f);
    o.cx = rng_.uniform(o.w / 2, 1.0f - o.w / 2);
    o.cy = rng_.uniform(o.h / 2, 1.0f - o.h / 2);
    const float angle = rng_.uniform(0.0f, 6.2831853f);
    o.vx = cfg.speed * std::cos(angle);
    o.vy = cfg.speed * std::sin(angle);
    o.class_id = static_cast<int>(rng_.uniform_int(0, cfg.num_classes - 1));
    objects_.push_back(o);
  }
}

Frame SyntheticCamera::read_frame() {
  // Advance the scene: objects bounce off the image borders.
  for (Object& o : objects_) {
    o.cx += o.vx;
    o.cy += o.vy;
    if (o.cx - o.w / 2 < 0.0f || o.cx + o.w / 2 > 1.0f) {
      o.vx = -o.vx;
      o.cx = std::clamp(o.cx, o.w / 2, 1.0f - o.w / 2);
    }
    if (o.cy - o.h / 2 < 0.0f || o.cy + o.h / 2 > 1.0f) {
      o.vy = -o.vy;
      o.cy = std::clamp(o.cy, o.h / 2, 1.0f - o.h / 2);
    }
  }

  Frame f;
  f.sequence = next_sequence_++;
  f.image = Tensor(Shape{3, cfg_.height, cfg_.width}, 0.4f);
  // Mild texture so the frame is not flat.
  for (int64_t i = 0; i < f.image.numel(); ++i)
    f.image[i] =
        std::clamp(f.image[i] + rng_.normal(0.0f, 0.03f), 0.0f, 1.0f);
  for (const Object& o : objects_) {
    detect::GroundTruth gt;
    gt.box = {o.cx, o.cy, o.w, o.h};
    gt.class_id = o.class_id;
    data::render_object(f.image, gt);
    f.truth.push_back(gt);
  }
  return f;
}

}  // namespace tincy::video
