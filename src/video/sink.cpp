#include "video/sink.hpp"

namespace tincy::video {

void OrderCheckingSink::push(const Frame& frame) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mutex_);
  if (sequences_.empty()) first_ = now;
  last_ = now;
  sequences_.push_back(frame.sequence);
}

int64_t OrderCheckingSink::frames_received() const {
  std::lock_guard lock(mutex_);
  return static_cast<int64_t>(sequences_.size());
}

bool OrderCheckingSink::in_order() const {
  std::lock_guard lock(mutex_);
  for (size_t i = 1; i < sequences_.size(); ++i)
    if (sequences_[i] <= sequences_[i - 1]) return false;
  return true;
}

double OrderCheckingSink::fps() const {
  std::lock_guard lock(mutex_);
  if (sequences_.size() < 2) return 0.0;
  const double seconds =
      std::chrono::duration<double>(last_ - first_).count();
  return seconds > 0.0
             ? static_cast<double>(sequences_.size() - 1) / seconds
             : 0.0;
}

std::vector<int64_t> OrderCheckingSink::sequences() const {
  std::lock_guard lock(mutex_);
  return sequences_;
}

}  // namespace tincy::video
