#pragma once

/// \file sink.hpp
/// Video sinks. The paper outputs to X11; here the default sink verifies
/// the pipeline's ordering contract ("this scheme of job scheduling
/// prevents that one frame overtakes another") and accumulates throughput
/// statistics. "The video sink is always free": push() never blocks.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "video/frame.hpp"

namespace tincy::video {

class OrderCheckingSink {
 public:
  /// Consumes a finished frame; thread-safe. Records arrival order.
  void push(const Frame& frame);

  int64_t frames_received() const;

  /// True iff every frame arrived in strictly increasing sequence order.
  bool in_order() const;

  /// Wall-clock frames per second between the first and last push
  /// (0 before the second frame).
  double fps() const;

  /// Received sequence numbers in arrival order.
  std::vector<int64_t> sequences() const;

 private:
  mutable std::mutex mutex_;
  std::vector<int64_t> sequences_;
  std::chrono::steady_clock::time_point first_, last_;
};

}  // namespace tincy::video
