#pragma once

/// \file ppm.hpp
/// Minimal binary PPM (P6) image output so examples can save annotated
/// frames for inspection without any image-library dependency.

#include <string>

#include "core/tensor.hpp"

namespace tincy::video {

/// Writes a (3, H, W) float image in [0, 1] as binary PPM.
void write_ppm(const std::string& path, const Tensor& image);

/// Reads a binary PPM back into a (3, H, W) float tensor (for tests).
Tensor read_ppm(const std::string& path);

}  // namespace tincy::video
