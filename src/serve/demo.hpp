#pragma once

/// \file demo.hpp
/// Bridges the Fig. 5 demo pipeline into the serving layer: builds a
/// session's ServeStage chain from a network by reusing
/// pipeline::make_demo_stages and tagging which stages contend for the
/// shared fabric engine. Every session gets its own network instance —
/// sessions share no activation storage, only the (arbitrated) engine.

#include <vector>

#include "nn/network.hpp"
#include "pipeline/demo.hpp"
#include "serve/server.hpp"

namespace tincy::serve {

/// Which stages of a session require the exclusive engine grant.
enum class EnginePolicy {
  kNone,           ///< pure-CPU session (float nets, tests)
  kOffloadLayers,  ///< stages wrapping an [offload] layer (Fig. 3/4 path)
  /// The paper's split: every hidden layer (all but the first conv, the
  /// last conv and the region layer) runs on the time-shared PL engine.
  kHiddenLayers,
};

/// Builds the demo stage list around `net` (read_frame, letterbox, one
/// stage per layer, object boxing, frame drawing) and marks engine stages
/// per `policy`. The network outlives the session; concurrent frames use
/// per-frame buffers exactly as in the single-stream demo.
std::vector<ServeStage> demo_session_stages(nn::Network& net,
                                            const pipeline::DemoConfig& cfg,
                                            EnginePolicy policy);

}  // namespace tincy::serve
