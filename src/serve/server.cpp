#include "serve/server.hpp"

#include <algorithm>
#include <chrono>

#include "core/errors.hpp"

namespace tincy::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Session names become metric-name components (cf. pipeline stages).
std::string metric_label(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), ' ', '_');
  return out;
}

}  // namespace

StreamServer::StreamServer(ServerOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics ? options_.metrics
                                : &telemetry::MetricsRegistry::global()),
      arbiter_(metrics_) {
  TINCY_CHECK_MSG(options_.num_workers >= 1,
                  "num_workers " << options_.num_workers);
}

StreamServer::~StreamServer() { stop(); }

int64_t StreamServer::open_session(SessionConfig cfg) {
  TINCY_CHECK_MSG(!cfg.stages.empty(), "session needs at least one stage");
  TINCY_CHECK_MSG(cfg.queue_capacity >= 1,
                  "queue_capacity " << cfg.queue_capacity);
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(!running_, "open_session() while the server is running");
  const int64_t id = static_cast<int64_t>(sessions_.size());
  auto s = std::make_unique<Session>();
  s->cfg = std::move(cfg);
  if (s->cfg.name.empty()) s->cfg.name = "s" + std::to_string(id);
  s->slots.resize(s->cfg.stages.size());
  const std::string prefix =
      "serve.session." + metric_label(s->cfg.name) + ".";
  s->frames_counter = &metrics_->counter(prefix + "frames");
  s->latency_hist = &metrics_->histogram(prefix + "latency_ms");
  s->rejected_counter = &metrics_->counter(prefix + "rejected");
  arbiter_.add_session(id, s->cfg.weight);
  sessions_.push_back(std::move(s));
  return id;
}

void StreamServer::start() {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(!running_, "start() while already running");
  TINCY_CHECK_MSG(!sessions_.empty(), "start() with no sessions");
  for (auto& s : sessions_) {
    s->queue.clear();
    s->submit_times.clear();
    s->slots.assign(s->cfg.stages.size(), Slot{});
    s->admitted = 0;
    s->done = 0;
    s->frames_counter->reset();
    s->latency_hist->reset();
    s->rejected_counter->reset();
  }
  rr_next_ = 0;
  stopping_ = false;
  running_ = true;
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ServeResult StreamServer::submit(int64_t session, video::Frame frame) {
  std::unique_lock lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  Session& s = *sessions_[static_cast<size_t>(session)];
  if (!running_ || stopping_) return ServeResult::kClosed;
  if (static_cast<int64_t>(s.queue.size()) >= s.cfg.queue_capacity) {
    s.rejected_counter->add(1);
    return ServeResult::kOverloaded;
  }
  s.queue.push_back(std::move(frame));
  s.submit_times.push_back(std::chrono::steady_clock::now());
  ++s.admitted;
  lock.unlock();
  cv_.notify_all();
  return ServeResult::kAccepted;
}

bool StreamServer::find_job_locked(Job& job) {
  const size_t n = sessions_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t si = (rr_next_ + k) % n;
    Session& s = *sessions_[si];
    for (int64_t i = static_cast<int64_t>(s.cfg.stages.size()) - 1; i >= 0;
         --i) {
      Slot& out = s.slots[static_cast<size_t>(i)];
      if (out.reserved || out.frame.has_value()) continue;  // output not free
      const bool input_ready =
          i == 0 ? !s.queue.empty()
                 : s.slots[static_cast<size_t>(i - 1)].frame.has_value();
      if (!input_ready) continue;
      // Engine-tagged stages are claimed together with the engine grant;
      // a refusal leaves a maturing claim with the arbiter and the scan
      // moves on to overlappable CPU work of other sessions.
      const bool engine = s.cfg.stages[static_cast<size_t>(i)].uses_engine;
      if (engine && !arbiter_.try_acquire(static_cast<int64_t>(si))) continue;
      job = Job{static_cast<int64_t>(si), i, engine};
      rr_next_ = (si + 1) % n;
      return true;
    }
  }
  return false;
}

void StreamServer::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    Job job;
    // stopping_ is tested first: once a stop is requested no new job (and
    // in particular no engine grant) is claimed.
    cv_.wait(lock, [&] { return stopping_ || find_job_locked(job); });
    if (stopping_) return;

    Session& s = *sessions_[static_cast<size_t>(job.session)];
    Slot& out = s.slots[static_cast<size_t>(job.stage)];
    out.reserved = true;
    video::Frame frame;
    if (job.stage == 0) {
      frame = std::move(s.queue.front());
      s.queue.pop_front();
    } else {
      Slot& in = s.slots[static_cast<size_t>(job.stage - 1)];
      frame = std::move(*in.frame);
      in.frame.reset();  // input buffer becomes free (Fig. 6)
    }
    lock.unlock();
    cv_.notify_all();  // freed queue space / input slot enables upstream

    s.cfg.stages[static_cast<size_t>(job.stage)].work(frame);
    const bool last =
        job.stage == static_cast<int64_t>(s.cfg.stages.size()) - 1;
    // Delivery happens outside the lock but is serialized per session by
    // the reserved last-stage slot, so results leave in order.
    if (last && s.cfg.deliver) s.cfg.deliver(std::move(frame));
    if (job.engine) arbiter_.release(job.session);

    lock.lock();
    out.reserved = false;
    if (last) {
      ++s.done;
      s.frames_counter->add(1);
      s.latency_hist->record(ms_between(s.submit_times.front(),
                                        std::chrono::steady_clock::now()));
      s.submit_times.pop_front();
    } else {
      out.frame = std::move(frame);
    }
    lock.unlock();
    cv_.notify_all();  // deposited output / delivery may unblock drain()
    lock.lock();
  }
}

void StreamServer::drain() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] {
    if (stopping_ || !running_) return true;
    for (const auto& s : sessions_)
      if (s->done != s->admitted) return false;
    return true;
  });
}

void StreamServer::stop() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    to_join.swap(workers_);
  }
  cv_.notify_all();
  // Joining guarantees in-flight stages finished their buffer handoff
  // (workers only exit at the scheduler wait point) before session state
  // is touched below or the server is destroyed.
  for (auto& t : to_join) t.join();
  {
    std::lock_guard lock(mutex_);
    running_ = false;
    for (size_t i = 0; i < sessions_.size(); ++i)
      arbiter_.cancel(static_cast<int64_t>(i));
  }
  cv_.notify_all();
}

bool StreamServer::running() const {
  std::lock_guard lock(mutex_);
  return running_ && !stopping_;
}

int64_t StreamServer::num_sessions() const {
  std::lock_guard lock(mutex_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t StreamServer::queue_depth(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return static_cast<int64_t>(
      sessions_[static_cast<size_t>(session)]->queue.size());
}

int64_t StreamServer::delivered(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->done;
}

int64_t StreamServer::rejected(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->rejected_counter->value();
}

}  // namespace tincy::serve
