#include "serve/server.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/errors.hpp"

namespace tincy::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Session names become metric-name components and flight-recorder file
/// names: anything outside [A-Za-z0-9._-] is mapped to '_' so a name
/// containing '"', '\', '/' or other punctuation can never corrupt a
/// metric name, a JSON export or a dump path.
std::string metric_label(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                    c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

StreamServer::StreamServer(ServerOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics ? options_.metrics
                                : &telemetry::MetricsRegistry::global()),
      trace_(options_.trace ? options_.trace
                            : &telemetry::TraceCollector::global()),
      arbiter_(metrics_, options_.arbiter) {
  TINCY_CHECK_MSG(options_.num_workers >= 1,
                  "num_workers " << options_.num_workers);
  TINCY_CHECK_MSG(options_.degrade_at > 0.0 && options_.degrade_at <= 1.0,
                  "degrade_at " << options_.degrade_at
                                << " outside (0, 1]");
  TINCY_CHECK_MSG(options_.flight_recorder_events >= 1,
                  "flight_recorder_events "
                      << options_.flight_recorder_events);
}

StreamServer::~StreamServer() { stop(); }

int64_t StreamServer::open_session(SessionConfig cfg) {
  TINCY_CHECK_MSG(!cfg.stages.empty(), "session needs at least one stage");
  for (const auto& st : cfg.stages) {
    TINCY_CHECK_MSG(st.work || st.batch_work,
                    "stage '" << st.name << "' needs work or batch_work");
    TINCY_CHECK_MSG(!st.batch_work || st.uses_engine,
                    "stage '" << st.name
                              << "' has batch_work but not uses_engine");
    TINCY_CHECK_MSG(st.engine_layer < 0 || (st.uses_engine && st.batch_work),
                    "stage '" << st.name << "' names engine_layer "
                              << st.engine_layer
                              << " but lacks uses_engine+batch_work");
  }
  TINCY_CHECK_MSG(cfg.queue_capacity >= 1,
                  "queue_capacity " << cfg.queue_capacity);
  TINCY_CHECK_MSG(cfg.weight >= 1, "weight " << cfg.weight);
  TINCY_CHECK_MSG(cfg.priority >= 0, "priority " << cfg.priority);
  TINCY_CHECK_MSG(cfg.name.size() <= 100,
                  "session name of " << cfg.name.size()
                                     << " chars exceeds the 100-char limit");
  std::unique_lock lock(mutex_);
  const int64_t id = static_cast<int64_t>(sessions_.size());
  auto s = std::make_unique<Session>();
  s->cfg = std::move(cfg);
  if (s->cfg.name.empty()) s->cfg.name = "s" + std::to_string(id);
  // Normalize once so the session name, its metric names and its
  // flight-recorder file all agree (and stay JSON/path-safe).
  s->cfg.name = metric_label(s->cfg.name);
  s->slots.resize(s->cfg.stages.size());
  s->stage_trace_names.reserve(s->cfg.stages.size());
  for (const auto& st : s->cfg.stages)
    s->stage_trace_names.push_back("stage:" + st.name);
  const std::string prefix = "serve.session." + s->cfg.name + ".";
  s->frames_counter = &metrics_->counter(prefix + "frames");
  s->latency_hist = &metrics_->histogram(prefix + "latency_ms");
  s->latency_window = &metrics_->windowed_histogram(prefix + "latency_ms.window");
  s->fps_window = &metrics_->windowed_rate(prefix + "fps.window");
  s->queue_depth_gauge = &metrics_->gauge(prefix + "queue_depth");
  s->rejected_counter = &metrics_->counter(prefix + "rejected");
  s->shed_counter = &metrics_->counter(prefix + "shed");
  s->degraded_counter = &metrics_->counter(prefix + "degraded");
  s->dropped_counter = &metrics_->counter(prefix + "dropped");
  s->faults_counter = &metrics_->counter(prefix + "faults");
  s->quarantined_gauge = &metrics_->gauge(prefix + "quarantined");
  arbiter_.add_session(id, s->cfg.weight, s->cfg.priority);
  sessions_.push_back(std::move(s));
  lock.unlock();
  cv_.notify_all();  // live churn: workers should see the new session
  return id;
}

void StreamServer::close_session(int64_t session) {
  std::unique_lock lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  Session& s = *sessions_[static_cast<size_t>(session)];
  if (s.closed) return;
  s.closed = true;
  // Frames that never entered the stage chain are dropped; in-flight
  // frames (slots + running stages) keep their submit_times front entries
  // and finish to delivery.
  const int64_t queued = static_cast<int64_t>(s.queue.size());
  if (queued > 0) {
    if (trace_->enabled()) {
      for (const auto& f : s.queue) {
        trace_->async_end("queue", session, f.sequence);
        trace_->async_end("frame", session, f.sequence,
                          "\"outcome\":\"dropped\"");
      }
    }
    s.queue.clear();
    s.submit_times.erase(s.submit_times.end() - queued, s.submit_times.end());
    s.discarded += queued;
    s.dropped_counter->add(queued);
  }
  // Withdraw any maturing engine claim: the work it was for may just have
  // been dropped, and a pending claim with no future acquire would hold
  // back every other session. In-flight frames that still need the engine
  // simply re-claim on their next scan.
  arbiter_.cancel(session);
  maybe_retire_locked(session);
  lock.unlock();
  cv_.notify_all();  // drain() may be satisfied now
}

void StreamServer::start() {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(!running_, "start() while already running");
  TINCY_CHECK_MSG(!sessions_.empty(), "start() with no sessions");
  for (size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = *sessions_[i];
    reset_session_locked(s);
    // Retired sessions were forgotten by the arbiter; re-registering all
    // of them (remove is a no-op for the still-known ones) restarts every
    // session at the virtual-time floor.
    arbiter_.remove_session(static_cast<int64_t>(i));
    arbiter_.add_session(static_cast<int64_t>(i), s.cfg.weight,
                         s.cfg.priority);
  }
  rr_next_ = 0;
  // grant_seq_/wait_seq_ deliberately keep counting across start() calls
  // so trace ids stay unique over a whole process's trace.
  start_time_ = std::chrono::steady_clock::now();
  stopping_ = false;
  running_ = true;
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ServeResult StreamServer::submit(int64_t session, video::Frame frame) {
  std::unique_lock lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  Session& s = *sessions_[static_cast<size_t>(session)];
  if (!running_ || stopping_) return ServeResult::kClosed;
  if (s.quarantined) return ServeResult::kQuarantined;
  if (s.closed) return ServeResult::kClosed;
  if (static_cast<int64_t>(s.queue.size()) >= s.cfg.queue_capacity) {
    if (options_.overload_policy == OverloadPolicy::kShedOldest &&
        !s.queue.empty()) {
      // Freshness wins: evict the stalest *queued* frame (in-flight ones
      // are untouchable) to make room. Its timestamp sits right after the
      // in-flight block at the front of submit_times.
      const size_t in_flight = s.submit_times.size() - s.queue.size();
      if (trace_->enabled()) {
        const int64_t shed_seq = s.queue.front().sequence;
        trace_->async_end("queue", session, shed_seq);
        trace_->async_end("frame", session, shed_seq,
                          "\"outcome\":\"shed\"");
      }
      s.queue.pop_front();
      s.submit_times.erase(s.submit_times.begin() +
                           static_cast<std::ptrdiff_t>(in_flight));
      ++s.discarded;
      s.shed_counter->add(1);
    } else {
      s.rejected_counter->add(1);
      return ServeResult::kOverloaded;
    }
  }
  if (options_.overload_policy == OverloadPolicy::kDegrade && s.cfg.degrade) {
    const auto mark = static_cast<int64_t>(std::ceil(
        options_.degrade_at * static_cast<double>(s.cfg.queue_capacity)));
    if (static_cast<int64_t>(s.queue.size()) >= std::max<int64_t>(1, mark)) {
      s.cfg.degrade(frame);
      s.degraded_counter->add(1);
    }
  }
  if (trace_->enabled()) {
    trace_->async_begin("frame", session, frame.sequence);
    trace_->async_begin("queue", session, frame.sequence);
  }
  s.queue.push_back(std::move(frame));
  s.submit_times.push_back(std::chrono::steady_clock::now());
  ++s.admitted;
  lock.unlock();
  cv_.notify_all();
  return ServeResult::kAccepted;
}

void StreamServer::trace_engine_granted_locked(Session& s, int64_t session,
                                               int64_t layer) {
  if (s.engine_wait_start_ms < 0) return;
  if (trace_->enabled()) {
    // The wait is only known retroactively, at grant time, and the
    // denial may have been observed by another worker — so it cannot be
    // a complete span on this thread's track (it would overlap spans
    // that ran here in the meantime). An async pair with its own id
    // keeps it an honest cross-thread interval.
    const double now = trace_->now_ms();
    const int64_t wait_id = wait_seq_++;
    char args[64];
    std::snprintf(args, sizeof args, "\"layer\":%lld,\"wait_ms\":%.3f",
                  static_cast<long long>(layer),
                  now - s.engine_wait_start_ms);
    trace_->emit(telemetry::TracePhase::kAsyncBegin, "arbiter.wait", session,
                 wait_id, args, 0.0, s.engine_wait_start_ms);
    trace_->emit(telemetry::TracePhase::kAsyncEnd, "arbiter.wait", session,
                 wait_id, args, 0.0, now);
  }
  s.engine_wait_start_ms = -1.0;
}

bool StreamServer::find_job_locked(Job& job) {
  const size_t n = sessions_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t si = (rr_next_ + k) % n;
    Session& s = *sessions_[si];
    // Quarantined sessions hold no claimable frames (they were discarded
    // at the poison point); retired ones additionally left the arbiter.
    if (s.retired || s.quarantined) continue;
    for (int64_t i = static_cast<int64_t>(s.cfg.stages.size()) - 1; i >= 0;
         --i) {
      Slot& out = s.slots[static_cast<size_t>(i)];
      if (out.reserved || out.frame.has_value()) continue;  // output not free
      const bool input_ready =
          i == 0 ? !s.queue.empty()
                 : s.slots[static_cast<size_t>(i - 1)].frame.has_value();
      if (!input_ready) continue;
      const ServeStage& st = s.cfg.stages[static_cast<size_t>(i)];
      if (!st.uses_engine) {
        job.members.assign(1, Claim{static_cast<int64_t>(si), i});
        job.engine = false;
        rr_next_ = (si + 1) % n;
        return true;
      }
      // Engine-tagged stages are claimed together with the engine grant;
      // a refusal leaves a maturing claim with the arbiter and the scan
      // moves on to overlappable CPU work of other sessions.
      if (st.engine_layer < 0) {
        if (!arbiter_.try_acquire(static_cast<int64_t>(si))) {
          if (s.engine_wait_start_ms < 0 && trace_->enabled())
            s.engine_wait_start_ms = trace_->now_ms();
          continue;
        }
        trace_engine_granted_locked(s, static_cast<int64_t>(si),
                                    st.engine_layer);
        job.members.assign(1, Claim{static_cast<int64_t>(si), i});
        job.engine = true;
        rr_next_ = (si + 1) % n;
        return true;
      }
      // Gang-schedulable stage: collect every other session with a
      // runnable frame at the same offloaded layer right now — all
      // verified under this lock, so a grant can claim them atomically.
      std::vector<int64_t> cands;
      std::vector<int64_t> cand_stage(n, -1);
      for (size_t oj = 0; oj < n; ++oj) {
        if (oj == si) continue;
        Session& o = *sessions_[oj];
        if (o.retired || o.quarantined) continue;
        for (int64_t m = static_cast<int64_t>(o.cfg.stages.size()) - 1;
             m >= 0; --m) {
          const ServeStage& om = o.cfg.stages[static_cast<size_t>(m)];
          if (!om.uses_engine || om.engine_layer != st.engine_layer) continue;
          Slot& oout = o.slots[static_cast<size_t>(m)];
          if (oout.reserved || oout.frame.has_value()) continue;
          const bool oready =
              m == 0 ? !o.queue.empty()
                     : o.slots[static_cast<size_t>(m - 1)].frame.has_value();
          if (!oready) continue;
          cands.push_back(static_cast<int64_t>(oj));
          cand_stage[oj] = m;
          break;  // deepest runnable same-layer stage of this session
        }
      }
      std::vector<int64_t> gang;
      if (!arbiter_.try_acquire_gang(static_cast<int64_t>(si),
                                     st.engine_layer, cands, gang)) {
        if (s.engine_wait_start_ms < 0 && trace_->enabled())
          s.engine_wait_start_ms = trace_->now_ms();
        continue;
      }
      trace_engine_granted_locked(s, static_cast<int64_t>(si),
                                  st.engine_layer);
      job.members.clear();
      job.members.push_back(Claim{static_cast<int64_t>(si), i});
      for (size_t g = 1; g < gang.size(); ++g)
        job.members.push_back(
            Claim{gang[g], cand_stage[static_cast<size_t>(gang[g])]});
      job.engine = true;
      rr_next_ = (si + 1) % n;
      return true;
    }
  }
  return false;
}

void StreamServer::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    Job job;
    // stopping_ is tested first: once a stop is requested no new job (and
    // in particular no engine grant) is claimed. While a gang leader
    // lingers for more peers the wait is timed, so a worker re-attempts
    // the acquisition right after the linger deadline even if nothing
    // else wakes it.
    while (!stopping_ && !find_job_locked(job)) {
      if (const auto deadline = arbiter_.linger_deadline())
        cv_.wait_until(lock, *deadline + std::chrono::microseconds(10));
      else
        cv_.wait(lock);
    }
    if (stopping_) return;

    // Claim every member's input under the same lock hold that formed the
    // gang — the candidates were verified runnable by find_job_locked.
    // Session pointers are pinned here too: the sessions_ vector may be
    // reallocated by a concurrent open_session once the lock drops, but
    // the Session objects themselves are heap-stable.
    const size_t nm = job.members.size();
    std::vector<video::Frame> frames(nm);
    std::vector<int64_t> seqs(nm, -1);
    std::vector<Session*> member_sessions(nm);
    for (size_t m = 0; m < nm; ++m) {
      Session& ms = *sessions_[static_cast<size_t>(job.members[m].session)];
      member_sessions[m] = &ms;
      Slot& mout = ms.slots[static_cast<size_t>(job.members[m].stage)];
      mout.reserved = true;
      if (job.members[m].stage == 0) {
        // Admission-queue dwell of the claimed frame: its submission
        // timestamp sits right after the in-flight block. Feeds the
        // Little's-law queue_depth gauge (Σ dwell / elapsed) and closes
        // the frame's "queue" trace span.
        const auto now = std::chrono::steady_clock::now();
        const size_t in_flight = ms.submit_times.size() - ms.queue.size();
        const double dwell = ms_between(ms.submit_times[in_flight], now);
        ms.queue_wait_ms += dwell;
        ms.queue_depth_gauge->set(
            ms.queue_wait_ms / std::max(ms_between(start_time_, now), 1e-6));
        frames[m] = std::move(ms.queue.front());
        ms.queue.pop_front();
        if (trace_->enabled()) {
          char args[48];
          std::snprintf(args, sizeof args, "\"dwell_ms\":%.3f", dwell);
          trace_->async_end("queue", job.members[m].session,
                            frames[m].sequence, args);
        }
      } else {
        Slot& min = ms.slots[static_cast<size_t>(job.members[m].stage - 1)];
        frames[m] = std::move(*min.frame);
        min.frame.reset();  // input buffer becomes free (Fig. 6)
      }
      seqs[m] = frames[m].sequence;
    }
    if (job.engine && trace_->enabled()) {
      // One seat instant per gang member; the leader carries the batch
      // size, so trace accounting can be checked against
      // serve.arbiter.batch_size (tools/check_metrics --trace).
      const int64_t grant = grant_seq_++;
      char args[96];
      std::snprintf(args, sizeof args,
                    "\"role\":\"leader\",\"grant\":%lld,\"batch\":%zu",
                    static_cast<long long>(grant), nm);
      trace_->instant("gang", job.members[0].session, seqs[0], args);
      for (size_t m = 1; m < nm; ++m) {
        std::snprintf(args, sizeof args,
                      "\"role\":\"member\",\"grant\":%lld",
                      static_cast<long long>(grant));
        trace_->instant("gang", job.members[m].session, seqs[m], args);
      }
    }
    lock.unlock();
    cv_.notify_all();  // freed queue space / input slots enable upstream

    // The leader's callback runs the whole gang: one engine hold, one
    // weight-streaming phase. A throw faults every member — their frames
    // were in the same pass.
    Session& ls = *member_sessions[0];
    const ServeStage& lstage =
        ls.cfg.stages[static_cast<size_t>(job.members[0].stage)];
    bool faulted = false;
    std::string fault;
    {
      // Deep spans (net.layer, fabric, gemm) inherit the leader's frame
      // identity through the thread-local context.
      telemetry::ScopedTraceContext tctx(job.members[0].session, seqs[0]);
      telemetry::TraceSpan span(
          trace_, ls.stage_trace_names[static_cast<size_t>(
                      job.members[0].stage)],
          job.members[0].session, seqs[0]);
      if (span.active()) {
        char args[32];
        std::snprintf(args, sizeof args, "\"batch\":%zu", nm);
        span.set_args(args);
      }
      try {
        if (nm > 1 || !lstage.work) {
          std::vector<video::Frame*> ptrs(nm);
          for (size_t m = 0; m < nm; ++m) ptrs[m] = &frames[m];
          lstage.batch_work(std::span<video::Frame* const>(ptrs));
        } else {
          lstage.work(frames[0]);
        }
      } catch (const std::exception& e) {
        faulted = true;
        fault = e.what();
      } catch (...) {
        faulted = true;
        fault = "non-standard exception";
      }
    }
    std::vector<char> member_faulted(nm, faulted ? 1 : 0);
    std::vector<std::string> member_fault(nm, fault);
    // Delivery happens outside the lock but is serialized per session by
    // the reserved last-stage slot, so results leave in order. A sibling
    // stage may have poisoned a session while its frame was in the
    // stage; nothing is delivered past the poison point.
    for (size_t m = 0; m < nm; ++m) {
      if (member_faulted[m]) continue;
      Session& ms = *member_sessions[m];
      const bool last = job.members[m].stage ==
                        static_cast<int64_t>(ms.cfg.stages.size()) - 1;
      if (!last || !ms.cfg.deliver) continue;
      lock.lock();
      const bool deliverable = !ms.quarantined;
      lock.unlock();
      if (!deliverable) continue;
      telemetry::TraceSpan deliver_span(trace_, "deliver",
                                        job.members[m].session, seqs[m]);
      try {
        ms.cfg.deliver(std::move(frames[m]));
      } catch (const std::exception& e) {
        member_faulted[m] = 1;
        member_fault[m] = e.what();
      } catch (...) {
        member_faulted[m] = 1;
        member_fault[m] = "non-standard exception";
      }
    }
    // One release covers the whole gang (the leader held the engine).
    if (job.engine) arbiter_.release(job.members[0].session);

    lock.lock();
    for (size_t m = 0; m < nm; ++m) {
      Session& ms = *member_sessions[m];
      Slot& mout = ms.slots[static_cast<size_t>(job.members[m].stage)];
      mout.reserved = false;
      const bool last = job.members[m].stage ==
                        static_cast<int64_t>(ms.cfg.stages.size()) - 1;
      if (member_faulted[m]) {
        if (trace_->enabled())
          trace_->async_end("frame", job.members[m].session, seqs[m],
                            "\"outcome\":\"fault\"");
        quarantine_locked(job.members[m].session, member_fault[m]);
        ++ms.discarded;  // the frame this worker was carrying
        ms.dropped_counter->add(1);
      } else if (ms.quarantined) {
        if (trace_->enabled())
          trace_->async_end("frame", job.members[m].session, seqs[m],
                            "\"outcome\":\"dropped\"");
        ++ms.discarded;  // poisoned while in flight — never counted delivered
        ms.dropped_counter->add(1);
      } else if (last) {
        ++ms.done;
        ms.frames_counter->add(1);
        const double latency_ms = ms_between(
            ms.submit_times.front(), std::chrono::steady_clock::now());
        ms.latency_hist->record(latency_ms);
        ms.latency_window->record(latency_ms);
        ms.fps_window->add(1);
        ms.submit_times.pop_front();
        if (trace_->enabled())
          trace_->async_end("frame", job.members[m].session, seqs[m],
                            "\"outcome\":\"delivered\"");
      } else {
        mout.frame = std::move(frames[m]);
      }
      if (ms.closed || ms.quarantined) maybe_retire_locked(job.members[m].session);
    }
    lock.unlock();
    cv_.notify_all();  // deposited outputs / deliveries may unblock drain()
    lock.lock();
  }
}

void StreamServer::trace_drop_owned_locked(const Session& s, int64_t session,
                                           const char* outcome) {
  if (!trace_->enabled()) return;
  char args[48];
  std::snprintf(args, sizeof args, "\"outcome\":\"%s\"", outcome);
  for (const auto& f : s.queue) {
    trace_->async_end("queue", session, f.sequence);
    trace_->async_end("frame", session, f.sequence, args);
  }
  for (const auto& slot : s.slots)
    if (slot.frame.has_value())
      trace_->async_end("frame", session, slot.frame->sequence, args);
}

void StreamServer::flight_record_locked(const Session& s, int64_t session,
                                        const std::string& what) {
  if (options_.flight_recorder_dir.empty()) return;
  std::string header = "\"schema\":\"tincy.flight.v1\",\"session\":";
  header += std::to_string(session);
  header += ",\"sessionName\":\"";
  header += s.cfg.name;  // normalized at open_session: JSON-safe
  header += "\",\"fault\":";
  // Escape the fault message: it is free-form exception text.
  header += '"';
  for (const char c : what) {
    switch (c) {
      case '"': header += "\\\""; break;
      case '\\': header += "\\\\"; break;
      case '\n': header += "\\n"; break;
      case '\t': header += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          header += buf;
        } else {
          header += c;
        }
    }
  }
  header += '"';
  const auto tail = trace_->session_tail(
      session, static_cast<size_t>(options_.flight_recorder_events));
  try {
    std::filesystem::create_directories(options_.flight_recorder_dir);
    const std::string path =
        options_.flight_recorder_dir + "/flight_" + s.cfg.name + ".json";
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file.good()) return;  // post-mortem must never take the server down
    const std::string json = telemetry::to_chrome_trace(tail, header);
    file.write(json.data(), static_cast<std::streamsize>(json.size()));
  } catch (...) {
    // I/O trouble while writing a post-mortem is not a serving fault.
  }
}

void StreamServer::quarantine_locked(int64_t session,
                                     const std::string& what) {
  Session& s = *sessions_[static_cast<size_t>(session)];
  s.faults_counter->add(1);
  if (s.quarantined) return;  // concurrent faults: first one poisons
  s.quarantined = true;
  s.last_fault = what;
  s.quarantined_gauge->set(1.0);
  trace_drop_owned_locked(s, session, "dropped");
  if (trace_->enabled())
    trace_->instant("quarantine", session, -1);
  // The post-mortem is cut before the owned frames are cleared so their
  // final events are part of the dump.
  flight_record_locked(s, session, what);
  // Everything this session still owns is discarded: queued frames, slot
  // deposits, and the timestamps tracking them. Frames currently inside a
  // stage of another worker are discarded by that worker on return.
  int64_t dropped = static_cast<int64_t>(s.queue.size());
  s.queue.clear();
  for (auto& slot : s.slots) {
    if (!slot.frame.has_value()) continue;
    slot.frame.reset();
    ++dropped;
  }
  s.submit_times.clear();
  if (dropped > 0) {
    s.discarded += dropped;
    s.dropped_counter->add(dropped);
  }
  arbiter_.cancel(session);
}

void StreamServer::maybe_retire_locked(int64_t session) {
  Session& s = *sessions_[static_cast<size_t>(session)];
  if (s.retired || !(s.closed || s.quarantined)) return;
  if (!s.queue.empty()) return;
  for (const auto& slot : s.slots)
    if (slot.frame.has_value() || slot.reserved) return;
  // No slot is reserved, so no stage of this session is running and the
  // engine release (which precedes clearing the reservation) has happened:
  // the arbiter can forget the session safely — and with it any pending
  // (session, layer) gang-queue entry, so a retired session never joins a
  // forming batch.
  s.retired = true;
  arbiter_.remove_session(session);
}

void StreamServer::reset_session_locked(Session& s) {
  s.queue.clear();
  s.submit_times.clear();
  s.slots.assign(s.cfg.stages.size(), Slot{});
  s.admitted = 0;
  s.done = 0;
  s.discarded = 0;
  s.closed = false;
  s.quarantined = false;
  s.retired = false;
  s.last_fault.clear();
  s.queue_wait_ms = 0.0;
  s.engine_wait_start_ms = -1.0;
  s.frames_counter->reset();
  s.latency_hist->reset();
  s.latency_window->reset();
  s.fps_window->reset();
  s.queue_depth_gauge->set(0.0);
  s.rejected_counter->reset();
  s.shed_counter->reset();
  s.degraded_counter->reset();
  s.dropped_counter->reset();
  s.faults_counter->reset();
  s.quarantined_gauge->set(0.0);
}

void StreamServer::drain() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] {
    if (stopping_ || !running_) return true;
    for (const auto& s : sessions_)
      if (s->done + s->discarded != s->admitted) return false;
    return true;
  });
}

void StreamServer::stop() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    to_join.swap(workers_);
  }
  cv_.notify_all();
  // Joining guarantees in-flight stages finished their buffer handoff
  // (workers only exit at the scheduler wait point) before session state
  // is touched below or the server is destroyed.
  for (auto& t : to_join) t.join();
  {
    std::lock_guard lock(mutex_);
    running_ = false;
    for (size_t i = 0; i < sessions_.size(); ++i)
      arbiter_.cancel(static_cast<int64_t>(i));
  }
  cv_.notify_all();
}

bool StreamServer::running() const {
  std::lock_guard lock(mutex_);
  return running_ && !stopping_;
}

int64_t StreamServer::num_sessions() const {
  std::lock_guard lock(mutex_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t StreamServer::queue_depth(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return static_cast<int64_t>(
      sessions_[static_cast<size_t>(session)]->queue.size());
}

int64_t StreamServer::delivered(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->done;
}

int64_t StreamServer::rejected(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->rejected_counter->value();
}

bool StreamServer::closed(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->closed;
}

bool StreamServer::quarantined(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->quarantined;
}

std::string StreamServer::fault_message(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->last_fault;
}

}  // namespace tincy::serve
