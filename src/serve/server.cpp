#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/errors.hpp"

namespace tincy::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Session names become metric-name components (cf. pipeline stages).
std::string metric_label(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), ' ', '_');
  return out;
}

}  // namespace

StreamServer::StreamServer(ServerOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics ? options_.metrics
                                : &telemetry::MetricsRegistry::global()),
      arbiter_(metrics_) {
  TINCY_CHECK_MSG(options_.num_workers >= 1,
                  "num_workers " << options_.num_workers);
  TINCY_CHECK_MSG(options_.degrade_at > 0.0 && options_.degrade_at <= 1.0,
                  "degrade_at " << options_.degrade_at
                                << " outside (0, 1]");
}

StreamServer::~StreamServer() { stop(); }

int64_t StreamServer::open_session(SessionConfig cfg) {
  TINCY_CHECK_MSG(!cfg.stages.empty(), "session needs at least one stage");
  TINCY_CHECK_MSG(cfg.queue_capacity >= 1,
                  "queue_capacity " << cfg.queue_capacity);
  TINCY_CHECK_MSG(cfg.weight >= 1, "weight " << cfg.weight);
  TINCY_CHECK_MSG(cfg.priority >= 0, "priority " << cfg.priority);
  std::unique_lock lock(mutex_);
  const int64_t id = static_cast<int64_t>(sessions_.size());
  auto s = std::make_unique<Session>();
  s->cfg = std::move(cfg);
  if (s->cfg.name.empty()) s->cfg.name = "s" + std::to_string(id);
  s->slots.resize(s->cfg.stages.size());
  const std::string prefix =
      "serve.session." + metric_label(s->cfg.name) + ".";
  s->frames_counter = &metrics_->counter(prefix + "frames");
  s->latency_hist = &metrics_->histogram(prefix + "latency_ms");
  s->rejected_counter = &metrics_->counter(prefix + "rejected");
  s->shed_counter = &metrics_->counter(prefix + "shed");
  s->degraded_counter = &metrics_->counter(prefix + "degraded");
  s->dropped_counter = &metrics_->counter(prefix + "dropped");
  s->faults_counter = &metrics_->counter(prefix + "faults");
  s->quarantined_gauge = &metrics_->gauge(prefix + "quarantined");
  arbiter_.add_session(id, s->cfg.weight, s->cfg.priority);
  sessions_.push_back(std::move(s));
  lock.unlock();
  cv_.notify_all();  // live churn: workers should see the new session
  return id;
}

void StreamServer::close_session(int64_t session) {
  std::unique_lock lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  Session& s = *sessions_[static_cast<size_t>(session)];
  if (s.closed) return;
  s.closed = true;
  // Frames that never entered the stage chain are dropped; in-flight
  // frames (slots + running stages) keep their submit_times front entries
  // and finish to delivery.
  const int64_t queued = static_cast<int64_t>(s.queue.size());
  if (queued > 0) {
    s.queue.clear();
    s.submit_times.erase(s.submit_times.end() - queued, s.submit_times.end());
    s.discarded += queued;
    s.dropped_counter->add(queued);
  }
  // Withdraw any maturing engine claim: the work it was for may just have
  // been dropped, and a pending claim with no future acquire would hold
  // back every other session. In-flight frames that still need the engine
  // simply re-claim on their next scan.
  arbiter_.cancel(session);
  maybe_retire_locked(session);
  lock.unlock();
  cv_.notify_all();  // drain() may be satisfied now
}

void StreamServer::start() {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(!running_, "start() while already running");
  TINCY_CHECK_MSG(!sessions_.empty(), "start() with no sessions");
  for (size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = *sessions_[i];
    reset_session_locked(s);
    // Retired sessions were forgotten by the arbiter; re-registering all
    // of them (remove is a no-op for the still-known ones) restarts every
    // session at the virtual-time floor.
    arbiter_.remove_session(static_cast<int64_t>(i));
    arbiter_.add_session(static_cast<int64_t>(i), s.cfg.weight,
                         s.cfg.priority);
  }
  rr_next_ = 0;
  stopping_ = false;
  running_ = true;
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ServeResult StreamServer::submit(int64_t session, video::Frame frame) {
  std::unique_lock lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  Session& s = *sessions_[static_cast<size_t>(session)];
  if (!running_ || stopping_) return ServeResult::kClosed;
  if (s.quarantined) return ServeResult::kQuarantined;
  if (s.closed) return ServeResult::kClosed;
  if (static_cast<int64_t>(s.queue.size()) >= s.cfg.queue_capacity) {
    if (options_.overload_policy == OverloadPolicy::kShedOldest &&
        !s.queue.empty()) {
      // Freshness wins: evict the stalest *queued* frame (in-flight ones
      // are untouchable) to make room. Its timestamp sits right after the
      // in-flight block at the front of submit_times.
      const size_t in_flight = s.submit_times.size() - s.queue.size();
      s.queue.pop_front();
      s.submit_times.erase(s.submit_times.begin() +
                           static_cast<std::ptrdiff_t>(in_flight));
      ++s.discarded;
      s.shed_counter->add(1);
    } else {
      s.rejected_counter->add(1);
      return ServeResult::kOverloaded;
    }
  }
  if (options_.overload_policy == OverloadPolicy::kDegrade && s.cfg.degrade) {
    const auto mark = static_cast<int64_t>(std::ceil(
        options_.degrade_at * static_cast<double>(s.cfg.queue_capacity)));
    if (static_cast<int64_t>(s.queue.size()) >= std::max<int64_t>(1, mark)) {
      s.cfg.degrade(frame);
      s.degraded_counter->add(1);
    }
  }
  s.queue.push_back(std::move(frame));
  s.submit_times.push_back(std::chrono::steady_clock::now());
  ++s.admitted;
  lock.unlock();
  cv_.notify_all();
  return ServeResult::kAccepted;
}

bool StreamServer::find_job_locked(Job& job) {
  const size_t n = sessions_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t si = (rr_next_ + k) % n;
    Session& s = *sessions_[si];
    // Quarantined sessions hold no claimable frames (they were discarded
    // at the poison point); retired ones additionally left the arbiter.
    if (s.retired || s.quarantined) continue;
    for (int64_t i = static_cast<int64_t>(s.cfg.stages.size()) - 1; i >= 0;
         --i) {
      Slot& out = s.slots[static_cast<size_t>(i)];
      if (out.reserved || out.frame.has_value()) continue;  // output not free
      const bool input_ready =
          i == 0 ? !s.queue.empty()
                 : s.slots[static_cast<size_t>(i - 1)].frame.has_value();
      if (!input_ready) continue;
      // Engine-tagged stages are claimed together with the engine grant;
      // a refusal leaves a maturing claim with the arbiter and the scan
      // moves on to overlappable CPU work of other sessions.
      const bool engine = s.cfg.stages[static_cast<size_t>(i)].uses_engine;
      if (engine && !arbiter_.try_acquire(static_cast<int64_t>(si))) continue;
      job = Job{static_cast<int64_t>(si), i, engine};
      rr_next_ = (si + 1) % n;
      return true;
    }
  }
  return false;
}

void StreamServer::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    Job job;
    // stopping_ is tested first: once a stop is requested no new job (and
    // in particular no engine grant) is claimed.
    cv_.wait(lock, [&] { return stopping_ || find_job_locked(job); });
    if (stopping_) return;

    Session& s = *sessions_[static_cast<size_t>(job.session)];
    Slot& out = s.slots[static_cast<size_t>(job.stage)];
    out.reserved = true;
    video::Frame frame;
    if (job.stage == 0) {
      frame = std::move(s.queue.front());
      s.queue.pop_front();
    } else {
      Slot& in = s.slots[static_cast<size_t>(job.stage - 1)];
      frame = std::move(*in.frame);
      in.frame.reset();  // input buffer becomes free (Fig. 6)
    }
    lock.unlock();
    cv_.notify_all();  // freed queue space / input slot enables upstream

    bool faulted = false;
    std::string fault;
    try {
      s.cfg.stages[static_cast<size_t>(job.stage)].work(frame);
    } catch (const std::exception& e) {
      faulted = true;
      fault = e.what();
    } catch (...) {
      faulted = true;
      fault = "non-standard exception";
    }
    const bool last =
        job.stage == static_cast<int64_t>(s.cfg.stages.size()) - 1;
    // Delivery happens outside the lock but is serialized per session by
    // the reserved last-stage slot, so results leave in order. A sibling
    // stage may have poisoned the session while this frame was in the
    // stage; nothing is delivered past the poison point.
    if (!faulted && last && s.cfg.deliver) {
      lock.lock();
      const bool deliverable = !s.quarantined;
      lock.unlock();
      if (deliverable) {
        try {
          s.cfg.deliver(std::move(frame));
        } catch (const std::exception& e) {
          faulted = true;
          fault = e.what();
        } catch (...) {
          faulted = true;
          fault = "non-standard exception";
        }
      }
    }
    if (job.engine) arbiter_.release(job.session);

    lock.lock();
    out.reserved = false;
    if (faulted) {
      quarantine_locked(job.session, fault);
      ++s.discarded;  // the frame this worker was carrying
      s.dropped_counter->add(1);
    } else if (s.quarantined) {
      ++s.discarded;  // poisoned while in flight — never counted delivered
      s.dropped_counter->add(1);
    } else if (last) {
      ++s.done;
      s.frames_counter->add(1);
      s.latency_hist->record(ms_between(s.submit_times.front(),
                                        std::chrono::steady_clock::now()));
      s.submit_times.pop_front();
    } else {
      out.frame = std::move(frame);
    }
    if (s.closed || s.quarantined) maybe_retire_locked(job.session);
    lock.unlock();
    cv_.notify_all();  // deposited output / delivery may unblock drain()
    lock.lock();
  }
}

void StreamServer::quarantine_locked(int64_t session,
                                     const std::string& what) {
  Session& s = *sessions_[static_cast<size_t>(session)];
  s.faults_counter->add(1);
  if (s.quarantined) return;  // concurrent faults: first one poisons
  s.quarantined = true;
  s.last_fault = what;
  s.quarantined_gauge->set(1.0);
  // Everything this session still owns is discarded: queued frames, slot
  // deposits, and the timestamps tracking them. Frames currently inside a
  // stage of another worker are discarded by that worker on return.
  int64_t dropped = static_cast<int64_t>(s.queue.size());
  s.queue.clear();
  for (auto& slot : s.slots) {
    if (!slot.frame.has_value()) continue;
    slot.frame.reset();
    ++dropped;
  }
  s.submit_times.clear();
  if (dropped > 0) {
    s.discarded += dropped;
    s.dropped_counter->add(dropped);
  }
  arbiter_.cancel(session);
}

void StreamServer::maybe_retire_locked(int64_t session) {
  Session& s = *sessions_[static_cast<size_t>(session)];
  if (s.retired || !(s.closed || s.quarantined)) return;
  if (!s.queue.empty()) return;
  for (const auto& slot : s.slots)
    if (slot.frame.has_value() || slot.reserved) return;
  // No slot is reserved, so no stage of this session is running and the
  // engine release (which precedes clearing the reservation) has happened:
  // the arbiter can forget the session safely.
  s.retired = true;
  arbiter_.remove_session(session);
}

void StreamServer::reset_session_locked(Session& s) {
  s.queue.clear();
  s.submit_times.clear();
  s.slots.assign(s.cfg.stages.size(), Slot{});
  s.admitted = 0;
  s.done = 0;
  s.discarded = 0;
  s.closed = false;
  s.quarantined = false;
  s.retired = false;
  s.last_fault.clear();
  s.frames_counter->reset();
  s.latency_hist->reset();
  s.rejected_counter->reset();
  s.shed_counter->reset();
  s.degraded_counter->reset();
  s.dropped_counter->reset();
  s.faults_counter->reset();
  s.quarantined_gauge->set(0.0);
}

void StreamServer::drain() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] {
    if (stopping_ || !running_) return true;
    for (const auto& s : sessions_)
      if (s->done + s->discarded != s->admitted) return false;
    return true;
  });
}

void StreamServer::stop() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    to_join.swap(workers_);
  }
  cv_.notify_all();
  // Joining guarantees in-flight stages finished their buffer handoff
  // (workers only exit at the scheduler wait point) before session state
  // is touched below or the server is destroyed.
  for (auto& t : to_join) t.join();
  {
    std::lock_guard lock(mutex_);
    running_ = false;
    for (size_t i = 0; i < sessions_.size(); ++i)
      arbiter_.cancel(static_cast<int64_t>(i));
  }
  cv_.notify_all();
}

bool StreamServer::running() const {
  std::lock_guard lock(mutex_);
  return running_ && !stopping_;
}

int64_t StreamServer::num_sessions() const {
  std::lock_guard lock(mutex_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t StreamServer::queue_depth(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return static_cast<int64_t>(
      sessions_[static_cast<size_t>(session)]->queue.size());
}

int64_t StreamServer::delivered(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->done;
}

int64_t StreamServer::rejected(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->rejected_counter->value();
}

bool StreamServer::closed(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->closed;
}

bool StreamServer::quarantined(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->quarantined;
}

std::string StreamServer::fault_message(int64_t session) const {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(
      session >= 0 && session < static_cast<int64_t>(sessions_.size()),
      "unknown session " << session);
  return sessions_[static_cast<size_t>(session)]->last_fault;
}

}  // namespace tincy::serve
