#include "serve/demo.hpp"

#include "nn/offload_layer.hpp"

namespace tincy::serve {

std::vector<ServeStage> demo_session_stages(nn::Network& net,
                                            const pipeline::DemoConfig& cfg,
                                            EnginePolicy policy) {
  auto demo = pipeline::make_demo_stages(net, cfg);
  // Stage layout (see pipeline/demo.hpp): #0 read_frame, #1 letterbox,
  // #2 .. #2+L-1 the network layers, then object boxing and drawing.
  const int64_t num_layers = net.num_layers();
  std::vector<ServeStage> stages;
  stages.reserve(demo.size());
  for (size_t idx = 0; idx < demo.size(); ++idx) {
    const int64_t layer = static_cast<int64_t>(idx) - 2;
    bool engine = false;
    if (layer >= 0 && layer < num_layers) {
      switch (policy) {
        case EnginePolicy::kNone:
          break;
        case EnginePolicy::kOffloadLayers:
          engine = dynamic_cast<nn::OffloadLayer*>(&net.layer(layer)) !=
                   nullptr;
          break;
        case EnginePolicy::kHiddenLayers:
          // First conv (layer 0), last conv (L-2) and region (L-1) stay
          // on the CPU, as in the paper's deployment.
          engine = layer >= 1 && layer <= num_layers - 3;
          break;
      }
    }
    ServeStage stage;
    stage.name = std::move(demo[idx].name);
    stage.work = std::move(demo[idx].work);
    stage.uses_engine = engine;
    stages.push_back(std::move(stage));
  }
  return stages;
}

}  // namespace tincy::serve
