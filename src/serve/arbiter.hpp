#pragma once

/// \file arbiter.hpp
/// Cross-stream arbitration of the single shared fabric engine.
///
/// The resource model admits exactly one generalized conv+pool engine on
/// the XCZU3EG (docs/ARCHITECTURE.md §4), so a serving deployment with N
/// concurrent streams must time-share it. The EngineArbiter decides
/// *which stream* owns the engine next in two steps:
///
///  1. **Priority tier** — every session carries an integer priority;
///     among contenders, a higher tier always beats a lower one. Tiers
///     are strict: a saturating high tier starves lower tiers by design
///     (the overload policy in ServerOptions is the pressure valve).
///  2. **Weighted round-robin in deficit style within a tier** — every
///     grant advances the holder's virtual time by 1/weight, and a free
///     engine goes to the pending session with the smallest virtual time
///     (ties to the lower session id). A weight-2 session therefore
///     receives twice the grants of a weight-1 peer under saturation,
///     and no pending session of the top contending tier starves.
///
/// **Gang scheduling** (ArbiterOptions::max_batch > 1): every layer pass
/// re-streams that layer's weights over DMA, so when several sessions
/// have a frame waiting at the *same* layer the arbiter coalesces them
/// into one grant — the leader wins arbitration exactly as above, then
/// takes along up to max_batch − 1 same-layer peers (ordered by the same
/// priority/vtime preference). Every ganged frame costs its session a
/// full grant's worth of virtual time, so weighted fairness is
/// preserved. A same-layer peer with a stronger pending claim does not
/// block the leader — it rides along in the gang instead (the
/// anti-starvation bonus of batching). batch_linger_us bounds how long a
/// grantable leader holds the free engine waiting for more peers before
/// settling for a partial batch, so latency SLOs hold; with linger 0 a
/// gang is formed only from frames that are already waiting.
///
/// Sessions can come and go while the arbiter is live (serving churn):
/// add_session registers at the current virtual-time floor, and
/// remove_session forgets a drained session entirely — including its
/// pending (session, layer) gang-queue entry, so a closed session can
/// never be included in a forming batch.
///
/// Maturity ordering *within* a stream stays the StreamServer's job; the
/// arbiter is aware of layer *identities* (for coalescing) but never of
/// stages or frames.
///
/// Telemetry (registry handed at construction, default global):
///   serve.arbiter.grants       counter, one per successful acquire
///                              (a gang is one grant)
///   serve.arbiter.queue_depth  gauge, sessions waiting for the engine
///   serve.arbiter.batch_size   histogram, frames per grant (1 when no
///                              coalescing happened)

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "telemetry/metrics.hpp"

namespace tincy::serve {

/// Gang-scheduling knobs (see docs/ARCHITECTURE.md §6).
struct ArbiterOptions {
  /// Maximum frames coalesced into one engine grant (>= 1; 1 disables
  /// gang scheduling entirely).
  int64_t max_batch = 1;
  /// How long a grantable leader may hold off, engine free, waiting for
  /// more same-layer peers before granting a partial batch (0 = never
  /// wait; only already-waiting frames coalesce).
  int64_t batch_linger_us = 0;
};

class EngineArbiter {
 public:
  explicit EngineArbiter(telemetry::MetricsRegistry* metrics = nullptr,
                         ArbiterOptions options = {});

  /// Registers a session; weight must be >= 1, priority >= 0 (higher wins
  /// the engine first). A session joining late starts at the current
  /// virtual-time floor, so it cannot claim a backlog of grants it never
  /// waited for.
  void add_session(int64_t session, int weight = 1, int priority = 0);

  /// Forgets a session entirely (stream closed and drained). The session
  /// must not hold the engine; a pending claim — including its gang-queue
  /// layer entry — is withdrawn, so the session cannot join any batch
  /// forming after this call.
  void remove_session(int64_t session);

  /// Non-blocking: grants the engine iff it is free and no *pending*
  /// session has a stronger claim (higher tier, or same tier and smaller
  /// virtual time). On refusal the session is recorded as pending, so its
  /// claim matures; callers retry after the next release (the owning
  /// server's condition variable covers this). Layer-agnostic: never
  /// coalesces (equivalent to try_acquire_gang with layer −1).
  bool try_acquire(int64_t session);

  /// Gang-scheduling acquire: `session` asks for the engine to run layer
  /// `layer` (−1 = unbatchable), and `candidates` lists the sessions the
  /// caller verified to have a runnable frame at the same layer right
  /// now. On success `gang` receives every granted member — the leader
  /// first, then up to max_batch − 1 peers picked from `candidates` in
  /// arbitration-preference order (unknown/churned candidate ids are
  /// skipped). On refusal the leader's claim is recorded pending at
  /// `layer` and `gang` is left empty. The engine is held by `session`
  /// (the leader) and released once for the whole gang.
  bool try_acquire_gang(int64_t session, int64_t layer,
                        std::span<const int64_t> candidates,
                        std::vector<int64_t>& gang);

  /// Returns the engine; `session` must be the current holder.
  void release(int64_t session);

  /// Withdraws a pending claim (stream drained or server stopping).
  void cancel(int64_t session);

  int64_t grants() const;
  int64_t pending() const;
  bool busy() const;

  /// Deadline of the active batch linger, if one is in progress: the
  /// instant after which the lingering leader will settle for a partial
  /// batch. Scheduler loops should use a timed wait until then instead of
  /// sleeping unbounded.
  std::optional<std::chrono::steady_clock::time_point> linger_deadline()
      const;

 private:
  struct SessionState {
    int weight = 1;
    int priority = 0;    ///< tier; strict precedence over vtime
    double vtime = 0.0;  ///< accumulated grant cost (deficit round-robin)
    bool pending = false;
    int64_t pending_layer = -1;  ///< layer of the pending claim (gang queue)
  };

  double effective_vtime_locked(const SessionState& s) const;
  bool acquire_locked(int64_t session, int64_t layer,
                      std::span<const int64_t> candidates,
                      std::vector<int64_t>* gang);

  mutable std::mutex mutex_;
  ArbiterOptions options_;
  std::map<int64_t, SessionState> sessions_;
  int64_t holder_ = -1;
  int64_t pending_count_ = 0;
  int64_t grants_ = 0;
  double vtime_floor_ = 0.0;  ///< vtime of the most recent grantee
  bool linger_active_ = false;
  int64_t linger_layer_ = -1;
  std::chrono::steady_clock::time_point linger_deadline_{};
  telemetry::Counter* grants_counter_;
  telemetry::Gauge* queue_depth_gauge_;
  telemetry::Histogram* batch_size_hist_;
};

}  // namespace tincy::serve
