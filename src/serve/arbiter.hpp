#pragma once

/// \file arbiter.hpp
/// Cross-stream arbitration of the single shared fabric engine.
///
/// The resource model admits exactly one generalized conv+pool engine on
/// the XCZU3EG (docs/ARCHITECTURE.md §4), so a serving deployment with N
/// concurrent streams must time-share it. The EngineArbiter decides
/// *which stream* owns the engine next in two steps:
///
///  1. **Priority tier** — every session carries an integer priority;
///     among contenders, a higher tier always beats a lower one. Tiers
///     are strict: a saturating high tier starves lower tiers by design
///     (the overload policy in ServerOptions is the pressure valve).
///  2. **Weighted round-robin in deficit style within a tier** — every
///     grant advances the holder's virtual time by 1/weight, and a free
///     engine goes to the pending session with the smallest virtual time
///     (ties to the lower session id). A weight-2 session therefore
///     receives twice the grants of a weight-1 peer under saturation,
///     and no pending session of the top contending tier starves.
///
/// Sessions can come and go while the arbiter is live (serving churn):
/// add_session registers at the current virtual-time floor, remove()
/// forgets a drained session entirely.
///
/// Maturity ordering *within* a stream stays the StreamServer's job; the
/// arbiter is deliberately unaware of stages and frames.
///
/// Telemetry (registry handed at construction, default global):
///   serve.arbiter.grants       counter, one per successful acquire
///   serve.arbiter.queue_depth  gauge, sessions waiting for the engine

#include <cstdint>
#include <map>
#include <mutex>

#include "telemetry/metrics.hpp"

namespace tincy::serve {

class EngineArbiter {
 public:
  explicit EngineArbiter(telemetry::MetricsRegistry* metrics = nullptr);

  /// Registers a session; weight must be >= 1, priority >= 0 (higher wins
  /// the engine first). A session joining late starts at the current
  /// virtual-time floor, so it cannot claim a backlog of grants it never
  /// waited for.
  void add_session(int64_t session, int weight = 1, int priority = 0);

  /// Forgets a session entirely (stream closed and drained). The session
  /// must not hold the engine; a pending claim is withdrawn.
  void remove_session(int64_t session);

  /// Non-blocking: grants the engine iff it is free and no *pending*
  /// session has a stronger claim (higher tier, or same tier and smaller
  /// virtual time). On refusal the session is recorded as pending, so its
  /// claim matures; callers retry after the next release (the owning
  /// server's condition variable covers this).
  bool try_acquire(int64_t session);

  /// Returns the engine; `session` must be the current holder.
  void release(int64_t session);

  /// Withdraws a pending claim (stream drained or server stopping).
  void cancel(int64_t session);

  int64_t grants() const;
  int64_t pending() const;
  bool busy() const;

 private:
  struct SessionState {
    int weight = 1;
    int priority = 0;    ///< tier; strict precedence over vtime
    double vtime = 0.0;  ///< accumulated grant cost (deficit round-robin)
    bool pending = false;
  };

  double effective_vtime_locked(const SessionState& s) const;

  mutable std::mutex mutex_;
  std::map<int64_t, SessionState> sessions_;
  int64_t holder_ = -1;
  int64_t pending_count_ = 0;
  int64_t grants_ = 0;
  double vtime_floor_ = 0.0;  ///< vtime of the most recent grantee
  telemetry::Counter* grants_counter_;
  telemetry::Gauge* queue_depth_gauge_;
};

}  // namespace tincy::serve
