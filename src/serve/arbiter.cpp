#include "serve/arbiter.hpp"

#include <algorithm>

#include "core/errors.hpp"

namespace tincy::serve {

EngineArbiter::EngineArbiter(telemetry::MetricsRegistry* metrics,
                             ArbiterOptions options)
    : options_(options) {
  TINCY_CHECK_MSG(options_.max_batch >= 1,
                  "max_batch " << options_.max_batch);
  TINCY_CHECK_MSG(options_.batch_linger_us >= 0,
                  "batch_linger_us " << options_.batch_linger_us);
  auto* reg = metrics ? metrics : &telemetry::MetricsRegistry::global();
  grants_counter_ = &reg->counter("serve.arbiter.grants");
  queue_depth_gauge_ = &reg->gauge("serve.arbiter.queue_depth");
  batch_size_hist_ = &reg->histogram("serve.arbiter.batch_size");
}

double EngineArbiter::effective_vtime_locked(const SessionState& s) const {
  // Idle sessions keep a stale (small) vtime; clamping to the floor caps
  // the claim they can accumulate while not requesting the engine at one
  // grant's worth of priority.
  return std::max(s.vtime, vtime_floor_);
}

void EngineArbiter::add_session(int64_t session, int weight, int priority) {
  TINCY_CHECK_MSG(weight >= 1, "session " << session << " weight " << weight);
  TINCY_CHECK_MSG(priority >= 0,
                  "session " << session << " priority " << priority);
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(!sessions_.contains(session),
                  "session " << session << " already registered");
  sessions_[session] = SessionState{weight, priority, vtime_floor_, false, -1};
}

void EngineArbiter::remove_session(int64_t session) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  TINCY_CHECK_MSG(holder_ != session,
                  "remove_session(" << session << ") while holding the engine");
  if (it->second.pending) {
    --pending_count_;
    queue_depth_gauge_->set(static_cast<double>(pending_count_));
  }
  // Erasing the session also purges its (session, layer) gang-queue
  // entry: gang formation looks candidates up here, so a removed session
  // can never be included in a batch forming after this call.
  sessions_.erase(it);
}

bool EngineArbiter::acquire_locked(int64_t session, int64_t layer,
                                   std::span<const int64_t> candidates,
                                   std::vector<int64_t>* gang) {
  const auto it = sessions_.find(session);
  TINCY_CHECK_MSG(it != sessions_.end(), "unknown session " << session);
  SessionState& mine = it->second;

  auto refuse = [&] {
    if (!mine.pending) {
      mine.pending = true;
      ++pending_count_;
      queue_depth_gauge_->set(static_cast<double>(pending_count_));
    }
    mine.pending_layer = layer;  // the (session, layer) gang-queue entry
    return false;
  };

  if (holder_ >= 0) return refuse();

  // Tentative gang: the leader plus up to max_batch − 1 of the caller's
  // candidates, in arbitration-preference order (priority desc, virtual
  // time asc, id asc). Candidates the arbiter does not know — churned
  // away between the caller's scan and this call — are skipped.
  std::vector<int64_t> members{session};
  if (layer >= 0 && options_.max_batch > 1) {
    std::vector<int64_t> elig;
    for (const int64_t id : candidates) {
      if (id == session || !sessions_.contains(id)) continue;
      if (std::find(elig.begin(), elig.end(), id) == elig.end())
        elig.push_back(id);
    }
    std::sort(elig.begin(), elig.end(), [&](int64_t a, int64_t b) {
      const SessionState& sa = sessions_.find(a)->second;
      const SessionState& sb = sessions_.find(b)->second;
      if (sa.priority != sb.priority) return sa.priority > sb.priority;
      const double va = effective_vtime_locked(sa);
      const double vb = effective_vtime_locked(sb);
      if (va != vb) return va < vb;
      return a < b;
    });
    for (const int64_t id : elig) {
      if (static_cast<int64_t>(members.size()) >= options_.max_batch) break;
      members.push_back(id);
    }
  }

  // The engine is free: yield to any pending session with a stronger
  // claim — a higher priority tier, or the same tier and a smaller
  // virtual time (or an equal one and a smaller id): it asked first under
  // the round-robin discipline and a worker will claim it next. A
  // claimant that rides along in this gang does not block it — being
  // granted as a gang member is at least as good as leading.
  const double mine_vt = effective_vtime_locked(mine);
  for (const auto& [id, other] : sessions_) {
    if (id == session || !other.pending) continue;
    if (std::find(members.begin() + 1, members.end(), id) != members.end())
      continue;
    if (other.priority > mine.priority) return refuse();
    if (other.priority < mine.priority) continue;
    const double other_vt = effective_vtime_locked(other);
    if (other_vt < mine_vt || (other_vt == mine_vt && id < session))
      return refuse();
  }

  // Batch linger: a partial gang may hold off briefly — engine free — to
  // let more same-layer peers arrive, bounded by batch_linger_us. Only
  // worthwhile while sessions outside the gang exist. A linger whose
  // deadline already passed (including one gone stale because no leader
  // re-attempted) grants immediately.
  if (layer >= 0 && options_.max_batch > 1 && options_.batch_linger_us > 0 &&
      static_cast<int64_t>(members.size()) < options_.max_batch &&
      sessions_.size() > members.size()) {
    const auto now = std::chrono::steady_clock::now();
    if (!linger_active_ || linger_layer_ != layer) {
      linger_active_ = true;
      linger_layer_ = layer;
      linger_deadline_ =
          now + std::chrono::microseconds(options_.batch_linger_us);
      return refuse();
    }
    if (now < linger_deadline_) return refuse();
  }
  linger_active_ = false;

  // Grant the whole gang under one engine hold. The floor advances to the
  // leader's effective virtual time (as for single grants); every member
  // — leader included — pays one grant's worth of virtual time, so the
  // weighted deficit accounting treats a ganged frame exactly like a solo
  // one.
  vtime_floor_ = mine_vt;
  for (const int64_t id : members) {
    SessionState& m = sessions_.find(id)->second;
    if (m.pending) {
      m.pending = false;
      --pending_count_;
    }
    m.pending_layer = -1;
    m.vtime = effective_vtime_locked(m) + 1.0 / static_cast<double>(m.weight);
  }
  queue_depth_gauge_->set(static_cast<double>(pending_count_));
  holder_ = session;
  ++grants_;
  grants_counter_->add(1);
  batch_size_hist_->record(static_cast<double>(members.size()));
  if (gang) *gang = std::move(members);
  return true;
}

bool EngineArbiter::try_acquire(int64_t session) {
  std::lock_guard lock(mutex_);
  return acquire_locked(session, /*layer=*/-1, {}, nullptr);
}

bool EngineArbiter::try_acquire_gang(int64_t session, int64_t layer,
                                     std::span<const int64_t> candidates,
                                     std::vector<int64_t>& gang) {
  std::lock_guard lock(mutex_);
  gang.clear();
  return acquire_locked(session, layer, candidates, &gang);
}

void EngineArbiter::release(int64_t session) {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(holder_ == session,
                  "release by session " << session << " but holder is "
                                        << holder_);
  holder_ = -1;
}

void EngineArbiter::cancel(int64_t session) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  it->second.pending_layer = -1;
  if (!it->second.pending) return;
  it->second.pending = false;
  --pending_count_;
  queue_depth_gauge_->set(static_cast<double>(pending_count_));
}

int64_t EngineArbiter::grants() const {
  std::lock_guard lock(mutex_);
  return grants_;
}

int64_t EngineArbiter::pending() const {
  std::lock_guard lock(mutex_);
  return pending_count_;
}

bool EngineArbiter::busy() const {
  std::lock_guard lock(mutex_);
  return holder_ >= 0;
}

std::optional<std::chrono::steady_clock::time_point>
EngineArbiter::linger_deadline() const {
  std::lock_guard lock(mutex_);
  if (!linger_active_) return std::nullopt;
  // An expired linger grants on the next attempt; reporting it would make
  // timed waiters spin on a deadline in the past.
  if (std::chrono::steady_clock::now() >= linger_deadline_)
    return std::nullopt;
  return linger_deadline_;
}

}  // namespace tincy::serve
