#include "serve/arbiter.hpp"

#include <algorithm>

#include "core/errors.hpp"

namespace tincy::serve {

EngineArbiter::EngineArbiter(telemetry::MetricsRegistry* metrics) {
  auto* reg = metrics ? metrics : &telemetry::MetricsRegistry::global();
  grants_counter_ = &reg->counter("serve.arbiter.grants");
  queue_depth_gauge_ = &reg->gauge("serve.arbiter.queue_depth");
}

double EngineArbiter::effective_vtime_locked(const SessionState& s) const {
  // Idle sessions keep a stale (small) vtime; clamping to the floor caps
  // the claim they can accumulate while not requesting the engine at one
  // grant's worth of priority.
  return std::max(s.vtime, vtime_floor_);
}

void EngineArbiter::add_session(int64_t session, int weight, int priority) {
  TINCY_CHECK_MSG(weight >= 1, "session " << session << " weight " << weight);
  TINCY_CHECK_MSG(priority >= 0,
                  "session " << session << " priority " << priority);
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(!sessions_.contains(session),
                  "session " << session << " already registered");
  sessions_[session] = SessionState{weight, priority, vtime_floor_, false};
}

void EngineArbiter::remove_session(int64_t session) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  TINCY_CHECK_MSG(holder_ != session,
                  "remove_session(" << session << ") while holding the engine");
  if (it->second.pending) {
    --pending_count_;
    queue_depth_gauge_->set(static_cast<double>(pending_count_));
  }
  sessions_.erase(it);
}

bool EngineArbiter::try_acquire(int64_t session) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  TINCY_CHECK_MSG(it != sessions_.end(), "unknown session " << session);
  SessionState& mine = it->second;

  auto refuse = [&] {
    if (!mine.pending) {
      mine.pending = true;
      ++pending_count_;
      queue_depth_gauge_->set(static_cast<double>(pending_count_));
    }
    return false;
  };

  if (holder_ >= 0) return refuse();

  // The engine is free: yield to any pending session with a stronger
  // claim — a higher priority tier, or the same tier and a smaller
  // virtual time (or an equal one and a smaller id): it asked first under
  // the round-robin discipline and a worker will claim it next.
  const double mine_vt = effective_vtime_locked(mine);
  for (const auto& [id, other] : sessions_) {
    if (id == session || !other.pending) continue;
    if (other.priority > mine.priority) return refuse();
    if (other.priority < mine.priority) continue;
    const double other_vt = effective_vtime_locked(other);
    if (other_vt < mine_vt || (other_vt == mine_vt && id < session))
      return refuse();
  }

  if (mine.pending) {
    mine.pending = false;
    --pending_count_;
    queue_depth_gauge_->set(static_cast<double>(pending_count_));
  }
  holder_ = session;
  vtime_floor_ = mine_vt;
  mine.vtime = mine_vt + 1.0 / static_cast<double>(mine.weight);
  ++grants_;
  grants_counter_->add(1);
  return true;
}

void EngineArbiter::release(int64_t session) {
  std::lock_guard lock(mutex_);
  TINCY_CHECK_MSG(holder_ == session,
                  "release by session " << session << " but holder is "
                                        << holder_);
  holder_ = -1;
}

void EngineArbiter::cancel(int64_t session) {
  std::lock_guard lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.pending) return;
  it->second.pending = false;
  --pending_count_;
  queue_depth_gauge_->set(static_cast<double>(pending_count_));
}

int64_t EngineArbiter::grants() const {
  std::lock_guard lock(mutex_);
  return grants_;
}

int64_t EngineArbiter::pending() const {
  std::lock_guard lock(mutex_);
  return pending_count_;
}

bool EngineArbiter::busy() const {
  std::lock_guard lock(mutex_);
  return holder_ >= 0;
}

}  // namespace tincy::serve
