#pragma once

/// \file server.hpp
/// Multi-stream serving layer over the shared fabric engine.
///
/// The Fig. 5 demo pipelines ONE video stream; a serving deployment has N
/// independent streams contending for the single conv+pool engine. The
/// StreamServer accepts per-session frame submissions, runs every session
/// through its own stage chain (single-slot free/avail buffers, exactly
/// the paper's Fig. 6 handshake), and multiplexes engine-tagged stages
/// over the EngineArbiter:
///
///  * scheduling is most-mature-first *within* a session (the paper's
///    policy) and round-robin *across* sessions, with engine access
///    weighted per session by the arbiter;
///  * each session has a bounded admission queue: submit() returns
///    ServeResult::kOverloaded instead of blocking when it is full
///    (per-stream backpressure — the caller throttles or sheds);
///  * delivery is in order per session: the single-slot chain prevents a
///    frame overtaking another, stream by stream.
///
/// Telemetry (see docs/observability.md):
///   serve.session.<name>.frames      counter, frames delivered
///   serve.session.<name>.latency_ms  histogram, submit -> delivery
///   serve.session.<name>.rejected    counter, kOverloaded submissions
///   serve.arbiter.grants / serve.arbiter.queue_depth (EngineArbiter)

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/arbiter.hpp"
#include "telemetry/metrics.hpp"
#include "video/frame.hpp"

namespace tincy::serve {

/// Outcome of a frame submission.
enum class ServeResult {
  kAccepted,    ///< queued; the session's deliver hook will see it
  kOverloaded,  ///< admission queue full — backpressure, retry later
  kClosed,      ///< server not running (not started, stopping or stopped)
};

/// One stage of a session's processing chain. Stages with `uses_engine`
/// run only while the session holds the fabric engine grant; everything
/// else overlaps freely across sessions.
struct ServeStage {
  std::string name;
  std::function<void(video::Frame&)> work;
  bool uses_engine = false;
};

/// A client stream: its own stage chain (own network instance — sessions
/// share no mutable state), in-order result delivery, an arbiter weight
/// and an admission-queue bound.
struct SessionConfig {
  std::string name;  ///< metric label; defaults to "s<index>" when empty
  std::vector<ServeStage> stages;
  /// In-order delivery hook; invoked from worker threads, never
  /// concurrently for the same session.
  std::function<void(video::Frame&&)> deliver;
  int weight = 1;               ///< engine share under saturation
  int64_t queue_capacity = 8;   ///< admission bound (>= 1)
};

struct ServerOptions {
  int num_workers = 4;  ///< shared worker pool (paper: 4 × A53)
  /// Registry for serve.* metrics; null selects the process-wide default.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class StreamServer {
 public:
  explicit StreamServer(ServerOptions options = {});

  /// stop()s and joins; queued frames that never started are dropped,
  /// frames inside a stage finish their buffer handoff first.
  ~StreamServer();

  /// Registers a stream; must be called before start(). Returns the
  /// session id used by submit()/accessors.
  int64_t open_session(SessionConfig cfg);

  /// Spawns the worker pool and begins accepting submissions. Resets the
  /// serve.* metrics of this server's sessions.
  void start();

  /// Admits one frame into the session's queue (or rejects it). Thread
  /// safe; any number of producer threads may submit concurrently.
  ServeResult submit(int64_t session, video::Frame frame);

  /// Blocks until every admitted frame has been delivered (or stop() is
  /// requested from elsewhere).
  void stop();

  /// Blocks until all admitted frames are delivered, then keeps running
  /// (more submissions remain possible).
  void drain();

  bool running() const;
  int64_t num_sessions() const;
  int64_t queue_depth(int64_t session) const;   ///< admitted, not yet started
  int64_t delivered(int64_t session) const;
  int64_t rejected(int64_t session) const;

  EngineArbiter& arbiter() { return arbiter_; }
  telemetry::MetricsRegistry& metrics() const { return *metrics_; }
  telemetry::Snapshot snapshot() const { return metrics_->snapshot(); }

 private:
  /// Single-slot output buffer of one stage (Fig. 6 free/avail handshake).
  struct Slot {
    std::optional<video::Frame> frame;
    bool reserved = false;
  };

  struct Session {
    SessionConfig cfg;
    std::deque<video::Frame> queue;  ///< admission queue (pre stage 0)
    /// Submission timestamps, admission order == delivery order.
    std::deque<std::chrono::steady_clock::time_point> submit_times;
    std::vector<Slot> slots;
    int64_t admitted = 0;
    int64_t done = 0;
    telemetry::Counter* frames_counter;
    telemetry::Histogram* latency_hist;
    telemetry::Counter* rejected_counter;
  };

  /// One claimable unit of work: (session, stage) plus whether the claim
  /// came with the engine grant already held.
  struct Job {
    int64_t session = -1;
    int64_t stage = -1;
    bool engine = false;
  };

  /// Scans sessions round-robin (rotating start), stages back-to-front
  /// (most mature first). Acquires the engine for engine-tagged stages as
  /// part of the claim; a denial skips the stage, leaving a pending claim
  /// with the arbiter.
  bool find_job_locked(Job& job);
  void worker_loop();

  ServerOptions options_;
  telemetry::MetricsRegistry* metrics_;
  EngineArbiter arbiter_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;
  size_t rr_next_ = 0;  ///< next session the job scan starts from
  bool running_ = false;
  bool stopping_ = false;
};

}  // namespace tincy::serve
