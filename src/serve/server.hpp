#pragma once

/// \file server.hpp
/// Multi-stream serving layer over the shared fabric engine.
///
/// The Fig. 5 demo pipelines ONE video stream; a serving deployment has N
/// independent streams contending for the single conv+pool engine. The
/// StreamServer accepts per-session frame submissions, runs every session
/// through its own stage chain (single-slot free/avail buffers, exactly
/// the paper's Fig. 6 handshake), and multiplexes engine-tagged stages
/// over the EngineArbiter:
///
///  * scheduling is most-mature-first *within* a session (the paper's
///    policy) and round-robin *across* sessions, with engine access
///    weighted and priority-tiered per session by the arbiter;
///  * engine stages that name an offloaded layer (ServeStage::
///    engine_layer >= 0) are **gang-scheduled**: when several sessions
///    have a frame waiting at the same layer, one engine grant covers up
///    to ArbiterOptions::max_batch of them and the leader's batch_work
///    runs the whole gang — one weight-streaming phase instead of one per
///    frame (docs/ARCHITECTURE.md §6). Lone frames fall back to
///    single-frame grants;
///  * each session has a bounded admission queue with a configurable
///    overload policy: reject (kOverloaded backpressure), shed-oldest
///    (drop the stalest queued frame to admit the new one), or degrade
///    (run the session's degrade hook on admissions under pressure);
///  * delivery is in order per session: the single-slot chain prevents a
///    frame overtaking another, stream by stream;
///  * sessions churn freely: open_session/close_session work while the
///    server is running, and a stage that throws quarantines only its own
///    session — queued frames are discarded, the session stops accepting
///    submissions, and every other stream keeps flowing. A batch_work
///    that throws poisons every session in the gang (their frames were in
///    the same engine pass).
///
/// Telemetry (see docs/observability.md):
///   serve.session.<name>.frames      counter, frames delivered
///   serve.session.<name>.latency_ms  histogram, submit -> delivery
///   serve.session.<name>.latency_ms.window  last-10s sliding histogram
///   serve.session.<name>.fps.window  gauge, deliveries/s over last 10 s
///   serve.session.<name>.queue_depth gauge, Little's-law mean admission-
///                                    queue depth (Σ queue-wait / elapsed)
///   serve.session.<name>.rejected    counter, kOverloaded submissions
///   serve.session.<name>.shed        counter, frames shed by kShedOldest
///   serve.session.<name>.degraded    counter, degrade-hook invocations
///   serve.session.<name>.dropped     counter, frames discarded at
///                                    close/quarantine
///   serve.session.<name>.faults      counter, stage/deliver exceptions
///   serve.session.<name>.quarantined gauge, 1 once quarantined
///   serve.arbiter.grants / .queue_depth / .batch_size (EngineArbiter)
///
/// Tracing (docs/observability.md "Tracing"): when ServerOptions::trace
/// is enabled, every frame leaves an async "frame" span (submit ->
/// delivery/drop), an async "queue" span (admission dwell), per-stage
/// "stage:<name>" spans, "arbiter.wait" spans, and "gang" seat instants.
/// When a session is quarantined and flight_recorder_dir is set, the
/// last flight_recorder_events trace events touching that session plus
/// the fault message are dumped to
/// `<flight_recorder_dir>/flight_<name>.json` (Perfetto-loadable).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/arbiter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "video/frame.hpp"

namespace tincy::serve {

/// Outcome of a frame submission.
enum class ServeResult {
  kAccepted,     ///< queued; the session's deliver hook will see it
  kOverloaded,   ///< admission queue full — backpressure, retry later
  kClosed,       ///< server not running, or the session was closed
  kQuarantined,  ///< the session faulted and no longer accepts frames
};

/// What submit() does when a session's admission queue is full (and, for
/// kDegrade, when it is merely under pressure).
enum class OverloadPolicy {
  /// Refuse the new frame with kOverloaded (pure backpressure; default).
  kReject,
  /// Discard the oldest *queued* (not yet started) frame — counted in
  /// serve.session.<name>.shed — and admit the new one: freshness wins.
  kShedOldest,
  /// Run SessionConfig::degrade on every admission once the queue depth
  /// reaches degrade_at × capacity (counted in .degraded), e.g. to
  /// downshift the input resolution; a completely full queue still
  /// rejects with kOverloaded.
  kDegrade,
};

/// One stage of a session's processing chain. Stages with `uses_engine`
/// run only while the session holds the fabric engine grant; everything
/// else overlaps freely across sessions. A stage that throws poisons its
/// session: the session is quarantined, never the server.
struct ServeStage {
  std::string name;
  std::function<void(video::Frame&)> work;
  bool uses_engine = false;
  /// Batched variant for gang-scheduled engine stages: invoked once per
  /// grant over every frame of the gang, the leader's frame first. The
  /// *leader's* batch_work processes all member frames under one engine
  /// hold, so sessions that declare the same engine_layer must install
  /// equivalent batch_work (same offloaded layer, shared weights). A lone
  /// grant runs `work` when present, otherwise batch_work on a 1-span.
  std::function<void(std::span<video::Frame* const>)> batch_work;
  /// Identity of the offloaded layer this stage runs, for gang
  /// coalescing: engine stages of different sessions with the same
  /// engine_layer may be batched into one grant. −1 = unbatchable
  /// (always a single-frame grant). Requires uses_engine and batch_work.
  int64_t engine_layer = -1;
};

/// A client stream: its own stage chain (own network instance — sessions
/// share no mutable state), in-order result delivery, an arbiter weight,
/// a priority tier and an admission-queue bound.
struct SessionConfig {
  /// Metric label; defaults to "s<index>" when empty. Normalized at
  /// open_session: characters outside [A-Za-z0-9._-] become '_' so the
  /// name is safe as a metric-name component and a flight-recorder file
  /// name; names longer than 100 characters are rejected.
  std::string name;
  std::vector<ServeStage> stages;
  /// In-order delivery hook; invoked from worker threads, never
  /// concurrently for the same session.
  std::function<void(video::Frame&&)> deliver;
  /// Under OverloadPolicy::kDegrade: applied to a frame at admission when
  /// the queue is past the pressure mark. Runs inside submit() under the
  /// server lock — keep it cheap (flip a resolution flag, subsample) and
  /// never call back into the server from it.
  std::function<void(video::Frame&)> degrade;
  int weight = 1;    ///< engine share within the priority tier (>= 1)
  int priority = 0;  ///< engine priority tier, higher preempts (>= 0)
  int64_t queue_capacity = 8;  ///< admission bound (>= 1)
};

struct ServerOptions {
  int num_workers = 4;  ///< shared worker pool (paper: 4 × A53)
  /// Server-wide admission behavior under overload.
  OverloadPolicy overload_policy = OverloadPolicy::kReject;
  /// kDegrade pressure mark as a fraction of queue_capacity, in (0, 1].
  double degrade_at = 0.5;
  /// Gang-scheduling knobs handed to the EngineArbiter (max_batch,
  /// batch_linger_us). The default disables coalescing.
  ArbiterOptions arbiter;
  /// Registry for serve.* metrics; null selects the process-wide default.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Trace sink for per-frame events; null selects
  /// telemetry::TraceCollector::global(). Emission only happens while the
  /// collector is enabled (one relaxed load per site otherwise).
  telemetry::TraceCollector* trace = nullptr;
  /// When non-empty, a quarantine dumps the session's trace tail + fault
  /// message to `<dir>/flight_<name>.json` (directory created on demand).
  std::string flight_recorder_dir;
  /// Cap on trace events per flight-recorder dump (>= 1).
  int64_t flight_recorder_events = 256;
};

class StreamServer {
 public:
  /// Validates the options (num_workers >= 1, degrade_at in (0, 1]).
  explicit StreamServer(ServerOptions options = {});

  /// stop()s and joins; queued frames that never started are dropped,
  /// frames inside a stage finish their buffer handoff first.
  ~StreamServer();

  /// Registers a stream — before start() or live, mid-serve (churn).
  /// Validates the config (stages non-empty, each stage has work or
  /// batch_work, batch_work/engine_layer only on engine stages,
  /// queue_capacity >= 1, weight >= 1, priority >= 0). Returns the
  /// session id used by submit()/accessors; ids are never reused.
  int64_t open_session(SessionConfig cfg);

  /// Closes a stream (idempotent): queued frames that never started are
  /// discarded (counted in serve.session.<name>.dropped), frames already
  /// inside the stage chain run to delivery, and further submissions
  /// answer kClosed. Works while the server is running — the churn path.
  /// A closed session's pending gang-queue entry is withdrawn, so it can
  /// never join a batch forming after this call.
  void close_session(int64_t session);

  /// Spawns the worker pool and begins accepting submissions. Resets
  /// every registered session to a fresh open state (clears closed /
  /// quarantined flags and the serve.* metrics of this server's sessions).
  void start();

  /// Admits one frame into the session's queue, applying the overload
  /// policy when the queue is full. Thread safe; any number of producer
  /// threads may submit concurrently.
  ServeResult submit(int64_t session, video::Frame frame);

  /// Blocks until every admitted frame has been delivered or discarded
  /// (or stop() is requested from elsewhere).
  void drain();

  void stop();

  bool running() const;
  int64_t num_sessions() const;
  int64_t queue_depth(int64_t session) const;   ///< admitted, not yet started
  int64_t delivered(int64_t session) const;
  int64_t rejected(int64_t session) const;
  bool closed(int64_t session) const;
  bool quarantined(int64_t session) const;
  /// what() of the exception that quarantined the session ("" if healthy).
  std::string fault_message(int64_t session) const;

  EngineArbiter& arbiter() { return arbiter_; }
  telemetry::MetricsRegistry& metrics() const { return *metrics_; }
  telemetry::Snapshot snapshot() const { return metrics_->snapshot(); }

 private:
  /// Single-slot output buffer of one stage (Fig. 6 free/avail handshake).
  struct Slot {
    std::optional<video::Frame> frame;
    bool reserved = false;
  };

  struct Session {
    SessionConfig cfg;
    std::deque<video::Frame> queue;  ///< admission queue (pre stage 0)
    /// Submission timestamps of undelivered, undiscarded frames in
    /// admission order: the in-flight frames first, then the queued ones.
    std::deque<std::chrono::steady_clock::time_point> submit_times;
    std::vector<Slot> slots;
    int64_t admitted = 0;
    int64_t done = 0;
    /// Frames that will never be delivered: shed under overload, dropped
    /// at close/quarantine. drain() waits for done + discarded == admitted.
    int64_t discarded = 0;
    bool closed = false;
    bool quarantined = false;
    /// Closed/quarantined AND fully drained: skipped by the job scan and
    /// removed from the arbiter, so dead churned sessions cost one branch.
    bool retired = false;
    std::string last_fault;
    /// Σ admission-queue dwell ms of claimed frames; queue_depth_gauge
    /// publishes this over elapsed time (Little's law).
    double queue_wait_ms = 0.0;
    /// Trace epoch (collector ms) of the first denied engine claim of the
    /// current wait, −1 while not waiting; closes an "arbiter.wait" span.
    double engine_wait_start_ms = -1.0;
    /// Pre-built "stage:<name>" span labels, one per stage.
    std::vector<std::string> stage_trace_names;
    telemetry::Counter* frames_counter;
    telemetry::Histogram* latency_hist;
    telemetry::WindowedHistogram* latency_window;
    telemetry::WindowedRate* fps_window;
    telemetry::Gauge* queue_depth_gauge;
    telemetry::Counter* rejected_counter;
    telemetry::Counter* shed_counter;
    telemetry::Counter* degraded_counter;
    telemetry::Counter* dropped_counter;
    telemetry::Counter* faults_counter;
    telemetry::Gauge* quarantined_gauge;
  };

  /// One (session, stage) membership of a claimed job.
  struct Claim {
    int64_t session = -1;
    int64_t stage = -1;
  };

  /// One claimable unit of work: the gang members (leader first; exactly
  /// one entry for plain CPU stages and single-frame grants) plus whether
  /// the claim came with the engine grant already held by the leader.
  struct Job {
    std::vector<Claim> members;
    bool engine = false;
  };

  /// Scans sessions round-robin (rotating start), stages back-to-front
  /// (most mature first). Acquires the engine for engine-tagged stages as
  /// part of the claim — gang-scheduled for stages naming an
  /// engine_layer, with same-layer runnable frames of other sessions
  /// verified under this lock and offered to the arbiter as candidates. A
  /// denial skips the stage, leaving a pending claim with the arbiter.
  bool find_job_locked(Job& job);
  void worker_loop();
  /// Poisons the session: discards its queued and slot-held frames,
  /// withdraws its engine claim and stops admissions. Server keeps going.
  void quarantine_locked(int64_t session, const std::string& what);
  /// Marks a drained closed/quarantined session retired and forgets it at
  /// the arbiter.
  void maybe_retire_locked(int64_t session);
  void reset_session_locked(Session& s);
  /// Emits async-end events for every frame the session still owns
  /// (queued + slot deposits) with the given outcome. Trace-gated.
  void trace_drop_owned_locked(const Session& s, int64_t session,
                               const char* outcome);
  /// Closes a pending "arbiter.wait" span when an engine claim that was
  /// previously denied finally succeeds. Trace-gated.
  void trace_engine_granted_locked(Session& s, int64_t session,
                                   int64_t layer);
  /// Writes the flight-recorder post-mortem for a quarantined session.
  void flight_record_locked(const Session& s, int64_t session,
                            const std::string& what);

  ServerOptions options_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::TraceCollector* trace_;
  EngineArbiter arbiter_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::thread> workers_;
  size_t rr_next_ = 0;  ///< next session the job scan starts from
  int64_t grant_seq_ = 0;  ///< trace-visible engine grant ids
  int64_t wait_seq_ = 0;   ///< async ids for arbiter.wait trace spans
  std::chrono::steady_clock::time_point start_time_{};
  bool running_ = false;
  bool stopping_ = false;
};

}  // namespace tincy::serve
