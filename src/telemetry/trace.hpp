#pragma once

/// \file trace.hpp
/// Per-frame causal tracing: a lock-free, per-thread ring-buffer trace
/// collector plus Chrome trace-event JSON export (loadable in Perfetto /
/// chrome://tracing).
///
/// Aggregate histograms (metrics.hpp) answer "how slow on average"; the
/// trace answers "where did *this* frame's milliseconds go" — admission
/// queue dwell, arbiter wait, gang seat (leader vs. ride-along), each
/// fabric layer pass with its LayerPerf cycle split, GEMM pack/compute,
/// delivery. Events are written into fixed-size per-thread rings of
/// atomic words, so emission never blocks and never allocates; a reader
/// (exporter, flight recorder) snapshots concurrently and simply drops
/// slots that were overwritten mid-read.
///
/// Event model (see docs/observability.md "Tracing"):
///   async "frame"  b/e    submit -> delivery (or shed/drop), one per frame
///   async "queue"  b/e    submit -> stage-0 claim (admission-queue dwell)
///   X "stage:<name>"      one serve/pipeline stage execution
///   i "gang"              engine grant seat: role=leader|member, grant id,
///                         leader also carries batch size
///   X "arbiter.wait"      denied engine claim -> eventual grant
///   X "deliver"           the deliver callback
///   X "net.layer.<i>.*"   one network-layer forward
///   X "fabric.layer<i>"   one (possibly batched) fabric pass, cycle args
///   X "gemm.pack|compute" GEMM spans
/// Deep spans (net/fabric/gemm) learn their frame identity from the
/// thread-local TraceContext installed by the server/pipeline worker.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace tincy::telemetry {

enum class TracePhase : uint8_t {
  kComplete,    ///< Chrome "X": ts + dur span on one thread
  kInstant,     ///< Chrome "i": point event
  kAsyncBegin,  ///< Chrome "b": start of a cross-thread span
  kAsyncEnd,    ///< Chrome "e": end of a cross-thread span
};

/// One decoded trace event. Fixed-size (trivially copyable) so it can be
/// stored in the atomic-word rings; name/args are NUL-terminated and
/// silently truncated on overflow.
struct TraceEvent {
  static constexpr size_t kNameCapacity = 48;
  static constexpr size_t kArgsCapacity = 115;

  double ts_ms = 0.0;   ///< milliseconds since the collector's epoch
  double dur_ms = 0.0;  ///< kComplete only
  int64_t session = -1;
  int64_t frame = -1;
  int32_t tid = 0;  ///< collector-local track id (registration order)
  TracePhase phase = TracePhase::kInstant;
  char name[kNameCapacity] = {};
  char args[kArgsCapacity] = {};  ///< JSON object fragment, e.g. "\"batch\":4"

  std::string_view name_view() const { return {name}; }
  std::string_view args_view() const { return {args}; }
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// Looks up an integer value in an event's args fragment; `fallback`
/// when the key is absent or non-numeric.
int64_t trace_arg_int(const TraceEvent& event, std::string_view key,
                      int64_t fallback = -1);

/// Looks up a string value ("key":"value") in an event's args fragment.
std::string trace_arg_str(const TraceEvent& event, std::string_view key);

/// Thread-local frame identity, installed by the server/pipeline worker
/// around stage execution so nested net/fabric/gemm spans tag themselves.
struct TraceContext {
  int64_t session = -1;
  int64_t frame = -1;
};

TraceContext& current_trace_context();

class ScopedTraceContext {
 public:
  ScopedTraceContext(int64_t session, int64_t frame)
      : prev_(current_trace_context()) {
    current_trace_context() = {session, frame};
  }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext() { current_trace_context() = prev_; }

 private:
  TraceContext prev_;
};

/// Lock-free trace sink. Each emitting thread gets its own ring of
/// `capacity` events (oldest overwritten); emit() is wait-free after the
/// first (mutex-protected, once-per-thread) registration. Disabled
/// collectors cost one relaxed atomic load per emission site.
///
/// Readers (snapshot / session_tail) run concurrently with writers: a
/// slot is copied word-by-word and discarded if the writer lapped it
/// while the copy was in flight, so no locks and no torn events.
class TraceCollector {
 public:
  static constexpr int64_t kDefaultCapacity = 8192;  ///< events per thread

  explicit TraceCollector(int64_t capacity_per_thread = kDefaultCapacity);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Process-wide default instance, used by components that are not
  /// handed an explicit collector (gemm, fabric, Network).
  static TraceCollector& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Milliseconds since this collector's construction (its trace epoch).
  double now_ms() const;

  /// Records one event on the calling thread's ring. No-op while
  /// disabled. `ts_ms` < 0 means "now"; `dur_ms` only matters for
  /// kComplete. `args` is a JSON object fragment without braces.
  void emit(TracePhase phase, std::string_view name, int64_t session,
            int64_t frame, std::string_view args = {}, double dur_ms = 0.0,
            double ts_ms = -1.0);

  void instant(std::string_view name, int64_t session, int64_t frame,
               std::string_view args = {}) {
    emit(TracePhase::kInstant, name, session, frame, args);
  }
  void async_begin(std::string_view name, int64_t session, int64_t frame,
                   std::string_view args = {}) {
    emit(TracePhase::kAsyncBegin, name, session, frame, args);
  }
  void async_end(std::string_view name, int64_t session, int64_t frame,
                 std::string_view args = {}) {
    emit(TracePhase::kAsyncEnd, name, session, frame, args);
  }

  /// All retained events from every thread, sorted by (ts, -dur) so
  /// enclosing spans precede the spans they contain.
  std::vector<TraceEvent> snapshot() const;

  /// The last `max_events` retained events touching `session`, ts-sorted
  /// — the flight-recorder query.
  std::vector<TraceEvent> session_tail(int64_t session,
                                       size_t max_events) const;

  /// Logically discards all retained events. Rings stay allocated and
  /// registered threads keep writing into them.
  void reset();

  int64_t capacity_per_thread() const { return capacity_; }

 private:
  struct Buffer;

  Buffer* buffer_for_this_thread();
  void read_buffer(const Buffer& buf, std::vector<TraceEvent>& out) const;

  const int64_t capacity_;
  const uint64_t instance_id_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};

  mutable std::mutex register_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// RAII complete-span: captures start at construction, emits a
/// TracePhase::kComplete event at destruction. Inert when the collector
/// is null or disabled at construction.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string_view name,
            int64_t session = -1, int64_t frame = -1);

  /// Convenience: tags with the current thread's TraceContext.
  TraceSpan(TraceCollector* collector, std::string_view name,
            const TraceContext& ctx)
      : TraceSpan(collector, name, ctx.session, ctx.frame) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  bool active() const { return collector_ != nullptr; }

  /// Attaches a JSON args fragment (without braces) to the span.
  void set_args(std::string_view args);

 private:
  TraceCollector* collector_ = nullptr;
  double start_ms_ = 0.0;
  int64_t session_ = -1;
  int64_t frame_ = -1;
  char name_[TraceEvent::kNameCapacity] = {};
  char args_[TraceEvent::kArgsCapacity] = {};
};

/// Serializes events as Chrome trace-event JSON (schema
/// "tincy.trace.v1"): {"traceEvents":[{"name","cat","ph","ts","dur",
/// "pid","tid","id","args":{...,"session","frame"}},...]}. ts/dur are
/// microseconds, as the format requires; async events get cat "frame"
/// and id "s<session>.f<frame>". `header_fields` is spliced verbatim
/// into the top-level object before "traceEvents" — the flight recorder
/// uses it to stamp its own schema/session/fault fields while the file
/// stays loadable in Perfetto.
std::string to_chrome_trace(
    const std::vector<TraceEvent>& events,
    std::string_view header_fields = "\"schema\":\"tincy.trace.v1\"");

/// Writes to_chrome_trace() to `path`; throws tincy::Error on I/O failure.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path);

/// Inverse of to_chrome_trace for the subset it emits; throws
/// tincy::Error on malformed input. Used by tools/check_metrics --trace.
std::vector<TraceEvent> parse_chrome_trace(const std::string& json);

}  // namespace tincy::telemetry
