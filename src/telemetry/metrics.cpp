#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace tincy::telemetry {

namespace {

/// Smallest covered value in ms (1 µs); buckets grow by 2^(1/4) per step,
/// so kNumBuckets = 112 steps span 2^28 ≈ 2.7e8× — up to ~4.5 minutes.
constexpr double kBase = 1e-3;
constexpr double kStepsPerOctave = 4.0;

int log_bucket_index(double value) {
  if (!(value > kBase)) return 0;  // also catches NaN and negatives
  const int idx =
      1 + static_cast<int>(kStepsPerOctave * std::log2(value / kBase));
  return std::min(idx, Histogram::kNumBuckets - 1);
}

/// Nearest-rank quantile over log-scaled buckets — shared by the
/// cumulative Histogram and the merged view of WindowedHistogram slices.
double log_bucket_quantile(const int64_t* buckets, int64_t count, double min,
                           double max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based (nearest-rank method).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count))));
  int64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double lo = i == 0 ? min
                               : kBase * std::exp2(static_cast<double>(i - 1) /
                                                   kStepsPerOctave);
      const double hi =
          kBase * std::exp2(static_cast<double>(i) / kStepsPerOctave);
      const double mid = i == 0 ? lo : std::sqrt(lo * hi);
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

}  // namespace

int Histogram::bucket_index(double value) { return log_bucket_index(value); }

void Histogram::record(double value) {
  std::lock_guard lock(mutex_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  last_ = value;
  ++buckets_[bucket_index(value)];
}

double Histogram::quantile_locked(double q) const {
  return log_bucket_quantile(buckets_, count_, min_, max_, q);
}

HistogramStats Histogram::stats() const {
  std::lock_guard lock(mutex_);
  HistogramStats s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.last = last_;
  s.p50 = quantile_locked(0.5);
  s.p95 = quantile_locked(0.95);
  s.p99 = quantile_locked(0.99);
  return s;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  count_ = 0;
  sum_ = min_ = max_ = last_ = 0.0;
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

int64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

double Histogram::last() const {
  std::lock_guard lock(mutex_);
  return last_;
}

double Histogram::quantile(double q) const {
  std::lock_guard lock(mutex_);
  return quantile_locked(q);
}

/// One rotating sub-bucket of a WindowedHistogram. `tag` is the absolute
/// slice index it currently holds; a slot whose tag fell out of the
/// window is logically empty and gets recycled in place.
struct WindowedHistogram::Slice {
  int64_t tag = -1;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  int64_t buckets[Histogram::kNumBuckets] = {};

  void clear(int64_t new_tag) {
    tag = new_tag;
    count = 0;
    sum = min = max = last = 0.0;
    std::fill(std::begin(buckets), std::end(buckets), 0);
  }
};

WindowedHistogram::WindowedHistogram(WindowOptions opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  if (opts_.slices < 1) opts_.slices = 1;
  if (opts_.window.count() < opts_.slices)
    opts_.window = std::chrono::milliseconds(opts_.slices);
  slices_.resize(static_cast<size_t>(opts_.slices));
}

WindowedHistogram::~WindowedHistogram() = default;

int64_t WindowedHistogram::slice_of(
    std::chrono::steady_clock::time_point now) const {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_);
  const int64_t slice_ms =
      std::max<int64_t>(1, opts_.window.count() / opts_.slices);
  return std::max<int64_t>(0, elapsed.count()) / slice_ms;
}

void WindowedHistogram::record(double value) {
  record_at(value, std::chrono::steady_clock::now());
}

void WindowedHistogram::record_at(double value,
                                  std::chrono::steady_clock::time_point now) {
  const int64_t current = slice_of(now);
  std::lock_guard lock(mutex_);
  Slice& slice = slices_[static_cast<size_t>(current % opts_.slices)];
  if (slice.tag != current) slice.clear(current);
  if (slice.count == 0) {
    slice.min = slice.max = value;
  } else {
    slice.min = std::min(slice.min, value);
    slice.max = std::max(slice.max, value);
  }
  ++slice.count;
  slice.sum += value;
  slice.last = value;
  ++slice.buckets[log_bucket_index(value)];
}

HistogramStats WindowedHistogram::stats_locked(int64_t current) const {
  HistogramStats s;
  int64_t merged[Histogram::kNumBuckets] = {};
  int64_t freshest = -1;
  for (const Slice& slice : slices_) {
    // Live slices are those whose tag is within the trailing window
    // ending at the current slice (inclusive).
    if (slice.tag < 0 || slice.tag > current ||
        slice.tag <= current - opts_.slices || slice.count == 0)
      continue;
    if (s.count == 0) {
      s.min = slice.min;
      s.max = slice.max;
    } else {
      s.min = std::min(s.min, slice.min);
      s.max = std::max(s.max, slice.max);
    }
    s.count += slice.count;
    s.sum += slice.sum;
    if (slice.tag > freshest) {
      freshest = slice.tag;
      s.last = slice.last;
    }
    for (int i = 0; i < Histogram::kNumBuckets; ++i)
      merged[i] += slice.buckets[i];
  }
  s.p50 = log_bucket_quantile(merged, s.count, s.min, s.max, 0.5);
  s.p95 = log_bucket_quantile(merged, s.count, s.min, s.max, 0.95);
  s.p99 = log_bucket_quantile(merged, s.count, s.min, s.max, 0.99);
  return s;
}

HistogramStats WindowedHistogram::stats() const {
  return stats_at(std::chrono::steady_clock::now());
}

HistogramStats WindowedHistogram::stats_at(
    std::chrono::steady_clock::time_point now) const {
  const int64_t current = slice_of(now);
  std::lock_guard lock(mutex_);
  return stats_locked(current);
}

void WindowedHistogram::reset() {
  std::lock_guard lock(mutex_);
  for (Slice& slice : slices_) slice.clear(-1);
}

WindowedRate::WindowedRate(WindowOptions opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  if (opts_.slices < 1) opts_.slices = 1;
  if (opts_.window.count() < opts_.slices)
    opts_.window = std::chrono::milliseconds(opts_.slices);
  slices_.resize(static_cast<size_t>(opts_.slices));
}

int64_t WindowedRate::slice_of(
    std::chrono::steady_clock::time_point now) const {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_);
  const int64_t slice_ms =
      std::max<int64_t>(1, opts_.window.count() / opts_.slices);
  return std::max<int64_t>(0, elapsed.count()) / slice_ms;
}

void WindowedRate::add(int64_t n) {
  add_at(n, std::chrono::steady_clock::now());
}

void WindowedRate::add_at(int64_t n,
                          std::chrono::steady_clock::time_point now) {
  const int64_t current = slice_of(now);
  std::lock_guard lock(mutex_);
  Slice& slice = slices_[static_cast<size_t>(current % opts_.slices)];
  if (slice.tag != current) {
    slice.tag = current;
    slice.count = 0;
  }
  slice.count += n;
}

double WindowedRate::per_second() const {
  return per_second_at(std::chrono::steady_clock::now());
}

double WindowedRate::per_second_at(
    std::chrono::steady_clock::time_point now) const {
  const int64_t current = slice_of(now);
  const int64_t slice_ms =
      std::max<int64_t>(1, opts_.window.count() / opts_.slices);
  std::lock_guard lock(mutex_);
  int64_t total = 0;
  int64_t oldest = current + 1;
  for (const Slice& slice : slices_) {
    if (slice.tag < 0 || slice.tag > current ||
        slice.tag <= current - opts_.slices)
      continue;
    total += slice.count;
    oldest = std::min(oldest, slice.tag);
  }
  if (total == 0) return 0.0;
  // Early in a run less than a full window has elapsed; divide by the
  // observed span so warm-up fps is not biased low.
  const int64_t span_ms = (current - oldest + 1) * slice_ms;
  return static_cast<double>(total) /
         (static_cast<double>(std::min<int64_t>(span_ms,
                                                opts_.window.count())) /
          1000.0);
}

void WindowedRate::reset() {
  std::lock_guard lock(mutex_);
  for (Slice& slice : slices_) {
    slice.tag = -1;
    slice.count = 0;
  }
}

const CounterSample* Snapshot::find_counter(std::string_view name) const {
  for (const auto& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeSample* Snapshot::find_gauge(std::string_view name) const {
  for (const auto& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramSample* Snapshot::find_histogram(std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

int64_t Snapshot::counter_value(std::string_view name) const {
  const auto* c = find_counter(name);
  return c ? c->value : 0;
}

double Snapshot::gauge_value(std::string_view name) const {
  const auto* g = find_gauge(name);
  return g ? g->value : 0.0;
}

std::vector<const HistogramSample*> Snapshot::histograms_with_prefix(
    std::string_view prefix) const {
  std::vector<const HistogramSample*> out;
  for (const auto& h : histograms)
    if (std::string_view(h.name).substr(0, prefix.size()) == prefix)
      out.push_back(&h);
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

WindowedHistogram& MetricsRegistry::windowed_histogram(const std::string& name,
                                                       WindowOptions opts) {
  std::lock_guard lock(mutex_);
  auto& slot = windowed_hists_[name];
  if (!slot) slot = std::make_unique<WindowedHistogram>(opts);
  return *slot;
}

WindowedRate& MetricsRegistry::windowed_rate(const std::string& name,
                                             WindowOptions opts) {
  std::lock_guard lock(mutex_);
  auto& slot = windowed_rates_[name];
  if (!slot) slot = std::make_unique<WindowedRate>(opts);
  return *slot;
}

namespace {

bool has_prefix(const std::string& name, std::string_view prefix) {
  return std::string_view(name).substr(0, prefix.size()) == prefix;
}

}  // namespace

Snapshot MetricsRegistry::snapshot(std::string_view prefix) const {
  std::lock_guard lock(mutex_);
  Snapshot s;
  for (const auto& [name, c] : counters_)
    if (has_prefix(name, prefix)) s.counters.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_)
    if (has_prefix(name, prefix)) s.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_)
    if (has_prefix(name, prefix)) s.histograms.push_back({name, h->stats()});
  // Windowed metrics surface as ordinary samples (rate -> gauge); re-sort
  // the merged sections so each stays name-ordered.
  for (const auto& [name, r] : windowed_rates_)
    if (has_prefix(name, prefix)) s.gauges.push_back({name, r->per_second()});
  for (const auto& [name, w] : windowed_hists_)
    if (has_prefix(name, prefix)) s.histograms.push_back({name, w->stats()});
  std::sort(s.gauges.begin(), s.gauges.end(),
            [](const GaugeSample& a, const GaugeSample& b) {
              return a.name < b.name;
            });
  std::sort(s.histograms.begin(), s.histograms.end(),
            [](const HistogramSample& a, const HistogramSample& b) {
              return a.name < b.name;
            });
  return s;
}

void MetricsRegistry::reset(std::string_view prefix) {
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_)
    if (has_prefix(name, prefix)) c->reset();
  for (const auto& [name, g] : gauges_)
    if (has_prefix(name, prefix)) g->reset();
  for (const auto& [name, h] : histograms_)
    if (has_prefix(name, prefix)) h->reset();
  for (const auto& [name, r] : windowed_rates_)
    if (has_prefix(name, prefix)) r->reset();
  for (const auto& [name, w] : windowed_hists_)
    if (has_prefix(name, prefix)) w->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

double ScopedTimer::stop() {
  if (hist_ == nullptr) return 0.0;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  hist_->record(ms);
  hist_ = nullptr;
  return ms;
}

}  // namespace tincy::telemetry
