#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace tincy::telemetry {

namespace {

/// Smallest covered value in ms (1 µs); buckets grow by 2^(1/4) per step,
/// so kNumBuckets = 112 steps span 2^28 ≈ 2.7e8× — up to ~4.5 minutes.
constexpr double kBase = 1e-3;
constexpr double kStepsPerOctave = 4.0;

}  // namespace

int Histogram::bucket_index(double value) {
  if (!(value > kBase)) return 0;  // also catches NaN and negatives
  const int idx =
      1 + static_cast<int>(kStepsPerOctave * std::log2(value / kBase));
  return std::min(idx, kNumBuckets - 1);
}

void Histogram::record(double value) {
  std::lock_guard lock(mutex_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  last_ = value;
  ++buckets_[bucket_index(value)];
}

double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based (nearest-rank method).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double lo = i == 0 ? min_
                               : kBase * std::exp2(static_cast<double>(i - 1) /
                                                   kStepsPerOctave);
      const double hi =
          kBase * std::exp2(static_cast<double>(i) / kStepsPerOctave);
      const double mid = i == 0 ? lo : std::sqrt(lo * hi);
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

HistogramStats Histogram::stats() const {
  std::lock_guard lock(mutex_);
  HistogramStats s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.last = last_;
  s.p50 = quantile_locked(0.5);
  s.p95 = quantile_locked(0.95);
  s.p99 = quantile_locked(0.99);
  return s;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  count_ = 0;
  sum_ = min_ = max_ = last_ = 0.0;
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

int64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

double Histogram::last() const {
  std::lock_guard lock(mutex_);
  return last_;
}

double Histogram::quantile(double q) const {
  std::lock_guard lock(mutex_);
  return quantile_locked(q);
}

const CounterSample* Snapshot::find_counter(std::string_view name) const {
  for (const auto& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeSample* Snapshot::find_gauge(std::string_view name) const {
  for (const auto& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramSample* Snapshot::find_histogram(std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

int64_t Snapshot::counter_value(std::string_view name) const {
  const auto* c = find_counter(name);
  return c ? c->value : 0;
}

double Snapshot::gauge_value(std::string_view name) const {
  const auto* g = find_gauge(name);
  return g ? g->value : 0.0;
}

std::vector<const HistogramSample*> Snapshot::histograms_with_prefix(
    std::string_view prefix) const {
  std::vector<const HistogramSample*> out;
  for (const auto& h : histograms)
    if (std::string_view(h.name).substr(0, prefix.size()) == prefix)
      out.push_back(&h);
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

bool has_prefix(const std::string& name, std::string_view prefix) {
  return std::string_view(name).substr(0, prefix.size()) == prefix;
}

}  // namespace

Snapshot MetricsRegistry::snapshot(std::string_view prefix) const {
  std::lock_guard lock(mutex_);
  Snapshot s;
  for (const auto& [name, c] : counters_)
    if (has_prefix(name, prefix)) s.counters.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_)
    if (has_prefix(name, prefix)) s.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_)
    if (has_prefix(name, prefix)) s.histograms.push_back({name, h->stats()});
  return s;  // std::map iteration order keeps each section name-sorted
}

void MetricsRegistry::reset(std::string_view prefix) {
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_)
    if (has_prefix(name, prefix)) c->reset();
  for (const auto& [name, g] : gauges_)
    if (has_prefix(name, prefix)) g->reset();
  for (const auto& [name, h] : histograms_)
    if (has_prefix(name, prefix)) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

double ScopedTimer::stop() {
  if (hist_ == nullptr) return 0.0;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  hist_->record(ms);
  hist_ = nullptr;
  return ms;
}

}  // namespace tincy::telemetry
