#include "telemetry/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/errors.hpp"

namespace tincy::telemetry {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double v) {
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"tincy.telemetry.v1\",\n";

  out += "  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, snapshot.counters[i].name);
    out += ": " + std::to_string(snapshot.counters[i].value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, snapshot.gauges[i].name);
    out += ": " + format_double(snapshot.gauges[i].value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, h.name);
    out += ": {\"count\": " + std::to_string(h.stats.count);
    out += ", \"sum\": " + format_double(h.stats.sum);
    out += ", \"min\": " + format_double(h.stats.min);
    out += ", \"max\": " + format_double(h.stats.max);
    out += ", \"last\": " + format_double(h.stats.last);
    out += ", \"p50\": " + format_double(h.stats.p50);
    out += ", \"p95\": " + format_double(h.stats.p95);
    out += ", \"p99\": " + format_double(h.stats.p99);
    out += "}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

void write_json(const Snapshot& snapshot, const std::string& path) {
  std::ofstream f(path);
  TINCY_CHECK_MSG(f.good(), "cannot open '" << path << "' for writing");
  f << to_json(snapshot);
  f.flush();
  TINCY_CHECK_MSG(f.good(), "write to '" << path << "' failed");
}

namespace {

/// Recursive-descent parser for the JSON subset to_json emits: objects
/// with string keys whose values are numbers, strings or nested objects.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Snapshot parse() {
    Snapshot s;
    expect('{');
    bool saw_schema = false;
    for (bool first = true;; first = false) {
      skip_ws();
      if (peek() == '}') break;
      if (!first) expect(',');
      const std::string key = parse_string();
      expect(':');
      if (key == "schema") {
        const std::string v = parse_string();
        TINCY_CHECK_MSG(v == "tincy.telemetry.v1",
                        "unsupported telemetry schema '" << v << "'");
        saw_schema = true;
      } else if (key == "counters") {
        parse_flat_object([&](const std::string& name, double v) {
          s.counters.push_back({name, static_cast<int64_t>(v)});
        });
      } else if (key == "gauges") {
        parse_flat_object([&](const std::string& name, double v) {
          s.gauges.push_back({name, v});
        });
      } else if (key == "histograms") {
        parse_histograms(s);
      } else {
        fail("unexpected key '" + key + "'");
      }
    }
    expect('}');
    skip_ws();
    TINCY_CHECK_MSG(pos_ == text_.size(), "trailing content after document");
    TINCY_CHECK_MSG(saw_schema, "missing schema marker");
    return s;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("telemetry JSON parse error at offset " +
                std::to_string(pos_) + ": " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            c = static_cast<char>(
                std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::string_view("+-.eEinfa").find(text_[pos_]) !=
                std::string_view::npos))
      ++pos_;
    if (pos_ == start) fail("expected number");
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str()) fail("bad number '" + tok + "'");
    return v;
  }

  template <typename Fn>
  void parse_flat_object(Fn&& on_entry) {
    expect('{');
    for (bool first = true;; first = false) {
      skip_ws();
      if (peek() == '}') break;
      if (!first) expect(',');
      const std::string name = parse_string();
      expect(':');
      on_entry(name, parse_number());
    }
    expect('}');
  }

  void parse_histograms(Snapshot& s) {
    expect('{');
    for (bool first = true;; first = false) {
      skip_ws();
      if (peek() == '}') break;
      if (!first) expect(',');
      HistogramSample h;
      h.name = parse_string();
      expect(':');
      parse_flat_object([&](const std::string& field, double v) {
        if (field == "count") h.stats.count = static_cast<int64_t>(v);
        else if (field == "sum") h.stats.sum = v;
        else if (field == "min") h.stats.min = v;
        else if (field == "max") h.stats.max = v;
        else if (field == "last") h.stats.last = v;
        else if (field == "p50") h.stats.p50 = v;
        else if (field == "p95") h.stats.p95 = v;
        else if (field == "p99") h.stats.p99 = v;
        else fail("unknown histogram field '" + field + "'");
      });
      s.histograms.push_back(std::move(h));
    }
    expect('}');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Snapshot parse_snapshot(const std::string& json) {
  return Parser(json).parse();
}

std::string summary_table(const Snapshot& snapshot) {
  std::ostringstream os;
  char line[256];
  if (!snapshot.histograms.empty()) {
    std::snprintf(line, sizeof line, "%-40s %8s %10s %10s %10s %10s %10s\n",
                  "histogram", "count", "mean", "p50", "p95", "p99", "max");
    os << line;
    for (const auto& h : snapshot.histograms) {
      std::snprintf(line, sizeof line,
                    "%-40s %8" PRId64 " %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    h.name.c_str(), h.stats.count, h.stats.mean(),
                    h.stats.p50, h.stats.p95, h.stats.p99, h.stats.max);
      os << line;
    }
  }
  if (!snapshot.counters.empty()) {
    std::snprintf(line, sizeof line, "%-40s %12s\n", "counter", "value");
    os << line;
    for (const auto& c : snapshot.counters) {
      std::snprintf(line, sizeof line, "%-40s %12" PRId64 "\n",
                    c.name.c_str(), c.value);
      os << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    std::snprintf(line, sizeof line, "%-40s %12s\n", "gauge", "value");
    os << line;
    for (const auto& g : snapshot.gauges) {
      std::snprintf(line, sizeof line, "%-40s %12.3f\n", g.name.c_str(),
                    g.value);
      os << line;
    }
  }
  return os.str();
}

}  // namespace tincy::telemetry
