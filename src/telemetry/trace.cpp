#include "telemetry/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/errors.hpp"

namespace tincy::telemetry {

namespace {

/// Each ring slot holds one TraceEvent as a run of atomic words; copying
/// word-by-word keeps concurrent reader/writer accesses data-race-free.
constexpr size_t kWordsPerSlot = (sizeof(TraceEvent) + 7) / 8;

uint64_t next_instance_id() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void copy_bounded(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

int64_t trace_arg_int(const TraceEvent& event, std::string_view key,
                      int64_t fallback) {
  std::string pattern = "\"";
  pattern.append(key);
  pattern += "\":";
  const std::string_view args = event.args_view();
  const size_t pos = args.find(pattern);
  if (pos == std::string_view::npos) return fallback;
  const char* p = event.args + pos + pattern.size();
  char* end = nullptr;
  const long long v = std::strtoll(p, &end, 10);
  return end == p ? fallback : static_cast<int64_t>(v);
}

std::string trace_arg_str(const TraceEvent& event, std::string_view key) {
  std::string pattern = "\"";
  pattern.append(key);
  pattern += "\":\"";
  const std::string_view args = event.args_view();
  const size_t pos = args.find(pattern);
  if (pos == std::string_view::npos) return {};
  const size_t start = pos + pattern.size();
  const size_t stop = args.find('"', start);
  if (stop == std::string_view::npos) return {};
  return std::string(args.substr(start, stop - start));
}

TraceContext& current_trace_context() {
  thread_local TraceContext ctx;
  return ctx;
}

/// One emitting thread's ring. `head` counts events ever written; the
/// writer (owning thread only) stores the slot's words relaxed and then
/// publishes with a release store of head. `floor` is the reset
/// watermark: events below it are logically discarded.
struct TraceCollector::Buffer {
  Buffer(int64_t capacity, int32_t tid_in)
      : tid(tid_in),
        capacity(capacity),
        words(std::make_unique<std::atomic<uint64_t>[]>(
            static_cast<size_t>(capacity) * kWordsPerSlot)) {}

  const int32_t tid;
  const int64_t capacity;
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> floor{0};
  std::unique_ptr<std::atomic<uint64_t>[]> words;
};

TraceCollector::TraceCollector(int64_t capacity_per_thread)
    : capacity_(capacity_per_thread > 0 ? capacity_per_thread : 1),
      instance_id_(next_instance_id()),
      epoch_(std::chrono::steady_clock::now()) {}

TraceCollector::~TraceCollector() = default;

TraceCollector& TraceCollector::global() {
  // Deliberately leaked: worker threads may still emit during static
  // destruction, so the process-wide collector must never be destroyed.
  static TraceCollector& instance = *new TraceCollector();
  return instance;
}

double TraceCollector::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceCollector::Buffer* TraceCollector::buffer_for_this_thread() {
  struct CacheEntry {
    const TraceCollector* collector;
    uint64_t instance;
    Buffer* buffer;
  };
  // Entries are matched by pointer AND instance id, so a dead collector's
  // entry can never alias a new collector reusing the same address.
  thread_local std::vector<CacheEntry> cache;
  for (const auto& entry : cache)
    if (entry.collector == this && entry.instance == instance_id_)
      return entry.buffer;
  std::lock_guard lock(register_mutex_);
  auto buffer =
      std::make_unique<Buffer>(capacity_, static_cast<int32_t>(buffers_.size()));
  Buffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  cache.push_back({this, instance_id_, raw});
  return raw;
}

void TraceCollector::emit(TracePhase phase, std::string_view name,
                          int64_t session, int64_t frame,
                          std::string_view args, double dur_ms, double ts_ms) {
  if (!enabled()) return;
  Buffer* buf = buffer_for_this_thread();
  TraceEvent ev;
  ev.ts_ms = ts_ms < 0.0 ? now_ms() : ts_ms;
  ev.dur_ms = dur_ms;
  ev.session = session;
  ev.frame = frame;
  ev.tid = buf->tid;
  ev.phase = phase;
  copy_bounded(ev.name, sizeof ev.name, name);
  copy_bounded(ev.args, sizeof ev.args, args);

  uint64_t encoded[kWordsPerSlot] = {};
  std::memcpy(encoded, &ev, sizeof ev);
  const uint64_t h = buf->head.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* slot =
      buf->words.get() +
      (h % static_cast<uint64_t>(buf->capacity)) * kWordsPerSlot;
  for (size_t i = 0; i < kWordsPerSlot; ++i)
    slot[i].store(encoded[i], std::memory_order_relaxed);
  buf->head.store(h + 1, std::memory_order_release);
}

void TraceCollector::read_buffer(const Buffer& buf,
                                 std::vector<TraceEvent>& out) const {
  const uint64_t cap = static_cast<uint64_t>(buf.capacity);
  const uint64_t head = buf.head.load(std::memory_order_acquire);
  uint64_t lo = buf.floor.load(std::memory_order_relaxed);
  if (head > cap && head - cap > lo) lo = head - cap;
  for (uint64_t u = lo; u < head; ++u) {
    const std::atomic<uint64_t>* slot =
        buf.words.get() + (u % cap) * kWordsPerSlot;
    uint64_t encoded[kWordsPerSlot];
    for (size_t i = 0; i < kWordsPerSlot; ++i)
      encoded[i] = slot[i].load(std::memory_order_relaxed);
    // The writer may have started overwriting this slot (its entry u+cap)
    // while we copied; in that case the copy may be torn — drop it.
    const uint64_t head_now = buf.head.load(std::memory_order_acquire);
    if (head_now >= u + cap) continue;
    TraceEvent ev;
    std::memcpy(&ev, encoded, sizeof ev);
    ev.name[sizeof ev.name - 1] = '\0';
    ev.args[sizeof ev.args - 1] = '\0';
    out.push_back(ev);
  }
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(register_mutex_);
    for (const auto& buf : buffers_) read_buffer(*buf, out);
  }
  // Enclosing spans sort before the spans they contain.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ms != b.ts_ms) return a.ts_ms < b.ts_ms;
                     return a.dur_ms > b.dur_ms;
                   });
  return out;
}

std::vector<TraceEvent> TraceCollector::session_tail(int64_t session,
                                                     size_t max_events) const {
  std::vector<TraceEvent> all = snapshot();
  std::vector<TraceEvent> filtered;
  for (const auto& ev : all)
    if (ev.session == session) filtered.push_back(ev);
  if (filtered.size() > max_events)
    filtered.erase(filtered.begin(),
                   filtered.end() - static_cast<ptrdiff_t>(max_events));
  return filtered;
}

void TraceCollector::reset() {
  std::lock_guard lock(register_mutex_);
  for (const auto& buf : buffers_)
    buf->floor.store(buf->head.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
}

TraceSpan::TraceSpan(TraceCollector* collector, std::string_view name,
                     int64_t session, int64_t frame) {
  if (collector == nullptr || !collector->enabled()) return;
  collector_ = collector;
  start_ms_ = collector->now_ms();
  session_ = session;
  frame_ = frame;
  copy_bounded(name_, sizeof name_, name);
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr) return;
  collector_->emit(TracePhase::kComplete, name_, session_, frame_, args_,
                   collector_->now_ms() - start_ms_, start_ms_);
}

void TraceSpan::set_args(std::string_view args) {
  if (collector_ == nullptr) return;
  copy_bounded(args_, sizeof args_, args);
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_us(std::string& out, double ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ms * 1000.0);
  out += buf;
}

const char* phase_letter(TracePhase phase) {
  switch (phase) {
    case TracePhase::kComplete: return "X";
    case TracePhase::kInstant: return "i";
    case TracePhase::kAsyncBegin: return "b";
    case TracePhase::kAsyncEnd: return "e";
  }
  return "i";
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                            std::string_view header_fields) {
  std::string out;
  out.reserve(events.size() * 180 + 64);
  out += '{';
  if (!header_fields.empty()) {
    out += header_fields;
    out += ',';
  }
  out += "\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out += ',';
    first = false;
    const bool is_async = ev.phase == TracePhase::kAsyncBegin ||
                          ev.phase == TracePhase::kAsyncEnd;
    out += "{\"name\":";
    append_escaped(out, ev.name_view());
    out += ",\"cat\":\"";
    out += is_async ? "frame" : "tincy";
    out += "\",\"ph\":\"";
    out += phase_letter(ev.phase);
    out += "\",\"ts\":";
    append_us(out, ev.ts_ms);
    if (ev.phase == TracePhase::kComplete) {
      out += ",\"dur\":";
      append_us(out, ev.dur_ms);
    }
    std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%" PRId32, ev.tid);
    out += buf;
    if (is_async) {
      std::snprintf(buf, sizeof buf, ",\"id\":\"s%" PRId64 ".f%" PRId64 "\"",
                    ev.session, ev.frame);
      out += buf;
    }
    out += ",\"args\":{";
    if (ev.args[0] != '\0') {
      out += ev.args_view();
      out += ',';
    }
    std::snprintf(buf, sizeof buf,
                  "\"session\":%" PRId64 ",\"frame\":%" PRId64 "}}", ev.session,
                  ev.frame);
    out += buf;
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  TINCY_CHECK_MSG(file.good(), "cannot open " << path << " for writing");
  const std::string json = to_chrome_trace(events);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  TINCY_CHECK_MSG(file.good(), "short write to " << path);
}

// ---------------------------------------------------------------------------
// Parser for the subset emitted above (tools/check_metrics --trace).

namespace {

class TraceParser {
 public:
  explicit TraceParser(const std::string& text) : text_(text) {}

  std::vector<TraceEvent> parse() {
    std::vector<TraceEvent> events;
    skip_ws();
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (consume('}')) break;
      if (!first) {
        // separators are consumed below; nothing to do
      }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "traceEvents") {
        parse_events(events);
      } else {
        skip_value();
      }
      skip_ws();
      consume(',');
    }
    return events;
  }

 private:
  void parse_events(std::vector<TraceEvent>& events) {
    expect('[');
    skip_ws();
    if (consume(']')) return;
    while (true) {
      events.push_back(parse_event());
      skip_ws();
      if (consume(']')) break;
      expect(',');
      skip_ws();
    }
  }

  TraceEvent parse_event() {
    TraceEvent ev;
    std::string args_fragment;
    skip_ws();
    expect('{');
    while (true) {
      skip_ws();
      if (consume('}')) break;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "name") {
        copy_bounded(ev.name, sizeof ev.name, parse_string());
      } else if (key == "ph") {
        const std::string ph = parse_string();
        if (ph == "X") ev.phase = TracePhase::kComplete;
        else if (ph == "i") ev.phase = TracePhase::kInstant;
        else if (ph == "b") ev.phase = TracePhase::kAsyncBegin;
        else if (ph == "e") ev.phase = TracePhase::kAsyncEnd;
        else fail("unsupported trace phase '" + ph + "'");
      } else if (key == "ts") {
        ev.ts_ms = parse_number() / 1000.0;
      } else if (key == "dur") {
        ev.dur_ms = parse_number() / 1000.0;
      } else if (key == "tid") {
        ev.tid = static_cast<int32_t>(parse_number());
      } else if (key == "args") {
        parse_args(ev, args_fragment);
      } else {
        skip_value();
      }
      skip_ws();
      consume(',');
    }
    copy_bounded(ev.args, sizeof ev.args, args_fragment);
    return ev;
  }

  void parse_args(TraceEvent& ev, std::string& fragment) {
    expect('{');
    while (true) {
      skip_ws();
      if (consume('}')) break;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const size_t start = pos_;
      skip_value();
      const std::string_view raw(text_.data() + start, pos_ - start);
      if (key == "session") {
        ev.session = static_cast<int64_t>(std::strtoll(
            std::string(raw).c_str(), nullptr, 10));
      } else if (key == "frame") {
        ev.frame = static_cast<int64_t>(std::strtoll(
            std::string(raw).c_str(), nullptr, 10));
      } else {
        if (!fragment.empty()) fragment += ',';
        fragment += '"';
        fragment += key;
        fragment += "\":";
        fragment.append(raw);
      }
      skip_ws();
      consume(',');
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c))
      fail(std::string("expected '") + c + "'");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        TINCY_CHECK_MSG(pos_ < text_.size(), "truncated escape in trace JSON");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            TINCY_CHECK_MSG(pos_ + 4 <= text_.size(),
                            "truncated \\u escape in trace JSON");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default:
            fail("unsupported escape in trace JSON");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string in trace JSON");
    return out;
  }

  double parse_number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    TINCY_CHECK_MSG(pos_ > start, "expected number in trace JSON");
    return std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
  }

  void skip_value() {
    skip_ws();
    TINCY_CHECK_MSG(pos_ < text_.size(), "truncated trace JSON");
    const char c = text_[pos_];
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      ++pos_;
      while (true) {
        skip_ws();
        if (consume('}')) return;
        parse_string();
        skip_ws();
        expect(':');
        skip_value();
        skip_ws();
        consume(',');
      }
    } else if (c == '[') {
      ++pos_;
      while (true) {
        skip_ws();
        if (consume(']')) return;
        skip_value();
        skip_ws();
        consume(',');
      }
    } else if (c == 't') {
      expect_word("true");
    } else if (c == 'f') {
      expect_word("false");
    } else if (c == 'n') {
      expect_word("null");
    } else {
      parse_number();
    }
  }

  void expect_word(const char* word) {
    const size_t len = std::strlen(word);
    TINCY_CHECK_MSG(text_.compare(pos_, len, word) == 0,
                    "malformed literal in trace JSON");
    pos_ += len;
  }

  [[noreturn]] void fail(const std::string& what) {
    throw Error("trace JSON parse error at byte " + std::to_string(pos_) +
                ": " + what);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<TraceEvent> parse_chrome_trace(const std::string& json) {
  return TraceParser(json).parse();
}

}  // namespace tincy::telemetry
