#pragma once

/// \file export.hpp
/// Snapshot serialization: a stable JSON document (schema
/// "tincy.telemetry.v1"), a plain-text summary table for terminals, and a
/// parser for the emitted subset of JSON so exports round-trip (used by
/// tests and by tools/check_metrics).

#include <string>

#include "telemetry/metrics.hpp"

namespace tincy::telemetry {

/// Serializes a snapshot:
/// {
///   "schema": "tincy.telemetry.v1",
///   "counters":   {"<name>": <int>, ...},
///   "gauges":     {"<name>": <double>, ...},
///   "histograms": {"<name>": {"count": n, "sum": s, "min": m, "max": M,
///                             "last": l, "p50": a, "p95": b}, ...}
/// }
std::string to_json(const Snapshot& snapshot);

/// Writes to_json() to `path`; throws tincy::Error on I/O failure.
void write_json(const Snapshot& snapshot, const std::string& path);

/// Inverse of to_json for the schema above; throws tincy::Error on
/// malformed input or a wrong/missing schema marker.
Snapshot parse_snapshot(const std::string& json);

/// Human-readable rendering: one table per metric kind, name-sorted —
/// the Table-III-style per-stage latency view.
std::string summary_table(const Snapshot& snapshot);

}  // namespace tincy::telemetry
