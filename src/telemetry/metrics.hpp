#pragma once

/// \file metrics.hpp
/// The unified stats substrate: a thread-safe MetricsRegistry holding
/// counters, gauges and latency histograms, plus RAII ScopedTimer spans.
///
/// The paper's headline results are per-stage numbers — the Table III
/// stage latencies, the Fig. 6 pipeline occupancy, the §III speedup
/// ladder. This subsystem gives every hot path (Network::forward,
/// Pipeline::worker_loop, OffloadLayer::forward, the gemm kernels) one
/// way to report them, replacing the previously scattered ad-hoc timing
/// (pipeline::StageStats, Network::last_layer_ms, DemoResult fields),
/// which are now thin adapters over a telemetry::Snapshot.
///
/// Naming convention (see docs/observability.md):
///   net.forward.ms              whole-network forward latency
///   net.layer.<i>.<type>.ms     per-layer latency (Table III rows)
///   pipeline.stage.<name>.*     busy_ms / wait_ms / jobs / queue_depth
///   pipeline.frame_latency_ms   source pull -> sink delivery
///   offload.<library>.*         forward_ms / frames / ops per backend
///   gemm.*                      im2col vs. GEMM split of the conv paths

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tincy::telemetry {

/// Monotonically increasing integer metric (events, jobs, ops).
class Counter {
 public:
  void add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric (fps, occupancy, config values).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of a histogram at snapshot time. Quantiles are
/// estimated from log-scaled buckets (≤ ~9 % relative error); count, sum,
/// min, max and last are exact.
struct HistogramStats {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;  ///< most recently recorded value
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Latency histogram with log-scaled buckets covering 1 µs .. ~100 s
/// (values are conventionally milliseconds). Thread-safe.
class Histogram {
 public:
  /// Bucket i spans [kBase·r^(i-1), kBase·r^i) with r = 2^(1/4); two
  /// overflow buckets catch values below/above the covered range.
  static constexpr int kNumBuckets = 112;

  void record(double value);
  HistogramStats stats() const;
  void reset();

  int64_t count() const;
  double sum() const;
  double last() const;
  /// Quantile estimate in [0, 1]; exact at q=1 (returns max).
  double quantile(double q) const;

 private:
  static int bucket_index(double value);
  double quantile_locked(double q) const;

  mutable std::mutex mutex_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double last_ = 0.0;
  int64_t buckets_[kNumBuckets] = {};
};

/// Shape of a sliding window: `window` of history kept as `slices`
/// rotating sub-buckets (finer slices decay more smoothly).
struct WindowOptions {
  std::chrono::milliseconds window{10000};
  int slices = 10;
};

/// Histogram over only the last `window` of wall-clock time: the live
/// tail behind `*.window` metrics (last-10s p99 etc.). Same log-scaled
/// buckets and stats surface as Histogram; samples expire as their slice
/// rotates out. The `*_at` overloads take an explicit steady-clock time
/// so decay is testable against a scripted clock. Thread-safe.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(WindowOptions opts = {});
  ~WindowedHistogram();  // out-of-line: Slice is incomplete here

  void record(double value);
  void record_at(double value, std::chrono::steady_clock::time_point now);
  HistogramStats stats() const;
  HistogramStats stats_at(std::chrono::steady_clock::time_point now) const;
  void reset();

 private:
  struct Slice;
  int64_t slice_of(std::chrono::steady_clock::time_point now) const;
  HistogramStats stats_locked(int64_t current_slice) const;

  mutable std::mutex mutex_;
  WindowOptions opts_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Slice> slices_;
};

/// Events-per-second over only the last `window` (the live fps gauge).
/// Thread-safe; `*_at` overloads exist for scripted-clock tests.
class WindowedRate {
 public:
  explicit WindowedRate(WindowOptions opts = {});

  void add(int64_t n = 1);
  void add_at(int64_t n, std::chrono::steady_clock::time_point now);
  double per_second() const;
  double per_second_at(std::chrono::steady_clock::time_point now) const;
  void reset();

 private:
  struct Slice {
    int64_t tag = -1;  ///< absolute slice index, -1 when empty
    int64_t count = 0;
  };
  int64_t slice_of(std::chrono::steady_clock::time_point now) const;

  mutable std::mutex mutex_;
  WindowOptions opts_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Slice> slices_;
};

/// Point-in-time sample of one named metric.
struct CounterSample {
  std::string name;
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  HistogramStats stats;
};

/// The one stats surface every component returns: a consistent,
/// name-sorted sample of a registry. Pipeline::stats(),
/// Network::last_layer_ms() and DemoResult are adapters over this.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers; null / 0 when the metric is absent.
  const CounterSample* find_counter(std::string_view name) const;
  const GaugeSample* find_gauge(std::string_view name) const;
  const HistogramSample* find_histogram(std::string_view name) const;
  int64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;

  /// All histogram samples whose name starts with `prefix`.
  std::vector<const HistogramSample*> histograms_with_prefix(
      std::string_view prefix) const;
};

/// Thread-safe registry of named metrics. Metric objects are created on
/// first access and live as long as the registry; returned references are
/// stable, so hot paths should resolve them once and keep the pointer.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Windowed variants (conventionally named `<base>.window`). They show
  /// up in snapshot() as an ordinary histogram sample / gauge (rate in
  /// events-per-second), so exports and check tools need no new schema.
  WindowedHistogram& windowed_histogram(const std::string& name,
                                        WindowOptions opts = {});
  WindowedRate& windowed_rate(const std::string& name,
                              WindowOptions opts = {});

  /// Consistent sample of every metric (optionally restricted to names
  /// starting with `prefix`), sorted by name.
  Snapshot snapshot(std::string_view prefix = {}) const;

  /// Zeroes every metric whose name starts with `prefix` (all when empty).
  /// Metric objects stay registered; cached pointers remain valid.
  void reset(std::string_view prefix = {});

  /// The process-wide default registry used by components that are not
  /// handed an explicit one (gemm kernels, the CLI).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windowed_hists_;
  std::map<std::string, std::unique_ptr<WindowedRate>> windowed_rates_;
};

/// RAII span: records the elapsed wall-clock milliseconds into a
/// histogram on destruction (or explicit stop()).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}

  /// Convenience: resolves `registry.histogram(name)` first.
  ScopedTimer(MetricsRegistry& registry, const std::string& name)
      : ScopedTimer(registry.histogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Ends the span early; returns the recorded milliseconds. Idempotent.
  double stop();

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tincy::telemetry
