#pragma once

/// \file gemm_ref.hpp
/// Straightforward reference GEMM — the "valuable reference implementation"
/// role Darknet's generic C path plays in the paper (§III-D). All optimized
/// kernels are validated against this.

#include <cstdint>

#include "core/tensor.hpp"

namespace tincy::gemm {

/// C (M×N) += A (M×K) · B (K×N), all row-major float. `beta` scales the
/// existing C first (0 overwrites, 1 accumulates) — the two cases layers
/// actually need.
void gemm_ref(int64_t M, int64_t N, int64_t K, const float* A, const float* B,
              float* C, float beta = 0.0f);

/// Convenience wrapper on tensors; shapes must be rank-2 and conformant.
Tensor gemm_ref(const Tensor& A, const Tensor& B);

}  // namespace tincy::gemm
