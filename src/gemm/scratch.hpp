#pragma once

/// \file scratch.hpp
/// Per-thread scratch arena for the GEMM hot paths.
///
/// Every lowp conv/GEMM call used to heap-allocate its working buffers
/// (quantized image, im2col columns, packed panels, accumulator rows).
/// The arena replaces those with bump allocations from thread-local
/// blocks that are retained across calls: once a thread has seen its
/// largest frame, every subsequent frame performs zero heap allocations.
/// `heap_allocations()` counts block acquisitions so tests can assert the
/// steady state.
///
/// Usage pattern (scoped, stack-like):
///   auto& arena = thread_arena();
///   ScratchScope scope(arena);            // rewinds on destruction
///   uint8_t* buf = arena.alloc<uint8_t>(n);
///
/// Allocations are 64-byte aligned (cache line) and valid until the
/// enclosing ScratchScope unwinds. Blocks are chained, never reallocated,
/// so growth does not invalidate live pointers; scopes nest freely.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tincy::gemm {

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `count` elements of T, 64-byte aligned.
  template <typename T>
  T* alloc(int64_t count) {
    return reinterpret_cast<T*>(
        alloc_bytes(static_cast<size_t>(count) * sizeof(T)));
  }

  /// Number of backing blocks acquired from the heap so far. Constant
  /// across steady-state frames (the zero-allocation property under test).
  int64_t heap_allocations() const { return heap_allocations_; }

  /// Total bytes owned across all blocks.
  size_t capacity() const;

 private:
  friend class ScratchScope;

  struct Block {
    std::byte* data = nullptr;
    size_t size = 0;
  };

  void* alloc_bytes(size_t bytes);

  std::vector<Block> blocks_;
  size_t block_ = 0;   ///< index of the block currently bumped into
  size_t offset_ = 0;  ///< bump offset within blocks_[block_]
  int64_t heap_allocations_ = 0;
};

/// RAII watermark: rewinds the arena to its entry position on destruction.
class ScratchScope {
 public:
  explicit ScratchScope(Arena& arena)
      : arena_(arena), block_(arena.block_), offset_(arena.offset_) {}
  ~ScratchScope() {
    arena_.block_ = block_;
    arena_.offset_ = offset_;
  }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  Arena& arena_;
  size_t block_;
  size_t offset_;
};

/// The calling thread's arena (thread_local; lives for the thread).
Arena& thread_arena();

}  // namespace tincy::gemm
