#pragma once

/// \file kernels.hpp
/// Runtime-dispatched micro-kernel variants of the packed GEMM engine.
///
/// The paper's §III-D CPU kernels get their throughput from NEON widening
/// i8 multiply-accumulates and saturating rounding narrows. This host is
/// x86, so the engine ships the same micro-kernels at three width tiers
/// and picks the widest one the machine can run:
///
///   kScalar — plain scalar loops with auto-vectorization disabled. The
///             slowest variant and the micro-kernel-level baseline the
///             bench gate measures speedups against; also the most
///             trustworthy shoulder-check next to the gemm_lowp_i32 /
///             gemm_lowp_i32_shift4 oracles.
///   kLanes  — the portable NEON lane model (simd/vec.hpp): fixed
///             trip-count 16-lane loops over U32x16/I16x16 register
///             blocks that compilers auto-vectorize to the host's
///             baseline ISA (SSE2 on x86-64).
///   kAvx2   — AVX2 intrinsics issuing the same arithmetic on 256-bit
///             registers (one 16-lane row per VPMULLW + widening adds),
///             compiled per-function with target("avx2") and selected at
///             runtime via cpuid.
///
/// Every variant computes bit-identical results for all inputs — the
/// contract enforced by tests/test_gemm_conformance.cpp, which sweeps
/// randomized shapes and saturation-boundary values across every
/// dispatchable variant against the scalar oracles.
///
/// Dispatch: GemmOptions::kernel defaults to Kernel::kAuto, which obeys
/// the TINCY_GEMM_KERNEL environment override ("scalar", "lanes",
/// "avx2") when set and valid, else picks the widest supported variant.
/// Requesting an unsupported variant falls back to the widest supported
/// one rather than failing — the override is a testing/benching knob,
/// not a correctness switch.

#include <cstdint>
#include <vector>

namespace tincy::gemm {

/// Micro-kernel variant of one packed GEMM call.
enum class Kernel : int {
  kAuto = 0,  ///< TINCY_GEMM_KERNEL override, else widest supported
  kScalar,    ///< scalar loops, auto-vectorization disabled (baseline)
  kLanes,     ///< portable NEON lane model, compiler-auto-vectorized
  kAvx2,      ///< AVX2 intrinsics, runtime cpuid-dispatched (x86 only)
};

/// One variant's micro-kernel entry points. All operate on the packed
/// panel layouts of gemm_packed.hpp (kMr-row LHS panels, kNr-wide RHS
/// panels) and are bit-identical across variants by contract.
struct MicroKernels {
  /// 4×16 tile of the exact-i32 path: raw unsigned u8·u8 dot products
  /// into u32 accumulators; zero-point corrections happen on write-back.
  void (*i32)(const uint8_t* a, const uint8_t* b, int64_t K, uint32_t* tile);
  /// 4×16 tile of the paper's 16-bit accumulator path: centered products
  /// rounding-right-shifted by 4, saturating-added, rescaled by 16.
  void (*i16shift4)(const uint8_t* a, const uint8_t* b, int64_t K,
                    int32_t lhs_zero, int32_t rhs_zero, int32_t* tile);
  /// GEMV (N == 1) flat-dot kernel over one packed row block: `a` is the
  /// K·kMr-byte packed block, `bexp` the RHS column replicated kMr times;
  /// writes kMr raw (offset-uncorrected) dot products.
  void (*gemv)(const uint8_t* a, const uint8_t* bexp, int64_t len,
               int64_t* raw);
};

/// Human-readable variant name ("auto", "scalar", "lanes", "avx2").
const char* kernel_name(Kernel k);

/// Parses a TINCY_GEMM_KERNEL-style name; returns kAuto for anything
/// unrecognized (including nullptr).
Kernel parse_kernel_name(const char* name);

/// True when the variant can run on this machine (kScalar/kLanes always;
/// kAvx2 requires x86 AVX2, probed once via cpuid). kAuto is not a
/// concrete variant and reports false.
bool kernel_supported(Kernel k);

/// Widest supported concrete variant on this machine.
Kernel widest_supported_kernel();

/// Resolves a requested variant to the concrete variant a call will run:
/// kAuto honours TINCY_GEMM_KERNEL (read per call, so tests can flip it)
/// then falls back to widest_supported_kernel(); an unsupported explicit
/// request also falls back to widest_supported_kernel().
Kernel resolve_kernel(Kernel requested);

/// All concrete variants runnable on this machine, narrowest first —
/// the sweep list of the conformance harness and the bench gate.
std::vector<Kernel> dispatchable_kernels();

/// Entry points of a concrete (resolved) variant.
const MicroKernels& micro_kernels(Kernel resolved);

/// AVX2 entry points, or nullptr when the build or machine lacks AVX2.
/// Defined in kernels_avx2.cpp; exposed for the dispatch table only.
const MicroKernels* avx2_micro_kernels();

}  // namespace tincy::gemm
