#pragma once

/// \file first_layer.hpp
/// Fully specialized kernels for the paper's first convolutional layer.
///
/// Tincy YOLO's input layer has a 16×27 weight matrix (16 output channels,
/// 3 input channels × 3×3 taps): "The 16 divides nicely by all lane counts
/// that a NEON implementation might use, and 27 is small enough to be
/// unrolled explicitly" (§III-D). Three variants mirror the paper's
/// progression for this layer:
///   * f32            — 620 ms → 160 ms on the A53 (3.8×),
///   * 8-bit, i32 acc — 140 ms,
///   * 8-bit, i16 acc — 120 ms, requiring a rounding right shift by 4
///     before accumulation to avoid destructive overflow (small accuracy
///     loss; the float kernel stays available as a drop-in reference).

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"
#include "gemm/im2col.hpp"
#include "quant/affine.hpp"

namespace tincy::gemm {

/// Compile-time geometry of the specialized kernel.
inline constexpr int64_t kFirstLayerChannels = 16;
inline constexpr int64_t kFirstLayerPatch = 27;

/// True if `g` matches the specialization (patch size 27); the number of
/// output channels must separately equal kFirstLayerChannels.
bool first_layer_geometry_ok(const ConvGeometry& g);

/// Symmetrically quantized int8 weights (zero point fixed at 0) as used by
/// the 8-bit first-layer kernels.
struct SymmetricWeights {
  std::vector<int8_t> codes;  ///< out_channels × patch, row-major.
  float scale = 1.0f;         ///< real = scale * code.
};

/// Quantizes a float weight matrix to int8 with a single symmetric scale
/// (max-abs mapping to ±127).
SymmetricWeights quantize_symmetric(const Tensor& weights);

/// f32 variant: fused strip im2col + fully unrolled 27-tap dot products in
/// 4 float lanes. `weights` is 16×27 row-major, `bias` length 16 (nullable).
void first_layer_f32(const float* image, const ConvGeometry& g,
                     const float* weights, const float* bias, float* out);

/// 8-bit variant with 32-bit lane accumulators; same 4-lane structure as
/// the float kernel ("the 32-bit integer accumulation can actually not
/// utilize more vector lanes than the floating-point implementation") but
/// with the better data locality of u8 inputs.
void first_layer_lowp_acc32(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const SymmetricWeights& weights, const float* bias,
                            float* out);

/// 8-bit variant with 16-bit lane accumulators (8 lanes): every 16-bit
/// product is rounding-right-shifted by 4 (NEON VRSHR) before being added
/// with saturation (VQADD); the accumulator is re-scaled by 16 on output.
/// This is the paper's fastest — and slightly lossy — first-layer path.
void first_layer_lowp_acc16(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const SymmetricWeights& weights, const float* bias,
                            float* out);

/// Exact integer model of the acc16 inner step for one product, exposed for
/// property tests: rshift-4 then saturating add into the running i16 value.
int16_t acc16_step(int16_t acc, int16_t product);

}  // namespace tincy::gemm
