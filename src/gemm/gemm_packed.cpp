#include "gemm/gemm_packed.hpp"

#include <algorithm>

#include "gemm/first_layer.hpp"
#include "gemm/kernels.hpp"
#include "gemm/scratch.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace tincy::gemm {

namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

// The micro-kernels themselves live in gemm/kernels.cpp (scalar baseline,
// portable lane model) and gemm/kernels_avx2.cpp, behind the MicroKernels
// dispatch table; the drivers below resolve the variant once per call.

void gemm_lowp_packed_panel(const PackedLhsView& lhs, const uint8_t* panel,
                   const int32_t* col_sums, int64_t j0, int64_t width,
                   int64_t N, int32_t rhs_zero, Accumulator acc, int32_t* C,
                   Kernel kernel) {
  const MicroKernels& mk = micro_kernels(resolve_kernel(kernel));
  const int64_t M = lhs.rows, K = lhs.depth;
  const int64_t kzz = K * static_cast<int64_t>(lhs.zero_point) * rhs_zero;
  int32_t tile[kMr * kNr];
  for (int64_t i0 = 0; i0 < M; i0 += kMr) {
    const uint8_t* a = lhs.data + (i0 / kMr) * K * kMr;
    const int64_t rows = std::min<int64_t>(kMr, M - i0);
    if (acc == Accumulator::kI16Shift4) {
      mk.i16shift4(a, panel, K, lhs.zero_point, rhs_zero, tile);
      for (int64_t r = 0; r < rows; ++r)
        for (int64_t j = 0; j < width; ++j)
          C[(i0 + r) * N + j0 + j] = tile[r * kNr + j];
    } else {
      mk.i32(a, panel, K, reinterpret_cast<uint32_t*>(tile));
      for (int64_t r = 0; r < rows; ++r) {
        const int64_t row_term =
            static_cast<int64_t>(rhs_zero) * lhs.row_sums[i0 + r];
        for (int64_t j = 0; j < width; ++j) {
          const int64_t raw =
              static_cast<uint32_t>(tile[r * kNr + j]);  // exact u32 dot
          C[(i0 + r) * N + j0 + j] = static_cast<int32_t>(
              raw - static_cast<int64_t>(lhs.zero_point) * col_sums[j] -
              row_term + kzz);
        }
      }
    }
  }
}

namespace {

/// parallel_for context sharding over RHS column panels (the common GEMM
/// shape): each shard packs its panels into its own thread arena.
struct PanelShardCtx {
  PackedLhsView lhs;
  const uint8_t* B;
  int32_t rhs_zero;
  int64_t N;
  int32_t* C;
  Accumulator acc;
  Kernel kernel;
};

void run_panel_shard(int64_t lo, int64_t hi, void* p) {
  auto& ctx = *static_cast<PanelShardCtx*>(p);
  const int64_t K = ctx.lhs.depth;
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  uint8_t* panel = arena.alloc<uint8_t>(K * kNr);
  for (int64_t pi = lo; pi < hi; ++pi) {
    const int64_t j0 = pi * kNr;
    const int64_t width = std::min<int64_t>(kNr, ctx.N - j0);
    int32_t col_sums[kNr];
    pack_rhs_panel(ctx.B, K, ctx.N, j0, width, ctx.rhs_zero, panel, col_sums);
    gemm_lowp_packed_panel(ctx.lhs, panel, col_sums, j0, width, ctx.N,
                           ctx.rhs_zero, ctx.acc, ctx.C, ctx.kernel);
  }
}

/// parallel_for context of the N == 1 fast path: row blocks over the
/// expanded RHS column.
struct GemvShardCtx {
  PackedLhsView lhs;
  const uint8_t* bexp;
  int32_t col_sum;
  int32_t rhs_zero;
  int32_t* C;
  const MicroKernels* mk;
};

void run_gemv_shard(int64_t lo, int64_t hi, void* p) {
  auto& ctx = *static_cast<GemvShardCtx*>(p);
  const int64_t M = ctx.lhs.rows, K = ctx.lhs.depth;
  const int64_t kzz = K * static_cast<int64_t>(ctx.lhs.zero_point) *
                      ctx.rhs_zero;
  for (int64_t blk = lo; blk < hi; ++blk) {
    int64_t raw[kMr];
    ctx.mk->gemv(ctx.lhs.data + blk * K * kMr, ctx.bexp, K * kMr, raw);
    const int64_t rows = std::min<int64_t>(kMr, M - blk * kMr);
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t i = blk * kMr + r;
      ctx.C[i] = static_cast<int32_t>(
          raw[r] - static_cast<int64_t>(ctx.lhs.zero_point) * ctx.col_sum -
          static_cast<int64_t>(ctx.rhs_zero) * ctx.lhs.row_sums[i] + kzz);
    }
  }
}

/// parallel_for context sharding over LHS row blocks (GEMV-shaped calls,
/// N ≤ kNr: one shared read-only RHS panel, many output rows).
struct RowShardCtx {
  PackedLhsView lhs;
  const uint8_t* panel;
  const int32_t* col_sums;
  int64_t width;
  int64_t N;
  int32_t rhs_zero;
  int32_t* C;
  Accumulator acc;
  Kernel kernel;
};

void run_row_shard(int64_t lo, int64_t hi, void* p) {
  auto& ctx = *static_cast<RowShardCtx*>(p);
  // Clip the view to the row blocks [lo, hi) so compute_panel's loop over
  // "all" row blocks covers exactly this shard.
  PackedLhsView part = ctx.lhs;
  part.data += lo * kMr * ctx.lhs.depth;
  part.row_sums += lo * kMr;
  part.rows = std::min<int64_t>(ctx.lhs.rows, hi * kMr) - lo * kMr;
  gemm_lowp_packed_panel(part, ctx.panel, ctx.col_sums, 0, ctx.width, ctx.N,
                         ctx.rhs_zero, ctx.acc, ctx.C + lo * kMr * ctx.N,
                         ctx.kernel);
}

}  // namespace

int64_t packed_lhs_bytes(int64_t rows, int64_t depth) {
  return ceil_div(rows, kMr) * kMr * depth;
}

void pack_lhs_into(const uint8_t* A, int64_t rows, int64_t depth,
                   int32_t zero_point, uint8_t* panels, int32_t* row_sums) {
  const auto pad = static_cast<uint8_t>(zero_point);
  for (int64_t i0 = 0; i0 < rows; i0 += kMr) {
    uint8_t* p = panels + (i0 / kMr) * depth * kMr;
    for (int64_t k = 0; k < depth; ++k)
      for (int64_t r = 0; r < kMr; ++r)
        p[k * kMr + r] = (i0 + r < rows) ? A[(i0 + r) * depth + k] : pad;
  }
  for (int64_t i = 0; i < rows; ++i) {
    int32_t s = 0;
    for (int64_t k = 0; k < depth; ++k) s += A[i * depth + k];
    row_sums[i] = s;
  }
}

PackedLhs pack_lhs(const uint8_t* A, int64_t rows, int64_t depth,
                   int32_t zero_point) {
  static telemetry::Histogram& pack_hist =
      telemetry::MetricsRegistry::global().histogram("gemm.pack_ms");
  PackedLhs packed;
  packed.rows = rows;
  packed.depth = depth;
  packed.zero_point = zero_point;
  packed.data.resize(static_cast<size_t>(packed_lhs_bytes(rows, depth)));
  packed.row_sums.resize(static_cast<size_t>(rows));
  telemetry::ScopedTimer span(pack_hist);
  telemetry::TraceSpan trace(&telemetry::TraceCollector::global(),
                             "gemm.pack", telemetry::current_trace_context());
  pack_lhs_into(A, rows, depth, zero_point, packed.data.data(),
                packed.row_sums.data());
  return packed;
}

void pack_rhs_panel(const uint8_t* B, int64_t depth, int64_t cols,
                    int64_t col0, int64_t width, int32_t zero_point,
                    uint8_t* panel, int32_t* col_sums) {
  const auto pad = static_cast<uint8_t>(zero_point);
  for (int64_t j = 0; j < kNr; ++j) col_sums[j] = 0;
  for (int64_t k = 0; k < depth; ++k) {
    uint8_t* dst = panel + k * kNr;
    const uint8_t* src = B + k * cols + col0;
    for (int64_t j = 0; j < kNr; ++j) {
      const uint8_t v = j < width ? src[j] : pad;
      dst[j] = v;
      col_sums[j] += v;
    }
  }
}

bool acc16_safe(int64_t depth, int32_t lhs_zero, int32_t rhs_zero) {
  const int64_t amax = std::max<int64_t>(lhs_zero, 255 - lhs_zero);
  const int64_t bmax = std::max<int64_t>(rhs_zero, 255 - rhs_zero);
  const int64_t prod = amax * bmax;
  if (prod > 32767) return false;  // a centered product could wrap i16
  const int64_t shifted = (prod + 8) >> 4;  // worst rounded-shifted product
  return depth * shifted <= 32767;          // sum can never saturate
}

void gemm_lowp_i32_shift4(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                          int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                          int32_t* C) {
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      int16_t acc = 0;
      for (int64_t k = 0; k < K; ++k) {
        const int32_t p =
            (static_cast<int32_t>(A[i * K + k]) - lhs_zero) *
            (static_cast<int32_t>(B[k * N + j]) - rhs_zero);
        acc = acc16_step(acc, static_cast<int16_t>(p));
      }
      C[i * N + j] = static_cast<int32_t>(acc) * 16;
    }
  }
}

void gemm_lowp_packed(const PackedLhsView& lhs, const uint8_t* B,
                      int32_t rhs_zero, int64_t N, int32_t* C,
                      const GemmOptions& opts) {
  auto& registry = telemetry::MetricsRegistry::global();
  static telemetry::Histogram& packed_hist =
      registry.histogram("gemm.packed_ms");
  static telemetry::Gauge& threads_gauge = registry.gauge("gemm.threads");

  const int64_t M = lhs.rows, K = lhs.depth;
  if (M <= 0 || N <= 0) return;
  telemetry::ScopedTimer span(packed_hist);
  telemetry::TraceSpan trace(&telemetry::TraceCollector::global(),
                             "gemm.compute",
                             telemetry::current_trace_context());

  Accumulator acc = opts.acc;
  if (acc == Accumulator::kAuto)
    acc = acc16_safe(K, lhs.zero_point, rhs_zero) ? Accumulator::kI16Shift4
                                                  : Accumulator::kI32;
  // Resolve the micro-kernel variant once per call so every shard of this
  // call (and a mid-call TINCY_GEMM_KERNEL change) agrees on the kernel.
  const Kernel kernel = resolve_kernel(opts.kernel);

  core::ThreadPool& pool = opts.pool ? *opts.pool : core::ThreadPool::shared();
  const int64_t total_ops = 2 * M * N * K;
  int64_t shards = 1;
  if (opts.allow_threads && pool.threads() > 1 &&
      total_ops >= opts.min_ops_to_thread &&
      total_ops >= 2 * opts.min_ops_per_shard)
    shards = std::min<int64_t>(pool.threads(),
                               total_ops / opts.min_ops_per_shard);
  threads_gauge.set(static_cast<double>(shards));

  const int64_t num_panels = ceil_div(N, kNr);
  if (N == 1 && acc == Accumulator::kI32) {
    // GEMV fast path: replicate the column 4× so each packed row block is
    // one flat 16-lane dot product (a packed kNr-wide panel would waste
    // 15/16 of the multiplies on padding).
    auto& arena = thread_arena();
    ScratchScope scope(arena);
    uint8_t* bexp = arena.alloc<uint8_t>(K * kMr);
    int32_t col_sum = 0;
    for (int64_t k = 0; k < K; ++k) {
      const uint8_t v = B[k];
      col_sum += v;
      for (int64_t r = 0; r < kMr; ++r) bexp[k * kMr + r] = v;
    }
    GemvShardCtx ctx{lhs, bexp, col_sum, rhs_zero, C, &micro_kernels(kernel)};
    const int64_t blocks = ceil_div(M, kMr);
    const int64_t chunks =
        shards == 1 ? 1 : std::min<int64_t>(blocks, shards * 4);
    pool.parallel_for(0, blocks, chunks, run_gemv_shard, &ctx);
  } else if (num_panels > 1) {
    PanelShardCtx ctx{lhs, B, rhs_zero, N, C, acc, kernel};
    // Fine-grained column-panel sharding: 8 chunks per shard keeps the
    // tail balanced when panel costs vary (skinny-K panels are cheap, so
    // coarse chunks leave whole shards idle at the end).
    const int64_t chunks =
        shards == 1 ? 1 : std::min<int64_t>(num_panels, shards * 8);
    pool.parallel_for(0, num_panels, chunks, run_panel_shard, &ctx);
  } else {
    // GEMV shape: pack the single panel once, shard the row blocks.
    auto& arena = thread_arena();
    ScratchScope scope(arena);
    uint8_t* panel = arena.alloc<uint8_t>(K * kNr);
    int32_t col_sums[kNr];
    pack_rhs_panel(B, K, N, 0, N, rhs_zero, panel, col_sums);
    RowShardCtx ctx{lhs, panel, col_sums, N, N, rhs_zero, C, acc, kernel};
    const int64_t blocks = ceil_div(M, kMr);
    const int64_t chunks =
        shards == 1 ? 1 : std::min<int64_t>(blocks, shards * 4);
    pool.parallel_for(0, blocks, chunks, run_row_shard, &ctx);
  }
}

void gemm_lowp_packed(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                      int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                      int32_t* C, const GemmOptions& opts) {
  static telemetry::Histogram& pack_hist =
      telemetry::MetricsRegistry::global().histogram("gemm.pack_ms");
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  uint8_t* panels = arena.alloc<uint8_t>(packed_lhs_bytes(M, K));
  int32_t* row_sums = arena.alloc<int32_t>(M);
  {
    telemetry::ScopedTimer span(pack_hist);
    pack_lhs_into(A, M, K, lhs_zero, panels, row_sums);
  }
  PackedLhsView view;
  view.data = panels;
  view.row_sums = row_sums;
  view.rows = M;
  view.depth = K;
  view.zero_point = lhs_zero;
  gemm_lowp_packed(view, B, rhs_zero, N, C, opts);
}

}  // namespace tincy::gemm
