#include "gemm/scratch.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

namespace tincy::gemm {

namespace {

constexpr size_t kAlignment = 64;
constexpr size_t kMinBlockBytes = size_t{1} << 16;  // 64 KiB floor

size_t align_up(size_t n) {
  return (n + kAlignment - 1) & ~(kAlignment - 1);
}

}  // namespace

Arena::~Arena() {
  for (auto& b : blocks_) ::operator delete(b.data, std::align_val_t{kAlignment});
}

size_t Arena::capacity() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

void* Arena::alloc_bytes(size_t bytes) {
  bytes = align_up(std::max<size_t>(bytes, 1));
  // Advance through retained blocks until one fits; the vector of blocks
  // only changes when a frame larger than any before arrives.
  while (block_ < blocks_.size() && offset_ + bytes > blocks_[block_].size) {
    ++block_;
    offset_ = 0;
  }
  if (block_ == blocks_.size()) {
    const size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const size_t size = std::max({bytes, kMinBlockBytes, prev * 2});
    Block b;
    b.data = static_cast<std::byte*>(
        ::operator new(size, std::align_val_t{kAlignment}));
    b.size = size;
    blocks_.push_back(b);
    offset_ = 0;
    ++heap_allocations_;
  }
  void* p = blocks_[block_].data + offset_;
  offset_ += bytes;
  return p;
}

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace tincy::gemm
