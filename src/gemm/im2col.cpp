#include "gemm/im2col.hpp"

namespace tincy::gemm {

template <typename T>
void im2col(const T* image, const ConvGeometry& g, T* columns, T pad_value) {
  const int64_t out_h = g.out_height(), out_w = g.out_width();
  const int64_t num_patches = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const T* plane = image + c * g.in_height * g.in_width;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        T* out_row = columns + row * num_patches;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * g.stride - g.pad + kh;
          if (ih < 0 || ih >= g.in_height) {
            for (int64_t ow = 0; ow < out_w; ++ow)
              out_row[oh * out_w + ow] = pad_value;
            continue;
          }
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * g.stride - g.pad + kw;
            out_row[oh * out_w + ow] = (iw < 0 || iw >= g.in_width)
                                           ? pad_value
                                           : plane[ih * g.in_width + iw];
          }
        }
      }
    }
  }
}

template void im2col<float>(const float*, const ConvGeometry&, float*, float);
template void im2col<uint8_t>(const uint8_t*, const ConvGeometry&, uint8_t*,
                              uint8_t);

Tensor im2col(const Tensor& image, const ConvGeometry& g) {
  TINCY_CHECK(image.shape() ==
              Shape({g.in_channels, g.in_height, g.in_width}));
  Tensor columns(Shape{g.patch_size(), g.num_patches()});
  im2col(image.data(), g, columns.data(), 0.0f);
  return columns;
}

TensorU8 im2col(const TensorU8& image, const ConvGeometry& g,
                uint8_t pad_value) {
  TINCY_CHECK(image.shape() ==
              Shape({g.in_channels, g.in_height, g.in_width}));
  TensorU8 columns(Shape{g.patch_size(), g.num_patches()});
  im2col(image.data(), g, columns.data(), pad_value);
  return columns;
}

void col2im(const float* columns, const ConvGeometry& g, float* image) {
  const int64_t out_h = g.out_height(), out_w = g.out_width();
  const int64_t num_patches = out_h * out_w;
  const int64_t image_size = g.in_channels * g.in_height * g.in_width;
  for (int64_t i = 0; i < image_size; ++i) image[i] = 0.0f;

  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = image + c * g.in_height * g.in_width;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        const float* in_row = columns + row * num_patches;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * g.stride - g.pad + kh;
          if (ih < 0 || ih >= g.in_height) continue;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * g.stride - g.pad + kw;
            if (iw < 0 || iw >= g.in_width) continue;
            plane[ih * g.in_width + iw] += in_row[oh * out_w + ow];
          }
        }
      }
    }
  }
}

}  // namespace tincy::gemm
