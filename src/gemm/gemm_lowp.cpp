#include "gemm/gemm_lowp.hpp"

#include <algorithm>

#include "gemm/scratch.hpp"
#include "simd/vec.hpp"
#include "telemetry/metrics.hpp"

namespace tincy::gemm {

void gemm_lowp_i32(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                   int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                   int32_t* C) {
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      int32_t acc = 0;
      for (int64_t k = 0; k < K; ++k) {
        const int32_t a = static_cast<int32_t>(A[i * K + k]) - lhs_zero;
        const int32_t b = static_cast<int32_t>(B[k * N + j]) - rhs_zero;
        acc += a * b;
      }
      C[i * N + j] = acc;
    }
  }
}

void gemm_lowp_i32_lanes(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                         int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                         int32_t* C) {
  using namespace simd;
  // Process 8 output columns per step: widen both operands to i16 lanes,
  // VMULL.S16 into i32x4 halves, accumulate.
  const int64_t n8 = N - (N % 8);
  const I16x8 vzb = I16x8::splat(static_cast<int16_t>(rhs_zero));
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < n8; j += 8) {
      I32x4 acc_lo = I32x4::splat(0), acc_hi = I32x4::splat(0);
      for (int64_t k = 0; k < K; ++k) {
        const int16_t a16 =
            static_cast<int16_t>(static_cast<int32_t>(A[i * K + k]) - lhs_zero);
        // Load 8 consecutive B codes of this row, widen, center.
        U8x16 braw{};
        for (int l = 0; l < 8; ++l) braw.lane[l] = B[k * N + j + l];
        const I16x8 b16 = sub(widen_low(braw), vzb);
        const auto [b_lo, b_hi] = split(b16);
        acc_lo = add(acc_lo, widening_mul(I16x4::splat(a16), b_lo));
        acc_hi = add(acc_hi, widening_mul(I16x4::splat(a16), b_hi));
      }
      acc_lo.store(C + i * N + j);
      acc_hi.store(C + i * N + j + 4);
    }
    for (int64_t j = n8; j < N; ++j) {
      int32_t acc = 0;
      for (int64_t k = 0; k < K; ++k)
        acc += (static_cast<int32_t>(A[i * K + k]) - lhs_zero) *
               (static_cast<int32_t>(B[k * N + j]) - rhs_zero);
      C[i * N + j] = acc;
    }
  }
}

void gemm_lowp_u8(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                  int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                  const quant::Requantizer& requant, uint8_t* C) {
  // Accumulate through the packed engine (bit-identical to gemm_lowp_i32)
  // into arena scratch: no heap allocation in steady state.
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  int32_t* acc = arena.alloc<int32_t>(M * N);
  gemm_lowp_packed(M, N, K, A, lhs_zero, B, rhs_zero, acc);
  for (int64_t i = 0; i < M * N; ++i) C[i] = requant.apply(acc[i]);
}

namespace {

/// Shared implementation of the unfused conv path over a packed weight
/// view: quantize + im2col into arena scratch, one packed GEMM, f32 out.
void conv_lowp_impl(const float* image, const ConvGeometry& g,
                    const quant::AffineParams& input_params,
                    const PackedLhsView& weights,
                    const quant::AffineParams& weight_params,
                    const float* bias, float* out) {
  // Same im2col vs. GEMM attribution as the float path (Table III).
  auto& registry = telemetry::MetricsRegistry::global();
  static telemetry::Histogram& im2col_hist =
      registry.histogram("gemm.im2col_ms");
  static telemetry::Histogram& gemm_hist = registry.histogram("gemm.gemm_ms");

  const int64_t patch = g.patch_size(), n = g.num_patches();
  const int64_t out_channels = weights.rows;
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  uint8_t* qimage =
      arena.alloc<uint8_t>(g.in_channels * g.in_height * g.in_width);
  uint8_t* columns = arena.alloc<uint8_t>(patch * n);
  {
    // Quantize the image while arranging the multiplicand (paper §III-D):
    // quantize once, then im2col over codes with the zero-point as padding.
    telemetry::ScopedTimer span(im2col_hist);
    const int64_t pixels = g.in_channels * g.in_height * g.in_width;
    for (int64_t i = 0; i < pixels; ++i)
      qimage[i] = input_params.quantize(image[i]);
    im2col(qimage, g, columns, static_cast<uint8_t>(input_params.zero_point));
  }

  telemetry::ScopedTimer span(gemm_hist);
  int32_t* acc = arena.alloc<int32_t>(out_channels * n);
  gemm_lowp_packed(weights, columns, input_params.zero_point, n, acc);
  const float real_scale = input_params.scale * weight_params.scale;
  for (int64_t m = 0; m < out_channels; ++m) {
    const float b = bias ? bias[m] : 0.0f;
    for (int64_t j = 0; j < n; ++j)
      out[m * n + j] = real_scale * static_cast<float>(acc[m * n + j]) + b;
  }
}

}  // namespace

void conv_lowp_f32out(const float* image, const ConvGeometry& g,
                      const quant::AffineParams& input_params,
                      const PackedLhsView& weights,
                      const quant::AffineParams& weight_params,
                      const float* bias, float* out) {
  conv_lowp_impl(image, g, input_params, weights, weight_params, bias, out);
}

void conv_lowp_f32out(const float* image, const ConvGeometry& g,
                      const quant::AffineParams& input_params,
                      const uint8_t* weights,
                      const quant::AffineParams& weight_params,
                      int64_t out_channels, const float* bias, float* out) {
  static telemetry::Histogram& pack_hist =
      telemetry::MetricsRegistry::global().histogram("gemm.pack_ms");
  const int64_t patch = g.patch_size();
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  uint8_t* panels = arena.alloc<uint8_t>(packed_lhs_bytes(out_channels, patch));
  int32_t* row_sums = arena.alloc<int32_t>(out_channels);
  {
    telemetry::ScopedTimer span(pack_hist);
    pack_lhs_into(weights, out_channels, patch, weight_params.zero_point,
                  panels, row_sums);
  }
  PackedLhsView view;
  view.data = panels;
  view.row_sums = row_sums;
  view.rows = out_channels;
  view.depth = patch;
  view.zero_point = weight_params.zero_point;
  conv_lowp_impl(image, g, input_params, view, weight_params, bias, out);
}

void im2col_strip_u8(const uint8_t* image, const ConvGeometry& g,
                     int64_t col0, int64_t width, uint8_t pad_value,
                     uint8_t* strip) {
  const int64_t out_w = g.out_width();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const uint8_t* plane = image + c * g.in_height * g.in_width;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        uint8_t* out_row = strip + row * width;
        // One div/mod per strip row; the patch walk is incremental.
        int64_t ow = col0 % out_w;
        int64_t ih = (col0 / out_w) * g.stride - g.pad + kh;
        int64_t iw = ow * g.stride - g.pad + kw;
        for (int64_t j = 0; j < width; ++j) {
          out_row[j] = (ih < 0 || ih >= g.in_height || iw < 0 ||
                        iw >= g.in_width)
                           ? pad_value
                           : plane[ih * g.in_width + iw];
          iw += g.stride;
          if (++ow == out_w) {
            ow = 0;
            iw = kw - g.pad;
            ih += g.stride;
          }
        }
      }
    }
  }
}

namespace {

/// Strip im2col straight into a packed K×kNr RHS panel (row stride kNr,
/// zero-point padding past `width`, per-column sums) — the fused path's
/// "quantize while arranging the multiplicand" without an intermediate
/// column matrix.
void im2col_panel_u8(const uint8_t* image, const ConvGeometry& g,
                     int64_t col0, int64_t width, uint8_t pad_value,
                     uint8_t* panel, int32_t* col_sums) {
  const int64_t out_w = g.out_width();
  for (int64_t j = 0; j < kNr; ++j) col_sums[j] = 0;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const uint8_t* plane = image + c * g.in_height * g.in_width;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        uint8_t* out_row = panel + row * kNr;
        int64_t ow = col0 % out_w;
        int64_t ih = (col0 / out_w) * g.stride - g.pad + kh;
        int64_t iw = ow * g.stride - g.pad + kw;
        for (int64_t j = 0; j < width; ++j) {
          const uint8_t v = (ih < 0 || ih >= g.in_height || iw < 0 ||
                             iw >= g.in_width)
                                ? pad_value
                                : plane[ih * g.in_width + iw];
          out_row[j] = v;
          col_sums[j] += v;
          iw += g.stride;
          if (++ow == out_w) {
            ow = 0;
            iw = kw - g.pad;
            ih += g.stride;
          }
        }
        for (int64_t j = width; j < kNr; ++j) {
          out_row[j] = pad_value;
          col_sums[j] += pad_value;
        }
      }
    }
  }
}

/// parallel_for context of the fused conv path: shards of column panels,
/// each im2col'd and multiplied in the worker's own arena.
struct FusedShardCtx {
  const uint8_t* qimage;
  const ConvGeometry* g;
  PackedLhsView weights;
  int32_t input_zero;
  uint8_t pad;
  float real_scale;
  const float* bias;
  float* out;
  int64_t n;
};

void run_fused_shard(int64_t lo, int64_t hi, void* p) {
  auto& ctx = *static_cast<FusedShardCtx*>(p);
  const int64_t patch = ctx.weights.depth;
  const int64_t out_channels = ctx.weights.rows;
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  uint8_t* panel = arena.alloc<uint8_t>(patch * kNr);
  int32_t* acc = arena.alloc<int32_t>(out_channels * kNr);
  for (int64_t pi = lo; pi < hi; ++pi) {
    const int64_t col0 = pi * kNr;
    const int64_t width = std::min<int64_t>(kNr, ctx.n - col0);
    int32_t col_sums[kNr];
    im2col_panel_u8(ctx.qimage, *ctx.g, col0, width, ctx.pad, panel, col_sums);
    gemm_lowp_packed_panel(ctx.weights, panel, col_sums, 0, width, width,
                           ctx.input_zero, Accumulator::kI32, acc);
    for (int64_t m = 0; m < out_channels; ++m) {
      const float b = ctx.bias ? ctx.bias[m] : 0.0f;
      for (int64_t j = 0; j < width; ++j)
        ctx.out[m * ctx.n + col0 + j] =
            ctx.real_scale * static_cast<float>(acc[m * width + j]) + b;
    }
  }
}

void fused_conv_lowp_impl(const float* image, const ConvGeometry& g,
                          const quant::AffineParams& input_params,
                          const PackedLhsView& weights,
                          const quant::AffineParams& weight_params,
                          const float* bias, float* out) {
  // The fused path has no separable im2col stage; one span covers it.
  auto& registry = telemetry::MetricsRegistry::global();
  static telemetry::Histogram& fused_hist = registry.histogram("gemm.fused_ms");
  static telemetry::Gauge& threads_gauge = registry.gauge("gemm.threads");
  telemetry::ScopedTimer timer(fused_hist);

  const int64_t patch = g.patch_size(), n = g.num_patches();
  const int64_t out_channels = weights.rows;
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  const int64_t pixels = g.in_channels * g.in_height * g.in_width;
  uint8_t* qimage = arena.alloc<uint8_t>(pixels);
  for (int64_t i = 0; i < pixels; ++i)
    qimage[i] = input_params.quantize(image[i]);

  FusedShardCtx ctx{qimage,
                    &g,
                    weights,
                    input_params.zero_point,
                    static_cast<uint8_t>(input_params.zero_point),
                    input_params.scale * weight_params.scale,
                    bias,
                    out,
                    n};
  core::ThreadPool& pool = core::ThreadPool::shared();
  const int64_t num_panels = (n + kNr - 1) / kNr;
  const int64_t total_ops = 2 * out_channels * n * patch;
  int64_t shards = 1;
  constexpr int64_t kMinOpsPerShard = int64_t{1} << 18;
  if (pool.threads() > 1 && total_ops >= 2 * kMinOpsPerShard)
    shards = std::min<int64_t>(pool.threads(), total_ops / kMinOpsPerShard);
  threads_gauge.set(static_cast<double>(shards));
  const int64_t chunks =
      shards == 1 ? 1 : std::min<int64_t>(num_panels, shards * 4);
  pool.parallel_for(0, num_panels, chunks, run_fused_shard, &ctx);
}

}  // namespace

void fused_conv_lowp_f32out(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const PackedLhsView& weights,
                            const quant::AffineParams& weight_params,
                            const float* bias, float* out) {
  fused_conv_lowp_impl(image, g, input_params, weights, weight_params, bias,
                       out);
}

void fused_conv_lowp_f32out(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const uint8_t* weights,
                            const quant::AffineParams& weight_params,
                            int64_t out_channels, const float* bias,
                            float* out) {
  static telemetry::Histogram& pack_hist =
      telemetry::MetricsRegistry::global().histogram("gemm.pack_ms");
  const int64_t patch = g.patch_size();
  auto& arena = thread_arena();
  ScratchScope scope(arena);
  uint8_t* panels = arena.alloc<uint8_t>(packed_lhs_bytes(out_channels, patch));
  int32_t* row_sums = arena.alloc<int32_t>(out_channels);
  {
    telemetry::ScopedTimer span(pack_hist);
    pack_lhs_into(weights, out_channels, patch, weight_params.zero_point,
                  panels, row_sums);
  }
  PackedLhsView view;
  view.data = panels;
  view.row_sums = row_sums;
  view.rows = out_channels;
  view.depth = patch;
  view.zero_point = weight_params.zero_point;
  fused_conv_lowp_impl(image, g, input_params, view, weight_params, bias, out);
}

}  // namespace tincy::gemm
