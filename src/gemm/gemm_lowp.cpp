#include "gemm/gemm_lowp.hpp"

#include <vector>

#include "simd/vec.hpp"
#include "telemetry/metrics.hpp"

namespace tincy::gemm {

void gemm_lowp_i32(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                   int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                   int32_t* C) {
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      int32_t acc = 0;
      for (int64_t k = 0; k < K; ++k) {
        const int32_t a = static_cast<int32_t>(A[i * K + k]) - lhs_zero;
        const int32_t b = static_cast<int32_t>(B[k * N + j]) - rhs_zero;
        acc += a * b;
      }
      C[i * N + j] = acc;
    }
  }
}

void gemm_lowp_i32_lanes(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                         int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                         int32_t* C) {
  using namespace simd;
  // Process 8 output columns per step: widen both operands to i16 lanes,
  // VMULL.S16 into i32x4 halves, accumulate.
  const int64_t n8 = N - (N % 8);
  const I16x8 vzb = I16x8::splat(static_cast<int16_t>(rhs_zero));
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < n8; j += 8) {
      I32x4 acc_lo = I32x4::splat(0), acc_hi = I32x4::splat(0);
      for (int64_t k = 0; k < K; ++k) {
        const int16_t a16 =
            static_cast<int16_t>(static_cast<int32_t>(A[i * K + k]) - lhs_zero);
        // Load 8 consecutive B codes of this row, widen, center.
        U8x16 braw{};
        for (int l = 0; l < 8; ++l) braw.lane[l] = B[k * N + j + l];
        const I16x8 b16 = sub(widen_low(braw), vzb);
        const auto [b_lo, b_hi] = split(b16);
        acc_lo = add(acc_lo, widening_mul(I16x4::splat(a16), b_lo));
        acc_hi = add(acc_hi, widening_mul(I16x4::splat(a16), b_hi));
      }
      acc_lo.store(C + i * N + j);
      acc_hi.store(C + i * N + j + 4);
    }
    for (int64_t j = n8; j < N; ++j) {
      int32_t acc = 0;
      for (int64_t k = 0; k < K; ++k)
        acc += (static_cast<int32_t>(A[i * K + k]) - lhs_zero) *
               (static_cast<int32_t>(B[k * N + j]) - rhs_zero);
      C[i * N + j] = acc;
    }
  }
}

void gemm_lowp_u8(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                  int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                  const quant::Requantizer& requant, uint8_t* C) {
  std::vector<int32_t> acc(static_cast<size_t>(N));
  for (int64_t i = 0; i < M; ++i) {
    gemm_lowp_i32(1, N, K, A + i * K, lhs_zero, B, rhs_zero, acc.data());
    for (int64_t j = 0; j < N; ++j) C[i * N + j] = requant.apply(acc[j]);
  }
}

void conv_lowp_f32out(const float* image, const ConvGeometry& g,
                      const quant::AffineParams& input_params,
                      const uint8_t* weights,
                      const quant::AffineParams& weight_params,
                      int64_t out_channels, const float* bias, float* out) {
  // Same im2col vs. GEMM attribution as the float path (Table III).
  auto& registry = telemetry::MetricsRegistry::global();
  static telemetry::Histogram& im2col_hist =
      registry.histogram("gemm.im2col_ms");
  static telemetry::Histogram& gemm_hist = registry.histogram("gemm.gemm_ms");

  const int64_t patch = g.patch_size(), n = g.num_patches();
  // Quantize the image while arranging the multiplicand (paper §III-D):
  // quantize once, then im2col over codes with the zero-point as padding.
  std::vector<uint8_t> qimage(
      static_cast<size_t>(g.in_channels * g.in_height * g.in_width));
  std::vector<uint8_t> columns(static_cast<size_t>(patch * n));
  {
    telemetry::ScopedTimer span(im2col_hist);
    for (size_t i = 0; i < qimage.size(); ++i)
      qimage[i] = input_params.quantize(image[i]);
    im2col(qimage.data(), g, columns.data(),
           static_cast<uint8_t>(input_params.zero_point));
  }

  telemetry::ScopedTimer span(gemm_hist);
  std::vector<int32_t> acc(static_cast<size_t>(n));
  const float real_scale = input_params.scale * weight_params.scale;
  for (int64_t m = 0; m < out_channels; ++m) {
    gemm_lowp_i32(1, n, patch, weights + m * patch, weight_params.zero_point,
                  columns.data(), input_params.zero_point, acc.data());
    const float b = bias ? bias[m] : 0.0f;
    for (int64_t j = 0; j < n; ++j)
      out[m * n + j] = real_scale * static_cast<float>(acc[j]) + b;
  }
}

namespace {

void im2col_strip_u8(const uint8_t* image, const ConvGeometry& g,
                     int64_t col0, int64_t width, uint8_t pad_value,
                     uint8_t* strip) {
  const int64_t out_w = g.out_width();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const uint8_t* plane = image + c * g.in_height * g.in_width;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        uint8_t* out_row = strip + row * width;
        for (int64_t j = 0; j < width; ++j) {
          const int64_t patch = col0 + j;
          const int64_t oh = patch / out_w, ow = patch % out_w;
          const int64_t ih = oh * g.stride - g.pad + kh;
          const int64_t iw = ow * g.stride - g.pad + kw;
          out_row[j] = (ih < 0 || ih >= g.in_height || iw < 0 ||
                        iw >= g.in_width)
                           ? pad_value
                           : plane[ih * g.in_width + iw];
        }
      }
    }
  }
}

}  // namespace

void fused_conv_lowp_f32out(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const uint8_t* weights,
                            const quant::AffineParams& weight_params,
                            int64_t out_channels, const float* bias,
                            float* out) {
  // The fused path has no separable im2col stage; one span covers it.
  static telemetry::Histogram& fused_hist =
      telemetry::MetricsRegistry::global().histogram("gemm.fused_ms");
  telemetry::ScopedTimer timer(fused_hist);

  constexpr int64_t kStrip = 8;  // eight 16-bit lanes, as on NEON
  const int64_t patch = g.patch_size(), n = g.num_patches();
  std::vector<uint8_t> qimage(
      static_cast<size_t>(g.in_channels * g.in_height * g.in_width));
  for (size_t i = 0; i < qimage.size(); ++i)
    qimage[i] = input_params.quantize(image[i]);

  std::vector<uint8_t> strip(static_cast<size_t>(patch * kStrip));
  std::vector<int32_t> acc(static_cast<size_t>(kStrip));
  const float real_scale = input_params.scale * weight_params.scale;
  const auto pad = static_cast<uint8_t>(input_params.zero_point);

  for (int64_t col0 = 0; col0 < n; col0 += kStrip) {
    const int64_t width = std::min<int64_t>(kStrip, n - col0);
    im2col_strip_u8(qimage.data(), g, col0, width, pad, strip.data());
    for (int64_t m = 0; m < out_channels; ++m) {
      gemm_lowp_i32(1, width, patch, weights + m * patch,
                    weight_params.zero_point, strip.data(),
                    input_params.zero_point, acc.data());
      const float b = bias ? bias[m] : 0.0f;
      for (int64_t j = 0; j < width; ++j)
        out[m * n + col0 + j] =
            real_scale * static_cast<float>(acc[static_cast<size_t>(j)]) + b;
    }
  }
}

}  // namespace tincy::gemm
