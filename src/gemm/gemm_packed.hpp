#pragma once

/// \file gemm_packed.hpp
/// The packed, tiled, multi-threaded low-precision GEMM engine.
///
/// The naive gemm_lowp_i32 streams the RHS column-strided and re-reads
/// every operand from memory once per multiply; the paper's §III-D CPU
/// path instead follows gemmlowp: pack both operands into contiguous
/// panels once, then run a register-blocked micro-kernel whose inner loop
/// is nothing but sequential loads and widening multiply-accumulates.
/// This engine implements that split:
///
///  * pack_lhs — the LHS (weights in the conv/FC layers) is packed into
///    kMr-row K-major interleaved panels *once per layer* and cached next
///    to the layer's other derived quantized forms;
///  * pack_rhs_panel / the drivers pack RHS strips into K×kNr panels in
///    per-thread scratch, so the im2col'd activations are touched once;
///  * micro-kernel — a kMr×kNr output tile held in register blocks.
///    The i32 path uses the zero-point decomposition
///    C[i,j] = Σ a·b − za·colsum_j − zb·rowsum_i + K·za·zb
///    so the inner loop is pure unsigned u8×u8→u16→u32 widening MACs
///    (VMULL.U8/VADDW) — exact, and bit-identical to gemm_lowp_i32. The
///    i16 path mirrors the paper's first-layer trick: every centered
///    product is rounding-right-shifted by 4 (VRSHR) and added with
///    saturation (VQADD) into 16-bit accumulators, rescaled by 16 on
///    output — faster, slightly lossy, bit-identical to the scalar oracle
///    gemm_lowp_i32_shift4. Each micro-kernel ships in several
///    runtime-dispatched width variants (scalar baseline, portable NEON
///    lane model, AVX2 intrinsics — see gemm/kernels.hpp); every variant
///    is bit-identical to the others and to the scalar oracles, the
///    contract enforced by tests/test_gemm_conformance.cpp;
///  * threading — column panels (row blocks for GEMV-shaped calls) are
///    sharded over core::ThreadPool::parallel_for; every worker packs into
///    its own thread arena, so the steady-state hot path performs zero
///    heap allocations on any thread.
///
/// Telemetry: gemm.pack_ms (LHS packing), gemm.packed_ms (driver spans),
/// gemm.threads (parallelism of the most recent call).

#include <cstdint>
#include <vector>

#include "core/thread_pool.hpp"
#include "gemm/kernels.hpp"

namespace tincy::gemm {

/// Micro-kernel tile: kMr packed LHS rows × kNr RHS columns per call.
/// kNr = 16 keeps a full u32 accumulator tile in 16 NEON q-registers
/// while amortizing each packed LHS byte over 16 columns.
inline constexpr int64_t kMr = 4;
inline constexpr int64_t kNr = 16;

/// Accumulator policy of the packed engine.
enum class Accumulator {
  kI32,        ///< exact 32-bit accumulation (bit-identical to gemm_lowp_i32)
  kI16Shift4,  ///< paper's rshift-4 + saturating 16-bit path (lossy)
  kAuto,       ///< kI16Shift4 when acc16_safe(), else kI32
};

/// LHS packed into ceil(rows/kMr) panels of kMr interleaved rows
/// (data[panel][k*kMr + r]), padded rows filled with the zero-point, plus
/// the per-row code sums the zero-point decomposition needs. Cached on
/// ConvLayer/ConnectedLayer next to lowp_codes_.
struct PackedLhs {
  std::vector<uint8_t> data;
  std::vector<int32_t> row_sums;
  int64_t rows = 0;
  int64_t depth = 0;
  int32_t zero_point = 0;
};

/// Non-owning view of a packed LHS (the drivers work on views so per-call
/// packing can live in arena scratch without a heap-owning PackedLhs).
struct PackedLhsView {
  const uint8_t* data = nullptr;
  const int32_t* row_sums = nullptr;
  int64_t rows = 0;
  int64_t depth = 0;
  int32_t zero_point = 0;

  PackedLhsView() = default;
  PackedLhsView(const PackedLhs& p)
      : data(p.data.data()),
        row_sums(p.row_sums.data()),
        rows(p.rows),
        depth(p.depth),
        zero_point(p.zero_point) {}
};

/// Bytes of packed panel data for an M×K LHS (ceil(M/kMr)·kMr·K).
int64_t packed_lhs_bytes(int64_t rows, int64_t depth);

/// Packs row-major A (rows×depth) into `panels` (packed_lhs_bytes large)
/// and writes per-row sums into `row_sums` (length rows). No allocation.
void pack_lhs_into(const uint8_t* A, int64_t rows, int64_t depth,
                   int32_t zero_point, uint8_t* panels, int32_t* row_sums);

/// Owning pack of row-major A; records the cost into gemm.pack_ms.
PackedLhs pack_lhs(const uint8_t* A, int64_t rows, int64_t depth,
                   int32_t zero_point);

/// Packs columns [col0, col0+width) of row-major B (depth×cols) into a
/// K×kNr panel (row stride kNr); lanes past `width` are filled with the
/// zero-point. Writes per-column code sums into `col_sums` (kNr entries).
void pack_rhs_panel(const uint8_t* B, int64_t depth, int64_t cols,
                    int64_t col0, int64_t width, int32_t zero_point,
                    uint8_t* panel, int32_t* col_sums);

/// True when the kI16Shift4 path is exact-in-its-own-model for this shape:
/// every centered product fits int16 and the shifted sum cannot saturate.
/// kAuto falls back to kI32 otherwise.
bool acc16_safe(int64_t depth, int32_t lhs_zero, int32_t rhs_zero);

/// Scalar oracle of the kI16Shift4 semantics: per product, rounding right
/// shift by 4 then saturating add into an int16 accumulator; the int32
/// output is the accumulator rescaled by 16. The packed kI16Shift4 kernel
/// is bit-identical to this for all inputs.
void gemm_lowp_i32_shift4(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                          int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                          int32_t* C);

/// Knobs of one packed GEMM call.
struct GemmOptions {
  Accumulator acc = Accumulator::kI32;
  /// Micro-kernel variant. kAuto honours the TINCY_GEMM_KERNEL
  /// environment override, else dispatches the widest variant this
  /// machine supports (see gemm/kernels.hpp). All variants produce
  /// bit-identical output; explicit values are a testing/benching knob.
  Kernel kernel = Kernel::kAuto;
  core::ThreadPool* pool = nullptr;  ///< null -> ThreadPool::shared()
  bool allow_threads = true;         ///< false forces a single-thread run
  /// Minimum multiply-accumulates per shard; below it the call stays
  /// single-threaded (sharding a tiny GEMM costs more than it saves).
  int64_t min_ops_per_shard = int64_t{1} << 18;
  /// Whole-call threading floor: below this many multiply-accumulates the
  /// call never fans out, whatever the shard math says. Skinny shapes
  /// (layer0's M=16, K=27) finish in well under a millisecond single
  /// threaded, so waking workers costs more than the parallel section
  /// saves — the measured cause of the layer0 threaded-gate miss.
  int64_t min_ops_to_thread = int64_t{1} << 24;
};

/// Runs every row block of `lhs` against one packed K×kNr RHS panel (row
/// stride kNr, per-column sums as produced by pack_rhs_panel) and writes
/// the C columns [j0, j0+width) of a row-major M×N output. The building
/// block the fused conv path drives directly with its im2col'd panels.
void gemm_lowp_packed_panel(const PackedLhsView& lhs, const uint8_t* panel,
                            const int32_t* col_sums, int64_t j0, int64_t width,
                            int64_t N, int32_t rhs_zero, Accumulator acc,
                            int32_t* C, Kernel kernel = Kernel::kAuto);

/// C_i32 (M×N) = packed-GEMM of `lhs` (M×K panels) and row-major B (K×N).
/// Bit-identical to gemm_lowp_i32 under kI32 and to gemm_lowp_i32_shift4
/// under kI16Shift4. Thread-safe; zero heap allocations in steady state.
void gemm_lowp_packed(const PackedLhsView& lhs, const uint8_t* B,
                      int32_t rhs_zero, int64_t N, int32_t* C,
                      const GemmOptions& opts = {});

/// Convenience overload packing row-major A (M×K) into arena scratch.
void gemm_lowp_packed(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                      int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                      int32_t* C, const GemmOptions& opts = {});

}  // namespace tincy::gemm
