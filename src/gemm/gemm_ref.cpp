#include "gemm/gemm_ref.hpp"

namespace tincy::gemm {

void gemm_ref(int64_t M, int64_t N, int64_t K, const float* A, const float* B,
              float* C, float beta) {
  for (int64_t i = 0; i < M; ++i) {
    float* c_row = C + i * N;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < N; ++j) c_row[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < N; ++j) c_row[j] *= beta;
    }
    for (int64_t k = 0; k < K; ++k) {
      const float a = A[i * K + k];
      const float* b_row = B + k * N;
      for (int64_t j = 0; j < N; ++j) c_row[j] += a * b_row[j];
    }
  }
}

Tensor gemm_ref(const Tensor& A, const Tensor& B) {
  TINCY_CHECK(A.shape().rank() == 2 && B.shape().rank() == 2);
  const int64_t M = A.shape().dim(0), K = A.shape().dim(1);
  TINCY_CHECK_MSG(B.shape().dim(0) == K, A.shape().to_string() << " x "
                                                               << B.shape().to_string());
  const int64_t N = B.shape().dim(1);
  Tensor C(Shape{M, N});
  gemm_ref(M, N, K, A.data(), B.data(), C.data(), 0.0f);
  return C;
}

}  // namespace tincy::gemm
