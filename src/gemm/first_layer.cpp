#include "gemm/first_layer.hpp"

#include <cmath>

#include "core/fixed_point.hpp"
#include "simd/vec.hpp"

namespace tincy::gemm {

using namespace simd;

bool first_layer_geometry_ok(const ConvGeometry& g) {
  return g.patch_size() == kFirstLayerPatch;
}

SymmetricWeights quantize_symmetric(const Tensor& weights) {
  SymmetricWeights sw;
  float max_abs = 0.0f;
  for (int64_t i = 0; i < weights.numel(); ++i)
    max_abs = std::max(max_abs, std::fabs(weights[i]));
  sw.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  sw.codes.resize(static_cast<size_t>(weights.numel()));
  for (int64_t i = 0; i < weights.numel(); ++i)
    sw.codes[static_cast<size_t>(i)] = saturate_cast<int8_t>(
        static_cast<int32_t>(std::lround(weights[i] / sw.scale)));
  return sw;
}

namespace {

/// Gathers the 27 input taps feeding output position (oh, ow) into `taps`;
/// out-of-image taps read as `pad`.
template <typename T>
void gather_patch(const T* image, const ConvGeometry& g, int64_t oh,
                  int64_t ow, T pad, T* taps) {
  int64_t k = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const T* plane = image + c * g.in_height * g.in_width;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      const int64_t ih = oh * g.stride - g.pad + kh;
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++k) {
        const int64_t iw = ow * g.stride - g.pad + kw;
        taps[k] = (ih < 0 || ih >= g.in_height || iw < 0 || iw >= g.in_width)
                      ? pad
                      : plane[ih * g.in_width + iw];
      }
    }
  }
}

}  // namespace

void first_layer_f32(const float* image, const ConvGeometry& g,
                     const float* weights, const float* bias, float* out) {
  TINCY_CHECK(first_layer_geometry_ok(g));
  const int64_t n = g.num_patches();
  const int64_t out_w = g.out_width();
  // Strip of 4 output positions: 27×4 tap matrix, fully unrolled dot.
  float taps[kFirstLayerPatch][4];
  float column[kFirstLayerPatch];

  for (int64_t col0 = 0; col0 < n; col0 += 4) {
    const int64_t width = std::min<int64_t>(4, n - col0);
    for (int64_t j = 0; j < width; ++j) {
      gather_patch(image, g, (col0 + j) / out_w, (col0 + j) % out_w, 0.0f,
                   column);
      for (int64_t k = 0; k < kFirstLayerPatch; ++k) taps[k][j] = column[k];
    }
    for (int64_t m = 0; m < kFirstLayerChannels; ++m) {
      const float* w = weights + m * kFirstLayerPatch;
      if (width == 4) {
        F32x4 acc = F32x4::splat(bias ? bias[m] : 0.0f);
        // 27 taps, explicitly unrollable fixed trip count.
        for (int64_t k = 0; k < kFirstLayerPatch; ++k)
          acc = mla(acc, F32x4::splat(w[k]), F32x4::load(taps[k]));
        acc.store(out + m * n + col0);
      } else {
        for (int64_t j = 0; j < width; ++j) {
          float acc = bias ? bias[m] : 0.0f;
          for (int64_t k = 0; k < kFirstLayerPatch; ++k)
            acc += w[k] * taps[k][j];
          out[m * n + col0 + j] = acc;
        }
      }
    }
  }
}

void first_layer_lowp_acc32(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const SymmetricWeights& weights, const float* bias,
                            float* out) {
  TINCY_CHECK(first_layer_geometry_ok(g));
  TINCY_CHECK(weights.codes.size() ==
              static_cast<size_t>(kFirstLayerChannels * kFirstLayerPatch));
  const int64_t n = g.num_patches();
  const int64_t out_w = g.out_width();
  const int64_t image_size = g.in_channels * g.in_height * g.in_width;
  std::vector<uint8_t> qimage(static_cast<size_t>(image_size));
  for (int64_t i = 0; i < image_size; ++i)
    qimage[static_cast<size_t>(i)] = input_params.quantize(image[i]);
  const auto pad = static_cast<uint8_t>(input_params.zero_point);
  const float real_scale = input_params.scale * weights.scale;

  uint8_t taps[kFirstLayerPatch][4];
  uint8_t column[kFirstLayerPatch];
  for (int64_t col0 = 0; col0 < n; col0 += 4) {
    const int64_t width = std::min<int64_t>(4, n - col0);
    for (int64_t j = 0; j < width; ++j) {
      gather_patch(qimage.data(), g, (col0 + j) / out_w, (col0 + j) % out_w,
                   pad, column);
      for (int64_t k = 0; k < kFirstLayerPatch; ++k) taps[k][j] = column[k];
    }
    for (int64_t m = 0; m < kFirstLayerChannels; ++m) {
      const int8_t* w = weights.codes.data() + m * kFirstLayerPatch;
      I32x4 acc = I32x4::splat(0);
      for (int64_t k = 0; k < kFirstLayerPatch; ++k) {
        // (a − za) fits in i16; product with an i8 weight fits in i32.
        I16x4 a16{};
        for (int64_t j = 0; j < 4; ++j)
          a16.lane[static_cast<size_t>(j)] = static_cast<int16_t>(
              static_cast<int32_t>(taps[k][j < width ? j : 0]) -
              input_params.zero_point);
        acc = add(acc, widening_mul(I16x4::splat(w[k]), a16));
      }
      const float b = bias ? bias[m] : 0.0f;
      for (int64_t j = 0; j < width; ++j)
        out[m * n + col0 + j] =
            real_scale * static_cast<float>(acc.lane[static_cast<size_t>(j)]) +
            b;
    }
  }
}

int16_t acc16_step(int16_t acc, int16_t product) {
  return saturating_add<int16_t>(acc, rounding_right_shift(product, 4));
}

void first_layer_lowp_acc16(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const SymmetricWeights& weights, const float* bias,
                            float* out) {
  TINCY_CHECK(first_layer_geometry_ok(g));
  const int64_t n = g.num_patches();
  const int64_t out_w = g.out_width();
  const int64_t image_size = g.in_channels * g.in_height * g.in_width;
  std::vector<uint8_t> qimage(static_cast<size_t>(image_size));
  for (int64_t i = 0; i < image_size; ++i)
    qimage[static_cast<size_t>(i)] = input_params.quantize(image[i]);
  const auto pad = static_cast<uint8_t>(input_params.zero_point);
  // The accumulator carries values pre-shifted right by 4; undo on output.
  const float real_scale = input_params.scale * weights.scale * 16.0f;

  uint8_t taps[kFirstLayerPatch][8];
  uint8_t column[kFirstLayerPatch];
  for (int64_t col0 = 0; col0 < n; col0 += 8) {
    const int64_t width = std::min<int64_t>(8, n - col0);
    for (int64_t j = 0; j < width; ++j) {
      gather_patch(qimage.data(), g, (col0 + j) / out_w, (col0 + j) % out_w,
                   pad, column);
      for (int64_t k = 0; k < kFirstLayerPatch; ++k) taps[k][j] = column[k];
    }
    for (int64_t m = 0; m < kFirstLayerChannels; ++m) {
      const int8_t* w = weights.codes.data() + m * kFirstLayerPatch;
      I16x8 acc = I16x8::splat(0);
      for (int64_t k = 0; k < kFirstLayerPatch; ++k) {
        // Center the u8 taps on the zero point; |a − za| ≤ 255 exceeds i8,
        // so the lanes are widened to i16 as NEON's VSUBL.U8 would.
        I16x8 a16{};
        for (int64_t j = 0; j < 8; ++j)
          a16.lane[static_cast<size_t>(j)] = static_cast<int16_t>(
              static_cast<int32_t>(taps[k][j < width ? j : 0]) -
              input_params.zero_point);
        // 16-bit product (≤ 255·127 < 2^15), VRSHR #4, VQADD.
        I16x8 prod{};
        for (int64_t j = 0; j < 8; ++j)
          prod.lane[static_cast<size_t>(j)] = static_cast<int16_t>(
              static_cast<int32_t>(a16.lane[static_cast<size_t>(j)]) *
              static_cast<int32_t>(w[k]));
        acc = saturating_add(acc, rounding_shift_right(prod, 4));
      }
      const float b = bias ? bias[m] : 0.0f;
      for (int64_t j = 0; j < width; ++j)
        out[m * n + col0 + j] =
            real_scale * static_cast<float>(acc.lane[static_cast<size_t>(j)]) +
            b;
    }
  }
}

}  // namespace tincy::gemm
