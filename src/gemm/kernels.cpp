#include "gemm/kernels.hpp"

#include <cstdlib>
#include <cstring>

#include "core/fixed_point.hpp"
#include "gemm/gemm_packed.hpp"
#include "simd/vec.hpp"

namespace tincy::gemm {

namespace {

// --- kScalar: plain loops, auto-vectorization disabled ------------------
//
// The baseline the bench gate measures the SIMD variants against, and the
// shoulder-check next to the gemm_lowp_* oracles: with vectorization off
// the compiler cannot re-associate the saturating/rounding arithmetic, so
// this is as close to "one lane at a time on the A53" as x86 gets.

#if defined(__GNUC__) && !defined(__clang__)
#define TINCY_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define TINCY_NO_VECTORIZE
#endif

TINCY_NO_VECTORIZE
void scalar_i32(const uint8_t* a, const uint8_t* b, int64_t K,
                uint32_t* tile) {
  uint32_t acc[kMr * kNr] = {};
  for (int64_t k = 0; k < K; ++k) {
    const uint8_t* bk = b + k * kNr;
    const uint8_t* ak = a + k * kMr;
    for (int64_t r = 0; r < kMr; ++r) {
      const uint32_t s = ak[r];
      for (int64_t j = 0; j < kNr; ++j)
        acc[r * kNr + j] += static_cast<uint16_t>(s * bk[j]);
    }
  }
  std::memcpy(tile, acc, sizeof(acc));
}

TINCY_NO_VECTORIZE
void scalar_i16shift4(const uint8_t* a, const uint8_t* b, int64_t K,
                      int32_t lhs_zero, int32_t rhs_zero, int32_t* tile) {
  int16_t acc[kMr * kNr] = {};
  for (int64_t k = 0; k < K; ++k) {
    const uint8_t* bk = b + k * kNr;
    const uint8_t* ak = a + k * kMr;
    for (int64_t r = 0; r < kMr; ++r) {
      const int32_t av = static_cast<int32_t>(ak[r]) - lhs_zero;
      for (int64_t j = 0; j < kNr; ++j) {
        const auto p = static_cast<int16_t>(
            av * (static_cast<int32_t>(bk[j]) - rhs_zero));
        acc[r * kNr + j] = tincy::saturating_add<int16_t>(
            acc[r * kNr + j], tincy::rounding_right_shift<int16_t>(p, 4));
      }
    }
  }
  for (int64_t i = 0; i < kMr * kNr; ++i)
    tile[i] = static_cast<int32_t>(acc[i]) * 16;
}

TINCY_NO_VECTORIZE
void scalar_gemv(const uint8_t* a, const uint8_t* bexp, int64_t len,
                 int64_t* raw) {
  for (int64_t r = 0; r < kMr; ++r) raw[r] = 0;
  for (int64_t l = 0; l < len; ++l)
    raw[l % kMr] +=
        static_cast<int64_t>(static_cast<uint16_t>(a[l] * bexp[l]));
}

#undef TINCY_NO_VECTORIZE

// --- kLanes: the portable NEON lane model (simd/vec.hpp) ----------------
//
// Fixed trip-count loops over 16-lane register blocks that compilers
// auto-vectorize to the host's baseline ISA; each op documents the NEON
// instruction it models, so the kernels read like the paper's §III-D
// intrinsics originals.

/// 4×16 i32 micro-kernel over one packed LHS panel and one RHS panel.
/// Inner loop is the zero-point decomposition's raw unsigned dot: each
/// packed LHS byte is broadcast and widening-MAC'd across the 16-lane RHS
/// row (VDUP.8 + VMULL.U8 + VADDW.U16). Offsets are corrected on
/// write-back, so no subtraction pollutes the hot loop.
void lanes_i32(const uint8_t* __restrict a, const uint8_t* __restrict b,
               int64_t K, uint32_t* __restrict tile) {
  using namespace simd;
  U32x16 acc0{}, acc1{}, acc2{}, acc3{};
  int64_t k = 0;
  for (; k + 4 <= K; k += 4) {
    for (int64_t u = 0; u < 4; ++u) {
      const U8x16 bv = U8x16::load(b + (k + u) * kNr);
      const uint8_t* ak = a + (k + u) * kMr;
      acc0 = widening_mla(acc0, bv, ak[0]);
      acc1 = widening_mla(acc1, bv, ak[1]);
      acc2 = widening_mla(acc2, bv, ak[2]);
      acc3 = widening_mla(acc3, bv, ak[3]);
    }
  }
  for (; k < K; ++k) {
    const U8x16 bv = U8x16::load(b + k * kNr);
    const uint8_t* ak = a + k * kMr;
    acc0 = widening_mla(acc0, bv, ak[0]);
    acc1 = widening_mla(acc1, bv, ak[1]);
    acc2 = widening_mla(acc2, bv, ak[2]);
    acc3 = widening_mla(acc3, bv, ak[3]);
  }
  acc0.store(tile);
  acc1.store(tile + kNr);
  acc2.store(tile + 2 * kNr);
  acc3.store(tile + 3 * kNr);
}

/// Widens one packed RHS row to centered i16 lanes (VMOVL.U8 + VSUB).
simd::I16x16 widen_center(const uint8_t* p, simd::I16x16 zero) {
  simd::I16x16 v;
  for (int i = 0; i < 16; ++i) v.lane[i] = static_cast<int16_t>(p[i]);
  return sub(v, zero);
}

/// 4×16 micro-kernel of the paper's 16-bit accumulator path: every
/// centered product is rounding-right-shifted by 4 (VRSHR) and added with
/// saturation (VQADD); the tile is rescaled by 16 on store. Bit-identical
/// to gemm_lowp_i32_shift4 by construction.
void lanes_i16shift4(const uint8_t* __restrict a, const uint8_t* __restrict b,
                     int64_t K, int32_t lhs_zero, int32_t rhs_zero,
                     int32_t* __restrict tile) {
  using namespace simd;
  I16x16 acc0{}, acc1{}, acc2{}, acc3{};
  const I16x16 vzb = I16x16::splat(static_cast<int16_t>(rhs_zero));
  for (int64_t k = 0; k < K; ++k) {
    const I16x16 bv = widen_center(b + k * kNr, vzb);
    const uint8_t* ak = a + k * kMr;
    const auto step = [&](I16x16 acc, uint8_t code) {
      const I16x16 av = I16x16::splat(
          static_cast<int16_t>(static_cast<int32_t>(code) - lhs_zero));
      return saturating_add(acc, rounding_shift_right(mul(av, bv), 4));
    };
    acc0 = step(acc0, ak[0]);
    acc1 = step(acc1, ak[1]);
    acc2 = step(acc2, ak[2]);
    acc3 = step(acc3, ak[3]);
  }
  const I16x16* accs[kMr] = {&acc0, &acc1, &acc2, &acc3};
  for (int64_t r = 0; r < kMr; ++r)
    for (int64_t j = 0; j < kNr; ++j)
      tile[r * kNr + j] = static_cast<int32_t>(accs[r]->lane[j]) * 16;
}

/// GEMV micro-kernel (N == 1): the packed panel is a flat u8 run of
/// K·kMr bytes (k-major, 4 interleaved rows); `bexp` holds the RHS column
/// replicated 4× (bexp[k·kMr + r] = b[k]) so the whole block reduces to
/// one 16-lane flat dot product. Lane l of the accumulator gathers the
/// products of row l % kMr, folded on write-back.
void lanes_gemv(const uint8_t* __restrict a, const uint8_t* __restrict bexp,
                int64_t len, int64_t* __restrict raw /* kMr */) {
  using namespace simd;
  U32x16 acc{};
  int64_t l = 0;
  for (; l + 16 <= len; l += 16)
    acc = add(acc, widening_mul_u16_to_u32(U8x16::load(a + l),
                                           U8x16::load(bexp + l)));
  for (int64_t r = 0; r < kMr; ++r) raw[r] = 0;
  for (int i = 0; i < 16; ++i)
    raw[i % kMr] += static_cast<int64_t>(acc.lane[i]);
  for (; l < len; ++l)
    raw[l % kMr] += static_cast<int64_t>(a[l]) * bexp[l];
}

constexpr MicroKernels kScalarKernels{scalar_i32, scalar_i16shift4,
                                      scalar_gemv};
constexpr MicroKernels kLanesKernels{lanes_i32, lanes_i16shift4, lanes_gemv};

}  // namespace

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kAuto: return "auto";
    case Kernel::kScalar: return "scalar";
    case Kernel::kLanes: return "lanes";
    case Kernel::kAvx2: return "avx2";
  }
  return "?";
}

Kernel parse_kernel_name(const char* name) {
  if (!name) return Kernel::kAuto;
  if (std::strcmp(name, "scalar") == 0) return Kernel::kScalar;
  if (std::strcmp(name, "lanes") == 0) return Kernel::kLanes;
  if (std::strcmp(name, "avx2") == 0) return Kernel::kAvx2;
  return Kernel::kAuto;
}

bool kernel_supported(Kernel k) {
  switch (k) {
    case Kernel::kAuto: return false;
    case Kernel::kScalar:
    case Kernel::kLanes: return true;
    case Kernel::kAvx2: return avx2_micro_kernels() != nullptr;
  }
  return false;
}

Kernel widest_supported_kernel() {
  return kernel_supported(Kernel::kAvx2) ? Kernel::kAvx2 : Kernel::kLanes;
}

Kernel resolve_kernel(Kernel requested) {
  if (requested == Kernel::kAuto) {
    // Read per call (a linear environ scan, negligible next to a GEMM) so
    // tests and benches can flip the override without process restarts.
    const Kernel env = parse_kernel_name(std::getenv("TINCY_GEMM_KERNEL"));
    if (env != Kernel::kAuto && kernel_supported(env)) return env;
    return widest_supported_kernel();
  }
  return kernel_supported(requested) ? requested : widest_supported_kernel();
}

std::vector<Kernel> dispatchable_kernels() {
  std::vector<Kernel> v{Kernel::kScalar, Kernel::kLanes};
  if (kernel_supported(Kernel::kAvx2)) v.push_back(Kernel::kAvx2);
  return v;
}

const MicroKernels& micro_kernels(Kernel resolved) {
  switch (resolved) {
    case Kernel::kScalar: return kScalarKernels;
    case Kernel::kAvx2:
      if (const MicroKernels* mk = avx2_micro_kernels()) return *mk;
      break;
    default: break;
  }
  return kLanesKernels;
}

}  // namespace tincy::gemm
