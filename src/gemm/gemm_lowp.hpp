#pragma once

/// \file gemm_lowp.hpp
/// Self-contained low-precision GEMM with the gemmlowp contract the paper's
/// 8-bit NEON path builds on: uint8 operands with zero-point offsets,
/// int32 accumulation, and an optional integer requantization pipeline
/// producing uint8 output.

#include <cstdint>

#include "core/tensor.hpp"
#include "gemm/gemm_packed.hpp"
#include "gemm/im2col.hpp"
#include "quant/affine.hpp"

namespace tincy::gemm {

/// C_i32 (M×N) = Σ_k (A[i,k] − lhs_zero) · (B[k,j] − rhs_zero); plain
/// scalar reference form.
void gemm_lowp_i32(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                   int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                   int32_t* C);

/// Lane-vectorized variant using the NEON idiom VMULL.S16 + VPADAL /
/// accumulate-long over 8 widened lanes; bit-identical to gemm_lowp_i32.
void gemm_lowp_i32_lanes(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                         int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                         int32_t* C);

/// Full quantized GEMM: int32 accumulation followed by the requantization
/// pipeline into uint8 output codes.
void gemm_lowp_u8(int64_t M, int64_t N, int64_t K, const uint8_t* A,
                  int32_t lhs_zero, const uint8_t* B, int32_t rhs_zero,
                  const quant::Requantizer& requant, uint8_t* C);

/// Quantized convolution in the paper's §III-D style: im2col quantizes the
/// image data "while arranging the multiplicand matrix", then a lowp GEMM
/// produces int32 accumulators which are dequantized to float output (the
/// form the surrounding float network consumes). `weights` are uint8 codes
/// with `weight_params`; `bias` (length out_channels, may be null) is added
/// in real space.
void conv_lowp_f32out(const float* image, const ConvGeometry& g,
                      const quant::AffineParams& input_params,
                      const uint8_t* weights,
                      const quant::AffineParams& weight_params,
                      int64_t out_channels, const float* bias, float* out);

/// Overload running against a weight matrix already packed with pack_lhs
/// (the per-layer cached form; skips the per-call packing cost). The
/// packed zero_point must be weight_params.zero_point.
void conv_lowp_f32out(const float* image, const ConvGeometry& g,
                      const quant::AffineParams& input_params,
                      const PackedLhsView& weights,
                      const quant::AffineParams& weight_params,
                      const float* bias, float* out);

/// Fused sliced variant of conv_lowp_f32out (strip im2col, immediate GEMM).
void fused_conv_lowp_f32out(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const uint8_t* weights,
                            const quant::AffineParams& weight_params,
                            int64_t out_channels, const float* bias,
                            float* out);

/// Packed-weight overload of the fused path.
void fused_conv_lowp_f32out(const float* image, const ConvGeometry& g,
                            const quant::AffineParams& input_params,
                            const PackedLhsView& weights,
                            const quant::AffineParams& weight_params,
                            const float* bias, float* out);

/// Strip im2col over uint8 codes: writes rows [0, patch_size) of columns
/// [col0, col0+width) of the full column matrix, rows contiguous with
/// stride `width`. Iterates (oh, ow) incrementally — no div/mod per
/// element. Exposed for the fused path's tests.
void im2col_strip_u8(const uint8_t* image, const ConvGeometry& g,
                     int64_t col0, int64_t width, uint8_t pad_value,
                     uint8_t* strip);

}  // namespace tincy::gemm
