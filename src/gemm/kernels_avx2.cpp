/// \file kernels_avx2.cpp
/// AVX2 micro-kernels of the packed GEMM engine (Kernel::kAvx2).
///
/// Same arithmetic as the portable lane-model kernels, issued on 256-bit
/// registers: one full kNr=16-lane row per VPMULLW, widened into i32/u32
/// accumulators with unpack/convert pairs. Each function carries
/// target("avx2") so the TU builds without global -mavx2; the dispatcher
/// probes cpuid at runtime and only hands these out when the machine can
/// execute them. Bit-identity with the scalar oracles is by construction:
///   * u8·u8 products are exact in the low 16 bits VPMULLW keeps;
///   * the VRSHR rounding shift (x + 8) >> 4 is issued overflow-free as
///     (x >> 4) + ((x >> 3) & 1), an identity for arithmetic shifts;
///   * VQADD maps to VPADDSW.

#include "gemm/kernels.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)

#include <immintrin.h>

#include "gemm/gemm_packed.hpp"

namespace tincy::gemm {
namespace {

#define TINCY_AVX2 __attribute__((target("avx2")))

/// Zero-extends the 16 u8 lanes at p into one 16×u16 ymm (VPMOVZXBW).
TINCY_AVX2 inline __m256i load_u8x16_as_u16(const uint8_t* p) {
  return _mm256_cvtepu8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// Rounding arithmetic shift right by 4 on i16 lanes (VRSHR.S16 #4),
/// overflow-free: (x + 8) >> 4 == (x >> 4) + ((x >> 3) & 1).
TINCY_AVX2 inline __m256i rounding_shift_right4_i16(__m256i x) {
  return _mm256_add_epi16(
      _mm256_srai_epi16(x, 4),
      _mm256_and_si256(_mm256_srai_epi16(x, 3), _mm256_set1_epi16(1)));
}

/// 4×16 i32 tile: raw unsigned dot of the zero-point decomposition. The
/// u16 products are interleave-widened into two u32 accumulators per row
/// ([0-3,8-11] / [4-7,12-15]); the store permutes them back in order.
TINCY_AVX2 void avx2_i32(const uint8_t* a, const uint8_t* b, int64_t K,
                         uint32_t* tile) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc_lo[kMr], acc_hi[kMr];
  for (int64_t r = 0; r < kMr; ++r) acc_lo[r] = acc_hi[r] = zero;
  for (int64_t k = 0; k < K; ++k) {
    const __m256i bv = load_u8x16_as_u16(b + k * kNr);
    const uint8_t* ak = a + k * kMr;
    for (int64_t r = 0; r < kMr; ++r) {
      const __m256i prod =
          _mm256_mullo_epi16(bv, _mm256_set1_epi16(ak[r]));  // exact u16
      acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_unpacklo_epi16(prod, zero));
      acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_unpackhi_epi16(prod, zero));
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    __m256i* out = reinterpret_cast<__m256i*>(tile + r * kNr);
    _mm256_storeu_si256(out,
                        _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
    _mm256_storeu_si256(out + 1,
                        _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
  }
}

/// 4×16 tile of the 16-bit accumulator path: centered products (low-16
/// wrap, exactly the scalar cast), VRSHR by 4, saturating add (VPADDSW),
/// rescale by 16 on the widening store.
TINCY_AVX2 void avx2_i16shift4(const uint8_t* a, const uint8_t* b, int64_t K,
                               int32_t lhs_zero, int32_t rhs_zero,
                               int32_t* tile) {
  const __m256i vzb = _mm256_set1_epi16(static_cast<short>(rhs_zero));
  __m256i acc[kMr];
  for (int64_t r = 0; r < kMr; ++r) acc[r] = _mm256_setzero_si256();
  for (int64_t k = 0; k < K; ++k) {
    const __m256i bv = _mm256_sub_epi16(load_u8x16_as_u16(b + k * kNr), vzb);
    const uint8_t* ak = a + k * kMr;
    for (int64_t r = 0; r < kMr; ++r) {
      const __m256i av = _mm256_set1_epi16(
          static_cast<short>(static_cast<int32_t>(ak[r]) - lhs_zero));
      acc[r] = _mm256_adds_epi16(
          acc[r], rounding_shift_right4_i16(_mm256_mullo_epi16(av, bv)));
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    const __m256i lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(acc[r]));
    const __m256i hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(acc[r], 1));
    __m256i* out = reinterpret_cast<__m256i*>(tile + r * kNr);
    _mm256_storeu_si256(out, _mm256_slli_epi32(lo, 4));
    _mm256_storeu_si256(out + 1, _mm256_slli_epi32(hi, 4));
  }
}

/// GEMV flat dot: 16 u8 pairs per step, widened products accumulated in
/// interleaved u32 lanes. Every interleaved group of 4 lanes stays
/// congruent to its logical position mod kMr, so the fold by buffer
/// index % kMr recovers exactly the lane-model row assignment.
TINCY_AVX2 void avx2_gemv(const uint8_t* a, const uint8_t* bexp, int64_t len,
                          int64_t* raw) {
  static_assert(kMr == 4, "interleaved fold relies on 4-aligned groups");
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc_lo = zero, acc_hi = zero;
  int64_t l = 0;
  for (; l + 16 <= len; l += 16) {
    const __m256i prod = _mm256_mullo_epi16(load_u8x16_as_u16(a + l),
                                            load_u8x16_as_u16(bexp + l));
    acc_lo = _mm256_add_epi32(acc_lo, _mm256_unpacklo_epi16(prod, zero));
    acc_hi = _mm256_add_epi32(acc_hi, _mm256_unpackhi_epi16(prod, zero));
  }
  uint32_t buf[16];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(buf), acc_lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(buf + 8), acc_hi);
  for (int64_t r = 0; r < kMr; ++r) raw[r] = 0;
  for (int p = 0; p < 16; ++p) raw[p % kMr] += static_cast<int64_t>(buf[p]);
  for (; l < len; ++l)
    raw[l % kMr] += static_cast<int64_t>(a[l]) * bexp[l];
}

#undef TINCY_AVX2

constexpr MicroKernels kAvx2Kernels{avx2_i32, avx2_i16shift4, avx2_gemv};

}  // namespace

const MicroKernels* avx2_micro_kernels() {
  static const MicroKernels* mk =
      __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
  return mk;
}

}  // namespace tincy::gemm

#else  // non-x86 or non-GCC-compatible build: variant unavailable

namespace tincy::gemm {
const MicroKernels* avx2_micro_kernels() { return nullptr; }
}  // namespace tincy::gemm

#endif
