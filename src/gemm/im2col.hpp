#pragma once

/// \file im2col.hpp
/// The im2col / col2im transforms reducing convolution to matrix multiply.
///
/// As the paper explains (§I), the multiplicand matrix is built from the
/// linearized kernel-application footprints; with stride 1 and small K the
/// transform inflates the feature map by ~K². Layout follows Darknet:
/// the column matrix has C·K·K rows and outH·outW columns, so that
/// weights (C'×C·K·K) times columns yields the C'×(outH·outW) output map.

#include <cstdint>

#include "core/tensor.hpp"

namespace tincy::gemm {

/// Static geometry of a 2-d convolution over a CHW feature map.
struct ConvGeometry {
  int64_t in_channels = 0;
  int64_t in_height = 0;
  int64_t in_width = 0;
  int64_t kernel = 1;  ///< square K×K kernel
  int64_t stride = 1;
  int64_t pad = 0;  ///< symmetric zero padding

  int64_t out_height() const {
    return (in_height + 2 * pad - kernel) / stride + 1;
  }
  int64_t out_width() const { return (in_width + 2 * pad - kernel) / stride + 1; }
  /// Rows of the column matrix == depth of each dot product.
  int64_t patch_size() const { return in_channels * kernel * kernel; }
  /// Columns of the column matrix == kernel applications per channel.
  int64_t num_patches() const { return out_height() * out_width(); }
};

/// Expands a CHW image into the column matrix (patch_size × num_patches).
/// Out-of-image taps are filled with `pad_value` (0 for floats; the
/// zero-point code for affine-quantized uint8 data, keeping padding exact).
template <typename T>
void im2col(const T* image, const ConvGeometry& g, T* columns,
            T pad_value = T{});

/// Convenience overload allocating the output tensor.
Tensor im2col(const Tensor& image, const ConvGeometry& g);
TensorU8 im2col(const TensorU8& image, const ConvGeometry& g,
                uint8_t pad_value);

/// Scatters a column matrix back into image space, *accumulating*
/// overlapping contributions — the adjoint of im2col, needed by the
/// training substrate's convolution backward pass.
void col2im(const float* columns, const ConvGeometry& g, float* image);

extern template void im2col<float>(const float*, const ConvGeometry&, float*,
                                   float);
extern template void im2col<uint8_t>(const uint8_t*, const ConvGeometry&,
                                     uint8_t*, uint8_t);

}  // namespace tincy::gemm
