#include "gemm/gemm_simd.hpp"

#include <vector>

#include "gemm/gemm_ref.hpp"
#include "simd/vec.hpp"
#include "telemetry/metrics.hpp"

namespace tincy::gemm {

using simd::F32x4;

void gemm_f32_lanes(int64_t M, int64_t N, int64_t K, const float* A,
                    const float* B, float* C) {
  const int64_t n4 = N - (N % 4);
  for (int64_t i = 0; i < M; ++i) {
    float* c_row = C + i * N;
    for (int64_t j = 0; j < n4; j += 4) F32x4::splat(0.0f).store(c_row + j);
    for (int64_t j = n4; j < N; ++j) c_row[j] = 0.0f;
    for (int64_t k = 0; k < K; ++k) {
      const F32x4 a = F32x4::splat(A[i * K + k]);
      const float* b_row = B + k * N;
      for (int64_t j = 0; j < n4; j += 4) {
        const F32x4 acc = simd::mla(F32x4::load(c_row + j), a,
                                    F32x4::load(b_row + j));
        acc.store(c_row + j);
      }
      for (int64_t j = n4; j < N; ++j) c_row[j] += A[i * K + k] * b_row[j];
    }
  }
}

void gemm_f32_blocked(int64_t M, int64_t N, int64_t K, const float* A,
                      const float* B, float* C) {
  // Tile sizes chosen for a Cortex-A53-class 32 KiB L1D: a KC×NC panel of
  // B (64×256 floats = 64 KiB halves between L1/L2) is reused across all M
  // rows before moving on.
  constexpr int64_t KC = 64, NC = 256;
  for (int64_t i = 0; i < M * N; ++i) C[i] = 0.0f;

  for (int64_t k0 = 0; k0 < K; k0 += KC) {
    const int64_t kc = std::min(KC, K - k0);
    for (int64_t n0 = 0; n0 < N; n0 += NC) {
      const int64_t nc = std::min(NC, N - n0);
      const int64_t n4 = nc - (nc % 4);
      for (int64_t i = 0; i < M; ++i) {
        float* c_row = C + i * N + n0;
        for (int64_t k = 0; k < kc; ++k) {
          const float a = A[i * K + k0 + k];
          const float* b_row = B + (k0 + k) * N + n0;
          const F32x4 va = F32x4::splat(a);
          for (int64_t j = 0; j < n4; j += 4) {
            const F32x4 acc =
                simd::mla(F32x4::load(c_row + j), va, F32x4::load(b_row + j));
            acc.store(c_row + j);
          }
          for (int64_t j = n4; j < nc; ++j) c_row[j] += a * b_row[j];
        }
      }
    }
  }
}

namespace {

/// Fills one lane-wide strip of the column matrix: for output positions
/// [col0, col0+width) produces `patch_size` rows of `width` values.
void im2col_strip_f32(const float* image, const ConvGeometry& g, int64_t col0,
                      int64_t width, float* strip) {
  const int64_t out_w = g.out_width();
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image + c * g.in_height * g.in_width;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        float* out_row = strip + row * width;
        for (int64_t j = 0; j < width; ++j) {
          const int64_t patch = col0 + j;
          const int64_t oh = patch / out_w, ow = patch % out_w;
          const int64_t ih = oh * g.stride - g.pad + kh;
          const int64_t iw = ow * g.stride - g.pad + kw;
          out_row[j] = (ih < 0 || ih >= g.in_height || iw < 0 ||
                        iw >= g.in_width)
                           ? 0.0f
                           : plane[ih * g.in_width + iw];
        }
      }
    }
  }
}

}  // namespace

void fused_conv_f32(const float* image, const ConvGeometry& g,
                    const float* weights, int64_t out_channels,
                    const float* bias, float* out) {
  // The fused path has no separable im2col stage; one span covers it.
  static telemetry::Histogram& fused_hist =
      telemetry::MetricsRegistry::global().histogram("gemm.fused_ms");
  telemetry::ScopedTimer timer(fused_hist);

  constexpr int64_t kLanes = F32x4::kLanes;
  const int64_t patch = g.patch_size();
  const int64_t n = g.num_patches();
  std::vector<float> strip(static_cast<size_t>(patch * kLanes));

  for (int64_t col0 = 0; col0 < n; col0 += kLanes) {
    const int64_t width = std::min<int64_t>(kLanes, n - col0);
    im2col_strip_f32(image, g, col0, width, strip.data());
    for (int64_t m = 0; m < out_channels; ++m) {
      const float* w_row = weights + m * patch;
      if (width == kLanes) {
        F32x4 acc = F32x4::splat(bias ? bias[m] : 0.0f);
        for (int64_t k = 0; k < patch; ++k)
          acc = simd::mla(acc, F32x4::splat(w_row[k]),
                          F32x4::load(strip.data() + k * kLanes));
        acc.store(out + m * n + col0);
      } else {
        for (int64_t j = 0; j < width; ++j) {
          float acc = bias ? bias[m] : 0.0f;
          for (int64_t k = 0; k < patch; ++k)
            acc += w_row[k] * strip[static_cast<size_t>(k * width + j)];
          out[m * n + col0 + j] = acc;
        }
      }
    }
  }
}

void conv_via_im2col_f32(const float* image, const ConvGeometry& g,
                         const float* weights, int64_t out_channels,
                         const float* bias, float* out) {
  // Attribute the im2col materialization separately from the GEMM — the
  // two stages Table III distinguishes for the generic CPU path.
  auto& registry = telemetry::MetricsRegistry::global();
  static telemetry::Histogram& im2col_hist =
      registry.histogram("gemm.im2col_ms");
  static telemetry::Histogram& gemm_hist = registry.histogram("gemm.gemm_ms");

  const int64_t patch = g.patch_size(), n = g.num_patches();
  std::vector<float> columns(static_cast<size_t>(patch * n));
  {
    telemetry::ScopedTimer span(im2col_hist);
    im2col(image, g, columns.data(), 0.0f);
  }
  telemetry::ScopedTimer span(gemm_hist);
  gemm_ref(out_channels, n, patch, weights, columns.data(), out, 0.0f);
  if (bias) {
    for (int64_t m = 0; m < out_channels; ++m)
      for (int64_t j = 0; j < n; ++j) out[m * n + j] += bias[m];
  }
}

}  // namespace tincy::gemm
