#pragma once

/// \file gemm_simd.hpp
/// NEON-style lane-vectorized float GEMM and the paper's fused, sliced
/// im2col+GEMM convolution (§III-D).
///
/// The fused kernel slices the multiplicand matrix into vertical strips as
/// wide as the vector lane count, produces each strip with im2col on the
/// fly into a small re-used buffer, and immediately consumes it computing
/// the corresponding strip of the result row by row — the data-locality
/// optimization that gave the paper a 2.1× speedup even in floating point.

#include <cstdint>

#include "core/tensor.hpp"
#include "gemm/im2col.hpp"

namespace tincy::gemm {

/// C (M×N) = A (M×K) · B (K×N) using 4-lane f32 vectors over the N axis
/// (the direct NEON port of the reference GEMM).
void gemm_f32_lanes(int64_t M, int64_t N, int64_t K, const float* A,
                    const float* B, float* C);

/// Cache-blocked float GEMM: tiles the K and N loops so the working set of
/// B stays cache-resident — the same data-locality lever the paper's fused
/// kernel pulls, applied to the standalone GEMM ("significantly increased
/// data locality ... especially beneficial on embedded platforms with
/// rather small cache sizes"). Bit-compatible with gemm_f32_lanes up to
/// float summation-order differences.
void gemm_f32_blocked(int64_t M, int64_t N, int64_t K, const float* A,
                      const float* B, float* C);

/// Fused sliced im2col + GEMM convolution in f32:
/// out (M × outH·outW) = weights (M × patch) ∗ image, with optional bias
/// (length M, may be null). The im2col strip buffer is patch×4 floats and
/// is recycled across strips, never materializing the full column matrix.
void fused_conv_f32(const float* image, const ConvGeometry& g,
                    const float* weights, int64_t out_channels,
                    const float* bias, float* out);

/// Reference (unfused) conv for validation: materializes im2col then GEMM.
void conv_via_im2col_f32(const float* image, const ConvGeometry& g,
                         const float* weights, int64_t out_channels,
                         const float* bias, float* out);

}  // namespace tincy::gemm
