#pragma once

/// \file virtual_time.hpp
/// Deterministic discrete-event execution of the Fig. 5/6 pipeline in
/// *virtual* time: each stage has a fixed duration and the scheduler
/// dispatches jobs to a fixed number of cores with the paper's
/// most-mature-first policy. This is how the reproduction predicts the
/// embedded platform's frame rate (4 × Cortex-A53) from per-stage stage
/// times on a host with a different core count — the paper's "theoretical
/// maximum of a fourfold increase ... diluted by parallelization and
/// synchronization overhead" becomes an exact computable quantity.

#include <string>
#include <vector>

namespace tincy::pipeline {

/// A stage in the virtual-time model.
struct TimedStage {
  std::string name;
  double duration_ms = 0.0;
  /// Stages bound to an exclusive resource (the PL accelerator) contend on
  /// it in addition to needing a CPU core slot for the wrapping driver
  /// call; stages sharing the same non-empty tag serialize globally.
  std::string exclusive_resource;
};

/// One dispatched job in the simulated schedule.
struct ScheduledJob {
  int64_t stage = 0;
  int64_t frame = 0;
  int core = 0;
  double start_ms = 0.0;
  double finish_ms = 0.0;
};

/// Result of a virtual-time run.
struct VirtualRunResult {
  double makespan_ms = 0.0;         ///< completion time of the last frame
  double fps = 0.0;                 ///< steady-state throughput
  double latency_ms = 0.0;          ///< per-frame latency (steady state)
  std::vector<double> core_busy_ms; ///< accumulated busy time per core
  std::vector<int64_t> completion_order;  ///< frame ids in sink order
  std::vector<ScheduledJob> schedule;     ///< all jobs in dispatch order

  /// Mean core utilization over the makespan.
  double utilization() const;
};

/// Renders the first `horizon_ms` of a schedule as an ASCII per-core
/// timeline (one row per core, one column per `resolution_ms`), labelling
/// each job by its frame id modulo 10.
std::string render_schedule(const VirtualRunResult& result,
                            const std::vector<TimedStage>& stages,
                            int num_cores, double horizon_ms,
                            double resolution_ms);

/// Simulates `num_frames` frames through the staged pipeline on
/// `num_cores` cores. Buffering and scheduling follow Pipeline exactly:
/// single-slot output buffers, stage-serial execution, most-mature-first.
VirtualRunResult simulate(const std::vector<TimedStage>& stages,
                          int num_cores, int64_t num_frames);

/// Sequential baseline: one frame at a time through all stages (the
/// pre-§III-F demo mode). fps = 1000 / Σ duration.
double sequential_fps(const std::vector<TimedStage>& stages);

}  // namespace tincy::pipeline
