#include "pipeline/virtual_time.hpp"

#include <limits>
#include <queue>
#include <set>
#include <sstream>

#include "core/errors.hpp"

namespace tincy::pipeline {

double VirtualRunResult::utilization() const {
  if (core_busy_ms.empty() || makespan_ms <= 0.0) return 0.0;
  double busy = 0.0;
  for (const double b : core_busy_ms) busy += b;
  return busy / (makespan_ms * static_cast<double>(core_busy_ms.size()));
}

double sequential_fps(const std::vector<TimedStage>& stages) {
  double total = 0.0;
  for (const auto& s : stages) total += s.duration_ms;
  return total > 0.0 ? 1000.0 / total : 0.0;
}

VirtualRunResult simulate(const std::vector<TimedStage>& stages,
                          int num_cores, int64_t num_frames) {
  TINCY_CHECK(!stages.empty());
  TINCY_CHECK(num_cores >= 1);
  TINCY_CHECK(num_frames >= 1);
  const int64_t S = static_cast<int64_t>(stages.size());
  constexpr double kUnset = -1.0;

  // start/finish times per (stage, frame).
  std::vector<std::vector<double>> start(
      static_cast<size_t>(S),
      std::vector<double>(static_cast<size_t>(num_frames), kUnset));
  std::vector<std::vector<double>> finish = start;

  struct Completion {
    double time;
    int64_t stage;
    int64_t frame;
    int core;
    bool operator>(const Completion& o) const { return time > o.time; }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      events;

  std::vector<double> core_busy(static_cast<size_t>(num_cores), 0.0);
  std::vector<int> free_cores;
  for (int c = num_cores - 1; c >= 0; --c) free_cores.push_back(c);
  std::set<std::string> busy_resources;

  // Per stage, the next frame index awaiting execution (stage-serial).
  std::vector<int64_t> next_frame(static_cast<size_t>(S), 0);

  double now = 0.0;
  VirtualRunResult result;

  const auto runnable = [&](int64_t s) -> bool {
    const int64_t f = next_frame[static_cast<size_t>(s)];
    if (f >= num_frames) return false;
    // Input available (upstream finished this frame).
    if (s > 0 && finish[static_cast<size_t>(s - 1)][static_cast<size_t>(f)] ==
                     kUnset)
      return false;
    if (s > 0 &&
        finish[static_cast<size_t>(s - 1)][static_cast<size_t>(f)] > now)
      return false;
    // Stage-serial execution: the output slot stays reserved while the
    // stage runs, so frame f cannot start before frame f−1 finished here.
    if (f > 0) {
      const double prev =
          finish[static_cast<size_t>(s)][static_cast<size_t>(f - 1)];
      if (prev == kUnset || prev > now) return false;
    }
    // Output buffer free (downstream consumed the previous frame). The
    // final stage feeds the always-free sink.
    if (s + 1 < S && f > 0) {
      const double consumed =
          start[static_cast<size_t>(s + 1)][static_cast<size_t>(f - 1)];
      if (consumed == kUnset || consumed > now) return false;
    }
    if (!stages[static_cast<size_t>(s)].exclusive_resource.empty() &&
        busy_resources.contains(stages[static_cast<size_t>(s)].exclusive_resource))
      return false;
    return true;
  };

  const auto dispatch_all = [&] {
    // Most mature first: highest stage index, and within a stage the only
    // candidate is its next frame.
    bool progress = true;
    while (progress && !free_cores.empty()) {
      progress = false;
      for (int64_t s = S - 1; s >= 0; --s) {
        if (free_cores.empty()) break;
        if (!runnable(s)) continue;
        const int64_t f = next_frame[static_cast<size_t>(s)]++;
        const int core = free_cores.back();
        free_cores.pop_back();
        const double dur = stages[static_cast<size_t>(s)].duration_ms;
        start[static_cast<size_t>(s)][static_cast<size_t>(f)] = now;
        result.schedule.push_back({s, f, core, now, now + dur});
        core_busy[static_cast<size_t>(core)] += dur;
        if (!stages[static_cast<size_t>(s)].exclusive_resource.empty())
          busy_resources.insert(stages[static_cast<size_t>(s)].exclusive_resource);
        events.push({now + dur, s, f, core});
        progress = true;
      }
    }
  };

  dispatch_all();
  while (!events.empty()) {
    const Completion c = events.top();
    events.pop();
    now = c.time;
    finish[static_cast<size_t>(c.stage)][static_cast<size_t>(c.frame)] = now;
    free_cores.push_back(c.core);
    if (!stages[static_cast<size_t>(c.stage)].exclusive_resource.empty())
      busy_resources.erase(stages[static_cast<size_t>(c.stage)].exclusive_resource);
    if (c.stage == S - 1) result.completion_order.push_back(c.frame);
    dispatch_all();
  }

  result.makespan_ms = now;
  result.core_busy_ms = core_busy;
  const auto& last = finish[static_cast<size_t>(S - 1)];
  if (num_frames > 1) {
    result.fps = 1000.0 * static_cast<double>(num_frames - 1) /
                 (last[static_cast<size_t>(num_frames - 1)] - last[0]);
  } else {
    result.fps = 1000.0 / result.makespan_ms;
  }
  result.latency_ms =
      last[static_cast<size_t>(num_frames - 1)] -
      start[0][static_cast<size_t>(num_frames - 1)];
  return result;
}

std::string render_schedule(const VirtualRunResult& result,
                            const std::vector<TimedStage>& stages,
                            int num_cores, double horizon_ms,
                            double resolution_ms) {
  TINCY_CHECK(num_cores >= 1 && horizon_ms > 0.0 && resolution_ms > 0.0);
  const auto columns =
      static_cast<size_t>(horizon_ms / resolution_ms) + 1;
  std::vector<std::string> rows(static_cast<size_t>(num_cores),
                                std::string(columns, '.'));
  for (const auto& job : result.schedule) {
    if (job.start_ms >= horizon_ms) continue;
    const auto c0 = static_cast<size_t>(job.start_ms / resolution_ms);
    const auto c1 = std::min(
        columns - 1, static_cast<size_t>(job.finish_ms / resolution_ms));
    const char mark = static_cast<char>('0' + (job.frame % 10));
    for (size_t c = c0; c <= c1; ++c)
      rows[static_cast<size_t>(job.core)][c] = mark;
  }
  std::ostringstream os;
  os << "per-core schedule (one column = " << resolution_ms
     << " ms; digit = frame id mod 10):\n";
  for (int core = 0; core < num_cores; ++core)
    os << "  core " << core << "  |" << rows[static_cast<size_t>(core)]
       << "|\n";
  os << "  stages: ";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i) os << ", ";
    os << stages[i].name;
  }
  os << "\n";
  return os.str();
}

}  // namespace tincy::pipeline
