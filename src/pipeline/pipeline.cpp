#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "core/errors.hpp"

#ifdef __linux__
#include <pthread.h>
#endif

namespace tincy::pipeline {

namespace {

/// Stage names become metric-name components; spaces would make the
/// flat names awkward to grep, so they are replaced.
std::string metric_label(const std::string& stage_name) {
  std::string out = stage_name;
  std::replace(out.begin(), out.end(), ' ', '_');
  return out;
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  TINCY_CHECK_MSG(!options_.stages.empty(),
                  "pipeline needs at least one stage");
  TINCY_CHECK_MSG(options_.num_workers >= 1,
                  "num_workers " << options_.num_workers);
  TINCY_CHECK(options_.source != nullptr && options_.sink != nullptr);
  metrics_ = options_.metrics ? options_.metrics
                              : &telemetry::MetricsRegistry::global();
  trace_ = options_.trace ? options_.trace
                          : &telemetry::TraceCollector::global();

  stage_metrics_.reserve(options_.stages.size());
  stage_trace_names_.reserve(options_.stages.size());
  for (const auto& stage : options_.stages)
    stage_trace_names_.push_back("stage:" + stage.name);
  for (const auto& stage : options_.stages) {
    const std::string prefix =
        "pipeline.stage." + metric_label(stage.name) + ".";
    stage_metrics_.push_back({&metrics_->histogram(prefix + "busy_ms"),
                              &metrics_->histogram(prefix + "wait_ms"),
                              &metrics_->counter(prefix + "jobs"),
                              &metrics_->gauge(prefix + "queue_depth")});
  }
  frame_latency_hist_ = &metrics_->histogram("pipeline.frame_latency_ms");
  idle_ms_gauge_ = &metrics_->gauge("pipeline.workers.idle_ms");
  frames_counter_ = &metrics_->counter("pipeline.frames");
  elapsed_ms_gauge_ = &metrics_->gauge("pipeline.elapsed_ms");
  fps_gauge_ = &metrics_->gauge("pipeline.fps");
}

Pipeline::Pipeline(std::vector<Stage> stages,
                   std::function<video::Frame()> source,
                   std::function<void(const video::Frame&)> sink,
                   int num_workers)
    : Pipeline(PipelineOptions{std::move(stages), std::move(source),
                               std::move(sink), num_workers,
                               /*pin_threads=*/true, /*collect_latency=*/true,
                               /*metrics=*/nullptr}) {}

int64_t Pipeline::pick_job_locked() const {
  // "The most mature one whose output buffer is free and whose input
  // buffer has data pending" — scan from the back of the pipeline.
  const auto& stages = options_.stages;
  for (int64_t i = static_cast<int64_t>(stages.size()) - 1; i >= 0; --i) {
    const Slot& out = slots_[static_cast<size_t>(i)];
    if (out.reserved || out.frame.has_value()) continue;  // output not free
    if (i == 0) {
      if (frames_pulled_ < frames_to_pull_) return 0;  // source always avail
      continue;
    }
    if (slots_[static_cast<size_t>(i - 1)].frame.has_value()) return i;
  }
  return -1;
}

void Pipeline::worker_loop(int worker_index) {
#ifdef __linux__
  // "One worker thread is allocated for each available core and tied to
  // it" — best-effort pinning on the host.
  if (options_.pin_threads) {
    cpu_set_t set;
    CPU_ZERO(&set);
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    CPU_SET(static_cast<unsigned>(worker_index) % ncpu, &set);
    pthread_setaffinity_np(pthread_self(), sizeof set, &set);
  }
#else
  (void)worker_index;
#endif

  std::unique_lock lock(mutex_);
  while (true) {
    int64_t job = -1;
    const auto idle0 = std::chrono::steady_clock::now();
    cv_.wait(lock, [&] {
      job = pick_job_locked();
      return stopping_ || frames_sunk_ == frames_total_ || job >= 0;
    });
    idle_ms_gauge_->add(ms_between(idle0, std::chrono::steady_clock::now()));
    if (stopping_ || frames_sunk_ == frames_total_) return;

    // Claim the job: reserve the output slot and take the input frame.
    StageMetrics& sm = stage_metrics_[static_cast<size_t>(job)];
    Slot& out = slots_[static_cast<size_t>(job)];
    out.reserved = true;
    video::Frame frame;
    if (job == 0) {
      ++frames_pulled_;
      sm.wait_ms->record(0.0);  // the source is always available
    } else {
      Slot& in = slots_[static_cast<size_t>(job - 1)];
      frame = std::move(*in.frame);
      in.frame.reset();  // input buffer becomes free (Fig. 6)
      sm.wait_ms->record(
          ms_between(in.deposited, std::chrono::steady_clock::now()));
    }
    lock.unlock();
    cv_.notify_all();  // freeing the input slot may enable upstream work

    const auto t0 = std::chrono::steady_clock::now();
    if (job == 0) {
      frame = options_.source();  // serialized: slot 0 reserved
      if (trace_->enabled()) trace_->async_begin("frame", -1, frame.sequence);
    }
    {
      // Nested net.layer/gemm spans inherit the frame id via the context.
      telemetry::ScopedTraceContext tctx(-1, frame.sequence);
      telemetry::TraceSpan span(trace_,
                                stage_trace_names_[static_cast<size_t>(job)],
                                -1, frame.sequence);
      options_.stages[static_cast<size_t>(job)].work(frame);
    }
    const bool is_last =
        job == static_cast<int64_t>(options_.stages.size()) - 1;
    if (is_last) {
      {
        telemetry::TraceSpan span(trace_, "sink", -1, frame.sequence);
        options_.sink(frame);  // "the video sink is always free"
      }
      if (trace_->enabled())
        trace_->async_end("frame", -1, frame.sequence,
                          "\"outcome\":\"delivered\"");
    }
    const auto t1 = std::chrono::steady_clock::now();
    sm.busy_ms->record(ms_between(t0, t1));
    sm.jobs->add(1);

    lock.lock();
    out.reserved = false;
    if (job == 0 && options_.collect_latency)
      frame_start_[frame.sequence] = t0;
    if (is_last) {
      ++frames_sunk_;
      if (options_.collect_latency) {
        const auto it = frame_start_.find(frame.sequence);
        if (it != frame_start_.end()) {
          frame_latency_hist_->record(ms_between(it->second, t1));
          frame_start_.erase(it);
        }
      }
    } else {
      out.frame = std::move(frame);  // stays pending until consumed
      out.deposited = t1;
    }
    lock.unlock();
    cv_.notify_all();
    lock.lock();
  }
}

void Pipeline::run(int64_t num_frames) {
  start(num_frames);
  wait();
}

void Pipeline::start(int64_t num_frames) {
  TINCY_CHECK_MSG(num_frames >= 1, "num_frames " << num_frames);
  {
    std::lock_guard lock(mutex_);
    TINCY_CHECK_MSG(!running_, "start() while a run is active");
    slots_.assign(options_.stages.size(), Slot{});
    frames_to_pull_ = num_frames;
    frames_pulled_ = 0;
    frames_sunk_ = 0;
    frames_total_ = num_frames;
    stopping_ = false;
    running_ = true;
    // Reset only this pipeline's own metric objects, so the registry
    // reflects the last run without clobbering unrelated metrics.
    for (auto& sm : stage_metrics_) {
      sm.busy_ms->reset();
      sm.wait_ms->reset();
      sm.jobs->reset();
      sm.queue_depth->reset();
    }
    frame_latency_hist_->reset();
    idle_ms_gauge_->reset();
    frames_counter_->reset();
    elapsed_ms_gauge_->reset();
    fps_gauge_->reset();
    frame_start_.clear();
  }

  run_t0_ = std::chrono::steady_clock::now();
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

void Pipeline::wait() {
  // Joining guarantees every in-flight stage has completed its buffer
  // handoff (workers only exit at the scheduler wait point, never while
  // holding a claimed job), so finalization below reads quiescent state.
  for (auto& t : workers_) t.join();
  workers_.clear();

  int64_t frames_done = 0;
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;  // nothing started, or wait() already finalized
    running_ = false;
    frames_done = frames_sunk_;
  }
  const double elapsed_ms =
      ms_between(run_t0_, std::chrono::steady_clock::now());
  elapsed_ms_gauge_->set(elapsed_ms);
  frames_counter_->add(frames_done);
  fps_gauge_->set(elapsed_ms > 0.0
                      ? 1000.0 * static_cast<double>(frames_done) / elapsed_ms
                      : 0.0);
  // Mean pending frames at each stage input over the run (Little's law).
  for (auto& sm : stage_metrics_)
    sm.queue_depth->set(elapsed_ms > 0.0 ? sm.wait_ms->sum() / elapsed_ms
                                         : 0.0);
}

void Pipeline::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
}

Pipeline::~Pipeline() {
  stop();
  wait();
}

telemetry::Snapshot Pipeline::snapshot() const { return metrics_->snapshot(); }

std::vector<StageStats> Pipeline::stats() const {
  std::vector<StageStats> out;
  out.reserve(options_.stages.size());
  for (size_t i = 0; i < options_.stages.size(); ++i)
    out.push_back({options_.stages[i].name, stage_metrics_[i].jobs->value(),
                   stage_metrics_[i].busy_ms->sum()});
  return out;
}

double Pipeline::elapsed_seconds() const {
  return elapsed_ms_gauge_->value() / 1000.0;
}

double Pipeline::fps() const { return fps_gauge_->value(); }

double Pipeline::mean_latency_ms() const {
  const auto s = frame_latency_hist_->stats();
  return s.mean();
}

double Pipeline::max_latency_ms() const {
  return frame_latency_hist_->stats().max;
}

}  // namespace tincy::pipeline
