#include "pipeline/pipeline.hpp"

#include <chrono>
#include <algorithm>

#include "core/errors.hpp"

#ifdef __linux__
#include <pthread.h>
#endif

namespace tincy::pipeline {

Pipeline::Pipeline(std::vector<Stage> stages,
                   std::function<video::Frame()> source,
                   std::function<void(const video::Frame&)> sink,
                   int num_workers)
    : stages_(std::move(stages)),
      source_(std::move(source)),
      sink_(std::move(sink)),
      num_workers_(num_workers) {
  TINCY_CHECK_MSG(!stages_.empty(), "pipeline needs at least one stage");
  TINCY_CHECK_MSG(num_workers_ >= 1, "num_workers " << num_workers_);
  TINCY_CHECK(source_ != nullptr && sink_ != nullptr);
}

int64_t Pipeline::pick_job_locked() const {
  // "The most mature one whose output buffer is free and whose input
  // buffer has data pending" — scan from the back of the pipeline.
  for (int64_t i = static_cast<int64_t>(stages_.size()) - 1; i >= 0; --i) {
    const Slot& out = slots_[static_cast<size_t>(i)];
    if (out.reserved || out.frame.has_value()) continue;  // output not free
    if (i == 0) {
      if (frames_pulled_ < frames_to_pull_) return 0;  // source always avail
      continue;
    }
    if (slots_[static_cast<size_t>(i - 1)].frame.has_value()) return i;
  }
  return -1;
}

void Pipeline::worker_loop(int worker_index) {
#ifdef __linux__
  // "One worker thread is allocated for each available core and tied to
  // it" — best-effort pinning on the host.
  cpu_set_t set;
  CPU_ZERO(&set);
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  CPU_SET(static_cast<unsigned>(worker_index) % ncpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
  (void)worker_index;
#endif

  std::unique_lock lock(mutex_);
  while (true) {
    int64_t job = -1;
    cv_.wait(lock, [&] {
      job = pick_job_locked();
      return stopping_ || frames_sunk_ == frames_total_ || job >= 0;
    });
    if (stopping_ || frames_sunk_ == frames_total_) return;

    // Claim the job: reserve the output slot and take the input frame.
    Slot& out = slots_[static_cast<size_t>(job)];
    out.reserved = true;
    video::Frame frame;
    if (job == 0) {
      ++frames_pulled_;
    } else {
      Slot& in = slots_[static_cast<size_t>(job - 1)];
      frame = std::move(*in.frame);
      in.frame.reset();  // input buffer becomes free (Fig. 6)
    }
    lock.unlock();
    cv_.notify_all();  // freeing the input slot may enable upstream work

    const auto t0 = std::chrono::steady_clock::now();
    if (job == 0) frame = source_();  // serialized: slot 0 is reserved
    stages_[static_cast<size_t>(job)].work(frame);
    const bool is_last = job == static_cast<int64_t>(stages_.size()) - 1;
    if (is_last) sink_(frame);  // "the video sink is always free"
    const auto t1 = std::chrono::steady_clock::now();

    lock.lock();
    auto& st = stats_[static_cast<size_t>(job)];
    ++st.jobs;
    st.busy_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.reserved = false;
    if (job == 0) frame_start_[frame.sequence] = t0;
    if (is_last) {
      ++frames_sunk_;
      const auto it = frame_start_.find(frame.sequence);
      if (it != frame_start_.end()) {
        frame_latency_ms_.push_back(
            std::chrono::duration<double, std::milli>(t1 - it->second)
                .count());
        frame_start_.erase(it);
      }
    } else {
      out.frame = std::move(frame);  // stays pending until consumed
    }
    lock.unlock();
    cv_.notify_all();
    lock.lock();
  }
}

void Pipeline::run(int64_t num_frames) {
  TINCY_CHECK_MSG(num_frames >= 1, "num_frames " << num_frames);
  {
    std::lock_guard lock(mutex_);
    slots_.assign(stages_.size(), Slot{});
    frames_to_pull_ = num_frames;
    frames_pulled_ = 0;
    frames_sunk_ = 0;
    frames_total_ = num_frames;
    stopping_ = false;
    stats_.clear();
    for (const auto& s : stages_) stats_.push_back({s.name, 0, 0.0});
    frame_start_.clear();
    frame_latency_ms_.clear();
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w)
    workers.emplace_back([this, w] { worker_loop(w); });
  for (auto& t : workers) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  elapsed_seconds_ = std::chrono::duration<double>(t1 - t0).count();
}

double Pipeline::fps() const {
  return elapsed_seconds_ > 0.0
             ? static_cast<double>(frames_total_) / elapsed_seconds_
             : 0.0;
}

double Pipeline::mean_latency_ms() const {
  if (frame_latency_ms_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : frame_latency_ms_) sum += v;
  return sum / static_cast<double>(frame_latency_ms_.size());
}

double Pipeline::max_latency_ms() const {
  double mx = 0.0;
  for (const double v : frame_latency_ms_) mx = std::max(mx, v);
  return mx;
}

}  // namespace tincy::pipeline
