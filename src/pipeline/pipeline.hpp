#pragma once

/// \file pipeline.hpp
/// The re-implemented demo mode of §III-F: a frame-processing pipeline
/// executed by a pool of worker threads.
///
/// Semantics reproduced from the paper:
///  * every stage owns a single-slot output buffer with a free/avail
///    handshake (Fig. 6);
///  * "a new job is selected for execution by finding the most mature one
///    whose output buffer is free and whose input buffer has data
///    pending";
///  * "the video source and sink are always available and free,
///    respectively";
///  * the scheme prevents one frame overtaking another, maintaining the
///    correct video sequence;
///  * one worker thread per available core, pinned to it (pinning is
///    best-effort on the host).

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "video/frame.hpp"

namespace tincy::pipeline {

/// One pipeline stage: a named in-place transformation of a frame.
struct Stage {
  std::string name;
  std::function<void(video::Frame&)> work;
};

/// Per-stage execution statistics.
struct StageStats {
  std::string name;
  int64_t jobs = 0;
  double busy_ms = 0.0;  ///< summed wall-clock time inside work()
};

class Pipeline {
 public:
  /// `source` pulls the next raw frame (stage #0's input); it is invoked
  /// serially. `sink` consumes finished frames; it must be thread-safe or
  /// effectively serialized by the final stage order (it is: the last
  /// stage is serialized like every stage).
  Pipeline(std::vector<Stage> stages,
           std::function<video::Frame()> source,
           std::function<void(const video::Frame&)> sink, int num_workers);

  /// Processes exactly `num_frames` frames end to end; blocks until the
  /// sink has consumed the last one, then joins the workers.
  void run(int64_t num_frames);

  /// Statistics of the last run().
  const std::vector<StageStats>& stats() const { return stats_; }

  /// Wall-clock seconds of the last run().
  double elapsed_seconds() const { return elapsed_seconds_; }

  /// Frames per second achieved by the last run().
  double fps() const;

  /// Per-frame latency (source pull to sink delivery) of the last run().
  double mean_latency_ms() const;
  double max_latency_ms() const;

  int num_workers() const { return num_workers_; }

 private:
  struct Slot {
    std::optional<video::Frame> frame;  ///< engaged == "avail" (Fig. 6)
    bool reserved = false;              ///< a job is producing into it
  };

  /// Index of the most mature runnable stage, or -1.
  int64_t pick_job_locked() const;
  void worker_loop(int worker_index);

  std::vector<Stage> stages_;
  std::function<video::Frame()> source_;
  std::function<void(const video::Frame&)> sink_;
  int num_workers_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;  ///< slots_[i]: output buffer of stage i
  int64_t frames_to_pull_ = 0;
  int64_t frames_pulled_ = 0;
  int64_t frames_sunk_ = 0;
  int64_t frames_total_ = 0;
  bool stopping_ = false;

  std::vector<StageStats> stats_;
  double elapsed_seconds_ = 0.0;
  std::unordered_map<int64_t, std::chrono::steady_clock::time_point>
      frame_start_;                      ///< sequence -> source pull time
  std::vector<double> frame_latency_ms_;
};

}  // namespace tincy::pipeline
