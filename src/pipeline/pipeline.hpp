#pragma once

/// \file pipeline.hpp
/// The re-implemented demo mode of §III-F: a frame-processing pipeline
/// executed by a pool of worker threads.
///
/// Semantics reproduced from the paper:
///  * every stage owns a single-slot output buffer with a free/avail
///    handshake (Fig. 6);
///  * "a new job is selected for execution by finding the most mature one
///    whose output buffer is free and whose input buffer has data
///    pending";
///  * "the video source and sink are always available and free,
///    respectively";
///  * the scheme prevents one frame overtaking another, maintaining the
///    correct video sequence;
///  * one worker thread per available core, pinned to it (pinning is
///    best-effort on the host).
///
/// Execution statistics are reported through the telemetry registry
/// (metric namespace `pipeline.`); see docs/observability.md. Per run():
///  * pipeline.stage.<name>.busy_ms   histogram, one span per job
///  * pipeline.stage.<name>.wait_ms   histogram, input-slot dwell per job
///  * pipeline.stage.<name>.jobs     counter == frames processed
///  * pipeline.stage.<name>.queue_depth  gauge, mean pending frames
///    at the stage input (Little's law: Σ wait / elapsed)
///  * pipeline.frame_latency_ms      histogram, source pull -> sink
///  * pipeline.workers.idle_ms       gauge, summed scheduler wait
///  * pipeline.frames / pipeline.elapsed_ms / pipeline.fps

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "video/frame.hpp"

namespace tincy::pipeline {

/// One pipeline stage: a named in-place transformation of a frame.
struct Stage {
  std::string name;
  std::function<void(video::Frame&)> work;
};

/// Per-stage execution statistics.
/// \deprecated Adapter view derived from the telemetry snapshot; prefer
/// Pipeline::snapshot().
struct StageStats {
  std::string name;
  int64_t jobs = 0;
  double busy_ms = 0.0;  ///< summed wall-clock time inside work()
};

/// Everything a Pipeline needs, replacing the former four positional
/// constructor arguments.
struct PipelineOptions {
  std::vector<Stage> stages;
  /// Pulls the next raw frame (stage #0's input); invoked serially.
  std::function<video::Frame()> source;
  /// Consumes finished frames; serialized by the final stage order.
  std::function<void(const video::Frame&)> sink;
  int num_workers = 4;       ///< worker threads (paper: 4 × A53)
  bool pin_threads = true;   ///< best-effort core pinning (Linux)
  bool collect_latency = true;  ///< per-frame source->sink latency spans
  /// Registry to report into; null selects the process-wide default.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Trace sink for per-frame spans (async "frame" source->sink,
  /// "stage:<name>" and "sink" complete spans); null selects
  /// telemetry::TraceCollector::global(). Only emits while enabled.
  telemetry::TraceCollector* trace = nullptr;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options);

  /// \deprecated Positional-argument shim; delegates to the
  /// PipelineOptions constructor.
  Pipeline(std::vector<Stage> stages,
           std::function<video::Frame()> source,
           std::function<void(const video::Frame&)> sink, int num_workers);

  /// Joins any workers still running (equivalent to stop() + wait()).
  /// A frame in flight inside a stage finishes its buffer handoff before
  /// the slots are destroyed — destruction never races a handoff.
  ~Pipeline();

  /// Processes exactly `num_frames` frames end to end; blocks until the
  /// sink has consumed the last one, then joins the workers. Resets this
  /// pipeline's metrics first, so the registry reflects the last run.
  /// Equivalent to start(num_frames) + wait().
  void run(int64_t num_frames);

  /// Starts a run of `num_frames` frames and returns immediately.
  /// start/wait/run must be driven from one controller thread; stop() may
  /// be called from any thread (including a stage callback).
  void start(int64_t num_frames);

  /// Blocks until the run finishes (all frames sunk, or stop() observed),
  /// joins the workers and finalizes the summary metrics. fps/elapsed
  /// reflect the frames actually delivered to the sink.
  void wait();

  /// Requests an early stop: no new jobs are claimed; jobs already
  /// executing finish and deposit their buffers normally. Idempotent,
  /// callable from any thread; wait() (or the destructor) still joins.
  void stop();

  /// Consistent sample of the metrics registry after the last run():
  /// `pipeline.*` plus whatever the stages recorded (e.g. `net.layer.*`
  /// when the stages run network layers).
  telemetry::Snapshot snapshot() const;

  /// Statistics of the last run().
  /// \deprecated Adapter deriving StageStats from the telemetry
  /// snapshot; prefer snapshot().
  std::vector<StageStats> stats() const;

  /// Wall-clock seconds of the last run(). Adapter over
  /// `pipeline.elapsed_ms`.
  double elapsed_seconds() const;

  /// Frames per second achieved by the last run(). Adapter over
  /// `pipeline.fps`.
  double fps() const;

  /// Per-frame latency (source pull to sink delivery) of the last run();
  /// adapters over the `pipeline.frame_latency_ms` histogram.
  double mean_latency_ms() const;
  double max_latency_ms() const;

  int num_workers() const { return options_.num_workers; }

  /// The registry this pipeline reports into.
  telemetry::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct Slot {
    std::optional<video::Frame> frame;  ///< engaged == "avail" (Fig. 6)
    bool reserved = false;              ///< a job is producing into it
    std::chrono::steady_clock::time_point deposited;  ///< frame arrival
  };

  /// Telemetry handles of one stage, resolved once at construction.
  struct StageMetrics {
    telemetry::Histogram* busy_ms;
    telemetry::Histogram* wait_ms;
    telemetry::Counter* jobs;
    telemetry::Gauge* queue_depth;
  };

  /// Index of the most mature runnable stage, or -1.
  int64_t pick_job_locked() const;
  void worker_loop(int worker_index);

  PipelineOptions options_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::TraceCollector* trace_;
  std::vector<std::string> stage_trace_names_;  ///< "stage:<name>" labels

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;  ///< slots_[i]: output buffer of stage i
  int64_t frames_to_pull_ = 0;
  int64_t frames_pulled_ = 0;
  int64_t frames_sunk_ = 0;
  int64_t frames_total_ = 0;
  bool stopping_ = false;
  bool running_ = false;  ///< workers spawned, wait() not yet completed

  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point run_t0_;

  std::vector<StageMetrics> stage_metrics_;
  telemetry::Histogram* frame_latency_hist_;
  telemetry::Gauge* idle_ms_gauge_;
  telemetry::Counter* frames_counter_;
  telemetry::Gauge* elapsed_ms_gauge_;
  telemetry::Gauge* fps_gauge_;
  std::unordered_map<int64_t, std::chrono::steady_clock::time_point>
      frame_start_;                      ///< sequence -> source pull time
};

}  // namespace tincy::pipeline
