#include "pipeline/demo.hpp"

#include "core/errors.hpp"
#include "data/image.hpp"
#include "detect/decode.hpp"
#include "detect/nms.hpp"
#include "nn/region_layer.hpp"
#include "video/draw.hpp"

namespace tincy::pipeline {

std::vector<Stage> make_demo_stages(nn::Network& net, const DemoConfig& cfg) {
  TINCY_CHECK_MSG(net.num_layers() >= 1, "empty network");
  auto* region =
      dynamic_cast<nn::RegionLayer*>(&net.layer(net.num_layers() - 1));
  TINCY_CHECK_MSG(region != nullptr,
                  "demo pipeline expects the network to end in [region]");
  const int64_t input_size = net.input_shape().height();
  TINCY_CHECK_MSG(net.input_shape().width() == input_size,
                  "demo expects a square network input");

  std::vector<Stage> stages;

  // #0 Read Frame — the camera pull happens in the pipeline's source hook;
  // this stage represents the capture/copy cost as its own job slot (the
  // paper split image acquisition into camera access and scaling).
  stages.push_back({"read_frame", [](video::Frame&) {}});

  // #1 Letter Boxing.
  stages.push_back({"letterbox", [input_size](video::Frame& f) {
                      f.boxed = data::letterbox(f.image, input_size);
                    }});

  // #2 .. N+1: one stage per network layer, on per-frame buffers. Routing
  // through run_layer_into (not Layer::forward directly) keeps per-layer
  // telemetry fresh in pipeline mode — last_layer_ms() used to report the
  // stale timings of a previous whole-net forward() here.
  for (int64_t i = 0; i < net.num_layers(); ++i) {
    const Shape out_shape = net.layer(i).output_shape();
    const bool first = i == 0;
    stages.push_back(
        {"L[" + std::to_string(i) + "] " + net.layer(i).type_name(),
         [&net, i, out_shape, first](video::Frame& f) {
           Tensor out(out_shape);
           net.run_layer_into(i, first ? f.boxed : f.features, out);
           f.features = std::move(out);
         }});
  }

  // #N+2 Object Boxing: decode + NMS, boxes mapped back to camera space.
  const nn::RegionConfig region_cfg = region->config();
  const float thresh = cfg.detect_threshold;
  const float nms_iou = cfg.nms_iou;
  stages.push_back(
      {"object_boxing",
       [region_cfg, thresh, nms_iou, input_size](video::Frame& f) {
         auto dets = detect::decode_region(f.features, region_cfg, thresh);
         dets = detect::nms(std::move(dets), nms_iou);
         const int64_t w = f.image.shape().width();
         const int64_t h = f.image.shape().height();
         for (auto& d : dets)
           data::unletterbox_box(d.box.x, d.box.y, d.box.w, d.box.h, w, h,
                                 input_size);
         f.detections = std::move(dets);
       }});

  // #N+3 Frame Drawing.
  stages.push_back({"frame_drawing", [](video::Frame& f) {
                      video::draw_detections(f.image, f.detections);
                    }});

  return stages;
}

DemoResult run_demo(video::SyntheticCamera& camera, nn::Network& net,
                    video::OrderCheckingSink& sink, int64_t num_frames,
                    const DemoConfig& cfg) {
  PipelineOptions options;
  options.stages = make_demo_stages(net, cfg);
  options.source = [&camera] { return camera.read_frame(); };
  options.sink = [&sink](const video::Frame& f) { sink.push(f); };
  options.num_workers = cfg.num_workers;
  options.metrics = cfg.metrics;
  options.trace = cfg.trace;
  Pipeline pipeline(std::move(options));
  pipeline.run(num_frames);
  // The snapshot is the result; the legacy fields are derived from the
  // same telemetry (no independent timing accumulation).
  DemoResult result;
  result.snapshot = pipeline.snapshot();
  result.stats = pipeline.stats();
  result.elapsed_seconds = pipeline.elapsed_seconds();
  result.fps = pipeline.fps();
  return result;
}

}  // namespace tincy::pipeline
