#pragma once

/// \file demo.hpp
/// Assembly of the paper's new demo mode (Fig. 5): a pipeline that is four
/// stages longer than the user-specified network —
///   #0 Read Frame, #1 Letter Boxing, #2..N+1 the network layers
///   (the forward pass "disintegrated" into per-layer jobs),
///   #N+2 Object Boxing, #N+3 Frame Drawing —
/// feeding an always-free sink.

#include <functional>

#include "nn/network.hpp"
#include "pipeline/pipeline.hpp"
#include "telemetry/metrics.hpp"
#include "video/camera.hpp"
#include "video/sink.hpp"

namespace tincy::pipeline {

struct DemoConfig {
  int num_workers = 4;            ///< worker threads (paper: 4 × A53)
  float detect_threshold = 0.3f;  ///< objectness/score threshold
  float nms_iou = 0.45f;          ///< NMS overlap threshold
  /// Registry the pipeline reports into; null selects the process-wide
  /// default. The network keeps reporting into its own registry (set at
  /// construction) — pass the same one for a unified snapshot.
  telemetry::MetricsRegistry* metrics = nullptr;
  /// Trace sink handed to the pipeline (per-frame spans); null selects
  /// telemetry::TraceCollector::global().
  telemetry::TraceCollector* trace = nullptr;
};

/// Builds the Fig. 5 stage list around `net`. The network must end in a
/// region layer; each layer becomes one stage operating on per-frame
/// buffers so concurrent frames never share activation storage. Layer
/// stages run through Network::run_layer_into, so per-layer telemetry
/// (`net.layer.<i>.<type>.ms`) stays fresh in pipeline mode.
std::vector<Stage> make_demo_stages(nn::Network& net, const DemoConfig& cfg);

/// Outcome of a demo run: the telemetry snapshot is the primary result;
/// the remaining fields are adapters derived from it for older callers.
struct DemoResult {
  /// Unified sample of the run: `pipeline.stage.*` busy/wait/jobs,
  /// `pipeline.frame_latency_ms`, `net.layer.*.ms`, `pipeline.fps`, ...
  telemetry::Snapshot snapshot;

  /// \deprecated Derived from `snapshot`; prefer the snapshot itself.
  std::vector<StageStats> stats;
  double elapsed_seconds = 0.0;
  double fps = 0.0;
};

/// Convenience: runs `num_frames` camera frames through the demo pipeline
/// into `sink`.
DemoResult run_demo(video::SyntheticCamera& camera, nn::Network& net,
                    video::OrderCheckingSink& sink, int64_t num_frames,
                    const DemoConfig& cfg = {});

}  // namespace tincy::pipeline
