#pragma once

/// \file vec.hpp
/// Portable SIMD vector types mirroring ARM NEON semantics.
///
/// The paper exploits the Cortex-A53's NEON unit: 128-bit registers split
/// into 4 single-precision lanes, 8 16-bit lanes or 16 8-bit lanes. The
/// host in this reproduction is x86, so these classes provide the same
/// *lane model and arithmetic semantics* (including NEON's saturating and
/// rounding behaviours) in portable C++; modern compilers auto-vectorize
/// the fixed-trip-count lane loops. Each operation documents the NEON
/// instruction it models so the kernels in src/gemm read like their
/// intrinsics-based originals.

#include <array>
#include <cstdint>

#include "core/fixed_point.hpp"

namespace tincy::simd {

/// Fixed-width vector of N lanes of T. Aggregate; value-semantic.
template <typename T, int N>
struct Vec {
  static constexpr int kLanes = N;
  using lane_type = T;

  std::array<T, N> lane{};

  /// Loads N contiguous lanes (NEON VLD1).
  static Vec load(const T* p) {
    Vec v;
    for (int i = 0; i < N; ++i) v.lane[i] = p[i];
    return v;
  }

  /// Broadcasts a scalar into every lane (NEON VDUP).
  static Vec splat(T x) {
    Vec v;
    v.lane.fill(x);
    return v;
  }

  /// Stores N contiguous lanes (NEON VST1).
  void store(T* p) const {
    for (int i = 0; i < N; ++i) p[i] = lane[i];
  }

  T operator[](int i) const { return lane[static_cast<size_t>(i)]; }
  T& operator[](int i) { return lane[static_cast<size_t>(i)]; }

  bool operator==(const Vec&) const = default;
};

// NEON 128-bit register views used by the kernels.
using F32x4 = Vec<float, 4>;
using I32x4 = Vec<int32_t, 4>;
using I16x8 = Vec<int16_t, 8>;
using I8x16 = Vec<int8_t, 16>;
using U8x16 = Vec<uint8_t, 16>;
using U16x8 = Vec<uint16_t, 8>;
using U32x4 = Vec<uint32_t, 4>;
using I8x8 = Vec<int8_t, 8>;    // 64-bit D-register view feeding VMULL.
using I16x4 = Vec<int16_t, 4>;  // 64-bit D-register view feeding VMULL.
using U8x8 = Vec<uint8_t, 8>;   // 64-bit D-register view feeding VMULL.U8.

// Register *blocks* used by the packed GEMM micro-kernel: one block spans
// several NEON Q registers (U32x16 = 4 × q-registers of u32 lanes, I16x16 =
// 2 × q-registers of i16 lanes) so a 4×16 output tile lives entirely in
// registers. The lane loops below still model per-register NEON ops.
using U32x16 = Vec<uint32_t, 16>;
using I16x16 = Vec<int16_t, 16>;

/// Lane-wise addition (VADD).
template <typename T, int N>
Vec<T, N> add(Vec<T, N> a, Vec<T, N> b) {
  for (int i = 0; i < N; ++i) a.lane[i] = static_cast<T>(a.lane[i] + b.lane[i]);
  return a;
}

/// Lane-wise subtraction (VSUB).
template <typename T, int N>
Vec<T, N> sub(Vec<T, N> a, Vec<T, N> b) {
  for (int i = 0; i < N; ++i) a.lane[i] = static_cast<T>(a.lane[i] - b.lane[i]);
  return a;
}

/// Lane-wise multiplication (VMUL).
template <typename T, int N>
Vec<T, N> mul(Vec<T, N> a, Vec<T, N> b) {
  for (int i = 0; i < N; ++i) a.lane[i] = static_cast<T>(a.lane[i] * b.lane[i]);
  return a;
}

/// Multiply-accumulate acc += a*b (VMLA).
template <typename T, int N>
Vec<T, N> mla(Vec<T, N> acc, Vec<T, N> a, Vec<T, N> b) {
  for (int i = 0; i < N; ++i)
    acc.lane[i] = static_cast<T>(acc.lane[i] + a.lane[i] * b.lane[i]);
  return acc;
}

/// Lane-wise saturating addition for narrow signed integers (VQADD).
template <typename T, int N>
Vec<T, N> saturating_add(Vec<T, N> a, Vec<T, N> b) {
  for (int i = 0; i < N; ++i)
    a.lane[i] = tincy::saturating_add<T>(a.lane[i], b.lane[i]);
  return a;
}

/// Rounding arithmetic shift right by a compile-time-ish amount (VRSHR).
template <typename T, int N>
Vec<T, N> rounding_shift_right(Vec<T, N> a, int n) {
  for (int i = 0; i < N; ++i)
    a.lane[i] = tincy::rounding_right_shift<T>(a.lane[i], n);
  return a;
}

/// Widening multiply of signed 8-bit D-registers: i8x8 * i8x8 -> i16x8
/// (VMULL.S8). Products of two 8-bit values always fit in 16 bits.
inline I16x8 widening_mul(I8x8 a, I8x8 b) {
  I16x8 r;
  for (int i = 0; i < 8; ++i)
    r.lane[i] = static_cast<int16_t>(static_cast<int16_t>(a.lane[i]) *
                                     static_cast<int16_t>(b.lane[i]));
  return r;
}

/// Widening multiply of signed 16-bit D-registers: i16x4 * i16x4 -> i32x4
/// (VMULL.S16).
inline I32x4 widening_mul(I16x4 a, I16x4 b) {
  I32x4 r;
  for (int i = 0; i < 4; ++i)
    r.lane[i] = static_cast<int32_t>(a.lane[i]) * static_cast<int32_t>(b.lane[i]);
  return r;
}

/// Widening multiply of unsigned 8-bit D-registers: u8x8 * u8x8 -> u16x8
/// (VMULL.U8). Products of two unsigned 8-bit values always fit in 16 bits.
inline U16x8 widening_mul(U8x8 a, U8x8 b) {
  U16x8 r;
  for (int i = 0; i < 8; ++i)
    r.lane[i] = static_cast<uint16_t>(static_cast<uint16_t>(a.lane[i]) *
                                      static_cast<uint16_t>(b.lane[i]));
  return r;
}

/// Widening multiply-accumulate of a u8 register block by a broadcast u8
/// scalar: acc_u32[j] += u16(s * b[j]). Models the VDUP.8 + VMULL.U8 +
/// VADDW.U16 sequence the gemmlowp NEON kernels issue per packed LHS byte
/// (two VMULL/VADDW pairs per 16-lane block half). The u8×u8 product is
/// exact in u16; the u32 accumulate is exact for any practical K.
inline U32x16 widening_mla(U32x16 acc, U8x16 b, uint8_t s) {
  for (int i = 0; i < 16; ++i)
    acc.lane[i] += static_cast<uint32_t>(
        static_cast<uint16_t>(static_cast<uint16_t>(s) *
                              static_cast<uint16_t>(b.lane[i])));
  return acc;
}

/// Lane-wise widening multiply of two u8 register blocks straight to u32
/// lanes: r[i] = u32(u16(a[i] * b[i])). Models the VMULL.U8 (u8→u16) +
/// VMOVL.U16 widening pair per block half; exact for all inputs.
inline U32x16 widening_mul_u16_to_u32(U8x16 a, U8x16 b) {
  U32x16 r;
  for (int i = 0; i < 16; ++i)
    r.lane[i] = static_cast<uint32_t>(
        static_cast<uint16_t>(static_cast<uint16_t>(a.lane[i]) *
                              static_cast<uint16_t>(b.lane[i])));
  return r;
}

/// Pairwise add-and-accumulate-long: acc_i32x4 += pairwise_sums(i16x8)
/// (VPADAL.S16). The widening sum cannot overflow int32 for realistic
/// kernel depths.
inline I32x4 pairwise_add_accumulate_long(I32x4 acc, I16x8 x) {
  for (int i = 0; i < 4; ++i)
    acc.lane[i] += static_cast<int32_t>(x.lane[2 * i]) +
                   static_cast<int32_t>(x.lane[2 * i + 1]);
  return acc;
}

/// Horizontal sum of all lanes (VPADD cascade / VADDV on AArch64).
template <typename T, int N>
auto horizontal_sum(Vec<T, N> v) {
  using Acc = std::conditional_t<std::is_floating_point_v<T>, T, int64_t>;
  Acc s{};
  for (int i = 0; i < N; ++i) s += v.lane[i];
  return s;
}

/// Splits a 128-bit register into low/high 64-bit D-register halves
/// (VGET_LOW / VGET_HIGH).
template <typename T, int N>
std::pair<Vec<T, N / 2>, Vec<T, N / 2>> split(Vec<T, N> v) {
  static_assert(N % 2 == 0);
  Vec<T, N / 2> lo, hi;
  for (int i = 0; i < N / 2; ++i) {
    lo.lane[i] = v.lane[i];
    hi.lane[i] = v.lane[i + N / 2];
  }
  return {lo, hi};
}

/// Saturating rounding shift-right-narrow of two i32x4 into one i16x8
/// (VQRSHRN.S32 pair): round-half-up shift performed in wide precision
/// (no intermediate overflow), then saturation to the narrow lane range —
/// the requantization narrow the paper's NEON kernels end on. NEON
/// encodes shift immediates 1..lane-bits; a non-positive n is guarded to
/// "no shift" so the op degrades to a plain saturating narrow (VQMOVN)
/// instead of invoking undefined shift behaviour.
inline I16x8 rounding_narrowing_shift_right(I32x4 lo, I32x4 hi, int n) {
  I16x8 r;
  for (int i = 0; i < 4; ++i) {
    r.lane[i] = tincy::saturate_cast<int16_t>(
        tincy::rounding_right_shift<int32_t>(lo.lane[i], n));
    r.lane[i + 4] = tincy::saturate_cast<int16_t>(
        tincy::rounding_right_shift<int32_t>(hi.lane[i], n));
  }
  return r;
}

/// Saturating rounding shift-right-narrow of two i16x8 into one i8x16
/// (VQRSHRN.S16 pair). Same semantics as the i32→i16 form.
inline I8x16 rounding_narrowing_shift_right(I16x8 lo, I16x8 hi, int n) {
  I8x16 r;
  for (int i = 0; i < 8; ++i) {
    r.lane[i] = tincy::saturate_cast<int8_t>(
        tincy::rounding_right_shift<int16_t>(lo.lane[i], n));
    r.lane[i + 8] = tincy::saturate_cast<int8_t>(
        tincy::rounding_right_shift<int16_t>(hi.lane[i], n));
  }
  return r;
}

/// Saturating narrow of two i32x4 into one i16x8 (VQMOVN.S32 pair).
inline I16x8 saturating_narrow(I32x4 lo, I32x4 hi) {
  I16x8 r;
  for (int i = 0; i < 4; ++i) {
    r.lane[i] = tincy::saturate_cast<int16_t>(lo.lane[i]);
    r.lane[i + 4] = tincy::saturate_cast<int16_t>(hi.lane[i]);
  }
  return r;
}

/// Saturating narrow of two i16x8 into one i8x16 (VQMOVN.S16 pair).
inline I8x16 saturating_narrow(I16x8 lo, I16x8 hi) {
  I8x16 r;
  for (int i = 0; i < 8; ++i) {
    r.lane[i] = tincy::saturate_cast<int8_t>(lo.lane[i]);
    r.lane[i + 8] = tincy::saturate_cast<int8_t>(hi.lane[i]);
  }
  return r;
}

/// Zero-extending widen of unsigned 8-bit lanes to 16-bit (VMOVL.U8),
/// returned as signed lanes ready for signed arithmetic.
inline I16x8 widen_low(U8x16 v) {
  I16x8 r;
  for (int i = 0; i < 8; ++i) r.lane[i] = static_cast<int16_t>(v.lane[i]);
  return r;
}
inline I16x8 widen_high(U8x16 v) {
  I16x8 r;
  for (int i = 0; i < 8; ++i) r.lane[i] = static_cast<int16_t>(v.lane[i + 8]);
  return r;
}

}  // namespace tincy::simd
