#pragma once

/// \file resource_model.hpp
/// First-order FPGA resource model of the accelerator on a Zynq
/// UltraScale+ XCZU3EG. The model's purpose is the paper's architectural
/// constraint: "only a single generalized convolutional layer together
/// with its subsequent pooling layer would fit into the available fabric",
/// forcing layer-at-a-time execution. Coefficients are first-order
/// per-lane/per-comparator LUT costs in the spirit of FINN's cost model;
/// they are documented constants, not synthesis results.

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/folding.hpp"

namespace tincy::fabric {

/// Device budget (XCZU3EG: 70,560 LUTs, 141,120 FFs, 216 BRAM36, 360 DSPs).
struct Device {
  std::string name = "XCZU3EG";
  int64_t luts = 70560;
  int64_t ffs = 141120;
  int64_t bram36 = 216;
  int64_t dsp = 360;
};

/// Estimated resource usage of a configuration.
struct Resources {
  int64_t luts = 0;
  int64_t ffs = 0;
  int64_t bram36 = 0;
  int64_t dsp = 0;

  Resources& operator+=(const Resources& o);
};

/// What must live on the fabric for one generalized conv+pool engine.
struct EngineSpec {
  Folding folding;
  int act_bits = 3;          ///< activation precision of the datapath
  int64_t max_depth = 9216;  ///< largest supported dot-product depth (C·K²)
  int64_t max_rows = 1024;   ///< largest supported output-channel count
  int64_t weight_bits_on_chip = 0;  ///< weights resident in BRAM (bits)
  /// Include the shared control/AXI/DMA shell in the estimate. A dataflow
  /// build instantiates the shell once and chains engines without it.
  bool include_shell = true;
  /// Sliding-window unit (line buffers): needed for K>1 convolutions; FC
  /// stages (K=1 over 1×1 maps) stream directly.
  bool needs_swu = true;
  /// Max-pool unit: only for stages with a fused pool.
  bool needs_pool = true;
};

/// LUT/FF/BRAM estimate of one MVTU-based conv+pool engine.
Resources estimate_engine(const EngineSpec& spec);

/// True if the estimate fits the device with the given utilization cap
/// (routable designs rarely exceed ~70-85 % LUT utilization).
bool fits(const Resources& r, const Device& d, double utilization_cap = 0.85);

/// Convenience report: how many independent engines of this spec the
/// device could host — 1 for the paper's configuration, which is exactly
/// why the layers must time-share a single accelerator.
int64_t max_engines(const EngineSpec& spec, const Device& d,
                    double utilization_cap = 0.85);

}  // namespace tincy::fabric
