#pragma once

/// \file dataflow.hpp
/// Dataflow execution model: every layer as its own engine, all resident
/// simultaneously, streaming activations layer to layer.
///
/// The paper contrasts the two FINN execution styles: "the fully binarized
/// 4-layer MLP and 6-layer CNN lent themselves to an implementation of the
/// inference engine with all layers residing one after the other in a
/// dataflow pipeline, this option quickly fails on resource constraints
/// for Tincy YOLO" (§III-A). This model quantifies both sides: the
/// throughput a dataflow pipeline would reach (initiation interval = the
/// slowest stage) and the resources it would require (sum of per-layer
/// engines) — which is exactly what overflows the XCZU3EG for Tincy YOLO
/// and forces the layer-at-a-time single engine.

#include <vector>

#include "fabric/accelerator.hpp"
#include "fabric/resource_model.hpp"

namespace tincy::fabric {

/// Per-layer folding assignment for a dataflow build (one engine each).
struct DataflowStagePlan {
  QnnLayerSpec spec;
  Folding folding;
};

struct DataflowReport {
  /// Compute cycles of the slowest stage = initiation interval per frame.
  int64_t initiation_interval_cycles = 0;
  /// Latency of one frame through all stages (sum of stage cycles).
  int64_t latency_cycles = 0;
  double throughput_fps = 0.0;
  double latency_ms = 0.0;
  Resources total_resources;  ///< all engines together, weights resident
  bool fits_device = false;
};

/// Evaluates a dataflow build of the given stages on `device` at
/// `clock_mhz`. Weights of every layer count as resident (dataflow engines
/// cannot reload weights per frame).
DataflowReport evaluate_dataflow(const std::vector<DataflowStagePlan>& stages,
                                 const Device& device, double clock_mhz);

/// Convenience: a uniform-folding plan (each stage gets the same PE×SIMD
/// array).
std::vector<DataflowStagePlan> uniform_plan(const std::vector<QnnLayerSpec>& specs,
                                            Folding folding);

/// Balanced plan: scales each stage's folding toward equal cycle counts
/// (the standard FINN rate-balancing), within per-stage bounds. `budget`
/// caps the total number of lanes (PE·SIMD summed over stages).
std::vector<DataflowStagePlan> balanced_plan(const std::vector<QnnLayerSpec>& specs,
                                             int64_t lane_budget);

}  // namespace tincy::fabric
