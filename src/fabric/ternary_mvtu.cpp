#include "fabric/ternary_mvtu.hpp"

#include "core/errors.hpp"
#include "quant/thresholds.hpp"

namespace tincy::fabric {

TernaryMvtu::TernaryMvtu(quant::TernaryMatrix weights,
                         std::vector<ThresholdChannel> thresholds,
                         int act_bits_in)
    : weights_(std::move(weights)),
      thresholds_(std::move(thresholds)),
      act_bits_in_(act_bits_in) {
  TINCY_CHECK_MSG(static_cast<int64_t>(thresholds_.size()) == weights_.rows,
                  thresholds_.size() << " thresholds for " << weights_.rows
                                     << " rows");
  TINCY_CHECK_MSG(act_bits_in >= 1 && act_bits_in <= 8,
                  "act_bits " << act_bits_in);
}

void TernaryMvtu::accumulate(std::span<const uint8_t> column,
                             std::span<int32_t> acc) const {
  TINCY_CHECK(static_cast<int64_t>(column.size()) == cols());
  TINCY_CHECK(static_cast<int64_t>(acc.size()) == rows());
  const std::vector<BitVector> planes =
      quant::to_bitplanes(column.data(), cols(), act_bits_in_);
  for (int64_t r = 0; r < rows(); ++r) {
    int64_t sum = 0;
    for (int b = 0; b < act_bits_in_; ++b)
      sum += static_cast<int64_t>(quant::dot_bitplane(
                 weights_, r, planes[static_cast<size_t>(b)]))
             << b;
    acc[static_cast<size_t>(r)] = static_cast<int32_t>(sum);
  }
}

void TernaryMvtu::compute(std::span<const uint8_t> column,
                          std::span<uint8_t> out) const {
  TINCY_CHECK(static_cast<int64_t>(out.size()) == rows());
  std::vector<int32_t> acc(static_cast<size_t>(rows()));
  accumulate(column, acc);
  for (int64_t r = 0; r < rows(); ++r)
    out[static_cast<size_t>(r)] =
        thresholds_[static_cast<size_t>(r)].apply(acc[static_cast<size_t>(r)]);
}

void TernaryMvtu::accumulate_batch(std::span<const uint8_t> columns,
                                   int64_t batch,
                                   std::span<int32_t> acc) const {
  TINCY_CHECK_MSG(batch >= 1, "batch " << batch);
  TINCY_CHECK(static_cast<int64_t>(columns.size()) == batch * cols());
  TINCY_CHECK(static_cast<int64_t>(acc.size()) == batch * rows());
  std::vector<std::vector<BitVector>> planes;
  planes.reserve(static_cast<size_t>(batch));
  for (int64_t f = 0; f < batch; ++f)
    planes.push_back(quant::to_bitplanes(columns.data() + f * cols(), cols(),
                                         act_bits_in_));
  // Row outer, frame inner: both ternary weight planes (mask and sign)
  // are fetched once per row for the whole batch.
  for (int64_t r = 0; r < rows(); ++r) {
    for (int64_t f = 0; f < batch; ++f) {
      int64_t sum = 0;
      for (int b = 0; b < act_bits_in_; ++b)
        sum += static_cast<int64_t>(quant::dot_bitplane(
                   weights_, r,
                   planes[static_cast<size_t>(f)][static_cast<size_t>(b)]))
               << b;
      acc[static_cast<size_t>(f * rows() + r)] = static_cast<int32_t>(sum);
    }
  }
}

void TernaryMvtu::compute_batch(std::span<const uint8_t> columns,
                                int64_t batch,
                                std::span<uint8_t> out) const {
  TINCY_CHECK(static_cast<int64_t>(out.size()) == batch * rows());
  std::vector<int32_t> acc(static_cast<size_t>(batch * rows()));
  accumulate_batch(columns, batch, acc);
  for (int64_t f = 0; f < batch; ++f)
    for (int64_t r = 0; r < rows(); ++r)
      out[static_cast<size_t>(f * rows() + r)] =
          thresholds_[static_cast<size_t>(r)].apply(
              acc[static_cast<size_t>(f * rows() + r)]);
}

}  // namespace tincy::fabric
