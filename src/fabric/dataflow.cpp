#include "fabric/dataflow.hpp"

#include <algorithm>
#include <cmath>

#include "core/errors.hpp"

namespace tincy::fabric {
namespace {

int64_t stage_cycles(const DataflowStagePlan& s) {
  const auto g = s.spec.conv_geometry();
  return fold_cycles_per_layer({s.spec.filters, g.patch_size()}, s.folding,
                               s.spec.act_bits_in, g.num_patches());
}

Resources stage_resources(const DataflowStagePlan& s) {
  const auto g = s.spec.conv_geometry();
  EngineSpec engine;
  engine.folding = s.folding;
  engine.act_bits = s.spec.act_bits_in;
  engine.max_rows = s.spec.filters;
  engine.max_depth = g.patch_size();
  engine.weight_bits_on_chip = s.spec.filters * g.patch_size();
  engine.include_shell = false;  // the dataflow chain shares one shell
  engine.needs_swu = s.spec.kernel > 1;  // FC stages stream directly
  engine.needs_pool = s.spec.pool_after;
  return estimate_engine(engine);
}

}  // namespace

DataflowReport evaluate_dataflow(const std::vector<DataflowStagePlan>& stages,
                                 const Device& device, double clock_mhz) {
  TINCY_CHECK_MSG(!stages.empty(), "empty dataflow plan");
  DataflowReport report;
  for (const auto& s : stages) {
    const int64_t cycles = stage_cycles(s);
    report.initiation_interval_cycles =
        std::max(report.initiation_interval_cycles, cycles);
    report.latency_cycles += cycles;
    report.total_resources += stage_resources(s);
  }
  // One shared shell for the whole chain.
  report.total_resources.luts += 7000;
  report.total_resources.ffs += 14000;
  report.throughput_fps =
      clock_mhz * 1e6 /
      static_cast<double>(report.initiation_interval_cycles);
  report.latency_ms =
      static_cast<double>(report.latency_cycles) / (clock_mhz * 1e3);
  report.fits_device = fits(report.total_resources, device);
  return report;
}

std::vector<DataflowStagePlan> uniform_plan(const std::vector<QnnLayerSpec>& specs,
                                            Folding folding) {
  std::vector<DataflowStagePlan> plan;
  for (const auto& spec : specs) plan.push_back({spec, folding});
  return plan;
}

std::vector<DataflowStagePlan> balanced_plan(const std::vector<QnnLayerSpec>& specs,
                                             int64_t lane_budget) {
  TINCY_CHECK_MSG(lane_budget >= static_cast<int64_t>(specs.size()),
                  "budget below one lane per stage");
  // Work per stage in lane-cycles; allocate lanes proportionally, rounded
  // to sane PE/SIMD splits, then clamp to the matrix extents.
  std::vector<double> work;
  double total_work = 0.0;
  for (const auto& s : specs) {
    const auto g = s.conv_geometry();
    const double w = static_cast<double>(s.filters) *
                     static_cast<double>(g.patch_size()) *
                     static_cast<double>(g.num_patches()) * s.act_bits_in;
    work.push_back(w);
    total_work += w;
  }

  std::vector<DataflowStagePlan> plan;
  for (size_t i = 0; i < specs.size(); ++i) {
    const auto& s = specs[i];
    const auto g = s.conv_geometry();
    const double share = work[i] / total_work;
    auto lanes = static_cast<int64_t>(
        std::max(1.0, std::round(share * static_cast<double>(lane_budget))));
    // Split lanes into PE×SIMD: SIMD along the patch (≤ patch size, power
    // of two-ish), PE along the filters.
    int64_t simd = std::min<int64_t>(g.patch_size(), 36);
    int64_t pe = std::max<int64_t>(1, lanes / simd);
    pe = std::min(pe, s.filters);
    plan.push_back({s, Folding{pe, simd}});
  }
  return plan;
}

}  // namespace tincy::fabric
