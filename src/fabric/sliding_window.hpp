#pragma once

/// \file sliding_window.hpp
/// Sliding Window Unit (SWU): streams the kernel-application footprints of
/// a CHW code tensor to the MVTU — the hardware realization of im2col.
/// Functionally it emits exactly the column matrix gemm::im2col produces;
/// the generator form keeps only one column live, matching the streaming
/// hardware rather than materializing the K²-inflated matrix.

#include <cstdint>
#include <span>
#include <vector>

#include "gemm/im2col.hpp"

namespace tincy::fabric {

class SlidingWindowUnit {
 public:
  /// `g` describes the convolution geometry; padding taps emit code 0
  /// (the exact zero of the unsigned activation grid).
  explicit SlidingWindowUnit(const gemm::ConvGeometry& g);

  int64_t num_columns() const { return geom_.num_patches(); }
  int64_t column_size() const { return geom_.patch_size(); }

  /// Writes column `index` (0-based over outH·outW, row-major) of the
  /// im2col matrix for `image` into `column`.
  void emit_column(std::span<const uint8_t> image, int64_t index,
                   std::span<uint8_t> column) const;

  /// Batched form: `images` holds `batch` stacked CHW code maps; column
  /// `index` of frame f lands at `columns.subspan(f * column_size())`.
  void emit_column_batch(std::span<const uint8_t> images, int64_t batch,
                         int64_t index, std::span<uint8_t> columns) const;

  /// Cycles to stream one column at `simd` codes per cycle.
  int64_t cycles_per_column(int64_t simd) const {
    return (column_size() + simd - 1) / simd;
  }

  const gemm::ConvGeometry& geometry() const { return geom_; }

 private:
  gemm::ConvGeometry geom_;
};

}  // namespace tincy::fabric
