#pragma once

/// \file binparam.hpp
/// On-disk parameter store of the accelerator — the `binparam-…/` directory
/// referenced by the paper's `[offload]` cfg (Fig. 4). Each stage stores a
/// small text descriptor, its bit-packed ±1 weights and the integer
/// threshold tables derived from the trained bias/batch-norm parameters.

#include <string>
#include <vector>

#include "fabric/accelerator.hpp"

namespace tincy::fabric {

/// Everything needed to reconstruct one accelerator stage.
struct BinparamLayer {
  QnnLayerSpec spec;
  quant::BinaryMatrix weights;
  std::vector<ThresholdChannel> thresholds;
};

/// Writes the stages into `dir` (created if missing): per stage,
/// `layerNN.meta`, `layerNN.weights.bin`, `layerNN.thresh.bin`.
void save_binparams(const std::string& dir,
                    const std::vector<BinparamLayer>& layers);

/// Reads all stages back in index order; throws on malformed contents.
std::vector<BinparamLayer> load_binparams(const std::string& dir);

/// Builds an accelerator from a binparam directory.
QnnAccelerator load_accelerator(const std::string& dir, CycleModel model = {},
                                Device device = {});

}  // namespace tincy::fabric
