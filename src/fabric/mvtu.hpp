#pragma once

/// \file mvtu.hpp
/// Matrix–Vector–Threshold Unit: the compute core of the FINN-style
/// accelerator. Weights are ±1 bit-packed rows; activations arrive as
/// A-bit codes which the unit processes bit-serially: the dot product of a
/// ±1 row with an A-bit vector is the weighted sum of per-bit-plane
/// XNOR-popcount terms, Σ_b 2^b · (popcount(w∧a_b) − popcount(¬w∧a_b)).
/// The raw accumulator then passes the per-channel threshold unit which
/// subsumes bias, batch normalization and the quantized activation.

#include <cstdint>
#include <span>
#include <vector>

#include "core/bitvector.hpp"
#include "fabric/folding.hpp"
#include "quant/binary.hpp"

namespace tincy::fabric {

/// Per-output-channel threshold unit: level = count of satisfied
/// comparisons. `ascending` is false when the folded batch-norm slope is
/// negative and the comparisons flip direction.
struct ThresholdChannel {
  std::vector<int32_t> thresholds;
  bool ascending = true;

  uint8_t apply(int32_t acc) const {
    int level = 0;
    for (const int32_t t : thresholds) level += ascending ? (acc >= t) : (acc <= t);
    return static_cast<uint8_t>(level);
  }
};

/// Encoding of the incoming activation codes.
enum class ActEncoding {
  kUnsigned,  ///< code ∈ [0, 2^A − 1], real = scale · code
  kBipolar,   ///< A = 1, code ∈ {0, 1}, real = ±scale (W1A1):
              ///< Σ w·a = 2·xnor_popcount(w, a) − n
};

/// One MVTU configured for a layer's weight matrix.
class Mvtu {
 public:
  /// `weights`: rows × cols ±1 matrix; `thresholds`: one channel per row;
  /// `act_bits_in`: precision of incoming activation codes.
  Mvtu(quant::BinaryMatrix weights, std::vector<ThresholdChannel> thresholds,
       int act_bits_in, ActEncoding encoding = ActEncoding::kUnsigned);

  int64_t rows() const { return weights_.rows; }
  int64_t cols() const { return weights_.cols; }
  int act_bits_in() const { return act_bits_in_; }
  ActEncoding encoding() const { return encoding_; }

  /// Processes one input column (cols() A-bit codes) into rows() output
  /// codes, exactly as the hardware datapath would.
  void compute(std::span<const uint8_t> column, std::span<uint8_t> out) const;

  /// Raw accumulators before thresholding (for tests and debugging).
  void accumulate(std::span<const uint8_t> column,
                  std::span<int32_t> acc) const;

  /// Batched form over `batch` stacked input columns (`columns` holds
  /// batch × cols() codes, `out` receives batch × rows() codes). Models a
  /// weight-resident pass: every weight row is fetched once and applied
  /// to all frames before the next row streams in, so the weight load is
  /// paid once per batch. Bit-identical to calling compute() per frame.
  void compute_batch(std::span<const uint8_t> columns, int64_t batch,
                     std::span<uint8_t> out) const;
  void accumulate_batch(std::span<const uint8_t> columns, int64_t batch,
                        std::span<int32_t> acc) const;

  /// Cycle cost of one column under the given folding.
  int64_t cycles_per_column(const Folding& f) const {
    return fold_cycles_per_vector({rows(), cols()}, f, act_bits_in_);
  }

  const quant::BinaryMatrix& weights() const { return weights_; }
  const std::vector<ThresholdChannel>& thresholds() const { return thresholds_; }

 private:
  quant::BinaryMatrix weights_;
  std::vector<ThresholdChannel> thresholds_;
  int act_bits_in_;
  ActEncoding encoding_;
};

}  // namespace tincy::fabric
