#include "fabric/accelerator.hpp"

#include <cmath>

#include "core/errors.hpp"
#include "quant/thresholds.hpp"

namespace tincy::fabric {

gemm::ConvGeometry QnnLayerSpec::conv_geometry() const {
  gemm::ConvGeometry g;
  g.in_channels = in_channels;
  g.in_height = in_height;
  g.in_width = in_width;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

Shape QnnLayerSpec::output_shape() const {
  int64_t h = conv_out_height(), w = conv_out_width();
  if (pool_after) {
    PoolSpec p{filters, h, w, pool_size, pool_stride};
    h = p.out_height();
    w = p.out_width();
  }
  return Shape{filters, h, w};
}

QnnAccelerator::QnnAccelerator(CycleModel model, Device device)
    : model_(model), device_(device) {}

void QnnAccelerator::add_layer(const QnnLayerSpec& spec,
                               quant::BinaryMatrix weights,
                               std::vector<ThresholdChannel> thresholds) {
  const auto g = spec.conv_geometry();
  TINCY_CHECK_MSG(weights.rows == spec.filters &&
                      weights.cols == g.patch_size(),
                  "weight matrix " << weights.rows << "x" << weights.cols
                                   << " for spec " << spec.filters << "x"
                                   << g.patch_size());
  if (!layers_.empty()) {
    const Shape prev = layers_.back().spec.output_shape();
    const Shape expect{spec.in_channels, spec.in_height, spec.in_width};
    // FC-style stages (1×1 spatial) accept any flattening of the previous
    // output: CHW linearization is exactly the FC input order.
    const bool flatten_ok = spec.in_height == 1 && spec.in_width == 1 &&
                            prev.numel() == expect.numel();
    TINCY_CHECK_MSG(prev == expect || flatten_ok,
                    "layer input " << expect.to_string()
                                   << " does not chain from "
                                   << prev.to_string());
    TINCY_CHECK_MSG(layers_.back().spec.act_bits_out == spec.act_bits_in,
                    "activation precision mismatch between chained layers");
    TINCY_CHECK_MSG(layers_.back().spec.bipolar == spec.bipolar,
                    "activation encoding mismatch between chained layers");
  }
  if (spec.bipolar)
    TINCY_CHECK_MSG(spec.pad == 0, "bipolar conv cannot zero-pad");
  layers_.push_back(Stage{spec,
                          Mvtu(std::move(weights), std::move(thresholds),
                               spec.act_bits_in,
                               spec.bipolar ? ActEncoding::kBipolar
                                            : ActEncoding::kUnsigned),
                          SlidingWindowUnit(g)});
}

const QnnLayerSpec& QnnAccelerator::spec(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return layers_[static_cast<size_t>(i)].spec;
}

const Mvtu& QnnAccelerator::mvtu(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return layers_[static_cast<size_t>(i)].mvtu;
}

Shape QnnAccelerator::input_shape() const {
  TINCY_CHECK(!layers_.empty());
  const auto& s = layers_.front().spec;
  return Shape{s.in_channels, s.in_height, s.in_width};
}

Shape QnnAccelerator::output_shape() const {
  TINCY_CHECK(!layers_.empty());
  return layers_.back().spec.output_shape();
}

std::vector<uint8_t> QnnAccelerator::forward_codes(
    const std::vector<uint8_t>& input) const {
  TINCY_CHECK(!layers_.empty());
  TINCY_CHECK(static_cast<int64_t>(input.size()) == input_shape().numel());

  std::vector<uint8_t> current = input;
  for (const Stage& stage : layers_) {
    const auto& s = stage.spec;
    const int64_t n = stage.swu.num_columns();
    const int64_t rows = stage.mvtu.rows();
    const int64_t conv_h = s.conv_out_height(), conv_w = s.conv_out_width();

    // Layer-at-a-time: the full conv output is produced before pooling and
    // before the next layer starts (no cross-layer concurrency).
    std::vector<uint8_t> column(static_cast<size_t>(stage.swu.column_size()));
    std::vector<uint8_t> out_col(static_cast<size_t>(rows));
    std::vector<uint8_t> conv_out(static_cast<size_t>(rows * n));
    for (int64_t j = 0; j < n; ++j) {
      stage.swu.emit_column(current, j, column);
      stage.mvtu.compute(column, out_col);
      for (int64_t r = 0; r < rows; ++r)
        conv_out[static_cast<size_t>(r * n + j)] =
            out_col[static_cast<size_t>(r)];
    }

    if (s.pool_after) {
      const PoolSpec p{rows, conv_h, conv_w, s.pool_size, s.pool_stride};
      std::vector<uint8_t> pooled(
          static_cast<size_t>(rows * p.out_height() * p.out_width()));
      max_pool_codes(p, conv_out, pooled);
      current = std::move(pooled);
    } else {
      current = std::move(conv_out);
    }
  }
  return current;
}

Tensor QnnAccelerator::forward(const Tensor& input) const {
  TINCY_CHECK(!layers_.empty());
  // Element count must match; the exact shape may be any flattening (an
  // FC front layer views a CHW map as one long channel vector).
  TINCY_CHECK_MSG(input.numel() == input_shape().numel(),
                  input.shape().to_string() << " vs "
                                            << input_shape().to_string());
  const auto& first = layers_.front().spec;
  const auto& last = layers_.back().spec;

  std::vector<uint8_t> codes(static_cast<size_t>(input.numel()));
  if (first.bipolar) {
    const quant::BipolarActQuant in_q{first.in_scale};
    for (int64_t i = 0; i < input.numel(); ++i)
      codes[static_cast<size_t>(i)] = in_q.quantize(input[i]);
  } else {
    const quant::UniformActQuant in_q{first.act_bits_in, first.in_scale};
    for (int64_t i = 0; i < input.numel(); ++i)
      codes[static_cast<size_t>(i)] = in_q.quantize(input[i]);
  }

  const std::vector<uint8_t> out_codes = forward_codes(codes);

  Tensor out(output_shape());
  if (last.bipolar) {
    const quant::BipolarActQuant out_q{last.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = out_q.dequantize(out_codes[static_cast<size_t>(i)]);
  } else {
    const quant::UniformActQuant out_q{last.act_bits_out, last.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = out_q.dequantize(out_codes[static_cast<size_t>(i)]);
  }
  return out;
}

LayerPerf QnnAccelerator::layer_perf(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  const Stage& stage = layers_[static_cast<size_t>(i)];
  const auto& s = stage.spec;
  const int64_t n = stage.swu.num_columns();

  LayerPerf p;
  p.compute_cycles = stage.mvtu.cycles_per_column(model_.folding) * n;
  // Layer-at-a-time execution streams this layer's weights from DDR.
  const int64_t weight_bits = stage.mvtu.rows() * stage.mvtu.cols();
  p.weight_dma_cycles = static_cast<int64_t>(
      std::ceil(static_cast<double>(weight_bits) / model_.ddr_bits_per_cycle));
  // Input and output feature maps also cross DDR between invocations.
  const int64_t in_bits =
      s.in_channels * s.in_height * s.in_width * s.act_bits_in;
  const int64_t out_bits = s.output_shape().numel() * s.act_bits_out;
  p.fmap_dma_cycles = static_cast<int64_t>(std::ceil(
      static_cast<double>(in_bits + out_bits) / model_.ddr_bits_per_cycle));
  p.overhead_cycles = model_.invocation_overhead_cycles;
  if (s.pool_after) {
    const PoolSpec ps{s.filters, s.conv_out_height(), s.conv_out_width(),
                      s.pool_size, s.pool_stride};
    p.pool_cycles = pool_cycles(ps, model_.folding.pe);
  }
  return p;
}

double QnnAccelerator::total_ms() const {
  int64_t cycles = 0;
  for (int64_t i = 0; i < num_layers(); ++i)
    cycles += layer_perf(i).total_cycles();
  return static_cast<double>(cycles) / (model_.clock_mhz * 1e3);
}

Resources QnnAccelerator::engine_resources() const {
  EngineSpec spec;
  spec.folding = model_.folding;
  int64_t max_depth = 1, max_rows = 1, max_weight_bits = 1;
  int act_bits = 1;
  for (const Stage& stage : layers_) {
    max_depth = std::max(max_depth, stage.mvtu.cols());
    max_rows = std::max(max_rows, stage.mvtu.rows());
    max_weight_bits =
        std::max(max_weight_bits, stage.mvtu.rows() * stage.mvtu.cols());
    act_bits = std::max(act_bits, stage.spec.act_bits_in);
  }
  spec.max_depth = max_depth;
  spec.max_rows = max_rows;
  spec.weight_bits_on_chip = max_weight_bits;
  spec.act_bits = act_bits;
  return estimate_engine(spec);
}

int64_t QnnAccelerator::engines_fitting() const {
  const Resources one = engine_resources();
  int64_t n = 0;
  Resources total;
  while (true) {
    Resources next = total;
    next += one;
    if (!fits(next, device_)) break;
    total = next;
    ++n;
  }
  return n;
}

}  // namespace tincy::fabric
