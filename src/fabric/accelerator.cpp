#include "fabric/accelerator.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/errors.hpp"
#include "quant/thresholds.hpp"
#include "telemetry/trace.hpp"

namespace tincy::fabric {

gemm::ConvGeometry QnnLayerSpec::conv_geometry() const {
  gemm::ConvGeometry g;
  g.in_channels = in_channels;
  g.in_height = in_height;
  g.in_width = in_width;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

Shape QnnLayerSpec::output_shape() const {
  int64_t h = conv_out_height(), w = conv_out_width();
  if (pool_after) {
    PoolSpec p{filters, h, w, pool_size, pool_stride};
    h = p.out_height();
    w = p.out_width();
  }
  return Shape{filters, h, w};
}

QnnAccelerator::QnnAccelerator(CycleModel model, Device device)
    : model_(model), device_(device) {
  set_metrics(nullptr);
}

void QnnAccelerator::set_metrics(telemetry::MetricsRegistry* metrics) {
  auto* reg = metrics ? metrics : &telemetry::MetricsRegistry::global();
  dma_amortized_counter_ = &reg->counter("fabric.dma_amortized");
  dma_saved_counter_ = &reg->counter("fabric.dma_saved_cycles");
  batched_passes_counter_ = &reg->counter("fabric.batched_passes");
  batched_frames_counter_ = &reg->counter("fabric.batched_frames");
}

void QnnAccelerator::add_layer(const QnnLayerSpec& spec,
                               quant::BinaryMatrix weights,
                               std::vector<ThresholdChannel> thresholds) {
  const auto g = spec.conv_geometry();
  TINCY_CHECK_MSG(weights.rows == spec.filters &&
                      weights.cols == g.patch_size(),
                  "weight matrix " << weights.rows << "x" << weights.cols
                                   << " for spec " << spec.filters << "x"
                                   << g.patch_size());
  if (!layers_.empty()) {
    const Shape prev = layers_.back().spec.output_shape();
    const Shape expect{spec.in_channels, spec.in_height, spec.in_width};
    // FC-style stages (1×1 spatial) accept any flattening of the previous
    // output: CHW linearization is exactly the FC input order.
    const bool flatten_ok = spec.in_height == 1 && spec.in_width == 1 &&
                            prev.numel() == expect.numel();
    TINCY_CHECK_MSG(prev == expect || flatten_ok,
                    "layer input " << expect.to_string()
                                   << " does not chain from "
                                   << prev.to_string());
    TINCY_CHECK_MSG(layers_.back().spec.act_bits_out == spec.act_bits_in,
                    "activation precision mismatch between chained layers");
    TINCY_CHECK_MSG(layers_.back().spec.bipolar == spec.bipolar,
                    "activation encoding mismatch between chained layers");
  }
  if (spec.bipolar)
    TINCY_CHECK_MSG(spec.pad == 0, "bipolar conv cannot zero-pad");
  layers_.push_back(Stage{spec,
                          Mvtu(std::move(weights), std::move(thresholds),
                               spec.act_bits_in,
                               spec.bipolar ? ActEncoding::kBipolar
                                            : ActEncoding::kUnsigned),
                          SlidingWindowUnit(g)});
}

const QnnLayerSpec& QnnAccelerator::spec(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return layers_[static_cast<size_t>(i)].spec;
}

const Mvtu& QnnAccelerator::mvtu(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return layers_[static_cast<size_t>(i)].mvtu;
}

Shape QnnAccelerator::input_shape() const {
  TINCY_CHECK(!layers_.empty());
  const auto& s = layers_.front().spec;
  return Shape{s.in_channels, s.in_height, s.in_width};
}

Shape QnnAccelerator::output_shape() const {
  TINCY_CHECK(!layers_.empty());
  return layers_.back().spec.output_shape();
}

std::vector<uint8_t> QnnAccelerator::forward_codes(
    const std::vector<uint8_t>& input) const {
  return forward_codes_batched(input, 1);
}

void QnnAccelerator::run_layer_batched(int64_t i,
                                       std::span<const uint8_t> inputs,
                                       int64_t batch,
                                       std::span<uint8_t> outputs) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  TINCY_CHECK_MSG(batch >= 1, "batch " << batch);
  const Stage& stage = layers_[static_cast<size_t>(i)];
  const auto& s = stage.spec;
  const int64_t in_numel = s.in_channels * s.in_height * s.in_width;
  const int64_t out_numel = s.output_shape().numel();
  TINCY_CHECK(static_cast<int64_t>(inputs.size()) == batch * in_numel);
  TINCY_CHECK(static_cast<int64_t>(outputs.size()) == batch * out_numel);

  // One span per engine pass, annotated with the cycle-model split so a
  // Perfetto timeline shows where each pass's cycles went. The frame
  // identity comes from the worker's thread-local context.
  char span_name[32];
  std::snprintf(span_name, sizeof span_name, "fabric.layer%" PRId64, i);
  telemetry::TraceSpan trace_span(&telemetry::TraceCollector::global(),
                                  span_name,
                                  telemetry::current_trace_context());
  if (trace_span.active()) {
    const LayerPerf perf = layer_perf_batched(i, batch);
    char args[telemetry::TraceEvent::kArgsCapacity];
    std::snprintf(args, sizeof args,
                  "\"batch\":%" PRId64 ",\"compute\":%" PRId64
                  ",\"wdma\":%" PRId64 ",\"fmap\":%" PRId64
                  ",\"overhead\":%" PRId64 ",\"pool\":%" PRId64,
                  perf.batch, perf.compute_cycles, perf.weight_dma_cycles,
                  perf.fmap_dma_cycles, perf.overhead_cycles,
                  perf.pool_cycles);
    trace_span.set_args(args);
  }

  const int64_t n = stage.swu.num_columns();
  const int64_t rows = stage.mvtu.rows();
  const int64_t conv_h = s.conv_out_height(), conv_w = s.conv_out_width();

  // One weight-streaming phase covers the whole batch: for every output
  // position the SWU emits each frame's footprint and the MVTU applies
  // the resident weights to all of them before moving on. Layer-at-a-time
  // semantics per frame are unchanged (no cross-layer concurrency).
  std::vector<uint8_t> columns(
      static_cast<size_t>(batch * stage.swu.column_size()));
  std::vector<uint8_t> out_cols(static_cast<size_t>(batch * rows));
  std::vector<uint8_t> conv_out(static_cast<size_t>(batch * rows * n));
  for (int64_t j = 0; j < n; ++j) {
    stage.swu.emit_column_batch(inputs, batch, j, columns);
    stage.mvtu.compute_batch(columns, batch, out_cols);
    for (int64_t f = 0; f < batch; ++f)
      for (int64_t r = 0; r < rows; ++r)
        conv_out[static_cast<size_t>((f * rows + r) * n + j)] =
            out_cols[static_cast<size_t>(f * rows + r)];
  }

  if (s.pool_after) {
    const PoolSpec p{rows, conv_h, conv_w, s.pool_size, s.pool_stride};
    max_pool_codes_batch(p, conv_out, outputs, batch);
  } else {
    std::copy(conv_out.begin(), conv_out.end(), outputs.begin());
  }

  if (batch > 1) {
    // A sequential per-frame run would have streamed the weights batch
    // times; this pass streamed them once.
    batched_passes_counter_->add(1);
    batched_frames_counter_->add(batch);
    dma_amortized_counter_->add(batch - 1);
    dma_saved_counter_->add((batch - 1) * layer_perf(i).weight_dma_cycles);
  }
}

std::vector<uint8_t> QnnAccelerator::forward_codes_batched(
    const std::vector<uint8_t>& inputs, int64_t batch) const {
  TINCY_CHECK(!layers_.empty());
  TINCY_CHECK_MSG(batch >= 1, "batch " << batch);
  TINCY_CHECK(static_cast<int64_t>(inputs.size()) ==
              batch * input_shape().numel());
  std::vector<uint8_t> current = inputs;
  for (int64_t i = 0; i < num_layers(); ++i) {
    const int64_t out_numel =
        layers_[static_cast<size_t>(i)].spec.output_shape().numel();
    std::vector<uint8_t> next(static_cast<size_t>(batch * out_numel));
    run_layer_batched(i, current, batch, next);
    current = std::move(next);
  }
  return current;
}

Tensor QnnAccelerator::forward(const Tensor& input) const {
  TINCY_CHECK(!layers_.empty());
  // Element count must match; the exact shape may be any flattening (an
  // FC front layer views a CHW map as one long channel vector).
  TINCY_CHECK_MSG(input.numel() == input_shape().numel(),
                  input.shape().to_string() << " vs "
                                            << input_shape().to_string());
  const auto& first = layers_.front().spec;
  const auto& last = layers_.back().spec;

  std::vector<uint8_t> codes(static_cast<size_t>(input.numel()));
  if (first.bipolar) {
    const quant::BipolarActQuant in_q{first.in_scale};
    for (int64_t i = 0; i < input.numel(); ++i)
      codes[static_cast<size_t>(i)] = in_q.quantize(input[i]);
  } else {
    const quant::UniformActQuant in_q{first.act_bits_in, first.in_scale};
    for (int64_t i = 0; i < input.numel(); ++i)
      codes[static_cast<size_t>(i)] = in_q.quantize(input[i]);
  }

  const std::vector<uint8_t> out_codes = forward_codes(codes);

  Tensor out(output_shape());
  if (last.bipolar) {
    const quant::BipolarActQuant out_q{last.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = out_q.dequantize(out_codes[static_cast<size_t>(i)]);
  } else {
    const quant::UniformActQuant out_q{last.act_bits_out, last.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = out_q.dequantize(out_codes[static_cast<size_t>(i)]);
  }
  return out;
}

LayerPerf QnnAccelerator::layer_perf(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  const Stage& stage = layers_[static_cast<size_t>(i)];
  const auto& s = stage.spec;
  const int64_t n = stage.swu.num_columns();

  LayerPerf p;
  p.compute_cycles = stage.mvtu.cycles_per_column(model_.folding) * n;
  // Layer-at-a-time execution streams this layer's weights from DDR.
  const int64_t weight_bits = stage.mvtu.rows() * stage.mvtu.cols();
  p.weight_dma_cycles = static_cast<int64_t>(
      std::ceil(static_cast<double>(weight_bits) / model_.ddr_bits_per_cycle));
  // Input and output feature maps also cross DDR between invocations.
  const int64_t in_bits =
      s.in_channels * s.in_height * s.in_width * s.act_bits_in;
  const int64_t out_bits = s.output_shape().numel() * s.act_bits_out;
  p.fmap_dma_cycles = static_cast<int64_t>(std::ceil(
      static_cast<double>(in_bits + out_bits) / model_.ddr_bits_per_cycle));
  p.overhead_cycles = model_.invocation_overhead_cycles;
  if (s.pool_after) {
    const PoolSpec ps{s.filters, s.conv_out_height(), s.conv_out_width(),
                      s.pool_size, s.pool_stride};
    p.pool_cycles = pool_cycles(ps, model_.folding.pe);
  }
  return p;
}

LayerPerf QnnAccelerator::layer_perf_batched(int64_t i, int64_t batch) const {
  TINCY_CHECK_MSG(batch >= 1, "batch " << batch);
  LayerPerf p = layer_perf(i);
  p.batch = batch;
  // Per-frame work scales; the weight stream and the invocation overhead
  // are paid once for the whole gang.
  p.compute_cycles *= batch;
  p.fmap_dma_cycles *= batch;
  p.pool_cycles *= batch;
  return p;
}

double QnnAccelerator::total_ms() const {
  int64_t cycles = 0;
  for (int64_t i = 0; i < num_layers(); ++i)
    cycles += layer_perf(i).total_cycles();
  return static_cast<double>(cycles) / (model_.clock_mhz * 1e3);
}

Resources QnnAccelerator::engine_resources() const {
  EngineSpec spec;
  spec.folding = model_.folding;
  int64_t max_depth = 1, max_rows = 1, max_weight_bits = 1;
  int act_bits = 1;
  for (const Stage& stage : layers_) {
    max_depth = std::max(max_depth, stage.mvtu.cols());
    max_rows = std::max(max_rows, stage.mvtu.rows());
    max_weight_bits =
        std::max(max_weight_bits, stage.mvtu.rows() * stage.mvtu.cols());
    act_bits = std::max(act_bits, stage.spec.act_bits_in);
  }
  spec.max_depth = max_depth;
  spec.max_rows = max_rows;
  spec.weight_bits_on_chip = max_weight_bits;
  spec.act_bits = act_bits;
  return estimate_engine(spec);
}

int64_t QnnAccelerator::engines_fitting() const {
  const Resources one = engine_resources();
  int64_t n = 0;
  Resources total;
  while (true) {
    Resources next = total;
    next += one;
    if (!fits(next, device_)) break;
    total = next;
    ++n;
  }
  return n;
}

}  // namespace tincy::fabric
