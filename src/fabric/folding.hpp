#pragma once

/// \file folding.hpp
/// PE/SIMD folding of the FINN matrix–vector–threshold unit.
///
/// An MVTU instance has PE processing elements, each consuming SIMD
/// weight/activation pairs per cycle. A weight matrix of H rows (output
/// channels) and W columns (dot-product depth) is folded onto the array:
/// each output vector takes ceil(H/PE) · ceil(W/SIMD) cycles per
/// activation bit-plane. Folding trades fabric resources for cycles —
/// the knob that decides what fits into the XCZU3EG.

#include <cstdint>

#include "core/errors.hpp"

namespace tincy::fabric {

/// Array geometry of one MVTU.
struct Folding {
  int64_t pe = 32;    ///< processing elements (output-channel parallelism)
  int64_t simd = 36;  ///< lanes per PE (input parallelism)
};

/// Matrix-level work description of one layer mapped on the MVTU.
struct MatrixShape {
  int64_t rows = 0;  ///< output channels
  int64_t cols = 0;  ///< dot-product depth (C·K²)
};

/// Cycles to produce ONE output vector (all rows) for one input column:
/// ceil(rows/pe) · ceil(cols/simd) · act_bits (bit-serial activations).
int64_t fold_cycles_per_vector(const MatrixShape& m, const Folding& f,
                               int act_bits);

/// Cycles for a full layer: per-vector cost times the number of kernel
/// applications (output pixels).
int64_t fold_cycles_per_layer(const MatrixShape& m, const Folding& f,
                              int act_bits, int64_t num_vectors);

}  // namespace tincy::fabric
