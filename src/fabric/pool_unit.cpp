#include "fabric/pool_unit.hpp"

#include <algorithm>

#include "core/errors.hpp"

namespace tincy::fabric {

void max_pool_codes(const PoolSpec& spec, std::span<const uint8_t> in,
                    std::span<uint8_t> out) {
  const int64_t out_h = spec.out_height(), out_w = spec.out_width();
  TINCY_CHECK(static_cast<int64_t>(in.size()) ==
              spec.channels * spec.in_height * spec.in_width);
  TINCY_CHECK(static_cast<int64_t>(out.size()) ==
              spec.channels * out_h * out_w);
  const int64_t pad_left = (spec.size - 1) / 2;
  for (int64_t c = 0; c < spec.channels; ++c) {
    const uint8_t* plane = in.data() + c * spec.in_height * spec.in_width;
    uint8_t* out_plane = out.data() + c * out_h * out_w;
    for (int64_t oh = 0; oh < out_h; ++oh) {
      for (int64_t ow = 0; ow < out_w; ++ow) {
        uint8_t best = 0;
        bool any = false;
        for (int64_t kh = 0; kh < spec.size; ++kh) {
          const int64_t ih = oh * spec.stride - pad_left + kh;
          if (ih < 0 || ih >= spec.in_height) continue;
          for (int64_t kw = 0; kw < spec.size; ++kw) {
            const int64_t iw = ow * spec.stride - pad_left + kw;
            if (iw < 0 || iw >= spec.in_width) continue;
            best = any ? std::max(best, plane[ih * spec.in_width + iw])
                       : plane[ih * spec.in_width + iw];
            any = true;
          }
        }
        TINCY_CHECK(any);
        out_plane[oh * out_w + ow] = best;
      }
    }
  }
}

void max_pool_codes_batch(const PoolSpec& spec, std::span<const uint8_t> in,
                          std::span<uint8_t> out, int64_t batch) {
  TINCY_CHECK(batch >= 1);
  const int64_t in_size = spec.channels * spec.in_height * spec.in_width;
  const int64_t out_size = spec.channels * spec.out_height() * spec.out_width();
  TINCY_CHECK(static_cast<int64_t>(in.size()) == batch * in_size);
  TINCY_CHECK(static_cast<int64_t>(out.size()) == batch * out_size);
  for (int64_t f = 0; f < batch; ++f)
    max_pool_codes(spec,
                   in.subspan(static_cast<size_t>(f * in_size),
                              static_cast<size_t>(in_size)),
                   out.subspan(static_cast<size_t>(f * out_size),
                               static_cast<size_t>(out_size)));
}

int64_t pool_cycles(const PoolSpec& spec, int64_t pe) {
  TINCY_CHECK(pe > 0);
  const int64_t groups = (spec.channels + pe - 1) / pe;
  return groups * spec.out_height() * spec.out_width();
}

}  // namespace tincy::fabric
