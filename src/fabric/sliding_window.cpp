#include "fabric/sliding_window.hpp"

#include "core/errors.hpp"

namespace tincy::fabric {

SlidingWindowUnit::SlidingWindowUnit(const gemm::ConvGeometry& g) : geom_(g) {
  TINCY_CHECK_MSG(g.out_height() > 0 && g.out_width() > 0, "degenerate SWU");
}

void SlidingWindowUnit::emit_column(std::span<const uint8_t> image,
                                    int64_t index,
                                    std::span<uint8_t> column) const {
  TINCY_CHECK(static_cast<int64_t>(image.size()) ==
              geom_.in_channels * geom_.in_height * geom_.in_width);
  TINCY_CHECK(static_cast<int64_t>(column.size()) == column_size());
  TINCY_CHECK_MSG(index >= 0 && index < num_columns(), "column " << index);

  const int64_t oh = index / geom_.out_width();
  const int64_t ow = index % geom_.out_width();
  int64_t k = 0;
  for (int64_t c = 0; c < geom_.in_channels; ++c) {
    const uint8_t* plane =
        image.data() + c * geom_.in_height * geom_.in_width;
    for (int64_t kh = 0; kh < geom_.kernel; ++kh) {
      const int64_t ih = oh * geom_.stride - geom_.pad + kh;
      for (int64_t kw = 0; kw < geom_.kernel; ++kw, ++k) {
        const int64_t iw = ow * geom_.stride - geom_.pad + kw;
        column[static_cast<size_t>(k)] =
            (ih < 0 || ih >= geom_.in_height || iw < 0 || iw >= geom_.in_width)
                ? 0
                : plane[ih * geom_.in_width + iw];
      }
    }
  }
}

void SlidingWindowUnit::emit_column_batch(std::span<const uint8_t> images,
                                          int64_t batch, int64_t index,
                                          std::span<uint8_t> columns) const {
  TINCY_CHECK_MSG(batch >= 1, "batch " << batch);
  const int64_t image_size =
      geom_.in_channels * geom_.in_height * geom_.in_width;
  TINCY_CHECK(static_cast<int64_t>(images.size()) == batch * image_size);
  TINCY_CHECK(static_cast<int64_t>(columns.size()) == batch * column_size());
  for (int64_t f = 0; f < batch; ++f)
    emit_column(images.subspan(static_cast<size_t>(f * image_size),
                               static_cast<size_t>(image_size)),
                index,
                columns.subspan(static_cast<size_t>(f * column_size()),
                                static_cast<size_t>(column_size())));
}

}  // namespace tincy::fabric
