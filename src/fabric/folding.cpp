#include "fabric/folding.hpp"

namespace tincy::fabric {
namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

int64_t fold_cycles_per_vector(const MatrixShape& m, const Folding& f,
                               int act_bits) {
  TINCY_CHECK_MSG(m.rows > 0 && m.cols > 0, "empty matrix");
  TINCY_CHECK_MSG(f.pe > 0 && f.simd > 0, "degenerate folding");
  TINCY_CHECK_MSG(act_bits >= 1, "act_bits " << act_bits);
  return ceil_div(m.rows, f.pe) * ceil_div(m.cols, f.simd) * act_bits;
}

int64_t fold_cycles_per_layer(const MatrixShape& m, const Folding& f,
                              int act_bits, int64_t num_vectors) {
  TINCY_CHECK_MSG(num_vectors > 0, "num_vectors " << num_vectors);
  return fold_cycles_per_vector(m, f, act_bits) * num_vectors;
}

}  // namespace tincy::fabric
