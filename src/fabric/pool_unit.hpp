#pragma once

/// \file pool_unit.hpp
/// Max-pooling unit operating directly on activation codes. Because the
/// A-bit activation grid is monotone, max over codes equals max over the
/// real values — pooling commutes with quantization, so the fabric can
/// pool codes without dequantizing.

#include <cstdint>
#include <span>

namespace tincy::fabric {

struct PoolSpec {
  int64_t channels = 0;
  int64_t in_height = 0;
  int64_t in_width = 0;
  int64_t size = 2;
  int64_t stride = 2;

  /// Darknet-compatible geometry (implicit total padding of size − 1).
  int64_t out_height() const {
    return (in_height + (size - 1) - size) / stride + 1;
  }
  int64_t out_width() const {
    return (in_width + (size - 1) - size) / stride + 1;
  }
};

/// Pools `in` (CHW codes) into `out` per `spec`. Padding taps never win the
/// max (codes are unsigned and in-image taps always exist).
void max_pool_codes(const PoolSpec& spec, std::span<const uint8_t> in,
                    std::span<uint8_t> out);

/// Batched form: `in` / `out` hold `batch` stacked CHW code maps.
void max_pool_codes_batch(const PoolSpec& spec, std::span<const uint8_t> in,
                          std::span<uint8_t> out, int64_t batch);

/// Cycle cost: one comparison tree evaluation per output pixel per channel
/// group of `pe` channels processed in parallel.
int64_t pool_cycles(const PoolSpec& spec, int64_t pe);

}  // namespace tincy::fabric
