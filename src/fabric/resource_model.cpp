#include "fabric/resource_model.hpp"

namespace tincy::fabric {

Resources& Resources::operator+=(const Resources& o) {
  luts += o.luts;
  ffs += o.ffs;
  bram36 += o.bram36;
  dsp += o.dsp;
  return *this;
}

Resources estimate_engine(const EngineSpec& spec) {
  // First-order coefficients (documented in DESIGN.md):
  //  * one XNOR+popcount lane over `act_bits` bit-serial planes: the lane
  //    datapath (XNOR, compressor slice, accumulator slice) ~ 6 LUTs;
  //  * per-PE threshold unit: (2^A − 1) comparators at ~16 LUTs each plus
  //    accumulator and control ~ 48 LUTs;
  //  * sliding window unit + stream plumbing ~ 4,000 LUTs;
  //  * max-pool unit ~ 1,500 LUTs;
  //  * control/AXI/DMA shell ~ 7,000 LUTs (shared infrastructure).
  const int64_t lanes = spec.folding.pe * spec.folding.simd;
  const int64_t levels = (1 << spec.act_bits) - 1;

  Resources r;
  r.luts = lanes * 6                               // MAC lanes
           + spec.folding.pe * (levels * 16 + 48); // threshold units
  if (spec.needs_swu) r.luts += 4000;          // sliding window unit
  if (spec.needs_pool) r.luts += 1500;         // pool unit
  if (spec.include_shell) r.luts += 7000;      // shared control/AXI/DMA shell
  r.ffs = 2 * r.luts;  // pipelined datapaths: ~2 FFs per LUT
  // Weight + activation buffering: weights resident for the largest layer
  // plus double-buffered line buffers. BRAM36 = 36 Kib.
  const int64_t weight_bits =
      spec.weight_bits_on_chip > 0 ? spec.weight_bits_on_chip
                                   : spec.max_rows * spec.max_depth;
  const int64_t buffer_bits =
      2 * spec.max_depth * spec.act_bits * 64;  // folded activation buffers
  r.bram36 = (weight_bits + buffer_bits + (36 * 1024 - 1)) / (36 * 1024);
  r.dsp = 0;  // XNOR-popcount datapaths need no DSP slices
  return r;
}

bool fits(const Resources& r, const Device& d, double utilization_cap) {
  const auto cap = [utilization_cap](int64_t budget) {
    return static_cast<int64_t>(utilization_cap * static_cast<double>(budget));
  };
  return r.luts <= cap(d.luts) && r.ffs <= cap(d.ffs) &&
         r.bram36 <= cap(d.bram36) && r.dsp <= cap(d.dsp);
}

int64_t max_engines(const EngineSpec& spec, const Device& d,
                    double utilization_cap) {
  const Resources one = estimate_engine(spec);
  int64_t n = 0;
  Resources total;
  while (true) {
    Resources next = total;
    next += one;
    if (!fits(next, d, utilization_cap)) break;
    total = next;
    ++n;
  }
  return n;
}

}  // namespace tincy::fabric
