#include "fabric/binparam.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/errors.hpp"

namespace tincy::fabric {
namespace fs = std::filesystem;
namespace {

std::string layer_base(const std::string& dir, int64_t index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "layer%02d", static_cast<int>(index));
  return (fs::path(dir) / buf).string();
}

void write_meta(const std::string& path, const QnnLayerSpec& s) {
  std::ofstream out(path);
  TINCY_CHECK_MSG(out.is_open(), "cannot open " << path);
  out << "in_channels=" << s.in_channels << "\nin_height=" << s.in_height
      << "\nin_width=" << s.in_width << "\nfilters=" << s.filters
      << "\nkernel=" << s.kernel << "\nstride=" << s.stride
      << "\npad=" << s.pad << "\nact_bits_in=" << s.act_bits_in
      << "\nact_bits_out=" << s.act_bits_out << "\nin_scale=" << s.in_scale
      << "\nout_scale=" << s.out_scale
      << "\nbipolar=" << (s.bipolar ? 1 : 0)
      << "\npool_after=" << (s.pool_after ? 1 : 0)
      << "\npool_size=" << s.pool_size << "\npool_stride=" << s.pool_stride
      << "\n";
}

QnnLayerSpec read_meta(const std::string& path) {
  std::ifstream in(path);
  TINCY_CHECK_MSG(in.is_open(), "cannot open " << path);
  QnnLayerSpec s;
  std::string line;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    const auto iv = [&] { return std::stoll(value); };
    if (key == "in_channels") s.in_channels = iv();
    else if (key == "in_height") s.in_height = iv();
    else if (key == "in_width") s.in_width = iv();
    else if (key == "filters") s.filters = iv();
    else if (key == "kernel") s.kernel = iv();
    else if (key == "stride") s.stride = iv();
    else if (key == "pad") s.pad = iv();
    else if (key == "act_bits_in") s.act_bits_in = static_cast<int>(iv());
    else if (key == "act_bits_out") s.act_bits_out = static_cast<int>(iv());
    else if (key == "in_scale") s.in_scale = std::stof(value);
    else if (key == "out_scale") s.out_scale = std::stof(value);
    else if (key == "bipolar") s.bipolar = iv() != 0;
    else if (key == "pool_after") s.pool_after = iv() != 0;
    else if (key == "pool_size") s.pool_size = iv();
    else if (key == "pool_stride") s.pool_stride = iv();
  }
  return s;
}

}  // namespace

void save_binparams(const std::string& dir,
                    const std::vector<BinparamLayer>& layers) {
  fs::create_directories(dir);
  for (size_t i = 0; i < layers.size(); ++i) {
    const auto& l = layers[i];
    const std::string base = layer_base(dir, static_cast<int64_t>(i));
    write_meta(base + ".meta", l.spec);

    // Bit-packed weights: rows × words(cols) little-endian 64-bit words.
    std::ofstream wf(base + ".weights.bin", std::ios::binary);
    TINCY_CHECK_MSG(wf.is_open(), "cannot open " << base << ".weights.bin");
    const int64_t rows = l.weights.rows, cols = l.weights.cols;
    wf.write(reinterpret_cast<const char*>(&rows), sizeof rows);
    wf.write(reinterpret_cast<const char*>(&cols), sizeof cols);
    for (const auto& bits : l.weights.row_bits) {
      const auto& words = bits.words();
      wf.write(reinterpret_cast<const char*>(words.data()),
               static_cast<std::streamsize>(words.size() * sizeof(uint64_t)));
    }
    wf.write(reinterpret_cast<const char*>(l.weights.row_scale.data()),
             static_cast<std::streamsize>(l.weights.row_scale.size() *
                                          sizeof(float)));

    std::ofstream tf(base + ".thresh.bin", std::ios::binary);
    TINCY_CHECK_MSG(tf.is_open(), "cannot open " << base << ".thresh.bin");
    for (const auto& ch : l.thresholds) {
      const int32_t ascending = ch.ascending ? 1 : 0;
      const int32_t count = static_cast<int32_t>(ch.thresholds.size());
      tf.write(reinterpret_cast<const char*>(&ascending), sizeof ascending);
      tf.write(reinterpret_cast<const char*>(&count), sizeof count);
      tf.write(reinterpret_cast<const char*>(ch.thresholds.data()),
               static_cast<std::streamsize>(ch.thresholds.size() *
                                            sizeof(int32_t)));
    }
  }
}

std::vector<BinparamLayer> load_binparams(const std::string& dir) {
  std::vector<BinparamLayer> layers;
  for (int64_t i = 0;; ++i) {
    const std::string base = layer_base(dir, i);
    if (!fs::exists(base + ".meta")) break;
    BinparamLayer l;
    l.spec = read_meta(base + ".meta");

    std::ifstream wf(base + ".weights.bin", std::ios::binary);
    TINCY_CHECK_MSG(wf.is_open(), "missing " << base << ".weights.bin");
    int64_t rows = 0, cols = 0;
    wf.read(reinterpret_cast<char*>(&rows), sizeof rows);
    wf.read(reinterpret_cast<char*>(&cols), sizeof cols);
    TINCY_CHECK_MSG(wf && rows > 0 && cols > 0,
                    "corrupt weights header in " << base);
    l.weights.rows = rows;
    l.weights.cols = cols;
    const int64_t words_per_row = (cols + 63) / 64;
    for (int64_t r = 0; r < rows; ++r) {
      BitVector bits(cols);
      std::vector<uint64_t> words(static_cast<size_t>(words_per_row));
      wf.read(reinterpret_cast<char*>(words.data()),
              static_cast<std::streamsize>(words.size() * sizeof(uint64_t)));
      TINCY_CHECK_MSG(static_cast<bool>(wf), "truncated weights in " << base);
      for (int64_t c = 0; c < cols; ++c)
        bits.set(c, (words[static_cast<size_t>(c >> 6)] >> (c & 63)) & 1);
      l.weights.row_bits.push_back(std::move(bits));
    }
    l.weights.row_scale.resize(static_cast<size_t>(rows));
    wf.read(reinterpret_cast<char*>(l.weights.row_scale.data()),
            static_cast<std::streamsize>(l.weights.row_scale.size() *
                                         sizeof(float)));
    TINCY_CHECK_MSG(static_cast<bool>(wf), "truncated row scales in " << base);

    std::ifstream tf(base + ".thresh.bin", std::ios::binary);
    TINCY_CHECK_MSG(tf.is_open(), "missing " << base << ".thresh.bin");
    for (int64_t r = 0; r < rows; ++r) {
      ThresholdChannel ch;
      int32_t ascending = 1, count = 0;
      tf.read(reinterpret_cast<char*>(&ascending), sizeof ascending);
      tf.read(reinterpret_cast<char*>(&count), sizeof count);
      TINCY_CHECK_MSG(tf && count >= 0, "corrupt thresholds in " << base);
      ch.ascending = ascending != 0;
      ch.thresholds.resize(static_cast<size_t>(count));
      tf.read(reinterpret_cast<char*>(ch.thresholds.data()),
              static_cast<std::streamsize>(ch.thresholds.size() *
                                           sizeof(int32_t)));
      TINCY_CHECK_MSG(static_cast<bool>(tf), "truncated thresholds in " << base);
      l.thresholds.push_back(std::move(ch));
    }
    layers.push_back(std::move(l));
  }
  TINCY_CHECK_MSG(!layers.empty(), "no binparam layers found in " << dir);
  return layers;
}

QnnAccelerator load_accelerator(const std::string& dir, CycleModel model,
                                Device device) {
  QnnAccelerator acc(model, device);
  for (auto& l : load_binparams(dir))
    acc.add_layer(l.spec, std::move(l.weights), std::move(l.thresholds));
  return acc;
}

}  // namespace tincy::fabric
