#pragma once

/// \file ternary_mvtu.hpp
/// Matrix–vector–threshold unit for ternary ({−1, 0, +1}) weights — the
/// "smallest possible retreat" from full binarization the paper's related
/// work discusses (Li et al.; Alemdar / Prost-Boucle et al. on FPGAs).
/// The datapath stores two bit-planes per weight row (nonzero mask and
/// sign) and computes the dot product with two masked popcounts per
/// activation plane; zero weights contribute nothing, which is also what
/// makes ternary engines cheaper per effective operation.

#include <cstdint>
#include <span>
#include <vector>

#include "fabric/folding.hpp"
#include "fabric/mvtu.hpp"
#include "quant/ternary.hpp"

namespace tincy::fabric {

class TernaryMvtu {
 public:
  TernaryMvtu(quant::TernaryMatrix weights,
              std::vector<ThresholdChannel> thresholds, int act_bits_in);

  int64_t rows() const { return weights_.rows; }
  int64_t cols() const { return weights_.cols; }
  int act_bits_in() const { return act_bits_in_; }

  /// Raw accumulators for one input column of A-bit codes.
  void accumulate(std::span<const uint8_t> column,
                  std::span<int32_t> acc) const;

  /// Thresholded output codes for one input column.
  void compute(std::span<const uint8_t> column, std::span<uint8_t> out) const;

  /// Batched form over `batch` stacked input columns — both weight planes
  /// stay resident while the whole batch streams through (see
  /// Mvtu::compute_batch). Bit-identical to per-frame compute().
  void compute_batch(std::span<const uint8_t> columns, int64_t batch,
                     std::span<uint8_t> out) const;
  void accumulate_batch(std::span<const uint8_t> columns, int64_t batch,
                        std::span<int32_t> acc) const;

  /// Cycle cost per column — identical folding to the binary MVTU (the
  /// second weight plane rides along in the same cycle).
  int64_t cycles_per_column(const Folding& f) const {
    return fold_cycles_per_vector({rows(), cols()}, f, act_bits_in_);
  }

  const quant::TernaryMatrix& weights() const { return weights_; }

 private:
  quant::TernaryMatrix weights_;
  std::vector<ThresholdChannel> thresholds_;
  int act_bits_in_;
};

}  // namespace tincy::fabric
