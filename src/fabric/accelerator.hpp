#pragma once

/// \file accelerator.hpp
/// Top-level QNN accelerator: one generalized conv+pool engine (the only
/// configuration that fits the XCZU3EG, per the resource model) executing
/// the offloaded layers one after the other. "Note that this precludes
/// concurrency across layers and implies a higher latency compared to a
/// pipeline as the feature maps between layers are computed in full before
/// the computation of the next layer can be triggered" (§III-A).
///
/// Functional behaviour is bit-exact W1A<bits> arithmetic; timing comes
/// from a documented cycle model (folding + weight/feature-map DMA +
/// invocation overhead) instead of a bitstream.

#include <memory>
#include <span>
#include <vector>

#include "core/tensor.hpp"
#include "fabric/folding.hpp"
#include "fabric/mvtu.hpp"
#include "fabric/pool_unit.hpp"
#include "fabric/resource_model.hpp"
#include "fabric/sliding_window.hpp"
#include "telemetry/metrics.hpp"

namespace tincy::fabric {

/// Geometry + quantization of one offloaded conv (+ optional pool) stage.
struct QnnLayerSpec {
  int64_t in_channels = 0;
  int64_t in_height = 0;
  int64_t in_width = 0;
  int64_t filters = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t pad = 1;          ///< padding in pixels
  int act_bits_in = 3;
  int act_bits_out = 3;
  float in_scale = 1.0f;    ///< real value of input code 1
  float out_scale = 1.0f;   ///< real value of output code 1
  bool bipolar = false;     ///< W1A1 ±scale codes in and out (valid conv only)
  bool pool_after = false;
  int64_t pool_size = 2;
  int64_t pool_stride = 2;

  gemm::ConvGeometry conv_geometry() const;
  /// Conv output extents (before pooling).
  int64_t conv_out_height() const { return conv_geometry().out_height(); }
  int64_t conv_out_width() const { return conv_geometry().out_width(); }
  /// Final output shape including the optional pool.
  Shape output_shape() const;
};

/// Timing model of the accelerator invocation path.
struct CycleModel {
  double clock_mhz = 300.0;
  Folding folding{32, 36};
  /// DDR streaming width for weights and feature maps (bits per cycle).
  double ddr_bits_per_cycle = 64.0;
  /// Fixed per-layer invocation overhead (driver call, DMA setup, flush).
  int64_t invocation_overhead_cycles = 150000;
};

/// Per-layer timing breakdown of one engine pass over `batch` frames.
/// compute / feature-map DMA / pool scale with the batch; the weight
/// stream and the invocation overhead are paid once per pass — that
/// amortization is the whole point of gang-scheduled batching.
struct LayerPerf {
  int64_t batch = 1;               ///< frames covered by this pass
  int64_t compute_cycles = 0;      ///< scales with batch
  int64_t weight_dma_cycles = 0;   ///< one weight-streaming phase per pass
  int64_t fmap_dma_cycles = 0;     ///< scales with batch
  int64_t overhead_cycles = 0;     ///< one invocation per pass
  int64_t pool_cycles = 0;         ///< scales with batch

  int64_t total_cycles() const {
    return compute_cycles + weight_dma_cycles + fmap_dma_cycles +
           overhead_cycles + pool_cycles;
  }
  double cycles_per_frame() const {
    return static_cast<double>(total_cycles()) / static_cast<double>(batch);
  }
  double weight_dma_per_frame() const {
    return static_cast<double>(weight_dma_cycles) /
           static_cast<double>(batch);
  }
  /// Weight-DMA cycles a sequential per-frame run would have paid extra.
  int64_t dma_saved_cycles() const {
    return (batch - 1) * weight_dma_cycles;
  }
};

class QnnAccelerator {
 public:
  explicit QnnAccelerator(CycleModel model = {}, Device device = {});

  /// Appends an offloaded stage. The weight matrix must be filters ×
  /// (in_channels·K²); thresholds one per filter. Layer shapes must chain.
  void add_layer(const QnnLayerSpec& spec, quant::BinaryMatrix weights,
                 std::vector<ThresholdChannel> thresholds);

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  const QnnLayerSpec& spec(int64_t i) const;
  const Mvtu& mvtu(int64_t i) const;

  Shape input_shape() const;
  Shape output_shape() const;

  /// Bit-exact execution over activation codes (CHW, one code per byte).
  std::vector<uint8_t> forward_codes(const std::vector<uint8_t>& input) const;

  /// Executes layer `i` over `batch` stacked input code maps with a
  /// single weight-streaming phase (weights resident across the batch,
  /// compute per frame). Bit-identical to running the layer per frame;
  /// records the fabric.dma_* amortization telemetry when batch > 1.
  void run_layer_batched(int64_t i, std::span<const uint8_t> inputs,
                         int64_t batch, std::span<uint8_t> outputs) const;

  /// Whole-network batched execution: layer-at-a-time across the batch,
  /// each layer one weight-streaming phase. forward_codes(x) is exactly
  /// forward_codes_batched(x, 1).
  std::vector<uint8_t> forward_codes_batched(
      const std::vector<uint8_t>& inputs, int64_t batch) const;

  /// Convenience float wrapper: quantizes the input onto the first layer's
  /// grid, runs the code path, dequantizes with the last layer's grid.
  Tensor forward(const Tensor& input) const;

  /// Timing of one layer under the cycle model (== layer_perf_batched(i, 1)).
  LayerPerf layer_perf(int64_t i) const;
  /// Timing of one gang-scheduled pass of layer `i` over `batch` frames:
  /// weights stream and the invocation overhead is paid once, compute and
  /// feature-map DMA scale with the batch.
  LayerPerf layer_perf_batched(int64_t i, int64_t batch) const;
  /// Total modeled milliseconds for all offloaded layers of one frame.
  double total_ms() const;

  /// Resource estimate of the single generalized engine (sized by the
  /// largest layer) and how many such engines the device would host.
  Resources engine_resources() const;
  int64_t engines_fitting() const;

  const CycleModel& cycle_model() const { return model_; }
  const Device& device() const { return device_; }

  /// Redirects the fabric.* batching telemetry (fabric.dma_amortized,
  /// fabric.dma_saved_cycles, fabric.batched_passes, fabric.batched_frames)
  /// to `metrics`; null selects the process-wide default registry.
  void set_metrics(telemetry::MetricsRegistry* metrics);

 private:
  struct Stage {
    QnnLayerSpec spec;
    Mvtu mvtu;
    SlidingWindowUnit swu;
  };

  CycleModel model_;
  Device device_;
  std::vector<Stage> layers_;
  telemetry::Counter* dma_amortized_counter_;
  telemetry::Counter* dma_saved_counter_;
  telemetry::Counter* batched_passes_counter_;
  telemetry::Counter* batched_frames_counter_;
};

}  // namespace tincy::fabric
