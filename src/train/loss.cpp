#include "train/loss.hpp"

#include <cmath>

#include "core/errors.hpp"

namespace tincy::train {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

RegionLossResult region_loss(const Tensor& raw,
                             const std::vector<detect::GroundTruth>& truth,
                             const RegionLossConfig& cfg) {
  TINCY_CHECK(raw.shape().rank() == 3);
  const int64_t H = raw.shape().height(), W = raw.shape().width();
  const int64_t cell = H * W;
  const int64_t per_anchor = cfg.coords + 1 + cfg.classes;
  TINCY_CHECK(raw.shape().channels() == cfg.num * per_anchor);
  TINCY_CHECK(static_cast<int64_t>(cfg.anchors.size()) == 2 * cfg.num);

  RegionLossResult r;
  r.grad = Tensor(raw.shape());

  const auto idx = [&](int64_t a, int64_t ch, int64_t i) {
    return (a * per_anchor + ch) * cell + i;
  };

  // Pass 1: every slot starts as a no-object slot.
  double loss = 0.0;
  for (int64_t a = 0; a < cfg.num; ++a) {
    for (int64_t i = 0; i < cell; ++i) {
      const float to = raw[idx(a, cfg.coords, i)];
      const float obj = sigmoid(to);
      loss += cfg.noobject_scale * obj * obj;
      r.grad[idx(a, cfg.coords, i)] =
          cfg.noobject_scale * 2.0f * obj * obj * (1.0f - obj);
    }
  }

  // Pass 2: assign each ground-truth object to (cell, best anchor).
  for (const auto& gt : truth) {
    const auto col = std::min<int64_t>(
        W - 1, static_cast<int64_t>(gt.box.x * static_cast<float>(W)));
    const auto row = std::min<int64_t>(
        H - 1, static_cast<int64_t>(gt.box.y * static_cast<float>(H)));
    const int64_t i = row * W + col;

    // Best anchor by shape-only IoU (boxes co-centered at the origin).
    int64_t best_a = 0;
    float best_shape_iou = -1.0f;
    const detect::Box gt_shape{0, 0, gt.box.w, gt.box.h};
    for (int64_t a = 0; a < cfg.num; ++a) {
      const detect::Box prior{
          0, 0, cfg.anchors[static_cast<size_t>(2 * a)] / static_cast<float>(W),
          cfg.anchors[static_cast<size_t>(2 * a + 1)] / static_cast<float>(H)};
      const float s = detect::iou(gt_shape, prior);
      if (s > best_shape_iou) {
        best_shape_iou = s;
        best_a = a;
      }
    }
    const float pw = cfg.anchors[static_cast<size_t>(2 * best_a)];
    const float ph = cfg.anchors[static_cast<size_t>(2 * best_a + 1)];

    // Coordinate targets in transform space.
    const float tx_t = gt.box.x * static_cast<float>(W) - static_cast<float>(col);
    const float ty_t = gt.box.y * static_cast<float>(H) - static_cast<float>(row);
    const float tw_t = std::log(gt.box.w * static_cast<float>(W) / pw);
    const float th_t = std::log(gt.box.h * static_cast<float>(H) / ph);

    const float tx = raw[idx(best_a, 0, i)];
    const float ty = raw[idx(best_a, 1, i)];
    const float tw = raw[idx(best_a, 2, i)];
    const float th = raw[idx(best_a, 3, i)];
    const float sx = sigmoid(tx), sy = sigmoid(ty);

    loss += cfg.coord_scale * ((sx - tx_t) * (sx - tx_t) +
                               (sy - ty_t) * (sy - ty_t) +
                               (tw - tw_t) * (tw - tw_t) +
                               (th - th_t) * (th - th_t));
    r.grad[idx(best_a, 0, i)] =
        cfg.coord_scale * 2.0f * (sx - tx_t) * sx * (1.0f - sx);
    r.grad[idx(best_a, 1, i)] =
        cfg.coord_scale * 2.0f * (sy - ty_t) * sy * (1.0f - sy);
    r.grad[idx(best_a, 2, i)] = cfg.coord_scale * 2.0f * (tw - tw_t);
    r.grad[idx(best_a, 3, i)] = cfg.coord_scale * 2.0f * (th - th_t);

    // Objectness: overwrite the no-object term for this slot.
    const float to = raw[idx(best_a, cfg.coords, i)];
    const float obj = sigmoid(to);
    loss -= cfg.noobject_scale * obj * obj;  // undo pass 1
    loss += cfg.object_scale * (obj - 1.0f) * (obj - 1.0f);
    r.grad[idx(best_a, cfg.coords, i)] =
        cfg.object_scale * 2.0f * (obj - 1.0f) * obj * (1.0f - obj);

    // Class: softmax cross-entropy.
    float max_z = raw[idx(best_a, cfg.coords + 1, i)];
    for (int64_t c = 1; c < cfg.classes; ++c)
      max_z = std::max(max_z, raw[idx(best_a, cfg.coords + 1 + c, i)]);
    float denom = 0.0f;
    for (int64_t c = 0; c < cfg.classes; ++c)
      denom += std::exp(raw[idx(best_a, cfg.coords + 1 + c, i)] - max_z);
    for (int64_t c = 0; c < cfg.classes; ++c) {
      const float p =
          std::exp(raw[idx(best_a, cfg.coords + 1 + c, i)] - max_z) / denom;
      const float y = c == gt.class_id ? 1.0f : 0.0f;
      if (c == gt.class_id) loss -= cfg.class_scale * std::log(std::max(p, 1e-9f));
      r.grad[idx(best_a, cfg.coords + 1 + c, i)] = cfg.class_scale * (p - y);
    }

    // Diagnostics: IoU of the current prediction against the truth.
    const detect::Box pred{
        (static_cast<float>(col) + sx) / static_cast<float>(W),
        (static_cast<float>(row) + sy) / static_cast<float>(H),
        pw * std::exp(tw) / static_cast<float>(W),
        ph * std::exp(th) / static_cast<float>(H)};
    r.avg_iou += detect::iou(pred, gt.box);
    r.avg_obj += obj;
    ++r.assigned;
  }

  if (r.assigned > 0) {
    r.avg_iou /= static_cast<double>(r.assigned);
    r.avg_obj /= static_cast<double>(r.assigned);
  }
  r.loss = loss;
  return r;
}

ClassLossResult softmax_cross_entropy(const Tensor& logits, int label) {
  const int64_t n = logits.numel();
  TINCY_CHECK_MSG(label >= 0 && label < n, "label " << label);
  ClassLossResult r;
  r.grad = Tensor(logits.shape());

  float max_z = logits[0];
  int best = 0;
  for (int64_t i = 1; i < n; ++i) {
    if (logits[i] > max_z) {
      max_z = logits[i];
      best = static_cast<int>(i);
    }
  }
  r.correct = best == label;

  double denom = 0.0;
  for (int64_t i = 0; i < n; ++i)
    denom += std::exp(static_cast<double>(logits[i]) - max_z);
  for (int64_t i = 0; i < n; ++i) {
    const double p =
        std::exp(static_cast<double>(logits[i]) - max_z) / denom;
    r.grad[i] = static_cast<float>(p) - (i == label ? 1.0f : 0.0f);
    if (i == label) r.loss = -std::log(std::max(p, 1e-12));
  }
  return r;
}

}  // namespace tincy::train
