#pragma once

/// \file layers.hpp
/// Trainable layers with backward passes — the substrate standing in for
/// the paper's off-device GPU (re)training. Quantization-aware training
/// follows Hubara et al. / Courbariaux: binary weights and quantized
/// activations in the forward pass, straight-through estimators (STE) in
/// the backward pass, float master weights updated by the optimizer.

#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "gemm/im2col.hpp"
#include "nn/activation.hpp"

namespace tincy::train {

/// A trainable layer: forward caches whatever backward needs.
class TrainLayer {
 public:
  virtual ~TrainLayer() = default;

  virtual Shape output_shape() const = 0;

  /// Forward for one sample; input kept alive by the caller (Model).
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward: gradient w.r.t. this layer's input, accumulating parameter
  /// gradients internally. Must follow a forward() on the same input.
  virtual Tensor backward(const Tensor& input, const Tensor& grad_out) = 0;

  /// Parameter / gradient / momentum triples for the optimizer; empty for
  /// parameterless layers.
  struct Param {
    Tensor* value;
    Tensor* grad;
    Tensor* momentum;
    bool clamp_unit;  ///< clamp to [-1, 1] after update (binary masters)
  };
  virtual std::vector<Param> params() { return {}; }

  /// Zeroes accumulated parameter gradients.
  virtual void zero_grad() {}
};

/// Quantization configuration of one trainable conv layer.
struct TrainConvConfig {
  int64_t filters = 16;
  int64_t size = 3;
  int64_t stride = 1;
  bool pad = true;
  nn::Activation activation = nn::Activation::kLeaky;
  bool binary_weights = false;  ///< W1 via sign + STE
  int act_bits = 32;            ///< <8: A-bit uniform activation + STE
  float out_scale = 0.2f;       ///< activation grid when act_bits < 8
  /// Learnable per-channel scale α_c on the raw accumulator, the trainable
  /// stand-in for batch norm that binary-weight layers need (it folds into
  /// the activation thresholds at deployment exactly as BN does). Enabled
  /// automatically for binary_weights layers.
  bool channel_scale = false;
  /// W1A1: activations binarize to ±out_scale via sign; backward uses the
  /// hard-tanh straight-through estimator (gradient passes for |pre| ≤ 1).
  /// Requires act_bits == 1 and a linear activation.
  bool bipolar = false;
};

class TrainConvLayer final : public TrainLayer {
 public:
  TrainConvLayer(const TrainConvConfig& cfg, Shape input_shape, Rng& rng);

  Shape output_shape() const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& input, const Tensor& grad_out) override;
  std::vector<Param> params() override;
  void zero_grad() override;

  const TrainConvConfig& config() const { return cfg_; }
  const gemm::ConvGeometry& geometry() const { return geom_; }
  /// Float master weights (filters × patch) and biases.
  const Tensor& weights() const { return weights_; }
  const Tensor& biases() const { return biases_; }

  /// Replaces weights and biases (shapes must match) — warm starts.
  void set_parameters(const Tensor& weights, const Tensor& biases);
  /// Per-channel accumulator scales (empty unless channel_scale).
  const Tensor& channel_scales() const { return scales_; }
  bool has_channel_scale() const { return cfg_.channel_scale; }

 private:
  /// Weights as used in the forward pass (sign(w) when binary).
  Tensor effective_weights() const;

  TrainConvConfig cfg_;
  gemm::ConvGeometry geom_;
  Tensor weights_, biases_;
  Tensor grad_weights_, grad_biases_;
  Tensor mom_weights_, mom_biases_;
  Tensor scales_, grad_scales_, mom_scales_;  // per-channel α

  // Forward caches for backward.
  Tensor cached_columns_;   // im2col of the input
  Tensor cached_acc_;       // raw conv accumulator (before α/bias)
  Tensor cached_preact_;    // pre-activation (α·acc + bias)
  Tensor cached_postact_;   // after activation, before act quantization
};

class TrainMaxPoolLayer final : public TrainLayer {
 public:
  TrainMaxPoolLayer(int64_t size, int64_t stride, Shape input_shape);

  Shape output_shape() const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& input, const Tensor& grad_out) override;

 private:
  int64_t size_, stride_;
  Shape in_shape_;
  int64_t out_h_ = 0, out_w_ = 0;
  std::vector<int64_t> argmax_;  // flat input index winning each output
};

}  // namespace tincy::train
