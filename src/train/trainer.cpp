#include "train/trainer.hpp"

#include <cstdio>

#include "detect/decode.hpp"
#include "detect/map.hpp"
#include "detect/nms.hpp"
#include "nn/region_layer.hpp"

namespace tincy::train {

std::string detector_variant_name(DetectorVariant v) {
  switch (v) {
    case DetectorVariant::kTinyS:
      return "Tiny YOLO (scaled)";
    case DetectorVariant::kA:
      return "Tiny YOLO + (a)";
    case DetectorVariant::kABC:
      return "Tiny YOLO + (a,b,c)";
    case DetectorVariant::kTincyS:
      return "Tincy YOLO (scaled)";
  }
  return "?";
}

bool detector_variant_quantized(DetectorVariant v) {
  return v != DetectorVariant::kTinyS;
}

Model make_detector(DetectorVariant v, DetectorSpec& spec, Rng& rng) {
  const bool mod_a = v != DetectorVariant::kTinyS;
  const bool mod_bc = v == DetectorVariant::kABC || v == DetectorVariant::kTincyS;
  const bool mod_d = v == DetectorVariant::kTincyS;
  const bool quant = detector_variant_quantized(v);
  const nn::Activation act =
      mod_a ? nn::Activation::kRelu : nn::Activation::kLeaky;

  spec.region.classes = spec.num_classes;
  spec.region.coords = 4;
  spec.region.num = 3;
  spec.region.anchors = {1.3f, 1.3f, 2.2f, 2.2f, 3.2f, 3.2f};

  const int64_t S = spec.input_size;
  Model model(Shape{3, S, S});
  Shape shape = model.input_shape();
  const auto add_conv = [&](TrainConvConfig cfg) {
    auto layer = std::make_unique<TrainConvLayer>(cfg, shape, rng);
    shape = layer->output_shape();
    model.add(std::move(layer));
  };
  const auto add_pool = [&] {
    auto layer = std::make_unique<TrainMaxPoolLayer>(2, 2, shape);
    shape = layer->output_shape();
    model.add(std::move(layer));
  };
  const auto hidden = [&](int64_t filters) {
    TrainConvConfig c;
    c.filters = filters;
    c.activation = act;
    if (quant) {
      c.binary_weights = true;
      c.act_bits = 3;
      c.out_scale = 0.2f;
    }
    return c;
  };

  // Input conv: quantization-sensitive, always float.
  {
    TrainConvConfig c;
    c.filters = 8;
    c.stride = mod_d ? 2 : 1;
    c.activation = act;
    add_conv(c);
    if (!mod_d) add_pool();
  }
  // Hidden ladder, mirroring (b) and (c).
  add_conv(hidden(mod_bc ? 32 : 16));
  add_pool();
  add_conv(hidden(32));
  add_pool();
  add_conv(hidden(mod_bc ? 32 : 64));
  add_conv(hidden(mod_bc ? 32 : 64));
  // Output conv: 1×1, linear, float.
  {
    TrainConvConfig c;
    c.filters = spec.region.num * (spec.region.coords + 1 + spec.num_classes);
    c.size = 1;
    c.activation = nn::Activation::kLinear;
    add_conv(c);
  }
  return model;
}

TrainConfig default_train_config(DetectorVariant v, int64_t steps) {
  TrainConfig cfg;
  cfg.steps = steps;
  cfg.batch = 2;
  cfg.learning_rate = detector_variant_quantized(v) ? 0.001f : 0.01f;
  return cfg;
}

TrainResult train_detector(Model& model, const DetectorSpec& spec,
                           const data::SynthVoc& dataset,
                           const TrainConfig& cfg) {
  Sgd optimizer({cfg.learning_rate, cfg.momentum, cfg.weight_decay});
  TrainResult result;
  double tail_loss = 0.0;
  int64_t tail_count = 0;
  int64_t sample_index = 0;

  for (int64_t step = 0; step < cfg.steps; ++step) {
    // Linear warmup then constant LR with a single 10x decay at 80 %.
    float lr = cfg.learning_rate;
    if (step < cfg.warmup_steps)
      lr *= static_cast<float>(step + 1) / static_cast<float>(cfg.warmup_steps);
    else if (step >= cfg.steps * 8 / 10)
      lr *= 0.1f;
    optimizer.set_learning_rate(lr);

    model.zero_grad();
    double step_loss = 0.0;
    for (int64_t b = 0; b < cfg.batch; ++b) {
      const data::SynthSample sample = dataset.sample(sample_index++);
      const Tensor& out = model.forward(sample.image, /*training=*/true);
      RegionLossResult lr_res = region_loss(out, sample.objects, spec.region);
      step_loss += lr_res.loss;
      // Mean over the batch.
      for (int64_t i = 0; i < lr_res.grad.numel(); ++i)
        lr_res.grad[i] /= static_cast<float>(cfg.batch);
      model.backward(lr_res.grad);
    }
    optimizer.step(model.params());
    step_loss /= static_cast<double>(cfg.batch);

    if (step >= cfg.steps - 50) {
      tail_loss += step_loss;
      ++tail_count;
    }
    if (cfg.verbose && (step % 100 == 0 || step == cfg.steps - 1))
      std::printf("  step %4lld  loss %.4f  lr %.4f\n",
                  static_cast<long long>(step), step_loss,
                  static_cast<double>(lr));
  }
  result.final_loss = tail_count > 0 ? tail_loss / static_cast<double>(tail_count) : 0.0;
  result.steps = cfg.steps;
  return result;
}

double evaluate_map(Model& model, const DetectorSpec& spec,
                    const data::SynthVoc& dataset, int64_t num_images,
                    float detect_threshold, float nms_iou) {
  // Region squashing reuses the inference layer for exact parity.
  nn::RegionConfig rc;
  rc.classes = spec.region.classes;
  rc.coords = spec.region.coords;
  rc.num = spec.region.num;
  rc.anchors = spec.region.anchors;
  nn::RegionLayer region(rc, model.output_shape());

  std::vector<detect::ImageEval> evals;
  evals.reserve(static_cast<size_t>(num_images));
  // Evaluation draws from a disjoint index range (offset far past any
  // training stream position).
  const int64_t offset = 1'000'000;
  for (int64_t i = 0; i < num_images; ++i) {
    const data::SynthSample sample = dataset.sample(offset + i);
    const Tensor& raw = model.forward(sample.image, /*training=*/false);
    Tensor squashed(raw.shape());
    region.forward(raw, squashed);
    auto dets = detect::decode_region(squashed, rc, detect_threshold);
    dets = detect::nms(std::move(dets), nms_iou);
    evals.push_back({std::move(dets), sample.objects});
  }
  return detect::mean_average_precision(evals, spec.num_classes);
}

}  // namespace tincy::train
