#pragma once

/// \file trainer.hpp
/// Scaled-down Tiny/Tincy YOLO detector variants, the training loop, and
/// the mAP evaluation used to reproduce the *shape* of Table IV on the
/// SynthVOC substitution dataset.
///
/// The scaled variants preserve the paper's §III-E modifications exactly:
/// (a) leaky ReLU → ReLU; (b) the second conv's output channels doubled;
/// (c) the last two hidden convs' channels halved; (d) first maxpool
/// dropped + first conv stride 2. Hidden layers are trained W1A3 (binary
/// weights via STE, 3-bit activations) for the quantized rows of the
/// table; the first and last layers stay float (quantization-sensitive).

#include <string>

#include "data/synthvoc.hpp"
#include "train/loss.hpp"
#include "train/model.hpp"
#include "train/optimizer.hpp"

namespace tincy::train {

/// The Table IV rows, scaled down.
enum class DetectorVariant {
  kTinyS,    ///< "Tiny YOLO"        — float, leaky ReLU
  kA,        ///< "Tiny YOLO + (a)"  — ReLU, W1A3 hidden
  kABC,      ///< "Tiny YOLO + (a,b,c)" — W1A3 hidden
  kTincyS,   ///< "Tincy YOLO"       — + (d), W1A3 hidden
};

std::string detector_variant_name(DetectorVariant v);

/// True for the variants whose hidden layers are quantized (all but kTinyS).
bool detector_variant_quantized(DetectorVariant v);

struct DetectorSpec {
  int64_t input_size = 48;  ///< square input; /8 = output grid
  int num_classes = 3;
  RegionLossConfig region;  ///< anchors filled by make_detector
};

/// Builds the scaled detector for a variant; fills `spec.region.anchors`.
Model make_detector(DetectorVariant v, DetectorSpec& spec, Rng& rng);

struct TrainConfig {
  int64_t steps = 600;        ///< optimizer steps
  int64_t batch = 2;          ///< samples accumulated per step
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  int64_t warmup_steps = 50;  ///< linear LR ramp
  bool verbose = false;
};

struct TrainResult {
  double final_loss = 0.0;  ///< mean loss over the last 50 steps
  int64_t steps = 0;
};

/// Hyperparameters that work for the variant class: float detectors train
/// at lr 0.01; W1A3 detectors need lr 0.001 (binary masters flip signs at
/// higher rates) and no weight decay on the binary masters (built into
/// Sgd). Steps default to 800; scale as budget allows.
TrainConfig default_train_config(DetectorVariant v, int64_t steps = 800);

/// Trains `model` on the dataset with the region loss.
TrainResult train_detector(Model& model, const DetectorSpec& spec,
                           const data::SynthVoc& dataset,
                           const TrainConfig& cfg);

/// Evaluates VOC-2007 mAP of the model over `num_images` dataset samples.
double evaluate_map(Model& model, const DetectorSpec& spec,
                    const data::SynthVoc& dataset, int64_t num_images,
                    float detect_threshold = 0.1f, float nms_iou = 0.45f);

}  // namespace tincy::train
