#pragma once

/// \file optimizer.hpp
/// SGD with momentum and weight decay, plus the [−1, 1] master-weight
/// clamp that binary-weight training requires (Courbariaux et al.).

#include <vector>

#include "train/layers.hpp"

namespace tincy::train {

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Per-element gradient clamp (0 disables). Detection losses spike when
  /// an object lands on a fresh cell; clipping keeps STE training stable.
  float grad_clip = 1.0f;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig cfg) : cfg_(cfg) {}

  /// One update over the given parameters; gradients are consumed as-is
  /// (callers average over the batch beforehand if desired).
  void step(const std::vector<TrainLayer::Param>& params);

  void set_learning_rate(float lr) { cfg_.learning_rate = lr; }
  const SgdConfig& config() const { return cfg_; }

 private:
  SgdConfig cfg_;
};

}  // namespace tincy::train
