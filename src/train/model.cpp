#include "train/model.hpp"

#include "core/errors.hpp"
#include "nn/conv_layer.hpp"

namespace tincy::train {

void Model::add(std::unique_ptr<TrainLayer> layer) {
  TINCY_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Shape Model::output_shape() const {
  TINCY_CHECK(!layers_.empty());
  return layers_.back()->output_shape();
}

const Tensor& Model::forward(const Tensor& input, bool training) {
  TINCY_CHECK(!layers_.empty());
  activations_.clear();
  activations_.push_back(input);
  for (auto& layer : layers_)
    activations_.push_back(layer->forward(activations_.back(), training));
  return activations_.back();
}

void Model::backward(const Tensor& grad_out) {
  TINCY_CHECK_MSG(activations_.size() == layers_.size() + 1,
                  "backward without forward");
  Tensor grad = grad_out;
  for (int64_t i = num_layers() - 1; i >= 0; --i)
    grad = layers_[static_cast<size_t>(i)]->backward(
        activations_[static_cast<size_t>(i)], grad);
}

void Model::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::vector<TrainLayer::Param> Model::params() {
  std::vector<TrainLayer::Param> all;
  for (auto& layer : layers_)
    for (auto& p : layer->params()) all.push_back(p);
  return all;
}

int64_t Model::warm_start_from(const Model& source) {
  // Pair conv layers by order of appearance.
  std::vector<const TrainConvLayer*> src_convs;
  for (const auto& layer : source.layers_)
    if (const auto* conv = dynamic_cast<const TrainConvLayer*>(layer.get()))
      src_convs.push_back(conv);

  int64_t copied = 0;
  size_t si = 0;
  for (auto& layer : layers_) {
    auto* dst = dynamic_cast<TrainConvLayer*>(layer.get());
    if (!dst) continue;
    if (si >= src_convs.size()) break;
    const TrainConvLayer* src = src_convs[si++];
    if (src->weights().shape() == dst->weights().shape()) {
      dst->set_parameters(src->weights(), src->biases());
      ++copied;
    }
  }
  return copied;
}

void Model::export_to(nn::Network& net) const {
  // Walk both layer lists, pairing trainable convs with inference convs.
  int64_t ni = 0;
  for (const auto& layer : layers_) {
    const auto* tconv = dynamic_cast<const TrainConvLayer*>(layer.get());
    if (!tconv) continue;  // pools carry no parameters
    nn::ConvLayer* target = nullptr;
    while (ni < net.num_layers()) {
      target = dynamic_cast<nn::ConvLayer*>(&net.layer(ni++));
      if (target) break;
    }
    TINCY_CHECK_MSG(target != nullptr,
                    "inference network has fewer conv layers than the model");
    TINCY_CHECK_MSG(target->weights().shape() == tconv->weights().shape(),
                    "conv shape mismatch: " +
                        target->weights().shape().to_string() + " vs " +
                        tconv->weights().shape().to_string());
    target->weights() = tconv->weights();
    target->biases() = tconv->biases();
    if (tconv->has_channel_scale()) {
      // The trained per-channel scale deploys as degenerate batch norm
      // (mean 0, unit variance): scale·acc + bias — which the quantized
      // inference layer folds into its thresholds.
      TINCY_CHECK_MSG(target->config().batch_normalize,
                      "channel-scaled conv must export into a BN conv");
      target->bn_scales() = tconv->channel_scales();
      target->bn_mean().fill(0.0f);
      target->bn_var().fill(1.0f - nn::kBatchNormEps);
    } else {
      TINCY_CHECK_MSG(!target->config().batch_normalize,
                      "export_to expects batch-norm-free inference layers");
    }
    target->invalidate_cached_quantization();
  }
}

}  // namespace tincy::train
