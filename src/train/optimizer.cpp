#include "train/optimizer.hpp"

#include <algorithm>

namespace tincy::train {

void Sgd::step(const std::vector<TrainLayer::Param>& params) {
  for (const auto& p : params) {
    Tensor& w = *p.value;
    Tensor& g = *p.grad;
    Tensor& v = *p.momentum;
    for (int64_t i = 0; i < w.numel(); ++i) {
      float raw = g[i];
      if (cfg_.grad_clip > 0.0f)
        raw = std::clamp(raw, -cfg_.grad_clip, cfg_.grad_clip);
      // No decay on binary master weights: shrinking them toward zero only
      // causes gratuitous sign flips (Courbariaux et al.).
      const float decay = p.clamp_unit ? 0.0f : cfg_.weight_decay;
      const float grad = raw + decay * w[i];
      v[i] = cfg_.momentum * v[i] - cfg_.learning_rate * grad;
      w[i] += v[i];
      if (p.clamp_unit) w[i] = std::clamp(w[i], -1.0f, 1.0f);
    }
  }
}

}  // namespace tincy::train
