#pragma once

/// \file model.hpp
/// A trainable stack of layers plus transfer of trained parameters into an
/// inference nn::Network (the deploy step: float masters → binarized
/// weights and thresholds on the fabric).

#include <memory>
#include <vector>

#include "nn/network.hpp"
#include "train/layers.hpp"

namespace tincy::train {

class Model {
 public:
  explicit Model(Shape input_shape) : input_shape_(input_shape) {}

  void add(std::unique_ptr<TrainLayer> layer);

  Shape input_shape() const { return input_shape_; }
  Shape output_shape() const;
  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  TrainLayer& layer(int64_t i) { return *layers_[static_cast<size_t>(i)]; }

  /// Forward one sample; caches per-layer activations when training.
  const Tensor& forward(const Tensor& input, bool training);

  /// Backpropagates d(loss)/d(output); parameter gradients accumulate.
  void backward(const Tensor& grad_out);

  void zero_grad();

  /// All trainable parameters (for the optimizer).
  std::vector<TrainLayer::Param> params();

  /// Warm start: copies conv weights/biases from `source` wherever the
  /// i-th conv layers of both models have identical shapes (the paper's
  /// methodology — quantized variants are *retrained from* the trained
  /// float network, not from scratch). Returns the number of conv layers
  /// copied; mismatched layers keep their fresh initialization.
  int64_t warm_start_from(const Model& source);

  /// Copies trained parameters into an inference network with identical
  /// topology (conv layers must match filters/size/stride in order;
  /// pooling layers are matched positionally; the region layer has no
  /// parameters). Conv layers in `net` get bias := trained bias and
  /// weights := float masters; quantized inference layers then derive
  /// their binarized form and thresholds from these.
  void export_to(nn::Network& net) const;

 private:
  Shape input_shape_;
  std::vector<std::unique_ptr<TrainLayer>> layers_;
  std::vector<Tensor> activations_;  // [0]=input copy, [i+1]=layer i output
};

}  // namespace tincy::train
