#include "train/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gemm/gemm_ref.hpp"
#include "quant/thresholds.hpp"

namespace tincy::train {

TrainConvLayer::TrainConvLayer(const TrainConvConfig& cfg, Shape input_shape,
                               Rng& rng)
    : cfg_(cfg) {
  if (cfg_.binary_weights) cfg_.channel_scale = true;
  if (cfg_.bipolar) {
    TINCY_CHECK_MSG(cfg_.act_bits == 1, "bipolar requires act_bits=1");
    TINCY_CHECK_MSG(cfg_.activation == nn::Activation::kLinear,
                    "bipolar layers use the sign itself as activation");
  }
  TINCY_CHECK(input_shape.rank() == 3);
  geom_.in_channels = input_shape.channels();
  geom_.in_height = input_shape.height();
  geom_.in_width = input_shape.width();
  geom_.kernel = cfg.size;
  geom_.stride = cfg.stride;
  geom_.pad = cfg.pad ? cfg.size / 2 : 0;

  const Shape wshape{cfg.filters, geom_.patch_size()};
  weights_ = Tensor(wshape);
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(geom_.patch_size()));
  for (int64_t i = 0; i < weights_.numel(); ++i)
    weights_[i] = rng.normal(0.0f, stddev);
  biases_ = Tensor(Shape{cfg.filters});
  grad_weights_ = Tensor(wshape);
  grad_biases_ = Tensor(Shape{cfg.filters});
  mom_weights_ = Tensor(wshape);
  mom_biases_ = Tensor(Shape{cfg.filters});
  if (cfg_.channel_scale) {
    // α ≈ 1/√fan_in keeps binary accumulators in the activation range.
    scales_ = Tensor(Shape{cfg.filters},
                     1.0f / std::sqrt(static_cast<float>(geom_.patch_size())));
    grad_scales_ = Tensor(Shape{cfg.filters});
    mom_scales_ = Tensor(Shape{cfg.filters});
  }
}

Shape TrainConvLayer::output_shape() const {
  return Shape{cfg_.filters, geom_.out_height(), geom_.out_width()};
}

void TrainConvLayer::set_parameters(const Tensor& weights,
                                    const Tensor& biases) {
  TINCY_CHECK_MSG(weights.shape() == weights_.shape(),
                  weights.shape().to_string() << " vs "
                                              << weights_.shape().to_string());
  TINCY_CHECK(biases.shape() == biases_.shape());
  weights_ = weights;
  biases_ = biases;
}

Tensor TrainConvLayer::effective_weights() const {
  if (!cfg_.binary_weights) return weights_;
  Tensor w(weights_.shape());
  for (int64_t i = 0; i < w.numel(); ++i)
    w[i] = weights_[i] >= 0.0f ? 1.0f : -1.0f;
  return w;
}

Tensor TrainConvLayer::forward(const Tensor& input, bool training) {
  const int64_t n = geom_.num_patches();
  cached_columns_ = gemm::im2col(input, geom_);
  const Tensor w = effective_weights();

  Tensor acc(output_shape());
  gemm::gemm_ref(cfg_.filters, n, geom_.patch_size(), w.data(),
                 cached_columns_.data(), acc.data());
  Tensor pre(acc.shape());
  for (int64_t c = 0; c < cfg_.filters; ++c) {
    const float alpha = cfg_.channel_scale ? scales_[c] : 1.0f;
    for (int64_t j = 0; j < n; ++j)
      pre[c * n + j] = alpha * acc[c * n + j] + biases_[c];
  }
  if (training && cfg_.channel_scale) cached_acc_ = acc;

  Tensor post(pre.shape());
  for (int64_t i = 0; i < pre.numel(); ++i)
    post[i] = nn::apply(cfg_.activation, pre[i]);

  if (training) {
    cached_preact_ = pre;
    cached_postact_ = post;
  }

  if (cfg_.bipolar) {
    const quant::BipolarActQuant q{cfg_.out_scale};
    for (int64_t i = 0; i < post.numel(); ++i)
      post[i] = q.dequantize(q.quantize(post[i]));
  } else if (cfg_.act_bits < 8) {
    // QAT: quantize-dequantize onto the A-bit grid (STE in backward).
    const quant::UniformActQuant q{cfg_.act_bits, cfg_.out_scale};
    for (int64_t i = 0; i < post.numel(); ++i)
      post[i] = q.dequantize(q.quantize(post[i]));
  }
  return post;
}

Tensor TrainConvLayer::backward(const Tensor& input, const Tensor& grad_out) {
  TINCY_CHECK_MSG(cached_preact_.numel() == grad_out.numel(),
                  "backward without matching forward");
  const int64_t n = geom_.num_patches();
  const int64_t patch = geom_.patch_size();

  // STE through the activation quantizer.
  Tensor delta = grad_out;
  if (cfg_.bipolar) {
    // Hard-tanh STE: gradient passes while the pre-activation is in the
    // linear window of the binarizer.
    for (int64_t i = 0; i < delta.numel(); ++i)
      if (std::fabs(cached_preact_[i]) > 1.0f) delta[i] = 0.0f;
  } else if (cfg_.act_bits < 8) {
    // Pass gradient inside the representable range [0, levels·scale].
    const float hi =
        cfg_.out_scale * static_cast<float>((1 << cfg_.act_bits) - 1);
    for (int64_t i = 0; i < delta.numel(); ++i) {
      const float v = cached_postact_[i];
      if (v < 0.0f || v > hi) delta[i] = 0.0f;
    }
  }
  // Through the activation function.
  for (int64_t i = 0; i < delta.numel(); ++i)
    delta[i] *= nn::derivative(cfg_.activation, cached_preact_[i]);

  // Bias gradient (pre = α_c · acc + b_c, so db_c = Σ_j delta) — taken
  // before delta is scaled through α below.
  for (int64_t c = 0; c < cfg_.filters; ++c) {
    const float* drow = delta.data() + c * n;
    float bias_sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) bias_sum += drow[j];
    grad_biases_[c] += bias_sum;
  }

  // Through the per-channel scale: dα_c = Σ_j delta ⊙ acc; d(acc) = α_c·delta.
  if (cfg_.channel_scale) {
    for (int64_t c = 0; c < cfg_.filters; ++c) {
      float* drow = delta.data() + c * n;
      const float* arow = cached_acc_.data() + c * n;
      float galpha = 0.0f;
      for (int64_t j = 0; j < n; ++j) galpha += drow[j] * arow[j];
      grad_scales_[c] += galpha;
      const float alpha = scales_[c];
      for (int64_t j = 0; j < n; ++j) drow[j] *= alpha;
    }
  }

  // Weight gradients: dW += delta · columnsᵀ (STE: onto the float masters).
  const Tensor w = effective_weights();
  for (int64_t c = 0; c < cfg_.filters; ++c) {
    const float* drow = delta.data() + c * n;
    float* gw = grad_weights_.data() + c * patch;
    for (int64_t k = 0; k < patch; ++k) {
      const float* col_row = cached_columns_.data() + k * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += drow[j] * col_row[j];
      gw[k] += acc;  // STE: gradient lands on the float master weights
    }
  }

  // Input gradient: columns_grad = Wᵀ · delta, then col2im.
  Tensor col_grad(Shape{patch, n});
  for (int64_t k = 0; k < patch; ++k) {
    float* crow = col_grad.data() + k * n;
    for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (int64_t c = 0; c < cfg_.filters; ++c) {
      const float wv = w[c * patch + k];
      const float* drow = delta.data() + c * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += wv * drow[j];
    }
  }
  Tensor grad_in(input.shape());
  gemm::col2im(col_grad.data(), geom_, grad_in.data());
  return grad_in;
}

std::vector<TrainLayer::Param> TrainConvLayer::params() {
  std::vector<Param> p{
      {&weights_, &grad_weights_, &mom_weights_, cfg_.binary_weights},
      {&biases_, &grad_biases_, &mom_biases_, false},
  };
  if (cfg_.channel_scale)
    p.push_back({&scales_, &grad_scales_, &mom_scales_, false});
  return p;
}

void TrainConvLayer::zero_grad() {
  grad_weights_.fill(0.0f);
  grad_biases_.fill(0.0f);
  if (cfg_.channel_scale) grad_scales_.fill(0.0f);
}

TrainMaxPoolLayer::TrainMaxPoolLayer(int64_t size, int64_t stride,
                                     Shape input_shape)
    : size_(size), stride_(stride), in_shape_(input_shape) {
  const int64_t padding = size - 1;
  out_h_ = (input_shape.height() + padding - size) / stride + 1;
  out_w_ = (input_shape.width() + padding - size) / stride + 1;
}

Shape TrainMaxPoolLayer::output_shape() const {
  return Shape{in_shape_.channels(), out_h_, out_w_};
}

Tensor TrainMaxPoolLayer::forward(const Tensor& input, bool training) {
  const int64_t C = in_shape_.channels(), H = in_shape_.height(),
                W = in_shape_.width();
  const int64_t pad_left = (size_ - 1) / 2;
  Tensor out(output_shape());
  argmax_.assign(static_cast<size_t>(out.numel()), -1);
  for (int64_t c = 0; c < C; ++c) {
    for (int64_t oh = 0; oh < out_h_; ++oh) {
      for (int64_t ow = 0; ow < out_w_; ++ow) {
        float best = -std::numeric_limits<float>::infinity();
        int64_t best_idx = -1;
        for (int64_t kh = 0; kh < size_; ++kh) {
          const int64_t ih = oh * stride_ - pad_left + kh;
          if (ih < 0 || ih >= H) continue;
          for (int64_t kw = 0; kw < size_; ++kw) {
            const int64_t iw = ow * stride_ - pad_left + kw;
            if (iw < 0 || iw >= W) continue;
            const int64_t idx = (c * H + ih) * W + iw;
            if (input[idx] > best) {
              best = input[idx];
              best_idx = idx;
            }
          }
        }
        // NaN inputs make every comparison false; pin the argmax to the
        // first valid tap so backward never sees a poisoned index.
        if (best_idx < 0) {
          const int64_t ih = std::clamp<int64_t>(oh * stride_ - pad_left, 0, H - 1);
          const int64_t iw = std::clamp<int64_t>(ow * stride_ - pad_left, 0, W - 1);
          best_idx = (c * H + ih) * W + iw;
          best = input[best_idx];
        }
        const int64_t oidx = (c * out_h_ + oh) * out_w_ + ow;
        out[oidx] = best;
        argmax_[static_cast<size_t>(oidx)] = best_idx;
      }
    }
  }
  (void)training;
  return out;
}

Tensor TrainMaxPoolLayer::backward(const Tensor& input,
                                   const Tensor& grad_out) {
  TINCY_CHECK_MSG(static_cast<int64_t>(argmax_.size()) == grad_out.numel(),
                  "backward without matching forward");
  Tensor grad_in(input.shape());
  for (int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in[argmax_[static_cast<size_t>(i)]] += grad_out[i];
  return grad_in;
}

}  // namespace tincy::train
