#pragma once

/// \file loss.hpp
/// YOLOv2-style region detection loss over the raw (pre-squash) output
/// feature map, with its exact gradient — the training counterpart of the
/// region layer.

#include <vector>

#include "core/tensor.hpp"
#include "detect/box.hpp"

namespace tincy::train {

struct RegionLossConfig {
  int64_t classes = 3;
  int64_t coords = 4;
  int64_t num = 3;             ///< anchors per cell
  std::vector<float> anchors;  ///< 2·num priors in cell units
  float object_scale = 5.0f;
  float noobject_scale = 1.0f;
  float coord_scale = 1.0f;
  float class_scale = 1.0f;
};

struct RegionLossResult {
  double loss = 0.0;
  Tensor grad;        ///< d(loss)/d(raw feature map)
  double avg_iou = 0.0;     ///< mean IoU of assigned predictions
  double avg_obj = 0.0;     ///< mean objectness at assigned slots
  int64_t assigned = 0;     ///< ground-truth objects assigned
};

/// Computes loss and gradient for one sample. `raw` is the (pre-region)
/// conv output of shape (num·(coords+1+classes), H, W); ground truth boxes
/// are normalized. Assignment: each object goes to the anchor of its cell
/// whose prior shape best matches (standard YOLOv2 rule); objectness is
/// driven to 1 there (weighted object_scale), to 0 elsewhere
/// (noobject_scale); coordinates use MSE in transform space; classes use
/// softmax cross-entropy.
RegionLossResult region_loss(const Tensor& raw,
                             const std::vector<detect::GroundTruth>& truth,
                             const RegionLossConfig& cfg);

/// Softmax cross-entropy over raw class logits (for the MLP-4 / CNV-6
/// classification workloads). Returns the loss and d(loss)/d(logits).
struct ClassLossResult {
  double loss = 0.0;
  Tensor grad;
  bool correct = false;  ///< argmax(logits) == label
};

ClassLossResult softmax_cross_entropy(const Tensor& logits, int label);

}  // namespace tincy::train
