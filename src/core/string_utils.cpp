#include "core/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "core/errors.hpp"

namespace tincy {

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_key_value(std::string_view line, std::string& key,
                     std::string& value) {
  const size_t eq = line.find('=');
  if (eq == std::string_view::npos) return false;
  key = std::string(trim(line.substr(0, eq)));
  value = std::string(trim(line.substr(eq + 1)));
  return true;
}

int64_t parse_int(std::string_view s) {
  s = trim(s);
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  TINCY_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
                  "not an integer: '" << std::string(s) << "'");
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  // std::from_chars for double is not universally complete in libstdc++ 12
  // for all formats; strtod on a bounded copy is fine here (cfg files only).
  const std::string copy(s);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  TINCY_CHECK_MSG(end == copy.c_str() + copy.size() && !copy.empty(),
                  "not a number: '" << copy << "'");
  return value;
}

std::string with_commas(int64_t n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  const int len = static_cast<int>(digits.size());
  for (int i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[static_cast<size_t>(i)];
  }
  return neg ? "-" + out : out;
}

}  // namespace tincy
