#pragma once

/// \file thread_pool.hpp
/// Small shared worker pool with an allocation-free parallel_for, used to
/// shard GEMM work across the A53 cluster's idle cores (§III-D runs the
/// quantization-sensitive first/last layers on the CPU while the fabric
/// handles the hidden layers; the other three cores were previously idle).
///
/// Design constraints, in order:
///  * zero heap allocations on the submit path — a steady-state frame must
///    not allocate, so jobs are stack-resident descriptors linked into an
///    intrusive list and chunk indices are claimed with a fetch_add;
///  * safe to call from several threads at once (the pipeline/serve worker
///    pools invoke GEMM concurrently; all their calls share this one pool,
///    so the process never oversubscribes the cores);
///  * the calling thread always participates, so `parallel_for` with an
///    empty pool degrades to a plain loop (TINCY_GEMM_THREADS=1).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace tincy::core {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the caller; the pool
  /// spawns `threads - 1` workers. 0 picks the default (see default_threads).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  int threads() const { return num_threads_; }

  /// Runs body(begin..end) sharded into `chunks` contiguous blocks; the
  /// caller executes blocks alongside the workers and returns only when
  /// every block is done. `body(lo, hi)` receives half-open index ranges.
  /// Allocation-free; re-entrant calls from a worker run inline.
  void parallel_for(int64_t begin, int64_t end, int64_t chunks,
                    void (*body)(int64_t lo, int64_t hi, void* ctx),
                    void* ctx);

  /// The process-wide pool shared by every GEMM call. Sized once, from
  /// TINCY_GEMM_THREADS when set, else min(hardware_concurrency, 4) — the
  /// paper's quad-A53 envelope — so pipeline workers' nested GEMM calls
  /// share one bounded set of threads.
  static ThreadPool& shared();

  /// Default size of shared(): TINCY_GEMM_THREADS clamped to [1, 64], or
  /// min(hardware_concurrency, 4).
  static int default_threads();

 private:
  /// One parallel_for invocation: lives on the caller's stack.
  struct Job {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t chunk = 0;  ///< ceil-divided block size
    void (*body)(int64_t, int64_t, void*) = nullptr;
    void* ctx = nullptr;
    std::atomic<int64_t> next_block{0};   ///< next block index to claim
    std::atomic<int64_t> in_flight{0};    ///< blocks claimed, not finished
    int64_t num_blocks = 0;
    Job* next = nullptr;  ///< intrusive pending-list link
  };

  /// Claims and runs blocks of `job` until none remain; returns when the
  /// claimed blocks are done (other threads may still be running theirs).
  static void run_blocks(Job& job);

  void worker_loop();

  int num_threads_ = 1;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: pending list non-empty
  std::condition_variable done_cv_;  ///< callers: a job fully drained
  Job* pending_ = nullptr;           ///< intrusive FIFO of submitted jobs
  Job* pending_tail_ = nullptr;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tincy::core
