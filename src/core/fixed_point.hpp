#pragma once

/// \file fixed_point.hpp
/// Fixed-point arithmetic helpers with ARM-NEON-compatible semantics.
///
/// The paper's specialized first-layer kernel accumulates 8-bit products in
/// 16-bit lanes and must "perform a rounding right shift by 4 bit positions
/// before accumulation" to avoid destructive overflow — exactly the
/// semantics of NEON's VRSHR (rounding shift right) and VQMOVN (saturating
/// narrow). These helpers reproduce those instructions bit-exactly so the
/// CPU kernels and their tests agree with what the A53 would compute.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace tincy {

/// Rounding arithmetic right shift (NEON VRSHR): adds the half-ulp
/// (1 << (n-1)) before shifting, i.e. round-half-up toward +inf.
/// n == 0 returns x unchanged.
template <typename T>
constexpr T rounding_right_shift(T x, int n) {
  static_assert(std::is_signed_v<T> && std::is_integral_v<T>);
  if (n <= 0) return x;
  using Wide = std::conditional_t<(sizeof(T) < 8), int64_t, T>;
  const Wide rounded = static_cast<Wide>(x) + (Wide{1} << (n - 1));
  return static_cast<T>(rounded >> n);
}

/// Saturating cast to a narrower signed/unsigned integer (NEON VQMOVN /
/// VQMOVUN): clamps to the target's representable range.
template <typename To, typename From>
constexpr To saturate_cast(From x) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  using Wide = std::conditional_t<std::is_signed_v<From>, int64_t, uint64_t>;
  const Wide w = static_cast<Wide>(x);
  const Wide lo = static_cast<Wide>(std::numeric_limits<To>::min());
  const Wide hi = static_cast<Wide>(std::numeric_limits<To>::max());
  return static_cast<To>(std::clamp(w, lo, hi));
}

/// Saturating signed addition in the given type (NEON VQADD).
template <typename T>
constexpr T saturating_add(T a, T b) {
  static_assert(std::is_signed_v<T> && sizeof(T) <= 4);
  const int64_t s = static_cast<int64_t>(a) + static_cast<int64_t>(b);
  return saturate_cast<T>(s);
}

/// Saturating rounding doubling high multiply (NEON VQRDMULH), the core of
/// gemmlowp-style output requantization: returns round((a*b*2) / 2^32)
/// saturated to int32.
constexpr int32_t saturating_rounding_doubling_high_mul(int32_t a, int32_t b) {
  const bool overflow = a == b && a == std::numeric_limits<int32_t>::min();
  if (overflow) return std::numeric_limits<int32_t>::max();
  const int64_t ab = static_cast<int64_t>(a) * static_cast<int64_t>(b);
  const int64_t nudge = ab >= 0 ? (1ll << 30) : (1 - (1ll << 30));
  return static_cast<int32_t>((ab + nudge) >> 31);
}

/// gemmlowp-style fixed-point multiply by (multiplier * 2^-shift) where
/// multiplier is a Q0.31 value in [2^30, 2^31): the standard requantization
/// step mapping an int32 accumulator to an int32 in the output scale.
constexpr int32_t multiply_by_quantized_multiplier(int32_t x,
                                                   int32_t multiplier,
                                                   int shift) {
  const int32_t prod = saturating_rounding_doubling_high_mul(x, multiplier);
  return rounding_right_shift(prod, shift);
}

}  // namespace tincy
