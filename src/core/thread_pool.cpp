#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace tincy::core {

namespace {

/// Set inside worker_loop so nested parallel_for calls from a worker run
/// inline instead of re-entering the queue.
thread_local bool tls_pool_worker = false;

}  // namespace

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("TINCY_GEMM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min<long>(v, 64));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  // The paper's envelope is the quad-core A53 cluster; stay within it by
  // default so the pipeline/serve worker pools keep cores of their own.
  return static_cast<int>(std::min<unsigned>(std::max(hw, 1u), 4u));
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_threads());
  return pool;
}

ThreadPool::ThreadPool(int threads)
    : num_threads_(threads > 0 ? threads : default_threads()) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(int64_t begin, int64_t end, int64_t chunks,
                              void (*body)(int64_t, int64_t, void*),
                              void* ctx) {
  const int64_t count = end - begin;
  if (count <= 0) return;
  int64_t num_blocks = std::clamp<int64_t>(chunks, 1, count);
  if (workers_.empty() || num_blocks == 1 || tls_pool_worker) {
    body(begin, end, ctx);
    return;
  }

  // Stack-resident job descriptor: every field below is only touched under
  // mutex_ (the invariant making the pool allocation-free and TSan-clean).
  Job job;
  job.begin = begin;
  job.end = end;
  job.chunk = (count + num_blocks - 1) / num_blocks;
  num_blocks = (count + job.chunk - 1) / job.chunk;
  job.num_blocks = num_blocks;
  job.body = body;
  job.ctx = ctx;
  job.next_block.store(0, std::memory_order_relaxed);
  job.in_flight.store(num_blocks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_tail_) pending_tail_->next = &job;
    else pending_ = &job;
    pending_tail_ = &job;
  }
  work_cv_.notify_all();

  // The caller participates: claim blocks of its own job until none left,
  // then wait for blocks claimed by workers to drain.
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const int64_t b = job.next_block.load(std::memory_order_relaxed);
    if (b >= job.num_blocks) break;
    job.next_block.store(b + 1, std::memory_order_relaxed);
    if (b + 1 >= job.num_blocks) {
      // Last block claimed: unlink the job so workers stop seeing it.
      Job** p = &pending_;
      while (*p && *p != &job) p = &(*p)->next;
      if (*p) {
        *p = job.next;
        if (pending_tail_ == &job)
          for (pending_tail_ = pending_; pending_tail_ && pending_tail_->next;)
            pending_tail_ = pending_tail_->next;
        if (!pending_) pending_tail_ = nullptr;
      }
    }
    lock.unlock();
    const int64_t lo = job.begin + b * job.chunk;
    const int64_t hi = std::min(job.end, lo + job.chunk);
    body(lo, hi, ctx);
    lock.lock();
    if (job.in_flight.fetch_sub(1, std::memory_order_relaxed) == 1)
      done_cv_.notify_all();
  }
  done_cv_.wait(lock, [&job] {
    return job.in_flight.load(std::memory_order_relaxed) == 0;
  });
}

void ThreadPool::worker_loop() {
  tls_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || pending_ != nullptr; });
    if (stopping_ && pending_ == nullptr) return;
    Job* job = pending_;
    const int64_t b = job->next_block.load(std::memory_order_relaxed);
    job->next_block.store(b + 1, std::memory_order_relaxed);
    if (b + 1 >= job->num_blocks) {
      // Head exhausted: pop it (a job in the list always has a free block,
      // so the head is the job we just drained).
      pending_ = job->next;
      if (!pending_) pending_tail_ = nullptr;
    }
    lock.unlock();
    const int64_t lo = job->begin + b * job->chunk;
    const int64_t hi = std::min(job->end, lo + job->chunk);
    job->body(lo, hi, job->ctx);
    lock.lock();
    if (job->in_flight.fetch_sub(1, std::memory_order_relaxed) == 1)
      done_cv_.notify_all();
  }
}

}  // namespace tincy::core
