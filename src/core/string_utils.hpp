#pragma once

/// \file string_utils.hpp
/// Small string helpers for the Darknet-style .cfg parser and tooling.

#include <string>
#include <string_view>
#include <vector>

namespace tincy {

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Splits on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses "key=value" (whitespace-tolerant). Returns false if there is no
/// '=' in the line.
bool parse_key_value(std::string_view line, std::string& key,
                     std::string& value);

/// Strict integer parse; throws tincy::Error on garbage.
int64_t parse_int(std::string_view s);

/// Strict float parse; throws tincy::Error on garbage.
double parse_double(std::string_view s);

/// Formats a count with thousands separators, e.g. 6971272984 ->
/// "6,971,272,984" (used when printing the paper's tables).
std::string with_commas(int64_t n);

}  // namespace tincy
