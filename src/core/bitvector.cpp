#include "core/bitvector.hpp"

#include <bit>

namespace tincy {

BitVector::BitVector(int64_t size) : size_(size) {
  TINCY_CHECK_MSG(size >= 0, "size " << size);
  words_.resize(static_cast<size_t>((size + 63) / 64), 0);
}

bool BitVector::get(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < size_, "bit index " << i << " of " << size_);
  return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1u;
}

void BitVector::set(int64_t i, bool value) {
  TINCY_CHECK_MSG(i >= 0 && i < size_, "bit index " << i << " of " << size_);
  const uint64_t mask = 1ull << (i & 63);
  auto& w = words_[static_cast<size_t>(i >> 6)];
  w = value ? (w | mask) : (w & ~mask);
}

int64_t BitVector::popcount() const {
  int64_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

int64_t popcount_and(const BitVector& a, const BitVector& b) {
  TINCY_CHECK(a.size_ == b.size_);
  int64_t n = 0;
  for (size_t i = 0; i < a.words_.size(); ++i)
    n += std::popcount(a.words_[i] & b.words_[i]);
  return n;
}

int64_t popcount_andnot(const BitVector& a, const BitVector& b) {
  TINCY_CHECK(a.size_ == b.size_);
  int64_t n = 0;
  for (size_t i = 0; i < a.words_.size(); ++i)
    n += std::popcount(~a.words_[i] & b.words_[i]);
  return n;
}

int64_t xnor_popcount(const BitVector& a, const BitVector& b) {
  TINCY_CHECK(a.size_ == b.size_);
  if (a.size_ == 0) return 0;
  int64_t n = 0;
  const size_t last = a.words_.size() - 1;
  for (size_t i = 0; i < last; ++i)
    n += std::popcount(~(a.words_[i] ^ b.words_[i]));
  // Mask the tail of the final word so the padding bits do not count.
  const int tail_bits = static_cast<int>(a.size_ - static_cast<int64_t>(last) * 64);
  const uint64_t mask =
      tail_bits == 64 ? ~0ull : ((1ull << tail_bits) - 1);
  n += std::popcount(~(a.words_[last] ^ b.words_[last]) & mask);
  return n;
}

int64_t signed_binary_dot(const BitVector& sign_bits,
                          const BitVector& activation_plane) {
  return popcount_and(sign_bits, activation_plane) -
         popcount_andnot(sign_bits, activation_plane);
}

}  // namespace tincy
