#pragma once

/// \file tensor.hpp
/// Dense, owning tensor over a contiguous buffer in row-major (CHW/NCHW)
/// layout. This is the common currency between all layers and kernels.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/errors.hpp"
#include "core/shape.hpp"

namespace tincy {

/// Dense owning tensor of element type T, row-major in the order the shape
/// lists its dimensions (so CHW shapes are channel-major like Darknet).
template <typename T>
class TensorT {
 public:
  TensorT() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit TensorT(Shape shape)
      : shape_(shape), data_(static_cast<size_t>(shape.numel())) {}

  /// Allocates a tensor filled with `value`.
  TensorT(Shape shape, T value)
      : shape_(shape), data_(static_cast<size_t>(shape.numel()), value) {}

  const Shape& shape() const { return shape_; }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  /// Flat element access with bounds check.
  T& at(int64_t i) {
    TINCY_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i);
    return data_[static_cast<size_t>(i)];
  }
  const T& at(int64_t i) const {
    TINCY_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i);
    return data_[static_cast<size_t>(i)];
  }

  /// Unchecked flat access for hot loops.
  T& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  const T& operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// CHW access on a rank-3 tensor.
  T& at(int64_t c, int64_t h, int64_t w) {
    return data_[static_cast<size_t>(chw_index(c, h, w))];
  }
  const T& at(int64_t c, int64_t h, int64_t w) const {
    return data_[static_cast<size_t>(chw_index(c, h, w))];
  }

  /// (row, col) access on a rank-2 tensor.
  T& at2(int64_t r, int64_t c) {
    TINCY_CHECK(shape_.rank() == 2);
    return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
  }
  const T& at2(int64_t r, int64_t c) const {
    TINCY_CHECK(shape_.rank() == 2);
    return data_[static_cast<size_t>(r * shape_.dim(1) + c)];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshape in place; the element count must be preserved.
  void reshape(Shape new_shape) {
    TINCY_CHECK_MSG(new_shape.numel() == numel(),
                    shape_.to_string() << " -> " << new_shape.to_string());
    shape_ = new_shape;
  }

  bool operator==(const TensorT& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

 private:
  int64_t chw_index(int64_t c, int64_t h, int64_t w) const {
    TINCY_CHECK(shape_.rank() == 3);
    const int64_t H = shape_.dim(1), W = shape_.dim(2);
    TINCY_CHECK_MSG(c >= 0 && c < shape_.dim(0) && h >= 0 && h < H && w >= 0 &&
                        w < W,
                    "(" << c << ',' << h << ',' << w << ") in "
                        << shape_.to_string());
    return (c * H + h) * W + w;
  }

  Shape shape_;
  std::vector<T> data_;
};

using Tensor = TensorT<float>;
using TensorU8 = TensorT<uint8_t>;
using TensorI8 = TensorT<int8_t>;
using TensorI16 = TensorT<int16_t>;
using TensorI32 = TensorT<int32_t>;

}  // namespace tincy
