#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation (xoshiro256**). All
/// stochastic components of the framework (weight init, synthetic data,
/// stress tests) draw from this so runs are reproducible from a seed.

#include <cstdint>

namespace tincy {

/// xoshiro256** generator seeded via SplitMix64. Satisfies the needs of
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x7113C401D2018ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit value.
  uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller.
  float normal();

  /// Normal with the given mean and standard deviation.
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace tincy
