#include "core/shape.hpp"

#include <sstream>

namespace tincy {

Shape::Shape(std::initializer_list<int64_t> dims) {
  TINCY_CHECK_MSG(static_cast<int>(dims.size()) <= kMaxRank,
                  "shape rank " << dims.size() << " exceeds " << kMaxRank);
  for (int64_t d : dims) {
    TINCY_CHECK_MSG(d >= 0, "negative dimension " << d);
    dims_[rank_++] = d;
  }
}

int64_t Shape::dim(int axis) const {
  if (axis < 0) axis += rank_;
  TINCY_CHECK_MSG(axis >= 0 && axis < rank_,
                  "axis " << axis << " out of range for rank " << rank_);
  return dims_[axis];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (int i = 0; i < rank_; ++i)
    if (dims_[i] != other.dims_[i]) return false;
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '(';
  for (int i = 0; i < rank_; ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace tincy
