#pragma once

/// \file shape.hpp
/// Tensor shape in CHW / NCHW convention used throughout the framework.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "core/errors.hpp"

namespace tincy {

/// Dense tensor shape with up to four dimensions.
///
/// Feature maps follow Darknet's channel-major convention: a 3-d shape is
/// (channels, height, width); a 4-d shape prepends the batch dimension.
/// A 1-d shape is a flat vector, 2-d is (rows, cols) for matrices.
class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;

  /// Constructs a shape from explicit dimensions, e.g. Shape{3, 416, 416}.
  Shape(std::initializer_list<int64_t> dims);

  /// Number of dimensions (0 for an empty shape).
  int rank() const { return rank_; }

  /// Dimension extent; negative axes count from the back (-1 == last).
  int64_t dim(int axis) const;

  int64_t operator[](int axis) const { return dim(axis); }

  /// Total element count (1 for a rank-0 shape).
  int64_t numel() const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Renders as e.g. "(3, 416, 416)".
  std::string to_string() const;

  // --- Feature-map helpers (CHW or NCHW) ---

  /// Channel count of a CHW/NCHW shape.
  int64_t channels() const { return dim(rank_ - 3); }
  /// Height of a CHW/NCHW shape.
  int64_t height() const { return dim(rank_ - 2); }
  /// Width of a CHW/NCHW shape.
  int64_t width() const { return dim(rank_ - 1); }

 private:
  std::array<int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace tincy
