#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace tincy {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

uint64_t Rng::operator()() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(uniform()) * (hi - lo);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>((*this)() % range);
}

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  have_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

}  // namespace tincy
