#pragma once

/// \file bitvector.hpp
/// Bit-packed vectors with population-count kernels. These model the
/// on-fabric storage of binarized weights and activation bit-planes inside
/// the FINN-style accelerator: a binary dot product becomes an XNOR +
/// popcount over 64-bit words.

#include <cstdint>
#include <vector>

#include "core/errors.hpp"

namespace tincy {

/// Fixed-length packed bit vector (little-endian within each 64-bit word).
class BitVector {
 public:
  BitVector() = default;

  /// Creates an all-zero vector of `size` bits.
  explicit BitVector(int64_t size);

  int64_t size() const { return size_; }

  bool get(int64_t i) const;
  void set(int64_t i, bool value);

  /// Number of set bits.
  int64_t popcount() const;

  /// Raw packed words; trailing bits past size() are guaranteed zero.
  const std::vector<uint64_t>& words() const { return words_; }

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  friend int64_t popcount_and(const BitVector&, const BitVector&);
  friend int64_t popcount_andnot(const BitVector&, const BitVector&);
  friend int64_t xnor_popcount(const BitVector&, const BitVector&);

  int64_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// popcount(a & b) — bits set in both vectors. Sizes must match.
int64_t popcount_and(const BitVector& a, const BitVector& b);

/// popcount(~a & b) — bits set in b but not a. Sizes must match.
int64_t popcount_andnot(const BitVector& a, const BitVector& b);

/// popcount(~(a ^ b)) over the first size() bits — the agreement count used
/// by fully binarized (W1A1) dot products. Sizes must match.
int64_t xnor_popcount(const BitVector& a, const BitVector& b);

/// Signed binary dot product of ±1 weights (bit=1 means +1, bit=0 means −1)
/// with a {0,1} activation bit-plane: Σ w_i·a_i = popcount(w∧a) − popcount(¬w∧a).
int64_t signed_binary_dot(const BitVector& sign_bits,
                          const BitVector& activation_plane);

}  // namespace tincy
