#pragma once

/// \file errors.hpp
/// Error handling primitives shared by all tincy libraries.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tincy {

/// Exception type thrown by all tincy components on contract violations,
/// malformed input files, or configuration errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace tincy

/// Runtime contract check that throws tincy::Error with source location.
/// Active in all build types: these guard file parsing and user-facing API
/// misuse, not hot inner loops.
#define TINCY_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::tincy::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Like TINCY_CHECK but with a streamed message: TINCY_CHECK_MSG(x>0, "x=" << x).
#define TINCY_CHECK_MSG(expr, stream_expr)                        \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream tincy_check_os_;                         \
      tincy_check_os_ << stream_expr;                             \
      ::tincy::detail::throw_check_failure(#expr, __FILE__,       \
                                           __LINE__,              \
                                           tincy_check_os_.str()); \
    }                                                             \
  } while (0)
