#include "quant/ternary.hpp"

#include <cmath>

namespace tincy::quant {

double TernaryMatrix::sparsity() const {
  if (rows == 0 || cols == 0) return 0.0;
  int64_t zeros = 0;
  for (const auto& nz : nonzero) zeros += nz.size() - nz.popcount();
  return static_cast<double>(zeros) / static_cast<double>(rows * cols);
}

TernaryMatrix ternarize(const Tensor& weights, bool with_scale) {
  TINCY_CHECK(weights.shape().rank() == 2);
  TernaryMatrix m;
  m.rows = weights.shape().dim(0);
  m.cols = weights.shape().dim(1);
  for (int64_t r = 0; r < m.rows; ++r) {
    double abs_sum = 0.0;
    for (int64_t c = 0; c < m.cols; ++c) abs_sum += std::fabs(weights.at2(r, c));
    const double delta =
        m.cols > 0 ? 0.7 * abs_sum / static_cast<double>(m.cols) : 0.0;

    BitVector nz(m.cols), pos(m.cols);
    double surviving_sum = 0.0;
    int64_t surviving = 0;
    for (int64_t c = 0; c < m.cols; ++c) {
      const float w = weights.at2(r, c);
      if (std::fabs(w) > delta) {
        nz.set(c, true);
        pos.set(c, w > 0.0f);
        surviving_sum += std::fabs(w);
        ++surviving;
      }
    }
    m.nonzero.push_back(std::move(nz));
    m.positive.push_back(std::move(pos));
    m.row_scale.push_back(
        with_scale && surviving > 0
            ? static_cast<float>(surviving_sum / static_cast<double>(surviving))
            : 1.0f);
  }
  return m;
}

Tensor dequantize(const TernaryMatrix& m) {
  Tensor t(Shape{m.rows, m.cols});
  for (int64_t r = 0; r < m.rows; ++r)
    for (int64_t c = 0; c < m.cols; ++c) t.at2(r, c) = m.value(r, c);
  return t;
}

int64_t dot_bitplane(const TernaryMatrix& m, int64_t row,
                     const BitVector& plane) {
  TINCY_CHECK_MSG(row >= 0 && row < m.rows, "row " << row);
  const auto ri = static_cast<size_t>(row);
  const int64_t pos = popcount_and(m.positive[ri], plane);
  // Negative weights are nonzero ∧ ¬positive.
  int64_t nonzero_hits = popcount_and(m.nonzero[ri], plane);
  return pos - (nonzero_hits - pos);
}

}  // namespace tincy::quant
