#include "quant/thresholds.hpp"

#include <algorithm>
#include <cmath>

namespace tincy::quant {

uint8_t UniformActQuant::quantize(float x) const {
  const float code = std::round(x / scale);
  return static_cast<uint8_t>(
      std::clamp(code, 0.0f, static_cast<float>(levels())));
}

TensorU8 quantize_activations(const Tensor& t, const UniformActQuant& q) {
  TensorU8 out(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) out[i] = q.quantize(t[i]);
  return out;
}

Tensor dequantize_activations(const TensorU8& t, const UniformActQuant& q) {
  Tensor out(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) out[i] = q.dequantize(t[i]);
  return out;
}

uint8_t ThresholdSet::apply(int32_t acc) const {
  // Thresholds are ascending, so the level is the partition point. The
  // count is at most 2^A − 1 and fits a byte for any sane A.
  const auto it =
      std::upper_bound(thresholds.begin(), thresholds.end(), acc);
  return static_cast<uint8_t>(it - thresholds.begin());
}

ThresholdSet fold_to_thresholds(int act_bits, float acc_scale, float bias,
                                float out_scale) {
  TINCY_CHECK_MSG(act_bits >= 1 && act_bits <= 8, "act_bits " << act_bits);
  TINCY_CHECK_MSG(acc_scale > 0.0f && out_scale > 0.0f,
                  acc_scale << ", " << out_scale);
  ThresholdSet ts;
  const int levels = (1 << act_bits) - 1;
  ts.thresholds.reserve(static_cast<size_t>(levels));
  for (int k = 1; k <= levels; ++k) {
    // Level k is reached when round((acc_scale*acc + bias)/out_scale) >= k,
    // i.e. acc >= (out_scale*(k − 0.5) − bias) / acc_scale.
    const double real_threshold =
        (static_cast<double>(out_scale) * (k - 0.5) - bias) / acc_scale;
    ts.thresholds.push_back(
        static_cast<int32_t>(std::ceil(real_threshold - 1e-9)));
  }
  return ts;
}

std::vector<BitVector> to_bitplanes(const uint8_t* codes, int64_t n,
                                    int bits) {
  std::vector<BitVector> planes;
  planes.reserve(static_cast<size_t>(bits));
  for (int b = 0; b < bits; ++b) planes.emplace_back(n);
  for (int64_t i = 0; i < n; ++i)
    for (int b = 0; b < bits; ++b)
      if ((codes[i] >> b) & 1) planes[static_cast<size_t>(b)].set(i, true);
  return planes;
}

std::vector<uint8_t> from_bitplanes(const std::vector<BitVector>& planes) {
  TINCY_CHECK(!planes.empty());
  const int64_t n = planes.front().size();
  std::vector<uint8_t> codes(static_cast<size_t>(n), 0);
  for (size_t b = 0; b < planes.size(); ++b) {
    TINCY_CHECK(planes[b].size() == n);
    for (int64_t i = 0; i < n; ++i)
      if (planes[b].get(i))
        codes[static_cast<size_t>(i)] |= static_cast<uint8_t>(1u << b);
  }
  return codes;
}

}  // namespace tincy::quant
