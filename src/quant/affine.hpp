#pragma once

/// \file affine.hpp
/// Affine (scale + zero-point) quantization in the gemmlowp style used by
/// the paper's 8-bit first/last-layer CPU path: real = scale * (q - zero).

#include <cstdint>

#include "core/tensor.hpp"

namespace tincy::quant {

/// Parameters of an affine uint8 quantization: real = scale * (q - zero_point).
struct AffineParams {
  float scale = 1.0f;
  int32_t zero_point = 0;

  /// Quantizes one real value (round-to-nearest, clamped to [0, 255]).
  uint8_t quantize(float real) const;

  /// Reconstructs the real value of a quantized code.
  float dequantize(uint8_t q) const { return scale * (static_cast<int32_t>(q) - zero_point); }

  bool operator==(const AffineParams&) const = default;
};

/// Chooses quantization parameters covering [rmin, rmax] such that 0.0 is
/// exactly representable (required so zero padding stays exact), following
/// the gemmlowp recipe. The range is widened to include 0 if necessary.
AffineParams choose_affine_params(float rmin, float rmax);

/// Observed min/max of a tensor (for calibration). Empty tensors yield {0,0}.
std::pair<float, float> min_max(const Tensor& t);

/// Quantizes a whole tensor to uint8 codes.
TensorU8 quantize(const Tensor& t, const AffineParams& params);

/// Dequantizes uint8 codes back to floats.
Tensor dequantize(const TensorU8& t, const AffineParams& params);

/// Computes the gemmlowp-style integer output pipeline constants for
/// requantizing an int32 accumulator of (lhs-zl)*(rhs-zr) products into a
/// uint8 output tensor: q_out = zo + sat(round(acc * M)) with the real
/// multiplier M = (sl*sr/so) expressed as a Q0.31 multiplier and a right
/// shift. M must be in (0, 1) which holds for all practical layer scales.
struct Requantizer {
  int32_t multiplier = 0;  ///< Q0.31 fixed-point multiplier in [2^30, 2^31).
  int right_shift = 0;     ///< Post-multiply rounding right shift.
  int32_t output_zero_point = 0;

  /// Maps one accumulator value to a uint8 output code.
  uint8_t apply(int32_t acc) const;
};

/// Builds a requantizer for M = lhs_scale*rhs_scale/out_scale (must be < 1).
Requantizer make_requantizer(float lhs_scale, float rhs_scale,
                             const AffineParams& out);

}  // namespace tincy::quant
