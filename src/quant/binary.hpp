#pragma once

/// \file binary.hpp
/// Binary (±1) weight quantization as used by the paper's hidden layers
/// ("the network weights are, indeed, binarized") and pioneered by
/// Hubara et al. / Rastegari et al.

#include <vector>

#include "core/bitvector.hpp"
#include "core/tensor.hpp"

namespace tincy::quant {

/// A matrix of ±1 weights stored bit-packed row by row: bit=1 encodes +1,
/// bit=0 encodes −1. Optional per-row scaling factors (XNOR-Net style
/// alpha = mean |w|) let dequantized magnitudes approximate the originals.
struct BinaryMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<BitVector> row_bits;  ///< rows entries of cols bits each.
  std::vector<float> row_scale;     ///< rows entries; 1.0 for plain ±1.

  /// Signed value of element (r, c): ±row_scale[r].
  float value(int64_t r, int64_t c) const {
    return row_bits[static_cast<size_t>(r)].get(c)
               ? row_scale[static_cast<size_t>(r)]
               : -row_scale[static_cast<size_t>(r)];
  }
};

/// Binarizes a float matrix (rank-2 tensor) by sign; w==0 maps to +1.
/// If with_scale, each row carries alpha_r = mean_c |w_rc| (XNOR-Net),
/// otherwise all scales are 1.
BinaryMatrix binarize(const Tensor& weights, bool with_scale = false);

/// Reconstructs the (scaled) ±1 float matrix for reference computations.
Tensor dequantize(const BinaryMatrix& m);

/// Integer dot product of one binary row with a {0,1} activation bit-plane;
/// see signed_binary_dot in core/bitvector.hpp.
int64_t dot_bitplane(const BinaryMatrix& m, int64_t row,
                     const BitVector& plane);

}  // namespace tincy::quant
