#include "quant/binary.hpp"

#include <cmath>

namespace tincy::quant {

BinaryMatrix binarize(const Tensor& weights, bool with_scale) {
  TINCY_CHECK(weights.shape().rank() == 2);
  BinaryMatrix m;
  m.rows = weights.shape().dim(0);
  m.cols = weights.shape().dim(1);
  m.row_bits.reserve(static_cast<size_t>(m.rows));
  m.row_scale.reserve(static_cast<size_t>(m.rows));
  for (int64_t r = 0; r < m.rows; ++r) {
    BitVector bits(m.cols);
    double abs_sum = 0.0;
    for (int64_t c = 0; c < m.cols; ++c) {
      const float w = weights.at2(r, c);
      bits.set(c, w >= 0.0f);
      abs_sum += std::fabs(w);
    }
    m.row_bits.push_back(std::move(bits));
    m.row_scale.push_back(
        with_scale && m.cols > 0
            ? static_cast<float>(abs_sum / static_cast<double>(m.cols))
            : 1.0f);
  }
  return m;
}

Tensor dequantize(const BinaryMatrix& m) {
  Tensor t(Shape{m.rows, m.cols});
  for (int64_t r = 0; r < m.rows; ++r)
    for (int64_t c = 0; c < m.cols; ++c) t.at2(r, c) = m.value(r, c);
  return t;
}

int64_t dot_bitplane(const BinaryMatrix& m, int64_t row,
                     const BitVector& plane) {
  TINCY_CHECK_MSG(row >= 0 && row < m.rows, "row " << row);
  return signed_binary_dot(m.row_bits[static_cast<size_t>(row)], plane);
}

}  // namespace tincy::quant
