#pragma once

/// \file ternary.hpp
/// Ternary weight networks (Li et al., TWN) — the "smallest possible
/// retreat" from full binarization discussed in the paper's related work
/// and adopted by Alemdar / Prost-Boucle et al. for FPGAs. Included so the
/// accelerator substrate covers the full precision spectrum the paper
/// positions itself in.

#include <vector>

#include "core/bitvector.hpp"
#include "core/tensor.hpp"

namespace tincy::quant {

/// A matrix of {−1, 0, +1} weights stored as two bit-planes per row:
/// nonzero mask and sign (1 = positive). Per-row scale alpha follows TWN.
struct TernaryMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<BitVector> nonzero;  ///< bit c set iff w_rc != 0.
  std::vector<BitVector> positive; ///< bit c set iff w_rc > 0 (subset of nonzero).
  std::vector<float> row_scale;

  float value(int64_t r, int64_t c) const {
    const auto ri = static_cast<size_t>(r);
    if (!nonzero[ri].get(c)) return 0.0f;
    return positive[ri].get(c) ? row_scale[ri] : -row_scale[ri];
  }

  /// Fraction of zero weights — the sparsity ternarization buys.
  double sparsity() const;
};

/// Ternarizes with the TWN rule: threshold Δ_r = 0.7 · mean_c |w_rc|;
/// weights with |w| ≤ Δ become 0, the rest keep their sign. The scale is
/// alpha_r = mean |w| over surviving weights (1.0 if with_scale is false).
TernaryMatrix ternarize(const Tensor& weights, bool with_scale = true);

/// Reconstructs the float matrix for reference computations.
Tensor dequantize(const TernaryMatrix& m);

/// Σ w_i · a_i for one row against a {0,1} activation bit-plane, using two
/// masked popcounts (pos∧a minus neg∧a) — the fabric-friendly form.
int64_t dot_bitplane(const TernaryMatrix& m, int64_t row,
                     const BitVector& plane);

}  // namespace tincy::quant
