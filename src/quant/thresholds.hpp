#pragma once

/// \file thresholds.hpp
/// FINN-style multi-threshold activation quantization.
///
/// In the FINN architecture the paper's accelerator derives from, a
/// quantized activation function (and any preceding batch-norm and bias)
/// collapses into a set of integer thresholds applied to the raw dot
/// product accumulator: the A-bit output level is simply the number of
/// thresholds the accumulator reaches. This file provides the uniform
/// activation quantizer used on feature maps (the paper's 3-bit data),
/// the threshold form of it over integer accumulators, and bit-plane
/// decomposition for XNOR-popcount dot products.

#include <cstdint>
#include <vector>

#include "core/bitvector.hpp"
#include "core/tensor.hpp"

namespace tincy::quant {

/// Uniform unsigned activation quantizer: code = clamp(round(x / scale),
/// 0, 2^bits − 1). Models the paper's 3-bit feature-map data (A3); ReLU is
/// implicit in the clamping at 0.
struct UniformActQuant {
  int bits = 3;
  float scale = 1.0f;

  int levels() const { return (1 << bits) - 1; }
  uint8_t quantize(float x) const;
  float dequantize(uint8_t code) const { return scale * static_cast<float>(code); }
};

/// Quantizes a float feature map into A-bit codes (stored one per byte).
TensorU8 quantize_activations(const Tensor& t, const UniformActQuant& q);

/// Reconstructs float values from A-bit codes.
Tensor dequantize_activations(const TensorU8& t, const UniformActQuant& q);

/// Ascending integer thresholds mapping an int32 accumulator to an A-bit
/// level: level(acc) = |{ k : acc >= thresholds[k] }|. One instance per
/// output channel in the MVTU.
struct ThresholdSet {
  std::vector<int32_t> thresholds;  ///< size 2^A − 1, ascending.

  /// The quantized output level of a raw accumulator.
  uint8_t apply(int32_t acc) const;
};

/// Builds the ThresholdSet equivalent to `scale_out`-uniform quantization of
/// (acc_scale * acc + bias) after ReLU: level k is reached when
/// acc_scale*acc + bias >= scale_out*(k − 0.5), i.e. the standard FINN
/// fold of bias/batch-norm + activation into thresholds.
ThresholdSet fold_to_thresholds(int act_bits, float acc_scale, float bias,
                                float out_scale);

/// Bipolar (±1) activation quantizer — the fully binarized W1A1 encoding
/// of Hubara et al. used by the MLP-4 / CNV-6 workloads: bit 1 encodes
/// +scale, bit 0 encodes −scale. With ±1 weights the dot product becomes
/// 2·xnor_popcount − n.
struct BipolarActQuant {
  float scale = 1.0f;

  uint8_t quantize(float x) const { return x >= 0.0f ? 1 : 0; }
  float dequantize(uint8_t code) const { return code ? scale : -scale; }
};

/// Splits a vector of A-bit activation codes into A bit-planes; plane b
/// holds bit b of every code. This is the input format of the bit-serial
/// MVTU dot product.
std::vector<BitVector> to_bitplanes(const uint8_t* codes, int64_t n, int bits);

/// Reassembles codes from bit-planes (inverse of to_bitplanes).
std::vector<uint8_t> from_bitplanes(const std::vector<BitVector>& planes);

}  // namespace tincy::quant
