#include "quant/affine.hpp"

#include <cmath>

#include "core/fixed_point.hpp"

namespace tincy::quant {

uint8_t AffineParams::quantize(float real) const {
  const float q = std::round(real / scale) + static_cast<float>(zero_point);
  return static_cast<uint8_t>(std::clamp(q, 0.0f, 255.0f));
}

AffineParams choose_affine_params(float rmin, float rmax) {
  // Widen the range to include zero so that 0.0 has an exact code.
  rmin = std::min(rmin, 0.0f);
  rmax = std::max(rmax, 0.0f);
  if (rmin == rmax) return {1.0f, 0};

  AffineParams p;
  p.scale = (rmax - rmin) / 255.0f;
  // zero_point is the code whose dequantized value is exactly 0.
  const float zp = -rmin / p.scale;
  p.zero_point = static_cast<int32_t>(std::lround(std::clamp(zp, 0.0f, 255.0f)));
  return p;
}

std::pair<float, float> min_max(const Tensor& t) {
  if (t.empty()) return {0.0f, 0.0f};
  float lo = t[0], hi = t[0];
  for (int64_t i = 1; i < t.numel(); ++i) {
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  return {lo, hi};
}

TensorU8 quantize(const Tensor& t, const AffineParams& params) {
  TensorU8 q(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) q[i] = params.quantize(t[i]);
  return q;
}

Tensor dequantize(const TensorU8& t, const AffineParams& params) {
  Tensor r(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) r[i] = params.dequantize(t[i]);
  return r;
}

uint8_t Requantizer::apply(int32_t acc) const {
  const int32_t scaled =
      multiply_by_quantized_multiplier(acc, multiplier, right_shift);
  return saturate_cast<uint8_t>(static_cast<int64_t>(scaled) +
                                output_zero_point);
}

Requantizer make_requantizer(float lhs_scale, float rhs_scale,
                             const AffineParams& out) {
  const double m = static_cast<double>(lhs_scale) * rhs_scale / out.scale;
  TINCY_CHECK_MSG(m > 0.0 && m < 1.0, "real multiplier " << m);
  // Normalize m into [0.5, 1) * 2^-shift, then express as Q0.31.
  int shift = 0;
  double frac = m;
  while (frac < 0.5) {
    frac *= 2.0;
    ++shift;
  }
  Requantizer r;
  const auto q31 = static_cast<int64_t>(std::lround(frac * (1ll << 31)));
  // Rounding can push frac to exactly 2^31; fold back into the shift.
  if (q31 == (1ll << 31)) {
    r.multiplier = 1 << 30;
    r.right_shift = shift - 1;
  } else {
    r.multiplier = static_cast<int32_t>(q31);
    r.right_shift = shift;
  }
  r.output_zero_point = out.zero_point;
  return r;
}

}  // namespace tincy::quant
