#pragma once

/// \file zoo.hpp
/// Model zoo: cfg generators for every topology the paper evaluates.
///
/// Tiny YOLO variants follow §III-E: (a) leaky ReLU → ReLU; (b) layer-3
/// output channels 32 → 64; (c) layers 13 & 14 channels 1024 → 512;
/// (d) drop the first maxpool and give the first conv stride 2. Tincy
/// YOLO is (a)+(b)+(c)+(d). MLP-4 and CNV-6 are the earlier FINN show
/// cases of Table II (MNIST MLP and the CIFAR-10-class CNN).
///
/// All zoo networks are produced as cfg text and built through the parser,
/// so the cfg path is exercised by every consumer.

#include <memory>
#include <string>

#include "core/rng.hpp"
#include "nn/network.hpp"

namespace tincy::nn::zoo {

enum class TinyVariant {
  kTiny,   ///< original Tiny YOLO
  kA,      ///< + (a)
  kABC,    ///< + (a, b, c)
  kTincy,  ///< + (a, b, c, d) — Tincy YOLO
};

enum class QuantMode {
  kFloat,  ///< all layers float
  kW1A3,   ///< hidden layers binary weights / 3-bit activations
};

/// Execution-kernel profile for the CPU layers.
enum class CpuProfile {
  kReference,  ///< Darknet generic path everywhere
  kFused,      ///< fused NEON-style float kernels
  kOptimized,  ///< specialized first layer (acc16) + lowp output layer
};

/// cfg text for a Tiny/Tincy YOLO variant at the given input resolution
/// (the paper uses 416; tests use smaller multiples of 32).
std::string tiny_yolo_cfg(TinyVariant v, QuantMode q, int input_size = 416,
                          CpuProfile p = CpuProfile::kReference);

/// cfg text for the fully binarized 4-layer MNIST MLP (Table II MLP-4).
std::string mlp4_cfg();

/// cfg text for the 6-conv CIFAR-10-class network (Table II CNV-6):
/// 8-bit first conv, W1A1 everywhere else.
std::string cnv6_cfg();

/// Human-readable variant name ("Tiny YOLO", "Tincy YOLO", ...).
std::string variant_name(TinyVariant v);

/// Builds a zoo network and leaves weights zero (enough for ops counting).
std::unique_ptr<Network> build(const std::string& cfg_text);

/// He-initializes all conv/connected weights and batch-norm statistics.
void randomize(Network& net, Rng& rng);

}  // namespace tincy::nn::zoo
