#pragma once

/// \file precision.hpp
/// Precision classes used to bucket dot-product work the way the paper's
/// Table II does: aggressively quantized ("reduced") operations such as
/// W1A1/W1A3 versus conservative 8-bit operations versus float.

#include <cstdint>
#include <string>

namespace tincy::nn {

/// Weight/activation bit-width descriptor. 32 bits denotes float.
struct Precision {
  int weight_bits = 32;
  int act_bits = 32;

  bool is_float() const { return weight_bits >= 32 && act_bits >= 32; }

  /// Reduced-precision in the paper's sense: below 8 bits, i.e. the class
  /// a FINN-style fabric accelerator handles (W1A1, W1A3, ternary, ...).
  bool is_reduced() const { return !is_float() && weight_bits < 8 && act_bits < 8; }

  /// Conservative fixed point (8-bit weights or activations, not reduced).
  bool is_8bit() const { return !is_float() && !is_reduced(); }

  /// Display name: "Float", "W1A3", "W8A8", ...
  std::string name() const {
    if (is_float()) return "Float";
    return "W" + std::to_string(weight_bits) + "A" + std::to_string(act_bits);
  }

  bool operator==(const Precision&) const = default;
};

inline constexpr Precision kFloat{32, 32};
inline constexpr Precision kW1A1{1, 1};
inline constexpr Precision kW1A3{1, 3};
inline constexpr Precision kW8A8{8, 8};

}  // namespace tincy::nn
