#include "nn/region_layer.hpp"

#include <cmath>

#include "nn/activation.hpp"

namespace tincy::nn {

RegionLayer::RegionLayer(const RegionConfig& cfg, Shape input_shape)
    : cfg_(cfg), in_shape_(input_shape) {
  TINCY_CHECK(input_shape.rank() == 3);
  const int64_t expected = cfg.num * (cfg.coords + 1 + cfg.classes);
  TINCY_CHECK_MSG(input_shape.channels() == expected,
                  "region expects " << expected << " channels, got "
                                    << input_shape.channels());
  if (cfg_.anchors.empty()) cfg_.anchors.assign(static_cast<size_t>(2 * cfg.num), 0.5f);
  TINCY_CHECK(static_cast<int64_t>(cfg_.anchors.size()) == 2 * cfg.num);
}

void RegionLayer::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK(in.shape() == in_shape_);
  TINCY_CHECK(out.shape() == in_shape_);
  const int64_t H = in_shape_.height(), W = in_shape_.width();
  const int64_t cell = H * W;
  const int64_t per_anchor = cfg_.coords + 1 + cfg_.classes;

  out = in;
  for (int64_t a = 0; a < cfg_.num; ++a) {
    float* base = out.data() + a * per_anchor * cell;
    // Logistic on x, y and objectness; w, h stay raw (exponentiated later).
    for (int64_t i = 0; i < cell; ++i) {
      base[0 * cell + i] = apply(Activation::kLogistic, base[0 * cell + i]);
      base[1 * cell + i] = apply(Activation::kLogistic, base[1 * cell + i]);
      base[cfg_.coords * cell + i] =
          apply(Activation::kLogistic, base[cfg_.coords * cell + i]);
    }
    if (cfg_.softmax) {
      // Per-cell softmax across the class channels.
      float* cls = base + (cfg_.coords + 1) * cell;
      for (int64_t i = 0; i < cell; ++i) {
        float max_v = cls[i];
        for (int64_t c = 1; c < cfg_.classes; ++c)
          max_v = std::max(max_v, cls[c * cell + i]);
        float sum = 0.0f;
        for (int64_t c = 0; c < cfg_.classes; ++c) {
          const float e = std::exp(cls[c * cell + i] - max_v);
          cls[c * cell + i] = e;
          sum += e;
        }
        for (int64_t c = 0; c < cfg_.classes; ++c) cls[c * cell + i] /= sum;
      }
    }
  }
}

}  // namespace tincy::nn
