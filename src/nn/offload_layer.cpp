#include "nn/offload_layer.hpp"

#include "core/errors.hpp"

namespace tincy::nn {

OffloadRegistry& OffloadRegistry::instance() {
  static OffloadRegistry registry;
  return registry;
}

void OffloadRegistry::register_library(const std::string& library_name,
                                       Factory factory) {
  factories_[library_name] = std::move(factory);
}

std::unique_ptr<OffloadBackend> OffloadRegistry::open(
    const std::string& library_name) const {
  const auto it = factories_.find(library_name);
  TINCY_CHECK_MSG(it != factories_.end(),
                  "offload library not registered: '" << library_name << "'");
  return it->second();
}

bool OffloadRegistry::contains(const std::string& library_name) const {
  return factories_.contains(library_name);
}

OffloadLayer::OffloadLayer(const OffloadConfig& cfg, Shape input_shape)
    : cfg_(cfg) {
  backend_ = OffloadRegistry::instance().open(cfg.library);
  backend_->init(cfg_, input_shape);  // Fig. 3: init() with configuration
  auto& registry = telemetry::MetricsRegistry::global();
  const std::string prefix = "offload." + cfg_.library + ".";
  forward_hist_ = &registry.histogram(prefix + "forward_ms");
  frames_counter_ = &registry.counter(prefix + "frames");
  ops_counter_ = &registry.counter(prefix + "ops");
}

OffloadLayer::~OffloadLayer() {
  if (backend_) backend_->destroy();  // Fig. 3: resource cleanup
}

void OffloadLayer::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK(out.shape() == cfg_.output_shape);
  telemetry::ScopedTimer span(*forward_hist_);
  backend_->forward(in, out);
  frames_counter_->add(1);
  ops_counter_->add(backend_->ops().ops);
}

void OffloadLayer::load_weights(WeightReader&) {
  // The offload's parameters come from its own weight store (Fig. 4:
  // `weights=binparam-.../`), not from the enclosing Darknet weight file.
  backend_->load_weights();
}

}  // namespace tincy::nn
