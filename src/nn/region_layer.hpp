#pragma once

/// \file region_layer.hpp
/// YOLOv2 "region" detection head. The feature map carries `num` anchor
/// slots per grid cell, each with (x, y, w, h, objectness) and per-class
/// scores — 5 × (4+1+20) = 125 channels for Pascal VOC, the output
/// geometry named in the paper's Fig. 4 (height=13 width=13 channel=125).
/// forward() applies the logistic/softmax squashing; decoding squashed
/// maps into boxes lives in tincy::detect.

#include <vector>

#include "nn/layer.hpp"

namespace tincy::nn {

struct RegionConfig {
  int64_t classes = 20;
  int64_t coords = 4;
  int64_t num = 5;                ///< anchors per cell
  std::vector<float> anchors;     ///< 2·num anchor extents in cell units
  bool softmax = true;
};

class RegionLayer final : public Layer {
 public:
  RegionLayer(const RegionConfig& cfg, Shape input_shape);

  std::string type_name() const override { return "region"; }
  Shape output_shape() const override { return in_shape_; }
  void forward(const Tensor& in, Tensor& out) override;

  const RegionConfig& config() const { return cfg_; }

 private:
  RegionConfig cfg_;
  Shape in_shape_;
};

}  // namespace tincy::nn
