#include "nn/conv_layer.hpp"

#include <cmath>
#include <limits>

#include "gemm/gemm_lowp.hpp"
#include "gemm/gemm_ref.hpp"
#include "gemm/gemm_simd.hpp"
#include "nn/weights_io.hpp"
#include "quant/affine.hpp"

namespace tincy::nn {

ConvLayer::ConvLayer(const ConvConfig& cfg, Shape input_shape) : cfg_(cfg) {
  TINCY_CHECK_MSG(input_shape.rank() == 3,
                  "conv input " << input_shape.to_string());
  geom_.in_channels = input_shape.channels();
  geom_.in_height = input_shape.height();
  geom_.in_width = input_shape.width();
  geom_.kernel = cfg.size;
  geom_.stride = cfg.stride;
  geom_.pad = cfg.pad ? cfg.size / 2 : 0;
  TINCY_CHECK_MSG(geom_.out_height() > 0 && geom_.out_width() > 0,
                  "degenerate conv output for input " << input_shape.to_string());
  if (cfg.bipolar) {
    TINCY_CHECK_MSG(cfg.act_bits == 1, "bipolar requires abits=1");
    TINCY_CHECK_MSG(cfg.activation == Activation::kLinear,
                    "bipolar layers use the sign itself as activation");
  }

  weights_ = Tensor(Shape{cfg.filters, geom_.patch_size()});
  biases_ = Tensor(Shape{cfg.filters});
  if (cfg.batch_normalize) {
    bn_scales_ = Tensor(Shape{cfg.filters}, 1.0f);
    bn_mean_ = Tensor(Shape{cfg.filters});
    bn_var_ = Tensor(Shape{cfg.filters}, 1.0f);
  }
}

Shape ConvLayer::output_shape() const {
  return Shape{cfg_.filters, geom_.out_height(), geom_.out_width()};
}

void ConvLayer::invalidate_cached_quantization() {
  binary_cache_.reset();
  binary_float_cache_.reset();
  threshold_cache_.reset();
  lowp_codes_.reset();
  lowp_params_.reset();
  packed_lowp_.reset();
  sym_weight_cache_.reset();
}

const quant::BinaryMatrix& ConvLayer::binary_weights() const {
  if (!binary_cache_) binary_cache_ = quant::binarize(weights_);
  return *binary_cache_;
}

uint8_t ConvLayer::ChannelThresholds::apply(int32_t acc) const {
  // At most 2^A − 1 (= 7 for A3) comparators, evaluated in parallel by the
  // fabric; a scan is exact and fast enough for the golden model.
  int level = 0;
  for (const int32_t t : set.thresholds)
    level += ascending ? (acc >= t) : (acc <= t);
  return static_cast<uint8_t>(level);
}

const std::vector<ConvLayer::ChannelThresholds>& ConvLayer::quant_thresholds()
    const {
  if (threshold_cache_) return *threshold_cache_;
  TINCY_CHECK_MSG(cfg_.act_bits < 8,
                  "thresholds requested for non-quantized layer");
  std::vector<ChannelThresholds> all;
  all.reserve(static_cast<size_t>(cfg_.filters));
  const int levels = cfg_.bipolar ? 1 : (1 << cfg_.act_bits) - 1;
  for (int64_t c = 0; c < cfg_.filters; ++c) {
    // Affine form of bias/batch-norm over the raw accumulator:
    //   z = slope · acc + intercept, with acc in integer activation units.
    double slope = cfg_.in_scale;
    double intercept = biases_[c];
    if (cfg_.batch_normalize) {
      const double inv_sigma =
          1.0 / std::sqrt(static_cast<double>(bn_var_[c]) + kBatchNormEps);
      slope *= bn_scales_[c] * inv_sigma;
      intercept -= bn_scales_[c] * inv_sigma * bn_mean_[c];
    }
    ChannelThresholds ct;
    ct.set.thresholds.reserve(static_cast<size_t>(levels));
    for (int k = 1; k <= levels; ++k) {
      // Bipolar output: the single comparator is the sign of z; unsigned
      // grids place a comparator at every half-step.
      const double target =
          cfg_.bipolar ? 0.0 : static_cast<double>(cfg_.out_scale) * (k - 0.5);
      if (slope > 0.0) {
        ct.ascending = true;
        ct.set.thresholds.push_back(static_cast<int32_t>(
            std::ceil((target - intercept) / slope - 1e-9)));
      } else if (slope < 0.0) {
        ct.ascending = false;
        ct.set.thresholds.push_back(static_cast<int32_t>(
            std::floor((target - intercept) / slope + 1e-9)));
      } else {
        // Degenerate zero slope: the level is constant in acc.
        ct.ascending = true;
        ct.set.thresholds.push_back(intercept >= target
                                        ? std::numeric_limits<int32_t>::min()
                                        : std::numeric_limits<int32_t>::max());
      }
    }
    all.push_back(std::move(ct));
  }
  threshold_cache_ = std::move(all);
  return *threshold_cache_;
}

void ConvLayer::apply_post(Tensor& out) const {
  const int64_t n = geom_.num_patches();
  for (int64_t c = 0; c < cfg_.filters; ++c) {
    float scale = 1.0f, shift = 0.0f;
    if (cfg_.batch_normalize) {
      const float inv_sigma =
          1.0f / std::sqrt(bn_var_[c] + kBatchNormEps);
      scale = bn_scales_[c] * inv_sigma;
      shift = -bn_mean_[c] * scale;
    }
    const float bias = biases_[c];
    float* row = out.data() + c * n;
    for (int64_t j = 0; j < n; ++j)
      row[j] = apply(cfg_.activation, row[j] * scale + shift + bias);
  }
  if (cfg_.bipolar) {
    // W1A1: the sign is the activation.
    const quant::BipolarActQuant q{cfg_.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = q.dequantize(q.quantize(out[i]));
  } else if (cfg_.act_bits < 8) {
    // Float-domain model of the A-bit activation grid: snap to codes.
    const quant::UniformActQuant q{cfg_.act_bits, cfg_.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = q.dequantize(q.quantize(out[i]));
  }
}

void ConvLayer::forward_float(const Tensor& in, Tensor& out, ConvKernel k) {
  const float* w = weights_.data();
  if (cfg_.binary_weights) {
    if (!binary_float_cache_)
      binary_float_cache_ = quant::dequantize(binary_weights());
    w = binary_float_cache_->data();
  }
  switch (k) {
    case ConvKernel::kReference:
      gemm::conv_via_im2col_f32(in.data(), geom_, w, cfg_.filters, nullptr,
                                out.data());
      break;
    case ConvKernel::kFused:
      gemm::fused_conv_f32(in.data(), geom_, w, cfg_.filters, nullptr,
                           out.data());
      break;
    case ConvKernel::kFirstLayerF32:
      TINCY_CHECK(cfg_.filters == gemm::kFirstLayerChannels);
      gemm::first_layer_f32(in.data(), geom_, w, nullptr, out.data());
      break;
    default:
      throw Error("not a float conv kernel");
  }
  apply_post(out);
}

void ConvLayer::forward_lowp(const Tensor& in, Tensor& out, ConvKernel k) {
  // The image data is quantized on the fly (paper: "an im2col
  // implementation that quantized the image data while arranging the
  // multiplicand matrix"); range calibration comes from the frame itself.
  const auto [lo, hi] = quant::min_max(in);
  const quant::AffineParams in_params = quant::choose_affine_params(lo, hi);

  switch (k) {
    case ConvKernel::kLowp:
    case ConvKernel::kFusedLowp: {
      if (!lowp_codes_) {
        const auto [wlo, whi] = quant::min_max(weights_);
        lowp_params_ = quant::choose_affine_params(wlo, whi);
        lowp_codes_ = quant::quantize(weights_, *lowp_params_);
        // Pack/compute split: the GEMM engine's weight panels are derived
        // once here and reused by every subsequent frame.
        packed_lowp_ = gemm::pack_lhs(lowp_codes_->data(), cfg_.filters,
                                      geom_.patch_size(),
                                      lowp_params_->zero_point);
      }
      if (k == ConvKernel::kLowp)
        gemm::conv_lowp_f32out(in.data(), geom_, in_params, *packed_lowp_,
                               *lowp_params_, nullptr, out.data());
      else
        gemm::fused_conv_lowp_f32out(in.data(), geom_, in_params,
                                     *packed_lowp_, *lowp_params_, nullptr,
                                     out.data());
      break;
    }
    case ConvKernel::kFirstLayerAcc32:
    case ConvKernel::kFirstLayerAcc16: {
      TINCY_CHECK(cfg_.filters == gemm::kFirstLayerChannels);
      if (!sym_weight_cache_)
        sym_weight_cache_ = gemm::quantize_symmetric(weights_);
      auto fn = (k == ConvKernel::kFirstLayerAcc32)
                    ? gemm::first_layer_lowp_acc32
                    : gemm::first_layer_lowp_acc16;
      fn(in.data(), geom_, in_params, *sym_weight_cache_, nullptr, out.data());
      break;
    }
    default:
      throw Error("not a lowp conv kernel");
  }
  apply_post(out);
}

void ConvLayer::forward_quant_reference(const Tensor& in, Tensor& out) {
  TINCY_CHECK_MSG(cfg_.binary_weights && cfg_.act_bits < 8,
                  "quant reference path needs binary=1 and abits<8");
  // Incoming floats sit on the activation grid; recover the integer codes.
  TensorU8 codes(in.shape());
  if (cfg_.bipolar) {
    const quant::BipolarActQuant in_q{cfg_.in_scale};
    for (int64_t i = 0; i < in.numel(); ++i) codes[i] = in_q.quantize(in[i]);
    // No exact zero exists in the bipolar code space; padded convolutions
    // would corrupt the arithmetic, so they are rejected here. (FINN's
    // fully binarized nets use valid convolutions / FC layers.)
    TINCY_CHECK_MSG(geom_.pad == 0, "bipolar conv cannot zero-pad");
  } else {
    const quant::UniformActQuant in_q{cfg_.act_bits, cfg_.in_scale};
    codes = quant::quantize_activations(in, in_q);
  }
  // Zero padding is exact on the unsigned grid: real 0.0 is code 0.
  TensorU8 columns = gemm::im2col(codes, geom_, 0);

  const quant::BinaryMatrix& bw = binary_weights();
  const auto& thresholds = quant_thresholds();
  const int64_t patch = geom_.patch_size(), n = geom_.num_patches();
  const quant::BipolarActQuant out_bq{cfg_.out_scale};
  for (int64_t c = 0; c < cfg_.filters; ++c) {
    const auto& row = bw.row_bits[static_cast<size_t>(c)];
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t k = 0; k < patch; ++k) {
        // Bipolar codes decode to ±1; unsigned codes are their own value.
        const int32_t a = cfg_.bipolar
                              ? (columns[k * n + j] ? 1 : -1)
                              : static_cast<int32_t>(columns[k * n + j]);
        acc += row.get(k) ? a : -a;
      }
      const uint8_t level = thresholds[static_cast<size_t>(c)].apply(acc);
      out[c * n + j] = cfg_.bipolar
                           ? out_bq.dequantize(level)
                           : cfg_.out_scale * static_cast<float>(level);
    }
  }
}

void ConvLayer::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK(in.shape() ==
              Shape({geom_.in_channels, geom_.in_height, geom_.in_width}));
  TINCY_CHECK(out.shape() == output_shape());
  switch (cfg_.kernel) {
    case ConvKernel::kReference:
    case ConvKernel::kFused:
    case ConvKernel::kFirstLayerF32:
      forward_float(in, out, cfg_.kernel);
      break;
    case ConvKernel::kLowp:
    case ConvKernel::kFusedLowp:
    case ConvKernel::kFirstLayerAcc32:
    case ConvKernel::kFirstLayerAcc16:
      forward_lowp(in, out, cfg_.kernel);
      break;
    case ConvKernel::kQuantReference:
      forward_quant_reference(in, out);
      break;
  }
}

void ConvLayer::load_weights(WeightReader& r) {
  // Darknet order: biases, then BN statistics, then weights.
  r.read(biases_);
  if (cfg_.batch_normalize) {
    r.read(bn_scales_);
    r.read(bn_mean_);
    r.read(bn_var_);
  }
  r.read(weights_);
  invalidate_cached_quantization();
}

void ConvLayer::save_weights(WeightWriter& w) const {
  w.write(biases_);
  if (cfg_.batch_normalize) {
    w.write(bn_scales_);
    w.write(bn_mean_);
    w.write(bn_var_);
  }
  w.write(weights_);
}

OpsCount ConvLayer::ops() const {
  OpsCount oc;
  oc.ops = 2 * geom_.patch_size() * cfg_.filters * geom_.num_patches();
  oc.precision = precision();
  return oc;
}

Precision ConvLayer::precision() const {
  if (cfg_.binary_weights && cfg_.act_bits < 8) return {1, cfg_.act_bits};
  switch (cfg_.kernel) {
    case ConvKernel::kLowp:
    case ConvKernel::kFusedLowp:
    case ConvKernel::kFirstLayerAcc32:
    case ConvKernel::kFirstLayerAcc16:
      return kW8A8;
    default:
      return kFloat;
  }
}

}  // namespace tincy::nn
