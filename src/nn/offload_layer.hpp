#pragma once

/// \file offload_layer.hpp
/// The paper's generic offload mechanism (Figs. 3 and 4).
///
/// Darknet virtualizes layer functionality through function pointers; the
/// offload layer redirects those pointers into an implementation pulled
/// from "an arbitrary user-defined shared library" named in the cfg
/// (`library=fabric.so`). The backing implementation only has to compute
/// an output feature map from an input feature map — internally it may
/// subsume the computation of many layers, as the fabric offload does.
///
/// In this reproduction, dlopen is replaced by an in-process registry:
/// backends register a factory under the library name, and the offload
/// layer resolves its hooks through it. The life cycle mirrors Fig. 3:
/// init (with access to configuration and weights) → load_weights →
/// forward… → destroy.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "nn/layer.hpp"
#include "telemetry/metrics.hpp"

namespace tincy::nn {

/// The `[offload]` cfg section contents (Fig. 4).
struct OffloadConfig {
  std::string library;  ///< backend name, e.g. "fabric.so"
  std::string network;  ///< subtopology description understood by the backend
  std::string weights;  ///< trained-weights location (e.g. binparam dir)
  Shape output_shape;   ///< declared output geometry (channel, height, width)
  std::map<std::string, std::string> extra;  ///< remaining key=value pairs
};

/// Interface a backend "shared library" implements — the four hooks of
/// Fig. 3 as virtuals.
class OffloadBackend {
 public:
  virtual ~OffloadBackend() = default;

  /// Initialize with access to the layer configuration; sizes any state.
  virtual void init(const OffloadConfig& cfg, Shape input_shape) = 0;

  /// Load trained weights from the configured location.
  virtual void load_weights() = 0;

  /// Layer inference: compute the output feature map.
  virtual void forward(const Tensor& in, Tensor& out) = 0;

  /// Resource cleanup beyond destruction (optional).
  virtual void destroy() {}

  /// Work subsumed by this backend, for the ops accounting.
  virtual OpsCount ops() const { return {}; }

  /// Precision class of the subsumed computation.
  virtual Precision precision() const { return kFloat; }
};

/// Process-wide registry standing in for dlopen: maps a library name to a
/// backend factory.
class OffloadRegistry {
 public:
  using Factory = std::function<std::unique_ptr<OffloadBackend>()>;

  static OffloadRegistry& instance();

  /// Registers (or replaces) a factory under `library_name`.
  void register_library(const std::string& library_name, Factory factory);

  /// Instantiates a backend; throws tincy::Error for unknown names.
  std::unique_ptr<OffloadBackend> open(const std::string& library_name) const;

  bool contains(const std::string& library_name) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Darknet layer whose hooks are redirected into an OffloadBackend.
class OffloadLayer final : public Layer {
 public:
  OffloadLayer(const OffloadConfig& cfg, Shape input_shape);
  ~OffloadLayer() override;

  std::string type_name() const override { return "offload"; }
  Shape output_shape() const override { return cfg_.output_shape; }
  void forward(const Tensor& in, Tensor& out) override;
  void load_weights(WeightReader&) override;
  OpsCount ops() const override { return backend_->ops(); }
  Precision precision() const override { return backend_->precision(); }

  const OffloadConfig& config() const { return cfg_; }
  OffloadBackend& backend() { return *backend_; }

 private:
  OffloadConfig cfg_;
  std::unique_ptr<OffloadBackend> backend_;
  // Cached global-registry metrics, `offload.<library>.*`: backend spans
  // plus ops/frame counters so fabric vs. CPU work stays attributable.
  telemetry::Histogram* forward_hist_;
  telemetry::Counter* frames_counter_;
  telemetry::Counter* ops_counter_;
};

}  // namespace tincy::nn
