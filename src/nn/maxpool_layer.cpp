#include "nn/maxpool_layer.hpp"

#include <limits>

namespace tincy::nn {

MaxPoolLayer::MaxPoolLayer(const MaxPoolConfig& cfg, Shape input_shape)
    : cfg_(cfg), in_shape_(input_shape) {
  TINCY_CHECK(input_shape.rank() == 3);
  const int64_t padding = cfg.size - 1;  // Darknet's implicit total padding
  out_h_ = (input_shape.height() + padding - cfg.size) / cfg.stride + 1;
  out_w_ = (input_shape.width() + padding - cfg.size) / cfg.stride + 1;
  TINCY_CHECK_MSG(out_h_ > 0 && out_w_ > 0,
                  "degenerate pool output for " << input_shape.to_string());
}

Shape MaxPoolLayer::output_shape() const {
  return Shape{in_shape_.channels(), out_h_, out_w_};
}

void MaxPoolLayer::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK(in.shape() == in_shape_);
  TINCY_CHECK(out.shape() == output_shape());
  const int64_t C = in_shape_.channels(), H = in_shape_.height(),
                W = in_shape_.width();
  const int64_t pad_left = (cfg_.size - 1) / 2;  // 0 for size 2: pad right/bottom
  for (int64_t c = 0; c < C; ++c) {
    const float* plane = in.data() + c * H * W;
    float* out_plane = out.data() + c * out_h_ * out_w_;
    for (int64_t oh = 0; oh < out_h_; ++oh) {
      for (int64_t ow = 0; ow < out_w_; ++ow) {
        float best = -std::numeric_limits<float>::infinity();
        for (int64_t kh = 0; kh < cfg_.size; ++kh) {
          const int64_t ih = oh * cfg_.stride - pad_left + kh;
          if (ih < 0 || ih >= H) continue;
          for (int64_t kw = 0; kw < cfg_.size; ++kw) {
            const int64_t iw = ow * cfg_.stride - pad_left + kw;
            if (iw < 0 || iw >= W) continue;
            best = std::max(best, plane[ih * W + iw]);
          }
        }
        out_plane[oh * out_w_ + ow] = best;
      }
    }
  }
}

OpsCount MaxPoolLayer::ops() const {
  return {cfg_.size * cfg_.size * out_h_ * out_w_, kFloat};
}

}  // namespace tincy::nn
