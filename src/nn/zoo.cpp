#include "nn/zoo.hpp"

#include <cmath>
#include <sstream>

#include "nn/builder.hpp"
#include "nn/connected_layer.hpp"
#include "nn/conv_layer.hpp"

namespace tincy::nn::zoo {
namespace {

struct ConvSpec {
  int filters;
  int size = 3;
  int stride = 1;
  bool batch_normalize = true;
  bool followed_by_pool = false;
  int pool_stride = 2;
};

void emit_conv(std::ostream& os, const ConvSpec& c, bool hidden_quant,
               const char* activation, const std::string& kernel) {
  os << "[convolutional]\n";
  if (c.batch_normalize) os << "batch_normalize=1\n";
  os << "filters=" << c.filters << "\nsize=" << c.size
     << "\nstride=" << c.stride << "\npad=1\nactivation=" << activation
     << "\n";
  if (hidden_quant) os << "binary=1\nabits=3\nkernel=quant_reference\n";
  else if (!kernel.empty()) os << "kernel=" << kernel << "\n";
  os << "\n";
}

}  // namespace

std::string variant_name(TinyVariant v) {
  switch (v) {
    case TinyVariant::kTiny:
      return "Tiny YOLO";
    case TinyVariant::kA:
      return "Tiny YOLO + (a)";
    case TinyVariant::kABC:
      return "Tiny YOLO + (a,b,c)";
    case TinyVariant::kTincy:
      return "Tincy YOLO";
  }
  return "?";
}

std::string tiny_yolo_cfg(TinyVariant v, QuantMode q, int input_size,
                          CpuProfile p) {
  const bool mod_a = v != TinyVariant::kTiny;
  const bool mod_bc = v == TinyVariant::kABC || v == TinyVariant::kTincy;
  const bool mod_d = v == TinyVariant::kTincy;
  const bool quant = q == QuantMode::kW1A3;
  const char* hidden_act = mod_a ? "relu" : "leaky";

  // Hidden conv ladder: filters of convs 2..8 (paper layers 3..14).
  const int c3 = mod_bc ? 64 : 32;
  const int c13 = mod_bc ? 512 : 1024;
  const int c14 = mod_bc ? 512 : 1024;

  std::string float_kernel =
      p == CpuProfile::kReference ? "reference" : "fused";
  std::string first_kernel;
  std::string last_kernel;
  switch (p) {
    case CpuProfile::kReference:
      first_kernel = "reference";
      last_kernel = "reference";
      break;
    case CpuProfile::kFused:
      first_kernel = "fused";
      last_kernel = "fused";
      break;
    case CpuProfile::kOptimized:
      first_kernel = "first16_acc16";
      last_kernel = "lowp";
      break;
  }

  std::ostringstream os;
  os << "# " << variant_name(v) << (quant ? " [W1A3]" : " [Float]") << "\n";
  os << "[net]\nwidth=" << input_size << "\nheight=" << input_size
     << "\nchannels=3\n\n";

  // Layer 1: input conv (quantization-sensitive, stays 8-bit/float).
  emit_conv(os,
            {.filters = 16, .size = 3, .stride = mod_d ? 2 : 1,
             .batch_normalize = true},
            /*hidden_quant=*/false, hidden_act, first_kernel);
  if (!mod_d) os << "[maxpool]\nsize=2\nstride=2\n\n";

  // Hidden ladder (paper layers 3-14): conv+pool pairs then two 3x3 convs.
  const ConvSpec hidden[] = {
      {.filters = c3, .followed_by_pool = true},
      {.filters = 64, .followed_by_pool = true},
      {.filters = 128, .followed_by_pool = true},
      {.filters = 256, .followed_by_pool = true},
      {.filters = 512, .followed_by_pool = true, .pool_stride = 1},
      {.filters = c13},
      {.filters = c14},
  };
  for (const auto& c : hidden) {
    emit_conv(os, c, quant, hidden_act, float_kernel);
    if (c.followed_by_pool)
      os << "[maxpool]\nsize=2\nstride=" << c.pool_stride << "\n\n";
  }

  // Layer 15: output conv (quantization-sensitive, 8-bit at most).
  os << "[convolutional]\nfilters=125\nsize=1\nstride=1\npad=1\n"
        "activation=linear\nkernel="
     << last_kernel << "\n\n";

  os << "[region]\n"
        "anchors=1.08,1.19, 3.42,4.41, 6.63,11.38, 9.42,5.11, 16.62,10.52\n"
        "classes=20\ncoords=4\nnum=5\nsoftmax=1\n";
  return os.str();
}

std::string mlp4_cfg() {
  std::ostringstream os;
  os << "# MLP-4 (MNIST, W1A1)\n"
        "[net]\nwidth=28\nheight=28\nchannels=1\n\n";
  for (int i = 0; i < 3; ++i)
    os << "[connected]\noutput=1024\nactivation=relu\nbinary=1\nabits=1\n\n";
  os << "[connected]\noutput=10\nactivation=linear\nbinary=1\nabits=1\n";
  return os.str();
}

std::string cnv6_cfg() {
  std::ostringstream os;
  os << "# CNV-6 (CIFAR-10 class, 8-bit first conv + W1A1)\n"
        "[net]\nwidth=32\nheight=32\nchannels=3\n\n";
  // First conv: quantization-sensitive, 8-bit (the paper's 3.1 M bucket).
  os << "[convolutional]\nbatch_normalize=1\nfilters=64\nsize=3\nstride=1\n"
        "pad=0\nactivation=relu\nkernel=lowp\n\n";
  const struct {
    int filters;
    bool pool_after;
  } specs[] = {{64, true}, {128, false}, {128, true}, {256, false}, {256, false}};
  for (const auto& s : specs) {
    os << "[convolutional]\nbatch_normalize=1\nfilters=" << s.filters
       << "\nsize=3\nstride=1\npad=0\nactivation=relu\nbinary=1\nabits=1\n"
          "kernel=quant_reference\n\n";
    if (s.pool_after) os << "[maxpool]\nsize=2\nstride=2\n\n";
  }
  os << "[connected]\noutput=512\nactivation=relu\nbinary=1\nabits=1\n\n"
        "[connected]\noutput=512\nactivation=relu\nbinary=1\nabits=1\n\n"
        "[connected]\noutput=10\nactivation=linear\nbinary=1\nabits=1\n";
  return os.str();
}

std::unique_ptr<Network> build(const std::string& cfg_text) {
  return build_network_from_string(cfg_text);
}

void randomize(Network& net, Rng& rng) {
  for (int64_t i = 0; i < net.num_layers(); ++i) {
    if (auto* conv = dynamic_cast<ConvLayer*>(&net.layer(i))) {
      Tensor& w = conv->weights();
      const auto fan_in = static_cast<float>(conv->geometry().patch_size());
      const float stddev = std::sqrt(2.0f / fan_in);
      for (int64_t j = 0; j < w.numel(); ++j) w[j] = rng.normal(0.0f, stddev);
      for (int64_t c = 0; c < conv->biases().numel(); ++c)
        conv->biases()[c] = rng.normal(0.0f, 0.05f);
      if (conv->config().batch_normalize) {
        for (int64_t c = 0; c < conv->bn_scales().numel(); ++c) {
          conv->bn_scales()[c] = rng.uniform(0.8f, 1.2f);
          conv->bn_mean()[c] = rng.normal(0.0f, 0.1f);
          conv->bn_var()[c] = rng.uniform(0.8f, 1.2f);
        }
      }
      conv->invalidate_cached_quantization();
    } else if (auto* fc = dynamic_cast<ConnectedLayer*>(&net.layer(i))) {
      Tensor& w = fc->weights();
      const float stddev = std::sqrt(2.0f / static_cast<float>(fc->inputs()));
      for (int64_t j = 0; j < w.numel(); ++j) w[j] = rng.normal(0.0f, stddev);
      for (int64_t o = 0; o < fc->biases().numel(); ++o)
        fc->biases()[o] = rng.normal(0.0f, 0.05f);
      fc->invalidate_cached_quantization();
    }
  }
}

}  // namespace tincy::nn::zoo
