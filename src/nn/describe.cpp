#include "nn/describe.hpp"

#include <sstream>

#include "core/string_utils.hpp"
#include "nn/connected_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/offload_layer.hpp"
#include "nn/ops.hpp"
#include "nn/region_layer.hpp"

namespace tincy::nn {
namespace {

const char* kernel_name(ConvKernel k) {
  switch (k) {
    case ConvKernel::kReference:
      return "reference";
    case ConvKernel::kFused:
      return "fused";
    case ConvKernel::kLowp:
      return "lowp";
    case ConvKernel::kFusedLowp:
      return "fused_lowp";
    case ConvKernel::kFirstLayerF32:
      return "first16_f32";
    case ConvKernel::kFirstLayerAcc32:
      return "first16_acc32";
    case ConvKernel::kFirstLayerAcc16:
      return "first16_acc16";
    case ConvKernel::kQuantReference:
      return "quant_reference";
  }
  return "reference";
}

void emit(std::ostream& os, const ConvLayer& l) {
  const auto& c = l.config();
  os << "[convolutional]\n";
  if (c.batch_normalize) os << "batch_normalize=1\n";
  os << "filters=" << c.filters << "\nsize=" << c.size
     << "\nstride=" << c.stride << "\npad=" << (c.pad ? 1 : 0)
     << "\nactivation=" << activation_name(c.activation) << "\n";
  if (c.binary_weights) os << "binary=1\n";
  if (c.act_bits < 32) os << "abits=" << c.act_bits << "\n";
  if (c.bipolar) os << "bipolar=1\n";
  if (c.in_scale != 1.0f) os << "in_scale=" << c.in_scale << "\n";
  if (c.out_scale != 1.0f) os << "out_scale=" << c.out_scale << "\n";
  os << "kernel=" << kernel_name(c.kernel) << "\n\n";
}

void emit(std::ostream& os, const ConnectedLayer& l) {
  const auto& c = l.config();
  os << "[connected]\noutput=" << c.outputs
     << "\nactivation=" << activation_name(c.activation) << "\n";
  if (c.binary_weights) os << "binary=1\n";
  if (c.act_bits < 32) os << "abits=" << c.act_bits << "\n";
  if (c.bipolar) os << "bipolar=1\n";
  if (c.in_scale != 1.0f) os << "in_scale=" << c.in_scale << "\n";
  if (c.out_scale != 1.0f) os << "out_scale=" << c.out_scale << "\n";
  os << "\n";
}

void emit(std::ostream& os, const MaxPoolLayer& l) {
  os << "[maxpool]\nsize=" << l.config().size
     << "\nstride=" << l.config().stride << "\n\n";
}

void emit(std::ostream& os, const RegionLayer& l) {
  const auto& c = l.config();
  os << "[region]\nanchors=";
  for (size_t i = 0; i < c.anchors.size(); ++i) {
    if (i) os << ',';
    os << c.anchors[i];
  }
  os << "\nclasses=" << c.classes << "\ncoords=" << c.coords
     << "\nnum=" << c.num << "\nsoftmax=" << (c.softmax ? 1 : 0) << "\n\n";
}

void emit(std::ostream& os, const OffloadLayer& l) {
  const auto& c = l.config();
  os << "[offload]\nlibrary=" << c.library << "\nnetwork=" << c.network
     << "\nweights=" << c.weights << "\nheight=" << c.output_shape.height()
     << "\nwidth=" << c.output_shape.width()
     << "\nchannel=" << c.output_shape.channels() << "\n";
  for (const auto& [k, v] : c.extra) os << k << '=' << v << "\n";
  os << "\n";
}

}  // namespace

std::string summary(const Network& net) {
  std::ostringstream os;
  os << "layer  type            output            ops             precision\n";
  const auto rows = ops_rows(net);
  for (int64_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    char line[128];
    std::snprintf(line, sizeof line, "%5lld  %-14s  %-16s  %14s  %s\n",
                  static_cast<long long>(i), layer.type_name().c_str(),
                  layer.output_shape().to_string().c_str(),
                  with_commas(rows[static_cast<size_t>(i)].ops).c_str(),
                  rows[static_cast<size_t>(i)].precision.name().c_str());
    os << line;
  }
  os << "total ops/frame: " << with_commas(total_ops(net)) << "\n";
  return os.str();
}

std::string to_cfg(const Network& net) {
  std::ostringstream os;
  const Shape in = net.input_shape();
  os << "[net]\nwidth=" << in.width() << "\nheight=" << in.height()
     << "\nchannels=" << in.channels() << "\n\n";
  for (int64_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    if (const auto* l = dynamic_cast<const ConvLayer*>(&layer)) emit(os, *l);
    else if (const auto* l2 = dynamic_cast<const ConnectedLayer*>(&layer)) emit(os, *l2);
    else if (const auto* l3 = dynamic_cast<const MaxPoolLayer*>(&layer)) emit(os, *l3);
    else if (const auto* l4 = dynamic_cast<const RegionLayer*>(&layer)) emit(os, *l4);
    else if (const auto* l5 = dynamic_cast<const OffloadLayer*>(&layer)) emit(os, *l5);
    else throw Error("to_cfg: unknown layer type " + layer.type_name());
  }
  return os.str();
}

}  // namespace tincy::nn
