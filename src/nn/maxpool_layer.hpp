#pragma once

/// \file maxpool_layer.hpp
/// Darknet-compatible max pooling. Geometry follows Darknet: implicit
/// padding of (size − 1) total keeps the stride-1 "same" pooling of Tiny
/// YOLO's last pool working (13×13 stays 13×13), while the usual 2×2
/// stride-2 pools halve the map.

#include "nn/layer.hpp"

namespace tincy::nn {

struct MaxPoolConfig {
  int64_t size = 2;
  int64_t stride = 2;
};

class MaxPoolLayer final : public Layer {
 public:
  MaxPoolLayer(const MaxPoolConfig& cfg, Shape input_shape);

  std::string type_name() const override { return "maxpool"; }
  Shape output_shape() const override;
  void forward(const Tensor& in, Tensor& out) override;

  /// The paper's Table I counts pooling as the per-channel comparison
  /// count K²·outH·outW (it is channel-independent in their accounting).
  OpsCount ops() const override;

  const MaxPoolConfig& config() const { return cfg_; }

 private:
  MaxPoolConfig cfg_;
  Shape in_shape_;
  int64_t out_h_ = 0, out_w_ = 0;
};

}  // namespace tincy::nn
