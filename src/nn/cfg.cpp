#include "nn/cfg.hpp"

#include <fstream>
#include <sstream>

#include "core/errors.hpp"
#include "core/string_utils.hpp"

namespace tincy::nn {

int64_t Section::get_int(const std::string& key, int64_t fallback) const {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : parse_int(it->second);
}

double Section::get_double(const std::string& key, double fallback) const {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : parse_double(it->second);
}

std::string Section::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

std::vector<float> Section::get_float_list(const std::string& key) const {
  std::vector<float> out;
  const auto it = kv.find(key);
  if (it == kv.end()) return out;
  for (const auto& item : split(it->second, ',')) {
    const auto trimmed = trim(item);
    if (!trimmed.empty()) out.push_back(static_cast<float>(parse_double(trimmed)));
  }
  return out;
}

int64_t Section::require_int(const std::string& key) const {
  const auto it = kv.find(key);
  TINCY_CHECK_MSG(it != kv.end(), "missing required key '"
                                      << key << "' in [" << name
                                      << "] (line " << line << ")");
  return parse_int(it->second);
}

std::string Section::require_string(const std::string& key) const {
  const auto it = kv.find(key);
  TINCY_CHECK_MSG(it != kv.end() && !it->second.empty(),
                  "missing required key '" << key << "' in [" << name
                                           << "] (line " << line << ")");
  return it->second;
}

std::vector<Section> parse_cfg(const std::string& text) {
  std::vector<Section> sections;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments ('#' and Darknet's ';').
    const size_t hash = raw.find_first_of("#;");
    if (hash != std::string::npos) raw.erase(hash);
    const auto line = trim(raw);
    if (line.empty()) continue;

    if (line.front() == '[') {
      TINCY_CHECK_MSG(line.back() == ']',
                      "line " << line_no << ": malformed section header");
      Section s;
      s.name = std::string(trim(line.substr(1, line.size() - 2)));
      s.line = line_no;
      TINCY_CHECK_MSG(!s.name.empty(), "line " << line_no << ": empty section");
      sections.push_back(std::move(s));
      continue;
    }

    std::string key, value;
    TINCY_CHECK_MSG(parse_key_value(line, key, value),
                    "line " << line_no << ": expected key=value, got '"
                            << std::string(line) << "'");
    TINCY_CHECK_MSG(!sections.empty(),
                    "line " << line_no << ": key=value before any [section]");
    const bool inserted = sections.back().kv.emplace(key, value).second;
    TINCY_CHECK_MSG(inserted, "line " << line_no << ": duplicate key '" << key
                                      << "' in [" << sections.back().name
                                      << "]");
  }
  return sections;
}

std::vector<Section> parse_cfg_file(const std::string& path) {
  std::ifstream in(path);
  TINCY_CHECK_MSG(in.is_open(), "cannot open cfg " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_cfg(buffer.str());
}

}  // namespace tincy::nn
