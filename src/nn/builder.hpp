#pragma once

/// \file builder.hpp
/// Builds a Network from parsed cfg sections (the counterpart of Darknet's
/// parse_network_cfg). Supported sections: [net], [convolutional],
/// [maxpool], [connected], [region], [offload].

#include <memory>
#include <string>

#include "nn/cfg.hpp"
#include "nn/network.hpp"

namespace tincy::nn {

/// Builds the network described by the sections; the first section must be
/// [net] with width/height/channels. `metrics` selects the telemetry
/// registry the network reports into (null: the process-wide default) —
/// offload backends pass a private registry so their internal subnet
/// spans do not pollute the host network's `net.layer.*` namespace.
std::unique_ptr<Network> build_network(const std::vector<Section>& sections,
                                       telemetry::MetricsRegistry* metrics = nullptr);

/// Convenience: parse + build from cfg text.
std::unique_ptr<Network> build_network_from_string(const std::string& cfg_text,
                                                   telemetry::MetricsRegistry* metrics = nullptr);

/// Convenience: parse + build from a cfg file.
std::unique_ptr<Network> build_network_from_file(const std::string& path,
                                                 telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace tincy::nn
