#pragma once

/// \file builder.hpp
/// Builds a Network from parsed cfg sections (the counterpart of Darknet's
/// parse_network_cfg). Supported sections: [net], [convolutional],
/// [maxpool], [connected], [region], [offload].

#include <memory>
#include <string>

#include "nn/cfg.hpp"
#include "nn/network.hpp"

namespace tincy::nn {

/// Builds the network described by the sections; the first section must be
/// [net] with width/height/channels.
std::unique_ptr<Network> build_network(const std::vector<Section>& sections);

/// Convenience: parse + build from cfg text.
std::unique_ptr<Network> build_network_from_string(const std::string& cfg_text);

/// Convenience: parse + build from a cfg file.
std::unique_ptr<Network> build_network_from_file(const std::string& path);

}  // namespace tincy::nn
