#pragma once

/// \file conv_layer.hpp
/// Convolutional layer with every execution path the paper develops:
///
///  * kReference      — Darknet's generic im2col + GEMM in float,
///  * kFused          — fused sliced im2col+GEMM, NEON float lanes (§III-D),
///  * kLowp           — 8-bit gemmlowp-style path (explicit im2col),
///  * kFusedLowp      — 8-bit fused sliced path,
///  * kFirstLayerF32 / kFirstLayerAcc32 / kFirstLayerAcc16
///                    — the fully specialized 16×27 kernels,
///  * kQuantReference — bit-exact W1A<abits> QNN semantics (binarized
///    weights, thresholded activations); this is the golden model the
///    fabric accelerator must reproduce exactly.
///
/// Batch normalization is applied inference-style from stored statistics;
/// in the quantized path it folds into the activation thresholds just as
/// FINN folds it in hardware.

#include <optional>
#include <vector>

#include "gemm/first_layer.hpp"
#include "gemm/gemm_packed.hpp"
#include "gemm/im2col.hpp"
#include "nn/activation.hpp"
#include "nn/layer.hpp"
#include "quant/binary.hpp"
#include "quant/thresholds.hpp"

namespace tincy::nn {

/// Which kernel implementation executes the layer.
enum class ConvKernel {
  kReference,
  kFused,
  kLowp,
  kFusedLowp,
  kFirstLayerF32,
  kFirstLayerAcc32,
  kFirstLayerAcc16,
  kQuantReference,
};

/// Static configuration of a convolutional layer (the cfg-file view).
struct ConvConfig {
  int64_t filters = 1;
  int64_t size = 3;
  int64_t stride = 1;
  bool pad = true;  ///< Darknet semantics: pad flag -> padding = size/2.
  Activation activation = Activation::kLeaky;
  bool batch_normalize = false;
  bool binary_weights = false;  ///< cfg `binary=1`: ±1 weights (W1).
  int act_bits = 32;            ///< <8 enables quantized activations (A bits).
  float in_scale = 1.0f;        ///< activation grid of the incoming codes.
  float out_scale = 1.0f;       ///< activation grid this layer emits.
  /// cfg `bipolar=1`: activations are ±scale (W1A1, Hubara et al.) rather
  /// than the unsigned grid. Requires act_bits == 1; applies to both the
  /// incoming codes and the emitted ones.
  bool bipolar = false;
  ConvKernel kernel = ConvKernel::kReference;
};

class ConvLayer final : public Layer {
 public:
  /// Sizes all parameters for an input of shape (C, H, W); weights start
  /// zero (callers use zoo helpers or load_weights).
  ConvLayer(const ConvConfig& cfg, Shape input_shape);

  std::string type_name() const override { return "convolutional"; }
  Shape output_shape() const override;
  void forward(const Tensor& in, Tensor& out) override;
  void load_weights(WeightReader& r) override;
  void save_weights(WeightWriter& w) const override;
  OpsCount ops() const override;
  Precision precision() const override;

  const ConvConfig& config() const { return cfg_; }
  const gemm::ConvGeometry& geometry() const { return geom_; }

  /// Weight matrix, filters × (C·K·K) row-major.
  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  Tensor& biases() { return biases_; }
  const Tensor& biases() const { return biases_; }
  Tensor& bn_scales() { return bn_scales_; }
  Tensor& bn_mean() { return bn_mean_; }
  Tensor& bn_var() { return bn_var_; }
  const Tensor& bn_scales() const { return bn_scales_; }
  const Tensor& bn_mean() const { return bn_mean_; }
  const Tensor& bn_var() const { return bn_var_; }

  /// Per-output-channel activation thresholds of the quantized path, as the
  /// fabric consumes them. Channel c compares the raw ±1/A-bit accumulator:
  /// with positive batch-norm slope the level is |{k : acc >= T_k}|, with
  /// negative slope the comparison flips. Only valid for quantized layers.
  struct ChannelThresholds {
    quant::ThresholdSet set;
    bool ascending = true;  ///< false when the BN slope is negative.
    uint8_t apply(int32_t acc) const;
  };
  /// Derives (and caches) the fold of bias/BN/activation into thresholds.
  const std::vector<ChannelThresholds>& quant_thresholds() const;

  /// Binarized weight matrix of the quantized path (bit = sign).
  const quant::BinaryMatrix& binary_weights() const;

  /// Invalidate caches after mutating weights (training, quantizing).
  void invalidate_cached_quantization();

 private:
  void forward_float(const Tensor& in, Tensor& out, ConvKernel k);
  void forward_lowp(const Tensor& in, Tensor& out, ConvKernel k);
  void forward_quant_reference(const Tensor& in, Tensor& out);
  /// Applies BN (from statistics), bias and activation in place.
  void apply_post(Tensor& out) const;

  ConvConfig cfg_;
  gemm::ConvGeometry geom_;
  Tensor weights_;    // filters × patch
  Tensor biases_;     // filters
  Tensor bn_scales_;  // filters (gamma)
  Tensor bn_mean_;    // filters
  Tensor bn_var_;     // filters

  // Lazy caches of derived quantized weight forms.
  mutable std::optional<quant::BinaryMatrix> binary_cache_;
  mutable std::optional<Tensor> binary_float_cache_;
  mutable std::optional<std::vector<ChannelThresholds>> threshold_cache_;
  mutable std::optional<TensorU8> lowp_codes_;
  mutable std::optional<quant::AffineParams> lowp_params_;
  /// Weight panels pre-packed for the GEMM engine (pack/compute split:
  /// packed once per weight mutation, reused every frame).
  mutable std::optional<gemm::PackedLhs> packed_lowp_;
  mutable std::optional<gemm::SymmetricWeights> sym_weight_cache_;
};

/// Batch-norm epsilon shared by inference and the threshold fold.
inline constexpr float kBatchNormEps = 1e-5f;

}  // namespace tincy::nn
