#pragma once

/// \file network.hpp
/// The network container: an ordered list of layers plus their activation
/// buffers. Besides the classic whole-net forward() it exposes per-layer
/// invocation — the paper had to "disintegrate" Darknet's forward pass to
/// feed individual layers into the frame pipeline (§III-F); here that
/// access is first-class.
///
/// Per-layer timing is reported through the telemetry registry: every
/// run_layer/run_layer_into span records into `net.layer.<i>.<type>.ms`
/// and forward() additionally into `net.forward.ms`.

#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace tincy::nn {

class Network {
 public:
  /// `metrics` defaults to the process-wide registry; hand a dedicated
  /// one for isolated measurements (tests, side-by-side comparisons).
  explicit Network(Shape input_shape,
                   telemetry::MetricsRegistry* metrics = nullptr);

  /// Appends a layer; its input shape is the current output shape.
  void add(LayerPtr layer);

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  const std::vector<LayerPtr>& layers() const { return layers_; }
  Layer& layer(int64_t i) { return *layers_[static_cast<size_t>(i)]; }
  const Layer& layer(int64_t i) const { return *layers_[static_cast<size_t>(i)]; }

  Shape input_shape() const { return input_shape_; }
  /// Input shape of layer i (== output shape of layer i−1).
  Shape layer_input_shape(int64_t i) const;
  /// Output shape of the whole network.
  Shape output_shape() const;

  /// Whole-network inference; returns the final feature map. Each layer
  /// records a telemetry span retrievable via last_layer_ms()/snapshot().
  const Tensor& forward(const Tensor& input);

  /// Runs a single layer on an explicit input (pipeline mode). The result
  /// lands in this layer's activation buffer and is returned.
  const Tensor& run_layer(int64_t i, const Tensor& in);

  /// Runs a single layer into an external output buffer — the demo
  /// pipeline's per-frame-buffer mode, where concurrent frames must not
  /// share activation storage. Records the same telemetry span as
  /// run_layer, so per-layer timings stay fresh in pipeline mode.
  void run_layer_into(int64_t i, const Tensor& in, Tensor& out);

  /// Activation buffer of layer i after the last forward/run_layer.
  const Tensor& layer_output(int64_t i) const;

  /// Milliseconds layer i took in its most recent execution (0 before any
  /// run).
  /// \deprecated Thin adapter over the `net.layer.<i>.<type>.ms`
  /// telemetry histogram; prefer snapshot().
  double last_layer_ms(int64_t i) const;

  /// Sample of this network's metrics (the `net.` namespace of its
  /// registry): per-layer latency histograms plus `net.forward.ms`.
  telemetry::Snapshot snapshot() const;

  /// The registry this network reports into.
  telemetry::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  Shape input_shape_;
  telemetry::MetricsRegistry* metrics_;
  std::vector<LayerPtr> layers_;
  std::vector<Tensor> outputs_;
  std::vector<telemetry::Histogram*> layer_hist_;  ///< net.layer.<i>.<type>.ms
  std::vector<std::string> layer_trace_names_;     ///< net.layer.<i>.<type>
  telemetry::Histogram* forward_hist_;             ///< net.forward.ms
};

}  // namespace tincy::nn
