#pragma once

/// \file network.hpp
/// The network container: an ordered list of layers plus their activation
/// buffers. Besides the classic whole-net forward() it exposes per-layer
/// invocation — the paper had to "disintegrate" Darknet's forward pass to
/// feed individual layers into the frame pipeline (§III-F); here that
/// access is first-class.

#include <chrono>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace tincy::nn {

class Network {
 public:
  explicit Network(Shape input_shape);

  /// Appends a layer; its input shape is the current output shape.
  void add(LayerPtr layer);

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  const std::vector<LayerPtr>& layers() const { return layers_; }
  Layer& layer(int64_t i) { return *layers_[static_cast<size_t>(i)]; }
  const Layer& layer(int64_t i) const { return *layers_[static_cast<size_t>(i)]; }

  Shape input_shape() const { return input_shape_; }
  /// Input shape of layer i (== output shape of layer i−1).
  Shape layer_input_shape(int64_t i) const;
  /// Output shape of the whole network.
  Shape output_shape() const;

  /// Whole-network inference; returns the final feature map. Records
  /// per-layer wall-clock times retrievable via last_layer_ms().
  const Tensor& forward(const Tensor& input);

  /// Runs a single layer on an explicit input (pipeline mode). The result
  /// lands in this layer's activation buffer and is returned.
  const Tensor& run_layer(int64_t i, const Tensor& in);

  /// Activation buffer of layer i after the last forward/run_layer.
  const Tensor& layer_output(int64_t i) const;

  /// Milliseconds layer i took in the last forward() (0 before any run).
  double last_layer_ms(int64_t i) const;

 private:
  Shape input_shape_;
  std::vector<LayerPtr> layers_;
  std::vector<Tensor> outputs_;
  std::vector<double> layer_ms_;
};

}  // namespace tincy::nn
