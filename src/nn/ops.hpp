#pragma once

/// \file ops.hpp
/// Analytic operation accounting reproducing the paper's Tables I and II.
///
/// Conventions (reverse-engineered to match the published numbers exactly):
///  * convolution / fully connected: 2 · K²·C · C′ · outH·outW operations
///    (multiply and add counted separately);
///  * max pooling: K² · outH · outW comparisons, counted per channel
///    (channel-independent in the paper's accounting);
///  * Table II sums only dot-product workloads (conv + connected layers),
///    bucketed into "reduced" (< 8-bit, fabric class) and 8-bit work.

#include <string>
#include <vector>

#include "nn/network.hpp"
#include "nn/precision.hpp"

namespace tincy::nn {

/// One row of a Table-I-style per-layer ops listing.
struct LayerOpsRow {
  int64_t index = 0;       ///< 1-based layer number as in the paper
  std::string type;        ///< "conv", "pool", ...
  int64_t ops = 0;
  Precision precision;
  bool dot_product = false;  ///< participates in Table II sums
};

/// Per-layer rows for the given network.
std::vector<LayerOpsRow> ops_rows(const Network& net);

/// Total operations per frame (Table I's Σ row).
int64_t total_ops(const Network& net);

/// Table II buckets over dot-product layers only.
struct WorkloadSummary {
  int64_t reduced_ops = 0;    ///< sub-8-bit work (W1A1 / W1A3 / ...)
  int64_t eight_bit_ops = 0;  ///< 8-bit fixed-point work
  int64_t float_ops = 0;      ///< remaining float work
  Precision reduced_precision = kFloat;  ///< dominant reduced class

  int64_t total() const { return reduced_ops + eight_bit_ops + float_ops; }
};

WorkloadSummary dot_product_workload(const Network& net);

}  // namespace tincy::nn
