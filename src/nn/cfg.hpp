#pragma once

/// \file cfg.hpp
/// Parser for Darknet-style .cfg files: INI-like `[section]` headers with
/// `key=value` lines and `#` comments — the format of Fig. 4.

#include <map>
#include <string>
#include <vector>

namespace tincy::nn {

/// One cfg section in file order.
struct Section {
  std::string name;                         ///< e.g. "convolutional"
  std::map<std::string, std::string> kv;    ///< raw key=value pairs
  int line = 0;                             ///< header line (diagnostics)

  bool has(const std::string& key) const { return kv.contains(key); }

  /// Typed getters with defaults; throw tincy::Error on malformed values.
  int64_t get_int(const std::string& key, int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  /// Comma-separated float list (e.g. region anchors).
  std::vector<float> get_float_list(const std::string& key) const;

  /// Required-key getters: like the above but a missing key is a clean
  /// tincy::Error naming the key and section instead of a fallback.
  int64_t require_int(const std::string& key) const;
  std::string require_string(const std::string& key) const;
};

/// Parses cfg text; throws on stray key=value lines before any section,
/// malformed section headers, and duplicate keys within a section.
std::vector<Section> parse_cfg(const std::string& text);

/// Reads and parses a cfg file.
std::vector<Section> parse_cfg_file(const std::string& path);

}  // namespace tincy::nn
