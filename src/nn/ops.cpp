#include "nn/ops.hpp"

namespace tincy::nn {
namespace {

bool is_dot_product_layer(const Layer& layer) {
  const std::string t = layer.type_name();
  return t == "convolutional" || t == "connected" || t == "offload";
}

std::string short_type(const std::string& type_name) {
  if (type_name == "convolutional") return "conv";
  if (type_name == "maxpool") return "pool";
  return type_name;
}

}  // namespace

std::vector<LayerOpsRow> ops_rows(const Network& net) {
  std::vector<LayerOpsRow> rows;
  rows.reserve(static_cast<size_t>(net.num_layers()));
  for (int64_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    LayerOpsRow row;
    row.index = i + 1;
    row.type = short_type(layer.type_name());
    const OpsCount oc = layer.ops();
    row.ops = oc.ops;
    row.precision = oc.precision;
    row.dot_product = is_dot_product_layer(layer);
    rows.push_back(std::move(row));
  }
  return rows;
}

int64_t total_ops(const Network& net) {
  int64_t total = 0;
  for (const auto& row : ops_rows(net)) total += row.ops;
  return total;
}

WorkloadSummary dot_product_workload(const Network& net) {
  WorkloadSummary s;
  for (const auto& row : ops_rows(net)) {
    if (!row.dot_product) continue;
    if (row.precision.is_reduced()) {
      s.reduced_ops += row.ops;
      s.reduced_precision = row.precision;
    } else if (row.precision.is_8bit()) {
      s.eight_bit_ops += row.ops;
    } else {
      s.float_ops += row.ops;
    }
  }
  return s;
}

}  // namespace tincy::nn
