#pragma once

/// \file weights_io.hpp
/// Darknet-compatible binary weight files: a small version header followed
/// by each parameterized layer's floats in network order. The offload
/// backends additionally use per-layer files in a "binparam" directory,
/// mirroring the paper's `weights=binparam-tincy-yolo/` cfg line (Fig. 4).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace tincy::nn {

/// Header of a Darknet weight file.
struct WeightsHeader {
  int32_t major = 0;
  int32_t minor = 2;
  int32_t revision = 0;
  uint64_t seen = 0;  ///< images seen during training
};

/// Sequential reader over a weight stream. Layers consume floats in the
/// exact order the writer emitted them.
class WeightReader {
 public:
  explicit WeightReader(std::istream& in);

  const WeightsHeader& header() const { return header_; }

  /// Reads `n` floats into `dst`; throws on short reads.
  void read(float* dst, int64_t n);

  /// Reads a whole tensor's worth of floats.
  void read(Tensor& t) { read(t.data(), t.numel()); }

 private:
  std::istream& in_;
  WeightsHeader header_;
};

/// Sequential writer producing a stream WeightReader can consume.
class WeightWriter {
 public:
  WeightWriter(std::ostream& out, const WeightsHeader& header);

  void write(const float* src, int64_t n);
  void write(const Tensor& t) { write(t.data(), t.numel()); }

 private:
  std::ostream& out_;
};

class Network;

/// Saves all layer parameters of `net` to a Darknet-style weight file.
void save_weights(const Network& net, const std::string& path,
                  uint64_t seen = 0);

/// Loads parameters saved by save_weights back into `net` (topologies must
/// match; layers read in order).
void load_weights(Network& net, const std::string& path);

}  // namespace tincy::nn
