#include "nn/activation.hpp"

#include <cmath>

#include "core/errors.hpp"

namespace tincy::nn {

float apply(Activation a, float x) {
  switch (a) {
    case Activation::kLinear:
      return x;
    case Activation::kRelu:
      return x > 0.0f ? x : 0.0f;
    case Activation::kLeaky:
      return x > 0.0f ? x : 0.1f * x;
    case Activation::kLogistic:
      return 1.0f / (1.0f + std::exp(-x));
  }
  return x;
}

void apply(Activation a, Tensor& t) {
  if (a == Activation::kLinear) return;
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = apply(a, t[i]);
}

float derivative(Activation a, float x) {
  switch (a) {
    case Activation::kLinear:
      return 1.0f;
    case Activation::kRelu:
      return x > 0.0f ? 1.0f : 0.0f;
    case Activation::kLeaky:
      return x > 0.0f ? 1.0f : 0.1f;
    case Activation::kLogistic: {
      const float s = apply(Activation::kLogistic, x);
      return s * (1.0f - s);
    }
  }
  return 1.0f;
}

Activation parse_activation(std::string_view name) {
  if (name == "linear") return Activation::kLinear;
  if (name == "relu") return Activation::kRelu;
  if (name == "leaky") return Activation::kLeaky;
  if (name == "logistic") return Activation::kLogistic;
  throw Error("unknown activation: " + std::string(name));
}

std::string_view activation_name(Activation a) {
  switch (a) {
    case Activation::kLinear:
      return "linear";
    case Activation::kRelu:
      return "relu";
    case Activation::kLeaky:
      return "leaky";
    case Activation::kLogistic:
      return "logistic";
  }
  return "linear";
}

}  // namespace tincy::nn
