#include "nn/builder.hpp"

#include "core/errors.hpp"
#include "nn/connected_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/offload_layer.hpp"
#include "nn/region_layer.hpp"

namespace tincy::nn {
namespace {

ConvKernel parse_kernel(const std::string& name) {
  if (name == "reference") return ConvKernel::kReference;
  if (name == "fused") return ConvKernel::kFused;
  if (name == "lowp") return ConvKernel::kLowp;
  if (name == "fused_lowp") return ConvKernel::kFusedLowp;
  if (name == "first16_f32") return ConvKernel::kFirstLayerF32;
  if (name == "first16_acc32") return ConvKernel::kFirstLayerAcc32;
  if (name == "first16_acc16") return ConvKernel::kFirstLayerAcc16;
  if (name == "quant_reference") return ConvKernel::kQuantReference;
  throw Error("unknown conv kernel: " + name);
}

LayerPtr make_conv(const Section& s, Shape in_shape) {
  ConvConfig cfg;
  cfg.filters = s.get_int("filters", 1);
  cfg.size = s.get_int("size", 3);
  cfg.stride = s.get_int("stride", 1);
  cfg.pad = s.get_int("pad", 0) != 0;
  cfg.activation =
      parse_activation(s.get_string("activation", "leaky"));
  cfg.batch_normalize = s.get_int("batch_normalize", 0) != 0;
  cfg.binary_weights = s.get_int("binary", 0) != 0;
  cfg.act_bits = static_cast<int>(s.get_int("abits", 32));
  cfg.in_scale = static_cast<float>(s.get_double("in_scale", 1.0));
  cfg.out_scale = static_cast<float>(s.get_double("out_scale", 1.0));
  cfg.bipolar = s.get_int("bipolar", 0) != 0;
  cfg.kernel = parse_kernel(s.get_string("kernel", "reference"));
  return std::make_unique<ConvLayer>(cfg, in_shape);
}

LayerPtr make_maxpool(const Section& s, Shape in_shape) {
  MaxPoolConfig cfg;
  cfg.size = s.get_int("size", 2);
  cfg.stride = s.get_int("stride", 2);
  return std::make_unique<MaxPoolLayer>(cfg, in_shape);
}

LayerPtr make_connected(const Section& s, Shape in_shape) {
  ConnectedConfig cfg;
  cfg.outputs = s.get_int("output", 1);
  cfg.activation = parse_activation(s.get_string("activation", "linear"));
  cfg.binary_weights = s.get_int("binary", 0) != 0;
  cfg.act_bits = static_cast<int>(s.get_int("abits", 32));
  cfg.in_scale = static_cast<float>(s.get_double("in_scale", 1.0));
  cfg.out_scale = static_cast<float>(s.get_double("out_scale", 1.0));
  cfg.bipolar = s.get_int("bipolar", 0) != 0;
  cfg.lowp = s.get_int("lowp", 0) != 0;
  return std::make_unique<ConnectedLayer>(cfg, in_shape);
}

LayerPtr make_region(const Section& s, Shape in_shape) {
  RegionConfig cfg;
  cfg.classes = s.get_int("classes", 20);
  cfg.coords = s.get_int("coords", 4);
  cfg.num = s.get_int("num", 5);
  cfg.anchors = s.get_float_list("anchors");
  cfg.softmax = s.get_int("softmax", 1) != 0;
  return std::make_unique<RegionLayer>(cfg, in_shape);
}

LayerPtr make_offload(const Section& s, Shape in_shape) {
  OffloadConfig cfg;
  cfg.library = s.require_string("library");
  cfg.network = s.get_string("network", "");
  cfg.weights = s.get_string("weights", "");
  const int64_t c = s.require_int("channel");
  const int64_t h = s.require_int("height");
  const int64_t w = s.require_int("width");
  TINCY_CHECK_MSG(c > 0 && h > 0 && w > 0,
                  "[offload] needs positive output geometry "
                  "height/width/channel (line " << s.line << ")");
  cfg.output_shape = Shape{c, h, w};
  for (const auto& [k, v] : s.kv) {
    if (k != "library" && k != "network" && k != "weights" && k != "channel" &&
        k != "height" && k != "width")
      cfg.extra[k] = v;
  }
  return std::make_unique<OffloadLayer>(cfg, in_shape);
}

}  // namespace

std::unique_ptr<Network> build_network(const std::vector<Section>& sections,
                                       telemetry::MetricsRegistry* metrics) {
  TINCY_CHECK_MSG(!sections.empty() && sections.front().name == "net",
                  "cfg must start with a [net] section");
  const Section& net_s = sections.front();
  const Shape input{net_s.get_int("channels", 3), net_s.get_int("height", 416),
                    net_s.get_int("width", 416)};
  auto net = std::make_unique<Network>(input, metrics);

  for (size_t i = 1; i < sections.size(); ++i) {
    const Section& s = sections[i];
    const Shape in_shape = net->num_layers() == 0
                               ? input
                               : net->layers().back()->output_shape();
    if (s.name == "convolutional" || s.name == "conv") {
      net->add(make_conv(s, in_shape));
    } else if (s.name == "maxpool") {
      net->add(make_maxpool(s, in_shape));
    } else if (s.name == "connected") {
      net->add(make_connected(s, in_shape));
    } else if (s.name == "region") {
      net->add(make_region(s, in_shape));
    } else if (s.name == "offload") {
      net->add(make_offload(s, in_shape));
    } else {
      throw Error("unsupported cfg section [" + s.name + "] at line " +
                  std::to_string(s.line));
    }
  }
  return net;
}

std::unique_ptr<Network> build_network_from_string(
    const std::string& cfg_text, telemetry::MetricsRegistry* metrics) {
  return build_network(parse_cfg(cfg_text), metrics);
}

std::unique_ptr<Network> build_network_from_file(
    const std::string& path, telemetry::MetricsRegistry* metrics) {
  return build_network(parse_cfg_file(path), metrics);
}

}  // namespace tincy::nn
