#include "nn/weights_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "core/errors.hpp"
#include "nn/network.hpp"

namespace tincy::nn {

WeightReader::WeightReader(std::istream& in) : in_(in) {
  in_.read(reinterpret_cast<char*>(&header_.major), sizeof(int32_t));
  in_.read(reinterpret_cast<char*>(&header_.minor), sizeof(int32_t));
  in_.read(reinterpret_cast<char*>(&header_.revision), sizeof(int32_t));
  in_.read(reinterpret_cast<char*>(&header_.seen), sizeof(uint64_t));
  TINCY_CHECK_MSG(static_cast<bool>(in_), "truncated weights header");
}

void WeightReader::read(float* dst, int64_t n) {
  in_.read(reinterpret_cast<char*>(dst),
           static_cast<std::streamsize>(n * static_cast<int64_t>(sizeof(float))));
  TINCY_CHECK_MSG(static_cast<bool>(in_), "truncated weights payload (" << n
                                                                        << " floats)");
}

WeightWriter::WeightWriter(std::ostream& out, const WeightsHeader& header)
    : out_(out) {
  out_.write(reinterpret_cast<const char*>(&header.major), sizeof(int32_t));
  out_.write(reinterpret_cast<const char*>(&header.minor), sizeof(int32_t));
  out_.write(reinterpret_cast<const char*>(&header.revision), sizeof(int32_t));
  out_.write(reinterpret_cast<const char*>(&header.seen), sizeof(uint64_t));
}

void WeightWriter::write(const float* src, int64_t n) {
  out_.write(
      reinterpret_cast<const char*>(src),
      static_cast<std::streamsize>(n * static_cast<int64_t>(sizeof(float))));
  TINCY_CHECK_MSG(static_cast<bool>(out_), "weight write failed");
}

void save_weights(const Network& net, const std::string& path, uint64_t seen) {
  std::ofstream out(path, std::ios::binary);
  TINCY_CHECK_MSG(out.is_open(), "cannot open " << path);
  WeightsHeader header;
  header.seen = seen;
  WeightWriter writer(out, header);
  for (const auto& layer : net.layers()) layer->save_weights(writer);
}

void load_weights(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TINCY_CHECK_MSG(in.is_open(), "cannot open " << path);
  WeightReader reader(in);
  for (const auto& layer : net.layers()) layer->load_weights(reader);
}

}  // namespace tincy::nn
