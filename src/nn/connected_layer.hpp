#pragma once

/// \file connected_layer.hpp
/// Fully connected layer ("connected" in Darknet cfgs). Needed by the
/// MLP-4 and CNV-6 workloads of Table II; supports the same binary-weight
/// and quantized-activation labelling as the convolutional layer so the
/// ops accounting buckets its work correctly.

#include <optional>

#include "gemm/gemm_packed.hpp"
#include "nn/activation.hpp"
#include "nn/layer.hpp"
#include "quant/affine.hpp"

namespace tincy::nn {

struct ConnectedConfig {
  int64_t outputs = 1;
  Activation activation = Activation::kLinear;
  bool binary_weights = false;
  int act_bits = 32;
  float in_scale = 1.0f;
  float out_scale = 1.0f;
  /// ±scale activations (W1A1); requires act_bits == 1, linear activation.
  bool bipolar = false;
  /// cfg `lowp=1`: run the forward pass through the 8-bit packed GEMM
  /// engine (gemmlowp-style affine weights, per-frame input calibration)
  /// instead of float dot products. Ignored for binary_weights layers.
  bool lowp = false;
};

class ConnectedLayer final : public Layer {
 public:
  ConnectedLayer(const ConnectedConfig& cfg, Shape input_shape);

  std::string type_name() const override { return "connected"; }
  Shape output_shape() const override { return Shape{cfg_.outputs}; }
  void forward(const Tensor& in, Tensor& out) override;
  void load_weights(WeightReader& r) override;
  void save_weights(WeightWriter& w) const override;
  OpsCount ops() const override;
  Precision precision() const override;

  const ConnectedConfig& config() const { return cfg_; }
  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  Tensor& biases() { return biases_; }
  const Tensor& biases() const { return biases_; }
  int64_t inputs() const { return inputs_; }

  /// Invalidate derived weight caches after mutating weights.
  void invalidate_cached_quantization();

 private:
  void forward_lowp(const Tensor& in, Tensor& out);

  ConnectedConfig cfg_;
  int64_t inputs_ = 0;
  Tensor weights_;  // outputs × inputs
  Tensor biases_;   // outputs

  // Lazy caches of the lowp path's derived weight forms (quantized codes
  // and the GEMM engine's packed panels), built once per weight mutation.
  mutable std::optional<quant::AffineParams> lowp_params_;
  mutable std::optional<gemm::PackedLhs> packed_lowp_;
};

}  // namespace tincy::nn
