#pragma once

/// \file activation.hpp
/// Per-element activation functions. Tincy YOLO's modification (a) replaces
/// leaky ReLU by plain ReLU, which folds away entirely into the FINN
/// threshold units.

#include <string_view>

#include "core/tensor.hpp"

namespace tincy::nn {

enum class Activation {
  kLinear,
  kRelu,
  kLeaky,     ///< Darknet leaky ReLU, slope 0.1 on the negative side.
  kLogistic,  ///< sigmoid, used inside the region layer
};

/// Scalar application.
float apply(Activation a, float x);

/// In-place application over a whole tensor.
void apply(Activation a, Tensor& t);

/// Derivative w.r.t. the *pre-activation* input given the input value
/// (used by the training substrate).
float derivative(Activation a, float x);

/// Parses Darknet cfg names: "linear", "relu", "leaky", "logistic".
Activation parse_activation(std::string_view name);

/// Canonical cfg name of an activation.
std::string_view activation_name(Activation a);

}  // namespace tincy::nn
