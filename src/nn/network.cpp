#include "nn/network.hpp"

namespace tincy::nn {

Network::Network(Shape input_shape) : input_shape_(input_shape) {
  TINCY_CHECK_MSG(input_shape.rank() >= 1, "empty input shape");
}

void Network::add(LayerPtr layer) {
  TINCY_CHECK(layer != nullptr);
  outputs_.emplace_back(layer->output_shape());
  layer_ms_.push_back(0.0);
  layers_.push_back(std::move(layer));
}

Shape Network::layer_input_shape(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return i == 0 ? input_shape_
                : layers_[static_cast<size_t>(i - 1)]->output_shape();
}

Shape Network::output_shape() const {
  TINCY_CHECK_MSG(!layers_.empty(), "empty network");
  return layers_.back()->output_shape();
}

const Tensor& Network::forward(const Tensor& input) {
  TINCY_CHECK_MSG(!layers_.empty(), "empty network");
  const Tensor* current = &input;
  for (int64_t i = 0; i < num_layers(); ++i) {
    current = &run_layer(i, *current);
  }
  return *current;
}

const Tensor& Network::run_layer(int64_t i, const Tensor& in) {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  const auto t0 = std::chrono::steady_clock::now();
  layers_[static_cast<size_t>(i)]->forward(in, outputs_[static_cast<size_t>(i)]);
  const auto t1 = std::chrono::steady_clock::now();
  layer_ms_[static_cast<size_t>(i)] =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return outputs_[static_cast<size_t>(i)];
}

const Tensor& Network::layer_output(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return outputs_[static_cast<size_t>(i)];
}

double Network::last_layer_ms(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return layer_ms_[static_cast<size_t>(i)];
}

}  // namespace tincy::nn
