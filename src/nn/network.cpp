#include "nn/network.hpp"

namespace tincy::nn {

Network::Network(Shape input_shape, telemetry::MetricsRegistry* metrics)
    : input_shape_(input_shape),
      metrics_(metrics ? metrics : &telemetry::MetricsRegistry::global()) {
  TINCY_CHECK_MSG(input_shape.rank() >= 1, "empty input shape");
  forward_hist_ = &metrics_->histogram("net.forward.ms");
}

void Network::add(LayerPtr layer) {
  TINCY_CHECK(layer != nullptr);
  outputs_.emplace_back(layer->output_shape());
  const std::string label = "net.layer." + std::to_string(layers_.size()) +
                            "." + layer->type_name();
  layer_hist_.push_back(&metrics_->histogram(label + ".ms"));
  layer_trace_names_.push_back(label);
  layers_.push_back(std::move(layer));
}

Shape Network::layer_input_shape(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return i == 0 ? input_shape_
                : layers_[static_cast<size_t>(i - 1)]->output_shape();
}

Shape Network::output_shape() const {
  TINCY_CHECK_MSG(!layers_.empty(), "empty network");
  return layers_.back()->output_shape();
}

const Tensor& Network::forward(const Tensor& input) {
  TINCY_CHECK_MSG(!layers_.empty(), "empty network");
  telemetry::ScopedTimer span(*forward_hist_);
  const Tensor* current = &input;
  for (int64_t i = 0; i < num_layers(); ++i) {
    current = &run_layer(i, *current);
  }
  return *current;
}

const Tensor& Network::run_layer(int64_t i, const Tensor& in) {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  run_layer_into(i, in, outputs_[static_cast<size_t>(i)]);
  return outputs_[static_cast<size_t>(i)];
}

void Network::run_layer_into(int64_t i, const Tensor& in, Tensor& out) {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  telemetry::ScopedTimer span(*layer_hist_[static_cast<size_t>(i)]);
  // Trace span tagged with the frame identity installed by the
  // server/pipeline worker (docs/observability.md "Tracing").
  telemetry::TraceSpan trace(&telemetry::TraceCollector::global(),
                             layer_trace_names_[static_cast<size_t>(i)],
                             telemetry::current_trace_context());
  layers_[static_cast<size_t>(i)]->forward(in, out);
}

const Tensor& Network::layer_output(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return outputs_[static_cast<size_t>(i)];
}

double Network::last_layer_ms(int64_t i) const {
  TINCY_CHECK_MSG(i >= 0 && i < num_layers(), "layer " << i);
  return layer_hist_[static_cast<size_t>(i)]->last();
}

telemetry::Snapshot Network::snapshot() const {
  return metrics_->snapshot("net.");
}

}  // namespace tincy::nn
