#pragma once

/// \file layer.hpp
/// The layer abstraction of the Darknet-style framework.
///
/// Darknet virtualizes layer functionality through function pointers; the
/// paper's offload mechanism (Fig. 3) exploits exactly that by redirecting
/// a layer's init / load_weights / forward / destroy hooks into a user
/// library. Here the same life cycle is expressed as virtuals on a common
/// base class; OffloadLayer forwards them into a pluggable backend.

#include <cstdint>
#include <memory>
#include <string>

#include "core/tensor.hpp"
#include "nn/precision.hpp"

namespace tincy::nn {

class WeightReader;
class WeightWriter;

/// Operation count of one layer, bucketed by precision (Table I/II).
struct OpsCount {
  int64_t ops = 0;  ///< multiply+add counted as 2 ops; pool comparisons per channel.
  Precision precision = kFloat;
};

/// Abstract network layer. Construction plays the role of Darknet's init
/// hook (the layer sizes its buffers from the incoming shape); the other
/// three hooks map to the virtuals below. Layers own their parameters.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Darknet cfg section name of this layer ("convolutional", ...).
  virtual std::string type_name() const = 0;

  /// Shape of the output feature map.
  virtual Shape output_shape() const = 0;

  /// load_weights hook: reads this layer's parameters in file order.
  /// Layers without parameters do nothing.
  virtual void load_weights(WeightReader&) {}

  /// Writes parameters in the same order load_weights reads them.
  virtual void save_weights(WeightWriter&) const {}

  /// forward hook: computes the output feature map from the input.
  /// `out` is pre-allocated to output_shape().
  virtual void forward(const Tensor& in, Tensor& out) = 0;

  /// Operations per frame in the paper's accounting (see ops.hpp).
  virtual OpsCount ops() const { return {}; }

  /// Precision class this layer computes in.
  virtual Precision precision() const { return kFloat; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace tincy::nn
