#pragma once

/// \file describe.hpp
/// Human-readable network summaries (Darknet prints a similar table on
/// load) and cfg serialization — the inverse of the parser, so built or
/// programmatically modified networks can be written back to disk.

#include <string>

#include "nn/network.hpp"

namespace tincy::nn {

/// Layer-by-layer table: index, type, output shape, ops, precision.
std::string summary(const Network& net);

/// Serializes the network to Darknet-style cfg text. Reparsing the result
/// with build_network_from_string produces a structurally identical
/// network (weights are not part of cfg files; use weights_io for those).
std::string to_cfg(const Network& net);

}  // namespace tincy::nn
