#include "nn/connected_layer.hpp"

#include <cmath>

#include "gemm/scratch.hpp"
#include "nn/weights_io.hpp"
#include "quant/thresholds.hpp"

namespace tincy::nn {

ConnectedLayer::ConnectedLayer(const ConnectedConfig& cfg, Shape input_shape)
    : cfg_(cfg), inputs_(input_shape.numel()) {
  TINCY_CHECK(cfg.outputs > 0 && inputs_ > 0);
  if (cfg.bipolar) {
    TINCY_CHECK_MSG(cfg.act_bits == 1, "bipolar requires abits=1");
    TINCY_CHECK_MSG(cfg.activation == Activation::kLinear,
                    "bipolar layers use the sign itself as activation");
  }
  weights_ = Tensor(Shape{cfg.outputs, inputs_});
  biases_ = Tensor(Shape{cfg.outputs});
}

void ConnectedLayer::invalidate_cached_quantization() {
  lowp_params_.reset();
  packed_lowp_.reset();
}

void ConnectedLayer::forward_lowp(const Tensor& in, Tensor& out) {
  if (!packed_lowp_) {
    const auto [wlo, whi] = quant::min_max(weights_);
    lowp_params_ = quant::choose_affine_params(wlo, whi);
    const TensorU8 codes = quant::quantize(weights_, *lowp_params_);
    packed_lowp_ = gemm::pack_lhs(codes.data(), cfg_.outputs, inputs_,
                                  lowp_params_->zero_point);
  }
  // Per-frame input calibration, as in the conv lowp path.
  const auto [lo, hi] = quant::min_max(in);
  const quant::AffineParams in_params = quant::choose_affine_params(lo, hi);
  auto& arena = gemm::thread_arena();
  gemm::ScratchScope scope(arena);
  uint8_t* x = arena.alloc<uint8_t>(inputs_);
  for (int64_t i = 0; i < inputs_; ++i) x[i] = in_params.quantize(in[i]);
  int32_t* acc = arena.alloc<int32_t>(cfg_.outputs);
  gemm::gemm_lowp_packed(*packed_lowp_, x, in_params.zero_point, 1, acc);
  const float real_scale = in_params.scale * lowp_params_->scale;
  for (int64_t o = 0; o < cfg_.outputs; ++o)
    out[o] = apply(cfg_.activation,
                   real_scale * static_cast<float>(acc[o]) + biases_[o]);
}

void ConnectedLayer::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK(in.numel() == inputs_);
  TINCY_CHECK(out.numel() == cfg_.outputs);
  if (cfg_.lowp && !cfg_.binary_weights) {
    forward_lowp(in, out);
  } else {
    for (int64_t o = 0; o < cfg_.outputs; ++o) {
      const float* w = weights_.data() + o * inputs_;
      float acc = biases_[o];
      if (cfg_.binary_weights) {
        for (int64_t i = 0; i < inputs_; ++i)
          acc += (w[i] >= 0.0f ? in[i] : -in[i]);
      } else {
        for (int64_t i = 0; i < inputs_; ++i) acc += w[i] * in[i];
      }
      out[o] = apply(cfg_.activation, acc);
    }
  }
  if (cfg_.bipolar) {
    const quant::BipolarActQuant q{cfg_.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = q.dequantize(q.quantize(out[i]));
  } else if (cfg_.act_bits < 8) {
    const quant::UniformActQuant q{cfg_.act_bits, cfg_.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = q.dequantize(q.quantize(out[i]));
  }
}

void ConnectedLayer::load_weights(WeightReader& r) {
  r.read(biases_);
  r.read(weights_);
  invalidate_cached_quantization();
}

void ConnectedLayer::save_weights(WeightWriter& w) const {
  w.write(biases_);
  w.write(weights_);
}

OpsCount ConnectedLayer::ops() const {
  return {2 * inputs_ * cfg_.outputs, precision()};
}

Precision ConnectedLayer::precision() const {
  if (cfg_.binary_weights && cfg_.act_bits < 8) return {1, cfg_.act_bits};
  if (cfg_.lowp) return kW8A8;
  return kFloat;
}

}  // namespace tincy::nn
