#include "nn/connected_layer.hpp"

#include <cmath>

#include "nn/weights_io.hpp"
#include "quant/thresholds.hpp"

namespace tincy::nn {

ConnectedLayer::ConnectedLayer(const ConnectedConfig& cfg, Shape input_shape)
    : cfg_(cfg), inputs_(input_shape.numel()) {
  TINCY_CHECK(cfg.outputs > 0 && inputs_ > 0);
  if (cfg.bipolar) {
    TINCY_CHECK_MSG(cfg.act_bits == 1, "bipolar requires abits=1");
    TINCY_CHECK_MSG(cfg.activation == Activation::kLinear,
                    "bipolar layers use the sign itself as activation");
  }
  weights_ = Tensor(Shape{cfg.outputs, inputs_});
  biases_ = Tensor(Shape{cfg.outputs});
}

void ConnectedLayer::forward(const Tensor& in, Tensor& out) {
  TINCY_CHECK(in.numel() == inputs_);
  TINCY_CHECK(out.numel() == cfg_.outputs);
  for (int64_t o = 0; o < cfg_.outputs; ++o) {
    const float* w = weights_.data() + o * inputs_;
    float acc = biases_[o];
    if (cfg_.binary_weights) {
      for (int64_t i = 0; i < inputs_; ++i)
        acc += (w[i] >= 0.0f ? in[i] : -in[i]);
    } else {
      for (int64_t i = 0; i < inputs_; ++i) acc += w[i] * in[i];
    }
    out[o] = apply(cfg_.activation, acc);
  }
  if (cfg_.bipolar) {
    const quant::BipolarActQuant q{cfg_.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = q.dequantize(q.quantize(out[i]));
  } else if (cfg_.act_bits < 8) {
    const quant::UniformActQuant q{cfg_.act_bits, cfg_.out_scale};
    for (int64_t i = 0; i < out.numel(); ++i)
      out[i] = q.dequantize(q.quantize(out[i]));
  }
}

void ConnectedLayer::load_weights(WeightReader& r) {
  r.read(biases_);
  r.read(weights_);
}

void ConnectedLayer::save_weights(WeightWriter& w) const {
  w.write(biases_);
  w.write(weights_);
}

OpsCount ConnectedLayer::ops() const {
  return {2 * inputs_ * cfg_.outputs, precision()};
}

Precision ConnectedLayer::precision() const {
  if (cfg_.binary_weights && cfg_.act_bits < 8) return {1, cfg_.act_bits};
  return kFloat;
}

}  // namespace tincy::nn
