#pragma once

/// \file box.hpp
/// Bounding boxes and detections in the Darknet convention: boxes are
/// (center-x, center-y, width, height), normalized to [0, 1] relative to
/// the image.

#include <cstdint>
#include <vector>

namespace tincy::detect {

struct Box {
  float x = 0.0f;  ///< center x (normalized)
  float y = 0.0f;  ///< center y (normalized)
  float w = 0.0f;
  float h = 0.0f;

  float left() const { return x - w / 2; }
  float right() const { return x + w / 2; }
  float top() const { return y - h / 2; }
  float bottom() const { return y + h / 2; }
  float area() const { return w * h; }
};

/// Intersection area of two boxes (0 when disjoint).
float intersection(const Box& a, const Box& b);

/// Intersection over union in [0, 1]; 0 when both are degenerate.
float iou(const Box& a, const Box& b);

/// One detection produced by the region decoder.
struct Detection {
  Box box;
  int class_id = -1;
  float objectness = 0.0f;
  float class_prob = 0.0f;

  /// Darknet's detection score: objectness · class probability.
  float score() const { return objectness * class_prob; }
};

/// Labeled ground-truth object.
struct GroundTruth {
  Box box;
  int class_id = -1;
};

}  // namespace tincy::detect
