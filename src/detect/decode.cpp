#include "detect/decode.hpp"

#include <cmath>

#include "core/errors.hpp"

namespace tincy::detect {

std::vector<Detection> decode_region(const Tensor& feature_map,
                                     const nn::RegionConfig& cfg,
                                     float threshold) {
  TINCY_CHECK(feature_map.shape().rank() == 3);
  const int64_t H = feature_map.shape().height();
  const int64_t W = feature_map.shape().width();
  const int64_t cell = H * W;
  const int64_t per_anchor = cfg.coords + 1 + cfg.classes;
  TINCY_CHECK(feature_map.shape().channels() == cfg.num * per_anchor);
  TINCY_CHECK(static_cast<int64_t>(cfg.anchors.size()) == 2 * cfg.num);

  std::vector<Detection> dets;
  for (int64_t a = 0; a < cfg.num; ++a) {
    const float* base = feature_map.data() + a * per_anchor * cell;
    const float pw = cfg.anchors[static_cast<size_t>(2 * a)];
    const float ph = cfg.anchors[static_cast<size_t>(2 * a + 1)];
    for (int64_t row = 0; row < H; ++row) {
      for (int64_t col = 0; col < W; ++col) {
        const int64_t i = row * W + col;
        const float objectness = base[cfg.coords * cell + i];
        if (objectness < threshold) continue;

        Detection d;
        d.objectness = objectness;
        d.box.x = (static_cast<float>(col) + base[0 * cell + i]) /
                  static_cast<float>(W);
        d.box.y = (static_cast<float>(row) + base[1 * cell + i]) /
                  static_cast<float>(H);
        d.box.w = pw * std::exp(base[2 * cell + i]) / static_cast<float>(W);
        d.box.h = ph * std::exp(base[3 * cell + i]) / static_cast<float>(H);

        // Best class for this anchor slot.
        const float* cls = base + (cfg.coords + 1) * cell;
        int best = 0;
        float best_p = cls[i];
        for (int64_t c = 1; c < cfg.classes; ++c) {
          if (cls[c * cell + i] > best_p) {
            best_p = cls[c * cell + i];
            best = static_cast<int>(c);
          }
        }
        d.class_id = best;
        d.class_prob = best_p;
        if (d.score() >= threshold) dets.push_back(d);
      }
    }
  }
  return dets;
}

}  // namespace tincy::detect
