#include "detect/map.hpp"

#include <algorithm>
#include <cstdint>

namespace tincy::detect {
namespace {

struct ScoredDetection {
  float score;
  int image;
  const Detection* det;
};

double eleven_point_ap(const std::vector<double>& recall,
                       const std::vector<double>& precision) {
  double ap = 0.0;
  for (int k = 0; k <= 10; ++k) {
    const double r = k / 10.0;
    double best = 0.0;
    for (size_t i = 0; i < recall.size(); ++i)
      if (recall[i] >= r) best = std::max(best, precision[i]);
    ap += best / 11.0;
  }
  return ap;
}

double all_point_ap(std::vector<double> recall, std::vector<double> precision) {
  // Standard VOC >=2010 scheme: monotonize precision from the right, then
  // integrate over recall steps.
  for (size_t i = precision.size(); i-- > 1;)
    precision[i - 1] = std::max(precision[i - 1], precision[i]);
  double ap = 0.0;
  double prev_r = 0.0;
  for (size_t i = 0; i < recall.size(); ++i) {
    ap += (recall[i] - prev_r) * precision[i];
    prev_r = recall[i];
  }
  return ap;
}

}  // namespace

double average_precision(const std::vector<ImageEval>& images, int class_id,
                         float iou_threshold, ApStyle style) {
  // Collect this class's detections across all images and count positives.
  std::vector<ScoredDetection> dets;
  int64_t num_gt = 0;
  for (size_t img = 0; img < images.size(); ++img) {
    for (const auto& d : images[img].detections)
      if (d.class_id == class_id)
        dets.push_back({d.score(), static_cast<int>(img), &d});
    for (const auto& g : images[img].ground_truth)
      if (g.class_id == class_id) ++num_gt;
  }
  if (num_gt == 0) return 0.0;

  std::stable_sort(dets.begin(), dets.end(),
                   [](const ScoredDetection& a, const ScoredDetection& b) {
                     return a.score > b.score;
                   });

  // Greedy matching with per-image "already claimed" flags.
  std::vector<std::vector<bool>> claimed(images.size());
  for (size_t img = 0; img < images.size(); ++img)
    claimed[img].assign(images[img].ground_truth.size(), false);

  std::vector<double> recall, precision;
  recall.reserve(dets.size());
  precision.reserve(dets.size());
  int64_t tp = 0, fp = 0;
  for (const auto& sd : dets) {
    const auto& gts = images[static_cast<size_t>(sd.image)].ground_truth;
    int best = -1;
    float best_iou = iou_threshold;
    for (size_t g = 0; g < gts.size(); ++g) {
      if (gts[g].class_id != class_id) continue;
      const float overlap = iou(sd.det->box, gts[g].box);
      if (overlap >= best_iou &&
          !claimed[static_cast<size_t>(sd.image)][g]) {
        best_iou = overlap;
        best = static_cast<int>(g);
      }
    }
    if (best >= 0) {
      claimed[static_cast<size_t>(sd.image)][static_cast<size_t>(best)] = true;
      ++tp;
    } else {
      ++fp;
    }
    recall.push_back(static_cast<double>(tp) / static_cast<double>(num_gt));
    precision.push_back(static_cast<double>(tp) /
                        static_cast<double>(tp + fp));
  }
  if (recall.empty()) return 0.0;
  return style == ApStyle::kVoc2007ElevenPoint
             ? eleven_point_ap(recall, precision)
             : all_point_ap(std::move(recall), std::move(precision));
}

double mean_average_precision(const std::vector<ImageEval>& images,
                              int num_classes, float iou_threshold,
                              ApStyle style) {
  double sum = 0.0;
  int counted = 0;
  for (int c = 0; c < num_classes; ++c) {
    int64_t num_gt = 0;
    for (const auto& img : images)
      for (const auto& g : img.ground_truth)
        if (g.class_id == c) ++num_gt;
    if (num_gt == 0) continue;  // class absent from the dataset
    sum += average_precision(images, c, iou_threshold, style);
    ++counted;
  }
  return counted > 0 ? sum / counted : 0.0;
}

}  // namespace tincy::detect
