#include "detect/box.hpp"

#include <algorithm>

namespace tincy::detect {

float intersection(const Box& a, const Box& b) {
  const float w = std::min(a.right(), b.right()) - std::max(a.left(), b.left());
  const float h = std::min(a.bottom(), b.bottom()) - std::max(a.top(), b.top());
  if (w <= 0.0f || h <= 0.0f) return 0.0f;
  return w * h;
}

float iou(const Box& a, const Box& b) {
  const float inter = intersection(a, b);
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

}  // namespace tincy::detect
