#pragma once

/// \file nms.hpp
/// Greedy per-class non-maximum suppression.

#include <vector>

#include "detect/box.hpp"

namespace tincy::detect {

/// Returns the detections surviving greedy NMS: within each class, boxes
/// are visited in descending score order and any box overlapping an
/// already-kept same-class box with IoU > `iou_threshold` is dropped.
/// Output is sorted by descending score.
std::vector<Detection> nms(std::vector<Detection> detections,
                           float iou_threshold = 0.45f);

}  // namespace tincy::detect
