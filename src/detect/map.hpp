#pragma once

/// \file map.hpp
/// Pascal VOC mean average precision — the metric of the paper's Table IV.
/// Implements both the VOC2007 11-point interpolated AP and the all-point
/// (area-under-PR-curve) variant.

#include <vector>

#include "detect/box.hpp"

namespace tincy::detect {

/// Detections and ground truth of one evaluated image.
struct ImageEval {
  std::vector<Detection> detections;
  std::vector<GroundTruth> ground_truth;
};

enum class ApStyle {
  kVoc2007ElevenPoint,  ///< mean of interpolated precision at recall 0,.1,…,1
  kAllPoint,            ///< exact area under the interpolated PR curve
};

/// Average precision of one class over a dataset. Detections are matched
/// greedily in descending score order; a match requires IoU >= iou_threshold
/// with an unmatched ground-truth box of the same class (VOC protocol:
/// duplicate detections of one object count as false positives).
double average_precision(const std::vector<ImageEval>& images, int class_id,
                         float iou_threshold = 0.5f,
                         ApStyle style = ApStyle::kVoc2007ElevenPoint);

/// Mean AP over classes [0, num_classes). Classes with no ground truth in
/// the dataset are skipped (VOC convention).
double mean_average_precision(const std::vector<ImageEval>& images,
                              int num_classes, float iou_threshold = 0.5f,
                              ApStyle style = ApStyle::kVoc2007ElevenPoint);

}  // namespace tincy::detect
