#include "detect/nms.hpp"

#include <algorithm>

namespace tincy::detect {

std::vector<Detection> nms(std::vector<Detection> detections,
                           float iou_threshold) {
  std::stable_sort(detections.begin(), detections.end(),
                   [](const Detection& a, const Detection& b) {
                     return a.score() > b.score();
                   });
  std::vector<Detection> kept;
  kept.reserve(detections.size());
  for (const Detection& d : detections) {
    bool suppressed = false;
    for (const Detection& k : kept) {
      if (k.class_id == d.class_id && iou(k.box, d.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

}  // namespace tincy::detect
