#pragma once

/// \file decode.hpp
/// Decodes the squashed region-layer feature map into detections — the
/// "object boxing" stage of the paper's pipeline (Fig. 5, stage N+2).

#include <vector>

#include "core/tensor.hpp"
#include "detect/box.hpp"
#include "nn/region_layer.hpp"

namespace tincy::detect {

/// Extracts detections above `threshold` from a region-layer output map
/// (already logistic/softmax squashed by RegionLayer::forward). YOLOv2
/// geometry: bx = (col + σ(tx))/W, by = (row + σ(ty))/H, bw = pw·e^{tw}/W,
/// bh = ph·e^{th}/H with (pw, ph) the anchor priors in cell units.
std::vector<Detection> decode_region(const Tensor& feature_map,
                                     const nn::RegionConfig& cfg,
                                     float threshold);

}  // namespace tincy::detect
