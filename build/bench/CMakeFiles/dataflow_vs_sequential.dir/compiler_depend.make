# Empty compiler generated dependencies file for dataflow_vs_sequential.
# This may be replaced when dependencies are built.
