file(REMOVE_RECURSE
  "CMakeFiles/dataflow_vs_sequential.dir/dataflow_vs_sequential.cpp.o"
  "CMakeFiles/dataflow_vs_sequential.dir/dataflow_vs_sequential.cpp.o.d"
  "dataflow_vs_sequential"
  "dataflow_vs_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_vs_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
