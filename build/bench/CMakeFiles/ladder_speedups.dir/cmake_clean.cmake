file(REMOVE_RECURSE
  "CMakeFiles/ladder_speedups.dir/ladder_speedups.cpp.o"
  "CMakeFiles/ladder_speedups.dir/ladder_speedups.cpp.o.d"
  "ladder_speedups"
  "ladder_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
