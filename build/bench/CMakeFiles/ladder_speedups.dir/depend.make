# Empty dependencies file for ladder_speedups.
# This may be replaced when dependencies are built.
