file(REMOVE_RECURSE
  "CMakeFiles/table1_ops.dir/table1_ops.cpp.o"
  "CMakeFiles/table1_ops.dir/table1_ops.cpp.o.d"
  "table1_ops"
  "table1_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
