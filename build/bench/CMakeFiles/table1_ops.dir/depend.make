# Empty dependencies file for table1_ops.
# This may be replaced when dependencies are built.
