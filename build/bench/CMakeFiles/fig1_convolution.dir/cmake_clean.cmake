file(REMOVE_RECURSE
  "CMakeFiles/fig1_convolution.dir/fig1_convolution.cpp.o"
  "CMakeFiles/fig1_convolution.dir/fig1_convolution.cpp.o.d"
  "fig1_convolution"
  "fig1_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
