# Empty dependencies file for fig1_convolution.
# This may be replaced when dependencies are built.
