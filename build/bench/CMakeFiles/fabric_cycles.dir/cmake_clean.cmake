file(REMOVE_RECURSE
  "CMakeFiles/fabric_cycles.dir/fabric_cycles.cpp.o"
  "CMakeFiles/fabric_cycles.dir/fabric_cycles.cpp.o.d"
  "fabric_cycles"
  "fabric_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
