# Empty compiler generated dependencies file for fabric_cycles.
# This may be replaced when dependencies are built.
