file(REMOVE_RECURSE
  "CMakeFiles/fig34_offload.dir/fig34_offload.cpp.o"
  "CMakeFiles/fig34_offload.dir/fig34_offload.cpp.o.d"
  "fig34_offload"
  "fig34_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig34_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
