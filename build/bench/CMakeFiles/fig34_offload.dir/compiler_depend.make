# Empty compiler generated dependencies file for fig34_offload.
# This may be replaced when dependencies are built.
