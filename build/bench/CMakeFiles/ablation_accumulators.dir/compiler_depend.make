# Empty compiler generated dependencies file for ablation_accumulators.
# This may be replaced when dependencies are built.
