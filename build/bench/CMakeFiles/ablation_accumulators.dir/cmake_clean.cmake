file(REMOVE_RECURSE
  "CMakeFiles/ablation_accumulators.dir/ablation_accumulators.cpp.o"
  "CMakeFiles/ablation_accumulators.dir/ablation_accumulators.cpp.o.d"
  "ablation_accumulators"
  "ablation_accumulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accumulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
