# Empty dependencies file for gemm_kernels.
# This may be replaced when dependencies are built.
