
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_accuracy.cpp" "bench/CMakeFiles/table4_accuracy.dir/table4_accuracy.cpp.o" "gcc" "bench/CMakeFiles/table4_accuracy.dir/table4_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/tincy_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tincy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/tincy_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tincy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/tincy_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
