file(REMOVE_RECURSE
  "CMakeFiles/table3_stages.dir/table3_stages.cpp.o"
  "CMakeFiles/table3_stages.dir/table3_stages.cpp.o.d"
  "table3_stages"
  "table3_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
