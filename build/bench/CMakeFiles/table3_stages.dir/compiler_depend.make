# Empty compiler generated dependencies file for table3_stages.
# This may be replaced when dependencies are built.
