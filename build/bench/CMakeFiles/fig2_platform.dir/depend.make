# Empty dependencies file for fig2_platform.
# This may be replaced when dependencies are built.
