# Empty compiler generated dependencies file for tincy.
# This may be replaced when dependencies are built.
