file(REMOVE_RECURSE
  "CMakeFiles/tincy.dir/tincy_cli.cpp.o"
  "CMakeFiles/tincy.dir/tincy_cli.cpp.o.d"
  "tincy"
  "tincy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
