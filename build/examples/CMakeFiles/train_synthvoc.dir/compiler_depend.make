# Empty compiler generated dependencies file for train_synthvoc.
# This may be replaced when dependencies are built.
