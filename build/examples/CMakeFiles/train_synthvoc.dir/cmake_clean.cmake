file(REMOVE_RECURSE
  "CMakeFiles/train_synthvoc.dir/train_synthvoc.cpp.o"
  "CMakeFiles/train_synthvoc.dir/train_synthvoc.cpp.o.d"
  "train_synthvoc"
  "train_synthvoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_synthvoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
