# Empty dependencies file for live_video_demo.
# This may be replaced when dependencies are built.
