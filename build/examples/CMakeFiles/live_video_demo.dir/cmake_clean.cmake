file(REMOVE_RECURSE
  "CMakeFiles/live_video_demo.dir/live_video_demo.cpp.o"
  "CMakeFiles/live_video_demo.dir/live_video_demo.cpp.o.d"
  "live_video_demo"
  "live_video_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_video_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
