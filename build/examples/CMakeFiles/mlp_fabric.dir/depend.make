# Empty dependencies file for mlp_fabric.
# This may be replaced when dependencies are built.
