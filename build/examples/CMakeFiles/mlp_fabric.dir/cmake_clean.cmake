file(REMOVE_RECURSE
  "CMakeFiles/mlp_fabric.dir/mlp_fabric.cpp.o"
  "CMakeFiles/mlp_fabric.dir/mlp_fabric.cpp.o.d"
  "mlp_fabric"
  "mlp_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
