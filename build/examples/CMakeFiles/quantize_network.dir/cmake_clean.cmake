file(REMOVE_RECURSE
  "CMakeFiles/quantize_network.dir/quantize_network.cpp.o"
  "CMakeFiles/quantize_network.dir/quantize_network.cpp.o.d"
  "quantize_network"
  "quantize_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantize_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
