# Empty dependencies file for quantize_network.
# This may be replaced when dependencies are built.
