# Empty dependencies file for offload_custom_layer.
# This may be replaced when dependencies are built.
