file(REMOVE_RECURSE
  "CMakeFiles/offload_custom_layer.dir/offload_custom_layer.cpp.o"
  "CMakeFiles/offload_custom_layer.dir/offload_custom_layer.cpp.o.d"
  "offload_custom_layer"
  "offload_custom_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_custom_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
