# Empty dependencies file for cnv_fabric.
# This may be replaced when dependencies are built.
