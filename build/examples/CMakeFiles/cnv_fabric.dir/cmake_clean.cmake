file(REMOVE_RECURSE
  "CMakeFiles/cnv_fabric.dir/cnv_fabric.cpp.o"
  "CMakeFiles/cnv_fabric.dir/cnv_fabric.cpp.o.d"
  "cnv_fabric"
  "cnv_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
