file(REMOVE_RECURSE
  "CMakeFiles/test_quant_conv.dir/test_quant_conv.cpp.o"
  "CMakeFiles/test_quant_conv.dir/test_quant_conv.cpp.o.d"
  "test_quant_conv"
  "test_quant_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
