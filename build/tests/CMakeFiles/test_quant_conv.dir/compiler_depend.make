# Empty compiler generated dependencies file for test_quant_conv.
# This may be replaced when dependencies are built.
