file(REMOVE_RECURSE
  "CMakeFiles/test_data_video.dir/test_data_video.cpp.o"
  "CMakeFiles/test_data_video.dir/test_data_video.cpp.o.d"
  "test_data_video"
  "test_data_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
