# Empty compiler generated dependencies file for test_data_video.
# This may be replaced when dependencies are built.
