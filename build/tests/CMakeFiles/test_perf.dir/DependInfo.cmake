
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_perf.cpp" "tests/CMakeFiles/test_perf.dir/test_perf.cpp.o" "gcc" "tests/CMakeFiles/test_perf.dir/test_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/tincy_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/tincy_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/tincy_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/tincy_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/tincy_video.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tincy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/tincy_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tincy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/tincy_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
