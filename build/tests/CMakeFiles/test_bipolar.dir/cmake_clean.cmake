file(REMOVE_RECURSE
  "CMakeFiles/test_bipolar.dir/test_bipolar.cpp.o"
  "CMakeFiles/test_bipolar.dir/test_bipolar.cpp.o.d"
  "test_bipolar"
  "test_bipolar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bipolar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
