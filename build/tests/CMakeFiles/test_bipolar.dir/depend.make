# Empty dependencies file for test_bipolar.
# This may be replaced when dependencies are built.
