file(REMOVE_RECURSE
  "CMakeFiles/test_cfg_builder.dir/test_cfg_builder.cpp.o"
  "CMakeFiles/test_cfg_builder.dir/test_cfg_builder.cpp.o.d"
  "test_cfg_builder"
  "test_cfg_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
