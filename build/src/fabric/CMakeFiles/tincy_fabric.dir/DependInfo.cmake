
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/accelerator.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/accelerator.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/accelerator.cpp.o.d"
  "/root/repo/src/fabric/binparam.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/binparam.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/binparam.cpp.o.d"
  "/root/repo/src/fabric/dataflow.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/dataflow.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/dataflow.cpp.o.d"
  "/root/repo/src/fabric/folding.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/folding.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/folding.cpp.o.d"
  "/root/repo/src/fabric/mvtu.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/mvtu.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/mvtu.cpp.o.d"
  "/root/repo/src/fabric/pool_unit.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/pool_unit.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/pool_unit.cpp.o.d"
  "/root/repo/src/fabric/resource_model.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/resource_model.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/resource_model.cpp.o.d"
  "/root/repo/src/fabric/sliding_window.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/sliding_window.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/sliding_window.cpp.o.d"
  "/root/repo/src/fabric/ternary_mvtu.cpp" "src/fabric/CMakeFiles/tincy_fabric.dir/ternary_mvtu.cpp.o" "gcc" "src/fabric/CMakeFiles/tincy_fabric.dir/ternary_mvtu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/tincy_gemm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
