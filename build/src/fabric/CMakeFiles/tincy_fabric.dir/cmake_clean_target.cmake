file(REMOVE_RECURSE
  "libtincy_fabric.a"
)
