file(REMOVE_RECURSE
  "CMakeFiles/tincy_fabric.dir/accelerator.cpp.o"
  "CMakeFiles/tincy_fabric.dir/accelerator.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/binparam.cpp.o"
  "CMakeFiles/tincy_fabric.dir/binparam.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/dataflow.cpp.o"
  "CMakeFiles/tincy_fabric.dir/dataflow.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/folding.cpp.o"
  "CMakeFiles/tincy_fabric.dir/folding.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/mvtu.cpp.o"
  "CMakeFiles/tincy_fabric.dir/mvtu.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/pool_unit.cpp.o"
  "CMakeFiles/tincy_fabric.dir/pool_unit.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/resource_model.cpp.o"
  "CMakeFiles/tincy_fabric.dir/resource_model.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/sliding_window.cpp.o"
  "CMakeFiles/tincy_fabric.dir/sliding_window.cpp.o.d"
  "CMakeFiles/tincy_fabric.dir/ternary_mvtu.cpp.o"
  "CMakeFiles/tincy_fabric.dir/ternary_mvtu.cpp.o.d"
  "libtincy_fabric.a"
  "libtincy_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
