# Empty dependencies file for tincy_fabric.
# This may be replaced when dependencies are built.
