file(REMOVE_RECURSE
  "libtincy_perf.a"
)
