# Empty dependencies file for tincy_perf.
# This may be replaced when dependencies are built.
