file(REMOVE_RECURSE
  "CMakeFiles/tincy_perf.dir/ladder.cpp.o"
  "CMakeFiles/tincy_perf.dir/ladder.cpp.o.d"
  "CMakeFiles/tincy_perf.dir/platform.cpp.o"
  "CMakeFiles/tincy_perf.dir/platform.cpp.o.d"
  "CMakeFiles/tincy_perf.dir/stage_times.cpp.o"
  "CMakeFiles/tincy_perf.dir/stage_times.cpp.o.d"
  "libtincy_perf.a"
  "libtincy_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
