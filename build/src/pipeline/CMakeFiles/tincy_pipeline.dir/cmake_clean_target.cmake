file(REMOVE_RECURSE
  "libtincy_pipeline.a"
)
