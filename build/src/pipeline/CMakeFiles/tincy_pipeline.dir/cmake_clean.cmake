file(REMOVE_RECURSE
  "CMakeFiles/tincy_pipeline.dir/demo.cpp.o"
  "CMakeFiles/tincy_pipeline.dir/demo.cpp.o.d"
  "CMakeFiles/tincy_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/tincy_pipeline.dir/pipeline.cpp.o.d"
  "CMakeFiles/tincy_pipeline.dir/virtual_time.cpp.o"
  "CMakeFiles/tincy_pipeline.dir/virtual_time.cpp.o.d"
  "libtincy_pipeline.a"
  "libtincy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
