# Empty dependencies file for tincy_pipeline.
# This may be replaced when dependencies are built.
