file(REMOVE_RECURSE
  "libtincy_core.a"
)
