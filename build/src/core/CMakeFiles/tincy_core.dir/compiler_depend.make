# Empty compiler generated dependencies file for tincy_core.
# This may be replaced when dependencies are built.
