file(REMOVE_RECURSE
  "CMakeFiles/tincy_core.dir/bitvector.cpp.o"
  "CMakeFiles/tincy_core.dir/bitvector.cpp.o.d"
  "CMakeFiles/tincy_core.dir/rng.cpp.o"
  "CMakeFiles/tincy_core.dir/rng.cpp.o.d"
  "CMakeFiles/tincy_core.dir/shape.cpp.o"
  "CMakeFiles/tincy_core.dir/shape.cpp.o.d"
  "CMakeFiles/tincy_core.dir/string_utils.cpp.o"
  "CMakeFiles/tincy_core.dir/string_utils.cpp.o.d"
  "libtincy_core.a"
  "libtincy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
