file(REMOVE_RECURSE
  "CMakeFiles/tincy_nn.dir/activation.cpp.o"
  "CMakeFiles/tincy_nn.dir/activation.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/builder.cpp.o"
  "CMakeFiles/tincy_nn.dir/builder.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/cfg.cpp.o"
  "CMakeFiles/tincy_nn.dir/cfg.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/connected_layer.cpp.o"
  "CMakeFiles/tincy_nn.dir/connected_layer.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/conv_layer.cpp.o"
  "CMakeFiles/tincy_nn.dir/conv_layer.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/describe.cpp.o"
  "CMakeFiles/tincy_nn.dir/describe.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/maxpool_layer.cpp.o"
  "CMakeFiles/tincy_nn.dir/maxpool_layer.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/network.cpp.o"
  "CMakeFiles/tincy_nn.dir/network.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/offload_layer.cpp.o"
  "CMakeFiles/tincy_nn.dir/offload_layer.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/ops.cpp.o"
  "CMakeFiles/tincy_nn.dir/ops.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/region_layer.cpp.o"
  "CMakeFiles/tincy_nn.dir/region_layer.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/weights_io.cpp.o"
  "CMakeFiles/tincy_nn.dir/weights_io.cpp.o.d"
  "CMakeFiles/tincy_nn.dir/zoo.cpp.o"
  "CMakeFiles/tincy_nn.dir/zoo.cpp.o.d"
  "libtincy_nn.a"
  "libtincy_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
