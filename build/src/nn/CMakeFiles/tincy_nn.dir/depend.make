# Empty dependencies file for tincy_nn.
# This may be replaced when dependencies are built.
