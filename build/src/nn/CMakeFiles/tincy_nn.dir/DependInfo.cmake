
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/tincy_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/builder.cpp" "src/nn/CMakeFiles/tincy_nn.dir/builder.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/builder.cpp.o.d"
  "/root/repo/src/nn/cfg.cpp" "src/nn/CMakeFiles/tincy_nn.dir/cfg.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/cfg.cpp.o.d"
  "/root/repo/src/nn/connected_layer.cpp" "src/nn/CMakeFiles/tincy_nn.dir/connected_layer.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/connected_layer.cpp.o.d"
  "/root/repo/src/nn/conv_layer.cpp" "src/nn/CMakeFiles/tincy_nn.dir/conv_layer.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/conv_layer.cpp.o.d"
  "/root/repo/src/nn/describe.cpp" "src/nn/CMakeFiles/tincy_nn.dir/describe.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/describe.cpp.o.d"
  "/root/repo/src/nn/maxpool_layer.cpp" "src/nn/CMakeFiles/tincy_nn.dir/maxpool_layer.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/maxpool_layer.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/tincy_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/offload_layer.cpp" "src/nn/CMakeFiles/tincy_nn.dir/offload_layer.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/offload_layer.cpp.o.d"
  "/root/repo/src/nn/ops.cpp" "src/nn/CMakeFiles/tincy_nn.dir/ops.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/ops.cpp.o.d"
  "/root/repo/src/nn/region_layer.cpp" "src/nn/CMakeFiles/tincy_nn.dir/region_layer.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/region_layer.cpp.o.d"
  "/root/repo/src/nn/weights_io.cpp" "src/nn/CMakeFiles/tincy_nn.dir/weights_io.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/weights_io.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/nn/CMakeFiles/tincy_nn.dir/zoo.cpp.o" "gcc" "src/nn/CMakeFiles/tincy_nn.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/tincy_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
