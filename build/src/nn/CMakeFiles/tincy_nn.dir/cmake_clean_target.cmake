file(REMOVE_RECURSE
  "libtincy_nn.a"
)
