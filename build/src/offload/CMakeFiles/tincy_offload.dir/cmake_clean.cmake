file(REMOVE_RECURSE
  "CMakeFiles/tincy_offload.dir/cpu_backend.cpp.o"
  "CMakeFiles/tincy_offload.dir/cpu_backend.cpp.o.d"
  "CMakeFiles/tincy_offload.dir/fabric_backend.cpp.o"
  "CMakeFiles/tincy_offload.dir/fabric_backend.cpp.o.d"
  "CMakeFiles/tincy_offload.dir/import.cpp.o"
  "CMakeFiles/tincy_offload.dir/import.cpp.o.d"
  "CMakeFiles/tincy_offload.dir/registration.cpp.o"
  "CMakeFiles/tincy_offload.dir/registration.cpp.o.d"
  "libtincy_offload.a"
  "libtincy_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
