file(REMOVE_RECURSE
  "libtincy_offload.a"
)
