# Empty compiler generated dependencies file for tincy_offload.
# This may be replaced when dependencies are built.
