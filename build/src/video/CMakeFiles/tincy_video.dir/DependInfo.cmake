
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/camera.cpp" "src/video/CMakeFiles/tincy_video.dir/camera.cpp.o" "gcc" "src/video/CMakeFiles/tincy_video.dir/camera.cpp.o.d"
  "/root/repo/src/video/draw.cpp" "src/video/CMakeFiles/tincy_video.dir/draw.cpp.o" "gcc" "src/video/CMakeFiles/tincy_video.dir/draw.cpp.o.d"
  "/root/repo/src/video/frame.cpp" "src/video/CMakeFiles/tincy_video.dir/frame.cpp.o" "gcc" "src/video/CMakeFiles/tincy_video.dir/frame.cpp.o.d"
  "/root/repo/src/video/ppm.cpp" "src/video/CMakeFiles/tincy_video.dir/ppm.cpp.o" "gcc" "src/video/CMakeFiles/tincy_video.dir/ppm.cpp.o.d"
  "/root/repo/src/video/sink.cpp" "src/video/CMakeFiles/tincy_video.dir/sink.cpp.o" "gcc" "src/video/CMakeFiles/tincy_video.dir/sink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tincy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/tincy_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tincy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/tincy_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
