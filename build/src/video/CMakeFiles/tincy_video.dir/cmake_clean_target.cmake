file(REMOVE_RECURSE
  "libtincy_video.a"
)
