# Empty dependencies file for tincy_video.
# This may be replaced when dependencies are built.
