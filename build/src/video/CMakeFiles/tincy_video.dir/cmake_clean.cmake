file(REMOVE_RECURSE
  "CMakeFiles/tincy_video.dir/camera.cpp.o"
  "CMakeFiles/tincy_video.dir/camera.cpp.o.d"
  "CMakeFiles/tincy_video.dir/draw.cpp.o"
  "CMakeFiles/tincy_video.dir/draw.cpp.o.d"
  "CMakeFiles/tincy_video.dir/frame.cpp.o"
  "CMakeFiles/tincy_video.dir/frame.cpp.o.d"
  "CMakeFiles/tincy_video.dir/ppm.cpp.o"
  "CMakeFiles/tincy_video.dir/ppm.cpp.o.d"
  "CMakeFiles/tincy_video.dir/sink.cpp.o"
  "CMakeFiles/tincy_video.dir/sink.cpp.o.d"
  "libtincy_video.a"
  "libtincy_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
