# Empty compiler generated dependencies file for tincy_detect.
# This may be replaced when dependencies are built.
