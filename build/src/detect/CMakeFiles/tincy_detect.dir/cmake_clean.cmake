file(REMOVE_RECURSE
  "CMakeFiles/tincy_detect.dir/box.cpp.o"
  "CMakeFiles/tincy_detect.dir/box.cpp.o.d"
  "CMakeFiles/tincy_detect.dir/decode.cpp.o"
  "CMakeFiles/tincy_detect.dir/decode.cpp.o.d"
  "CMakeFiles/tincy_detect.dir/map.cpp.o"
  "CMakeFiles/tincy_detect.dir/map.cpp.o.d"
  "CMakeFiles/tincy_detect.dir/nms.cpp.o"
  "CMakeFiles/tincy_detect.dir/nms.cpp.o.d"
  "libtincy_detect.a"
  "libtincy_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
