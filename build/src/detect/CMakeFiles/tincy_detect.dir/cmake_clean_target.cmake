file(REMOVE_RECURSE
  "libtincy_detect.a"
)
