
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/box.cpp" "src/detect/CMakeFiles/tincy_detect.dir/box.cpp.o" "gcc" "src/detect/CMakeFiles/tincy_detect.dir/box.cpp.o.d"
  "/root/repo/src/detect/decode.cpp" "src/detect/CMakeFiles/tincy_detect.dir/decode.cpp.o" "gcc" "src/detect/CMakeFiles/tincy_detect.dir/decode.cpp.o.d"
  "/root/repo/src/detect/map.cpp" "src/detect/CMakeFiles/tincy_detect.dir/map.cpp.o" "gcc" "src/detect/CMakeFiles/tincy_detect.dir/map.cpp.o.d"
  "/root/repo/src/detect/nms.cpp" "src/detect/CMakeFiles/tincy_detect.dir/nms.cpp.o" "gcc" "src/detect/CMakeFiles/tincy_detect.dir/nms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tincy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/tincy_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
