file(REMOVE_RECURSE
  "libtincy_data.a"
)
