# Empty compiler generated dependencies file for tincy_data.
# This may be replaced when dependencies are built.
