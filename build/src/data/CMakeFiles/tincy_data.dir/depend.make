# Empty dependencies file for tincy_data.
# This may be replaced when dependencies are built.
