file(REMOVE_RECURSE
  "CMakeFiles/tincy_data.dir/image.cpp.o"
  "CMakeFiles/tincy_data.dir/image.cpp.o.d"
  "CMakeFiles/tincy_data.dir/synthdigits.cpp.o"
  "CMakeFiles/tincy_data.dir/synthdigits.cpp.o.d"
  "CMakeFiles/tincy_data.dir/synthvoc.cpp.o"
  "CMakeFiles/tincy_data.dir/synthvoc.cpp.o.d"
  "libtincy_data.a"
  "libtincy_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
