
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/affine.cpp" "src/quant/CMakeFiles/tincy_quant.dir/affine.cpp.o" "gcc" "src/quant/CMakeFiles/tincy_quant.dir/affine.cpp.o.d"
  "/root/repo/src/quant/binary.cpp" "src/quant/CMakeFiles/tincy_quant.dir/binary.cpp.o" "gcc" "src/quant/CMakeFiles/tincy_quant.dir/binary.cpp.o.d"
  "/root/repo/src/quant/ternary.cpp" "src/quant/CMakeFiles/tincy_quant.dir/ternary.cpp.o" "gcc" "src/quant/CMakeFiles/tincy_quant.dir/ternary.cpp.o.d"
  "/root/repo/src/quant/thresholds.cpp" "src/quant/CMakeFiles/tincy_quant.dir/thresholds.cpp.o" "gcc" "src/quant/CMakeFiles/tincy_quant.dir/thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
