# Empty dependencies file for tincy_quant.
# This may be replaced when dependencies are built.
