file(REMOVE_RECURSE
  "libtincy_quant.a"
)
