file(REMOVE_RECURSE
  "CMakeFiles/tincy_quant.dir/affine.cpp.o"
  "CMakeFiles/tincy_quant.dir/affine.cpp.o.d"
  "CMakeFiles/tincy_quant.dir/binary.cpp.o"
  "CMakeFiles/tincy_quant.dir/binary.cpp.o.d"
  "CMakeFiles/tincy_quant.dir/ternary.cpp.o"
  "CMakeFiles/tincy_quant.dir/ternary.cpp.o.d"
  "CMakeFiles/tincy_quant.dir/thresholds.cpp.o"
  "CMakeFiles/tincy_quant.dir/thresholds.cpp.o.d"
  "libtincy_quant.a"
  "libtincy_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
