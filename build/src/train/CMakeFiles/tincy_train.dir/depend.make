# Empty dependencies file for tincy_train.
# This may be replaced when dependencies are built.
