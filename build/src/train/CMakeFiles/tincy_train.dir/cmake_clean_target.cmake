file(REMOVE_RECURSE
  "libtincy_train.a"
)
