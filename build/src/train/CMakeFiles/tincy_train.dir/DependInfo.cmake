
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/layers.cpp" "src/train/CMakeFiles/tincy_train.dir/layers.cpp.o" "gcc" "src/train/CMakeFiles/tincy_train.dir/layers.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/train/CMakeFiles/tincy_train.dir/loss.cpp.o" "gcc" "src/train/CMakeFiles/tincy_train.dir/loss.cpp.o.d"
  "/root/repo/src/train/model.cpp" "src/train/CMakeFiles/tincy_train.dir/model.cpp.o" "gcc" "src/train/CMakeFiles/tincy_train.dir/model.cpp.o.d"
  "/root/repo/src/train/optimizer.cpp" "src/train/CMakeFiles/tincy_train.dir/optimizer.cpp.o" "gcc" "src/train/CMakeFiles/tincy_train.dir/optimizer.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/tincy_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/tincy_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/tincy_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tincy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/tincy_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tincy_data.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
