file(REMOVE_RECURSE
  "CMakeFiles/tincy_train.dir/layers.cpp.o"
  "CMakeFiles/tincy_train.dir/layers.cpp.o.d"
  "CMakeFiles/tincy_train.dir/loss.cpp.o"
  "CMakeFiles/tincy_train.dir/loss.cpp.o.d"
  "CMakeFiles/tincy_train.dir/model.cpp.o"
  "CMakeFiles/tincy_train.dir/model.cpp.o.d"
  "CMakeFiles/tincy_train.dir/optimizer.cpp.o"
  "CMakeFiles/tincy_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/tincy_train.dir/trainer.cpp.o"
  "CMakeFiles/tincy_train.dir/trainer.cpp.o.d"
  "libtincy_train.a"
  "libtincy_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
