file(REMOVE_RECURSE
  "CMakeFiles/tincy_gemm.dir/first_layer.cpp.o"
  "CMakeFiles/tincy_gemm.dir/first_layer.cpp.o.d"
  "CMakeFiles/tincy_gemm.dir/gemm_lowp.cpp.o"
  "CMakeFiles/tincy_gemm.dir/gemm_lowp.cpp.o.d"
  "CMakeFiles/tincy_gemm.dir/gemm_ref.cpp.o"
  "CMakeFiles/tincy_gemm.dir/gemm_ref.cpp.o.d"
  "CMakeFiles/tincy_gemm.dir/gemm_simd.cpp.o"
  "CMakeFiles/tincy_gemm.dir/gemm_simd.cpp.o.d"
  "CMakeFiles/tincy_gemm.dir/im2col.cpp.o"
  "CMakeFiles/tincy_gemm.dir/im2col.cpp.o.d"
  "libtincy_gemm.a"
  "libtincy_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tincy_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
