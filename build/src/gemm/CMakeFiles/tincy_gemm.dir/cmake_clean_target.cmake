file(REMOVE_RECURSE
  "libtincy_gemm.a"
)
