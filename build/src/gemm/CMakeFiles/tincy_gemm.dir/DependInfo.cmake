
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gemm/first_layer.cpp" "src/gemm/CMakeFiles/tincy_gemm.dir/first_layer.cpp.o" "gcc" "src/gemm/CMakeFiles/tincy_gemm.dir/first_layer.cpp.o.d"
  "/root/repo/src/gemm/gemm_lowp.cpp" "src/gemm/CMakeFiles/tincy_gemm.dir/gemm_lowp.cpp.o" "gcc" "src/gemm/CMakeFiles/tincy_gemm.dir/gemm_lowp.cpp.o.d"
  "/root/repo/src/gemm/gemm_ref.cpp" "src/gemm/CMakeFiles/tincy_gemm.dir/gemm_ref.cpp.o" "gcc" "src/gemm/CMakeFiles/tincy_gemm.dir/gemm_ref.cpp.o.d"
  "/root/repo/src/gemm/gemm_simd.cpp" "src/gemm/CMakeFiles/tincy_gemm.dir/gemm_simd.cpp.o" "gcc" "src/gemm/CMakeFiles/tincy_gemm.dir/gemm_simd.cpp.o.d"
  "/root/repo/src/gemm/im2col.cpp" "src/gemm/CMakeFiles/tincy_gemm.dir/im2col.cpp.o" "gcc" "src/gemm/CMakeFiles/tincy_gemm.dir/im2col.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tincy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/tincy_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
