# Empty compiler generated dependencies file for tincy_gemm.
# This may be replaced when dependencies are built.
