#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "quant/affine.hpp"
#include "quant/binary.hpp"
#include "quant/ternary.hpp"
#include "quant/thresholds.hpp"

namespace tincy::quant {
namespace {

TEST(Affine, ZeroIsExactlyRepresentable) {
  for (const auto& [lo, hi] : {std::pair{-3.0f, 5.0f}, {0.5f, 2.0f},
                              {-4.0f, -1.0f}, {-1e-3f, 1e3f}}) {
    const AffineParams p = choose_affine_params(lo, hi);
    EXPECT_FLOAT_EQ(p.dequantize(static_cast<uint8_t>(p.zero_point)), 0.0f)
        << lo << ".." << hi;
  }
}

TEST(Affine, RoundTripWithinHalfStep) {
  Rng rng(1);
  const AffineParams p = choose_affine_params(-2.0f, 6.0f);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-2.0f, 6.0f);
    const float back = p.dequantize(p.quantize(x));
    EXPECT_NEAR(back, x, p.scale / 2 + 1e-6f);
  }
}

TEST(Affine, QuantizeClampsOutOfRange) {
  const AffineParams p = choose_affine_params(0.0f, 1.0f);
  EXPECT_EQ(p.quantize(-100.0f), 0);
  EXPECT_EQ(p.quantize(100.0f), 255);
}

TEST(Affine, DegenerateRange) {
  const AffineParams p = choose_affine_params(0.0f, 0.0f);
  EXPECT_EQ(p.quantize(0.0f), 0);
  EXPECT_FLOAT_EQ(p.dequantize(0), 0.0f);
}

TEST(Affine, TensorQuantizeDequantize) {
  Rng rng(2);
  Tensor t(Shape{4, 5});
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1.0f, 3.0f);
  const auto [lo, hi] = min_max(t);
  EXPECT_LE(lo, hi);
  const AffineParams p = choose_affine_params(lo, hi);
  const Tensor back = dequantize(quantize(t, p), p);
  for (int64_t i = 0; i < t.numel(); ++i)
    EXPECT_NEAR(back[i], t[i], p.scale / 2 + 1e-6f);
}

TEST(Requantizer, MatchesRealArithmetic) {
  Rng rng(3);
  for (int rep = 0; rep < 200; ++rep) {
    const float ls = rng.uniform(0.001f, 0.05f);
    const float rs = rng.uniform(0.001f, 0.05f);
    const AffineParams out = choose_affine_params(-rng.uniform(0.5f, 4.0f),
                                                  rng.uniform(0.5f, 4.0f));
    const Requantizer rq = make_requantizer(ls, rs, out);
    for (int k = 0; k < 50; ++k) {
      const auto acc = static_cast<int32_t>(rng.uniform_int(-100000, 100000));
      const double real = static_cast<double>(ls) * rs * acc;
      const double expected_code =
          std::clamp(std::round(real / out.scale) + out.zero_point, 0.0, 255.0);
      EXPECT_NEAR(static_cast<double>(rq.apply(acc)), expected_code, 1.0)
          << "acc=" << acc << " ls=" << ls << " rs=" << rs;
    }
  }
}

TEST(Binary, SignEncoding) {
  Tensor w(Shape{2, 3});
  w.at2(0, 0) = 0.5f;
  w.at2(0, 1) = -0.5f;
  w.at2(0, 2) = 0.0f;  // zero maps to +1
  w.at2(1, 0) = -2.0f;
  w.at2(1, 1) = 3.0f;
  w.at2(1, 2) = -0.1f;
  const BinaryMatrix m = binarize(w);
  EXPECT_FLOAT_EQ(m.value(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.value(0, 1), -1.0f);
  EXPECT_FLOAT_EQ(m.value(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(m.value(1, 0), -1.0f);
}

TEST(Binary, XnorNetScale) {
  Tensor w(Shape{1, 4});
  w.at2(0, 0) = 1.0f;
  w.at2(0, 1) = -3.0f;
  w.at2(0, 2) = 2.0f;
  w.at2(0, 3) = -2.0f;
  const BinaryMatrix m = binarize(w, /*with_scale=*/true);
  EXPECT_FLOAT_EQ(m.row_scale[0], 2.0f);  // mean |w|
  EXPECT_FLOAT_EQ(m.value(0, 1), -2.0f);
}

TEST(Binary, DequantizeRoundTripSigns) {
  Rng rng(4);
  Tensor w(Shape{5, 37});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  const Tensor back = dequantize(binarize(w));
  for (int64_t r = 0; r < 5; ++r)
    for (int64_t c = 0; c < 37; ++c)
      EXPECT_EQ(back.at2(r, c), w.at2(r, c) >= 0.0f ? 1.0f : -1.0f);
}

TEST(Ternary, TwnRule) {
  Tensor w(Shape{1, 5});
  // mean |w| = (1+0.1+0.2+2+0.05)/5 = 0.67; delta = 0.469.
  w.at2(0, 0) = 1.0f;
  w.at2(0, 1) = -0.1f;
  w.at2(0, 2) = 0.2f;
  w.at2(0, 3) = -2.0f;
  w.at2(0, 4) = 0.05f;
  const TernaryMatrix m = ternarize(w, /*with_scale=*/false);
  EXPECT_FLOAT_EQ(m.value(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.value(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.value(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(m.value(0, 3), -1.0f);
  EXPECT_FLOAT_EQ(m.value(0, 4), 0.0f);
  EXPECT_DOUBLE_EQ(m.sparsity(), 3.0 / 5.0);
}

TEST(Ternary, DotBitplaneMatchesNaive) {
  Rng rng(5);
  Tensor w(Shape{3, 100});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  const TernaryMatrix m = ternarize(w, /*with_scale=*/false);
  BitVector plane(100);
  for (int64_t i = 0; i < 100; ++i) plane.set(i, rng.bernoulli(0.5));
  for (int64_t r = 0; r < 3; ++r) {
    int64_t expected = 0;
    for (int64_t c = 0; c < 100; ++c)
      if (plane.get(c)) expected += static_cast<int64_t>(m.value(r, c));
    EXPECT_EQ(dot_bitplane(m, r, plane), expected);
  }
}

TEST(UniformActQuant, ThreeBitGrid) {
  const UniformActQuant q{3, 0.5f};
  EXPECT_EQ(q.levels(), 7);
  EXPECT_EQ(q.quantize(-1.0f), 0);    // ReLU-like clamp at zero
  EXPECT_EQ(q.quantize(0.24f), 0);
  EXPECT_EQ(q.quantize(0.26f), 1);
  EXPECT_EQ(q.quantize(100.0f), 7);
  EXPECT_FLOAT_EQ(q.dequantize(3), 1.5f);
}

TEST(Thresholds, ApplyCountsCrossings) {
  ThresholdSet ts{{-5, 0, 10}};
  EXPECT_EQ(ts.apply(-6), 0);
  EXPECT_EQ(ts.apply(-5), 1);
  EXPECT_EQ(ts.apply(0), 2);
  EXPECT_EQ(ts.apply(9), 2);
  EXPECT_EQ(ts.apply(10), 3);
}

TEST(Thresholds, FoldMatchesFloatQuantization) {
  // The folded integer thresholds must agree with quantizing the real
  // value (acc_scale·acc + bias) on the out_scale grid, for all acc.
  Rng rng(6);
  for (int rep = 0; rep < 100; ++rep) {
    const int bits = static_cast<int>(rng.uniform_int(1, 4));
    const float acc_scale = rng.uniform(0.01f, 0.5f);
    const float bias = rng.uniform(-2.0f, 2.0f);
    const float out_scale = rng.uniform(0.1f, 1.0f);
    const ThresholdSet ts =
        fold_to_thresholds(bits, acc_scale, bias, out_scale);
    const UniformActQuant q{bits, out_scale};
    for (int32_t acc = -200; acc <= 200; ++acc) {
      const float real = acc_scale * static_cast<float>(acc) + bias;
      // Skip exact rounding boundaries where float vs double differ.
      const float frac = real / out_scale;
      if (std::fabs(frac - std::floor(frac) - 0.5f) < 1e-4f) continue;
      EXPECT_EQ(ts.apply(acc), q.quantize(real))
          << "acc=" << acc << " bits=" << bits;
    }
  }
}

TEST(Bitplanes, RoundTrip) {
  Rng rng(7);
  for (const int bits : {1, 2, 3, 4, 8}) {
    std::vector<uint8_t> codes(257);
    for (auto& c : codes)
      c = static_cast<uint8_t>(rng.uniform_int(0, (1 << bits) - 1));
    const auto planes =
        to_bitplanes(codes.data(), static_cast<int64_t>(codes.size()), bits);
    ASSERT_EQ(planes.size(), static_cast<size_t>(bits));
    EXPECT_EQ(from_bitplanes(planes), codes);
  }
}

TEST(Bitplanes, WeightedSumIdentity) {
  // Σ_b 2^b · plane_b(i) == code(i): the identity the MVTU relies on.
  Rng rng(8);
  std::vector<uint8_t> codes(100);
  for (auto& c : codes) c = static_cast<uint8_t>(rng.uniform_int(0, 7));
  const auto planes = to_bitplanes(codes.data(), 100, 3);
  for (int64_t i = 0; i < 100; ++i) {
    int sum = 0;
    for (int b = 0; b < 3; ++b) sum += planes[static_cast<size_t>(b)].get(i) << b;
    EXPECT_EQ(sum, codes[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace tincy::quant
