#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.hpp"
#include "gemm/im2col.hpp"

namespace tincy::gemm {
namespace {

Tensor random_image(Rng& rng, const ConvGeometry& g) {
  Tensor img(Shape{g.in_channels, g.in_height, g.in_width});
  for (int64_t i = 0; i < img.numel(); ++i) img[i] = rng.uniform(-1.0f, 1.0f);
  return img;
}

/// Direct (definition-level) lookup of im2col element (row, col).
float naive_im2col_at(const Tensor& img, const ConvGeometry& g, int64_t row,
                      int64_t col) {
  const int64_t kk = g.kernel * g.kernel;
  const int64_t c = row / kk;
  const int64_t kh = (row % kk) / g.kernel;
  const int64_t kw = row % g.kernel;
  const int64_t oh = col / g.out_width(), ow = col % g.out_width();
  const int64_t ih = oh * g.stride - g.pad + kh;
  const int64_t iw = ow * g.stride - g.pad + kw;
  if (ih < 0 || ih >= g.in_height || iw < 0 || iw >= g.in_width) return 0.0f;
  return img.at(c, ih, iw);
}

using Geometry = std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t>;
// (channels, size, kernel, stride, pad)

class Im2ColProperty : public ::testing::TestWithParam<Geometry> {
 protected:
  ConvGeometry geometry() const {
    const auto [c, s, k, stride, pad] = GetParam();
    return {c, s, s, k, stride, pad};
  }
};

TEST_P(Im2ColProperty, MatchesDefinition) {
  const ConvGeometry g = geometry();
  Rng rng(17);
  const Tensor img = random_image(rng, g);
  const Tensor cols = im2col(img, g);
  ASSERT_EQ(cols.shape(), Shape({g.patch_size(), g.num_patches()}));
  for (int64_t r = 0; r < g.patch_size(); ++r)
    for (int64_t c = 0; c < g.num_patches(); ++c)
      EXPECT_EQ(cols.at2(r, c), naive_im2col_at(img, g, r, c))
          << "r=" << r << " c=" << c;
}

TEST_P(Im2ColProperty, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // of the transpose operator used by the conv backward pass.
  const ConvGeometry g = geometry();
  Rng rng(23);
  const Tensor x = random_image(rng, g);
  Tensor y(Shape{g.patch_size(), g.num_patches()});
  for (int64_t i = 0; i < y.numel(); ++i) y[i] = rng.uniform(-1.0f, 1.0f);

  const Tensor ax = im2col(x, g);
  Tensor aty(x.shape());
  col2im(y.data(), g, aty.data());

  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < ax.numel(); ++i)
    lhs += static_cast<double>(ax[i]) * y[i];
  for (int64_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColProperty,
    ::testing::Values(Geometry{1, 5, 1, 1, 0},   // 1x1 kernel
                      Geometry{3, 8, 3, 1, 1},   // same conv
                      Geometry{3, 9, 3, 2, 1},   // strided (Tincy layer 1)
                      Geometry{2, 7, 3, 1, 0},   // valid conv
                      Geometry{4, 6, 2, 2, 0},   // even kernel
                      Geometry{1, 4, 4, 1, 2},   // kernel == size w/ pad
                      Geometry{5, 10, 5, 3, 2}));

TEST(Im2Col, U8PaddingUsesZeroPoint) {
  const ConvGeometry g{1, 3, 3, 3, 1, 1};
  TensorU8 img(Shape{1, 3, 3});
  for (int64_t i = 0; i < 9; ++i) img[i] = static_cast<uint8_t>(i + 1);
  const TensorU8 cols = im2col(img, g, /*pad_value=*/77);
  // Corner patch (0,0): taps above/left of the image must read 77.
  EXPECT_EQ(cols.at2(0, 0), 77);  // kh=0, kw=0 → (-1,-1)
  EXPECT_EQ(cols.at2(4, 0), 1);   // center tap → pixel (0,0)
}

TEST(Im2Col, InflationFactor) {
  // K=3, stride 1, same conv: the column matrix is ~K² times the image.
  const ConvGeometry g{1, 32, 32, 3, 1, 1};
  EXPECT_EQ(g.patch_size() * g.num_patches(), 9 * 32 * 32);
}

TEST(Im2Col, FullyConnectedDegenerateCase) {
  // "A convolutional kernel of the same size of the input feature map
  // degenerates into a single application ... with no input inflation".
  const ConvGeometry g{4, 7, 7, 7, 1, 0};
  EXPECT_EQ(g.num_patches(), 1);
  EXPECT_EQ(g.patch_size(), 4 * 49);
}

TEST(Im2Col, OutputGeometry) {
  const ConvGeometry g{3, 416, 416, 3, 2, 1};
  EXPECT_EQ(g.out_height(), 208);
  EXPECT_EQ(g.out_width(), 208);
}

}  // namespace
}  // namespace tincy::gemm
