// Tests of the fully binarized (W1A1, bipolar ±1) path across quant,
// nn, fabric and offload — the precision class of the paper's earlier
// FINN show cases (MLP-4, CNV-6 in Table II).

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "fabric/mvtu.hpp"
#include "nn/builder.hpp"
#include "nn/connected_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/zoo.hpp"
#include "offload/import.hpp"
#include "quant/thresholds.hpp"

namespace tincy {
namespace {

TEST(BipolarQuant, SignEncoding) {
  const quant::BipolarActQuant q{0.5f};
  EXPECT_EQ(q.quantize(0.3f), 1);
  EXPECT_EQ(q.quantize(-0.3f), 0);
  EXPECT_EQ(q.quantize(0.0f), 1);  // ties to +1, like weight binarization
  EXPECT_FLOAT_EQ(q.dequantize(1), 0.5f);
  EXPECT_FLOAT_EQ(q.dequantize(0), -0.5f);
}

TEST(BipolarMvtu, XnorIdentityMatchesNaiveDot) {
  Rng rng(11);
  const int64_t rows = 16, cols = 100;
  Tensor w(Shape{rows, cols});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  const quant::BinaryMatrix bw = quant::binarize(w);
  std::vector<fabric::ThresholdChannel> th(static_cast<size_t>(rows));
  for (auto& ch : th) ch.thresholds.push_back(0);
  const fabric::Mvtu mvtu(bw, th, /*act_bits_in=*/1,
                          fabric::ActEncoding::kBipolar);

  std::vector<uint8_t> column(static_cast<size_t>(cols));
  for (auto& c : column) c = rng.bernoulli(0.5) ? 1 : 0;
  std::vector<int32_t> acc(static_cast<size_t>(rows));
  mvtu.accumulate(column, acc);
  for (int64_t r = 0; r < rows; ++r) {
    int32_t expected = 0;
    for (int64_t c = 0; c < cols; ++c) {
      const int a = column[static_cast<size_t>(c)] ? 1 : -1;
      expected += static_cast<int32_t>(bw.value(r, c)) * a;
    }
    EXPECT_EQ(acc[static_cast<size_t>(r)], expected) << "row " << r;
  }
}

TEST(BipolarMvtu, RequiresOneBit) {
  Rng rng(12);
  Tensor w(Shape{2, 8});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  std::vector<fabric::ThresholdChannel> th(2);
  EXPECT_THROW(fabric::Mvtu(quant::binarize(w), th, /*act_bits_in=*/3,
                            fabric::ActEncoding::kBipolar),
               Error);
}

TEST(BipolarConv, RejectsPadding) {
  nn::ConvConfig cfg;
  cfg.filters = 2;
  cfg.size = 3;
  cfg.pad = true;  // padding has no bipolar zero
  cfg.activation = nn::Activation::kLinear;
  cfg.binary_weights = true;
  cfg.act_bits = 1;
  cfg.bipolar = true;
  cfg.kernel = nn::ConvKernel::kQuantReference;
  nn::ConvLayer layer(cfg, Shape{2, 6, 6});
  Tensor in(Shape{2, 6, 6}, 1.0f), out(layer.output_shape());
  EXPECT_THROW(layer.forward(in, out), Error);
}

TEST(BipolarConv, RequiresLinearActivation) {
  nn::ConvConfig cfg;
  cfg.filters = 2;
  cfg.activation = nn::Activation::kRelu;
  cfg.bipolar = true;
  cfg.act_bits = 1;
  EXPECT_THROW(nn::ConvLayer(cfg, Shape{1, 4, 4}), Error);
}

/// Builds the 1x1-conv MLP cfg with W1A1 bipolar hidden layers.
std::string bipolar_mlp_cfg(int64_t inputs, int64_t hidden, int layers) {
  std::string cfg = "[net]\nwidth=1\nheight=1\nchannels=" +
                    std::to_string(inputs) + "\n";
  for (int l = 0; l < layers; ++l)
    cfg += "[convolutional]\nbatch_normalize=1\nfilters=" +
           std::to_string(hidden) +
           "\nsize=1\nstride=1\npad=0\nactivation=linear\nbinary=1\n"
           "abits=1\nbipolar=1\nkernel=quant_reference\n"
           "in_scale=1\nout_scale=1\n";
  return cfg;
}

TEST(BipolarConv, OutputIsBipolar) {
  Rng rng(13);
  auto net = nn::build_network_from_string(bipolar_mlp_cfg(32, 8, 1));
  nn::zoo::randomize(*net, rng);
  Tensor in(Shape{32, 1, 1});
  for (int64_t i = 0; i < 32; ++i) in[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  const Tensor& out = net->forward(in);
  for (int64_t i = 0; i < out.numel(); ++i)
    EXPECT_TRUE(out[i] == 1.0f || out[i] == -1.0f) << out[i];
}

TEST(BipolarConv, ThresholdPathMatchesFloatEmulation) {
  Rng rng(14);
  for (int rep = 0; rep < 5; ++rep) {
    auto quant_net =
        nn::build_network_from_string(bipolar_mlp_cfg(64, 16, 2));
    nn::zoo::randomize(*quant_net, rng);

    // Float twin: same parameters, float kernels with binary weights; the
    // bipolar snap happens in apply_post for both.
    auto float_net = nn::build_network_from_string([&] {
      std::string cfg = "[net]\nwidth=1\nheight=1\nchannels=64\n";
      for (int l = 0; l < 2; ++l)
        cfg += "[convolutional]\nbatch_normalize=1\nfilters=16\nsize=1\n"
               "stride=1\npad=0\nactivation=linear\nbinary=1\nabits=1\n"
               "bipolar=1\nkernel=reference\nin_scale=1\nout_scale=1\n";
      return cfg;
    }());
    for (int64_t l = 0; l < 2; ++l) {
      auto& dst = dynamic_cast<nn::ConvLayer&>(float_net->layer(l));
      const auto& src = dynamic_cast<const nn::ConvLayer&>(quant_net->layer(l));
      dst.weights() = src.weights();
      dst.biases() = src.biases();
      dst.bn_scales() = src.bn_scales();
      dst.bn_mean() = src.bn_mean();
      dst.bn_var() = src.bn_var();
      dst.invalidate_cached_quantization();
    }

    Tensor in(Shape{64, 1, 1});
    for (int64_t i = 0; i < 64; ++i)
      in[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    const Tensor a = quant_net->forward(in);
    const Tensor b = float_net->forward(in);
    int64_t mismatches = 0;
    for (int64_t i = 0; i < a.numel(); ++i) mismatches += a[i] != b[i];
    // Sign boundaries can differ between float and integer evaluation only
    // when z lands exactly on 0 — essentially never with random BN.
    EXPECT_LE(mismatches, 1);
  }
}

TEST(BipolarFabric, AcceleratorBitExactAgainstCpu) {
  Rng rng(15);
  auto subnet = nn::build_network_from_string(bipolar_mlp_cfg(96, 24, 3));
  nn::zoo::randomize(*subnet, rng);
  const fabric::QnnAccelerator acc = offload::import_accelerator(*subnet);
  EXPECT_EQ(acc.num_layers(), 3);

  for (int rep = 0; rep < 10; ++rep) {
    Tensor in(Shape{96, 1, 1});
    for (int64_t i = 0; i < 96; ++i)
      in[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    const Tensor expected = subnet->forward(in);
    const Tensor got = acc.forward(in);
    for (int64_t i = 0; i < got.numel(); ++i)
      EXPECT_FLOAT_EQ(got[i], expected[i]) << "rep " << rep << " i " << i;
  }
}

TEST(BipolarFabric, BatchedForwardBitExactOnMlp) {
  // MLP-4-class W1A1 network through the importer: the batched path
  // (one weight stream, B stacked frames) must be bit-identical to
  // running every frame alone.
  Rng rng(21);
  auto subnet = nn::build_network_from_string(bipolar_mlp_cfg(96, 24, 3));
  nn::zoo::randomize(*subnet, rng);
  const fabric::QnnAccelerator acc = offload::import_accelerator(*subnet);
  const int64_t batch = 5;
  const int64_t in_n = acc.input_shape().numel();
  const int64_t out_n = acc.output_shape().numel();
  std::vector<uint8_t> inputs(static_cast<size_t>(batch * in_n));
  for (auto& v : inputs) v = rng.bernoulli(0.5) ? 1 : 0;
  const std::vector<uint8_t> batched = acc.forward_codes_batched(inputs, batch);
  ASSERT_EQ(static_cast<int64_t>(batched.size()), batch * out_n);
  for (int64_t b = 0; b < batch; ++b) {
    const std::vector<uint8_t> one(
        inputs.begin() + static_cast<std::ptrdiff_t>(b * in_n),
        inputs.begin() + static_cast<std::ptrdiff_t>((b + 1) * in_n));
    const std::vector<uint8_t> expected = acc.forward_codes(one);
    for (int64_t i = 0; i < out_n; ++i)
      EXPECT_EQ(batched[static_cast<size_t>(b * out_n + i)],
                expected[static_cast<size_t>(i)])
          << "frame " << b << " element " << i;
  }
}

TEST(BipolarFabric, ConnectedLayerStageExtraction) {
  // A subnet of quantized connected layers maps to FC stages (1x1 convs).
  const std::string cfg =
      "[net]\nwidth=1\nheight=1\nchannels=40\n"
      "[connected]\noutput=12\nactivation=linear\nbinary=1\nabits=1\n"
      "bipolar=1\nin_scale=1\nout_scale=1\n"
      "[connected]\noutput=6\nactivation=linear\nbinary=1\nabits=1\n"
      "bipolar=1\nin_scale=1\nout_scale=1\n";
  Rng rng(16);
  auto subnet = nn::build_network_from_string(cfg);
  nn::zoo::randomize(*subnet, rng);
  const fabric::QnnAccelerator acc = offload::import_accelerator(*subnet);
  ASSERT_EQ(acc.num_layers(), 2);
  EXPECT_EQ(acc.spec(0).kernel, 1);
  EXPECT_EQ(acc.spec(0).in_channels, 40);

  for (int rep = 0; rep < 10; ++rep) {
    Tensor in(Shape{40, 1, 1});
    for (int64_t i = 0; i < 40; ++i)
      in[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    const Tensor expected = subnet->forward(in);
    const Tensor got = acc.forward(in);
    ASSERT_EQ(got.numel(), expected.numel());
    for (int64_t i = 0; i < got.numel(); ++i)
      EXPECT_FLOAT_EQ(got[i], expected[i]);
  }
}

TEST(BipolarFabric, MixedEncodingChainRejected) {
  Rng rng(17);
  Tensor w1(Shape{8, 16}), w2(Shape{4, 8});
  for (int64_t i = 0; i < w1.numel(); ++i) w1[i] = rng.normal();
  for (int64_t i = 0; i < w2.numel(); ++i) w2[i] = rng.normal();

  fabric::QnnAccelerator acc;
  fabric::QnnLayerSpec s1;
  s1.in_channels = 16;
  s1.in_height = 1;
  s1.in_width = 1;
  s1.filters = 8;
  s1.kernel = 1;
  s1.pad = 0;
  s1.act_bits_in = 1;
  s1.act_bits_out = 1;
  s1.bipolar = true;
  std::vector<fabric::ThresholdChannel> th1(8);
  for (auto& ch : th1) ch.thresholds.push_back(0);
  acc.add_layer(s1, quant::binarize(w1), th1);

  fabric::QnnLayerSpec s2 = s1;
  s2.in_channels = 8;
  s2.filters = 4;
  s2.bipolar = false;  // encoding mismatch with upstream
  std::vector<fabric::ThresholdChannel> th2(4);
  for (auto& ch : th2) ch.thresholds.push_back(0);
  EXPECT_THROW(acc.add_layer(s2, quant::binarize(w2), th2), Error);
}

TEST(BipolarConnected, CpuForwardSnapsToSigns) {
  Rng rng(18);
  nn::ConnectedConfig cfg;
  cfg.outputs = 5;
  cfg.activation = nn::Activation::kLinear;
  cfg.binary_weights = true;
  cfg.act_bits = 1;
  cfg.bipolar = true;
  cfg.out_scale = 2.0f;
  nn::ConnectedLayer layer(cfg, Shape{10});
  for (int64_t i = 0; i < layer.weights().numel(); ++i)
    layer.weights()[i] = rng.normal();
  Tensor in(Shape{10});
  for (int64_t i = 0; i < 10; ++i) in[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  Tensor out(Shape{5});
  layer.forward(in, out);
  for (int64_t i = 0; i < 5; ++i)
    EXPECT_TRUE(out[i] == 2.0f || out[i] == -2.0f) << out[i];
}

}  // namespace
}  // namespace tincy
