#include <gtest/gtest.h>

#include <filesystem>

#include "core/rng.hpp"
#include "fabric/accelerator.hpp"
#include "fabric/binparam.hpp"
#include "fabric/dataflow.hpp"
#include "fabric/folding.hpp"
#include "fabric/mvtu.hpp"
#include "fabric/pool_unit.hpp"
#include "fabric/resource_model.hpp"
#include "fabric/ternary_mvtu.hpp"
#include "fabric/sliding_window.hpp"
#include "nn/builder.hpp"
#include "nn/conv_layer.hpp"
#include "nn/zoo.hpp"
#include "offload/import.hpp"
#include "telemetry/metrics.hpp"

namespace tincy::fabric {
namespace {

quant::BinaryMatrix random_binary(Rng& rng, int64_t rows, int64_t cols) {
  Tensor w(Shape{rows, cols});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  return quant::binarize(w);
}

std::vector<ThresholdChannel> identity_thresholds(int64_t rows, int levels) {
  // Thresholds at 1, 2, ... — the level equals clamp(acc, 0, levels).
  std::vector<ThresholdChannel> t(static_cast<size_t>(rows));
  for (auto& ch : t)
    for (int k = 1; k <= levels; ++k) ch.thresholds.push_back(k);
  return t;
}

TEST(Folding, CycleFormula) {
  // 64×144 matrix on a 32×36 array, 3-bit activations:
  // ceil(64/32)·ceil(144/36)·3 = 2·4·3 = 24 cycles per column.
  EXPECT_EQ(fold_cycles_per_vector({64, 144}, {32, 36}, 3), 24);
  EXPECT_EQ(fold_cycles_per_layer({64, 144}, {32, 36}, 3, 100), 2400);
  // Non-dividing folds round up.
  EXPECT_EQ(fold_cycles_per_vector({65, 145}, {32, 36}, 1), 3 * 5);
}

TEST(Folding, InvalidArgsThrow) {
  EXPECT_THROW(fold_cycles_per_vector({0, 10}, {8, 8}, 1), Error);
  EXPECT_THROW(fold_cycles_per_vector({10, 10}, {0, 8}, 1), Error);
  EXPECT_THROW(fold_cycles_per_vector({10, 10}, {8, 8}, 0), Error);
}

TEST(Mvtu, AccumulateMatchesDirectDot) {
  Rng rng(101);
  const int64_t rows = 20, cols = 100;
  const quant::BinaryMatrix w = random_binary(rng, rows, cols);
  Mvtu mvtu(w, identity_thresholds(rows, 7), /*act_bits_in=*/3);

  std::vector<uint8_t> column(static_cast<size_t>(cols));
  for (auto& c : column) c = static_cast<uint8_t>(rng.uniform_int(0, 7));
  std::vector<int32_t> acc(static_cast<size_t>(rows));
  mvtu.accumulate(column, acc);
  for (int64_t r = 0; r < rows; ++r) {
    int32_t expected = 0;
    for (int64_t c = 0; c < cols; ++c)
      expected += static_cast<int32_t>(w.value(r, c)) * column[static_cast<size_t>(c)];
    EXPECT_EQ(acc[static_cast<size_t>(r)], expected) << "row " << r;
  }
}

TEST(Mvtu, ComputeAppliesThresholds) {
  Rng rng(103);
  const int64_t rows = 8, cols = 64;
  const quant::BinaryMatrix w = random_binary(rng, rows, cols);
  Mvtu mvtu(w, identity_thresholds(rows, 7), 3);
  std::vector<uint8_t> column(static_cast<size_t>(cols));
  for (auto& c : column) c = static_cast<uint8_t>(rng.uniform_int(0, 7));
  std::vector<int32_t> acc(static_cast<size_t>(rows));
  std::vector<uint8_t> out(static_cast<size_t>(rows));
  mvtu.accumulate(column, acc);
  mvtu.compute(column, out);
  for (int64_t r = 0; r < rows; ++r) {
    const int expected =
        std::clamp(acc[static_cast<size_t>(r)], 0, 7);
    EXPECT_EQ(out[static_cast<size_t>(r)], expected);
  }
}

TEST(Mvtu, ThresholdCountMustMatchRows) {
  Rng rng(104);
  const quant::BinaryMatrix w = random_binary(rng, 4, 16);
  EXPECT_THROW(Mvtu(w, identity_thresholds(3, 7), 3), Error);
}

TEST(SlidingWindow, MatchesIm2Col) {
  Rng rng(105);
  const gemm::ConvGeometry g{3, 7, 7, 3, 2, 1};
  std::vector<uint8_t> image(static_cast<size_t>(3 * 7 * 7));
  for (auto& v : image) v = static_cast<uint8_t>(rng.uniform_int(0, 7));
  TensorU8 img(Shape{3, 7, 7});
  for (int64_t i = 0; i < img.numel(); ++i) img[i] = image[static_cast<size_t>(i)];
  const TensorU8 cols = gemm::im2col(img, g, /*pad_value=*/0);

  const SlidingWindowUnit swu(g);
  ASSERT_EQ(swu.num_columns(), g.num_patches());
  std::vector<uint8_t> column(static_cast<size_t>(swu.column_size()));
  for (int64_t j = 0; j < swu.num_columns(); ++j) {
    swu.emit_column(image, j, column);
    for (int64_t r = 0; r < swu.column_size(); ++r)
      EXPECT_EQ(column[static_cast<size_t>(r)], cols.at2(r, j))
          << "col " << j << " row " << r;
  }
}

TEST(SlidingWindow, StreamCycles) {
  const SlidingWindowUnit swu({16, 8, 8, 3, 1, 1});
  EXPECT_EQ(swu.cycles_per_column(36), (16 * 9 + 35) / 36);
}

TEST(PoolUnit, MatchesFloatSemantics) {
  Rng rng(107);
  const PoolSpec spec{4, 6, 6, 2, 2};
  std::vector<uint8_t> in(static_cast<size_t>(4 * 36));
  for (auto& v : in) v = static_cast<uint8_t>(rng.uniform_int(0, 7));
  std::vector<uint8_t> out(static_cast<size_t>(4 * 9));
  max_pool_codes(spec, in, out);
  for (int64_t c = 0; c < 4; ++c)
    for (int64_t y = 0; y < 3; ++y)
      for (int64_t x = 0; x < 3; ++x) {
        uint8_t m = 0;
        for (int64_t dy = 0; dy < 2; ++dy)
          for (int64_t dx = 0; dx < 2; ++dx)
            m = std::max(m, in[static_cast<size_t>((c * 6 + 2 * y + dy) * 6 +
                                                   2 * x + dx)]);
        EXPECT_EQ(out[static_cast<size_t>((c * 3 + y) * 3 + x)], m);
      }
}

TEST(PoolUnit, Stride1KeepsSize) {
  const PoolSpec spec{1, 13, 13, 2, 1};
  EXPECT_EQ(spec.out_height(), 13);
  EXPECT_EQ(spec.out_width(), 13);
}

TEST(ResourceModel, SingleEngineConstraint) {
  // The paper's architectural constraint: the sized-up engine (largest
  // Tincy hidden layer resident) fits the XCZU3EG exactly once.
  EngineSpec spec;
  spec.folding = {32, 36};
  spec.act_bits = 3;
  spec.max_rows = 512;
  spec.max_depth = 4608;  // 512 channels × 3×3
  spec.weight_bits_on_chip = 512 * 4608;
  const Device zu3eg;
  const Resources r = estimate_engine(spec);
  EXPECT_TRUE(fits(r, zu3eg));
  EXPECT_EQ(max_engines(spec, zu3eg), 1);
}

TEST(ResourceModel, SmallEnginesFitMultipleTimes) {
  EngineSpec tiny;
  tiny.folding = {4, 8};
  tiny.act_bits = 1;
  tiny.max_rows = 64;
  tiny.max_depth = 128;
  tiny.weight_bits_on_chip = 64 * 128;
  EXPECT_GT(max_engines(tiny, Device{}), 1);
}

// --- Whole-accelerator bit-exactness against the CPU golden model ---

std::unique_ptr<nn::Network> quant_subnet(Rng& rng) {
  // Two quantized convs with pools, as the fabric offload would host.
  const std::string cfg =
      "[net]\nwidth=12\nheight=12\nchannels=4\n"
      "[convolutional]\nbatch_normalize=1\nfilters=8\nsize=3\nstride=1\n"
      "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n"
      "in_scale=0.25\nout_scale=0.5\n"
      "[maxpool]\nsize=2\nstride=2\n"
      "[convolutional]\nbatch_normalize=1\nfilters=16\nsize=3\nstride=1\n"
      "pad=1\nactivation=relu\nbinary=1\nabits=3\nkernel=quant_reference\n"
      "in_scale=0.5\nout_scale=0.5\n";
  auto net = nn::build_network_from_string(cfg);
  nn::zoo::randomize(*net, rng);
  return net;
}

TEST(Accelerator, BitExactAgainstCpuQuantReference) {
  Rng rng(109);
  const auto subnet = quant_subnet(rng);
  const QnnAccelerator acc = offload::import_accelerator(*subnet);

  Tensor in(Shape{4, 12, 12});
  for (int64_t i = 0; i < in.numel(); ++i)
    in[i] = 0.25f * static_cast<float>(rng.uniform_int(0, 7));

  const Tensor expected = [&] {
    Tensor t = subnet->forward(in);
    return t;
  }();
  const Tensor got = acc.forward(in);
  ASSERT_EQ(got.shape(), expected.shape());
  for (int64_t i = 0; i < got.numel(); ++i)
    EXPECT_FLOAT_EQ(got[i], expected[i]) << "element " << i;
}

TEST(Accelerator, LayerChainingValidated) {
  Rng rng(111);
  QnnAccelerator acc;
  QnnLayerSpec spec;
  spec.in_channels = 2;
  spec.in_height = 4;
  spec.in_width = 4;
  spec.filters = 4;
  acc.add_layer(spec, random_binary(rng, 4, 18), identity_thresholds(4, 7));
  // Mismatched follow-up layer must be rejected.
  QnnLayerSpec bad = spec;
  bad.in_channels = 3;
  EXPECT_THROW(
      acc.add_layer(bad, random_binary(rng, 4, 27), identity_thresholds(4, 7)),
      Error);
}

TEST(Accelerator, PerfReportPlausible) {
  Rng rng(113);
  const auto subnet = quant_subnet(rng);
  const QnnAccelerator acc = offload::import_accelerator(*subnet);
  ASSERT_EQ(acc.num_layers(), 2);
  for (int64_t i = 0; i < acc.num_layers(); ++i) {
    const LayerPerf p = acc.layer_perf(i);
    EXPECT_GT(p.compute_cycles, 0);
    EXPECT_GT(p.weight_dma_cycles, 0);
    EXPECT_GT(p.total_cycles(), p.compute_cycles);
  }
  EXPECT_GT(acc.total_ms(), 0.0);
  // This test subnet is tiny; the sized engine fits at least once (the
  // single-engine constraint for full Tincy dims is covered above).
  EXPECT_GE(acc.engines_fitting(), 1);
}

TEST(Binparam, RoundTripThroughDirectory) {
  Rng rng(115);
  const auto subnet = quant_subnet(rng);
  const auto dir =
      (std::filesystem::temp_directory_path() / "tincy_binparam_test").string();
  std::filesystem::remove_all(dir);
  offload::export_binparams(*subnet, dir);

  const QnnAccelerator direct = offload::import_accelerator(*subnet);
  const QnnAccelerator loaded = load_accelerator(dir);
  ASSERT_EQ(loaded.num_layers(), direct.num_layers());

  Tensor in(Shape{4, 12, 12});
  for (int64_t i = 0; i < in.numel(); ++i)
    in[i] = 0.25f * static_cast<float>(rng.uniform_int(0, 7));
  const Tensor a = direct.forward(in);
  const Tensor b = loaded.forward(in);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  std::filesystem::remove_all(dir);
}

TEST(Binparam, MissingDirectoryThrows) {
  EXPECT_THROW(load_binparams("/nonexistent/tincy"), Error);
}

// --- Dataflow execution model (§III-A architectural argument) ---

std::vector<QnnLayerSpec> two_stage_specs() {
  QnnLayerSpec a;
  a.in_channels = 8;
  a.in_height = 8;
  a.in_width = 8;
  a.filters = 16;
  a.kernel = 3;
  a.pad = 1;
  QnnLayerSpec b = a;
  b.in_channels = 16;
  b.filters = 32;
  return {a, b};
}

TEST(Dataflow, InitiationIntervalIsSlowestStage) {
  const auto specs = two_stage_specs();
  const auto plan = uniform_plan(specs, {8, 9});
  const auto r = evaluate_dataflow(plan, Device{}, 300.0);
  int64_t slowest = 0, total = 0;
  for (const auto& s : plan) {
    const auto g = s.spec.conv_geometry();
    const int64_t c = fold_cycles_per_layer({s.spec.filters, g.patch_size()},
                                            s.folding, s.spec.act_bits_in,
                                            g.num_patches());
    slowest = std::max(slowest, c);
    total += c;
  }
  EXPECT_EQ(r.initiation_interval_cycles, slowest);
  EXPECT_EQ(r.latency_cycles, total);
  EXPECT_NEAR(r.throughput_fps, 300e6 / static_cast<double>(slowest), 1.0);
}

TEST(Dataflow, BalancedPlanEvensOutStageCycles) {
  const auto specs = two_stage_specs();
  const auto uniform = uniform_plan(specs, {4, 9});
  const auto balanced = balanced_plan(specs, 2 * 4 * 9);
  const auto ru = evaluate_dataflow(uniform, Device{}, 300.0);
  const auto rb = evaluate_dataflow(balanced, Device{}, 300.0);
  // Same total lane budget, better (or equal) initiation interval.
  EXPECT_LE(rb.initiation_interval_cycles,
            ru.initiation_interval_cycles * 2);
  EXPECT_GT(rb.throughput_fps, 0.0);
}

TEST(Dataflow, TincyHiddenLayersDoNotFit) {
  // The seven Tincy hidden engines with resident weights overflow the
  // XCZU3EG — the constraint that forces layer-at-a-time execution.
  std::vector<QnnLayerSpec> specs;
  const int64_t channels[][2] = {{16, 64},  {64, 64},   {64, 128},
                                 {128, 256}, {256, 512}, {512, 512},
                                 {512, 512}};
  int64_t size = 208;
  for (const auto& c : channels) {
    QnnLayerSpec s;
    s.in_channels = c[0];
    s.in_height = size;
    s.in_width = size;
    s.filters = c[1];
    s.kernel = 3;
    s.pad = 1;
    specs.push_back(s);
    if (size > 13) size /= 2;
  }
  const auto r =
      evaluate_dataflow(uniform_plan(specs, {32, 36}), Device{}, 300.0);
  EXPECT_FALSE(r.fits_device);
}

TEST(Dataflow, EmptyPlanRejected) {
  EXPECT_THROW(evaluate_dataflow({}, Device{}, 300.0), Error);
}

// --- Ternary MVTU (related-work coverage: TWN on FPGAs) ---

TEST(TernaryMvtu, AccumulateMatchesDirectDot) {
  Rng rng(211);
  const int64_t rows = 12, cols = 80;
  Tensor w(Shape{rows, cols});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  const quant::TernaryMatrix tw = quant::ternarize(w, /*with_scale=*/false);
  TernaryMvtu mvtu(tw, identity_thresholds(rows, 7), /*act_bits_in=*/3);

  std::vector<uint8_t> column(static_cast<size_t>(cols));
  for (auto& c : column) c = static_cast<uint8_t>(rng.uniform_int(0, 7));
  std::vector<int32_t> acc(static_cast<size_t>(rows));
  mvtu.accumulate(column, acc);
  for (int64_t r = 0; r < rows; ++r) {
    int32_t expected = 0;
    for (int64_t c = 0; c < cols; ++c)
      expected += static_cast<int32_t>(tw.value(r, c)) *
                  column[static_cast<size_t>(c)];
    EXPECT_EQ(acc[static_cast<size_t>(r)], expected) << "row " << r;
  }
}

TEST(TernaryMvtu, ZeroWeightsContributeNothing) {
  quant::TernaryMatrix tw;
  tw.rows = 1;
  tw.cols = 4;
  tw.nonzero.emplace_back(4);
  tw.positive.emplace_back(4);
  tw.row_scale.push_back(1.0f);
  tw.nonzero[0].set(0, true);
  tw.positive[0].set(0, true);   // +1
  tw.nonzero[0].set(2, true);    // −1 (nonzero, not positive)
  // Indices 1 and 3 are exact zeros.
  TernaryMvtu mvtu(tw, identity_thresholds(1, 7), 3);
  const std::vector<uint8_t> column{5, 7, 2, 7};
  std::vector<int32_t> acc(1);
  mvtu.accumulate(column, acc);
  EXPECT_EQ(acc[0], 5 - 2);
}

TEST(TernaryMvtu, SameFoldingCostAsBinary) {
  Rng rng(212);
  Tensor w(Shape{64, 288});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  const Mvtu binary(quant::binarize(w), identity_thresholds(64, 7), 3);
  const TernaryMvtu ternary(quant::ternarize(w), identity_thresholds(64, 7),
                            3);
  const Folding f{32, 36};
  EXPECT_EQ(binary.cycles_per_column(f), ternary.cycles_per_column(f));
}

// ---- Batched (weight-resident) execution parity -------------------------

TEST(Mvtu, BatchMatchesSequentialCompute) {
  Rng rng(301);
  const int64_t rows = 20, cols = 100, batch = 5;
  const quant::BinaryMatrix w = random_binary(rng, rows, cols);
  const Mvtu mvtu(w, identity_thresholds(rows, 7), /*act_bits_in=*/3);

  std::vector<uint8_t> columns(static_cast<size_t>(batch * cols));
  for (auto& c : columns) c = static_cast<uint8_t>(rng.uniform_int(0, 7));

  std::vector<uint8_t> batched(static_cast<size_t>(batch * rows));
  std::vector<int32_t> acc_batched(static_cast<size_t>(batch * rows));
  mvtu.compute_batch(columns, batch, batched);
  mvtu.accumulate_batch(columns, batch, acc_batched);

  std::vector<uint8_t> expected(static_cast<size_t>(rows));
  std::vector<int32_t> acc_expected(static_cast<size_t>(rows));
  for (int64_t b = 0; b < batch; ++b) {
    const std::span<const uint8_t> col(columns.data() + b * cols,
                                       static_cast<size_t>(cols));
    mvtu.compute(col, expected);
    mvtu.accumulate(col, acc_expected);
    for (int64_t r = 0; r < rows; ++r) {
      EXPECT_EQ(batched[static_cast<size_t>(b * rows + r)],
                expected[static_cast<size_t>(r)])
          << "frame " << b << " row " << r;
      EXPECT_EQ(acc_batched[static_cast<size_t>(b * rows + r)],
                acc_expected[static_cast<size_t>(r)])
          << "frame " << b << " row " << r;
    }
  }
}

TEST(Mvtu, BipolarBatchMatchesSequential) {
  Rng rng(302);
  const int64_t rows = 16, cols = 64, batch = 4;
  const quant::BinaryMatrix w = random_binary(rng, rows, cols);
  std::vector<ThresholdChannel> th(static_cast<size_t>(rows));
  for (auto& ch : th) ch.thresholds.push_back(0);  // sign of the accumulator
  const Mvtu mvtu(w, std::move(th), /*act_bits_in=*/1, ActEncoding::kBipolar);

  std::vector<uint8_t> columns(static_cast<size_t>(batch * cols));
  for (auto& c : columns) c = static_cast<uint8_t>(rng.uniform_int(0, 1));

  std::vector<uint8_t> batched(static_cast<size_t>(batch * rows));
  mvtu.compute_batch(columns, batch, batched);
  std::vector<uint8_t> expected(static_cast<size_t>(rows));
  for (int64_t b = 0; b < batch; ++b) {
    mvtu.compute(std::span<const uint8_t>(columns.data() + b * cols,
                                          static_cast<size_t>(cols)),
                 expected);
    for (int64_t r = 0; r < rows; ++r)
      EXPECT_EQ(batched[static_cast<size_t>(b * rows + r)],
                expected[static_cast<size_t>(r)])
          << "frame " << b << " row " << r;
  }
}

TEST(TernaryMvtu, BatchMatchesSequential) {
  Rng rng(303);
  const int64_t rows = 12, cols = 80, batch = 3;
  Tensor w(Shape{rows, cols});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();
  const TernaryMvtu mvtu(quant::ternarize(w), identity_thresholds(rows, 7),
                         /*act_bits_in=*/3);

  std::vector<uint8_t> columns(static_cast<size_t>(batch * cols));
  for (auto& c : columns) c = static_cast<uint8_t>(rng.uniform_int(0, 7));

  std::vector<uint8_t> batched(static_cast<size_t>(batch * rows));
  std::vector<int32_t> acc_batched(static_cast<size_t>(batch * rows));
  mvtu.compute_batch(columns, batch, batched);
  mvtu.accumulate_batch(columns, batch, acc_batched);
  std::vector<uint8_t> expected(static_cast<size_t>(rows));
  std::vector<int32_t> acc_expected(static_cast<size_t>(rows));
  for (int64_t b = 0; b < batch; ++b) {
    const std::span<const uint8_t> col(columns.data() + b * cols,
                                       static_cast<size_t>(cols));
    mvtu.compute(col, expected);
    mvtu.accumulate(col, acc_expected);
    for (int64_t r = 0; r < rows; ++r) {
      EXPECT_EQ(batched[static_cast<size_t>(b * rows + r)],
                expected[static_cast<size_t>(r)]);
      EXPECT_EQ(acc_batched[static_cast<size_t>(b * rows + r)],
                acc_expected[static_cast<size_t>(r)]);
    }
  }
}

TEST(SlidingWindow, BatchEmitsPerFrameColumns) {
  Rng rng(304);
  const gemm::ConvGeometry g{3, 7, 7, 3, 2, 1};
  const int64_t batch = 3;
  const int64_t image_size = 3 * 7 * 7;
  std::vector<uint8_t> images(static_cast<size_t>(batch * image_size));
  for (auto& v : images) v = static_cast<uint8_t>(rng.uniform_int(0, 7));

  const SlidingWindowUnit swu(g);
  std::vector<uint8_t> batched(
      static_cast<size_t>(batch * swu.column_size()));
  std::vector<uint8_t> expected(static_cast<size_t>(swu.column_size()));
  for (int64_t j = 0; j < swu.num_columns(); ++j) {
    swu.emit_column_batch(images, batch, j, batched);
    for (int64_t b = 0; b < batch; ++b) {
      swu.emit_column(
          std::span<const uint8_t>(images.data() + b * image_size,
                                   static_cast<size_t>(image_size)),
          j, expected);
      for (int64_t r = 0; r < swu.column_size(); ++r)
        EXPECT_EQ(batched[static_cast<size_t>(b * swu.column_size() + r)],
                  expected[static_cast<size_t>(r)])
            << "frame " << b << " col " << j << " row " << r;
    }
  }
}

TEST(PoolUnit, BatchMatchesPerFrame) {
  Rng rng(305);
  const PoolSpec spec{4, 6, 6, 2, 2};
  const int64_t batch = 3;
  const int64_t in_size = 4 * 36, out_size = 4 * 9;
  std::vector<uint8_t> in(static_cast<size_t>(batch * in_size));
  for (auto& v : in) v = static_cast<uint8_t>(rng.uniform_int(0, 7));
  std::vector<uint8_t> batched(static_cast<size_t>(batch * out_size));
  max_pool_codes_batch(spec, in, batched, batch);
  std::vector<uint8_t> expected(static_cast<size_t>(out_size));
  for (int64_t b = 0; b < batch; ++b) {
    max_pool_codes(spec,
                   std::span<const uint8_t>(in.data() + b * in_size,
                                            static_cast<size_t>(in_size)),
                   expected);
    for (int64_t i = 0; i < out_size; ++i)
      EXPECT_EQ(batched[static_cast<size_t>(b * out_size + i)],
                expected[static_cast<size_t>(i)]);
  }
}

TEST(Accelerator, BatchedBitExactOnQuantSubnet) {
  // Tincy-style golden: the batched whole-network path over a conv+pool
  // chain must be bit-identical to running every frame alone.
  Rng rng(306);
  const auto subnet = quant_subnet(rng);
  const QnnAccelerator acc = offload::import_accelerator(*subnet);
  const int64_t batch = 4;
  const int64_t in_n = acc.input_shape().numel();
  const int64_t out_n = acc.output_shape().numel();

  std::vector<uint8_t> inputs(static_cast<size_t>(batch * in_n));
  for (auto& v : inputs) v = static_cast<uint8_t>(rng.uniform_int(0, 7));
  const std::vector<uint8_t> batched = acc.forward_codes_batched(inputs, batch);
  ASSERT_EQ(static_cast<int64_t>(batched.size()), batch * out_n);
  for (int64_t b = 0; b < batch; ++b) {
    const std::vector<uint8_t> one(
        inputs.begin() + static_cast<std::ptrdiff_t>(b * in_n),
        inputs.begin() + static_cast<std::ptrdiff_t>((b + 1) * in_n));
    const std::vector<uint8_t> expected = acc.forward_codes(one);
    for (int64_t i = 0; i < out_n; ++i)
      EXPECT_EQ(batched[static_cast<size_t>(b * out_n + i)],
                expected[static_cast<size_t>(i)])
          << "frame " << b << " element " << i;
  }
}

/// CNV-style bipolar chain (W1A1, valid convs, mid-chain max pool).
QnnAccelerator bipolar_accelerator(Rng& rng) {
  QnnAccelerator acc;
  QnnLayerSpec l1;
  l1.in_channels = 4;
  l1.in_height = 6;
  l1.in_width = 6;
  l1.filters = 8;
  l1.kernel = 3;
  l1.pad = 0;
  l1.act_bits_in = 1;
  l1.act_bits_out = 1;
  l1.bipolar = true;
  l1.pool_after = true;
  l1.pool_size = 2;
  l1.pool_stride = 2;
  std::vector<ThresholdChannel> th1(8);
  for (auto& ch : th1) ch.thresholds.push_back(0);
  acc.add_layer(l1, random_binary(rng, 8, 4 * 9), std::move(th1));

  QnnLayerSpec l2;
  l2.in_channels = 8;
  l2.in_height = 2;
  l2.in_width = 2;
  l2.filters = 4;
  l2.kernel = 1;
  l2.pad = 0;
  l2.act_bits_in = 1;
  l2.act_bits_out = 1;
  l2.bipolar = true;
  std::vector<ThresholdChannel> th2(4);
  for (auto& ch : th2) ch.thresholds.push_back(0);
  acc.add_layer(l2, random_binary(rng, 4, 8), std::move(th2));
  return acc;
}

TEST(Accelerator, BatchedBitExactBipolar) {
  Rng rng(307);
  const QnnAccelerator acc = bipolar_accelerator(rng);
  const int64_t batch = 6;
  const int64_t in_n = acc.input_shape().numel();
  const int64_t out_n = acc.output_shape().numel();
  std::vector<uint8_t> inputs(static_cast<size_t>(batch * in_n));
  for (auto& v : inputs) v = static_cast<uint8_t>(rng.uniform_int(0, 1));
  const std::vector<uint8_t> batched = acc.forward_codes_batched(inputs, batch);
  for (int64_t b = 0; b < batch; ++b) {
    const std::vector<uint8_t> one(
        inputs.begin() + static_cast<std::ptrdiff_t>(b * in_n),
        inputs.begin() + static_cast<std::ptrdiff_t>((b + 1) * in_n));
    const std::vector<uint8_t> expected = acc.forward_codes(one);
    for (int64_t i = 0; i < out_n; ++i)
      EXPECT_EQ(batched[static_cast<size_t>(b * out_n + i)],
                expected[static_cast<size_t>(i)])
          << "frame " << b << " element " << i;
  }
}

TEST(Accelerator, LayerPerfBatchedAmortizesWeightDma) {
  Rng rng(308);
  const auto subnet = quant_subnet(rng);
  const QnnAccelerator acc = offload::import_accelerator(*subnet);
  const LayerPerf one = acc.layer_perf(0);
  const LayerPerf four = acc.layer_perf_batched(0, 4);
  // Weight stream and invocation overhead are paid once per pass; the
  // per-frame work scales with the batch.
  EXPECT_EQ(four.batch, 4);
  EXPECT_EQ(four.weight_dma_cycles, one.weight_dma_cycles);
  EXPECT_EQ(four.overhead_cycles, one.overhead_cycles);
  EXPECT_EQ(four.compute_cycles, 4 * one.compute_cycles);
  EXPECT_EQ(four.fmap_dma_cycles, 4 * one.fmap_dma_cycles);
  EXPECT_EQ(four.pool_cycles, 4 * one.pool_cycles);
  EXPECT_LT(four.cycles_per_frame(), static_cast<double>(one.total_cycles()));
  EXPECT_DOUBLE_EQ(four.weight_dma_per_frame(),
                   static_cast<double>(one.weight_dma_cycles) / 4.0);
  EXPECT_EQ(four.dma_saved_cycles(), 3 * one.weight_dma_cycles);
  EXPECT_EQ(one.dma_saved_cycles(), 0);
  // layer_perf is exactly the batch-1 case.
  EXPECT_EQ(one.total_cycles(), acc.layer_perf_batched(0, 1).total_cycles());
}

TEST(Accelerator, BatchedTelemetryCountsAmortization) {
  Rng rng(309);
  const auto subnet = quant_subnet(rng);
  QnnAccelerator acc = offload::import_accelerator(*subnet);
  telemetry::MetricsRegistry registry;
  acc.set_metrics(&registry);

  const int64_t in_n = acc.input_shape().numel();
  std::vector<uint8_t> one(static_cast<size_t>(in_n), 3);
  acc.forward_codes(one);  // batch of 1: nothing to amortize, no samples
  auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("fabric.batched_passes"), 0);
  EXPECT_EQ(snap.counter_value("fabric.dma_amortized"), 0);

  const int64_t batch = 4;
  const int64_t layers = acc.num_layers();
  std::vector<uint8_t> inputs(static_cast<size_t>(batch * in_n), 3);
  acc.forward_codes_batched(inputs, batch);
  snap = registry.snapshot();
  // One coalesced pass per offloaded layer, each over `batch` frames.
  EXPECT_EQ(snap.counter_value("fabric.batched_passes"), layers);
  EXPECT_EQ(snap.counter_value("fabric.batched_frames"), layers * batch);
  EXPECT_EQ(snap.counter_value("fabric.dma_amortized"), layers * (batch - 1));
  int64_t expected_saved = 0;
  for (int64_t i = 0; i < layers; ++i)
    expected_saved += (batch - 1) * acc.layer_perf(i).weight_dma_cycles;
  EXPECT_EQ(snap.counter_value("fabric.dma_saved_cycles"), expected_saved);
}

}  // namespace
}  // namespace tincy::fabric
