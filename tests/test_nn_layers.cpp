#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/rng.hpp"
#include "nn/activation.hpp"
#include "nn/connected_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/maxpool_layer.hpp"
#include "nn/network.hpp"
#include "nn/region_layer.hpp"
#include "nn/weights_io.hpp"

namespace tincy::nn {
namespace {

Tensor random_tensor(Rng& rng, Shape shape, float lo = -1.0f, float hi = 1.0f) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
  return t;
}

TEST(Activation, Values) {
  EXPECT_FLOAT_EQ(apply(Activation::kLinear, -2.0f), -2.0f);
  EXPECT_FLOAT_EQ(apply(Activation::kRelu, -2.0f), 0.0f);
  EXPECT_FLOAT_EQ(apply(Activation::kRelu, 3.0f), 3.0f);
  EXPECT_FLOAT_EQ(apply(Activation::kLeaky, -2.0f), -0.2f);
  EXPECT_NEAR(apply(Activation::kLogistic, 0.0f), 0.5f, 1e-6f);
}

TEST(Activation, ParseRoundTrip) {
  for (const auto a : {Activation::kLinear, Activation::kRelu,
                       Activation::kLeaky, Activation::kLogistic})
    EXPECT_EQ(parse_activation(activation_name(a)), a);
  EXPECT_THROW(parse_activation("swish"), Error);
}

TEST(Activation, DerivativeMatchesFiniteDifference) {
  Rng rng(2);
  for (const auto a : {Activation::kRelu, Activation::kLeaky,
                       Activation::kLogistic, Activation::kLinear}) {
    for (int i = 0; i < 100; ++i) {
      float x = rng.uniform(-3.0f, 3.0f);
      if (std::fabs(x) < 0.01f) x = 0.5f;  // keep clear of the ReLU kink
      const float h = 1e-3f;
      const float fd = (apply(a, x + h) - apply(a, x - h)) / (2 * h);
      EXPECT_NEAR(derivative(a, x), fd, 1e-2f);
    }
  }
}

TEST(ConvLayer, OutputShapeSameConv) {
  ConvConfig cfg;
  cfg.filters = 8;
  cfg.size = 3;
  cfg.stride = 1;
  cfg.pad = true;
  ConvLayer layer(cfg, Shape{3, 16, 16});
  EXPECT_EQ(layer.output_shape(), Shape({8, 16, 16}));
}

TEST(ConvLayer, OutputShapeStride2) {
  ConvConfig cfg;
  cfg.filters = 16;
  cfg.stride = 2;
  cfg.pad = true;
  ConvLayer layer(cfg, Shape{3, 416, 416});
  EXPECT_EQ(layer.output_shape(), Shape({16, 208, 208}));
}

TEST(ConvLayer, FusedMatchesReference) {
  Rng rng(5);
  ConvConfig cfg;
  cfg.filters = 6;
  cfg.activation = Activation::kLeaky;
  cfg.batch_normalize = true;
  cfg.kernel = ConvKernel::kReference;
  ConvLayer ref(cfg, Shape{3, 10, 10});
  cfg.kernel = ConvKernel::kFused;
  ConvLayer fused(cfg, Shape{3, 10, 10});

  // Same weights in both.
  const Tensor w = random_tensor(rng, ref.weights().shape());
  const Tensor b = random_tensor(rng, Shape{6});
  ref.weights() = w;
  fused.weights() = w;
  ref.biases() = b;
  fused.biases() = b;
  for (int64_t c = 0; c < 6; ++c) {
    const float s = rng.uniform(0.5f, 1.5f), m = rng.normal(0.0f, 0.2f),
                v = rng.uniform(0.5f, 1.5f);
    ref.bn_scales()[c] = fused.bn_scales()[c] = s;
    ref.bn_mean()[c] = fused.bn_mean()[c] = m;
    ref.bn_var()[c] = fused.bn_var()[c] = v;
  }

  const Tensor in = random_tensor(rng, Shape{3, 10, 10});
  Tensor out_ref(ref.output_shape()), out_fused(fused.output_shape());
  ref.forward(in, out_ref);
  fused.forward(in, out_fused);
  for (int64_t i = 0; i < out_ref.numel(); ++i)
    EXPECT_NEAR(out_ref[i], out_fused[i], 1e-4f);
}

TEST(ConvLayer, LowpTracksFloat) {
  Rng rng(7);
  ConvConfig cfg;
  cfg.filters = 4;
  cfg.activation = Activation::kLinear;
  cfg.kernel = ConvKernel::kReference;
  ConvLayer ref(cfg, Shape{3, 8, 8});
  cfg.kernel = ConvKernel::kLowp;
  ConvLayer lowp(cfg, Shape{3, 8, 8});
  const Tensor w = random_tensor(rng, ref.weights().shape(), -0.3f, 0.3f);
  ref.weights() = w;
  lowp.weights() = w;
  lowp.invalidate_cached_quantization();

  const Tensor in = random_tensor(rng, Shape{3, 8, 8}, 0.0f, 1.0f);
  Tensor out_ref(ref.output_shape()), out_lowp(lowp.output_shape());
  ref.forward(in, out_ref);
  lowp.forward(in, out_lowp);
  double err = 0.0, mag = 0.0;
  for (int64_t i = 0; i < out_ref.numel(); ++i) {
    err += std::fabs(out_ref[i] - out_lowp[i]);
    mag += std::fabs(out_ref[i]);
  }
  EXPECT_LT(err / mag, 0.05) << "relative L1 error too large";
}

TEST(ConvLayer, BinaryWeightFlagBinarizesFloatPath) {
  Rng rng(9);
  ConvConfig cfg;
  cfg.filters = 2;
  cfg.activation = Activation::kLinear;
  cfg.binary_weights = true;
  ConvLayer layer(cfg, Shape{1, 4, 4});
  layer.weights() = random_tensor(rng, layer.weights().shape(), -2.0f, 2.0f);
  layer.invalidate_cached_quantization();

  // Expected: conv with sign(w).
  ConvConfig fcfg = cfg;
  fcfg.binary_weights = false;
  ConvLayer flayer(fcfg, Shape{1, 4, 4});
  for (int64_t i = 0; i < layer.weights().numel(); ++i)
    flayer.weights()[i] = layer.weights()[i] >= 0.0f ? 1.0f : -1.0f;

  const Tensor in = random_tensor(rng, Shape{1, 4, 4});
  Tensor a(layer.output_shape()), b(layer.output_shape());
  layer.forward(in, a);
  flayer.forward(in, b);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(ConvLayer, OpsMatchPaperFormula) {
  ConvConfig cfg;
  cfg.filters = 16;
  cfg.size = 3;
  cfg.stride = 1;
  cfg.pad = true;
  ConvLayer layer(cfg, Shape{3, 416, 416});
  EXPECT_EQ(layer.ops().ops, 149520384);  // Table I layer 1
}

TEST(MaxPool, HalvingPool) {
  MaxPoolLayer pool({2, 2}, Shape{2, 8, 8});
  EXPECT_EQ(pool.output_shape(), Shape({2, 4, 4}));
  Tensor in(Shape{2, 8, 8});
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = static_cast<float>(i % 13);
  Tensor out(pool.output_shape());
  pool.forward(in, out);
  // Every output is the max of its 2x2 block.
  for (int64_t c = 0; c < 2; ++c)
    for (int64_t y = 0; y < 4; ++y)
      for (int64_t x = 0; x < 4; ++x) {
        float m = -1e9f;
        for (int64_t dy = 0; dy < 2; ++dy)
          for (int64_t dx = 0; dx < 2; ++dx)
            m = std::max(m, in.at(c, 2 * y + dy, 2 * x + dx));
        EXPECT_EQ(out.at(c, y, x), m);
      }
}

TEST(MaxPool, Stride1SamePoolKeepsSize) {
  // Tiny YOLO's last pool: size 2, stride 1 on 13x13 stays 13x13.
  MaxPoolLayer pool({2, 1}, Shape{512, 13, 13});
  EXPECT_EQ(pool.output_shape(), Shape({512, 13, 13}));
}

TEST(MaxPool, PaperOpsAccounting) {
  // Table I layer 2: 416x416 input, 2x2 stride 2 → 173,056 ops.
  MaxPoolLayer pool2({2, 2}, Shape{16, 416, 416});
  EXPECT_EQ(pool2.ops().ops, 173056);
  // Table I layer 12: 13x13, size 2 stride 1 → 676 ops.
  MaxPoolLayer pool12({2, 1}, Shape{512, 13, 13});
  EXPECT_EQ(pool12.ops().ops, 676);
}

TEST(Connected, ForwardMatchesNaive) {
  Rng rng(11);
  ConnectedConfig cfg;
  cfg.outputs = 5;
  cfg.activation = Activation::kRelu;
  ConnectedLayer layer(cfg, Shape{3, 2, 2});
  EXPECT_EQ(layer.inputs(), 12);
  layer.weights() = random_tensor(rng, Shape{5, 12});
  layer.biases() = random_tensor(rng, Shape{5});

  const Tensor in = random_tensor(rng, Shape{3, 2, 2});
  Tensor out(Shape{5});
  layer.forward(in, out);
  for (int64_t o = 0; o < 5; ++o) {
    float acc = layer.biases()[o];
    for (int64_t i = 0; i < 12; ++i) acc += layer.weights().at2(o, i) * in[i];
    EXPECT_NEAR(out[o], apply(Activation::kRelu, acc), 1e-5f);
  }
}

TEST(Region, SquashesExpectedChannels) {
  RegionConfig cfg;
  cfg.classes = 2;
  cfg.num = 1;
  cfg.anchors = {1.0f, 1.0f};
  RegionLayer layer(cfg, Shape{7, 2, 2});
  Rng rng(13);
  const Tensor in = random_tensor(rng, Shape{7, 2, 2}, -3.0f, 3.0f);
  Tensor out(in.shape());
  layer.forward(in, out);
  const int64_t cell = 4;
  for (int64_t i = 0; i < cell; ++i) {
    // x, y, obj logistic-squashed into (0, 1).
    for (const int64_t ch : {0L, 1L, 4L}) {
      EXPECT_GT(out[ch * cell + i], 0.0f);
      EXPECT_LT(out[ch * cell + i], 1.0f);
    }
    // w, h untouched.
    EXPECT_EQ(out[2 * cell + i], in[2 * cell + i]);
    EXPECT_EQ(out[3 * cell + i], in[3 * cell + i]);
    // class softmax sums to 1.
    EXPECT_NEAR(out[5 * cell + i] + out[6 * cell + i], 1.0f, 1e-5f);
  }
}

TEST(Region, ChannelMismatchThrows) {
  RegionConfig cfg;  // 5 anchors × 25 = 125 channels expected
  EXPECT_THROW(RegionLayer(cfg, Shape{100, 13, 13}), Error);
}

TEST(Network, ForwardChainsShapes) {
  Network net(Shape{3, 16, 16});
  ConvConfig c1;
  c1.filters = 4;
  net.add(std::make_unique<ConvLayer>(c1, net.input_shape()));
  net.add(std::make_unique<MaxPoolLayer>(MaxPoolConfig{2, 2},
                                         net.layers().back()->output_shape()));
  EXPECT_EQ(net.output_shape(), Shape({4, 8, 8}));
  EXPECT_EQ(net.layer_input_shape(1), Shape({4, 16, 16}));

  Rng rng(17);
  const Tensor in = random_tensor(rng, Shape{3, 16, 16});
  const Tensor& out = net.forward(in);
  EXPECT_EQ(out.shape(), Shape({4, 8, 8}));
  EXPECT_GE(net.last_layer_ms(0), 0.0);
}

TEST(WeightsIO, RoundTripThroughStream) {
  Rng rng(19);
  ConvConfig cfg;
  cfg.filters = 3;
  cfg.batch_normalize = true;
  ConvLayer a(cfg, Shape{2, 6, 6});
  a.weights() = random_tensor(rng, a.weights().shape());
  a.biases() = random_tensor(rng, Shape{3});
  for (int64_t c = 0; c < 3; ++c) {
    a.bn_scales()[c] = rng.uniform(0.5f, 1.5f);
    a.bn_mean()[c] = rng.normal();
    a.bn_var()[c] = rng.uniform(0.5f, 1.5f);
  }

  std::stringstream buffer;
  WeightsHeader header;
  header.seen = 12345;
  WeightWriter writer(buffer, header);
  a.save_weights(writer);

  WeightReader reader(buffer);
  EXPECT_EQ(reader.header().seen, 12345u);
  ConvLayer b(cfg, Shape{2, 6, 6});
  b.load_weights(reader);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.biases(), b.biases());
  EXPECT_EQ(a.bn_scales(), b.bn_scales());
}

TEST(WeightsIO, TruncatedStreamThrows) {
  std::stringstream buffer;
  buffer.write("abc", 3);
  EXPECT_THROW(WeightReader reader(buffer), Error);
}

// Every float kernel implementation must agree on the same layer.
class ConvKernelAgreement : public ::testing::TestWithParam<ConvKernel> {};

TEST_P(ConvKernelAgreement, MatchesReferenceKernel) {
  const ConvKernel kernel = GetParam();
  Rng rng(23);
  ConvConfig ref_cfg;
  ref_cfg.filters = 16;  // 16 filters / 3 channels: valid for first16 too
  ref_cfg.size = 3;
  ref_cfg.stride = 2;
  ref_cfg.pad = true;
  ref_cfg.activation = Activation::kLeaky;
  ref_cfg.batch_normalize = true;
  ref_cfg.kernel = ConvKernel::kReference;
  ConvLayer ref(ref_cfg, Shape{3, 13, 13});

  ConvConfig cfg = ref_cfg;
  cfg.kernel = kernel;
  ConvLayer layer(cfg, Shape{3, 13, 13});

  const Tensor w = random_tensor(rng, ref.weights().shape(), -0.4f, 0.4f);
  const Tensor b = random_tensor(rng, Shape{16}, -0.1f, 0.1f);
  ref.weights() = w;
  layer.weights() = w;
  ref.biases() = b;
  layer.biases() = b;
  for (int64_t c = 0; c < 16; ++c) {
    const float s = rng.uniform(0.8f, 1.2f), m = rng.normal(0.0f, 0.1f),
                v = rng.uniform(0.8f, 1.2f);
    ref.bn_scales()[c] = s;
    layer.bn_scales()[c] = s;
    ref.bn_mean()[c] = m;
    layer.bn_mean()[c] = m;
    ref.bn_var()[c] = v;
    layer.bn_var()[c] = v;
  }
  ref.invalidate_cached_quantization();
  layer.invalidate_cached_quantization();

  const Tensor in = random_tensor(rng, Shape{3, 13, 13}, 0.0f, 1.0f);
  Tensor out_ref(ref.output_shape()), out(layer.output_shape());
  ref.forward(in, out_ref);
  layer.forward(in, out);

  // Float kernels match tightly; 8-bit paths within quantization error.
  const bool is_lowp =
      kernel == ConvKernel::kLowp || kernel == ConvKernel::kFusedLowp ||
      kernel == ConvKernel::kFirstLayerAcc32 ||
      kernel == ConvKernel::kFirstLayerAcc16;
  double err = 0.0, mag = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    err += std::abs(out[i] - out_ref[i]);
    mag += std::abs(out_ref[i]);
  }
  EXPECT_LT(err / mag, is_lowp ? 0.08 : 1e-4)
      << "kernel enum " << static_cast<int>(kernel);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ConvKernelAgreement,
                         ::testing::Values(ConvKernel::kFused,
                                           ConvKernel::kLowp,
                                           ConvKernel::kFusedLowp,
                                           ConvKernel::kFirstLayerF32,
                                           ConvKernel::kFirstLayerAcc32,
                                           ConvKernel::kFirstLayerAcc16));

}  // namespace
}  // namespace tincy::nn
