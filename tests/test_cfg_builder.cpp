#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/rng.hpp"
#include "nn/builder.hpp"
#include "nn/cfg.hpp"
#include "nn/describe.hpp"
#include "nn/conv_layer.hpp"
#include "nn/ops.hpp"
#include "nn/weights_io.hpp"
#include "nn/zoo.hpp"

namespace tincy::nn {
namespace {

using zoo::CpuProfile;
using zoo::QuantMode;
using zoo::TinyVariant;

TEST(CfgParser, SectionsAndKeyValues) {
  const auto sections = parse_cfg(
      "# comment\n"
      "[net]\n"
      "width=32\n"
      "height = 24 ; trailing comment\n"
      "\n"
      "[convolutional]\n"
      "filters=7\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "net");
  EXPECT_EQ(sections[0].get_int("width", 0), 32);
  EXPECT_EQ(sections[0].get_int("height", 0), 24);
  EXPECT_EQ(sections[1].get_int("filters", 0), 7);
  EXPECT_EQ(sections[1].get_int("missing", 42), 42);
}

TEST(CfgParser, FloatList) {
  const auto sections = parse_cfg("[region]\nanchors=1.08,1.19, 3.42,4.41\n");
  const auto anchors = sections[0].get_float_list("anchors");
  ASSERT_EQ(anchors.size(), 4u);
  EXPECT_FLOAT_EQ(anchors[0], 1.08f);
  EXPECT_FLOAT_EQ(anchors[3], 4.41f);
}

TEST(CfgParser, Errors) {
  EXPECT_THROW(parse_cfg("key=value\n"), Error);        // before any section
  EXPECT_THROW(parse_cfg("[net\nwidth=1\n"), Error);    // malformed header
  EXPECT_THROW(parse_cfg("[net]\nnot a kv line\n"), Error);
}

TEST(CfgParser, EmptyFileYieldsNoSections) {
  EXPECT_TRUE(parse_cfg("").empty());
  EXPECT_TRUE(parse_cfg("\n\n# only comments\n; and darknet ones\n").empty());
  // The builder refuses an empty document with a clean Error (a network
  // needs at least a [net] section), never a crash.
  EXPECT_THROW(build_network_from_string(""), Error);
}

TEST(CfgParser, DuplicateKeyInSectionIsAnError) {
  try {
    parse_cfg("[net]\nwidth=32\nwidth=64\n");
    FAIL() << "duplicate key accepted";
  } catch (const Error& e) {
    // The message names the offending line, key, and section.
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate key 'width'"), std::string::npos) << what;
    EXPECT_NE(what.find("[net]"), std::string::npos) << what;
  }
  // Same key in *different* sections stays legal.
  const auto ok = parse_cfg("[convolutional]\nfilters=2\n"
                            "[convolutional]\nfilters=4\n");
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_EQ(ok[0].get_int("filters", 0), 2);
  EXPECT_EQ(ok[1].get_int("filters", 0), 4);
}

TEST(CfgParser, TrailingWhitespaceValuesParseCleanly) {
  const auto sections = parse_cfg("[net]\n"
                                  "width=32   \n"
                                  "height =\t24\t\n"
                                  "name= padded value  \n");
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].get_int("width", 0), 32);
  EXPECT_EQ(sections[0].get_int("height", 0), 24);
  EXPECT_EQ(sections[0].get_string("name", ""), "padded value");
  EXPECT_EQ(sections[0].require_int("width"), 32);
}

TEST(CfgParser, RequireHelpersReportMissingKeys) {
  const auto sections = parse_cfg("[offload]\nlibrary=pl.so\n");
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].require_string("library"), "pl.so");
  try {
    sections[0].require_int("channel");
    FAIL() << "missing key accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("missing required key 'channel'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("[offload]"), std::string::npos) << what;
  }
  EXPECT_THROW(sections[0].require_string("absent"), Error);
}

TEST(CfgParser, MalformedNumericValuesThrowCleanly) {
  const auto sections = parse_cfg("[net]\nwidth=abc\nscale=1.2.3\n");
  EXPECT_THROW(sections[0].get_int("width", 0), Error);
  EXPECT_THROW(sections[0].get_double("scale", 0.0), Error);
  EXPECT_THROW(sections[0].require_int("width"), Error);
}

TEST(Builder, OffloadSectionRequiresLibraryAndGeometry) {
  const std::string head =
      "[net]\nwidth=8\nheight=8\nchannels=3\n";
  // No library.
  EXPECT_THROW(build_network_from_string(
                   head + "[offload]\nchannel=4\nheight=8\nwidth=8\n"),
               Error);
  // No geometry.
  EXPECT_THROW(
      build_network_from_string(head + "[offload]\nlibrary=pl.so\n"),
      Error);
}

TEST(Builder, UnknownSectionErrorNamesTheSection) {
  try {
    build_network_from_string("[net]\nwidth=32\nheight=32\nchannels=3\n"
                              "[shortcut]\nfrom=-2\n");
    FAIL() << "unknown section accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shortcut"), std::string::npos)
        << e.what();
  }
}

TEST(Builder, RejectsUnknownSection) {
  EXPECT_THROW(
      build_network_from_string("[net]\nwidth=32\nheight=32\nchannels=3\n"
                                "[shortcut]\nfrom=-2\n"),
      Error);
}

TEST(Builder, RequiresNetFirst) {
  EXPECT_THROW(build_network_from_string("[convolutional]\nfilters=2\n"),
               Error);
}

TEST(Zoo, TinyYoloStructure) {
  const auto net = zoo::build(
      zoo::tiny_yolo_cfg(TinyVariant::kTiny, QuantMode::kFloat));
  // 9 convs + 6 pools + 1 region = 16 layers.
  EXPECT_EQ(net->num_layers(), 16);
  EXPECT_EQ(net->input_shape(), Shape({3, 416, 416}));
  EXPECT_EQ(net->output_shape(), Shape({125, 13, 13}));
}

TEST(Zoo, TincyYoloStructure) {
  const auto net = zoo::build(
      zoo::tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kFloat));
  // First pool dropped: 9 convs + 5 pools + 1 region = 15 layers.
  EXPECT_EQ(net->num_layers(), 15);
  EXPECT_EQ(net->output_shape(), Shape({125, 13, 13}));
  const auto* first = dynamic_cast<const ConvLayer*>(&net->layer(0));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->config().stride, 2);  // modification (d)
}

TEST(Zoo, TableOneTinyYoloExactOps) {
  const auto net = zoo::build(
      zoo::tiny_yolo_cfg(TinyVariant::kTiny, QuantMode::kFloat));
  const auto rows = ops_rows(*net);
  // The paper's Table I, layer by layer (region layer excluded there).
  const int64_t expected[] = {
      149520384,  173056,     398721024, 43264,     398721024,
      10816,      398721024,  2704,      398721024, 676,
      398721024,  676,        1594884096, 3189768192, 43264000};
  ASSERT_GE(rows.size(), 15u);
  for (size_t i = 0; i < 15; ++i)
    EXPECT_EQ(rows[i].ops, expected[i]) << "layer " << i + 1;
  EXPECT_EQ(total_ops(*net), 6971272984);  // Σ of Table I
}

TEST(Zoo, TableOneTincyYoloExactOps) {
  const auto net = zoo::build(
      zoo::tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kFloat));
  const auto rows = ops_rows(*net);
  const int64_t expected[] = {
      37380096,  797442048, 43264,     797442048, 10816,
      398721024, 2704,      398721024, 676,       398721024,
      676,       797442048, 797442048, 21632000};
  ASSERT_GE(rows.size(), 14u);
  for (size_t i = 0; i < 14; ++i)
    EXPECT_EQ(rows[i].ops, expected[i]) << "layer " << i + 1;
  EXPECT_EQ(total_ops(*net), 4445001496);  // Σ of Table I
}

TEST(Zoo, TableTwoTincyYoloWorkloads) {
  // Table II: Tincy YOLO = 4385.9 M reduced [W1A3] + 59.0 M 8-bit.
  const auto net = zoo::build(zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kW1A3, 416, CpuProfile::kOptimized));
  const auto w = dot_product_workload(*net);
  EXPECT_EQ(w.reduced_ops, 4385931264);   // 4385.9 M
  EXPECT_EQ(w.eight_bit_ops, 59012096);   // 59.0 M
  EXPECT_EQ(w.float_ops, 0);
  EXPECT_EQ(w.total(), 4444943360);       // 4444.9 M
  EXPECT_EQ(w.reduced_precision.name(), "W1A3");
}

TEST(Zoo, TableTwoCnv6Workloads) {
  // Table II: CNV-6 = 115.8 M reduced [W1A1] + 3.1 M 8-bit.
  const auto net = zoo::build(zoo::cnv6_cfg());
  const auto w = dot_product_workload(*net);
  EXPECT_EQ(w.eight_bit_ops, 3110400);    // 3.1 M (first conv)
  EXPECT_EQ(w.reduced_ops, 115812352);    // 115.8 M
  EXPECT_EQ(w.reduced_precision.name(), "W1A1");
}

TEST(Zoo, TableTwoMlp4Workloads) {
  // Table II reports 6.0 M; the exact 784/1024³/10 ladder gives 5.82 M
  // (the delta is discussed in EXPERIMENTS.md).
  const auto net = zoo::build(zoo::mlp4_cfg());
  const auto w = dot_product_workload(*net);
  EXPECT_EQ(w.reduced_ops, 5820416);
  EXPECT_EQ(w.eight_bit_ops, 0);
  EXPECT_EQ(w.reduced_precision.name(), "W1A1");
}

TEST(Zoo, VariantAccuracyLabels) {
  EXPECT_EQ(zoo::variant_name(TinyVariant::kTiny), "Tiny YOLO");
  EXPECT_EQ(zoo::variant_name(TinyVariant::kTincy), "Tincy YOLO");
}

TEST(Zoo, QuantizedVariantMarksHiddenLayers) {
  const auto net = zoo::build(zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kW1A3, 416, CpuProfile::kOptimized));
  int quantized = 0, eight_bit = 0;
  for (const auto& row : ops_rows(*net)) {
    if (row.precision.is_reduced()) ++quantized;
    if (row.precision.is_8bit()) ++eight_bit;
  }
  EXPECT_EQ(quantized, 7);  // the 7 hidden convs
  EXPECT_EQ(eight_bit, 2);  // input + output convs
}

TEST(Zoo, SmallInputBuildsAndRuns) {
  Rng rng(3);
  const auto net = zoo::build(zoo::tiny_yolo_cfg(
      TinyVariant::kTincy, QuantMode::kFloat, 64, CpuProfile::kFused));
  zoo::randomize(*net, rng);
  Tensor in(Shape{3, 64, 64});
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = rng.uniform(0.0f, 1.0f);
  const Tensor& out = net->forward(in);
  EXPECT_EQ(out.shape(), Shape({125, 2, 2}));
  // Region output: objectness channels are probabilities.
  for (int64_t i = 0; i < out.numel(); ++i) EXPECT_FALSE(std::isnan(out[i]));
}

TEST(Zoo, WholeNetworkWeightsRoundTripThroughFile) {
  const auto cfg = zoo::tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kFloat,
                                      64, CpuProfile::kFused);
  const auto a = zoo::build(cfg);
  Rng rng(71);
  zoo::randomize(*a, rng);
  const auto path =
      (std::filesystem::temp_directory_path() / "tincy_weights_test.bin")
          .string();
  save_weights(*a, path, /*seen=*/777);

  const auto b = zoo::build(cfg);
  load_weights(*b, path);
  std::filesystem::remove(path);

  // Identical parameters => identical inference.
  Tensor in(Shape{3, 64, 64});
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = rng.uniform(0.0f, 1.0f);
  const Tensor& out_a = a->forward(in);
  const Tensor& out_b = b->forward(in);
  for (int64_t i = 0; i < out_a.numel(); ++i)
    ASSERT_EQ(out_a[i], out_b[i]) << i;
}

TEST(Zoo, QuantizedForwardDeterministic) {
  const auto cfg = zoo::tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kW1A3,
                                      64, CpuProfile::kOptimized);
  const auto a = zoo::build(cfg);
  const auto b = zoo::build(cfg);
  Rng ra(9), rb(9);
  zoo::randomize(*a, ra);
  zoo::randomize(*b, rb);
  Rng in_rng(10);
  Tensor in(Shape{3, 64, 64});
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = in_rng.uniform(0.0f, 1.0f);
  const Tensor& out_a = a->forward(in);
  const Tensor& out_b = b->forward(in);
  for (int64_t i = 0; i < out_a.numel(); ++i) ASSERT_EQ(out_a[i], out_b[i]);
}

TEST(Describe, CfgRoundTripPreservesStructureAndOps) {
  for (const auto variant : {TinyVariant::kTiny, TinyVariant::kTincy}) {
    for (const auto quant : {QuantMode::kFloat, QuantMode::kW1A3}) {
      const auto original = zoo::build(zoo::tiny_yolo_cfg(
          variant, quant, 416, CpuProfile::kOptimized));
      const auto rebuilt = build_network_from_string(to_cfg(*original));
      ASSERT_EQ(rebuilt->num_layers(), original->num_layers());
      EXPECT_EQ(rebuilt->output_shape(), original->output_shape());
      EXPECT_EQ(total_ops(*rebuilt), total_ops(*original));
      const auto a = ops_rows(*original), b = ops_rows(*rebuilt);
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ops, b[i].ops) << i;
        EXPECT_EQ(a[i].precision.name(), b[i].precision.name()) << i;
      }
    }
  }
  // MLP/CNV round-trip too (connected layers, bipolar-free unsigned A1).
  for (const auto& cfg_text : {zoo::mlp4_cfg(), zoo::cnv6_cfg()}) {
    const auto original = build_network_from_string(cfg_text);
    const auto rebuilt = build_network_from_string(to_cfg(*original));
    EXPECT_EQ(total_ops(*rebuilt), total_ops(*original));
  }
}

TEST(Describe, SummaryMentionsEveryLayer) {
  const auto net = zoo::build(
      zoo::tiny_yolo_cfg(TinyVariant::kTincy, QuantMode::kFloat));
  const std::string s = summary(*net);
  EXPECT_NE(s.find("convolutional"), std::string::npos);
  EXPECT_NE(s.find("maxpool"), std::string::npos);
  EXPECT_NE(s.find("region"), std::string::npos);
  EXPECT_NE(s.find("4,445,001,496"), std::string::npos);
}

TEST(Zoo, RandomizeIsDeterministic) {
  const auto cfg = zoo::tiny_yolo_cfg(TinyVariant::kTiny, QuantMode::kFloat,
                                      64, CpuProfile::kReference);
  const auto a = zoo::build(cfg);
  const auto b = zoo::build(cfg);
  Rng ra(5), rb(5);
  zoo::randomize(*a, ra);
  zoo::randomize(*b, rb);
  const auto* ca = dynamic_cast<const ConvLayer*>(&a->layer(0));
  const auto* cb = dynamic_cast<const ConvLayer*>(&b->layer(0));
  ASSERT_NE(ca, nullptr);
  EXPECT_EQ(ca->weights(), cb->weights());
}

}  // namespace
}  // namespace tincy::nn
