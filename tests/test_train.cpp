#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "data/synthvoc.hpp"
#include "nn/builder.hpp"
#include "nn/conv_layer.hpp"
#include "train/loss.hpp"
#include "train/model.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace tincy::train {
namespace {

Tensor random_tensor(Rng& rng, Shape shape, float lo = -1.0f, float hi = 1.0f) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
  return t;
}

TEST(TrainConv, ForwardMatchesInferenceConv) {
  Rng rng(1);
  TrainConvConfig cfg;
  cfg.filters = 4;
  cfg.activation = nn::Activation::kLeaky;
  TrainConvLayer layer(cfg, Shape{3, 8, 8}, rng);

  nn::ConvConfig icfg;
  icfg.filters = 4;
  icfg.activation = nn::Activation::kLeaky;
  icfg.kernel = nn::ConvKernel::kReference;
  nn::ConvLayer ref(icfg, Shape{3, 8, 8});
  ref.weights() = layer.weights();
  ref.biases() = layer.biases();

  Rng in_rng(2);
  const Tensor in = random_tensor(in_rng, Shape{3, 8, 8});
  const Tensor a = layer.forward(in, /*training=*/false);
  Tensor b(ref.output_shape());
  ref.forward(in, b);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4f);
}

/// Numeric gradient check of the conv layer through a scalar loss
/// L = Σ out ⊙ R with random R.
TEST(TrainConv, GradientMatchesFiniteDifference) {
  Rng rng(3);
  TrainConvConfig cfg;
  cfg.filters = 2;
  cfg.activation = nn::Activation::kLeaky;  // smooth except at 0
  TrainConvLayer layer(cfg, Shape{2, 5, 5}, rng);
  Rng in_rng(4);
  Tensor in = random_tensor(in_rng, Shape{2, 5, 5});
  const Tensor r = random_tensor(in_rng, Shape{2, 5, 5});  // dL/dout

  layer.zero_grad();
  layer.forward(in, /*training=*/true);
  const Tensor grad_in = layer.backward(in, r);

  const auto loss = [&](const Tensor& x) {
    const Tensor out = layer.forward(x, /*training=*/false);
    double l = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i)
      l += static_cast<double>(out[i]) * r[i];
    return l;
  };
  const float h = 1e-3f;
  Rng pick(5);
  for (int rep = 0; rep < 30; ++rep) {
    const int64_t i = pick.uniform_int(0, in.numel() - 1);
    Tensor plus = in, minus = in;
    plus[i] += h;
    minus[i] -= h;
    const double fd = (loss(plus) - loss(minus)) / (2.0 * h);
    EXPECT_NEAR(grad_in[i], fd, 5e-2 * (std::fabs(fd) + 1.0)) << "input " << i;
  }
}

TEST(TrainConv, WeightGradientMatchesFiniteDifference) {
  Rng rng(6);
  TrainConvConfig cfg;
  cfg.filters = 2;
  cfg.activation = nn::Activation::kLinear;
  TrainConvLayer layer(cfg, Shape{1, 4, 4}, rng);
  Rng in_rng(7);
  const Tensor in = random_tensor(in_rng, Shape{1, 4, 4});
  const Tensor r = random_tensor(in_rng, Shape{2, 4, 4});

  layer.zero_grad();
  layer.forward(in, true);
  layer.backward(in, r);
  auto params = layer.params();
  Tensor& w = *params[0].value;
  Tensor& gw = *params[0].grad;

  const auto loss = [&] {
    const Tensor out = layer.forward(in, false);
    double l = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i)
      l += static_cast<double>(out[i]) * r[i];
    return l;
  };
  const float h = 1e-3f;
  for (const int64_t i : {0L, 3L, 9L, 17L}) {
    const float orig = w[i];
    w[i] = orig + h;
    const double lp = loss();
    w[i] = orig - h;
    const double lm = loss();
    w[i] = orig;
    EXPECT_NEAR(gw[i], (lp - lm) / (2.0 * h), 1e-2) << "weight " << i;
  }
}

TEST(TrainMaxPool, BackwardRoutesToArgmax) {
  TrainMaxPoolLayer pool(2, 2, Shape{1, 4, 4});
  Tensor in(Shape{1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) in[i] = static_cast<float>(i);
  pool.forward(in, true);
  Tensor gout(Shape{1, 2, 2});
  gout.fill(1.0f);
  const Tensor gin = pool.backward(in, gout);
  // Winners are the bottom-right of each 2x2 block: indices 5, 7, 13, 15.
  for (int64_t i = 0; i < 16; ++i) {
    const bool winner = i == 5 || i == 7 || i == 13 || i == 15;
    EXPECT_EQ(gin[i], winner ? 1.0f : 0.0f) << i;
  }
}

TEST(RegionLoss, GradientMatchesFiniteDifference) {
  RegionLossConfig cfg;
  cfg.classes = 2;
  cfg.num = 2;
  cfg.anchors = {1.0f, 1.0f, 2.0f, 2.0f};
  Rng rng(8);
  Tensor raw = random_tensor(rng, Shape{2 * 7, 3, 3}, -1.0f, 1.0f);
  std::vector<detect::GroundTruth> truth{
      {{0.4f, 0.6f, 0.3f, 0.3f}, 1},
      {{0.8f, 0.2f, 0.2f, 0.25f}, 0},
  };
  const RegionLossResult res = region_loss(raw, truth, cfg);
  EXPECT_EQ(res.assigned, 2);

  const float h = 1e-3f;
  Rng pick(9);
  for (int rep = 0; rep < 40; ++rep) {
    const int64_t i = pick.uniform_int(0, raw.numel() - 1);
    Tensor plus = raw, minus = raw;
    plus[i] += h;
    minus[i] -= h;
    const double fd = (region_loss(plus, truth, cfg).loss -
                       region_loss(minus, truth, cfg).loss) /
                      (2.0 * h);
    EXPECT_NEAR(res.grad[i], fd, 2e-2 * (std::fabs(fd) + 1.0)) << i;
  }
}

TEST(RegionLoss, PerfectPredictionHasSmallLoss) {
  RegionLossConfig cfg;
  cfg.classes = 2;
  cfg.num = 1;
  cfg.anchors = {2.0f, 2.0f};
  Tensor raw(Shape{7, 4, 4});
  // Object centered in cell (1,1), matching the anchor exactly.
  std::vector<detect::GroundTruth> truth{{{0.375f, 0.375f, 0.5f, 0.5f}, 0}};
  const int64_t cell = 16, i = 1 * 4 + 1;
  raw.fill(-8.0f);  // everything squashes to ~0 (incl. objectness)
  raw[0 * cell + i] = 0.0f;   // σ = 0.5 = target offset
  raw[1 * cell + i] = 0.0f;
  raw[2 * cell + i] = 0.0f;   // exp(0)·2/4 = 0.5 = target width
  raw[3 * cell + i] = 0.0f;
  raw[4 * cell + i] = 8.0f;   // objectness ~1
  raw[5 * cell + i] = 8.0f;   // class 0 wins softmax
  raw[6 * cell + i] = -8.0f;
  const RegionLossResult res = region_loss(raw, truth, cfg);
  EXPECT_LT(res.loss, 0.05);
  EXPECT_GT(res.avg_iou, 0.95);
}

TEST(Sgd, MomentumAndClamp) {
  Tensor w(Shape{2}), g(Shape{2}), m(Shape{2});
  w[0] = 0.95f;
  g[0] = -10.0f;  // pushes w above 1
  w[1] = 0.0f;
  g[1] = 1.0f;
  Sgd sgd({.learning_rate = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  std::vector<TrainLayer::Param> params{{&w, &g, &m, true}};
  sgd.step(params);
  EXPECT_FLOAT_EQ(w[0], 1.0f);   // clamped master weight
  EXPECT_FLOAT_EQ(w[1], -0.1f);  // plain step
}

TEST(Detector, VariantsHaveExpectedStructure) {
  Rng rng(10);
  DetectorSpec spec;
  Model tiny = make_detector(DetectorVariant::kTinyS, spec, rng);
  EXPECT_EQ(tiny.output_shape(),
            Shape({3 * (5 + 3), spec.input_size / 8, spec.input_size / 8}));
  Model tincy = make_detector(DetectorVariant::kTincyS, spec, rng);
  EXPECT_EQ(tincy.output_shape(), tiny.output_shape());
  // Tincy drops the first pool: one fewer layer.
  EXPECT_EQ(tincy.num_layers(), tiny.num_layers() - 1);
}

TEST(Detector, QuantFlagPropagates) {
  Rng rng(11);
  DetectorSpec spec;
  Model m = make_detector(DetectorVariant::kA, spec, rng);
  int binary = 0;
  for (int64_t i = 0; i < m.num_layers(); ++i)
    if (const auto* conv = dynamic_cast<const TrainConvLayer*>(&m.layer(i)))
      binary += conv->config().binary_weights;
  EXPECT_EQ(binary, 4);  // the four hidden convs
}

TEST(Training, ShortRunReducesLoss) {
  Rng rng(12);
  DetectorSpec spec;
  spec.input_size = 32;
  Model model = make_detector(DetectorVariant::kTinyS, spec, rng);
  const data::SynthVoc dataset(
      {.image_size = 32, .num_classes = 3, .max_objects = 1}, 99);

  // Loss on fresh samples before and after a short training run.
  const auto eval_loss = [&] {
    double total = 0.0;
    for (int64_t i = 0; i < 8; ++i) {
      const auto s = dataset.sample(5000 + i);
      const Tensor& out = model.forward(s.image, false);
      total += region_loss(out, s.objects, spec.region).loss;
    }
    return total / 8.0;
  };
  const double before = eval_loss();
  TrainConfig cfg;
  cfg.steps = 60;
  cfg.batch = 2;
  cfg.learning_rate = 0.005f;
  train_detector(model, spec, dataset, cfg);
  const double after = eval_loss();
  EXPECT_LT(after, before * 0.9) << before << " -> " << after;
}

TEST(Training, Deterministic) {
  // Same seed + same data stream => identical trained weights.
  const data::SynthVoc dataset(
      {.image_size = 32, .num_classes = 3, .max_objects = 1}, 3);
  const auto run = [&] {
    Rng rng(5);
    DetectorSpec spec;
    spec.input_size = 32;
    Model model = make_detector(DetectorVariant::kTinyS, spec, rng);
    TrainConfig cfg;
    cfg.steps = 20;
    cfg.batch = 2;
    train_detector(model, spec, dataset, cfg);
    const auto* conv = dynamic_cast<const TrainConvLayer*>(&model.layer(0));
    return conv->weights();
  };
  EXPECT_EQ(run(), run());
}

TEST(Training, SoftmaxCrossEntropyGradient) {
  Tensor logits(Shape{5});
  Rng rng(6);
  for (int64_t i = 0; i < 5; ++i) logits[i] = rng.normal();
  const auto res = softmax_cross_entropy(logits, 2);
  // Gradient sums to zero (softmax simplex) and matches finite differences.
  float sum = 0.0f;
  for (int64_t i = 0; i < 5; ++i) sum += res.grad[i];
  EXPECT_NEAR(sum, 0.0f, 1e-5f);
  const float h = 1e-3f;
  for (int64_t i = 0; i < 5; ++i) {
    Tensor plus = logits, minus = logits;
    plus[i] += h;
    minus[i] -= h;
    const double fd = (softmax_cross_entropy(plus, 2).loss -
                       softmax_cross_entropy(minus, 2).loss) /
                      (2.0 * h);
    EXPECT_NEAR(res.grad[i], fd, 1e-3) << i;
  }
}

TEST(Training, BipolarSteGatesGradient) {
  Rng rng(7);
  TrainConvConfig cfg;
  cfg.filters = 1;
  cfg.size = 1;
  cfg.pad = false;
  cfg.activation = nn::Activation::kLinear;
  cfg.act_bits = 1;
  cfg.bipolar = true;
  TrainConvLayer layer(cfg, Shape{1, 1, 1}, rng);
  // Force weight and bias so pre-activation is controllable: pre = w·x.
  auto params = layer.params();
  (*params[0].value)[0] = 1.0f;  // weight
  (*params[1].value)[0] = 0.0f;  // bias

  Tensor grad_out(Shape{1, 1, 1});
  grad_out[0] = 1.0f;
  // |pre| <= 1: gradient passes.
  Tensor in_small(Shape{1, 1, 1});
  in_small[0] = 0.5f;
  layer.forward(in_small, true);
  EXPECT_NE(layer.backward(in_small, grad_out)[0], 0.0f);
  // |pre| > 1: hard-tanh STE blocks it.
  Tensor in_large(Shape{1, 1, 1});
  in_large[0] = 3.0f;
  layer.forward(in_large, true);
  EXPECT_EQ(layer.backward(in_large, grad_out)[0], 0.0f);
}

TEST(WarmStart, CopiesMatchingConvLayers) {
  Rng rng_a(20), rng_b(21);
  DetectorSpec spec;
  Model source = make_detector(DetectorVariant::kTinyS, spec, rng_a);
  Model target = make_detector(DetectorVariant::kA, spec, rng_b);
  // Same topology modulo activation/quantization: every conv matches.
  const int64_t copied = target.warm_start_from(source);
  EXPECT_EQ(copied, 6);
  const auto* src0 = dynamic_cast<const TrainConvLayer*>(&source.layer(0));
  const auto* dst0 = dynamic_cast<const TrainConvLayer*>(&target.layer(0));
  EXPECT_EQ(src0->weights(), dst0->weights());
}

TEST(WarmStart, SkipsMismatchedShapes) {
  Rng rng_a(22), rng_b(23);
  DetectorSpec spec;
  Model source = make_detector(DetectorVariant::kTinyS, spec, rng_a);
  Model target = make_detector(DetectorVariant::kABC, spec, rng_b);
  // (b)/(c) change channel counts: only the first conv matches.
  EXPECT_EQ(target.warm_start_from(source), 1);
}

TEST(ExportTo, CopiesWeightsIntoInferenceNetwork) {
  Rng rng(13);
  TrainConvConfig tc;
  tc.filters = 4;
  Model model(Shape{3, 8, 8});
  model.add(std::make_unique<TrainConvLayer>(tc, Shape{3, 8, 8}, rng));

  auto net = nn::build_network_from_string(
      "[net]\nwidth=8\nheight=8\nchannels=3\n"
      "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\n"
      "activation=leaky\n");
  model.export_to(*net);
  const auto* conv = dynamic_cast<const nn::ConvLayer*>(&net->layer(0));
  ASSERT_NE(conv, nullptr);
  const auto* tconv = dynamic_cast<const TrainConvLayer*>(&model.layer(0));
  EXPECT_EQ(conv->weights(), tconv->weights());
  EXPECT_EQ(conv->biases(), tconv->biases());
}

}  // namespace
}  // namespace tincy::train
