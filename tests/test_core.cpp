#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/shape.hpp"
#include "core/string_utils.hpp"
#include "core/tensor.hpp"

namespace tincy {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{3, 416, 416};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 3 * 416 * 416);
  EXPECT_EQ(s.channels(), 3);
  EXPECT_EQ(s.height(), 416);
  EXPECT_EQ(s.width(), 416);
  EXPECT_EQ(s.to_string(), "(3, 416, 416)");
}

TEST(Shape, NegativeAxis) {
  const Shape s{2, 5, 7};
  EXPECT_EQ(s.dim(-1), 7);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
}

TEST(Shape, EmptyShapeNumelIsOne) { EXPECT_EQ(Shape{}.numel(), 1); }

TEST(Shape, OutOfRangeAxisThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
  EXPECT_THROW(s.dim(-3), Error);
}

TEST(Shape, TooManyDimsThrows) {
  EXPECT_THROW(Shape({1, 2, 3, 4, 5}), Error);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ChwIndexing) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 5.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 5.0f);
  EXPECT_THROW(t.at(2, 0, 0), Error);
  EXPECT_THROW(t.at(0, 3, 0), Error);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{2, 6});
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.shape(), Shape({3, 4}));
  EXPECT_THROW(t.reshape(Shape{5}), Error);
}

TEST(Tensor, RowColIndexing) {
  Tensor t(Shape{2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const float f = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(f, -2.0f);
    EXPECT_LT(f, 3.0f);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
}

TEST(StringUtils, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtils, ParseKeyValue) {
  std::string k, v;
  EXPECT_TRUE(parse_key_value(" filters = 16 ", k, v));
  EXPECT_EQ(k, "filters");
  EXPECT_EQ(v, "16");
  EXPECT_FALSE(parse_key_value("no equals here", k, v));
}

TEST(StringUtils, ParseIntStrict) {
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("4x"), Error);
  EXPECT_THROW(parse_int(""), Error);
}

TEST(StringUtils, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_THROW(parse_double("abc"), Error);
}

TEST(StringUtils, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(6971272984), "6,971,272,984");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace tincy
