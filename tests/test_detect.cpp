#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "detect/box.hpp"
#include "detect/decode.hpp"
#include "detect/map.hpp"
#include "detect/nms.hpp"

namespace tincy::detect {
namespace {

TEST(Box, IntersectionAndIou) {
  const Box a{0.5f, 0.5f, 0.4f, 0.4f};
  EXPECT_NEAR(iou(a, a), 1.0f, 1e-5f);
  const Box disjoint{0.1f, 0.1f, 0.1f, 0.1f};
  EXPECT_FLOAT_EQ(intersection(a, disjoint), 0.0f);
  EXPECT_FLOAT_EQ(iou(a, disjoint), 0.0f);
  // Half-overlapping boxes of equal size: inter = 0.5·A, union = 1.5·A.
  const Box shifted{0.7f, 0.5f, 0.4f, 0.4f};
  EXPECT_NEAR(iou(a, shifted), 0.5f / 1.5f, 1e-5f);
}

TEST(Box, IouProperties) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Box a{rng.uniform(0.2f, 0.8f), rng.uniform(0.2f, 0.8f),
                rng.uniform(0.05f, 0.4f), rng.uniform(0.05f, 0.4f)};
    const Box b{rng.uniform(0.2f, 0.8f), rng.uniform(0.2f, 0.8f),
                rng.uniform(0.05f, 0.4f), rng.uniform(0.05f, 0.4f)};
    const float v = iou(a, b);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f + 1e-6f);
    EXPECT_FLOAT_EQ(v, iou(b, a));  // symmetry
    EXPECT_LE(intersection(a, b), std::min(a.area(), b.area()) + 1e-6f);
  }
}

TEST(Box, DegenerateBoxesHaveZeroIou) {
  const Box zero{0.5f, 0.5f, 0.0f, 0.0f};
  EXPECT_FLOAT_EQ(iou(zero, zero), 0.0f);
}

TEST(Nms, SuppressesSameClassOverlaps) {
  std::vector<Detection> dets;
  dets.push_back({{0.5f, 0.5f, 0.4f, 0.4f}, 0, 0.9f, 1.0f});
  dets.push_back({{0.52f, 0.5f, 0.4f, 0.4f}, 0, 0.8f, 1.0f});  // overlap, worse
  dets.push_back({{0.52f, 0.5f, 0.4f, 0.4f}, 1, 0.7f, 1.0f});  // other class
  dets.push_back({{0.1f, 0.1f, 0.1f, 0.1f}, 0, 0.6f, 1.0f});   // far away
  const auto kept = nms(dets, 0.45f);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_FLOAT_EQ(kept[0].objectness, 0.9f);  // sorted by score
  EXPECT_EQ(kept[1].class_id, 1);
  EXPECT_FLOAT_EQ(kept[2].objectness, 0.6f);
}

TEST(Nms, EmptyAndSingle) {
  EXPECT_TRUE(nms({}).empty());
  const auto kept = nms({{{0.5f, 0.5f, 0.2f, 0.2f}, 0, 0.5f, 1.0f}});
  EXPECT_EQ(kept.size(), 1u);
}

TEST(Nms, OutputSortedDescending) {
  Rng rng(2);
  std::vector<Detection> dets;
  for (int i = 0; i < 50; ++i)
    dets.push_back({{rng.uniform(0.1f, 0.9f), rng.uniform(0.1f, 0.9f), 0.05f,
                     0.05f},
                    static_cast<int>(rng.uniform_int(0, 2)),
                    rng.uniform(0.0f, 1.0f), 1.0f});
  const auto kept = nms(dets, 0.45f);
  for (size_t i = 1; i < kept.size(); ++i)
    EXPECT_GE(kept[i - 1].score(), kept[i].score());
}

TEST(Decode, RecoversPlantedBox) {
  // Plant one confident detection at cell (1, 2) of a 4x4 grid.
  nn::RegionConfig cfg;
  cfg.classes = 3;
  cfg.num = 2;
  cfg.anchors = {1.0f, 1.0f, 2.0f, 2.0f};
  const int64_t per_anchor = 4 + 1 + 3;
  Tensor map(Shape{cfg.num * per_anchor, 4, 4});
  // Background objectness ~0 everywhere (map already squashed form):
  // decode_region consumes RegionLayer output, so write squashed values.
  map.fill(0.0f);
  const int64_t cell = 16;
  const int64_t i = 1 * 4 + 2;  // row 1, col 2
  const int64_t a = 1;          // anchor 1 (prior 2x2 cells)
  float* base = map.data() + a * per_anchor * cell;
  base[0 * cell + i] = 0.5f;   // σ(tx): centered in the cell
  base[1 * cell + i] = 0.5f;
  base[2 * cell + i] = 0.0f;   // tw = 0 → w = anchor/W
  base[3 * cell + i] = 0.0f;
  base[4 * cell + i] = 0.9f;   // objectness
  base[(5 + 2) * cell + i] = 1.0f;  // class 2

  const auto dets = decode_region(map, cfg, 0.5f);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].class_id, 2);
  EXPECT_NEAR(dets[0].box.x, 2.5f / 4.0f, 1e-5f);
  EXPECT_NEAR(dets[0].box.y, 1.5f / 4.0f, 1e-5f);
  EXPECT_NEAR(dets[0].box.w, 2.0f / 4.0f, 1e-5f);
  EXPECT_NEAR(dets[0].box.h, 2.0f / 4.0f, 1e-5f);
  EXPECT_FLOAT_EQ(dets[0].objectness, 0.9f);
}

TEST(Decode, ThresholdFiltersLowObjectness) {
  nn::RegionConfig cfg;
  cfg.classes = 2;
  cfg.num = 1;
  cfg.anchors = {1.0f, 1.0f};
  Tensor map(Shape{7, 2, 2});
  map.fill(0.1f);
  EXPECT_TRUE(decode_region(map, cfg, 0.5f).empty());
}

// --- mAP ---

ImageEval perfect_image(int classes) {
  ImageEval img;
  for (int c = 0; c < classes; ++c) {
    const Box box{0.2f + 0.2f * static_cast<float>(c), 0.5f, 0.15f, 0.15f};
    img.ground_truth.push_back({box, c});
    img.detections.push_back({box, c, 0.9f, 1.0f});
  }
  return img;
}

TEST(Map, PerfectDetectionsScoreOne) {
  const std::vector<ImageEval> images{perfect_image(3), perfect_image(3)};
  EXPECT_NEAR(mean_average_precision(images, 3), 1.0, 1e-9);
  EXPECT_NEAR(mean_average_precision(images, 3, 0.5f, ApStyle::kAllPoint),
              1.0, 1e-9);
}

TEST(Map, NoDetectionsScoreZero) {
  ImageEval img;
  img.ground_truth.push_back({{0.5f, 0.5f, 0.2f, 0.2f}, 0});
  EXPECT_DOUBLE_EQ(mean_average_precision({img}, 1), 0.0);
}

TEST(Map, MisplacedDetectionIsFalsePositive) {
  ImageEval img;
  img.ground_truth.push_back({{0.2f, 0.2f, 0.2f, 0.2f}, 0});
  img.detections.push_back({{0.8f, 0.8f, 0.2f, 0.2f}, 0, 0.9f, 1.0f});
  EXPECT_DOUBLE_EQ(average_precision({img}, 0), 0.0);
}

TEST(Map, DuplicateDetectionsPenalized) {
  // VOC protocol: the second detection of an already-claimed object is a
  // false positive, so AP < 1 even though the object is found.
  ImageEval img;
  const Box box{0.5f, 0.5f, 0.3f, 0.3f};
  img.ground_truth.push_back({box, 0});
  img.detections.push_back({box, 0, 0.9f, 1.0f});
  img.detections.push_back({box, 0, 0.8f, 1.0f});
  const double ap = average_precision({img}, 0, 0.5f, ApStyle::kAllPoint);
  EXPECT_NEAR(ap, 1.0, 1e-9);  // recall reaches 1 at precision 1 first
  // With reversed scores the duplicate ranks first → precision drops.
  ImageEval img2;
  img2.ground_truth.push_back({box, 0});
  img2.detections.push_back({{0.9f, 0.9f, 0.05f, 0.05f}, 0, 0.95f, 1.0f});
  img2.detections.push_back({box, 0, 0.8f, 1.0f});
  const double ap2 = average_precision({img2}, 0, 0.5f, ApStyle::kAllPoint);
  EXPECT_LT(ap2, 1.0);
  EXPECT_NEAR(ap2, 0.5, 1e-9);  // TP at rank 2: precision 1/2 at recall 1
}

TEST(Map, ElevenPointVsAllPointOrdering) {
  // Construct a half-recall case: 2 objects, 1 found.
  ImageEval img;
  img.ground_truth.push_back({{0.3f, 0.3f, 0.2f, 0.2f}, 0});
  img.ground_truth.push_back({{0.7f, 0.7f, 0.2f, 0.2f}, 0});
  img.detections.push_back({{0.3f, 0.3f, 0.2f, 0.2f}, 0, 0.9f, 1.0f});
  const double ap11 = average_precision({img}, 0);
  const double ap_all =
      average_precision({img}, 0, 0.5f, ApStyle::kAllPoint);
  // Recall 0.5 at precision 1: 11-point = 6/11, all-point = 0.5.
  EXPECT_NEAR(ap11, 6.0 / 11.0, 1e-9);
  EXPECT_NEAR(ap_all, 0.5, 1e-9);
}

TEST(Map, ClassesWithoutGroundTruthSkipped) {
  const std::vector<ImageEval> images{perfect_image(2)};
  // num_classes=5 but only classes 0..1 appear: mAP over present classes.
  EXPECT_NEAR(mean_average_precision(images, 5), 1.0, 1e-9);
}

TEST(Map, IouThresholdMatters) {
  ImageEval img;
  img.ground_truth.push_back({{0.5f, 0.5f, 0.4f, 0.4f}, 0});
  // Slightly shifted detection: IoU ≈ 0.63.
  img.detections.push_back({{0.55f, 0.5f, 0.4f, 0.4f}, 0, 0.9f, 1.0f});
  EXPECT_GT(average_precision({img}, 0, 0.5f), 0.9);
  EXPECT_DOUBLE_EQ(average_precision({img}, 0, 0.9f), 0.0);
}

}  // namespace
}  // namespace tincy::detect
