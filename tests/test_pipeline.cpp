#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "pipeline/demo.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/virtual_time.hpp"

namespace tincy::pipeline {
namespace {

video::Frame make_frame(int64_t seq) {
  video::Frame f;
  f.sequence = seq;
  return f;
}

class ThreadedPipeline : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedPipeline, PreservesFrameOrder) {
  const int workers = GetParam();
  std::atomic<int64_t> next{0};
  video::OrderCheckingSink sink;
  std::vector<Stage> stages;
  for (int s = 0; s < 5; ++s)
    stages.push_back({"s" + std::to_string(s), [](video::Frame&) {}});

  Pipeline p(
      stages, [&next] { return make_frame(next++); },
      [&sink](const video::Frame& f) { sink.push(f); }, workers);
  p.run(100);
  EXPECT_EQ(sink.frames_received(), 100);
  EXPECT_TRUE(sink.in_order());
  const auto seqs = sink.sequences();
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(seqs[static_cast<size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ThreadedPipeline,
                         ::testing::Values(1, 2, 4, 8));

TEST(Pipeline, StagesTransformFramesInOrder) {
  // Each stage appends its id into the frame's features tensor slot;
  // the sink must observe all stages applied exactly once, in order.
  std::atomic<int64_t> next{0};
  std::vector<Stage> stages;
  for (int s = 0; s < 4; ++s) {
    stages.push_back({"s" + std::to_string(s), [s](video::Frame& f) {
                        Tensor t(Shape{f.features.numel() + 1});
                        for (int64_t i = 0; i < f.features.numel(); ++i)
                          t[i] = f.features[i];
                        t[f.features.numel()] = static_cast<float>(s);
                        f.features = std::move(t);
                      }});
  }
  std::vector<std::vector<float>> seen;
  std::mutex m;
  Pipeline p(
      stages, [&next] { return make_frame(next++); },
      [&](const video::Frame& f) {
        std::lock_guard lock(m);
        seen.emplace_back(f.features.data(),
                          f.features.data() + f.features.numel());
      },
      3);
  p.run(20);
  ASSERT_EQ(seen.size(), 20u);
  for (const auto& trace : seen) {
    ASSERT_EQ(trace.size(), 4u);
    for (int s = 0; s < 4; ++s) EXPECT_EQ(trace[static_cast<size_t>(s)], s);
  }
}

TEST(Pipeline, LatencyTracked) {
  std::atomic<int64_t> next{0};
  std::vector<Stage> stages;
  for (int s = 0; s < 3; ++s) {
    stages.push_back({"s" + std::to_string(s), [](video::Frame&) {
                        const auto end = std::chrono::steady_clock::now() +
                                         std::chrono::milliseconds(2);
                        while (std::chrono::steady_clock::now() < end) {
                        }
                      }});
  }
  Pipeline p(
      stages,
      [&next] {
        video::Frame f;
        f.sequence = next++;
        return f;
      },
      [](const video::Frame&) {}, 2);
  p.run(10);
  // Three 2 ms stages: latency at least ~6 ms, mean <= max.
  EXPECT_GE(p.mean_latency_ms(), 5.0);
  EXPECT_GE(p.max_latency_ms(), p.mean_latency_ms());
}

TEST(Pipeline, StatsAccumulate) {
  std::atomic<int64_t> next{0};
  std::vector<Stage> stages{{"only", [](video::Frame&) {}}};
  Pipeline p(
      stages, [&next] { return make_frame(next++); },
      [](const video::Frame&) {}, 2);
  p.run(10);
  ASSERT_EQ(p.stats().size(), 1u);
  EXPECT_EQ(p.stats()[0].jobs, 10);
  EXPECT_GT(p.fps(), 0.0);
}

TEST(Pipeline, StopMidStreamIsCleanAndRepeatable) {
  // Regression for the shutdown race: stop() issued while workers hold
  // frames mid-stage must neither deadlock nor tear down stage state
  // under a worker still writing into it. 100 iterations with a swept
  // stop delay to land the stop at different points of the frame walk.
  for (int iter = 0; iter < 100; ++iter) {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> sunk{0};
    video::OrderCheckingSink sink;
    std::vector<Stage> stages;
    for (int s = 0; s < 4; ++s)
      stages.push_back({"s" + std::to_string(s), [](video::Frame&) {
                          std::this_thread::sleep_for(
                              std::chrono::microseconds(50));
                        }});
    Pipeline p(
        stages, [&next] { return make_frame(next++); },
        [&](const video::Frame& f) {
          sink.push(f);
          ++sunk;
        },
        3);
    p.start(1000);  // far more frames than can finish before the stop
    std::this_thread::sleep_for(std::chrono::microseconds(100 + 37 * iter));
    p.stop();
    p.wait();
    // Whatever was sunk before the stop is an in-order prefix 0..k-1.
    EXPECT_TRUE(sink.in_order()) << "iteration " << iter;
    const auto seqs = sink.sequences();
    for (size_t i = 0; i < seqs.size(); ++i)
      EXPECT_EQ(seqs[i], static_cast<int64_t>(i)) << "iteration " << iter;
    EXPECT_EQ(sunk.load(), static_cast<int64_t>(seqs.size()));
    // ~Pipeline re-runs stop()+wait() here; both must be idempotent.
  }
}

TEST(Pipeline, DestructorStopsRunningPipeline) {
  // Destroying a started-but-unfinished pipeline must join all workers
  // and leave no thread touching freed stage slots (primary TSan target
  // together with the loop above).
  for (int iter = 0; iter < 20; ++iter) {
    std::atomic<int64_t> next{0};
    Pipeline p(
        {{"a",
          [](video::Frame&) {
            std::this_thread::sleep_for(std::chrono::microseconds(80));
          }},
         {"b",
          [](video::Frame&) {
            std::this_thread::sleep_for(std::chrono::microseconds(80));
          }}},
        [&next] { return make_frame(next++); }, [](const video::Frame&) {},
        2);
    p.start(500);
    std::this_thread::sleep_for(std::chrono::microseconds(60 * iter));
    // ~Pipeline runs here: stop() + wait().
  }
}

TEST(Pipeline, RejectsInvalidConfig) {
  std::vector<Stage> stages{{"s", [](video::Frame&) {}}};
  EXPECT_THROW(Pipeline(stages, nullptr, [](const video::Frame&) {}, 1),
               Error);
  EXPECT_THROW(Pipeline({}, [] { return video::Frame{}; },
                        [](const video::Frame&) {}, 1),
               Error);
  Pipeline ok(
      stages, [] { return video::Frame{}; }, [](const video::Frame&) {}, 1);
  EXPECT_THROW(ok.run(0), Error);
}

// --- Virtual-time executor ---

TEST(VirtualTime, SingleCoreIsSequentialThroughput) {
  const std::vector<TimedStage> stages{{"a", 10.0, ""}, {"b", 20.0, ""}};
  const auto r = simulate(stages, /*num_cores=*/1, /*num_frames=*/50);
  // One core: throughput = 1000 / Σ durations.
  EXPECT_NEAR(r.fps, 1000.0 / 30.0, 0.5);
  EXPECT_NEAR(sequential_fps(stages), 1000.0 / 30.0, 1e-9);
}

TEST(VirtualTime, PerfectPipelineBoundByBottleneck) {
  const std::vector<TimedStage> stages{
      {"a", 10.0, ""}, {"b", 40.0, ""}, {"c", 10.0, ""}};
  const auto r = simulate(stages, /*num_cores=*/3, /*num_frames=*/100);
  EXPECT_NEAR(r.fps, 1000.0 / 40.0, 0.5);  // the 40 ms stage gates
}

TEST(VirtualTime, CoreBoundWhenStagesExceedCores) {
  // 4 stages of 10 ms on 2 cores: work-bound at 2 cores × busy.
  const std::vector<TimedStage> stages{
      {"a", 10.0, ""}, {"b", 10.0, ""}, {"c", 10.0, ""}, {"d", 10.0, ""}};
  const auto r = simulate(stages, /*num_cores=*/2, /*num_frames=*/200);
  EXPECT_NEAR(r.fps, 1000.0 / 20.0, 1.0);
}

TEST(VirtualTime, ExclusiveResourceSerializes) {
  // Two 10 ms stages on the same exclusive resource cannot overlap even
  // with plenty of cores: throughput halves vs. the unconstrained case.
  const std::vector<TimedStage> free_stages{{"a", 10.0, ""}, {"b", 10.0, ""}};
  const std::vector<TimedStage> pl_stages{{"a", 10.0, "PL"},
                                          {"b", 10.0, "PL"}};
  const auto free_r = simulate(free_stages, 4, 100);
  const auto pl_r = simulate(pl_stages, 4, 100);
  EXPECT_NEAR(free_r.fps, 100.0, 1.0);
  EXPECT_NEAR(pl_r.fps, 50.0, 1.0);
}

TEST(VirtualTime, NoFrameOvertakesAnother) {
  const std::vector<TimedStage> stages{
      {"a", 7.0, ""}, {"b", 13.0, ""}, {"c", 5.0, ""}, {"d", 11.0, ""}};
  const auto r = simulate(stages, 4, 60);
  ASSERT_EQ(r.completion_order.size(), 60u);
  for (int64_t i = 0; i < 60; ++i)
    EXPECT_EQ(r.completion_order[static_cast<size_t>(i)], i);
}

TEST(VirtualTime, UtilizationBounded) {
  const std::vector<TimedStage> stages{{"a", 10.0, ""}, {"b", 10.0, ""}};
  const auto r = simulate(stages, 2, 100);
  EXPECT_GT(r.utilization(), 0.5);
  EXPECT_LE(r.utilization(), 1.0 + 1e-9);
}

TEST(VirtualTime, LatencyAtLeastSumOfStageTimes) {
  const std::vector<TimedStage> stages{
      {"a", 5.0, ""}, {"b", 6.0, ""}, {"c", 7.0, ""}};
  const auto r = simulate(stages, 4, 20);
  EXPECT_GE(r.latency_ms, 18.0 - 1e-6);
}

TEST(VirtualTime, AgreesWithThreadedPipelineOnSleepStages) {
  // Cross-check the DES model against the real threaded scheduler: stages
  // that busy-sleep a fixed duration should achieve roughly the fps the
  // virtual-time model predicts (loose tolerance: host scheduling noise).
  const std::vector<double> durations_ms{4.0, 8.0, 5.0, 6.0};
  std::vector<TimedStage> timed;
  std::vector<Stage> stages;
  for (size_t i = 0; i < durations_ms.size(); ++i) {
    timed.push_back({"s" + std::to_string(i), durations_ms[i], ""});
    const auto us = static_cast<int64_t>(durations_ms[i] * 1000);
    stages.push_back({"s" + std::to_string(i), [us](video::Frame&) {
                        const auto end = std::chrono::steady_clock::now() +
                                         std::chrono::microseconds(us);
                        while (std::chrono::steady_clock::now() < end) {
                        }
                      }});
  }
  const int cores = 2;
  const auto predicted = simulate(timed, cores, 40);

  std::atomic<int64_t> next{0};
  Pipeline p(
      stages,
      [&next] {
        video::Frame f;
        f.sequence = next++;
        return f;
      },
      [](const video::Frame&) {}, cores);
  p.run(40);
  // The single-core host timeslices the two workers; allow generous slack
  // but require the same order of magnitude and the correct upper bound.
  EXPECT_GT(p.fps(), predicted.fps * 0.3);
  EXPECT_LT(p.fps(), predicted.fps * 1.3);
}

TEST(VirtualTime, FourfoldSpeedupDilutedBySerialization) {
  // The paper's §III-F setup in the abstract: six similarly complex
  // stages, four cores — the ideal 4x is reachable only when no stage
  // dominates, and the bottleneck stage caps it otherwise.
  const std::vector<TimedStage> stages{{"s0", 40.0, ""}, {"s1", 35.0, ""},
                                       {"s2", 30.0, ""}, {"s3", 30.0, ""},
                                       {"s4", 15.0, ""}, {"s5", 25.0, ""}};
  const double seq = sequential_fps(stages);
  const auto r = simulate(stages, 4, 100);
  EXPECT_GT(r.fps, 2.5 * seq);  // clearly pipelined
  // Steady-state fps excludes pipeline fill, so allow a hair over 4x.
  EXPECT_LE(r.fps, 4.0 * seq * 1.01);
  EXPECT_LE(r.fps, 1000.0 / 40.0 + 0.5);  // never beats the bottleneck
}

}  // namespace
}  // namespace tincy::pipeline
